// Extending the library: define your own TraceSource and drive the
// simulator directly (System + Engine), bypassing the built-in workload
// registry. The example models a linked-list pointer chase — a classic
// translation-hostile pattern not in the paper's suite.
#include <cstdio>

#include "sim/engine.h"

using namespace ndp;

namespace {

// A pointer chase over a large node pool: every hop is a dependent random
// access to a fresh page, with a small amount of compute between hops.
class PointerChaseWorkload final : public TraceSource {
 public:
  explicit PointerChaseWorkload(unsigned cores, std::uint64_t bytes)
      : bytes_(bytes), nodes_(bytes / kNodeBytes), cores_(cores) {
    for (unsigned c = 0; c < cores; ++c)
      rngs_.emplace_back(splitmix64(0xC0FFEE + c));
  }

  std::string name() const override { return "ptrchase"; }
  std::string suite() const override { return "custom"; }
  std::uint64_t paper_dataset_bytes() const override { return bytes_; }
  std::uint64_t dataset_bytes() const override { return bytes_; }
  std::vector<VmRegion> regions() const override {
    return {VmRegion{"pool", dataset_base(), bytes_, true}};
  }
  MemRef next(unsigned core) override {
    // The next node is a deterministic hash of the current one: dependent,
    // uniformly random, unprefetchable.
    std::uint64_t& cur = state_.size() > core ? state_[core] : init_state(core);
    cur = splitmix64(cur * 0x9E3779B97F4A7C15ull) % nodes_;
    return MemRef{4, dataset_base() + cur * kNodeBytes, AccessType::kRead};
  }

 private:
  static constexpr std::uint64_t kNodeBytes = 64;
  std::uint64_t& init_state(unsigned core) {
    state_.resize(cores_, 0);
    state_[core] = core * 977;
    return state_[core];
  }

  std::uint64_t bytes_;
  std::uint64_t nodes_;
  unsigned cores_;
  std::vector<Rng> rngs_;
  std::vector<std::uint64_t> state_;
};

double run_once(Mechanism m, TraceSource& trace, unsigned cores) {
  SystemConfig sc = SystemConfig::ndp(cores, m);
  System system(sc);
  EngineConfig ec;
  ec.instructions_per_core = 80'000;
  ec.warmup_refs_per_core = 4'000;
  Engine engine(system, trace, ec);
  const RunResult r = engine.run();
  std::printf("  %-7s cycles=%-10llu PTW=%.0f cy translation=%.1f%%\n",
              to_string(m).c_str(),
              static_cast<unsigned long long>(r.total_cycles),
              r.avg_ptw_latency, 100 * r.translation_fraction);
  return static_cast<double>(r.total_cycles);
}

}  // namespace

int main() {
  std::printf("Custom workload: 4 GB pointer chase on a 4-core NDP system\n");
  const unsigned cores = 4;
  double radix_cycles = 0;
  for (Mechanism m : {Mechanism::kRadix, Mechanism::kEch, Mechanism::kNdpage,
                      Mechanism::kIdeal}) {
    PointerChaseWorkload trace(cores, 4ull << 30);  // fresh trace per run
    const double cycles = run_once(m, trace, cores);
    if (m == Mechanism::kRadix) radix_cycles = cycles;
    else std::printf("          speedup over Radix: %.3fx\n", radix_cycles / cycles);
  }
  return 0;
}
