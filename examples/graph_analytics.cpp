// Graph-analytics scenario: the workload class the paper's introduction
// motivates. Runs all seven GraphBIG kernels on a 4-core NDP system and
// compares the Radix baseline against NDPage, reporting where the
// translation time goes.
#include <iostream>

#include "common/table.h"
#include "sim/experiment.h"

using namespace ndp;

int main() {
  std::cout << "Graph analytics on a 4-core NDP system: Radix vs NDPage\n\n";

  Table t({"kernel", "radix IPC", "radix PTW", "radix trans%", "NDPage IPC",
           "NDPage PTW", "speedup"});
  const WorkloadKind kernels[] = {
      WorkloadKind::kBC, WorkloadKind::kBFS, WorkloadKind::kCC,
      WorkloadKind::kGC, WorkloadKind::kPR,  WorkloadKind::kTC,
      WorkloadKind::kSP};
  for (WorkloadKind wl : kernels) {
    RunSpec spec;
    spec.system = SystemKind::kNdp;
    spec.cores = 4;
    spec.workload = wl;
    spec.instructions_per_core = 100'000;

    spec.mechanism = Mechanism::kRadix;
    const RunResult radix = run_experiment(spec);
    spec.mechanism = Mechanism::kNdpage;
    const RunResult ndpage = run_experiment(spec);

    t.add_row({to_string(wl), Table::num(radix.ipc, 3),
               Table::num(radix.avg_ptw_latency, 0),
               Table::pct(radix.translation_fraction),
               Table::num(ndpage.ipc, 3),
               Table::num(ndpage.avg_ptw_latency, 0),
               Table::num(double(radix.total_cycles) /
                              double(ndpage.total_cycles), 3) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nThe skewed-random neighbor-property accesses overwhelm the"
               " TLBs; NDPage\nshortens every walk to ~one bypassed memory"
               " access and keeps PTEs out of the L1.\n";
  return 0;
}
