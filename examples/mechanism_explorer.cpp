// Mechanism explorer: run any (system, mechanism, workload, cores)
// combination and dump the full component-statistics breakdown — the tool
// to reach for when a result in the figures looks surprising.
//
//   ./mechanism_explorer [NDP|CPU] [mechanism] [workload] [cores] [instrs]
//   e.g. ./mechanism_explorer NDP NDPage RND 4 200000
#include <cstdio>
#include <cstring>
#include <iostream>

#include "sim/experiment.h"

using namespace ndp;

namespace {

Mechanism parse_mechanism(const char* s) {
  for (Mechanism m : kExtendedMechanisms)
    if (to_string(m) == s) return m;
  std::fprintf(stderr, "unknown mechanism '%s'; using Radix\n", s);
  return Mechanism::kRadix;
}

WorkloadKind parse_workload(const char* s) {
  for (const WorkloadInfo& info : all_workload_info())
    if (std::strcmp(info.name, s) == 0) return info.kind;
  std::fprintf(stderr, "unknown workload '%s'; using RND\n", s);
  return WorkloadKind::kRND;
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  spec.system = (argc > 1 && std::strcmp(argv[1], "CPU") == 0)
                    ? SystemKind::kCpu
                    : SystemKind::kNdp;
  spec.mechanism = argc > 2 ? parse_mechanism(argv[2]) : Mechanism::kNdpage;
  spec.workload = argc > 3 ? parse_workload(argv[3]) : WorkloadKind::kRND;
  spec.cores = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 4;
  if (argc > 5) spec.instructions_per_core = std::strtoull(argv[5], nullptr, 10);

  std::printf("%s / %s / %s / %u cores\n\n", to_string(spec.system).c_str(),
              to_string(spec.mechanism).c_str(),
              to_string(spec.workload).c_str(), spec.cores);
  const RunResult r = run_experiment(spec);

  std::printf("headline:\n");
  std::printf("  cycles              %llu\n",
              static_cast<unsigned long long>(r.total_cycles));
  std::printf("  IPC (per core)      %.4f\n", r.ipc);
  std::printf("  avg PTW latency     %.1f cy\n", r.avg_ptw_latency);
  std::printf("  translation share   %.1f%%\n", 100 * r.translation_fraction);
  std::printf("  L1 TLB miss         %.1f%%\n", 100 * r.l1_tlb_miss_rate);
  std::printf("  L2 TLB miss         %.1f%%\n", 100 * r.l2_tlb_miss_rate);
  std::printf("  PTE traffic share   %.1f%%\n\n", 100 * r.pte_access_share);

  std::printf("per-core decomposition (cycles):\n");
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const CoreStats& cs = r.cores[c];
    std::printf("  core %zu: instrs=%llu refs=%llu trans=%llu data=%llu "
                "gap=%llu fault=%llu\n",
                c, static_cast<unsigned long long>(cs.instructions),
                static_cast<unsigned long long>(cs.memrefs),
                static_cast<unsigned long long>(cs.translation_cycles),
                static_cast<unsigned long long>(cs.data_cycles),
                static_cast<unsigned long long>(cs.gap_cycles),
                static_cast<unsigned long long>(cs.fault_cycles));
  }

  std::printf("\ncomponent counters:\n");
  for (const auto& [k, v] : r.stats.counters())
    std::printf("  %-32s %llu\n", k.c_str(),
                static_cast<unsigned long long>(v));
  std::printf("\ncomponent averages:\n");
  for (const auto& [k, a] : r.stats.averages())
    std::printf("  %-32s mean=%.2f n=%llu max=%.0f\n", k.c_str(), a.mean(),
                static_cast<unsigned long long>(a.count()), a.max());
  return 0;
}
