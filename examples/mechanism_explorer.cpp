// Mechanism explorer: run any (system, mechanism, workload, cores)
// combination and dump the full component-statistics breakdown — the tool
// to reach for when a result in the figures looks surprising.
//
// Mechanism and workload names resolve through the open registry — any
// mechanism registered via register_mechanism() works here by name.
//
//   ./mechanism_explorer [NDP|CPU] [mechanism] [workload] [cores] [instrs]
//   e.g. ./mechanism_explorer NDP NDPage RND 4 200000
#include <cstdio>
#include <cstring>
#include <iostream>

#include "sim/experiment.h"

using namespace ndp;

int main(int argc, char** argv) {
  RunSpec spec;
  try {
    RunSpecBuilder b;
    b.system(argc > 1 ? argv[1] : "ndp");
    b.mechanism(argc > 2 ? argv[2] : "ndpage");
    b.workload(argc > 3 ? argv[3] : "gups");
    b.cores(argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 4);
    if (argc > 5) b.instructions(std::strtoull(argv[5], nullptr, 10));
    spec = b.build();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("%s / %s / %s / %u cores\n\n", to_string(spec.system).c_str(),
              spec.mechanism_label().c_str(),
              spec.workload_label().c_str(), spec.cores);
  const RunResult r = run_experiment(spec);

  std::printf("headline:\n");
  std::printf("  cycles              %llu\n",
              static_cast<unsigned long long>(r.total_cycles));
  std::printf("  IPC (per core)      %.4f\n", r.ipc);
  std::printf("  avg PTW latency     %.1f cy\n", r.avg_ptw_latency);
  std::printf("  translation share   %.1f%%\n", 100 * r.translation_fraction);
  std::printf("  L1 TLB miss         %.1f%%\n", 100 * r.l1_tlb_miss_rate);
  std::printf("  L2 TLB miss         %.1f%%\n", 100 * r.l2_tlb_miss_rate);
  std::printf("  PTE traffic share   %.1f%%\n\n", 100 * r.pte_access_share);

  std::printf("per-core decomposition (cycles):\n");
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const CoreStats& cs = r.cores[c];
    std::printf("  core %zu: instrs=%llu refs=%llu trans=%llu data=%llu "
                "gap=%llu fault=%llu\n",
                c, static_cast<unsigned long long>(cs.instructions),
                static_cast<unsigned long long>(cs.memrefs),
                static_cast<unsigned long long>(cs.translation_cycles),
                static_cast<unsigned long long>(cs.data_cycles),
                static_cast<unsigned long long>(cs.gap_cycles),
                static_cast<unsigned long long>(cs.fault_cycles));
  }

  std::printf("\ncomponent counters:\n");
  for (const auto& [k, v] : r.stats.counters())
    std::printf("  %-32s %llu\n", k.c_str(),
                static_cast<unsigned long long>(v));
  std::printf("\ncomponent averages:\n");
  for (const auto& [k, a] : r.stats.averages())
    std::printf("  %-32s mean=%.2f n=%llu max=%.0f\n", k.c_str(), a.mean(),
                static_cast<unsigned long long>(a.count()), a.max());
  return 0;
}
