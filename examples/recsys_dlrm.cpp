// Recommendation-inference scenario: DLRM sparse-length-sum embedding
// gathers, scaling from 1 to 8 NDP cores. Shows how translation overhead
// grows with contention under the Radix baseline and how much of the
// Ideal's headroom NDPage recovers.
#include <iostream>

#include "common/table.h"
#include "sim/experiment.h"

using namespace ndp;

int main() {
  std::cout << "DLRM embedding gathers on NDP: core scaling\n\n";

  Table t({"cores", "radix IPC", "radix PTW", "NDPage IPC", "NDPage speedup",
           "Ideal speedup", "headroom recovered"});
  for (unsigned cores : {1u, 4u, 8u}) {
    RunSpec spec;
    spec.system = SystemKind::kNdp;
    spec.cores = cores;
    spec.workload = WorkloadKind::kDLRM;
    spec.instructions_per_core = 100'000;

    spec.mechanism = Mechanism::kRadix;
    const RunResult radix = run_experiment(spec);
    spec.mechanism = Mechanism::kNdpage;
    const RunResult ndpage = run_experiment(spec);
    spec.mechanism = Mechanism::kIdeal;
    const RunResult ideal = run_experiment(spec);

    const double s_ndpage =
        double(radix.total_cycles) / double(ndpage.total_cycles);
    const double s_ideal =
        double(radix.total_cycles) / double(ideal.total_cycles);
    t.add_row({std::to_string(cores), Table::num(radix.ipc, 3),
               Table::num(radix.avg_ptw_latency, 0), Table::num(ndpage.ipc, 3),
               Table::num(s_ndpage, 3) + "x", Table::num(s_ideal, 3) + "x",
               Table::pct((s_ndpage - 1) / (s_ideal - 1))});
  }
  t.print(std::cout);
  std::cout << "\n'Headroom recovered' = NDPage's gain as a share of the"
               " no-translation Ideal's gain.\n";
  return 0;
}
