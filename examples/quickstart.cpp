// Quickstart: simulate one workload on the NDP system with the Radix
// baseline and with NDPage, and print the headline comparison.
//
//   ./quickstart [workload] [cores]     (defaults: RND 4)
//
// This is the smallest end-to-end use of the library: pick a system, a
// translation mechanism and a workload; run; read the metrics.
#include <cstdio>
#include <cstring>

#include "sim/experiment.h"

using namespace ndp;

int main(int argc, char** argv) {
  WorkloadKind wl = WorkloadKind::kRND;
  if (argc > 1) {
    bool found = false;
    for (const WorkloadInfo& info : all_workload_info())
      if (std::strcmp(argv[1], info.name) == 0) {
        wl = info.kind;
        found = true;
      }
    if (!found) {
      std::fprintf(stderr, "unknown workload '%s' (try PR, RND, XS, ...)\n",
                   argv[1]);
      return 1;
    }
  }
  const unsigned cores = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("NDPage quickstart: %s on a %u-core NDP system\n",
              to_string(wl).c_str(), cores);

  RunSpec spec;
  spec.system = SystemKind::kNdp;
  spec.cores = cores;
  spec.workload = wl;
  spec.instructions_per_core = 100'000;

  spec.mechanism = Mechanism::kRadix;
  const RunResult radix = run_experiment(spec);
  spec.mechanism = Mechanism::kNdpage;
  const RunResult ndpage = run_experiment(spec);

  auto report = [](const char* name, const RunResult& r) {
    std::printf(
        "  %-7s cycles=%-10llu IPC=%.3f  PTW=%.0f cy  translation=%.1f%%  "
        "PTE share of traffic=%.1f%%\n",
        name, static_cast<unsigned long long>(r.total_cycles), r.ipc,
        r.avg_ptw_latency, 100 * r.translation_fraction,
        100 * r.pte_access_share);
  };
  report("Radix", radix);
  report("NDPage", ndpage);
  std::printf("  NDPage speedup over Radix: %.3fx\n",
              double(radix.total_cycles) / double(ndpage.total_cycles));
  return 0;
}
