// Parameterized sweeps over (mechanism x workload): every combination must
// run, respect its structural contract, and produce coherent statistics.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.h"

namespace ndp {
namespace {

using Combo = std::tuple<Mechanism, WorkloadKind>;

class MechanismWorkloadTest : public ::testing::TestWithParam<Combo> {};

RunSpec combo_spec(Mechanism m, WorkloadKind wl) {
  RunSpec s;
  s.system = SystemKind::kNdp;
  s.cores = 2;
  s.mechanism = m;
  s.workload = wl;
  s.instructions_per_core = 8'000;
  s.warmup_refs = 400;
  s.scale = 1.0 / 64.0;
  return s;
}

TEST_P(MechanismWorkloadTest, RunsAndStatsCohere) {
  const auto [m, wl] = GetParam();
  const RunResult r = run_experiment(combo_spec(m, wl));
  ASSERT_GT(r.total_cycles, 0u);
  ASSERT_EQ(r.cores.size(), 2u);
  for (const CoreStats& c : r.cores) {
    EXPECT_GE(c.instructions, 8'000u);
    EXPECT_GT(c.memrefs, 0u);
  }
  if (m == Mechanism::kIdeal) {
    EXPECT_EQ(r.stats.get("walker.walks"), 0u);
    EXPECT_DOUBLE_EQ(r.translation_fraction, 0.0);
  } else if (m == Mechanism::kHugePage) {
    // 2 MB reach can cover a tiny test dataset entirely: walks may be zero.
    EXPECT_GE(r.translation_fraction, 0.0);
  } else {
    EXPECT_GT(r.stats.get("walker.walks"), 0u);
    EXPECT_GT(r.translation_fraction, 0.0);
  }
  if (r.stats.get("walker.walks") > 0) {
    // Walk accounting coheres: accesses = sum over walks.
    const Average* apw = r.stats.average("walker.accesses_per_walk");
    ASSERT_NE(apw, nullptr);
    EXPECT_NEAR(apw->mean() * double(r.stats.get("walker.walks")),
                double(r.stats.get("walker.mem_accesses")),
                1.0 + 0.01 * double(r.stats.get("walker.mem_accesses")));
  }
  // Memory-system conservation: every access is served somewhere.
  const auto served = r.stats.get("mem.served.l1") + r.stats.get("mem.served.l2") +
                      r.stats.get("mem.served.l3") + r.stats.get("mem.served.dram");
  EXPECT_EQ(served, r.stats.get("mem.access"));
  // DRAM accesses = demand round trips + write-backs.
  EXPECT_EQ(r.stats.get("dram.access"),
            r.stats.get("mem.served.dram") + r.stats.get("mem.writeback"));
}

TEST_P(MechanismWorkloadTest, MechanismContractsHold) {
  const auto [m, wl] = GetParam();
  const RunResult r = run_experiment(combo_spec(m, wl));
  switch (m) {
    case Mechanism::kNdpage:
      EXPECT_EQ(r.stats.get("l1.hit.meta") + r.stats.get("l1.miss.meta"), 0u)
          << "NDPage metadata never touches the L1";
      EXPECT_EQ(r.stats.get("mem.bypassed"), r.stats.get("walker.mem_accesses"));
      break;
    case Mechanism::kEch:
      if (r.stats.get("walker.walks") > 0) {
        EXPECT_NEAR(r.stats.average("walker.accesses_per_walk")->mean(), 3.0,
                    0.1);
      }
      break;
    case Mechanism::kDipta:
      if (r.stats.get("walker.walks") > 0) {
        EXPECT_NEAR(r.stats.average("walker.accesses_per_walk")->mean(), 1.0,
                    0.1);
      }
      break;
    case Mechanism::kRadix:
      EXPECT_EQ(r.stats.get("mem.bypassed"), 0u);
      if (r.stats.get("walker.walks") > 0) {
        const double apw = r.stats.average("walker.accesses_per_walk")->mean();
        EXPECT_GE(apw, 0.5);
        EXPECT_LE(apw, 4.0);
      }
      break;
    case Mechanism::kHugePage:
      // Huge mappings shorten walks (3 levels, PWC-covered) when they
      // happen at all; OS-side 2 MB fault mechanics are unit-tested in
      // translate_test (prefault counters reset with warmup here).
      if (r.stats.get("walker.walks") > 0) {
        EXPECT_LE(r.stats.average("walker.accesses_per_walk")->mean(), 1.5);
      }
      break;
    case Mechanism::kIdeal:
      EXPECT_EQ(r.stats.get("mem.access.meta"), 0u);
      break;
    case Mechanism::kHybrid:
      // Flat-window hits are one probe; conflicts add a radix walk, partly
      // absorbed by the L4/L3 PWCs.
      if (r.stats.get("walker.walks") > 0) {
        const double apw = r.stats.average("walker.accesses_per_walk")->mean();
        EXPECT_GE(apw, 0.5);
        EXPECT_LE(apw, 5.0);
      }
      break;
  }
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return to_string(std::get<0>(info.param)) + "_" +
         to_string(std::get<1>(info.param));
}

// The full 6 x 11 grid is expensive; sweep all mechanisms against a
// representative workload per suite, and all workloads against the two
// mechanisms the paper's headline compares.
INSTANTIATE_TEST_SUITE_P(
    MechanismsAcrossSuites, MechanismWorkloadTest,
    ::testing::Combine(::testing::ValuesIn(kExtendedMechanisms),
                       ::testing::Values(WorkloadKind::kPR, WorkloadKind::kRND,
                                         WorkloadKind::kGEN)),
    combo_name);

INSTANTIATE_TEST_SUITE_P(
    WorkloadsUnderHeadlineMechanisms, MechanismWorkloadTest,
    ::testing::Combine(::testing::Values(Mechanism::kRadix, Mechanism::kNdpage),
                       ::testing::Values(WorkloadKind::kBC, WorkloadKind::kBFS,
                                         WorkloadKind::kCC, WorkloadKind::kGC,
                                         WorkloadKind::kTC, WorkloadKind::kSP,
                                         WorkloadKind::kXS,
                                         WorkloadKind::kDLRM)),
    combo_name);

}  // namespace
}  // namespace ndp
