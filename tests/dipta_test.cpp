// Tests for the DIPTA-style restricted-associativity comparator (extension
// beyond the paper's five mechanisms; paper SVIII related work).
#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "sim/experiment.h"
#include "translate/address_space.h"
#include "translate/dipta_page_table.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg(std::uint64_t mb = 64) {
  PhysMemConfig cfg;
  cfg.bytes = mb << 20;
  cfg.noise_fraction = 0.0;
  cfg.seed = 7;
  return cfg;
}

TEST(DiptaPageTable, MapLookupUnmapRemap) {
  PhysicalMemory pm(pm_cfg());
  DiptaPageTable pt(pm);
  pt.map(0x123, 45);
  EXPECT_EQ(*pt.lookup(0x123), 45u);
  EXPECT_TRUE(pt.remap(0x123, 46));
  EXPECT_EQ(*pt.lookup(0x123), 46u);
  EXPECT_TRUE(pt.unmap(0x123));
  EXPECT_FALSE(pt.lookup(0x123).has_value());
}

TEST(DiptaPageTable, WalkIsOneTagAccess) {
  PhysicalMemory pm(pm_cfg());
  DiptaPageTable pt(pm);
  pt.map(7, 9);
  const WalkPath p = pt.walk(7);
  ASSERT_TRUE(p.mapped);
  ASSERT_EQ(p.steps.size(), 1u) << "translation resolves in a single access";
  EXPECT_TRUE(pm.is_page_table_frame(pfn_of(p.steps[0].pte_addr)));
  EXPECT_EQ(p.pfn, 9u);
}

TEST(DiptaPageTable, SetConflictEvictsLru) {
  PhysicalMemory pm(pm_cfg());
  DiptaConfig cfg;
  cfg.ways = 2;
  cfg.coverage_frames = 2;  // exactly one set: every vpn conflicts
  DiptaPageTable pt(pm, cfg);
  const MapResult a = pt.map(1, 100);
  const MapResult b = pt.map(2, 200);
  EXPECT_FALSE(a.evicted.has_value());
  EXPECT_FALSE(b.evicted.has_value());
  pt.lookup(1);  // no LRU effect from lookups needed; map refreshes below
  const MapResult c = pt.map(3, 300);  // set full: evicts the LRU (vpn 1)
  ASSERT_TRUE(c.evicted.has_value());
  EXPECT_EQ(c.evicted->first, 1u);
  EXPECT_EQ(c.evicted->second, 100u);
  EXPECT_EQ(pt.conflict_evictions(), 1u);
  EXPECT_FALSE(pt.lookup(1).has_value());
  EXPECT_TRUE(pt.lookup(2).has_value());
  EXPECT_TRUE(pt.lookup(3).has_value());
}

TEST(DiptaPageTable, RefreshDoesNotEvict) {
  PhysicalMemory pm(pm_cfg());
  DiptaConfig cfg;
  cfg.ways = 2;
  cfg.coverage_frames = 2;
  DiptaPageTable pt(pm, cfg);
  pt.map(1, 100);
  pt.map(2, 200);
  const MapResult r = pt.map(1, 101);  // refresh in place
  EXPECT_TRUE(r.replaced);
  EXPECT_FALSE(r.evicted.has_value());
  EXPECT_EQ(pt.conflict_evictions(), 0u);
}

TEST(DiptaAddressSpace, ConflictEvictionReleasesFrameAndRefaults) {
  PhysicalMemory pm(pm_cfg());
  DiptaConfig cfg;
  cfg.ways = 2;
  cfg.coverage_frames = 2;  // single set
  AddressSpace as(pm, std::make_unique<DiptaPageTable>(pm, cfg), false);
  int shootdowns = 0;
  as.set_shootdown_hook([&](Vpn) { ++shootdowns; });
  const std::uint64_t free0 = pm.free_frames();
  as.touch(0x1000, 0);
  as.touch(0x2000, 0);
  as.touch(0x3000, 0);  // evicts one of the first two
  EXPECT_EQ(as.stats().get("set_conflict_evictions"), 1u);
  EXPECT_EQ(pm.free_frames(), free0 - 2) << "evicted frame must be released";
  EXPECT_EQ(shootdowns, 1);
  // The evicted page re-faults on its next touch.
  const std::uint64_t faults = as.stats().get("demand_faults");
  as.touch(0x1000, 0);
  as.touch(0x2000, 0);
  EXPECT_GT(as.stats().get("demand_faults"), faults);
}

TEST(DiptaMechanism, RegisteredInExtendedSet) {
  EXPECT_EQ(to_string(Mechanism::kDipta), "DIPTA");
  EXPECT_FALSE(uses_huge_pages(Mechanism::kDipta));
  EXPECT_TRUE(models_translation(Mechanism::kDipta));
  const WalkerConfig cfg = make_walker_config(Mechanism::kDipta);
  EXPECT_TRUE(cfg.pwc_levels.empty());
  // The paper's evaluation set stays at five mechanisms; the extended set
  // adds the related-work comparators (DIPTA, Hybrid).
  EXPECT_EQ(std::size(kAllMechanisms), 5u);
  EXPECT_EQ(std::size(kExtendedMechanisms), 7u);
}

TEST(DiptaMechanism, EndToEndRunCompletes) {
  RunSpec s;
  s.system = SystemKind::kNdp;
  s.cores = 1;
  s.mechanism = Mechanism::kDipta;
  s.workload = WorkloadKind::kRND;
  s.instructions_per_core = 15'000;
  s.warmup_refs = 500;
  s.scale = 1.0 / 64.0;
  const RunResult r = run_experiment(s);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_NEAR(r.stats.average("walker.accesses_per_walk")->mean(), 1.0, 0.05);
}

}  // namespace
}  // namespace ndp
