// Cross-mechanism conformance suite: every registered built-in mechanism —
// at its defaults and across a matrix of parameter points — runs the same
// seeded trace and must uphold the invariants shared by all translation
// designs. Any future registration or new parameter point is automatically
// screened by adding it to the matrix (and the defaults of every built-in
// are picked up from the registry, so brand-new built-ins are covered
// without editing this file):
//   * determinism — repeated runs serialize byte-identically;
//   * Ideal is an upper bound — no real mechanism beats the free-TLB limit
//     on cycles (small tolerance for data-placement noise);
//   * statistics self-consistency — TLB probe chains, walk/miss accounting
//     and memory-system conservation all add up.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mechanism_registry.h"
#include "sim/experiment.h"

namespace ndp {
namespace {

/// Built-ins at defaults plus the parameter matrix: >= 3 points each for
/// ECH associativity/probing and for per-level PWC sizing, plus the hybrid
/// window sizes.
std::vector<std::string> conformance_points() {
  std::vector<std::string> points =
      MechanismRegistry::instance().builtin_names();
  for (const char* p : {
           // ECH associativity / probe-width points.
           "ech(ways=2)",
           "ech(ways=4,probes=2)",
           "ech(ways=8)",
           // Per-level PWC sizing points.
           "radix(pwc_l4=64,pwc_l3=64,pwc_l2=64,pwc_l1=64)",
           "radix(pwc_l2=8,pwc_l1=8)",
           "ndpage(pwc_l4=8,pwc_l3=8)",
           "ndpage(pwc_l4=128,pwc_l3=128)",
           // Hybrid flat-window sizes (beyond the default).
           "hybrid(flat_bits=14)",
           "hybrid(flat_bits=18)",
       })
    points.push_back(p);
  return points;
}

/// The shared seeded cell every point runs: small but translation-heavy
/// (random access defeats the TLBs), so the invariants bite.
RunSpec cell_for(const std::string& mechanism) {
  return RunSpecBuilder()
      .system("ndp")
      .cores(2)
      .mechanism(mechanism)
      .workload("gups")
      .instructions(6'000)
      .warmup(300)
      .scale(1.0 / 64.0)
      .seed(7)
      .build();
}

class MechanismConformanceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(MechanismConformanceTest, DeterministicAndSelfConsistent) {
  const RunSpec spec = cell_for(GetParam());
  const RunResult a = run_experiment(spec);
  const RunResult b = run_experiment(spec);

  // Determinism: the full serialized document — headline metrics, per-core
  // breakdowns, every stat counter — matches byte for byte.
  EXPECT_EQ(to_json(a, &spec), to_json(b, &spec)) << spec.mechanism_label();

  const bool ideal = !spec.mechanism_name.empty()
                         ? !MechanismRegistry::instance()
                                .resolve(spec.mechanism_name)
                                .descriptor->models_translation
                         : false;
  const auto lookups = [&](const char* prefix) {
    return a.stats.get(std::string(prefix) + ".hit") +
           a.stats.get(std::string(prefix) + ".miss");
  };

  if (ideal) {
    // The limit case: no TLB probes, no walks, no metadata traffic.
    EXPECT_EQ(a.stats.get("walker.walks"), 0u);
    EXPECT_EQ(lookups("tlb.l1d"), 0u);
    EXPECT_GT(a.stats.get("mmu.ideal_translations"), 0u);
  } else {
    // Probe chain: every reference probes the L1 TLB; every L1 miss probes
    // the L2; every L2 miss either starts a walk or coalesces onto one.
    EXPECT_GT(lookups("tlb.l1d"), 0u);
    EXPECT_EQ(lookups("tlb.l2"), a.stats.get("tlb.l1d.miss"));
    EXPECT_GE(a.stats.get("mmu.walks") + a.stats.get("mmu.coalesced_walks"),
              a.stats.get("tlb.l2.miss"));
    // Walks at least cover the MMU-initiated ones (faults re-walk).
    EXPECT_GE(a.stats.get("walker.walks"), a.stats.get("mmu.walks"));
    EXPECT_GT(a.stats.get("walker.walks"), 0u);
    // Walk traffic accounting: accesses/walk x walks == PTE reads issued.
    const Average* apw = a.stats.average("walker.accesses_per_walk");
    ASSERT_NE(apw, nullptr);
    EXPECT_NEAR(apw->mean() * double(a.stats.get("walker.walks")),
                double(a.stats.get("walker.mem_accesses")),
                1.0 + 0.01 * double(a.stats.get("walker.mem_accesses")));
    // PWC levels probe in parallel on every planned walk, so all configured
    // levels must report identical lookup totals.
    std::uint64_t pwc_lookups = 0;
    for (unsigned level = 1; level <= 4; ++level) {
      const std::string prefix = "pwc.l" + std::to_string(level);
      const std::uint64_t n = lookups(prefix.c_str());
      if (n == 0) continue;
      if (pwc_lookups == 0) pwc_lookups = n;
      EXPECT_EQ(n, pwc_lookups) << prefix;
    }
  }

  // Memory-system conservation holds for every design point.
  const auto served =
      a.stats.get("mem.served.l1") + a.stats.get("mem.served.l2") +
      a.stats.get("mem.served.l3") + a.stats.get("mem.served.dram");
  EXPECT_EQ(served, a.stats.get("mem.access"));
  EXPECT_EQ(a.stats.get("dram.access"),
            a.stats.get("mem.served.dram") + a.stats.get("mem.writeback"));
}

std::string point_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string out;
  for (char c : info.param)
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredPoints, MechanismConformanceTest,
                         ::testing::ValuesIn(conformance_points()),
                         point_name);

// Ideal is the limit case: it must not lose to any real design point on
// total cycles. A small tolerance absorbs data-placement noise (different
// table layouts shift physical frames, hence cache/DRAM behaviour).
TEST(MechanismConformance, IdealIsAnUpperBoundOnPerformance) {
  const RunResult ideal = run_experiment(cell_for("ideal"));
  ASSERT_GT(ideal.total_cycles, 0u);
  for (const std::string& point : conformance_points()) {
    if (point == "Ideal") continue;
    const RunResult r = run_experiment(cell_for(point));
    EXPECT_LE(static_cast<double>(ideal.total_cycles),
              static_cast<double>(r.total_cycles) * 1.02)
        << "Ideal should not lose to " << point;
  }
}

}  // namespace
}  // namespace ndp
