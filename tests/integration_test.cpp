// Cross-module integration tests: the paper's mechanisms compared on small
// end-to-end runs, checking the *structural* claims rather than magnitudes.
#include <gtest/gtest.h>

#include "core/flat_page_table.h"
#include "sim/experiment.h"
#include "translate/radix_page_table.h"

namespace ndp {
namespace {

RunSpec spec(Mechanism m, WorkloadKind wl = WorkloadKind::kRND,
             unsigned cores = 1) {
  RunSpec s;
  s.system = SystemKind::kNdp;
  s.cores = cores;
  s.mechanism = m;
  s.workload = wl;
  s.instructions_per_core = 25'000;
  s.warmup_refs = 1'500;
  s.scale = 1.0 / 32.0;
  return s;
}

TEST(Integration, NdpageWalksNeedFewerAccessesThanRadix) {
  const RunResult radix = run_experiment(spec(Mechanism::kRadix));
  const RunResult ndpage = run_experiment(spec(Mechanism::kNdpage));
  const double radix_apw = radix.stats.average("walker.accesses_per_walk")->mean();
  const double ndpage_apw = ndpage.stats.average("walker.accesses_per_walk")->mean();
  EXPECT_LT(ndpage_apw, radix_apw)
      << "flattening + L4/L3 PWCs must shorten walks (paper SV-B/SV-C)";
  EXPECT_LE(ndpage_apw, 1.2) << "typical NDPage walk is a single access";
}

TEST(Integration, EchProbesThreeWaysInParallel) {
  const RunResult ech = run_experiment(spec(Mechanism::kEch));
  const double apw = ech.stats.average("walker.accesses_per_walk")->mean();
  EXPECT_NEAR(apw, 3.0, 0.05) << "d = 3 cuckoo ways";
  // But walk latency must be far below 3 sequential DRAM accesses.
  const double lat = ech.avg_ptw_latency;
  const double one_access =
      ech.stats.average("dram.latency") ? ech.stats.average("dram.latency")->mean() : 100.0;
  EXPECT_LT(lat, 2.2 * one_access) << "parallel probes must overlap";
}

TEST(Integration, HugePageReachCutsWalksAndMetadataTraffic) {
  // 2 MB mappings give the Huge Page baseline more TLB reach and one fewer
  // radix level per walk: both fewer walks and fewer PTE accesses per walk
  // than the Radix baseline. (The demand-fault mechanics of 2 MB mappings
  // themselves are unit-tested in translate_test's AddressSpace suite.)
  const RunResult hp = run_experiment(spec(Mechanism::kHugePage));
  const RunResult radix = run_experiment(spec(Mechanism::kRadix));
  EXPECT_LT(hp.stats.get("walker.walks"), radix.stats.get("walker.walks"));
  EXPECT_LT(hp.pte_access_share, radix.pte_access_share);
  const double hp_apw = hp.stats.average("walker.accesses_per_walk")->mean();
  EXPECT_LE(hp_apw, 1.5) << "PWC-covered 3-level walks average ~1 access";
}

TEST(Integration, BypassEliminatesPollutionVictims) {
  const RunResult radix = run_experiment(spec(Mechanism::kRadix));
  const RunResult ndpage = run_experiment(spec(Mechanism::kNdpage));
  EXPECT_GT(radix.stats.get("l1.pollution_victims"), 0u)
      << "cacheable PTEs displace data (paper SIV-A)";
  EXPECT_EQ(ndpage.stats.get("l1.pollution_victims"), 0u)
      << "bypassed PTEs never allocate (paper SV-A)";
}

TEST(Integration, NdpageDataMissRateNotWorseThanRadix) {
  // Fig. 7's pollution effect: removing PTE fills must not hurt (and
  // normally helps) the normal-data L1 miss rate.
  const RunResult radix = run_experiment(spec(Mechanism::kRadix));
  const RunResult ndpage = run_experiment(spec(Mechanism::kNdpage));
  const double radix_miss =
      radix.stats.rate("l1.miss.data", "l1.hit.data");
  const double ndpage_miss =
      ndpage.stats.rate("l1.miss.data", "l1.hit.data");
  EXPECT_LE(ndpage_miss, radix_miss + 0.01);
}

TEST(Integration, PteTrafficShareShrinksWithNdpage) {
  const RunResult radix = run_experiment(spec(Mechanism::kRadix));
  const RunResult ndpage = run_experiment(spec(Mechanism::kNdpage));
  EXPECT_LT(ndpage.pte_access_share, radix.pte_access_share);
}

TEST(Integration, OccupancyMatchesFigEightShape) {
  // Build the radix and flattened tables for the same workload and compare
  // occupancy: PL1/PL2 nearly full, PL3/PL4 nearly empty (paper SIV-B).
  const RunResult r = run_experiment(spec(Mechanism::kRadix, WorkloadKind::kRND));
  (void)r;
  PhysMemConfig pmc;
  pmc.bytes = 2ull << 30;
  pmc.noise_fraction = 0.0;
  PhysicalMemory pm(pmc);
  RadixPageTable radix(pm, 1);
  FlatPageTable flat(pm);
  // Map a dense 1 GB region the way prefaulting a dataset does.
  const std::uint64_t pages = (1ull << 30) / kPageSize;
  for (Vpn v = 0; v < pages; ++v) {
    const Pfn f = v + 100;
    radix.map(0x8000000ull + v, f);
    flat.map(0x8000000ull + v, f);
  }
  const auto occ = radix.occupancy();
  ASSERT_EQ(occ.size(), 4u);
  const double pl4 = occ[0].rate(), pl3 = occ[1].rate(), pl2 = occ[2].rate(),
               pl1 = occ[3].rate();
  EXPECT_GT(pl1, 0.95);
  EXPECT_GT(pl2, 0.95);
  EXPECT_LT(pl3, 0.05);
  EXPECT_LT(pl4, 0.05);
  const auto focc = flat.occupancy();
  EXPECT_GT(focc[2].rate(), 0.95) << "combined PL2/PL1 stays full";
}

TEST(Integration, MechanismsAgreeFunctionally) {
  // Same workload, same seed: every mechanism must translate the same
  // virtual stream (physical placements differ, program behaviour must not).
  for (Mechanism m : kAllMechanisms) {
    const RunResult r = run_experiment(spec(m, WorkloadKind::kPR));
    EXPECT_GT(r.total_instructions(), 24'000u) << to_string(m);
  }
}

TEST(Integration, CpuSystemFiltersPteTrafficFromDram) {
  RunSpec ndp_spec = spec(Mechanism::kRadix, WorkloadKind::kPR);
  RunSpec cpu_spec = ndp_spec;
  cpu_spec.system = SystemKind::kCpu;
  const RunResult ndp = run_experiment(ndp_spec);
  const RunResult cpu = run_experiment(cpu_spec);
  // In the CPU system most PTE requests are absorbed by L2/L3 (the paper's
  // motivation for why NDP suffers more).
  const double ndp_meta_dram =
      static_cast<double>(ndp.stats.get("dram.metadata"));
  const double cpu_meta_dram =
      static_cast<double>(cpu.stats.get("dram.metadata"));
  const double ndp_walk_accesses =
      static_cast<double>(ndp.stats.get("walker.mem_accesses"));
  const double cpu_walk_accesses =
      static_cast<double>(cpu.stats.get("walker.mem_accesses"));
  ASSERT_GT(ndp_walk_accesses, 0.0);
  ASSERT_GT(cpu_walk_accesses, 0.0);
  EXPECT_LT(cpu_meta_dram / cpu_walk_accesses,
            ndp_meta_dram / ndp_walk_accesses);
}

TEST(Integration, MultiCoreRaisesNdpPtwLatency) {
  const RunResult one = run_experiment(spec(Mechanism::kRadix, WorkloadKind::kRND, 1));
  const RunResult eight = run_experiment(spec(Mechanism::kRadix, WorkloadKind::kRND, 8));
  EXPECT_GT(eight.avg_ptw_latency, one.avg_ptw_latency)
      << "shared-memory contention must grow PTW latency (paper Fig. 6a)";
}

}  // namespace
}  // namespace ndp
