// Unit tests for the mesh interconnect model.
#include <gtest/gtest.h>

#include "noc/mesh.h"

namespace ndp {
namespace {

TEST(Mesh, GridSideFitsAllTiles) {
  Mesh m(MeshConfig{.num_cores = 8, .num_mem_endpoints = 2});
  EXPECT_GE(m.grid_side() * m.grid_side(), 10u);
  Mesh m1(MeshConfig{.num_cores = 1, .num_mem_endpoints = 2});
  EXPECT_GE(m1.grid_side() * m1.grid_side(), 3u);
}

TEST(Mesh, LatencyIsHopsTimesHopLatency) {
  MeshConfig cfg{.num_cores = 4, .num_mem_endpoints = 2,
                 .hop_latency = 4, .ingress_slot = 1};
  Mesh m(cfg);
  const unsigned hops = m.hops(0, 0);
  const Cycle arrive = m.to_memory(100, 0, 0);
  EXPECT_EQ(arrive, 100 + hops * 4);
  EXPECT_EQ(m.from_memory(arrive, 0, 0), arrive + hops * 4);
}

TEST(Mesh, DifferentCoresDifferentDistances) {
  Mesh m(MeshConfig{.num_cores = 8, .num_mem_endpoints = 2});
  bool any_diff = false;
  for (unsigned c = 1; c < 8; ++c)
    if (m.hops(c, 0) != m.hops(0, 0)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Mesh, IngressSlotSerializesBursts) {
  MeshConfig cfg{.num_cores = 2, .num_mem_endpoints = 1,
                 .hop_latency = 0, .ingress_slot = 3};
  // hop_latency 0 would degenerate positions; use cores at same distance.
  cfg.hop_latency = 1;
  Mesh m(cfg);
  const Cycle a = m.to_memory(10, 0, 0);
  const Cycle b = m.to_memory(10, 0, 0);
  const Cycle c = m.to_memory(10, 0, 0);
  EXPECT_EQ(b, a + 3);
  EXPECT_EQ(c, b + 3);
}

TEST(Mesh, SnapshotCountsPackets) {
  Mesh m(MeshConfig{.num_cores = 2, .num_mem_endpoints = 2});
  m.to_memory(0, 0, 0);
  m.to_memory(5, 1, 1);
  EXPECT_EQ(m.snapshot().get("packet"), 2u);
  m.reset_counters();
  EXPECT_EQ(m.snapshot().get("packet"), 0u);
}

}  // namespace
}  // namespace ndp
