// Tests for the discrete-event engine and experiment runner.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/experiment.h"

namespace ndp {
namespace {

RunSpec tiny_spec(Mechanism m = Mechanism::kRadix, unsigned cores = 1) {
  RunSpec s;
  s.system = SystemKind::kNdp;
  s.cores = cores;
  s.mechanism = m;
  s.workload = WorkloadKind::kRND;
  s.instructions_per_core = 15'000;
  s.warmup_refs = 500;
  s.scale = 1.0 / 64.0;
  return s;
}

TEST(Engine, RespectsInstructionBudget) {
  const RunResult r = run_experiment(tiny_spec());
  ASSERT_EQ(r.cores.size(), 1u);
  EXPECT_GE(r.cores[0].instructions, 15'000u);
  EXPECT_LT(r.cores[0].instructions, 16'000u) << "overshoot bounded by one ref";
  EXPECT_GT(r.cores[0].memrefs, 0u);
  EXPECT_GT(r.total_cycles, r.cores[0].instructions / 8)
      << "cannot exceed the front-end width";
}

TEST(Engine, AllCoresComplete) {
  const RunResult r = run_experiment(tiny_spec(Mechanism::kRadix, 4));
  ASSERT_EQ(r.cores.size(), 4u);
  for (const CoreStats& c : r.cores) {
    EXPECT_GE(c.instructions, 15'000u);
    EXPECT_GT(c.cycles(), 0u);
  }
}

TEST(Engine, AccountingDecomposesOpLatency) {
  const RunResult r = run_experiment(tiny_spec());
  const CoreStats& c = r.cores[0];
  EXPECT_GT(c.translation_cycles, 0u);
  EXPECT_GT(c.data_cycles, 0u);
  EXPECT_GT(c.gap_cycles, 0u);
  EXPECT_GT(r.translation_fraction, 0.0);
  EXPECT_LT(r.translation_fraction, 1.0);
}

TEST(Engine, HeadlineMetricsPopulated) {
  const RunResult r = run_experiment(tiny_spec());
  EXPECT_GT(r.avg_ptw_latency, 0.0);
  EXPECT_GT(r.l1_tlb_miss_rate, 0.0);
  EXPECT_GT(r.l2_tlb_miss_rate, 0.0);
  EXPECT_GT(r.pte_access_share, 0.0);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.stats.get("walker.walks"), 0u);
  EXPECT_GT(r.stats.get("dram.access"), 0u);
}

TEST(Engine, IdealHasNoTranslationCost) {
  const RunResult ideal = run_experiment(tiny_spec(Mechanism::kIdeal));
  EXPECT_DOUBLE_EQ(ideal.translation_fraction, 0.0);
  EXPECT_EQ(ideal.stats.get("walker.walks"), 0u);
  EXPECT_EQ(ideal.stats.get("mem.access.meta"), 0u);
}

TEST(Engine, IdealIsFastest) {
  const RunResult radix = run_experiment(tiny_spec(Mechanism::kRadix));
  const RunResult ideal = run_experiment(tiny_spec(Mechanism::kIdeal));
  EXPECT_LT(ideal.total_cycles, radix.total_cycles);
}

TEST(Engine, NdpageBypassesAndNeverTouchesL1WithMetadata) {
  const RunResult r = run_experiment(tiny_spec(Mechanism::kNdpage));
  EXPECT_GT(r.stats.get("mem.bypassed"), 0u);
  EXPECT_EQ(r.stats.get("l1.hit.meta"), 0u);
  EXPECT_EQ(r.stats.get("l1.miss.meta"), 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const RunResult a = run_experiment(tiny_spec());
  const RunResult b = run_experiment(tiny_spec());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.stats.get("walker.walks"), b.stats.get("walker.walks"));
  EXPECT_EQ(a.stats.get("dram.access"), b.stats.get("dram.access"));
}

TEST(Engine, MoreCoresMoreAggregateWork) {
  const RunResult one = run_experiment(tiny_spec(Mechanism::kRadix, 1));
  const RunResult four = run_experiment(tiny_spec(Mechanism::kRadix, 4));
  EXPECT_GT(four.total_instructions(), 3 * one.total_instructions());
  // Shared-resource contention: 4 cores cannot be faster per core.
  EXPECT_GE(four.total_cycles * 10, one.total_cycles * 9);
}

TEST(Experiment, CompareMechanismsProducesSpeedups) {
  const MechanismComparison mc =
      compare_mechanisms(tiny_spec(), {"ndpage", "ideal"});
  EXPECT_EQ(mc.baseline, "Radix");
  EXPECT_EQ(mc.mechanisms,
            (std::vector<std::string>{"Radix", "NDPage", "Ideal"}));
  EXPECT_DOUBLE_EQ(mc.speedup_over_baseline.at("Radix"), 1.0);
  EXPECT_GT(mc.speedup_over_baseline.at("Ideal"), 1.0);
  EXPECT_GT(mc.speedup_over_baseline.at("NDPage"), 0.5);
  EXPECT_EQ(mc.results.size(), 3u);
}

TEST(Experiment, CompareMechanismsTakesParameterizedSpecs) {
  // The string-keyed comparison accepts parameter specs — the enum-keyed
  // API could not express "ech(ways=8)" at all. Duplicates (including
  // respelled aliases of the baseline) collapse to one run.
  const MechanismComparison mc = compare_mechanisms(
      tiny_spec(), {"ech(ways=8)", "RADIX", "ech(ways=8)"});
  EXPECT_EQ(mc.mechanisms,
            (std::vector<std::string>{"Radix", "ECH(ways=8)"}));
  EXPECT_EQ(mc.results.size(), 2u);
  EXPECT_GT(mc.results.at("ECH(ways=8)").total_cycles, 0u);
  EXPECT_GT(mc.speedup_over_baseline.at("ECH(ways=8)"), 0.0);
  EXPECT_THROW(compare_mechanisms(tiny_spec(), {"not-a-mechanism"}),
               std::invalid_argument);
}

TEST(Experiment, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geomean({1.0}), 1.0);
}

TEST(Experiment, DefaultInstructionsOverridableByEnv) {
  // Exercise both branches explicitly so the test is independent of the
  // ambient environment (CI sets NDPAGE_INSTRS to shorten runs).
  const char* saved = std::getenv("NDPAGE_INSTRS");
  const std::string saved_value = saved ? saved : "";
  ::setenv("NDPAGE_INSTRS", "123456", 1);
  EXPECT_EQ(default_instructions(), 123'456u);
  ::setenv("NDPAGE_INSTRS", "0", 1);  // non-positive: fall back to default
  EXPECT_EQ(default_instructions(), 150'000u);
  ::unsetenv("NDPAGE_INSTRS");
  EXPECT_EQ(default_instructions(), 150'000u);
  if (saved) ::setenv("NDPAGE_INSTRS", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace ndp
