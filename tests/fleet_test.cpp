// Fleet-mode contract (src/fleet/): a coordinator sharding grids across
// worker daemons must stream documents byte-identical to single-process
// batch — including after a worker dies mid-run and its shard fails over —
// answer repeated grids from the digest-keyed result cache, and surface a
// merge rejection as an error instead of corrupt bytes. Plus the satellite
// contracts this PR rode in with: daemon connection multiplexing, the
// enriched status envelope, and client connect retries.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "fleet/coordinator.h"
#include "fleet/result_cache.h"
#include "fleet/worker.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

namespace ndp {
namespace {

#ifndef NDP_SOURCE_DIR
#error "fleet_test needs NDP_SOURCE_DIR (set by CMakeLists.txt)"
#endif

/// Same small-but-non-degenerate grid the serve suite pins: 8 cells, image
/// and material sharing in play, baseline aggregate in the envelope.
RunConfig fleet_grid() {
  return RunConfig::from_json(R"json({
    "name": "fleet_tiny",
    "mechanisms": ["radix", "ndpage"],
    "workloads": ["RND", "PR"],
    "cores": [1, 2],
    "instructions": 2000,
    "warmup": 150,
    "scale": 0.015625,
    "baseline": "radix"
  })json");
}

/// One golden grid, budget-reduced the way the golden suite does it.
RunConfig golden_grid(const char* file) {
  RunConfig cfg = RunConfig::load(std::string(NDP_SOURCE_DIR) + "/" + file);
  cfg.instructions = 2000;
  cfg.warmup = 150;
  cfg.scale = 0.015625;
  return cfg;
}

std::string batch_json(const RunConfig& cfg, unsigned jobs = 1) {
  SweepOptions opts;
  opts.jobs = jobs;
  return to_json(run_sweep(cfg, opts));
}

std::string type_of(const std::string& envelope) {
  return JsonValue::parse(envelope).at("type").as_string();
}

std::pair<int, int> make_socketpair() {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
    throw std::runtime_error("socketpair failed");
  return {sv[0], sv[1]};
}

/// An in-process worker daemon reachable through WorkerOptions.connect_fn:
/// each connect hands the coordinator one end of a fresh socketpair and
/// serves the other end on a background serve_stream thread — the fleet
/// topology with no TCP involved.
class InProcessWorker {
 public:
  explicit InProcessWorker(serve::ServeOptions opts = {}) : server_(opts) {}

  ~InProcessWorker() {
    server_.request_shutdown();
    std::lock_guard<std::mutex> lock(mu_);
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
  }

  fleet::WorkerOptions options(const std::string& label) {
    fleet::WorkerOptions w;
    w.label = label;
    w.connect_retries = 0;
    w.connect_fn = [this] {
      const auto [coord_end, worker_end] = make_socketpair();
      std::lock_guard<std::mutex> lock(mu_);
      threads_.emplace_back([this, fd = worker_end] {
        server_.serve_stream(fd, fd);
        ::close(fd);
      });
      return std::pair<int, int>{coord_end, coord_end};
    };
    return w;
  }

  serve::Server& server() { return server_; }

 private:
  serve::Server server_;
  std::mutex mu_;
  std::vector<std::thread> threads_;
};

/// A worker that connects fine, then drops the link as soon as a run
/// request arrives — after streaming one bogus cell frame, so failover
/// dedup is exercised too. Reconnects are refused: once dead, stays dead.
fleet::WorkerOptions dying_worker(std::vector<std::thread>& threads,
                                  std::mutex& threads_mu) {
  fleet::WorkerOptions w;
  w.label = "dying";
  w.connect_retries = 0;
  w.connect_fn = [&threads, &threads_mu,
                  connects = std::make_shared<std::atomic<int>>(0)] {
    if (connects->fetch_add(1) > 0)
      throw std::runtime_error("worker host is gone");
    const auto [coord_end, worker_end] = make_socketpair();
    std::lock_guard<std::mutex> lock(threads_mu);
    threads.emplace_back([fd = worker_end] {
      serve::LineReader reader(fd);
      std::string line;
      while (reader.next(line) == serve::LineReader::Status::kLine) {
        const JsonValue req = JsonValue::parse(line);
        if (req.at("op").as_string() != "run") continue;
        // One cell frame a healthy shard 0 would have produced first, then
        // the "crash": the coordinator must both dedupe this index against
        // the failover re-run and keep the final document byte-identical.
        serve::write_line(fd, serve::cell_envelope_raw(
                                  req.at("id").as_string(), 0, 3,
                                  R"({"fake":"pre-crash cell"})"));
        break;
      }
      ::close(fd);
    });
    return std::pair<int, int>{coord_end, coord_end};
  };
  return w;
}

/// A worker whose "done" envelope embeds a document that cannot merge (no
/// shard provenance) — a corrupt or wrong-version worker.
fleet::WorkerOptions evil_worker(std::vector<std::thread>& threads,
                                 std::mutex& threads_mu,
                                 std::string bad_envelope) {
  fleet::WorkerOptions w;
  w.label = "evil";
  w.connect_retries = 0;
  w.connect_fn = [&threads, &threads_mu,
                  bad = std::move(bad_envelope)] {
    const auto [coord_end, worker_end] = make_socketpair();
    std::lock_guard<std::mutex> lock(threads_mu);
    threads.emplace_back([fd = worker_end, bad] {
      serve::LineReader reader(fd);
      std::string line;
      while (reader.next(line) == serve::LineReader::Status::kLine) {
        const JsonValue req = JsonValue::parse(line);
        if (req.at("op").as_string() != "run") continue;
        serve::write_line(
            fd, serve::done_envelope_raw(req.at("id").as_string(), 0, bad));
      }
      ::close(fd);
    });
    return std::pair<int, int>{coord_end, coord_end};
  };
  return w;
}

// --- fan-out byte-identity --------------------------------------------------

TEST(Fleet, ThreeWorkerRunIsByteIdenticalToBatchOnGoldenGrids) {
  InProcessWorker w0, w1, w2;
  fleet::FleetOptions fopts;
  fopts.workers.push_back(w0.options("w0"));
  fopts.workers.push_back(w1.options("w1"));
  fopts.workers.push_back(w2.options("w2"));
  fopts.cache = false;  // identity is the subject here, not caching
  fleet::Coordinator coordinator(std::move(fopts));

  for (const char* file :
       {"experiments/ci_smoke.json", "experiments/ablation_ech_ways.json"}) {
    const RunConfig cfg = golden_grid(file);
    const std::string batch = batch_json(cfg);

    std::mutex mu;
    std::set<std::size_t> seen;
    std::size_t total_seen = 0;
    const fleet::Coordinator::RunOutcome out = coordinator.run_grid(
        cfg, /*use_cache=*/true, /*jobs=*/1,
        [&](std::size_t index, std::size_t total, std::string_view) {
          std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(seen.insert(index).second) << "cell " << index
                                                 << " forwarded twice";
          total_seen = total;
        });

    EXPECT_EQ(batch, out.envelope) << file;  // byte-identical to batch
    EXPECT_FALSE(out.cache_hit);
    EXPECT_EQ(out.cells, seen.size());  // every cell forwarded exactly once
    EXPECT_EQ(out.cells, total_seen);
  }
}

TEST(Fleet, ClientStreamThroughCoordinatorMatchesBatch) {
  InProcessWorker w0, w1;
  fleet::FleetOptions fopts;
  fopts.workers.push_back(w0.options("w0"));
  fopts.workers.push_back(w1.options("w1"));
  fleet::Coordinator coordinator(std::move(fopts));

  const auto [client_end, coord_end] = make_socketpair();
  std::thread conn([&coordinator, fd = coord_end] {
    coordinator.serve_stream(fd, fd);
    ::close(fd);
  });
  serve::Client client(client_end, client_end, /*own_fds=*/true);

  const RunConfig cfg = fleet_grid();
  std::size_t cells_seen = 0;
  const std::string envelope = client.run(
      "f1", cfg, /*jobs=*/0,
      [&](std::size_t done, std::size_t) { cells_seen = done; });
  EXPECT_EQ(batch_json(cfg), envelope);
  EXPECT_EQ(8u, cells_seen);

  // The coordinator's status envelope: role, protocol, per-worker health,
  // cache stats.
  const JsonValue status = JsonValue::parse(
      client.roundtrip(serve::simple_request_line("status", "st")));
  EXPECT_EQ("status", status.at("type").as_string());
  EXPECT_EQ("coordinator", status.at("role").as_string());
  EXPECT_EQ(serve::kProtocolVersion, status.at("protocol_version").as_u64());
  EXPECT_EQ(2u, status.at("workers").array().size());
  for (const JsonValue& worker : status.at("workers").array())
    EXPECT_TRUE(worker.at("up").as_bool()) << worker.at("worker").as_string();
  EXPECT_EQ(1u, status.at("cache").at("entries").as_u64());

  EXPECT_EQ("bye", type_of(client.roundtrip(
                       serve::simple_request_line("shutdown", "z"))));
  conn.join();
  coordinator.wait();
}

// --- failover ---------------------------------------------------------------

TEST(Fleet, WorkerDeathMidRunFailsOverWithIdenticalBytes) {
  obs::Counter& failovers = obs::Metrics::instance().counter(
      "ndpsim_fleet_failovers_total",
      "Fleet shards re-dispatched after a worker failure");
  const std::uint64_t failovers_before = failovers.value();

  std::vector<std::thread> fake_threads;
  std::mutex fake_mu;
  InProcessWorker w1, w2;
  fleet::FleetOptions fopts;
  // The dying worker is live at dispatch, so the run fans out as 3 shards
  // of 3; its shard must be re-run by a survivor as the same shard of the
  // ORIGINAL 3 for the merge to reproduce batch bytes.
  fopts.workers.push_back(dying_worker(fake_threads, fake_mu));
  fopts.workers.push_back(w1.options("w1"));
  fopts.workers.push_back(w2.options("w2"));
  fopts.cache = false;
  fleet::Coordinator coordinator(std::move(fopts));

  const RunConfig cfg = fleet_grid();
  std::mutex mu;
  std::set<std::size_t> seen;
  const fleet::Coordinator::RunOutcome out = coordinator.run_grid(
      cfg, /*use_cache=*/true, /*jobs=*/1,
      [&](std::size_t index, std::size_t, std::string_view) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(index).second)
            << "cell " << index << " forwarded twice across the failover";
      });

  EXPECT_EQ(batch_json(cfg), out.envelope);
  EXPECT_EQ(8u, out.cells);
  EXPECT_EQ(8u, seen.size());
  EXPECT_GT(failovers.value(), failovers_before);

  for (std::thread& t : fake_threads) t.join();
}

TEST(Fleet, NoReachableWorkerIsARuntimeError) {
  fleet::WorkerOptions unreachable;
  unreachable.label = "void";
  unreachable.connect_retries = 0;
  unreachable.connect_fn =
      []() -> std::pair<int, int> { throw std::runtime_error("refused"); };
  fleet::FleetOptions fopts;
  fopts.workers.push_back(std::move(unreachable));
  fleet::Coordinator coordinator(std::move(fopts));
  EXPECT_EQ(0u, coordinator.live_workers());
  EXPECT_THROW(coordinator.run_grid(fleet_grid()), std::runtime_error);
}

// --- result cache -----------------------------------------------------------

TEST(Fleet, ResultCacheHitsRepeatedGridsAndHonoursBypass) {
  obs::Counter& hits = obs::Metrics::instance().counter(
      "ndpsim_fleet_cache_hits_total", "Fleet result-cache hits");
  const std::uint64_t hits_before = hits.value();

  InProcessWorker w0;
  fleet::FleetOptions fopts;
  fopts.workers.push_back(w0.options("w0"));
  fleet::Coordinator coordinator(std::move(fopts));

  const RunConfig cfg = fleet_grid();
  const fleet::Coordinator::RunOutcome cold = coordinator.run_grid(cfg);
  EXPECT_FALSE(cold.cache_hit);

  // Identical grid again: answered from the cache, same bytes, no cells.
  std::size_t cells_streamed = 0;
  const fleet::Coordinator::RunOutcome warm = coordinator.run_grid(
      cfg, /*use_cache=*/true, /*jobs=*/0,
      [&](std::size_t, std::size_t, std::string_view) { ++cells_streamed; });
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.envelope, warm.envelope);
  EXPECT_EQ(cold.cells, warm.cells);
  EXPECT_EQ(0u, cells_streamed);
  EXPECT_GT(hits.value(), hits_before);

  // Output-path / description fields don't shape the document: still a hit.
  RunConfig respelled = cfg;
  respelled.description = "same grid, different paperwork";
  respelled.json_output = "elsewhere.json";
  EXPECT_TRUE(coordinator.run_grid(respelled).cache_hit);
  EXPECT_EQ(fleet::ResultCache::key_of(cfg),
            fleet::ResultCache::key_of(respelled));

  // Anything that shapes the document keys differently.
  RunConfig reshaped = cfg;
  reshaped.seed = cfg.seed + 1;
  EXPECT_NE(fleet::ResultCache::key_of(cfg),
            fleet::ResultCache::key_of(reshaped));

  // The bypass knob skips the lookup: the grid re-runs on the worker.
  const fleet::Coordinator::RunOutcome bypass =
      coordinator.run_grid(cfg, /*use_cache=*/false);
  EXPECT_FALSE(bypass.cache_hit);
  EXPECT_EQ(cold.envelope, bypass.envelope);

  const fleet::ResultCache::Stats stats = coordinator.cache().stats();
  EXPECT_EQ(1u, stats.entries);
  EXPECT_GE(stats.hits, 2u);
}

TEST(Fleet, ResultCacheEvictsLeastRecentlyUsed) {
  fleet::ResultCache cache(2);
  cache.store("a", 1, "A");
  cache.store("b", 1, "B");
  ASSERT_TRUE(cache.lookup("a").has_value());  // "a" now most recent
  cache.store("c", 1, "C");                    // evicts "b"
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(1u, cache.stats().evictions);
}

// --- merge rejection --------------------------------------------------------

TEST(Fleet, UnmergeableWorkerEnvelopeIsRejectedNotSpliced) {
  std::vector<std::thread> fake_threads;
  std::mutex fake_mu;
  InProcessWorker honest;
  // The evil worker answers its shard with an *unsharded* document — no
  // shard provenance, so merge_sharded_envelopes must refuse it.
  const std::string bad = batch_json(fleet_grid());

  fleet::FleetOptions fopts;
  fopts.workers.push_back(honest.options("honest"));
  fopts.workers.push_back(evil_worker(fake_threads, fake_mu, bad));
  fopts.cache = false;
  {
    fleet::Coordinator coordinator(std::move(fopts));

    EXPECT_THROW(coordinator.run_grid(fleet_grid()), std::invalid_argument);

    // Through the wire the same failure is an error envelope, not bytes.
    const auto [client_end, coord_end] = make_socketpair();
    std::thread conn([&coordinator, fd = coord_end] {
      coordinator.serve_stream(fd, fd);
      ::close(fd);
    });
    serve::Client client(client_end, client_end, /*own_fds=*/true);
    ASSERT_TRUE(client.send(serve::run_request_line("bad", fleet_grid())));
    std::string line;
    std::string terminal;
    while (client.next(line, 30000) == serve::LineReader::Status::kLine) {
      const std::string type = type_of(line);
      if (type != "cell") {
        terminal = type;
        break;
      }
    }
    EXPECT_EQ("error", terminal);
    EXPECT_EQ("bye", type_of(client.roundtrip(
                         serve::simple_request_line("shutdown", "z"))));
    conn.join();
    coordinator.wait();
  }
  // The evil worker only sees EOF once the coordinator's links are torn
  // down, so it can only be reaped after the Coordinator is gone.
  for (std::thread& t : fake_threads) t.join();
}

// --- fleet config parsing ---------------------------------------------------

TEST(Fleet, ParseWorkerEndpointValidatesHostAndPort) {
  const fleet::WorkerOptions w = fleet::parse_worker_endpoint("10.0.0.7:7071");
  EXPECT_EQ("10.0.0.7", w.host);
  EXPECT_EQ(7071u, w.port);

  EXPECT_THROW(fleet::parse_worker_endpoint("no-port"),
               std::invalid_argument);
  EXPECT_THROW(fleet::parse_worker_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_worker_endpoint("host:0"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_worker_endpoint("host:99999"),
               std::invalid_argument);
  EXPECT_THROW(fleet::parse_worker_endpoint(":7071"), std::invalid_argument);
}

TEST(Fleet, FleetOptionsFromJsonIsStrict) {
  const fleet::FleetOptions opts = fleet::FleetOptions::from_json(R"json({
    "port": 7080,
    "workers": ["127.0.0.1:7071", "127.0.0.1:7072"],
    "jobs": 2,
    "request_timeout_ms": 30000,
    "connect_retries": 5,
    "cache_capacity": 8
  })json");
  EXPECT_EQ(7080u, opts.port);
  ASSERT_EQ(2u, opts.workers.size());
  EXPECT_EQ(7072u, opts.workers[1].port);
  EXPECT_EQ(5u, opts.workers[0].connect_retries);  // applied to every worker
  EXPECT_EQ(2u, opts.jobs);
  EXPECT_EQ(30000, opts.request_timeout_ms);
  EXPECT_EQ(8u, opts.cache_capacity);

  // Unknown keys are errors, same strictness as experiment configs.
  EXPECT_THROW(fleet::FleetOptions::from_json(
                   R"({"workers":["a:1"],"wrokers":true})"),
               std::invalid_argument);
  // "workers" is required and must be non-empty strings.
  EXPECT_THROW(fleet::FleetOptions::from_json(R"({"port":1})"),
               std::invalid_argument);
  EXPECT_THROW(fleet::FleetOptions::from_json(R"({"workers":[7071]})"),
               std::invalid_argument);
}

// --- satellite: daemon connection multiplexing ------------------------------

TEST(Fleet, DaemonMultiplexesRunsOnOneConnection) {
  serve::ServeOptions opts;
  opts.jobs = 1;
  serve::Server server(opts);
  const std::uint16_t port = server.start();
  serve::Client client = serve::Client::connect("127.0.0.1", port);

  const RunConfig cfg = fleet_grid();
  const std::string batch = batch_json(cfg);

  // Two runs and a status ping down the same socket before reading a
  // single reply: the daemon must execute the runs concurrently and
  // interleave frames by request id, not serialize whole requests.
  ASSERT_TRUE(client.send(serve::run_request_line("mux-a", cfg)));
  ASSERT_TRUE(client.send(serve::run_request_line("mux-b", cfg)));
  ASSERT_TRUE(client.send(serve::simple_request_line("status", "mux-s")));

  std::map<std::string, std::string> done;  // id -> embedded document
  bool status_seen = false;
  std::string line;
  while (done.size() < 2 &&
         client.next(line, 60000) == serve::LineReader::Status::kLine) {
    const JsonValue frame = JsonValue::parse(line);
    const std::string type = frame.at("type").as_string();
    if (type == "status") {
      // The ping answered while both runs were still streaming — proof the
      // connection is multiplexed, plus the satellite status fields.
      status_seen = true;
      EXPECT_EQ(serve::kProtocolVersion,
                frame.at("protocol_version").as_u64());
      // Both runs, plus the status request itself while being answered.
      EXPECT_EQ(3u, frame.at("in_flight_requests").as_u64());
      EXPECT_TRUE(frame.find("uptime_ms") != nullptr);
    } else if (type == "done") {
      done[frame.at("id").as_string()] =
          std::string(raw_member(line, "envelope"));
    } else {
      ASSERT_EQ("cell", type) << line;
    }
  }
  ASSERT_TRUE(status_seen);
  ASSERT_EQ(2u, done.size());
  EXPECT_EQ(batch, done["mux-a"]);
  EXPECT_EQ(batch, done["mux-b"]);

  EXPECT_EQ("bye", type_of(client.roundtrip(
                       serve::simple_request_line("shutdown", "z"))));
  server.wait();
}

// --- satellite: client connect retries --------------------------------------

TEST(Fleet, ClientConnectRetriesUntilTheDaemonAppears) {
  // Reserve a port the kernel considers free, release it, and start the
  // daemon there only after a delay — the client's first attempts see
  // connection-refused and must retry with backoff instead of giving up.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(0, ::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)));
  socklen_t len = sizeof(addr);
  ASSERT_EQ(0, ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr),
                             &len));
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  std::unique_ptr<serve::Server> server;
  std::thread late_start([&server, port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    serve::ServeOptions opts;
    opts.port = port;
    server = std::make_unique<serve::Server>(opts);
    server->start();
  });

  serve::ConnectRetry retry;
  retry.retries = 40;
  retry.backoff_ms = 50;
  retry.backoff_max_ms = 200;
  serve::Client client = serve::Client::connect("127.0.0.1", port, retry);
  const JsonValue status = JsonValue::parse(
      client.roundtrip(serve::simple_request_line("status", "hi")));
  EXPECT_EQ("status", status.at("type").as_string());
  EXPECT_EQ("bye", type_of(client.roundtrip(
                       serve::simple_request_line("shutdown", "z"))));
  late_start.join();
  server->wait();
}

TEST(Fleet, ClientConnectWithoutRetriesFailsFast) {
  // A port nothing listens on: reserve one, close it, dial it.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(0, ::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)));
  socklen_t len = sizeof(addr);
  ASSERT_EQ(0, ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr),
                             &len));
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  EXPECT_THROW(serve::Client::connect("127.0.0.1", port),
               std::runtime_error);
  serve::ConnectRetry retry;
  retry.retries = 2;
  retry.backoff_ms = 10;
  EXPECT_THROW(serve::Client::connect("127.0.0.1", port, retry),
               std::runtime_error);
}

}  // namespace
}  // namespace ndp
