// Ordering contract of the engine's event queue (sim/event_heap.h).
//
// The golden suite is sensitive to the heap's same-cycle tie order, so the
// contract under test is stronger than "a time-sorted order": pop order must
// be a pure function of the heap-op sequence (deterministic), and
// drain_same_cycle() must yield exactly the sequence repeated top()/pop()
// would have produced — including ties — so push-free consumers can batch
// without perturbing anything the goldens pin.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/event_heap.h"

namespace ndp {
namespace {

bool same_event(const EngineEvent& a, const EngineEvent& b) {
  return a.time == b.time && a.core == b.core && a.slot == b.slot;
}

TEST(EventHeap, PopsInNonDecreasingTimeOrder) {
  Rng rng(42);
  EventHeap pq(256);
  for (unsigned i = 0; i < 256; ++i)
    pq.push(EngineEvent{rng.below(64), static_cast<unsigned>(rng.below(8)),
                        static_cast<unsigned>(rng.below(4))});
  Cycle last = 0;
  while (!pq.empty()) {
    EXPECT_GE(pq.top().time, last);
    last = pq.top().time;
    pq.pop();
  }
}

TEST(EventHeap, CountersTrackPushesAndPeak) {
  EventHeap pq(8);
  EXPECT_EQ(pq.pushes(), 0u);
  EXPECT_EQ(pq.peak(), 0u);
  pq.push(EngineEvent{3, 0, EventHeap::kIssueSlot});
  pq.push(EngineEvent{1, 1, 0});
  pq.push(EngineEvent{2, 0, 1});
  EXPECT_EQ(pq.pushes(), 3u);
  EXPECT_EQ(pq.peak(), 3u);
  pq.pop();
  pq.pop();
  pq.push(EngineEvent{9, 2, 0});
  // Peak is a high-water mark, not the current size.
  EXPECT_EQ(pq.pushes(), 4u);
  EXPECT_EQ(pq.peak(), 3u);
  EXPECT_EQ(pq.size(), 2u);
}

// Pop order — including the order of same-cycle ties — is a deterministic
// function of the push/pop sequence. Two heaps fed identical op sequences
// must produce identical event sequences, field for field. This is the
// property that lets the golden grids pin simulated results at all.
TEST(EventHeap, TieOrderIsDeterministic) {
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    Rng rng_a(seed), rng_b(seed);
    EventHeap a(512), b(512);
    std::vector<EngineEvent> seq_a, seq_b;
    auto step = [](Rng& rng, EventHeap& pq, std::vector<EngineEvent>& seq) {
      // Heavy tie pressure: only 4 distinct times across 300 ops.
      if (pq.empty() || rng.below(3) != 0) {
        pq.push(EngineEvent{rng.below(4), static_cast<unsigned>(rng.below(8)),
                            static_cast<unsigned>(rng.below(4))});
      } else {
        seq.push_back(pq.top());
        pq.pop();
      }
    };
    for (unsigned i = 0; i < 300; ++i) {
      step(rng_a, a, seq_a);
      step(rng_b, b, seq_b);
    }
    while (!a.empty()) {
      seq_a.push_back(a.top());
      a.pop();
    }
    while (!b.empty()) {
      seq_b.push_back(b.top());
      b.pop();
    }
    ASSERT_EQ(seq_a.size(), seq_b.size());
    for (std::size_t i = 0; i < seq_a.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_TRUE(same_event(seq_a[i], seq_b[i]));
    }
  }
}

// drain_same_cycle() == repeated top()/pop() until the time changes, against
// an independently maintained reference heap — same events, same tie order,
// same returned cycle. Interleaves fresh pushes between drains (the allowed
// regime: pushes land between batches, never during one).
TEST(EventHeap, DrainSameCycleMatchesRepeatedPop) {
  Rng rng(99);
  EventHeap drained(512), reference(512);
  // Seed both with an identical tie-heavy population.
  for (unsigned i = 0; i < 64; ++i) {
    const EngineEvent e{rng.below(8), static_cast<unsigned>(rng.below(8)),
                        static_cast<unsigned>(rng.below(4))};
    drained.push(e);
    reference.push(e);
  }
  std::vector<EngineEvent> batch;
  Cycle next_time = 100;  // future-cycle pushes between batches
  unsigned push_rounds = 0;
  while (!drained.empty()) {
    batch.clear();
    const Cycle now = drained.drain_same_cycle(batch);
    ASSERT_FALSE(batch.empty());
    for (const EngineEvent& e : batch) {
      ASSERT_FALSE(reference.empty());
      EXPECT_EQ(reference.top().time, now);
      EXPECT_TRUE(same_event(reference.top(), e));
      reference.pop();
    }
    // The batch really was exhaustive: nothing at `now` remains.
    if (!drained.empty()) EXPECT_GT(drained.top().time, now);
    if (!reference.empty()) EXPECT_GT(reference.top().time, now);
    // Occasionally push identical future-cycle work into both heaps
    // (bounded rounds, so draining always outpaces refilling).
    if (push_rounds < 32 && rng.below(2) == 0) {
      ++push_rounds;
      for (unsigned k = 0; k < 4; ++k) {
        const EngineEvent e{next_time + rng.below(4),
                            static_cast<unsigned>(rng.below(8)),
                            static_cast<unsigned>(rng.below(4))};
        drained.push(e);
        reference.push(e);
      }
      next_time += 8;
    }
  }
  EXPECT_TRUE(reference.empty());
}

// The scratch vector is appended to, never cleared — the caller owns reuse.
TEST(EventHeap, DrainAppendsWithoutClearing) {
  EventHeap pq(4);
  pq.push(EngineEvent{5, 1, 0});
  pq.push(EngineEvent{5, 2, 1});
  std::vector<EngineEvent> out;
  out.push_back(EngineEvent{0, 99, 99});  // sentinel survives the drain
  const Cycle now = pq.drain_same_cycle(out);
  EXPECT_EQ(now, 5u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].core, 99u);
  EXPECT_EQ(out[1].time, 5u);
  EXPECT_EQ(out[2].time, 5u);
  EXPECT_TRUE(pq.empty());
}

}  // namespace
}  // namespace ndp
