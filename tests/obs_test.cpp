// Observability layer contract (src/obs/): the metrics registry's bucket
// math and Prometheus rendering, counter/histogram integrity under
// concurrent hammering, the structured logger's level filtering and
// single-write-per-line guarantee, trace export validity — and the
// property the whole layer hangs on: simulated results are byte-identical
// whether observability is on or off.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

namespace ndp {
namespace {

// --- histogram bucket math --------------------------------------------------

TEST(ObsHistogram, BucketAssignmentCountsAndSum) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 5.0}) h.observe(v);

  // Inclusive upper bounds: 1.0 lands in the first bucket, 4.0 in the
  // third, 5.0 in the implicit +Inf bucket.
  EXPECT_EQ(2u, h.bucket_count(0));
  EXPECT_EQ(1u, h.bucket_count(1));
  EXPECT_EQ(1u, h.bucket_count(2));
  EXPECT_EQ(1u, h.bucket_count(3));  // +Inf
  EXPECT_EQ(5u, h.count());
  EXPECT_DOUBLE_EQ(12.0, h.sum());
}

TEST(ObsHistogram, QuantilesInterpolateAndClamp) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 5.0}) h.observe(v);

  // rank 2.5 crosses into the (1,2] bucket halfway through its single
  // observation: 1 + 0.5 * (2-1).
  EXPECT_DOUBLE_EQ(1.5, h.quantile(0.5));
  // The +Inf bucket has no finite width; quantiles landing there clamp to
  // the last finite bound.
  EXPECT_DOUBLE_EQ(4.0, h.quantile(1.0));
  EXPECT_DOUBLE_EQ(0.0, h.quantile(0.0));
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.quantile(7.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(-1.0));
}

TEST(ObsHistogram, EdgeQuantilesPinToOccupiedBuckets) {
  // q=0 reports the lower edge of the *first occupied* bucket — the
  // tightest lower bound on the observed minimum the histogram can state —
  // not the floor of whichever bucket a floating-point rank of 0 lands in.
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(3.0);  // sole observation, in the (2,4] bucket
  EXPECT_DOUBLE_EQ(2.0, h.quantile(0.0));
  EXPECT_DOUBLE_EQ(4.0, h.quantile(1.0));
  EXPECT_DOUBLE_EQ(3.0, h.quantile(0.5));  // interior interpolates inside it
}

TEST(ObsHistogram, MaxQuantileNeverPassesLastOccupiedBucket) {
  // All mass in the first bucket: q=1 must report that bucket's upper edge,
  // whatever rank rounding does — never an edge of a later, empty bucket.
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(0.7);
  EXPECT_DOUBLE_EQ(0.0, h.quantile(0.0));
  EXPECT_DOUBLE_EQ(1.0, h.quantile(1.0));
  EXPECT_LE(h.quantile(0.999), 1.0);
}

TEST(ObsHistogram, EdgeQuantilesSkipEmptyEndBuckets) {
  // Occupied range is interior: both edges resolve structurally to the
  // occupied buckets, skipping the empty first and +Inf buckets.
  obs::Histogram h({1.0, 2.0, 4.0, 8.0});
  h.observe(1.5);  // (1,2]
  h.observe(5.0);  // (4,8]
  EXPECT_DOUBLE_EQ(1.0, h.quantile(0.0));
  EXPECT_DOUBLE_EQ(8.0, h.quantile(1.0));
}

TEST(ObsHistogram, EmptyHistogramAndBadBounds) {
  obs::Histogram empty({0.5});
  EXPECT_EQ(0u, empty.count());
  EXPECT_DOUBLE_EQ(0.0, empty.quantile(0.5));

  const std::vector<double> decreasing{2.0, 1.0};
  const std::vector<double> repeated{1.0, 1.0};
  EXPECT_THROW(obs::Histogram{decreasing}, std::invalid_argument);
  EXPECT_THROW(obs::Histogram{repeated}, std::invalid_argument);
}

TEST(ObsHistogram, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = obs::Histogram::latency_bounds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(0.0001, bounds.front());  // 100 µs floor
  EXPECT_DOUBLE_EQ(10.0, bounds.back());     // 10 s ceiling
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
}

// --- concurrent increments --------------------------------------------------

TEST(ObsMetrics, ConcurrentIncrementsLoseNothing) {
  obs::Counter& c = obs::Metrics::instance().counter(
      "obs_test_concurrent_total", "obs_test concurrency counter");
  obs::Histogram& h = obs::Metrics::instance().histogram(
      "obs_test_concurrent_seconds", "obs_test concurrency histogram", {},
      {0.5, 1.0});
  c.reset_for_test();
  h.reset_for_test();

  constexpr unsigned kThreads = 8;
  constexpr unsigned kPer = 10000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (unsigned i = 0; i < kPer; ++i) {
        c.inc();
        h.observe(1.0);  // one bucket, contended CAS on the sum
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(std::uint64_t{kThreads} * kPer, c.value());
  EXPECT_EQ(std::uint64_t{kThreads} * kPer, h.count());
  EXPECT_EQ(std::uint64_t{kThreads} * kPer, h.bucket_count(1));
  // 1.0 + 1.0 + ... is exact in binary floating point, so the CAS loop
  // must account for every single observation.
  EXPECT_DOUBLE_EQ(static_cast<double>(kThreads) * kPer, h.sum());
}

// --- Prometheus rendering ---------------------------------------------------

TEST(ObsMetrics, PrometheusTextRendersFamiliesChildrenAndCumulativeBuckets) {
  obs::Metrics& m = obs::Metrics::instance();
  obs::Counter& a =
      m.counter("obs_test_render_total", "obs_test render counter", "k=\"a\"");
  obs::Counter& b =
      m.counter("obs_test_render_total", "obs_test render counter", "k=\"b\"");
  obs::Gauge& g = m.gauge("obs_test_render_gauge", "obs_test render gauge");
  obs::Histogram& h = m.histogram("obs_test_render_seconds",
                                  "obs_test render histogram", {}, {0.5, 1.0});
  a.reset_for_test();
  b.reset_for_test();
  h.reset_for_test();
  a.inc(3);
  b.inc(1);
  g.set(-7);
  h.observe(0.25);
  h.observe(0.75);
  h.observe(2.0);

  const std::string text = m.prometheus_text();
  const auto expect_block = [&](const std::string& block) {
    EXPECT_NE(std::string::npos, text.find(block))
        << "missing:\n" << block << "\nin:\n" << text;
  };
  // Children render in label order under one family header.
  expect_block(
      "# HELP obs_test_render_total obs_test render counter\n"
      "# TYPE obs_test_render_total counter\n"
      "obs_test_render_total{k=\"a\"} 3\n"
      "obs_test_render_total{k=\"b\"} 1\n");
  expect_block(
      "# TYPE obs_test_render_gauge gauge\n"
      "obs_test_render_gauge -7\n");
  // Buckets render cumulatively with the implicit +Inf, then _sum/_count.
  expect_block(
      "# TYPE obs_test_render_seconds histogram\n"
      "obs_test_render_seconds_bucket{le=\"0.5\"} 1\n"
      "obs_test_render_seconds_bucket{le=\"1\"} 2\n"
      "obs_test_render_seconds_bucket{le=\"+Inf\"} 3\n"
      "obs_test_render_seconds_sum 3\n"
      "obs_test_render_seconds_count 3\n");
}

TEST(ObsMetrics, NameCollisionAcrossTypesThrows) {
  obs::Metrics& m = obs::Metrics::instance();
  m.counter("obs_test_collision_total", "obs_test collision");
  EXPECT_THROW(m.gauge("obs_test_collision_total", "other type"),
               std::invalid_argument);
  EXPECT_THROW(m.histogram("obs_test_collision_total", "other type"),
               std::invalid_argument);
}

// --- structured logger ------------------------------------------------------

/// Retargets the logger to a temp file for one test, restoring stderr (and
/// the info/text defaults) on the way out.
class LogCapture {
 public:
  LogCapture() {
    std::snprintf(path_, sizeof path_, "/tmp/ndp_obs_log_XXXXXX");
    fd_ = ::mkstemp(path_);
    EXPECT_GE(fd_, 0);
    obs::set_log_fd(fd_);
  }
  ~LogCapture() {
    obs::set_log_fd(2);
    obs::set_log_level(obs::LogLevel::kInfo);
    obs::set_log_format(obs::LogFormat::kText);
    ::close(fd_);
    ::unlink(path_);
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::ifstream in(path_);
    EXPECT_TRUE(in.is_open());
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

 private:
  char path_[64];
  int fd_ = -1;
};

TEST(ObsLog, LevelFilteringAndTextShape) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kWarn);

  obs::log(obs::LogLevel::kDebug, "dropped.event").kv("n", 1u);
  obs::log(obs::LogLevel::kInfo, "dropped.too").kv("n", 2u);
  obs::log(obs::LogLevel::kWarn, "kept.warn")
      .kv("count", std::uint64_t{42})
      .kv("name", "plain")
      .kv("quoted", "two words")
      .kv("neg", -5)
      .kv("flag", true);
  obs::log(obs::LogLevel::kError, "kept.error").kv("pi", 3.25);

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(2u, lines.size());
  // "2026-08-07T12:34:56.789Z WARN kept.warn ..." — a 24-char RFC3339
  // UTC-millisecond timestamp, then level, event, and k=v fields with
  // quoting only where the value needs it.
  ASSERT_GT(lines[0].size(), 24u);
  EXPECT_EQ('T', lines[0][10]);
  EXPECT_EQ('Z', lines[0][23]);
  EXPECT_EQ(
      " WARN kept.warn count=42 name=plain quoted=\"two words\" neg=-5 "
      "flag=true",
      lines[0].substr(24));
  EXPECT_EQ(" ERROR kept.error pi=3.25", lines[1].substr(24));

  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
}

TEST(ObsLog, JsonFormatParsesAndEscapes) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::set_log_format(obs::LogFormat::kJson);

  obs::log(obs::LogLevel::kInfo, "json.event")
      .kv("text", "line\nbreak \"quoted\"")
      .kv("n", std::uint64_t{7})
      .kv("ok", false);

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(1u, lines.size());
  const JsonValue doc = JsonValue::parse(lines[0]);
  EXPECT_EQ("info", doc.at("level").as_string());
  EXPECT_EQ("json.event", doc.at("event").as_string());
  EXPECT_EQ("line\nbreak \"quoted\"", doc.at("text").as_string());
  EXPECT_EQ(7u, doc.at("n").as_u64());
  EXPECT_FALSE(doc.at("ok").as_bool());
}

TEST(ObsLog, ConcurrentWritersNeverInterleaveWithinALine) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kInfo);

  constexpr unsigned kThreads = 8;
  constexpr unsigned kLines = 200;
  const std::string pad(32, 'x');
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([t, &pad] {
      for (unsigned i = 0; i < kLines; ++i)
        obs::log(obs::LogLevel::kInfo, "hammer")
            .kv("thread", t)
            .kv("i", i)
            .kv("pad", pad);
    });
  for (std::thread& t : threads) t.join();

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(std::size_t{kThreads} * kLines, lines.size());
  // Single-write-per-line: every line is whole — one timestamp, one event,
  // the full pad at the end — never spliced with another thread's bytes.
  const std::string tail = " pad=" + pad;
  for (const std::string& line : lines) {
    ASSERT_GT(line.size(), 24u) << line;
    EXPECT_EQ('Z', line[23]) << line;
    EXPECT_NE(std::string::npos, line.find(" INFO hammer thread=", 23))
        << line;
    EXPECT_EQ(tail, line.substr(line.size() - tail.size())) << line;
  }
}

TEST(ObsLog, ParseLevelAcceptsKnownNamesOnly) {
  obs::LogLevel l = obs::LogLevel::kInfo;
  EXPECT_TRUE(obs::parse_log_level("trace", l));
  EXPECT_EQ(obs::LogLevel::kTrace, l);
  EXPECT_TRUE(obs::parse_log_level("WARN", l));
  EXPECT_EQ(obs::LogLevel::kWarn, l);
  EXPECT_TRUE(obs::parse_log_level("off", l));
  EXPECT_EQ(obs::LogLevel::kOff, l);
  EXPECT_FALSE(obs::parse_log_level("verbose", l));
  EXPECT_FALSE(obs::parse_log_level("", l));
  EXPECT_EQ(obs::LogLevel::kOff, l);  // untouched on failure
}

// --- trace export -----------------------------------------------------------

TEST(ObsTrace, DisabledSinkRecordsNothing) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.discard();
  { obs::ScopedTraceSpan span("ignored", "test"); }
  EXPECT_EQ(0u, sink.event_count());
}

TEST(ObsTrace, SpansProduceValidChromeTraceJson) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.begin();
  {
    obs::ScopedTraceSpan outer("outer", "test", "{\"k\":1}");
    obs::ScopedTraceSpan inner("inner", "test");
  }
  EXPECT_EQ(2u, sink.event_count());

  const JsonValue doc = JsonValue::parse(sink.json());
  EXPECT_EQ("ms", doc.at("displayTimeUnit").as_string());
  const std::vector<JsonValue>& events = doc.at("traceEvents").array();
  ASSERT_EQ(2u, events.size());
  // Inner closes first (reverse destruction order).
  EXPECT_EQ("inner", events[0].at("name").as_string());
  EXPECT_EQ("outer", events[1].at("name").as_string());
  for (const JsonValue& e : events) {
    EXPECT_EQ("X", e.at("ph").as_string());
    EXPECT_EQ("test", e.at("cat").as_string());
    EXPECT_EQ(1u, e.at("pid").as_u64());
  }
  EXPECT_EQ(nullptr, events[0].find("args"));  // empty args omitted
  EXPECT_EQ(1u, events[1].at("args").at("k").as_u64());

  // end_to_file writes the same document, then disables and clears.
  char path[64];
  std::snprintf(path, sizeof path, "/tmp/ndp_obs_trace_XXXXXX");
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  EXPECT_TRUE(sink.end_to_file(path));
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(0u, sink.event_count());
  std::ifstream in(path);
  std::stringstream written;
  written << in.rdbuf();
  const JsonValue reread = JsonValue::parse(written.str());
  EXPECT_EQ(2u, reread.at("traceEvents").array().size());
  ::unlink(path);
}

TEST(ObsTrace, EndToFileFailsCleanlyOnUnwritablePath) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.begin();
  std::string error;
  EXPECT_FALSE(sink.end_to_file("/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sink.enabled());  // still ends the recording session
}

TEST(ObsTrace, RunWithTracingRecordsCellAndPhaseSpans) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.begin();

  const RunConfig cfg = RunConfig::from_json(R"json({
    "name": "obs_trace_grid",
    "mechanisms": ["ndpage"],
    "workloads": ["RND"],
    "cores": [1],
    "instructions": 1000,
    "warmup": 100,
    "scale": 0.015625
  })json");
  SweepOptions opts;
  run_sweep(cfg, opts);

  const std::string json = sink.json();
  sink.discard();
  const JsonValue doc = JsonValue::parse(json);
  bool saw_cell = false, saw_run_phase = false;
  for (const JsonValue& e : doc.at("traceEvents").array()) {
    if (e.at("cat").as_string() == "cell") saw_cell = true;
    if (e.at("cat").as_string() == "phase" &&
        e.at("name").as_string() == "run")
      saw_run_phase = true;
  }
  EXPECT_TRUE(saw_cell);
  EXPECT_TRUE(saw_run_phase);
}

// --- the golden property ----------------------------------------------------

TEST(ObsGolden, SweepJsonIsByteIdenticalWithObservabilityOn) {
  const RunConfig cfg = RunConfig::from_json(R"json({
    "name": "obs_identity_grid",
    "mechanisms": ["radix", "ndpage"],
    "workloads": ["RND"],
    "cores": [1, 2],
    "instructions": 2000,
    "warmup": 150,
    "scale": 0.015625,
    "baseline": "radix"
  })json");
  SweepOptions opts;
  opts.jobs = 2;

  const std::string off = to_json(run_sweep(cfg, opts));

  // Everything on: trace recording, trace-level logging (to a temp file;
  // metrics are always on). The serialized result document must not move
  // by a byte.
  {
    LogCapture capture;
    obs::set_log_level(obs::LogLevel::kTrace);
    obs::TraceSink::instance().begin();
    const std::string on = to_json(run_sweep(cfg, opts));
    obs::TraceSink::instance().discard();
    EXPECT_EQ(off, on);
  }
}

}  // namespace
}  // namespace ndp
