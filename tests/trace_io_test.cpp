// Tests for trace record/replay.
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/engine.h"
#include "workloads/trace_io.h"

namespace ndp {
namespace {

std::string tmp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "/ndp_trace_" + tag + ".bin";
}

WorkloadParams tiny_params() {
  WorkloadParams p;
  p.num_cores = 2;
  p.scale = 1.0 / 64.0;
  p.seed = 42;
  return p;
}

TEST(TraceIo, RoundTripPreservesStreamAndRegions) {
  const std::string path = tmp_path("roundtrip");
  auto gen = make_workload(WorkloadKind::kPR, tiny_params());
  ASSERT_TRUE(record_trace(*gen, 2, 500, path));

  // A fresh generator replays the same deterministic stream to diff against.
  auto ref = make_workload(WorkloadKind::kPR, tiny_params());
  FileTraceSource replay(path);
  EXPECT_EQ(replay.recorded_cores(), 2u);
  EXPECT_EQ(replay.refs_per_core(), 500u);
  ASSERT_EQ(replay.regions().size(), ref->regions().size());
  for (std::size_t i = 0; i < replay.regions().size(); ++i) {
    EXPECT_EQ(replay.regions()[i].base, ref->regions()[i].base);
    EXPECT_EQ(replay.regions()[i].bytes, ref->regions()[i].bytes);
    EXPECT_EQ(replay.regions()[i].prefault, ref->regions()[i].prefault);
    EXPECT_EQ(replay.regions()[i].name, ref->regions()[i].name);
  }
  for (int i = 0; i < 500; ++i) {
    for (unsigned c = 0; c < 2; ++c) {
      const MemRef a = ref->next(c);
      const MemRef b = replay.next(c);
      ASSERT_EQ(a.va, b.va);
      ASSERT_EQ(a.gap, b.gap);
      ASSERT_EQ(a.type, b.type);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayLoopsWhenExhausted) {
  const std::string path = tmp_path("loop");
  auto gen = make_workload(WorkloadKind::kRND, tiny_params());
  ASSERT_TRUE(record_trace(*gen, 2, 100, path));
  FileTraceSource replay(path);
  const MemRef first = replay.next(0);
  for (int i = 0; i < 99; ++i) replay.next(0);
  const MemRef wrapped = replay.next(0);
  EXPECT_EQ(first.va, wrapped.va);
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayDrivesTheEngine) {
  const std::string path = tmp_path("engine");
  auto gen = make_workload(WorkloadKind::kRND, tiny_params());
  ASSERT_TRUE(record_trace(*gen, 2, 4000, path));
  FileTraceSource replay(path);

  SystemConfig sc = SystemConfig::ndp(2, Mechanism::kNdpage);
  System system(sc);
  EngineConfig ec;
  ec.instructions_per_core = 5'000;
  ec.warmup_refs_per_core = 200;
  Engine engine(system, replay, ec);
  const RunResult r = engine.run();
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_GT(r.stats.get("walker.walks"), 0u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedFiles) {
  const std::string path = tmp_path("bad");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  EXPECT_THROW(FileTraceSource{"/nonexistent/trace.bin"}, std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ndp
