// Golden-result regression suite.
//
// Re-runs checked-in experiment grids and diffs their digests — one line of
// truth per cell (total_cycles + every headline metric) — against
// tests/golden/*.json. This is the contract that lets hot-path surgery
// (engine queue, buddy allocator, stat plumbing) proceed aggressively: any
// change to *simulated* behaviour, however small, fails here byte-for-byte.
//
// Budgets are pinned inside the golden files (instructions/scale recorded
// and re-applied), so the digests are independent of the NDPAGE_INSTRS
// environment CI uses for the rest of the suite.
//
// Intentional model changes update the goldens (the "--update-golden"
// path — see README "Performance"):
//
//   NDP_UPDATE_GOLDEN=1 ./build/ndp_tests --gtest_filter='GoldenResults.*'
//
// then commit the rewritten tests/golden/*.json with the model change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

namespace ndp {
namespace {

#ifndef NDP_SOURCE_DIR
#error "golden_test needs NDP_SOURCE_DIR (set by CMakeLists.txt)"
#endif

struct GoldenGrid {
  const char* config;  ///< experiments/ file, relative to the source tree
  const char* golden;  ///< tests/golden/ file, relative to the source tree
  /// Instruction budget forced onto cells whose config leaves it open
  /// (0 = the config pins its own budget; asserted).
  std::uint64_t instructions;
  double scale;  ///< dataset scale override (0 = config/workload default)
};

constexpr GoldenGrid kGrids[] = {
    {"experiments/ci_smoke.json", "tests/golden/ci_smoke.json", 0, 0.0},
    {"experiments/ablation_ech_ways.json",
     "tests/golden/ablation_ech_ways.json", 10000, 0.02},
};

std::string source_path(const std::string& rel) {
  return std::string(NDP_SOURCE_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One cell's line of truth: identity + total_cycles + headline metrics.
void write_cell_digest(JsonWriter& w, const SweepCell& cell) {
  const RunResult& r = cell.result;
  w.begin_object();
  w.key("system").value(to_string(cell.spec.system));
  w.key("cores").value(cell.spec.cores);
  w.key("mechanism").value(cell.spec.mechanism_label());
  w.key("workload").value(cell.spec.workload_label());
  w.key("seed").value(cell.spec.seed);
  w.key("instructions").value(cell.spec.instructions_per_core);
  w.key("total_cycles").value(static_cast<std::uint64_t>(r.total_cycles));
  w.key("total_instructions").value(r.total_instructions());
  w.key("ipc").value(r.ipc);
  w.key("avg_ptw_latency").value(r.avg_ptw_latency);
  w.key("translation_fraction").value(r.translation_fraction);
  w.key("l1_tlb_miss_rate").value(r.l1_tlb_miss_rate);
  w.key("l2_tlb_miss_rate").value(r.l2_tlb_miss_rate);
  w.key("pte_access_share").value(r.pte_access_share);
  w.end_object();
}

std::string grid_digest(const GoldenGrid& grid, const SweepResults& results) {
  JsonWriter w;
  w.begin_object();
  w.key("config").value(grid.config);
  w.key("instructions").value(grid.instructions);
  w.key("scale").value(grid.scale);
  w.key("cells").begin_array();
  for (const SweepCell& cell : results.cells) write_cell_digest(w, cell);
  w.end_array();
  w.end_object();
  return w.str();
}

SweepResults run_grid(const GoldenGrid& grid) {
  const RunConfig config = RunConfig::load(source_path(grid.config));
  std::vector<RunSpec> specs = config.expand();
  for (RunSpec& s : specs) {
    if (grid.instructions) s.instructions_per_core = grid.instructions;
    if (grid.scale > 0) s.scale = grid.scale;
    // The digest must not depend on the NDPAGE_INSTRS environment: every
    // cell needs an explicit budget, from the config or from this table.
    EXPECT_NE(s.instructions_per_core, 0u)
        << grid.config << " leaves the instruction budget open and the "
        << "golden table pins none — the digest would follow NDPAGE_INSTRS";
  }
  SweepOptions opts;
  opts.jobs = 1;  // determinism is jobs-invariant; 1 keeps sanitizers calm
  return run_sweep(specs, opts);
}

void check_grid(const GoldenGrid& grid) {
  const std::string digest = grid_digest(grid, run_grid(grid));
  const std::string golden_file = source_path(grid.golden);

  if (std::getenv("NDP_UPDATE_GOLDEN")) {
    std::ofstream out(golden_file);
    ASSERT_TRUE(out) << "cannot write " << golden_file;
    out << digest << '\n';
    GTEST_LOG_(INFO) << "updated " << golden_file;
    return;
  }

  const std::string golden_text = read_file(golden_file);
  ASSERT_FALSE(golden_text.empty())
      << "missing golden file " << golden_file
      << " — generate it with NDP_UPDATE_GOLDEN=1 "
         "./ndp_tests --gtest_filter='GoldenResults.*'";

  const JsonValue want = JsonValue::parse(golden_text);
  const JsonValue got = JsonValue::parse(digest);

  // Whole-document equality is the contract; per-cell comparison first so a
  // regression names the exact design points that moved.
  const auto& want_cells = want.at("cells").array();
  const auto& got_cells = got.at("cells").array();
  ASSERT_EQ(want_cells.size(), got_cells.size()) << grid.config;
  for (std::size_t i = 0; i < want_cells.size(); ++i) {
    EXPECT_EQ(want_cells[i].dump(), got_cells[i].dump())
        << grid.config << " cell " << i << " ("
        << got_cells[i].at("mechanism").as_string() << " / "
        << got_cells[i].at("workload").as_string() << " / "
        << got_cells[i].at("cores").as_u64() << " cores) diverged from "
        << grid.golden << "; if the model change is intentional, refresh "
        << "goldens with NDP_UPDATE_GOLDEN=1 (see README)";
  }
  EXPECT_EQ(want.dump(), got.dump()) << grid.config << " digest diverged";
}

TEST(GoldenResults, CiSmoke) { check_grid(kGrids[0]); }

TEST(GoldenResults, AblationEchWays) { check_grid(kGrids[1]); }

}  // namespace
}  // namespace ndp
