// Persistent on-disk image store contract (sim/image_store.h).
//
// Two promises under test. First, fidelity: results are byte-identical with
// the store disabled, cold, and warm — over the checked-in golden grids,
// through the Session, at any job count. Second, robustness: a truncated,
// corrupted, version-mismatched, or foreign blob is rejected and rebuilt —
// the store can never turn a bad file into a crash or a wrong result. Plus
// the addressing rules: digests are stable, keyed by the full build input,
// and rotate with the format version.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "sim/image_store.h"
#include "sim/run_config.h"
#include "sim/session.h"
#include "sim/sweep_runner.h"
#include "workloads/workload.h"

namespace ndp {
namespace {

namespace fs = std::filesystem;

#ifndef NDP_SOURCE_DIR
#error "image_store_test needs NDP_SOURCE_DIR (set by CMakeLists.txt)"
#endif

/// A fresh store directory for one test, removed on the way out.
class TempStoreDir {
 public:
  explicit TempStoreDir(const char* tag) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "/tmp/ndp_store_%s_XXXXXX", tag);
    char* got = ::mkdtemp(buf);
    EXPECT_NE(got, nullptr);
    if (got) path_ = got;
  }
  ~TempStoreDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TraceMaterial sample_material() {
  TraceMaterial mat;
  mat.regions.push_back(VmRegion{"heap", 0x10000, 1 << 20, true});
  mat.regions.push_back(VmRegion{"graph", 0x200000, 3 << 16, false});
  mat.warm_pages = {0x10000, 0x11000, 0x204000};
  return mat;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The checked-in golden grids with the golden suite's budget pinning
/// (mirrors tests/session_test.cpp).
std::vector<RunSpec> golden_specs(const char* config, std::uint64_t instrs,
                                  double scale) {
  const RunConfig cfg =
      RunConfig::load(std::string(NDP_SOURCE_DIR) + "/" + config);
  std::vector<RunSpec> specs = cfg.expand();
  for (RunSpec& s : specs) {
    if (instrs) s.instructions_per_core = instrs;
    if (scale > 0) s.scale = scale;
  }
  return specs;
}

std::string sweep_json(const std::vector<RunSpec>& specs,
                       const std::string& store_dir, unsigned jobs,
                       SessionStats* stats_out = nullptr) {
  SweepOptions opts;
  opts.jobs = jobs;
  opts.image_store = store_dir;
  SweepResults results = run_sweep(specs, opts);
  if (stats_out) *stats_out = results.session;
  return to_json(results);
}

// --- addressing -------------------------------------------------------------

TEST(ImageStore, DigestIsStableAndKeySensitive) {
  const std::string a = ImageStore::digest("ndp/4/radix");
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, ImageStore::digest("ndp/4/radix"));  // pure function of key
  EXPECT_NE(a, ImageStore::digest("ndp/4/radix "));
  EXPECT_NE(a, ImageStore::digest("ndp/8/radix"));

  // The digest is a function of the key alone, not the store instance.
  ImageStore one("/tmp/ndp_store_digest_a");
  ImageStore two("/tmp/ndp_store_digest_b");
  EXPECT_EQ(one.path_for("sys", "k").substr(one.dir().size()),
            two.path_for("sys", "k").substr(two.dir().size()));
  EXPECT_EQ(one.path_for("sys", "k"),
            one.dir() + "/sys-" + ImageStore::digest("k") + ".img");
  // Kinds never collide on disk even for equal keys.
  EXPECT_NE(one.path_for("sys", "k"), one.path_for("prep", "k"));
}

TEST(ImageStore, ImageKeyStableAcrossConfigFieldReorderings) {
  // The same design point spelled with config fields in a different order
  // must produce the same image key — and therefore the same digest and
  // on-disk blob. Keys serialize config state in a fixed order, not in
  // JSON-document order.
  const RunConfig a = RunConfig::from_json(R"json({
    "name": "order_a",
    "mechanisms": ["radix"],
    "workloads": ["RND"],
    "cores": [2],
    "instructions": 1000,
    "scale": 0.015625,
    "seed": 7
  })json");
  const RunConfig b = RunConfig::from_json(R"json({
    "seed": 7,
    "scale": 0.015625,
    "instructions": 1000,
    "cores": [2],
    "workloads": ["RND"],
    "mechanisms": ["radix"],
    "name": "order_b"
  })json");
  const std::vector<RunSpec> sa = a.expand();
  const std::vector<RunSpec> sb = b.expand();
  ASSERT_EQ(sa.size(), 1u);
  ASSERT_EQ(sb.size(), 1u);
  auto config_of = [](const RunSpec& spec) {
    SystemConfig sc = SystemConfig::ndp(spec.cores, spec.mechanism);
    sc.mechanism_name = spec.mechanism_name;
    sc.seed = spec.seed;
    sc.overrides = spec.overrides;
    return sc;
  };
  const std::string ka = Session::image_key(config_of(sa[0]));
  const std::string kb = Session::image_key(config_of(sb[0]));
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ImageStore::digest(ka), ImageStore::digest(kb));
}

// --- round trips ------------------------------------------------------------

TEST(ImageStore, MaterialRoundTripsLosslessly) {
  TempStoreDir dir("mat");
  ImageStore store(dir.path());
  const TraceMaterial mat = sample_material();
  ASSERT_TRUE(store.store_material("mat-key", mat));

  TraceMaterial back;
  ASSERT_EQ(store.load_material("mat-key", &back), ImageStore::Load::kHit);
  ASSERT_EQ(back.regions.size(), mat.regions.size());
  for (std::size_t i = 0; i < mat.regions.size(); ++i) {
    EXPECT_EQ(back.regions[i].name, mat.regions[i].name);
    EXPECT_EQ(back.regions[i].base, mat.regions[i].base);
    EXPECT_EQ(back.regions[i].bytes, mat.regions[i].bytes);
    EXPECT_EQ(back.regions[i].prefault, mat.regions[i].prefault);
  }
  EXPECT_EQ(back.warm_pages, mat.warm_pages);

  // A key that was never stored is a miss, not an error.
  EXPECT_EQ(store.load_material("absent", &back), ImageStore::Load::kMiss);
}

TEST(ImageStore, SystemImageRoundTripIsByteStable) {
  TempStoreDir dir("sys");
  ImageStore store(dir.path());
  const SystemConfig cfg = SystemConfig::ndp(1, Mechanism::kRadix);
  const std::string key = Session::image_key(cfg);
  const SystemImage image = System::prepare_image(cfg);
  ASSERT_TRUE(store.store_system_image(key, image));

  std::shared_ptr<const SystemImage> back;
  ASSERT_EQ(store.load_system_image(key, cfg, &back),
            ImageStore::Load::kHit);
  ASSERT_NE(back, nullptr);

  // Encoding is deterministic, so a lossless round trip means re-storing
  // the loaded image reproduces the original blob byte for byte.
  TempStoreDir dir2("sys2");
  ImageStore store2(dir2.path());
  ASSERT_TRUE(store2.store_system_image(key, *back));
  EXPECT_EQ(read_bytes(store.path_for("sys", key)),
            read_bytes(store2.path_for("sys", key)));
}

// --- rejection of bad blobs -------------------------------------------------

TEST(ImageStore, TruncatedBlobIsRejected) {
  TempStoreDir dir("trunc");
  ImageStore store(dir.path());
  ASSERT_TRUE(store.store_material("k", sample_material()));
  const std::string path = store.path_for("mat", "k");
  const auto full = read_bytes(path);
  ASSERT_GT(full.size(), 16u);

  TraceMaterial back;
  // Cut mid-payload (word-aligned): framing/length validation fires.
  write_bytes(path, std::vector<char>(full.begin(), full.begin() + 16));
  EXPECT_EQ(store.load_material("k", &back), ImageStore::Load::kReject);
  // Cut mid-word: rejected before any decoding.
  write_bytes(path, std::vector<char>(full.begin(), full.end() - 3));
  EXPECT_EQ(store.load_material("k", &back), ImageStore::Load::kReject);
  // Restoring the original bytes restores the hit.
  write_bytes(path, full);
  EXPECT_EQ(store.load_material("k", &back), ImageStore::Load::kHit);
}

TEST(ImageStore, CorruptPayloadFailsChecksum) {
  TempStoreDir dir("corrupt");
  ImageStore store(dir.path());
  ASSERT_TRUE(store.store_material("k", sample_material()));
  const std::string path = store.path_for("mat", "k");
  auto bytes = read_bytes(path);
  bytes[bytes.size() - 5] ^= 0x40;  // flip one payload bit
  write_bytes(path, bytes);

  TraceMaterial back;
  EXPECT_EQ(store.load_material("k", &back), ImageStore::Load::kReject);
}

TEST(ImageStore, VersionMismatchIsRejected) {
  TempStoreDir dir("ver");
  ImageStore store(dir.path());
  ASSERT_TRUE(store.store_material("k", sample_material()));
  const std::string path = store.path_for("mat", "k");
  auto bytes = read_bytes(path);
  // Word 1 is (version << 8) | kind_id; forge a future format version. The
  // payload checksum does not cover the header, so only the version check
  // can reject this.
  std::uint64_t word1 = 0;
  std::memcpy(&word1, bytes.data() + 8, 8);
  word1 += std::uint64_t{1} << 8;
  std::memcpy(bytes.data() + 8, &word1, 8);
  write_bytes(path, bytes);

  TraceMaterial back;
  EXPECT_EQ(store.load_material("k", &back), ImageStore::Load::kReject);
}

TEST(ImageStore, ForeignKeyAtSamePathIsAMissNotState) {
  // A digest collision (simulated by copying a blob to another key's path)
  // must degrade to a miss — the stored key string is verified on read, so
  // the wrong design point's state is never adopted.
  TempStoreDir dir("foreign");
  ImageStore store(dir.path());
  ASSERT_TRUE(store.store_material("key-a", sample_material()));
  write_bytes(store.path_for("mat", "key-b"),
              read_bytes(store.path_for("mat", "key-a")));

  TraceMaterial back;
  EXPECT_EQ(store.load_material("key-b", &back), ImageStore::Load::kMiss);
}

TEST(ImageStore, PublishesAtomicallyLeavingNoTempFiles) {
  TempStoreDir dir("atomic");
  ImageStore store(dir.path());
  ASSERT_TRUE(store.store_material("k1", sample_material()));
  ASSERT_TRUE(store.store_material("k2", sample_material()));
  for (const auto& entry : fs::directory_iterator(dir.path()))
    EXPECT_EQ(entry.path().extension(), ".img") << entry.path();
}

// --- concurrency ------------------------------------------------------------

TEST(ImageStore, ConcurrentWritersAndReadersOfOneKeyAgree) {
  // Several independent store handles (the multi-process shape: no shared
  // in-memory state) hammer one key. Deterministic encoding means every
  // writer produces identical bytes, so readers only ever see a miss
  // (nothing published yet) or the one true blob — never a reject.
  TempStoreDir dir("conc");
  const TraceMaterial mat = sample_material();
  std::vector<std::thread> threads;
  std::atomic<int> rejects{0}, bad_payloads{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&dir, &mat, &rejects, &bad_payloads] {
      ImageStore store(dir.path());  // own handle, like a separate process
      for (int i = 0; i < 25; ++i) {
        store.store_material("shared", mat);
        TraceMaterial back;
        const auto got = store.load_material("shared", &back);
        if (got == ImageStore::Load::kReject) ++rejects;
        if (got == ImageStore::Load::kHit &&
            back.warm_pages != mat.warm_pages)
          ++bad_payloads;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rejects.load(), 0);
  EXPECT_EQ(bad_payloads.load(), 0);

  ImageStore store(dir.path());
  TraceMaterial back;
  EXPECT_EQ(store.load_material("shared", &back), ImageStore::Load::kHit);
}

// --- end-to-end fidelity over the golden grids ------------------------------

TEST(ImageStore, GoldenGridsByteIdenticalDisabledColdAndWarm) {
  struct Grid {
    const char* config;
    std::uint64_t instrs;
    double scale;
  };
  for (const Grid& g :
       {Grid{"experiments/ci_smoke.json", 0, 0.0},
        Grid{"experiments/ablation_ech_ways.json", 4000, 0.015625}}) {
    const std::vector<RunSpec> specs =
        golden_specs(g.config, g.instrs, g.scale);
    TempStoreDir dir("golden");
    const std::string disabled = sweep_json(specs, "", 1);

    SessionStats cold, warm;
    EXPECT_EQ(sweep_json(specs, dir.path(), 1, &cold), disabled) << g.config;
    EXPECT_EQ(sweep_json(specs, dir.path(), 1, &warm), disabled) << g.config;
    // The cold pass populated the store; the warm pass restores from it.
    EXPECT_GT(cold.store_writes, 0u) << g.config;
    EXPECT_EQ(cold.store_hits, 0u) << g.config;
    EXPECT_GT(warm.store_hits, 0u) << g.config;
    EXPECT_EQ(warm.store_writes, 0u) << g.config;
    EXPECT_EQ(warm.store_errors, 0u) << g.config;
    // The counting contract: in-memory build/hit totals are independent of
    // where the bytes came from.
    EXPECT_EQ(cold.image_builds, warm.image_builds) << g.config;
    EXPECT_EQ(cold.image_hits, warm.image_hits) << g.config;
    EXPECT_EQ(cold.prepared_builds, warm.prepared_builds) << g.config;

    // Byte-identity also holds under a parallel warm run.
    EXPECT_EQ(sweep_json(specs, dir.path(), 4), disabled) << g.config;
  }
}

TEST(ImageStore, CorruptedStoreRebuildsCleanlyAndStaysByteIdentical) {
  const std::vector<RunSpec> specs =
      golden_specs("experiments/ci_smoke.json", 2000, 0.015625);
  TempStoreDir dir("rebuild");
  const std::string want = sweep_json(specs, "", 1);
  ASSERT_EQ(sweep_json(specs, dir.path(), 1), want);  // populate

  // Vandalize every blob: flip a payload bit in each.
  std::size_t corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    auto bytes = read_bytes(entry.path().string());
    ASSERT_GT(bytes.size(), 8u);
    bytes.back() ^= 0x01;
    write_bytes(entry.path().string(), bytes);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  SessionStats stats;
  EXPECT_EQ(sweep_json(specs, dir.path(), 1, &stats), want);
  EXPECT_GT(stats.store_errors, 0u);  // rejects counted, never fatal
  EXPECT_EQ(stats.store_hits, 0u);

  // The rebuild re-published good blobs: the next run is warm again.
  SessionStats healed;
  EXPECT_EQ(sweep_json(specs, dir.path(), 1, &healed), want);
  EXPECT_GT(healed.store_hits, 0u);
  EXPECT_EQ(healed.store_errors, 0u);
}

TEST(ImageStore, SessionRestoresPreparedImagesAcrossProcessBoundary) {
  // Two Sessions over one store directory stand in for two processes: the
  // second restores post-prefault snapshots (a store hit per blob kind)
  // and still reports the same build totals as the first (the counting
  // contract), with byte-identical results.
  const RunSpec spec = golden_specs("experiments/ci_smoke.json", 2000,
                                    0.015625)[0];
  TempStoreDir dir("xproc");

  SessionOptions opts;
  opts.image_store = dir.path();
  Session first(opts);
  const RunResult cold = first.run(spec);
  const SessionStats cold_stats = first.stats();
  EXPECT_EQ(cold_stats.image_builds, 1u);
  EXPECT_EQ(cold_stats.prepared_builds, 1u);
  EXPECT_EQ(cold_stats.store_hits, 0u);
  EXPECT_GT(cold_stats.store_writes, 0u);

  Session second(opts);
  const RunResult warm = second.run(spec);
  const SessionStats warm_stats = second.stats();
  EXPECT_EQ(to_json(warm, &spec), to_json(cold, &spec));
  EXPECT_EQ(warm_stats.image_builds, 1u);     // load counts as a build
  EXPECT_EQ(warm_stats.prepared_builds, 1u);  // restored, not re-prefaulted
  EXPECT_GT(warm_stats.store_hits, 0u);
  EXPECT_EQ(warm_stats.store_errors, 0u);
}

}  // namespace
}  // namespace ndp
