// Deeper behavioural tests of the timing model: the specific effects the
// paper's argument rests on, checked at component scale where they are
// unambiguous.
#include <gtest/gtest.h>

#include "core/mmu.h"
#include "core/system.h"
#include "sim/experiment.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg(std::uint64_t mb = 128) {
  PhysMemConfig cfg;
  cfg.bytes = mb << 20;
  cfg.noise_fraction = 0.0;
  cfg.seed = 7;
  return cfg;
}

struct Rig {
  PhysicalMemory pm{pm_cfg()};
  MemorySystem mem{MemorySystemConfig::ndp(1)};
  AddressSpace space;
  Mmu mmu;

  explicit Rig(Mechanism m)
      : space(pm, make_page_table(m, pm), uses_huge_pages(m)),
        mmu(make_cfg(m), space, mem, 0) {}
  static MmuConfig make_cfg(Mechanism m) {
    MmuConfig cfg;
    cfg.walker = make_walker_config(m);
    cfg.ideal = !models_translation(m);
    return cfg;
  }
  /// Drive a stepwise op to completion, returning total latency.
  Cycle run_op(Cycle at, VirtAddr va, AccessType ty = AccessType::kRead) {
    MmuOp op;
    Cycle t = op.begin(mmu, at, va, ty);
    while (!op.done()) t = op.step(t);
    return op.finish_time() - at;
  }
};

TEST(ModelBehavior, ColdWalkCostOrdering) {
  // On identical cold state, walk cost must order:
  //   NDPage (1 access) <= HugePage-ish <= Radix (2+ accesses, cold PWCs).
  Rig radix(Mechanism::kRadix);
  Rig ndpage(Mechanism::kNdpage);
  // Prefault one page each, then translate it cold (TLBs empty).
  radix.space.touch(0x12345000, 0);
  ndpage.space.touch(0x12345000, 0);
  const TranslateResult r = radix.mmu.translate(0, 0x12345000);
  const TranslateResult n = ndpage.mmu.translate(0, 0x12345000);
  ASSERT_TRUE(r.walked);
  ASSERT_TRUE(n.walked);
  // Cold PWCs: radix pays 4 memory accesses, NDPage pays 3.
  EXPECT_LT(n.walk_cycles, r.walk_cycles);
}

TEST(ModelBehavior, WarmPwcsShortenBothWalks) {
  Rig radix(Mechanism::kRadix);
  for (Vpn v = 0; v < 64; ++v) radix.space.touch(v << kPageShift, 0);
  // Warm the PWCs with one walk, then measure a sibling page's walk.
  radix.mmu.translate(0, 0);
  const TranslateResult warm = radix.mmu.translate(1'000'000, 5 << kPageShift);
  ASSERT_TRUE(warm.walked);
  const auto& pwcs = radix.mmu.walker().pwcs();
  EXPECT_GT(pwcs.level(2)->counters().hits + pwcs.level(3)->counters().hits,
            0u);
}

TEST(ModelBehavior, BypassedWalkIsImmuneToCacheState) {
  // The same PTE access costs the same no matter how often it repeats:
  // bypass goes straight to memory (SV-A), so there is no cache-warming
  // effect. (The first walk is excluded: it warms the L4/L3 PWCs, which
  // NDPage keeps by design.)
  Rig ndpage(Mechanism::kNdpage);
  ndpage.space.touch(0x7000, 0);
  ndpage.run_op(0, 0x7000);  // warms PWCs
  ndpage.mmu.l1_dtlb().flush();
  ndpage.mmu.l2_tlb().flush();
  const Cycle second = ndpage.run_op(10'000'000, 0x7000);
  ndpage.mmu.l1_dtlb().flush();
  ndpage.mmu.l2_tlb().flush();
  const Cycle third = ndpage.run_op(20'000'000, 0x7000);
  EXPECT_NEAR(double(second), double(third), 60.0)
      << "row-buffer state may differ slightly, nothing else";
}

TEST(ModelBehavior, RadixRepeatWalkBenefitsFromCachedPte) {
  // Opposite of the bypass case: a radix re-walk of the same page hits the
  // L1-resident PTE line and is much faster — the very effect that makes
  // PTEs pollute the cache.
  Rig radix(Mechanism::kRadix);
  radix.space.touch(0x9000, 0);
  const Cycle first = radix.run_op(0, 0x9000);
  radix.mmu.l1_dtlb().flush();
  radix.mmu.l2_tlb().flush();
  const Cycle second = radix.run_op(1'000, 0x9000);
  EXPECT_LT(second, first);
}

TEST(ModelBehavior, HugePageTlbReachBeatsRadix) {
  Rig radix(Mechanism::kRadix);
  Rig huge(Mechanism::kHugePage);
  // Touch 256 pages spanning 1 MB: one 2 MB entry covers them all for the
  // huge-page rig, while radix needs 256 distinct 4 KB entries.
  for (Vpn v = 0; v < 256; ++v) {
    radix.space.touch(v << kPageShift, 0);
    huge.space.touch(v << kPageShift, 0);
  }
  Cycle t = 1'000'000;
  for (Vpn v = 0; v < 256; ++v) {
    radix.run_op(t, v << kPageShift);
    huge.run_op(t, v << kPageShift);
    t += 10'000;
  }
  EXPECT_LT(huge.mmu.counters().walks, radix.mmu.counters().walks / 4);
}

TEST(ModelBehavior, EchParallelWalkBeatsSequentialRadixColdCache) {
  // With cold caches and cold PWCs, ECH's 3 parallel probes finish faster
  // than radix's 4 dependent accesses.
  Rig radix(Mechanism::kRadix);
  Rig ech(Mechanism::kEch);
  radix.space.touch(0xA000, 0);
  ech.space.touch(0xA000, 0);
  const TranslateResult r = radix.mmu.translate(0, 0xA000);
  const TranslateResult e = ech.mmu.translate(0, 0xA000);
  EXPECT_LT(e.walk_cycles, r.walk_cycles);
}

TEST(ModelBehavior, FaultChargesAppearOnceNotTwice) {
  Rig radix(Mechanism::kRadix);
  MmuOp op;
  Cycle t = op.begin(radix.mmu, 0, 0xB000, AccessType::kRead);
  while (!op.done()) t = op.step(t);
  EXPECT_TRUE(op.faulted());
  // A replayed op on the now-mapped page must not fault again.
  radix.mmu.l1_dtlb().flush();
  radix.mmu.l2_tlb().flush();
  MmuOp op2;
  t = op2.begin(radix.mmu, t + 1000, 0xB000, AccessType::kRead);
  while (!op2.done()) t = op2.step(t);
  EXPECT_FALSE(op2.faulted());
  EXPECT_EQ(radix.mmu.counters().faults, 1u);
}

TEST(ModelBehavior, SharedL3GivesCpuPteReuseAcrossCores) {
  // Two CPU cores walking the same page table share PTE lines through the
  // L3: the second core's walk is cheaper. This is the CPU-side mechanism
  // behind Fig. 4's NDP-vs-CPU gap.
  PhysicalMemory pm(pm_cfg());
  MemorySystem mem{MemorySystemConfig::cpu(2)};
  AddressSpace space(pm, make_page_table(Mechanism::kRadix, pm), false);
  MmuConfig cfg;
  cfg.walker = make_walker_config(Mechanism::kRadix);
  Mmu mmu0(cfg, space, mem, 0), mmu1(cfg, space, mem, 1);
  space.touch(0xC000, 0);
  const TranslateResult a = mmu0.translate(0, 0xC000);
  const TranslateResult b = mmu1.translate(100'000, 0xC000);
  ASSERT_TRUE(a.walked);
  ASSERT_TRUE(b.walked);
  EXPECT_LT(b.walk_cycles, a.walk_cycles);
}

TEST(ModelBehavior, TranslationFractionTracksMechanismQuality) {
  // End-to-end: translation share must order Ideal < NDPage < Radix on the
  // pure-random workload.
  auto frac = [](Mechanism m) {
    RunSpec s;
    s.system = SystemKind::kNdp;
    s.cores = 1;
    s.mechanism = m;
    s.workload = WorkloadKind::kRND;
    s.instructions_per_core = 20'000;
    s.warmup_refs = 1'000;
    s.scale = 1.0 / 32.0;
    return run_experiment(s).translation_fraction;
  };
  const double radix = frac(Mechanism::kRadix);
  const double ndpage = frac(Mechanism::kNdpage);
  const double ideal = frac(Mechanism::kIdeal);
  EXPECT_LT(ideal, ndpage);
  EXPECT_LT(ndpage, radix);
}

}  // namespace
}  // namespace ndp
