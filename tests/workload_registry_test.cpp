// Workload-registry contract: registration/lookup round-trip, alias and
// case-insensitive resolution, unknown-name diagnostics, agreement between
// the legacy enum API and the registry, and — the point of the open API — a
// trace generator registered here, without touching src/workloads/ headers,
// running end-to-end through the experiment layer by name.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.h"
#include "workloads/workload.h"
#include "workloads/workload_registry.h"

namespace ndp {
namespace {

/// A fixed-stride scan over one shared region: the simplest deterministic
/// TraceSource, used as the registration fixture.
class StrideWorkload final : public TraceSource {
 public:
  explicit StrideWorkload(const WorkloadParams& params)
      : cores_(params.num_cores), pos_(params.num_cores, 0) {}

  std::string name() const override { return "Stride"; }
  std::string suite() const override { return "custom"; }
  std::uint64_t paper_dataset_bytes() const override { return kBytes; }
  std::uint64_t dataset_bytes() const override { return kBytes; }
  std::vector<VmRegion> regions() const override {
    return {VmRegion{"scan", dataset_base(), kBytes, true}};
  }
  MemRef next(unsigned core) override {
    std::uint64_t& p = pos_[core];
    p = (p + kStride) % kBytes;
    return MemRef{2, dataset_base() + (core * kBytes / cores_ + p) % kBytes,
                  AccessType::kRead};
  }

 private:
  static constexpr std::uint64_t kBytes = 8ull << 20;
  static constexpr std::uint64_t kStride = 192;
  unsigned cores_;
  std::vector<std::uint64_t> pos_;
};

WorkloadDescriptor test_descriptor(std::string name) {
  WorkloadDescriptor d;
  d.name = std::move(name);
  d.suite = "custom";
  d.summary = "workload_registry_test fixture";
  d.make = [](const WorkloadParams& p) {
    return std::make_unique<StrideWorkload>(p);
  };
  return d;
}

TEST(WorkloadRegistry, RegistrationLookupRoundTrip) {
  WorkloadDescriptor d = test_descriptor("RoundTripWl");
  d.aliases = {"rtwl-alias"};
  d.paper_bytes = 1ull << 30;
  ASSERT_TRUE(register_workload(std::move(d)));

  const WorkloadDescriptor* found =
      WorkloadRegistry::instance().find("RoundTripWl");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "RoundTripWl");
  EXPECT_EQ(found->suite, "custom");
  EXPECT_EQ(found->paper_bytes, 1ull << 30);
  EXPECT_FALSE(found->builtin);

  WorkloadParams p;
  p.num_cores = 2;
  auto trace = found->make(p);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name(), "Stride");
  EXPECT_FALSE(trace->regions().empty());
}

TEST(WorkloadRegistry, AliasAndCaseInsensitiveResolution) {
  WorkloadDescriptor d = test_descriptor("AliasWlHost");
  d.aliases = {"wl-alias-one", "wl-alias-two"};
  ASSERT_TRUE(register_workload(std::move(d)));

  auto& reg = WorkloadRegistry::instance();
  EXPECT_EQ(reg.find("wl-alias-one"), reg.find("AliasWlHost"));
  EXPECT_EQ(reg.find("WL-ALIAS-TWO"), reg.find("AliasWlHost"));
  EXPECT_EQ(reg.find("aliaswlhost"), reg.find("AliasWlHost"));

  // Built-ins answer to unambiguous suite aliases, case-insensitively.
  ASSERT_NE(reg.find("gups"), nullptr);
  EXPECT_EQ(reg.find("gups")->name, "RND");
  EXPECT_EQ(reg.find("XSBench")->name, "XS");
  EXPECT_EQ(reg.find("genomicsbench")->name, "GEN");
  // Ambiguous suites resolve nothing.
  EXPECT_EQ(reg.find("GraphBIG"), nullptr);
}

TEST(WorkloadRegistry, RejectsCollisionsAndInvalidDescriptors) {
  ASSERT_TRUE(register_workload(test_descriptor("WlCollider")));
  EXPECT_FALSE(register_workload(test_descriptor("WlCollider")));
  EXPECT_FALSE(register_workload(test_descriptor("wlcollider")));
  // Alias colliding with an existing name.
  WorkloadDescriptor alias_clash = test_descriptor("WlCollTwo");
  alias_clash.aliases = {"rnd"};
  EXPECT_FALSE(register_workload(std::move(alias_clash)));
  // Missing name / missing factory.
  EXPECT_FALSE(register_workload(test_descriptor("")));
  WorkloadDescriptor no_factory;
  no_factory.name = "WlNoFactory";
  no_factory.suite = "custom";
  EXPECT_FALSE(register_workload(std::move(no_factory)));
  EXPECT_FALSE(WorkloadRegistry::instance().contains("WlNoFactory"));
}

TEST(WorkloadRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    WorkloadRegistry::instance().at("not-a-workload");
    FAIL() << "at() should throw on unknown names";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not-a-workload"), std::string::npos) << msg;
    EXPECT_NE(msg.find("RND"), std::string::npos) << msg;
    EXPECT_NE(msg.find("PR"), std::string::npos) << msg;
  }
}

TEST(WorkloadRegistry, BuiltinsMatchEnumApi) {
  auto& reg = WorkloadRegistry::instance();
  // Every enum workload is registered as a built-in under its to_string
  // name, with matching catalogue metadata.
  for (const WorkloadInfo& i : all_workload_info()) {
    const WorkloadDescriptor* d = reg.find(i.name);
    ASSERT_NE(d, nullptr) << i.name;
    EXPECT_TRUE(d->builtin) << i.name;
    EXPECT_EQ(d->suite, i.suite);
    EXPECT_EQ(d->paper_bytes, i.paper_bytes);
    EXPECT_EQ(&descriptor_of(i.kind), d);
    EXPECT_FALSE(d->summary.empty()) << i.name;
  }
  // ... and the built-ins are exactly the eleven, in Table II order.
  const std::vector<std::string> builtins = reg.builtin_names();
  ASSERT_EQ(builtins.size(), all_workload_info().size());
  for (std::size_t i = 0; i < builtins.size(); ++i)
    EXPECT_EQ(builtins[i], all_workload_info()[i].name);
}

TEST(WorkloadRegistry, EnumShimProducesRegistryTraces) {
  // make_workload(kind, ...) and the registry factory yield identical
  // streams (same generator behind both paths).
  WorkloadParams p;
  p.num_cores = 1;
  p.scale = 1.0 / 256.0;
  auto via_enum = make_workload(WorkloadKind::kRND, p);
  auto via_registry = descriptor_of(WorkloadKind::kRND).make(p);
  ASSERT_NE(via_enum, nullptr);
  ASSERT_NE(via_registry, nullptr);
  EXPECT_EQ(via_enum->name(), via_registry->name());
  EXPECT_EQ(via_enum->dataset_bytes(), via_registry->dataset_bytes());
  for (int i = 0; i < 200; ++i) {
    const MemRef a = via_enum->next(0);
    const MemRef b = via_registry->next(0);
    ASSERT_EQ(a.va, b.va) << "diverged at ref " << i;
    ASSERT_EQ(a.gap, b.gap);
    ASSERT_EQ(a.type, b.type);
  }
}

TEST(WorkloadRegistry, ResolveWorkloadPrefersNameOverEnum) {
  const WorkloadDescriptor& by_enum = resolve_workload(WorkloadKind::kPR, "");
  EXPECT_EQ(by_enum.name, "PR");
  const WorkloadDescriptor& by_name =
      resolve_workload(WorkloadKind::kPR, "gups");
  EXPECT_EQ(by_name.name, "RND");
  EXPECT_THROW(resolve_workload(WorkloadKind::kPR, "bogus"),
               std::out_of_range);
}

// The acceptance criterion of the open API: a brand-new workload registered
// from a test runs end-to-end through string selection — no enum value, no
// workload-header edit.
TEST(WorkloadRegistry, RegisteredWorkloadRunsEndToEnd) {
  WorkloadDescriptor d = test_descriptor("EndToEndScan");
  d.aliases = {"e2escan"};
  ASSERT_TRUE(register_workload(std::move(d)));
  // Not a built-in: no enum value maps to it.
  EXPECT_FALSE(workload_from_string("EndToEndScan").has_value());

  const RunSpec spec = RunSpecBuilder()
                           .system("ndp")
                           .cores(2)
                           .mechanism("radix")
                           .workload("e2escan")
                           .instructions(5'000)
                           .warmup(300)
                           .build();
  EXPECT_EQ(spec.workload_label(), "EndToEndScan");
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_EQ(r.cores.size(), 2u);
  // meta.workload records the canonical registered name.
  EXPECT_EQ(r.meta.workload, "EndToEndScan");
  EXPECT_GT(r.stats.get("walker.walks"), 0u);
}

}  // namespace
}  // namespace ndp
