// Experiment front-end contract: the fluent builder's string-named
// selection, sweep() cross-product expansion, shared Overrides forwarding,
// geomean edge cases, and JSON serialization.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.h"

namespace ndp {
namespace {

TEST(RunSpecBuilder, StringSelectionResolvesNamesAndAliases) {
  const RunSpec s = RunSpecBuilder()
                        .system("cpu")
                        .cores(3)
                        .mechanism("ndpage")
                        .workload("gups")
                        .seed(7)
                        .build();
  EXPECT_EQ(s.system, SystemKind::kCpu);
  EXPECT_EQ(s.cores, 3u);
  EXPECT_EQ(s.mechanism, Mechanism::kNdpage);
  EXPECT_EQ(s.mechanism_label(), "NDPage");
  EXPECT_EQ(s.workload, WorkloadKind::kRND);  // suite alias "GUPS" -> RND
  EXPECT_EQ(s.seed, 7u);
}

TEST(RunSpecBuilder, UnknownNamesThrowListingAlternatives) {
  EXPECT_THROW(RunSpecBuilder().system("gpu"), std::invalid_argument);
  EXPECT_THROW(RunSpecBuilder().cores(0), std::invalid_argument);
  try {
    RunSpecBuilder().mechanism("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NDPage"), std::string::npos);
  }
  try {
    RunSpecBuilder().workload("bogus");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RND"), std::string::npos);
  }
  // Suite names covering several workloads are ambiguous, not resolvable.
  EXPECT_THROW(RunSpecBuilder().workload("GraphBIG"), std::invalid_argument);
}

TEST(Sweep, ExpandsCrossProductMechanismMajor) {
  RunSpec base;
  base.instructions_per_core = 123;
  const auto specs =
      sweep(base, {"radix", "ndpage"}, {"gups", "PR"}, {1u, 4u});
  ASSERT_EQ(specs.size(), 8u);
  // Mechanism-major order: radix cells first.
  EXPECT_EQ(specs[0].mechanism_label(), "Radix");
  EXPECT_EQ(specs[0].workload, WorkloadKind::kRND);
  EXPECT_EQ(specs[0].cores, 1u);
  EXPECT_EQ(specs[1].cores, 4u);
  EXPECT_EQ(specs[2].workload, WorkloadKind::kPR);
  EXPECT_EQ(specs[4].mechanism_label(), "NDPage");
  // Base fields ride along untouched.
  for (const RunSpec& s : specs)
    EXPECT_EQ(s.instructions_per_core, 123u);
}

TEST(Sweep, EmptyAxesKeepBaseValues) {
  RunSpec base;
  base.mechanism = Mechanism::kEch;
  base.workload = WorkloadKind::kXS;
  base.cores = 5;
  const auto specs = sweep(base, {}, {}, {});
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].mechanism, Mechanism::kEch);
  EXPECT_EQ(specs[0].workload, WorkloadKind::kXS);
  EXPECT_EQ(specs[0].cores, 5u);
  EXPECT_THROW(sweep(base, {"bogus"}), std::invalid_argument);
}

TEST(Overrides, ApplyToReplacesOnlySetFields) {
  WalkerConfig base;
  base.pwc_levels = {4, 3};
  base.bypass_caches_for_metadata = false;

  EXPECT_FALSE(Overrides{}.any());
  WalkerConfig same = Overrides{}.apply_to(base);
  EXPECT_EQ(same.pwc_levels, base.pwc_levels);
  EXPECT_FALSE(same.bypass_caches_for_metadata);

  Overrides o;
  o.bypass = true;
  o.pwc_levels = std::vector<unsigned>{};
  EXPECT_TRUE(o.any());
  WalkerConfig changed = o.apply_to(base);
  EXPECT_TRUE(changed.bypass_caches_for_metadata);
  EXPECT_TRUE(changed.pwc_levels.empty());
}

TEST(Overrides, ForwardedThroughRunExperiment) {
  RunSpec spec = RunSpecBuilder()
                     .mechanism("radix")
                     .workload("gups")
                     .cores(1)
                     .instructions(5'000)
                     .warmup(300)
                     .scale(1.0 / 64.0)
                     .build();
  spec.overrides.bypass = true;  // radix table + NDPage's metadata bypass
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.stats.get("walker.walks"), 0u);
  // Every PTE access bypasses the caches. The counters tick at different
  // points of a walk, so a walk in flight across the warmup reset may skew
  // them by one walk's accesses.
  EXPECT_GT(r.stats.get("mem.bypassed"), 0u);
  EXPECT_NEAR(double(r.stats.get("mem.bypassed")),
              double(r.stats.get("walker.mem_accesses")), 8.0);
}

TEST(Geomean, PositiveValuesExact) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, EmptyAndNonPositiveInputsAreDefined) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 0.0, 8.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({-1.0, 4.0}), 0.0);
}

TEST(Json, RunResultSerializesSpecMetricsAndStats) {
  const RunSpec spec = RunSpecBuilder()
                           .mechanism("ndpage")
                           .workload("gups")
                           .cores(2)
                           .instructions(5'000)
                           .warmup(300)
                           .scale(1.0 / 64.0)
                           .build();
  const RunResult r = run_experiment(spec);
  const std::string json = to_json(r, &spec);

  // Spec identity, headline metrics, per-core block, component stats.
  EXPECT_NE(json.find("\"mechanism\":\"NDPage\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"RND\""), std::string::npos);
  EXPECT_NE(json.find("\"total_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
  EXPECT_NE(json.find("\"translation_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"walker.walks\""), std::string::npos);

  // Structurally balanced (no nesting bugs).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Without a spec, the embedded RunMeta still identifies the run.
  const std::string bare = to_json(r);
  EXPECT_NE(bare.find("\"mechanism\":\"NDPage\""), std::string::npos);

  // StatSet serializes standalone too.
  const std::string stats_json = to_json(r.stats);
  EXPECT_NE(stats_json.find("\"averages\""), std::string::npos);
}

TEST(Workloads, FromStringResolvesNamesAndUniqueSuites) {
  ASSERT_TRUE(workload_from_string("PR").has_value());
  EXPECT_EQ(*workload_from_string("pr"), WorkloadKind::kPR);
  EXPECT_EQ(*workload_from_string("gups"), WorkloadKind::kRND);
  EXPECT_EQ(*workload_from_string("XSBench"), WorkloadKind::kXS);
  EXPECT_EQ(*workload_from_string("genomicsbench"), WorkloadKind::kGEN);
  EXPECT_FALSE(workload_from_string("GraphBIG").has_value());  // ambiguous
  EXPECT_FALSE(workload_from_string("nope").has_value());
}

}  // namespace
}  // namespace ndp
