// Tests for the 11 workload trace generators: determinism, region
// containment, footprints, per-core independence, reference mixes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/workload.h"

namespace ndp {
namespace {

WorkloadParams tiny_params(unsigned cores = 2) {
  WorkloadParams p;
  p.num_cores = cores;
  p.scale = 1.0 / 32.0;  // keep constructors fast
  p.seed = 42;
  return p;
}

TEST(WorkloadRegistry, ElevenWorkloadsWithTableTwoSizes) {
  EXPECT_EQ(all_workload_info().size(), 11u);
  EXPECT_EQ(info_of(WorkloadKind::kGEN).paper_bytes, 33ull << 30);
  EXPECT_EQ(info_of(WorkloadKind::kXS).paper_bytes, 9ull << 30);
  EXPECT_EQ(std::string(info_of(WorkloadKind::kPR).suite), "GraphBIG");
  EXPECT_EQ(to_string(WorkloadKind::kRND), "RND");
}

class WorkloadParamTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadParamTest, DeterministicStreams) {
  auto a = make_workload(GetParam(), tiny_params());
  auto b = make_workload(GetParam(), tiny_params());
  for (int i = 0; i < 2000; ++i) {
    const MemRef ra = a->next(0);
    const MemRef rb = b->next(0);
    ASSERT_EQ(ra.va, rb.va);
    ASSERT_EQ(ra.gap, rb.gap);
    ASSERT_EQ(ra.type, rb.type);
  }
}

TEST_P(WorkloadParamTest, ReferencesStayInsideDeclaredRegions) {
  auto w = make_workload(GetParam(), tiny_params());
  const auto regions = w->regions();
  ASSERT_FALSE(regions.empty());
  for (unsigned core = 0; core < 2; ++core) {
    for (int i = 0; i < 20000; ++i) {
      const MemRef r = w->next(core);
      bool inside = false;
      for (const VmRegion& reg : regions)
        if (reg.contains(r.va)) {
          inside = true;
          break;
        }
      ASSERT_TRUE(inside) << to_string(GetParam()) << " va=0x" << std::hex
                          << r.va << " core " << core;
    }
  }
}

TEST_P(WorkloadParamTest, RegionsArePageAlignedAndDisjoint) {
  auto w = make_workload(GetParam(), tiny_params());
  const auto regions = w->regions();
  for (const VmRegion& r : regions) {
    EXPECT_EQ(page_offset(r.base), 0u);
    EXPECT_GT(r.bytes, 0u);
  }
  for (std::size_t i = 0; i < regions.size(); ++i)
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const bool disjoint = regions[i].end() <= regions[j].base ||
                            regions[j].end() <= regions[i].base;
      EXPECT_TRUE(disjoint) << regions[i].name << " vs " << regions[j].name;
    }
}

TEST_P(WorkloadParamTest, CoresProduceDistinctButSharedFootprints) {
  auto w = make_workload(GetParam(), tiny_params());
  std::set<VirtAddr> s0, s1;
  int identical = 0;
  for (int i = 0; i < 3000; ++i) {
    const MemRef a = w->next(0);
    const MemRef b = w->next(1);
    s0.insert(a.va & ~(kPageSize - 1));
    s1.insert(b.va & ~(kPageSize - 1));
    identical += (a.va == b.va);
  }
  // Threads work on the same shared structures but not in lockstep.
  EXPECT_LT(identical, 300);
}

TEST_P(WorkloadParamTest, GapsAreBounded) {
  auto w = make_workload(GetParam(), tiny_params());
  for (int i = 0; i < 5000; ++i) {
    const MemRef r = w->next(0);
    ASSERT_LE(r.gap, 64u) << "implausible non-memory gap";
  }
}

TEST_P(WorkloadParamTest, MixContainsReadsAndWrites) {
  auto w = make_workload(GetParam(), tiny_params());
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    writes += (w->next(0).type == AccessType::kWrite);
  EXPECT_GT(writes, 0) << "every kernel updates something";
  EXPECT_LT(writes, n) << "every kernel reads something";
}

TEST_P(WorkloadParamTest, DatasetScalesWithParameter) {
  WorkloadParams big = tiny_params();
  big.scale = 1.0 / 16.0;
  auto small_wl = make_workload(GetParam(), tiny_params());
  auto big_wl = make_workload(GetParam(), big);
  EXPECT_GT(big_wl->dataset_bytes(), small_wl->dataset_bytes());
  EXPECT_LE(small_wl->dataset_bytes(), small_wl->paper_dataset_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest, ::testing::ValuesIn(kAllWorkloads),
    [](const ::testing::TestParamInfo<WorkloadKind>& info) {
      return to_string(info.param);
    });

TEST(GraphWorkload, PrefaultRegionsDominateFootprint) {
  auto w = make_workload(WorkloadKind::kPR, tiny_params());
  std::uint64_t prefault = 0, demand = 0;
  for (const VmRegion& r : w->regions())
    (r.prefault ? prefault : demand) += r.bytes;
  EXPECT_GT(prefault, 0u);
}

TEST(GraphWorkload, FrontierKernelsDeclarePerCoreDemandRegions) {
  auto w = make_workload(WorkloadKind::kBFS, tiny_params(4));
  int demand_regions = 0;
  for (const VmRegion& r : w->regions()) demand_regions += !r.prefault;
  EXPECT_EQ(demand_regions, 4) << "one dynamic frontier per thread";
}

TEST(GupsWorkload, ReadModifyWritePairs) {
  auto w = make_workload(WorkloadKind::kRND, tiny_params(1));
  for (int i = 0; i < 100; ++i) {
    const MemRef read = w->next(0);
    const MemRef write = w->next(0);
    ASSERT_EQ(read.type, AccessType::kRead);
    ASSERT_EQ(write.type, AccessType::kWrite);
    ASSERT_EQ(read.va, write.va) << "GUPS updates the word it read";
  }
}

TEST(GenomicsWorkload, WarmPagesLieInDemandRegion) {
  auto w = make_workload(WorkloadKind::kGEN, tiny_params(1));
  const auto warm = w->warm_pages();
  ASSERT_FALSE(warm.empty());
  const auto regions = w->regions();
  const VmRegion* table = nullptr;
  for (const VmRegion& r : regions)
    if (!r.prefault) table = &r;
  ASSERT_NE(table, nullptr);
  for (std::size_t i = 0; i < warm.size(); i += 997)
    EXPECT_TRUE(table->contains(warm[i]));
}

TEST(XsBenchWorkload, BinarySearchConverges) {
  // The probe stream for one lookup must be a strictly shrinking interval:
  // successive egrid addresses bounce around but stay inside the grid.
  auto w = make_workload(WorkloadKind::kXS, tiny_params(1));
  const auto regions = w->regions();
  const VmRegion& egrid = regions[0];
  int in_egrid = 0;
  for (int i = 0; i < 1000; ++i)
    in_egrid += egrid.contains(w->next(0).va);
  EXPECT_GT(in_egrid, 500) << "search probes dominate the XS mix";
}

}  // namespace
}  // namespace ndp
