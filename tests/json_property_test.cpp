// JsonValue property/fuzz tests (seeded, deterministic, ctest-resident):
//   * round-trip fixpoint — for randomly generated documents,
//     parse(dump(v)) re-serializes to the identical byte string;
//   * robustness — truncating or mutating a valid document never crashes
//     the parser: it either parses (mutations can keep documents valid) or
//     fails with a JsonError carrying a line:column diagnostic.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "common/json.h"
#include "common/rng.h"

namespace ndp {
namespace {

std::string random_string(Rng& rng) {
  static const char kAlphabet[] =
      "abcXYZ 012_-./\\\"\n\t{}[]:,\x01\x7f\xc3\xa9";  // escapes + UTF-8
  std::string s;
  const std::uint64_t len = rng.below(12);
  for (std::uint64_t i = 0; i < len; ++i)
    s += kAlphabet[rng.below(sizeof kAlphabet - 1)];
  return s;
}

JsonValue random_value(Rng& rng, unsigned depth) {
  // Scalars only once the depth budget is spent.
  const std::uint64_t kind = rng.below(depth >= 4 ? 5 : 7);
  switch (kind) {
    case 0: return JsonValue::make_null();
    case 1: return JsonValue::make_bool(rng.chance(0.5));
    case 2:
      return JsonValue::make_number(
          static_cast<double>(rng.below(1'000'000)));
    case 3:
      // Fractions exercise the double formatter's round-trip path.
      return JsonValue::make_number(rng.uniform() * 1e6 - 5e5);
    case 4: return JsonValue::make_string(random_string(rng));
    case 5: {
      std::vector<JsonValue> items;
      const std::uint64_t n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        items.push_back(random_value(rng, depth + 1));
      return JsonValue::make_array(std::move(items));
    }
    default: {
      std::vector<JsonValue::Member> members;
      const std::uint64_t n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        // Unique keys: duplicates are (correctly) a parse error.
        members.emplace_back("k" + std::to_string(i) + random_string(rng),
                             random_value(rng, depth + 1));
        for (std::size_t j = 0; j + 1 < members.size(); ++j)
          if (members[j].first == members.back().first) {
            members.pop_back();
            break;
          }
      }
      return JsonValue::make_object(std::move(members));
    }
  }
}

/// "line:col: ..." — every parse failure must carry a position.
bool has_line_col_prefix(const std::string& msg) {
  std::size_t i = 0;
  while (i < msg.size() && std::isdigit(static_cast<unsigned char>(msg[i])))
    ++i;
  if (i == 0 || i >= msg.size() || msg[i] != ':') return false;
  std::size_t j = ++i;
  while (j < msg.size() && std::isdigit(static_cast<unsigned char>(msg[j])))
    ++j;
  return j > i && j < msg.size() && msg[j] == ':';
}

TEST(JsonProperty, ParseDumpFixpointOnRandomDocuments) {
  Rng rng(0x20260726);
  for (int i = 0; i < 400; ++i) {
    const JsonValue v = random_value(rng, 0);
    const std::string first = v.dump();
    JsonValue reparsed = JsonValue::make_null();
    ASSERT_NO_THROW(reparsed = JsonValue::parse(first)) << first;
    const std::string second = reparsed.dump();
    // Serialization is a fixpoint of parse∘dump: one round settles it.
    EXPECT_EQ(second, first);
    EXPECT_EQ(JsonValue::parse(second).dump(), second);
  }
}

TEST(JsonProperty, TruncatedDocumentsDiagnoseOrParseNeverCrash) {
  Rng rng(0xBADC0FFE);
  int failures = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string doc = random_value(rng, 0).dump();
    for (std::size_t cut = 0; cut < doc.size(); ++cut) {
      try {
        (void)JsonValue::parse(doc.substr(0, cut));
      } catch (const JsonError& e) {
        ++failures;
        EXPECT_TRUE(has_line_col_prefix(e.what()))
            << "no line:col in '" << e.what() << "'";
      }
    }
  }
  // Sanity: truncation overwhelmingly produces diagnosed failures.
  EXPECT_GT(failures, 100);
}

TEST(JsonProperty, MutatedDocumentsDiagnoseOrParseNeverCrash) {
  Rng rng(0x5EEDF00D);
  static const char kNoise[] = "{}[]:,\"\\x019 \n\xff";
  int failures = 0;
  for (int i = 0; i < 250; ++i) {
    std::string doc = random_value(rng, 0).dump();
    if (doc.empty()) continue;
    // A few point mutations: overwrite or insert structural noise.
    const std::uint64_t edits = 1 + rng.below(3);
    for (std::uint64_t e = 0; e < edits; ++e) {
      const char c = kNoise[rng.below(sizeof kNoise - 1)];
      const std::size_t pos = rng.below(doc.size());
      if (rng.chance(0.5))
        doc[pos] = c;
      else
        doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(pos), c);
    }
    try {
      const JsonValue v = JsonValue::parse(doc);
      // Still valid? Then it must round-trip like any document.
      EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());
    } catch (const JsonError& e) {
      ++failures;
      EXPECT_TRUE(has_line_col_prefix(e.what()))
          << "no line:col in '" << e.what() << "'";
    }
  }
  EXPECT_GT(failures, 50);
}

}  // namespace
}  // namespace ndp
