// SoA-TLB conformance: the structure-of-arrays Tlb (translate/tlb.h) must be
// behaviorally identical to the per-way array-of-structs design it replaced.
//
// The reference model below is the old layout spelled out: one struct per
// way with an explicit valid flag, page-size-split sub-TLBs, LRU refresh on
// hit, refresh-on-reinsert, first-invalid-then-oldest victim selection, and
// eviction counting only when a valid way is displaced. The fuzz drives both
// implementations with one op stream over a deliberately tiny VA range (to
// force set conflicts and evictions) and checks every lookup/peek result and
// every counter — so any SoA scan/victim/accounting divergence, including in
// the huge-page sub-TLB, fails loudly rather than drifting the goldens.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "translate/tlb.h"

namespace ndp {
namespace {

// The pre-SoA design: per-way entry objects with a valid flag.
class RefTlb {
 public:
  explicit RefTlb(const TlbConfig& cfg) {
    small_.ways.assign(cfg.entries, {});
    small_.num_ways = cfg.ways;
    small_.sets = cfg.entries / cfg.ways;
    if (cfg.huge_entries > 0) {
      huge_.ways.assign(cfg.huge_entries, {});
      huge_.num_ways = cfg.huge_ways;
      huge_.sets = cfg.huge_entries / cfg.huge_ways;
    }
  }

  std::optional<TlbEntry> lookup(VirtAddr va) {
    ++tick_;
    for (auto [sub, shift] : subs()) {
      if (Way* w = find(*sub, va, shift)) {
        w->lru = tick_;
        ++hits;
        return TlbEntry{w->pfn, shift};
      }
    }
    ++misses;
    return std::nullopt;
  }

  std::optional<TlbEntry> peek(VirtAddr va) const {
    for (auto [sub, shift] : subs()) {
      if (const Way* w = find(*const_cast<Sub*>(sub), va, shift))
        return TlbEntry{w->pfn, shift};
    }
    return std::nullopt;
  }

  void insert(VirtAddr va, Pfn pfn, unsigned page_shift) {
    ++tick_;
    Sub& a = page_shift == kPageShift ? small_ : huge_;
    if (a.ways.empty()) return;  // no capacity for this page size
    if (Way* w = find(a, va, page_shift)) {
      w->pfn = pfn;
      w->lru = tick_;
      return;
    }
    const std::size_t base = base_of(a, va, page_shift);
    Way* victim = nullptr;
    for (unsigned w = 0; w < a.num_ways; ++w) {
      Way& cand = a.ways[base + w];
      if (!cand.valid) {
        victim = &cand;
        break;
      }
      if (!victim || cand.lru < victim->lru) victim = &cand;
    }
    if (victim->valid) ++evictions;
    victim->valid = true;
    victim->vpn = va >> page_shift;
    victim->pfn = pfn;
    victim->lru = tick_;
  }

  void invalidate(VirtAddr va) {
    for (auto [sub, shift] : subs())
      if (Way* w = find(*sub, va, shift)) w->valid = false;
  }

  std::uint64_t hits = 0, misses = 0, evictions = 0;

 private:
  struct Way {
    bool valid = false;
    Vpn vpn = 0;
    Pfn pfn = 0;
    std::uint64_t lru = 0;
  };
  struct Sub {
    std::vector<Way> ways;  ///< sets x num_ways, row-major
    unsigned num_ways = 1;
    unsigned sets = 1;
  };

  std::array<std::pair<Sub*, unsigned>, 2> subs() const {
    auto* self = const_cast<RefTlb*>(this);
    return {{{&self->small_, kPageShift}, {&self->huge_, kHugePageShift}}};
  }

  static std::size_t base_of(const Sub& a, VirtAddr va, unsigned shift) {
    return static_cast<std::size_t>((va >> shift) % a.sets) * a.num_ways;
  }

  static Way* find(Sub& a, VirtAddr va, unsigned shift) {
    if (a.ways.empty()) return nullptr;
    const std::size_t base = base_of(a, va, shift);
    for (unsigned w = 0; w < a.num_ways; ++w) {
      Way& cand = a.ways[base + w];
      if (cand.valid && cand.vpn == (va >> shift)) return &cand;
    }
    return nullptr;
  }

  Sub small_, huge_;
  std::uint64_t tick_ = 0;
};

void fuzz_against_reference(const TlbConfig& cfg, std::uint64_t seed,
                            unsigned ops) {
  Tlb soa(cfg);
  RefTlb ref(cfg);
  Rng rng(seed);
  // 4x more 4 KB pages than small-TLB entries, and a handful of 2 MB pages,
  // so sets overflow constantly and the victim path runs thousands of times.
  const std::uint64_t small_pages = cfg.entries * 4ull;
  for (unsigned i = 0; i < ops; ++i) {
    SCOPED_TRACE(i);
    const std::uint64_t r = rng.below(100);
    if (r < 45) {  // lookup
      const VirtAddr va = rng.below(small_pages) * kPageSize + rng.below(64);
      const auto a = soa.lookup(va);
      const auto b = ref.lookup(va);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->pfn, b->pfn);
        EXPECT_EQ(a->page_shift, b->page_shift);
      }
    } else if (r < 55) {  // stat-free peek
      const VirtAddr va = rng.below(small_pages) * kPageSize;
      const auto a = soa.peek(va);
      const auto b = ref.peek(va);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) EXPECT_EQ(a->pfn, b->pfn);
    } else if (r < 85) {  // 4 KB insert (reinsert-refresh exercised too)
      const VirtAddr va = rng.below(small_pages) * kPageSize;
      const Pfn pfn = rng.below(1 << 20);
      soa.insert(va, pfn, kPageShift);
      ref.insert(va, pfn, kPageShift);
    } else if (r < 95) {  // 2 MB insert
      const VirtAddr va = rng.below(16) * kHugePageSize;
      const Pfn pfn = rng.below(1 << 20) & ~Pfn{0x1FF};
      soa.insert(va, pfn, kHugePageShift);
      ref.insert(va, pfn, kHugePageShift);
    } else {  // shootdown
      const VirtAddr va = rng.below(small_pages) * kPageSize;
      soa.invalidate(va);
      ref.invalidate(va);
    }
    ASSERT_EQ(soa.counters().hits, ref.hits);
    ASSERT_EQ(soa.counters().misses, ref.misses);
    ASSERT_EQ(soa.counters().evictions, ref.evictions);
  }
  EXPECT_GT(ref.evictions, 0u) << "fuzz never reached the victim path";
}

TEST(TlbConformance, L1ShapeMatchesPerWayReference) {
  fuzz_against_reference(TlbConfig{.name = "l1d",
                                   .entries = 64,
                                   .ways = 4,
                                   .latency = 1,
                                   .huge_entries = 32,
                                   .huge_ways = 4},
                         0x51AB5, 20000);
}

TEST(TlbConformance, L2ShapeNoHugeCapacityMatchesReference) {
  fuzz_against_reference(TlbConfig{.name = "l2",
                                   .entries = 1536,
                                   .ways = 12,
                                   .latency = 12,
                                   .huge_entries = 0,
                                   .huge_ways = 1},
                         77, 30000);
}

TEST(TlbConformance, FullyAssociativeSingleSetMatchesReference) {
  fuzz_against_reference(TlbConfig{.name = "fa",
                                   .entries = 8,
                                   .ways = 8,
                                   .latency = 1,
                                   .huge_entries = 4,
                                   .huge_ways = 4},
                         3, 20000);
}

}  // namespace
}  // namespace ndp
