// Unit tests for the set-associative cache model.
#include <gtest/gtest.h>

#include "cache/cache.h"

namespace ndp {
namespace {

CacheConfig small_cfg(ReplPolicy repl = ReplPolicy::kLru) {
  return CacheConfig{.name = "t", .size_bytes = 4096, .ways = 4,
                     .latency = 4, .repl = repl};
}

TEST(Cache, GeometryFromConfig) {
  Cache c(small_cfg());
  // 4096 B / 64 B = 64 lines / 4 ways = 16 sets.
  EXPECT_EQ(c.num_sets(), 16u);
}

TEST(Cache, MissThenHit) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.access(1, AccessType::kRead, AccessClass::kData).hit);
  EXPECT_TRUE(c.access(1, AccessType::kRead, AccessClass::kData).hit);
  EXPECT_TRUE(c.probe(1));
  EXPECT_FALSE(c.probe(2));
}

TEST(Cache, LruEvictsOldest) {
  Cache c(small_cfg());
  // Fill one set (lines with identical set index: stride = num_sets).
  const std::uint64_t stride = c.num_sets();
  for (std::uint64_t w = 0; w < 4; ++w)
    c.access(w * stride, AccessType::kRead, AccessClass::kData);
  // Touch line 0 to make it most recent; insert a 5th line.
  c.access(0, AccessType::kRead, AccessClass::kData);
  const CacheOutcome out = c.access(4 * stride, AccessType::kRead, AccessClass::kData);
  ASSERT_TRUE(out.evicted);
  EXPECT_EQ(out.victim_line, stride);  // oldest untouched line
  EXPECT_TRUE(c.probe(0));
}

TEST(Cache, WriteMarksDirtyAndEvictionReportsIt) {
  Cache c(small_cfg());
  const std::uint64_t stride = c.num_sets();
  c.access(0, AccessType::kWrite, AccessClass::kData);
  for (std::uint64_t w = 1; w <= 4; ++w)
    c.access(w * stride, AccessType::kRead, AccessClass::kData);
  // Line 0 must have been evicted dirty at some point.
  EXPECT_FALSE(c.probe(0));
}

TEST(Cache, InvalidateReturnsDirtyState) {
  Cache c(small_cfg());
  c.access(7, AccessType::kWrite, AccessClass::kData);
  EXPECT_TRUE(c.invalidate(7));
  c.access(8, AccessType::kRead, AccessClass::kData);
  EXPECT_FALSE(c.invalidate(8));
  EXPECT_FALSE(c.invalidate(9));  // absent
}

TEST(Cache, PerClassCounters) {
  Cache c(small_cfg());
  c.access(1, AccessType::kRead, AccessClass::kData);     // data miss
  c.access(1, AccessType::kRead, AccessClass::kData);     // data hit
  c.access(2, AccessType::kRead, AccessClass::kMetadata); // meta miss
  EXPECT_EQ(c.counters().misses(AccessClass::kData), 1u);
  EXPECT_EQ(c.counters().hits(AccessClass::kData), 1u);
  EXPECT_EQ(c.counters().misses(AccessClass::kMetadata), 1u);
  EXPECT_DOUBLE_EQ(c.miss_rate(AccessClass::kData), 0.5);
  EXPECT_DOUBLE_EQ(c.miss_rate(AccessClass::kMetadata), 1.0);
}

TEST(Cache, PollutionVictimCountsMetadataOverData) {
  Cache c(small_cfg());
  const std::uint64_t stride = c.num_sets();
  for (std::uint64_t w = 0; w < 4; ++w)
    c.access(w * stride, AccessType::kRead, AccessClass::kData);
  EXPECT_EQ(c.counters().pollution_victims, 0u);
  c.access(4 * stride, AccessType::kRead, AccessClass::kMetadata);
  EXPECT_EQ(c.counters().pollution_victims, 1u);
  // Metadata evicting metadata is not pollution.
  c.access(5 * stride, AccessType::kRead, AccessClass::kMetadata);
  c.access(4 * stride, AccessType::kRead, AccessClass::kMetadata);
}

TEST(Cache, MetadataOccupancyReflectsContents) {
  Cache c(small_cfg());
  EXPECT_DOUBLE_EQ(c.metadata_occupancy(), 0.0);
  c.access(1, AccessType::kRead, AccessClass::kMetadata);
  c.access(2, AccessType::kRead, AccessClass::kData);
  EXPECT_DOUBLE_EQ(c.metadata_occupancy(), 0.5);
}

TEST(Cache, SnapshotAndReset) {
  Cache c(small_cfg());
  c.access(1, AccessType::kRead, AccessClass::kData);
  const StatSet s = c.snapshot();
  EXPECT_EQ(s.get("miss.data"), 1u);
  c.reset_counters();
  EXPECT_EQ(c.counters().misses(AccessClass::kData), 0u);
  EXPECT_TRUE(c.probe(1)) << "reset clears statistics, not contents";
}

class ReplPolicyTest : public ::testing::TestWithParam<ReplPolicy> {};

TEST_P(ReplPolicyTest, WorkingSetWithinCapacityAlwaysHits) {
  Cache c(small_cfg(GetParam()));
  // Touch 32 lines (half capacity) twice: second round must be all hits for
  // any sane policy when the set pressure is <= associativity.
  for (std::uint64_t l = 0; l < 32; ++l)
    c.access(l, AccessType::kRead, AccessClass::kData);
  for (std::uint64_t l = 0; l < 32; ++l)
    EXPECT_TRUE(c.access(l, AccessType::kRead, AccessClass::kData).hit);
}

TEST_P(ReplPolicyTest, OverCapacityStreamsMiss) {
  Cache c(small_cfg(GetParam()));
  int misses = 0;
  for (std::uint64_t l = 0; l < 1000; ++l)
    misses += !c.access(l * 16 + 3, AccessType::kRead, AccessClass::kData).hit;
  EXPECT_GT(misses, 900);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReplPolicyTest,
                         ::testing::Values(ReplPolicy::kLru, ReplPolicy::kRandom,
                                           ReplPolicy::kSrrip));

}  // namespace
}  // namespace ndp
