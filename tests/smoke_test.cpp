// End-to-end smoke: a tiny run of every mechanism completes and produces
// sane headline metrics.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace ndp {
namespace {

TEST(Smoke, EveryMechanismRuns) {
  for (Mechanism m : kAllMechanisms) {
    RunSpec spec;
    spec.system = SystemKind::kNdp;
    spec.cores = 1;
    spec.mechanism = m;
    spec.workload = WorkloadKind::kRND;
    spec.instructions_per_core = 20'000;
    spec.warmup_refs = 1'000;
    spec.scale = 1.0 / 64.0;
    RunResult r = run_experiment(spec);
    EXPECT_GT(r.total_cycles, 0u) << to_string(m);
    EXPECT_GT(r.total_instructions(), 0u) << to_string(m);
  }
}

}  // namespace
}  // namespace ndp
