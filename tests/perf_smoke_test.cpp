// Counter-based perf smoke test.
//
// CI cannot assert wall time without flaking on slow runners, so the hot
// paths are budgeted in *deterministic* units instead: engine heap
// operations and host heap allocations per simulated instruction. A
// regression that re-introduces per-event allocation (walk-path churn,
// hash-map nodes on the TLB-miss path, an unreserved event queue) moves
// these counts far past the budgets long before it shows up on a stopwatch.
//
// Budgets carry ~2-3x headroom over measured values (see BENCH_engine.json)
// so model-side changes that legitimately add events have room, while
// order-of-magnitude regressions still fail.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/experiment.h"
#include "workloads/workload_registry.h"

// ASan ships its own operator new/delete and must keep them; allocation
// counting is disabled under sanitizers (the heap-op budget still runs).
#if defined(__SANITIZE_ADDRESS__)
#define NDP_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NDP_COUNT_ALLOCS 0
#endif
#endif
#ifndef NDP_COUNT_ALLOCS
#define NDP_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if NDP_COUNT_ALLOCS
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // NDP_COUNT_ALLOCS

namespace ndp {
namespace {

RunSpec smoke_spec(unsigned cores) {
  return RunSpecBuilder()
      .system(SystemKind::kNdp)
      .cores(cores)
      .mechanism("radix")
      .workload("gups")
      .instructions(20000)
      .scale(0.02)
      .build();
}

// Measured (RelWithDebInfo, radix/gups): ~1.7 events per instruction at
// 2 cores / mlp 8 — one issue, a couple of walk/data steps, one completion
// per memory reference, amortized over gap instructions.
constexpr double kMaxEventsPerInstruction = 5.0;
// The queue holds at most cores x (mlp + 1) outstanding events.
constexpr std::uint64_t kMlp = 8;

TEST(PerfSmoke, HeapOpsPerInstructionWithinBudget) {
  const RunResult r = run_experiment(smoke_spec(2));
  const double instrs = static_cast<double>(r.total_instructions());
  ASSERT_GT(instrs, 0.0);
  EXPECT_EQ(r.host.events, r.host.heap_pushes);
  EXPECT_LT(static_cast<double>(r.host.events) / instrs,
            kMaxEventsPerInstruction)
      << "engine event count per instruction regressed";
  EXPECT_LE(r.host.heap_peak, 2ull * (kMlp + 1))
      << "event queue grew past the outstanding-op bound";
}

TEST(PerfSmoke, AllocationsPerInstructionWithinBudget) {
#if NDP_COUNT_ALLOCS
  // Build everything first; count only the event loop. Steady state should
  // allocate almost nothing per op: walk plans, PWC refills, TLB state and
  // the event queue are all reused storage. Demand faults may allocate
  // (page-table nodes, reverse-map growth) — the budget leaves room for
  // them, not for per-event churn.
  SystemConfig sc = SystemConfig::ndp(2, Mechanism::kRadix);
  System sys(sc);
  WorkloadParams wp;
  wp.num_cores = 2;
  wp.scale = 0.02;
  auto trace = WorkloadRegistry::instance().at("gups").make(wp);
  EngineConfig ec;
  ec.instructions_per_core = 20000;
  ec.warmup_refs_per_core = 1333;
  Engine engine(sys, *trace, ec);
  engine.prepare();  // setup allocates per page; the event loop must not

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const RunResult r = engine.run();
  const std::uint64_t during =
      g_allocs.load(std::memory_order_relaxed) - before;

  const double instrs = static_cast<double>(r.total_instructions());
  ASSERT_GT(instrs, 0.0);
  // Measured: ~0.002 allocs/instruction (stat collection at the end plus a
  // handful of first-touch growths). 0.05 is 25x headroom yet still two
  // orders of magnitude below one-allocation-per-event behaviour.
  EXPECT_LT(static_cast<double>(during) / instrs, 0.05)
      << during << " allocations during the measured run";
#else
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
}

}  // namespace
}  // namespace ndp
