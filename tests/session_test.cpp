// Session run-lifecycle contract (sim/session.h).
//
// The whole point of sharing prepared system images is that it must be
// invisible in the results: a pooled Session, a one-shot run_experiment(),
// and a from-scratch System must produce byte-identical output, at any job
// count. These tests pin that — including over the checked-in golden grids
// — plus the cache-keying rules (different seeds/overrides never share an
// image) and LRU eviction.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/run_config.h"
#include "sim/session.h"
#include "sim/sweep_runner.h"

namespace ndp {
namespace {

#ifndef NDP_SOURCE_DIR
#error "session_test needs NDP_SOURCE_DIR (set by CMakeLists.txt)"
#endif

RunConfig tiny_grid() {
  return RunConfig::from_json(R"json({
    "name": "session_tiny",
    "mechanisms": ["radix", "ndpage", "ech(ways=2)"],
    "workloads": ["RND", "PR"],
    "cores": [1, 2],
    "instructions": 2000,
    "warmup": 150,
    "scale": 0.015625,
    "baseline": "radix"
  })json");
}

RunSpec tiny_spec() {
  return RunSpecBuilder()
      .mechanism("radix")
      .workload("gups")
      .cores(1)
      .instructions(2000)
      .warmup(150)
      .scale(0.015625)
      .build();
}

/// The checked-in golden grids, with the same budget pinning the golden
/// suite applies (tests/golden_test.cpp) so cells are small and explicit.
std::vector<RunSpec> golden_specs(const char* config, std::uint64_t instrs,
                                  double scale) {
  const RunConfig cfg =
      RunConfig::load(std::string(NDP_SOURCE_DIR) + "/" + config);
  std::vector<RunSpec> specs = cfg.expand();
  for (RunSpec& s : specs) {
    if (instrs) s.instructions_per_core = instrs;
    if (scale > 0) s.scale = scale;
  }
  return specs;
}

std::string sweep_json(const std::vector<RunSpec>& specs, bool share_images,
                       unsigned jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  opts.share_images = share_images;
  return to_json(run_sweep(specs, opts));
}

// --- byte-identity ----------------------------------------------------------

TEST(Session, PooledRunMatchesOneShotRunExperiment) {
  Session session;
  const RunSpec spec = tiny_spec();
  const RunResult pooled_cold = session.run(spec);  // builds the image
  const RunResult pooled_warm = session.run(spec);  // restores it
  const RunResult fresh = run_experiment(spec);     // never touches a cache
  const std::string want = to_json(fresh, &spec);
  EXPECT_EQ(to_json(pooled_cold, &spec), want);
  EXPECT_EQ(to_json(pooled_warm, &spec), want);
  EXPECT_EQ(session.stats().image_builds, 1u);
  EXPECT_EQ(session.stats().image_hits, 1u);
}

TEST(Session, GoldenGridsByteIdenticalWithAndWithoutSharing) {
  // Fresh-System-per-cell vs pooled-Session over the full golden suite:
  // the serialized documents must match byte for byte.
  struct Grid {
    const char* config;
    std::uint64_t instrs;
    double scale;
  };
  for (const Grid& g :
       {Grid{"experiments/ci_smoke.json", 0, 0.0},
        Grid{"experiments/ablation_ech_ways.json", 4000, 0.015625}}) {
    const std::vector<RunSpec> specs =
        golden_specs(g.config, g.instrs, g.scale);
    EXPECT_EQ(sweep_json(specs, /*share_images=*/true, 1),
              sweep_json(specs, /*share_images=*/false, 1))
        << g.config;
  }
}

TEST(Session, ConcurrentRunsByteIdenticalAcrossJobCounts) {
  // One shared Session serving concurrent session.run() calls: output is
  // independent of the job count (and equal to the no-sharing document).
  const std::vector<RunSpec> specs =
      golden_specs("experiments/ci_smoke.json", 2000, 0.015625);
  const std::string want = sweep_json(specs, /*share_images=*/false, 1);
  for (unsigned jobs : {1u, 2u, 8u})
    EXPECT_EQ(sweep_json(specs, /*share_images=*/true, jobs), want)
        << "jobs=" << jobs;
}

TEST(Session, SweepSharesOneImagePerKey) {
  const RunConfig cfg = tiny_grid();  // 12 cells, 2 core counts
  Session session;
  SweepOptions opts;
  opts.session = &session;
  opts.jobs = 4;
  run_sweep(cfg, opts);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.runs, 12u);
  EXPECT_EQ(stats.image_builds, 2u);  // one per core count
  EXPECT_EQ(stats.image_hits, 10u);
  // Trace material: one per (workload, cores) pair here.
  EXPECT_EQ(stats.material_builds, 4u);
  EXPECT_EQ(stats.material_hits, 8u);
}

// --- keying & eviction ------------------------------------------------------

TEST(Session, DifferentSeedsAndOverridesNeverShareAnImage) {
  Session session;
  SystemConfig base = SystemConfig::ndp(2, Mechanism::kRadix);

  const auto img = session.image_for(base);
  // Mechanism is not part of the key: a different design point on the same
  // platform restores the same image.
  SystemConfig other_mech = base;
  other_mech.mechanism = Mechanism::kNdpage;
  EXPECT_EQ(session.image_for(other_mech).get(), img.get());

  SystemConfig seeded = base;
  seeded.seed = base.seed + 1;
  EXPECT_NE(session.image_for(seeded).get(), img.get());

  SystemConfig cored = base;
  cored.num_cores = 4;
  EXPECT_NE(session.image_for(cored).get(), img.get());

  SystemConfig bypassed = base;
  bypassed.overrides.bypass = true;
  EXPECT_NE(session.image_for(bypassed).get(), img.get());

  SystemConfig pwc = base;
  pwc.overrides.pwc_levels = std::vector<unsigned>{4, 3};
  EXPECT_NE(session.image_for(pwc).get(), img.get());

  // Engaged-but-empty ("strip the PWCs", JSON null/[]) is its own design
  // point, distinct from both no override and a non-empty level set.
  SystemConfig stripped = base;
  stripped.overrides.pwc_levels = std::vector<unsigned>{};
  EXPECT_NE(session.image_for(stripped).get(), img.get());
  EXPECT_NE(session.image_for(stripped).get(),
            session.image_for(pwc).get());

  SystemConfig dram = base;
  dram.overrides.dram = DramTiming::ddr4_2400();
  EXPECT_NE(session.image_for(dram).get(), img.get());

  EXPECT_EQ(session.stats().image_builds, 7u);
  EXPECT_EQ(session.stats().image_hits, 3u);
}

TEST(Session, EvictsLeastRecentlyUsedImagePastCapacity) {
  SessionOptions opts;
  opts.max_images = 2;
  Session session(opts);

  SystemConfig a = SystemConfig::ndp(1, Mechanism::kRadix);
  SystemConfig b = a;
  b.seed = 7;
  SystemConfig c = a;
  c.seed = 8;

  session.image_for(a);
  session.image_for(b);
  session.image_for(a);  // refresh a: b is now least recent
  session.image_for(c);  // evicts b
  EXPECT_EQ(session.stats().image_evictions, 1u);

  bool built = false;
  session.image_for(a, &built);
  EXPECT_FALSE(built) << "a stayed resident";
  session.image_for(b, &built);
  EXPECT_TRUE(built) << "b was evicted and must rebuild";
  EXPECT_EQ(session.stats().image_builds, 4u);
}

// --- the underlying System/PhysicalMemory machinery -------------------------

TEST(Session, SystemBuiltFromImageMatchesFreshConstruction) {
  SystemConfig cfg = SystemConfig::ndp(2, Mechanism::kNdpage);
  const SystemImage image = System::prepare_image(cfg);
  System fresh(cfg);
  System restored(cfg, image);
  EXPECT_EQ(fresh.phys().free_frames(), restored.phys().free_frames());
  EXPECT_EQ(fresh.phys().stats().get("noise_frames"),
            restored.phys().stats().get("noise_frames"));
  EXPECT_EQ(fresh.phys().buddy().fragmentation(),
            restored.phys().buddy().fragmentation());
  // Frame-use tags match everywhere (spot-check a deterministic stride).
  for (Pfn f = 0; f < fresh.phys().num_frames(); f += 4097)
    EXPECT_EQ(fresh.phys().use_of(f), restored.phys().use_of(f)) << f;
}

TEST(Session, ResetToReturnsASystemToThePristineImage) {
  const RunSpec spec = tiny_spec();
  SystemConfig sc = SystemConfig::ndp(spec.cores, Mechanism::kRadix);
  sc.seed = spec.seed;
  const SystemImage image = System::prepare_image(sc);

  auto run_on = [&](System& system) {
    auto trace = make_workload(WorkloadKind::kRND,
                               WorkloadParams{spec.cores, spec.scale,
                                              spec.seed});
    EngineConfig ec;
    ec.instructions_per_core = spec.instructions_per_core;
    ec.warmup_refs_per_core = spec.warmup_refs;
    Engine engine(system, *trace, ec);
    return engine.run();
  };

  System pooled(sc, image);
  const RunResult first = run_on(pooled);
  pooled.reset_to(image);  // back to post-boot state: rerun must match
  const RunResult again = run_on(pooled);
  EXPECT_EQ(to_json(first, &spec), to_json(again, &spec));

  // Incompatible image: loud error, not silent state corruption.
  SystemConfig other = sc;
  other.seed = sc.seed + 1;
  EXPECT_THROW(pooled.reset_to(System::prepare_image(other)),
               std::invalid_argument);
  EXPECT_THROW(System(other, image), std::invalid_argument);
}

TEST(Session, PhysicalMemorySnapshotRestoreRoundTrips) {
  PhysMemConfig pmc;
  pmc.bytes = 64ull << 20;  // small pool: fast, still noise-injected
  pmc.noise_fraction = 0.05;
  const PhysicalMemory pristine(pmc);
  const PhysMemImage image = pristine.snapshot();

  PhysicalMemory pm(pmc);
  // Dirty every kind of state: frames, a table block, a huge page.
  std::vector<Pfn> frames;
  for (int i = 0; i < 1000; ++i)
    frames.push_back(pm.alloc_frame(FrameUse::kData));
  const Pfn table = pm.alloc_table_block(4);
  const PhysicalMemory::HugeResult huge = pm.alloc_huge();
  ASSERT_FALSE(huge.fell_back);
  (void)table;
  ASSERT_NE(pm.free_frames(), pristine.free_frames());

  pm.restore(image);
  EXPECT_EQ(pm.free_frames(), pristine.free_frames());
  EXPECT_EQ(pm.stats().get("noise_frames"),
            pristine.stats().get("noise_frames"));
  EXPECT_EQ(pm.stats().get("frame_alloc"), 0u) << "stats reset to post-boot";
  for (Pfn f = 0; f < pm.num_frames(); ++f)
    ASSERT_EQ(pm.use_of(f), pristine.use_of(f)) << f;
  // The restored pool allocates exactly like the pristine one.
  PhysicalMemory fresh(pmc);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(pm.alloc_frame(FrameUse::kData),
              fresh.alloc_frame(FrameUse::kData));
}

}  // namespace

// --- LRU cache invariants (white-box via the Session friend) ----------------

/// Friended by Session: instantiates the private LruCache template with a
/// value type whose size the test controls.
struct SessionTestPeer {
  struct Blob {
    std::uint64_t size = 0;
    std::uint64_t resident_bytes() const { return size; }
  };
  using Cache = Session::LruCache<Blob>;
};

namespace {

TEST(Session, LruCacheDuplicateInsertReplacesInPlace) {
  SessionTestPeer::Cache cache;
  auto blob = [](std::uint64_t n) {
    return std::make_shared<const SessionTestPeer::Blob>(
        SessionTestPeer::Blob{n});
  };
  EXPECT_EQ(cache.insert("a", blob(10), 2), 0u);
  EXPECT_EQ(cache.insert("b", blob(20), 2), 0u);
  EXPECT_EQ(cache.bytes, 30u);

  // Re-inserting a resident key replaces the value in place: no orphaned
  // second list node, byte total swaps old size for new instead of
  // double-counting.
  EXPECT_EQ(cache.insert("a", blob(50), 2), 0u);
  EXPECT_EQ(cache.lru.size(), 2u);
  EXPECT_EQ(cache.index.size(), 2u);
  EXPECT_EQ(cache.bytes, 70u);
  EXPECT_EQ(cache.find("a")->size, 50u);

  // The duplicate insert refreshed recency: the next eviction takes b.
  EXPECT_EQ(cache.insert("c", blob(5), 2), 1u);
  EXPECT_EQ(cache.find("b"), nullptr);
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(cache.bytes, 55u);
  EXPECT_EQ(cache.lru.size(), cache.index.size());
}

TEST(Session, MaterialEvictionsAreCounted) {
  SessionOptions opts;
  opts.max_materials = 1;
  Session session(opts);
  SweepOptions sweep;
  sweep.session = &session;
  sweep.jobs = 1;
  run_sweep(tiny_grid(), sweep);  // 4 distinct (workload, cores) materials

  const SessionStats stats = session.stats();
  EXPECT_GE(stats.material_builds, 4u);
  EXPECT_GT(stats.material_evictions, 0u);
  // Every insert past the single-slot capacity evicts exactly one entry.
  EXPECT_EQ(stats.material_evictions, stats.material_builds - 1);
}

}  // namespace
}  // namespace ndp
