// Tests for the translation substrate: radix/huge/ECH page tables, TLBs,
// PWCs, the walker, and the address space (demand paging/reclaim).
#include <gtest/gtest.h>

#include <set>

#include "cache/hierarchy.h"
#include "common/rng.h"
#include "os/phys_mem.h"
#include "translate/address_space.h"
#include "translate/ech_page_table.h"
#include "translate/hybrid_page_table.h"
#include "translate/page_table.h"
#include "translate/pwc.h"
#include "translate/radix_page_table.h"
#include "translate/tlb.h"
#include "translate/walker.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg(std::uint64_t mb = 64, double noise = 0.0) {
  PhysMemConfig cfg;
  cfg.bytes = mb << 20;
  cfg.noise_fraction = noise;
  cfg.seed = 7;
  return cfg;
}

// ---------------------------------------------------------------- Radix ---

TEST(RadixPageTable, MapLookupUnmap) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  EXPECT_FALSE(pt.lookup(0x1234).has_value());
  pt.map(0x1234, 777);
  ASSERT_TRUE(pt.lookup(0x1234).has_value());
  EXPECT_EQ(*pt.lookup(0x1234), 777u);
  EXPECT_TRUE(pt.unmap(0x1234));
  EXPECT_FALSE(pt.lookup(0x1234).has_value());
  EXPECT_FALSE(pt.unmap(0x1234));
}

TEST(RadixPageTable, MapReportsNodeAllocations) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  const MapResult r1 = pt.map(0, 1);
  EXPECT_EQ(r1.nodes_allocated, 3u);  // L3, L2, L1 under the root
  EXPECT_EQ(r1.bytes_allocated, 3 * kPageSize);
  const MapResult r2 = pt.map(1, 2);  // same L1 node
  EXPECT_EQ(r2.nodes_allocated, 0u);
  const MapResult r3 = pt.map(512, 3);  // same L2, new L1
  EXPECT_EQ(r3.nodes_allocated, 1u);
}

TEST(RadixPageTable, WalkStepsAreFourSequentialLevels) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  pt.map(0xABCDE, 42);
  const WalkPath p = pt.walk(0xABCDE);
  ASSERT_TRUE(p.mapped);
  EXPECT_EQ(p.pfn, 42u);
  EXPECT_EQ(p.page_shift, kPageShift);
  ASSERT_EQ(p.steps.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(p.steps[i].level, 4 - i);
    EXPECT_EQ(p.steps[i].group, i) << "radix levels are sequential";
    EXPECT_TRUE(pm.is_page_table_frame(pfn_of(p.steps[i].pte_addr)));
  }
}

TEST(RadixPageTable, UnmappedWalkTruncates) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  pt.map(0, 1);
  // Same L4 entry region, different L3 subtree: walk stops where the path
  // ends.
  const WalkPath p = pt.walk(1ull << 27);
  EXPECT_FALSE(p.mapped);
  EXPECT_LT(p.steps.size(), 4u);
}

TEST(RadixPageTable, RemapChangesFrameOnly) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  pt.map(55, 100);
  EXPECT_TRUE(pt.remap(55, 200));
  EXPECT_EQ(*pt.lookup(55), 200u);
  EXPECT_FALSE(pt.remap(56, 300));
}

TEST(RadixPageTable, HugeMapCoversAlignedRange) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 2);
  pt.map(0x200, 4096, kHugePageShift);  // vpn 0x200 is 2 MB aligned
  EXPECT_EQ(*pt.lookup(0x200), 4096u);
  EXPECT_EQ(*pt.lookup(0x200 + 0x1FF), 4096u + 0x1FF);
  const WalkPath p = pt.walk(0x200 + 5);
  ASSERT_TRUE(p.mapped);
  EXPECT_EQ(p.page_shift, kHugePageShift);
  EXPECT_EQ(p.steps.size(), 3u) << "huge walk ends at PL2";
  EXPECT_EQ(p.pfn, 4096u + 5);
}

TEST(RadixPageTable, SplinterMixes4kUnderHugeMode) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 2);
  pt.map(0x999, 7, kPageShift);  // 4 KB splinter
  EXPECT_EQ(*pt.lookup(0x999), 7u);
  const WalkPath p = pt.walk(0x999);
  EXPECT_EQ(p.steps.size(), 4u) << "splinter walks to PL1";
  EXPECT_EQ(p.page_shift, kPageShift);
}

TEST(RadixPageTable, OccupancyCountsPerLevel) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  // Fill one full L1 node (512 pages) and one entry of another.
  for (Vpn v = 0; v < 512; ++v) pt.map(v, v + 1);
  pt.map(512, 1000);
  const auto occ = pt.occupancy();
  ASSERT_EQ(occ.size(), 4u);
  EXPECT_EQ(occ[0].level, "PL4");
  EXPECT_EQ(occ[3].level, "PL1");
  EXPECT_EQ(occ[3].nodes, 2u);
  EXPECT_EQ(occ[3].valid, 513u);
  EXPECT_NEAR(occ[3].rate(), 513.0 / 1024.0, 1e-9);
  EXPECT_EQ(occ[0].valid, 1u);  // one L4 entry
}

TEST(RadixPageTable, FramesReturnedOnDestruction) {
  PhysicalMemory pm(pm_cfg());
  const std::uint64_t before = pm.free_frames();
  {
    RadixPageTable pt(pm, 1);
    for (Vpn v = 0; v < 2000; v += 17) pt.map(v, v);
    EXPECT_LT(pm.free_frames(), before);
  }
  EXPECT_EQ(pm.free_frames(), before);
}

// ------------------------------------------------------------------ ECH ---

TEST(EchPageTable, MapLookupUnmapRemap) {
  PhysicalMemory pm(pm_cfg());
  EchPageTable pt(pm);
  pt.map(42, 99);
  EXPECT_EQ(*pt.lookup(42), 99u);
  EXPECT_TRUE(pt.remap(42, 100));
  EXPECT_EQ(*pt.lookup(42), 100u);
  EXPECT_TRUE(pt.unmap(42));
  EXPECT_FALSE(pt.lookup(42).has_value());
}

TEST(EchPageTable, WalkIsParallelProbes) {
  PhysicalMemory pm(pm_cfg());
  EchPageTable pt(pm);
  pt.map(1000, 5);
  const WalkPath p = pt.walk(1000);
  ASSERT_TRUE(p.mapped);
  ASSERT_EQ(p.steps.size(), 3u) << "d = 3 ways";
  for (const WalkStep& s : p.steps) {
    EXPECT_EQ(s.group, 0u) << "ways probe in parallel";
    EXPECT_EQ(s.level, WalkStep::kHashLevel);
    EXPECT_TRUE(pm.is_page_table_frame(pfn_of(s.pte_addr)));
  }
  // Probe addresses must hit distinct ways (distinct slots).
  std::set<PhysAddr> addrs;
  for (const WalkStep& s : p.steps) addrs.insert(s.pte_addr);
  EXPECT_EQ(addrs.size(), 3u);
}

TEST(EchPageTable, ResizesUnderLoadAndKeepsAllMappings) {
  PhysicalMemory pm(pm_cfg(128));
  EchConfig cfg;
  cfg.initial_entries_per_way = 1024;
  EchPageTable pt(pm, cfg);
  const std::uint64_t n = 20000;  // >> 3 * 1024 slots
  for (Vpn v = 0; v < n; ++v) pt.map(v * 7 + 1, v + 10);
  EXPECT_GT(pt.resizes(), 0u);
  EXPECT_EQ(pt.size(), n);
  for (Vpn v = 0; v < n; ++v) ASSERT_EQ(*pt.lookup(v * 7 + 1), v + 10);
  EXPECT_LE(pt.load_factor(), 0.75);
}

TEST(EchPageTable, OverwriteDoesNotGrow) {
  PhysicalMemory pm(pm_cfg());
  EchPageTable pt(pm);
  pt.map(5, 1);
  pt.map(5, 2);
  EXPECT_EQ(pt.size(), 1u);
  EXPECT_EQ(*pt.lookup(5), 2u);
}

TEST(EchPageTable, ProbeWidthGroupsWalkSteps) {
  PhysicalMemory pm(pm_cfg());
  EchConfig cfg;
  cfg.ways = 4;
  cfg.probe_width = 2;
  EchPageTable pt(pm, cfg);
  pt.map(1000, 5);
  const WalkPath p = pt.walk(1000);
  ASSERT_EQ(p.steps.size(), 4u);
  // Probes go out two at a time: groups {0,0,1,1}.
  EXPECT_EQ(p.steps[0].group, 0u);
  EXPECT_EQ(p.steps[1].group, 0u);
  EXPECT_EQ(p.steps[2].group, 1u);
  EXPECT_EQ(p.steps[3].group, 1u);
}

// --------------------------------------------------------------- Hybrid ---

HybridConfig tiny_hybrid() {
  HybridConfig cfg;
  cfg.flat_bits = 12;  // 4096 slots: conflicts are easy to construct
  return cfg;
}

TEST(HybridPageTable, FlatHitIsOneProbeConflictFallsBackToRadix) {
  PhysicalMemory pm(pm_cfg());
  HybridPageTable pt(pm, tiny_hybrid());
  const Vpn a = 0x123;
  const Vpn b = a + (1ull << 12);  // same direct-mapped slot as `a`
  pt.map(a, 7);
  pt.map(b, 8);  // conflicts: first-come-first-served keeps `a` in the window
  EXPECT_EQ(pt.flat_live(), 1u);
  EXPECT_EQ(pt.fallback_live(), 1u);
  EXPECT_EQ(*pt.lookup(a), 7u);
  EXPECT_EQ(*pt.lookup(b), 8u);

  // Window resident: exactly one probe step, tagged with the hybrid level.
  const WalkPath wa = pt.walk(a);
  ASSERT_TRUE(wa.mapped);
  EXPECT_EQ(wa.pfn, 7u);
  ASSERT_EQ(wa.steps.size(), 1u);
  EXPECT_EQ(wa.steps[0].level, WalkStep::kHybridLevel);
  EXPECT_TRUE(pm.is_page_table_frame(pfn_of(wa.steps[0].pte_addr)));

  // Conflict victim: the probe plus a full radix walk, serialized after it.
  const WalkPath wb = pt.walk(b);
  ASSERT_TRUE(wb.mapped);
  EXPECT_EQ(wb.pfn, 8u);
  ASSERT_EQ(wb.steps.size(), 5u);
  EXPECT_EQ(wb.steps[0].level, WalkStep::kHybridLevel);
  EXPECT_EQ(wb.steps[0].group, 0u);
  for (unsigned i = 1; i < 5; ++i) {
    EXPECT_EQ(wb.steps[i].level, 5 - i);  // L4..L1
    EXPECT_GT(wb.steps[i].group, wb.steps[i - 1].group);
  }
}

TEST(HybridPageTable, UnmapRemapCoverBothHomes) {
  PhysicalMemory pm(pm_cfg());
  HybridPageTable pt(pm, tiny_hybrid());
  const Vpn a = 0x55, b = a + (1ull << 12);
  pt.map(a, 1);
  pt.map(b, 2);
  EXPECT_TRUE(pt.remap(a, 11));
  EXPECT_TRUE(pt.remap(b, 22));
  EXPECT_EQ(*pt.lookup(a), 11u);
  EXPECT_EQ(*pt.lookup(b), 22u);
  // A VPN stays in its home: remapping via map() keeps the fallback entry
  // in the fallback even once the window slot frees up.
  EXPECT_TRUE(pt.unmap(a));
  EXPECT_EQ(pt.flat_live(), 0u);
  pt.map(b, 23);
  EXPECT_EQ(pt.fallback_live(), 1u);
  EXPECT_EQ(pt.flat_live(), 0u);
  EXPECT_EQ(*pt.lookup(b), 23u);
  EXPECT_TRUE(pt.unmap(b));
  EXPECT_FALSE(pt.lookup(b).has_value());
  EXPECT_EQ(pt.fallback_live(), 0u);
}

TEST(Walker, PwcHitNeverSkipsHybridFlatProbe) {
  // The PWC caches radix interior entries; a hit may skip L4..hit-level of
  // the fallback walk but must never swallow the mandatory flat-window
  // probe (step 0 of every hybrid walk).
  PhysicalMemory pm(pm_cfg());
  MemorySystem mem{MemorySystemConfig::ndp(1)};
  HybridPageTable pt(pm, tiny_hybrid());
  const Vpn a = 0x321, b = a + (1ull << 12), c = a + (2ull << 12);
  pt.map(a, 1);  // window resident
  pt.map(b, 2);  // fallback (same slot)
  pt.map(c, 3);  // fallback, same radix PL1 node as b's neighborhood
  WalkerConfig cfg;
  cfg.pwc_levels = {4, 3};
  Walker w(pt, mem, cfg);
  // Warm the PWCs with b's fallback walk: probe + 4 radix reads.
  const WalkTiming first = w.walk(0, 0, b << kPageShift);
  EXPECT_EQ(first.mem_accesses, 5u);
  // c shares b's L4/L3 prefix: the PWC hit skips L4+L3 but the flat probe
  // and the L2/L1 reads still issue.
  const WalkTiming second = w.walk(100000, 0, c << kPageShift);
  EXPECT_TRUE(second.mapped);
  EXPECT_EQ(second.pwc_skips, 2u);
  EXPECT_EQ(second.mem_accesses, 3u) << "flat probe + L2 + L1";
}

// ------------------------------------------------------------------ TLB ---

TEST(Tlb, HitAfterInsert) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 16, .ways = 4, .latency = 1});
  EXPECT_FALSE(tlb.lookup(0x5000).has_value());
  tlb.insert(0x5000, 42, kPageShift);
  auto e = tlb.lookup(0x5123);  // same page, different offset
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->pfn, 42u);
  EXPECT_EQ(tlb.counters().hits, 1u);
  EXPECT_EQ(tlb.counters().misses, 1u);
}

TEST(Tlb, HugeEntryCoversTwoMegabytes) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 16, .ways = 4, .latency = 1,
                    .huge_entries = 8, .huge_ways = 4});
  tlb.insert(0x200000, 512, kHugePageShift);
  auto e = tlb.lookup(0x200000 + 0x12345);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->page_shift, kHugePageShift);
  EXPECT_EQ(e->pfn, 512u);
  // Outside the huge page: miss.
  EXPECT_FALSE(tlb.lookup(0x400000).has_value());
}

TEST(Tlb, NoHugeCapacityDropsHugeInserts) {
  Tlb tlb(TlbConfig{.name = "l2", .entries = 16, .ways = 4, .latency = 12,
                    .huge_entries = 0, .huge_ways = 1});
  tlb.insert(0x200000, 512, kHugePageShift);
  EXPECT_FALSE(tlb.lookup(0x200000).has_value())
      << "this TLB does not cache 2 MB translations";
  tlb.insert(0x200000, 512, kPageShift);
  EXPECT_TRUE(tlb.lookup(0x200000).has_value());
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 4, .ways = 4, .latency = 1});
  // One set: 4 ways.
  for (VirtAddr p = 0; p < 4; ++p) tlb.insert(p << kPageShift, p, kPageShift);
  tlb.lookup(0);                       // page 0 most recent
  tlb.insert(4ull << kPageShift, 4, kPageShift);  // evicts page 1
  EXPECT_TRUE(tlb.lookup(0).has_value());
  EXPECT_FALSE(tlb.lookup(1ull << kPageShift).has_value());
  EXPECT_EQ(tlb.counters().evictions, 1u);
}

TEST(Tlb, InvalidateAndFlush) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 16, .ways = 4, .latency = 1});
  tlb.insert(0x1000, 1, kPageShift);
  tlb.invalidate(0x1000);
  EXPECT_FALSE(tlb.lookup(0x1000).has_value());
  tlb.insert(0x2000, 2, kPageShift);
  tlb.flush();
  EXPECT_FALSE(tlb.lookup(0x2000).has_value());
  EXPECT_EQ(tlb.counters().flushes, 1u);
}

TEST(Tlb, PeekDoesNotTouchStats) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 16, .ways = 4, .latency = 1});
  tlb.insert(0x1000, 1, kPageShift);
  const auto before = tlb.counters().hits + tlb.counters().misses;
  EXPECT_TRUE(tlb.peek(0x1000).has_value());
  EXPECT_FALSE(tlb.peek(0x9000).has_value());
  EXPECT_EQ(tlb.counters().hits + tlb.counters().misses, before);
}

// ------------------------------------------------------------------ PWC ---

TEST(Pwc, PrefixSharingHits) {
  Pwc pwc(2, PwcConfig{});
  const Vpn a = 0x12345678;
  const Vpn b = (a & ~0x1FFull) | 0x45;  // same level-2 prefix
  EXPECT_FALSE(pwc.lookup(a));
  pwc.insert(a);
  EXPECT_TRUE(pwc.lookup(b));
  EXPECT_DOUBLE_EQ(pwc.hit_rate(), 0.5);
}

TEST(PwcSet, DeepestHitWins) {
  PwcSet set({4, 3, 2}, PwcConfig{});
  const Vpn vpn = 0xABCDE12;
  EXPECT_EQ(set.deepest_hit(vpn), 0u);
  set.fill(vpn, {4, 3});
  EXPECT_EQ(set.deepest_hit(vpn), 3u);
  set.fill(vpn, {2});
  EXPECT_EQ(set.deepest_hit(vpn), 2u);
  EXPECT_TRUE(set.has_level(4));
  EXPECT_FALSE(set.has_level(1));
}

TEST(PwcSet, EmptySetHasNoLatency) {
  PwcSet none({}, PwcConfig{});
  EXPECT_EQ(none.latency(), 0u);
  PwcSet some({4, 3}, PwcConfig{});
  EXPECT_GT(some.latency(), 0u);
}

// --------------------------------------------------------------- Walker ---

struct WalkerRig {
  PhysicalMemory pm{pm_cfg()};
  MemorySystem mem{MemorySystemConfig::ndp(1)};
  RadixPageTable pt{pm, 1};
};

TEST(Walker, FullWalkWithoutPwcsDoesFourAccesses) {
  WalkerRig rig;
  rig.pt.map(0x777, 9);
  WalkerConfig cfg;
  cfg.pwc_levels = {};
  Walker w(rig.pt, rig.mem, cfg);
  const WalkTiming t = w.walk(1000, 0, 0x777ull << kPageShift);
  EXPECT_TRUE(t.mapped);
  EXPECT_EQ(t.pfn, 9u);
  EXPECT_EQ(t.mem_accesses, 4u);
  EXPECT_GT(t.finish, 1000u);
}

TEST(Walker, PwcHitSkipsUpperLevels) {
  WalkerRig rig;
  rig.pt.map(0x777, 9);
  rig.pt.map(0x778, 10);
  WalkerConfig cfg;  // default PWCs at 4,3,2,1
  Walker w(rig.pt, rig.mem, cfg);
  const WalkTiming first = w.walk(0, 0, 0x777ull << kPageShift);
  EXPECT_EQ(first.mem_accesses, 4u);
  // Second walk in the same PL1 node: PWC level 2 (or deeper) hits.
  const WalkTiming second = w.walk(100000, 0, 0x778ull << kPageShift);
  EXPECT_LE(second.mem_accesses, 1u);
  EXPECT_GT(second.pwc_skips, 0u);
}

TEST(Walker, BypassedWalkLeavesL1Clean) {
  WalkerRig rig;
  rig.pt.map(0x999, 5);
  WalkerConfig cfg;
  cfg.pwc_levels = {};
  cfg.bypass_caches_for_metadata = true;
  Walker w(rig.pt, rig.mem, cfg);
  w.walk(0, 0, 0x999ull << kPageShift);
  EXPECT_EQ(rig.mem.l1(0).counters().hits(AccessClass::kMetadata), 0u);
  EXPECT_EQ(rig.mem.l1(0).counters().misses(AccessClass::kMetadata), 0u);
  EXPECT_EQ(rig.mem.counters().bypassed, 4u);
}

TEST(Walker, StatsAccumulate) {
  WalkerRig rig;
  rig.pt.map(1, 1);
  Walker w(rig.pt, rig.mem, WalkerConfig{});
  w.walk(0, 0, 1ull << kPageShift);
  w.walk(50000, 0, 1ull << kPageShift);
  EXPECT_EQ(w.counters().walks, 2u);
  EXPECT_GT(w.counters().mem_accesses, 0u);
  EXPECT_GT(w.snapshot().average("latency")->mean(), 0.0);
}

// --------------------------------------------------------- AddressSpace ---

TEST(AddressSpace, PrefaultMapsDeclaredRegions) {
  PhysicalMemory pm(pm_cfg());
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 1), false);
  as.add_region(VmRegion{"a", 0x100000, 16 * kPageSize, true});
  as.add_region(VmRegion{"cold", 0x200000, 16 * kPageSize, false});
  as.prefault_all();
  EXPECT_TRUE(as.translate(0x100000).has_value());
  EXPECT_TRUE(as.translate(0x100000 + 15 * kPageSize).has_value());
  EXPECT_FALSE(as.translate(0x200000).has_value()) << "demand region stays cold";
  EXPECT_EQ(as.mapped_pages(), 16u);
}

TEST(AddressSpace, TouchFaultsOnceAndChargesCost) {
  PhysicalMemory pm(pm_cfg());
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 1), false);
  const auto r1 = as.touch(0x5000, 100);
  EXPECT_TRUE(r1.faulted);
  EXPECT_GE(r1.cost, pm.costs().fault_4k());
  const auto r2 = as.touch(0x5000, 200);
  EXPECT_FALSE(r2.faulted);
  EXPECT_EQ(r2.cost, 0u);
}

TEST(AddressSpace, FaultLockSerializesConcurrentFaults) {
  PhysicalMemory pm(pm_cfg());
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 1), false);
  const auto r1 = as.touch(0x1000, 1000);
  // A second fault arriving while the first is in service waits it out.
  const auto r2 = as.touch(0x2000, 1001);
  EXPECT_GT(r2.cost, r1.cost) << "lock wait must be charged";
  // A fault long after the lock released pays only its own work.
  const auto r3 = as.touch(0x3000, 10'000'000);
  EXPECT_LE(r3.cost, r1.cost + 1);
}

TEST(AddressSpace, HugeModeMapsTwoMegabytes) {
  PhysicalMemory pm(pm_cfg());
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 2), true);
  const auto r = as.touch(0x200000ull + 0x3456, 0);
  EXPECT_TRUE(r.faulted);
  EXPECT_GE(r.cost, pm.costs().fault_2m_base());
  // The whole 2 MB extent is now resident.
  EXPECT_TRUE(as.translate(0x200000).has_value());
  EXPECT_TRUE(as.translate(0x3FF000).has_value());
  EXPECT_EQ(as.mapped_pages(), 512u);
}

TEST(AddressSpace, CompactionRemapKeepsTranslationsCoherent) {
  // 3% boot noise removes pristine 2 MB blocks; filling most of the pool
  // with data leaves no noise-only window, so the order-9 table block below
  // must compact over *data* frames and rewire the page table via remap().
  PhysicalMemory pm(pm_cfg(64, 0.03));
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 1), false);
  const std::uint64_t to_map = pm.num_frames() * 3 / 4;
  for (Vpn v = 0; v < to_map; ++v)
    as.touch((0x100000ull + v) << kPageShift, 0);
  ASSERT_FALSE(pm.buddy().can_alloc(9));
  ASSERT_GE(pm.free_frames(), 1024u);

  const Pfn blk = pm.alloc_table_block(9);
  EXPECT_GT(as.stats().get("relocated_frames"), 0u);
  // Every translation still resolves after the relocations.
  for (Vpn v = 0; v < to_map; v += 97) {
    const VirtAddr va = (0x100000ull + v) << kPageShift;
    ASSERT_TRUE(as.translate(va).has_value());
  }
  pm.free_table_block(blk, 9);
}

TEST(AddressSpace, ReclaimEvictsWhenMemoryLow) {
  // 192 MB pool: the low watermark (64 MB) is reachable quickly.
  PhysicalMemory pm(pm_cfg(192));
  AddressSpace as(pm, std::make_unique<RadixPageTable>(pm, 1), false);
  int shootdowns = 0;
  as.set_shootdown_hook([&](Vpn) { ++shootdowns; });
  const std::uint64_t total = pm.num_frames();
  // Touch pages until well past the watermark.
  Vpn v = 0x400000;
  while (pm.free_frames() > total / 8) as.touch(v++ << kPageShift, 0);
  const std::uint64_t faults_before = as.stats().get("demand_faults");
  for (int i = 0; i < 20000; ++i) as.touch(v++ << kPageShift, 0);
  EXPECT_GT(as.stats().get("reclaim_events"), 0u);
  EXPECT_GT(as.stats().get("reclaimed_frames"), 0u);
  EXPECT_GT(shootdowns, 0);
  EXPECT_GT(as.stats().get("demand_faults"), faults_before);
  // Reclaimed pages are unmapped: an early page should be gone.
  EXPECT_FALSE(as.translate(0x400000ull << kPageShift).has_value());
}

}  // namespace
}  // namespace ndp
