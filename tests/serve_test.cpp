// Serving-mode contract (src/serve/): a resident daemon over one warm
// Session whose streamed result envelopes are byte-identical to batch
// `run_sweep` output, that survives malformed and invalid requests, and
// that drains gracefully — plus the distributed-sweep half: `--shard i/N`
// envelopes recombine through merge_sharded_envelopes() into the exact
// single-process document for the checked-in golden grids.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

namespace ndp {
namespace {

#ifndef NDP_SOURCE_DIR
#error "serve_test needs NDP_SOURCE_DIR (set by CMakeLists.txt)"
#endif

/// Small but non-degenerate grid: two mechanisms share images per (cores,
/// seed), two workloads share material, and a baseline engages the
/// aggregate block in the envelope.
RunConfig serve_grid() {
  return RunConfig::from_json(R"json({
    "name": "serve_tiny",
    "mechanisms": ["radix", "ndpage"],
    "workloads": ["RND", "PR"],
    "cores": [1, 2],
    "instructions": 2000,
    "warmup": 150,
    "scale": 0.015625,
    "baseline": "radix"
  })json");
}

/// What a batch `ndpsim --config` run serializes for this grid.
std::string batch_json(const RunConfig& cfg, unsigned jobs = 1) {
  SweepOptions opts;
  opts.jobs = jobs;
  return to_json(run_sweep(cfg, opts));
}

std::string type_of(const std::string& envelope) {
  return JsonValue::parse(envelope).at("type").as_string();
}

/// One in-process daemon serving a socketpair stream on a background
/// thread — the --stdio topology, no TCP involved.
class StreamServer {
 public:
  explicit StreamServer(serve::ServeOptions opts = {}) : server_(opts) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    client_fd_ = sv[0];
    server_fd_ = sv[1];
    thread_ = std::thread(
        [this] { server_.serve_stream(server_fd_, server_fd_); });
  }

  ~StreamServer() {
    server_.request_shutdown();
    if (thread_.joinable()) thread_.join();
    ::close(server_fd_);
  }

  /// A Client owning the peer end (call once).
  serve::Client client() {
    return serve::Client(client_fd_, client_fd_, /*own_fds=*/true);
  }

  serve::Server& server() { return server_; }

 private:
  serve::Server server_;
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::thread thread_;
};

// --- streamed envelopes vs batch --------------------------------------------

TEST(Serve, RunEnvelopeIsByteIdenticalToBatch) {
  const RunConfig cfg = serve_grid();
  const std::string batch = batch_json(cfg);

  serve::ServeOptions opts;
  opts.jobs = 2;
  StreamServer stream(opts);
  serve::Client client = stream.client();

  std::size_t cells_seen = 0, total_seen = 0;
  const std::string envelope =
      client.run("r1", cfg, /*jobs=*/0, [&](std::size_t done,
                                            std::size_t total) {
        cells_seen = done;
        total_seen = total;
      });
  EXPECT_EQ(8u, cells_seen);   // every cell streamed before "done"
  EXPECT_EQ(8u, total_seen);
  EXPECT_EQ(batch, envelope);  // byte-identical, despite jobs=2 + streaming

  // A second identical run rides the warm Session: same bytes again, and
  // the stats request shows restores instead of builds.
  EXPECT_EQ(batch, client.run("r2", cfg));
  const std::string stats =
      client.roundtrip(serve::simple_request_line("stats", "s1"));
  const JsonValue parsed = JsonValue::parse(stats);
  EXPECT_EQ("stats", parsed.at("type").as_string());
  EXPECT_EQ("s1", parsed.at("id").as_string());
  const JsonValue& session = parsed.at("session");
  EXPECT_GT(session.at("image_hits").as_u64(), 0u);
  EXPECT_GT(session.at("material_hits").as_u64(), 0u);
  EXPECT_GT(session.at("resident_bytes").as_u64(), 0u);

  EXPECT_EQ("bye",
            type_of(client.roundtrip(serve::simple_request_line("shutdown",
                                                                "z1"))));
}

// --- robustness -------------------------------------------------------------

TEST(Serve, MalformedAndInvalidRequestsDontKillTheDaemon) {
  StreamServer stream;
  serve::Client client = stream.client();

  // Not JSON at all: one error envelope (with the parser's position), and
  // the connection stays up.
  ASSERT_TRUE(client.send("this is not json"));
  std::string reply;
  ASSERT_EQ(serve::LineReader::Status::kLine, client.next(reply));
  EXPECT_EQ("error", type_of(reply));

  // Valid JSON, unknown op.
  ASSERT_TRUE(client.send(R"({"op":"frobnicate","id":"q"})"));
  ASSERT_EQ(serve::LineReader::Status::kLine, client.next(reply));
  EXPECT_EQ("error", type_of(reply));
  EXPECT_EQ("q", JsonValue::parse(reply).at("id").as_string());

  // A run naming an unregistered mechanism: the RunConfig validator's
  // message comes back as an error envelope; nothing ran.
  ASSERT_TRUE(client.send(
      R"({"op":"run","id":"bad","config":{"mechanisms":["nonsense"]}})"));
  ASSERT_EQ(serve::LineReader::Status::kLine, client.next(reply));
  EXPECT_EQ("error", type_of(reply));
  EXPECT_NE(std::string::npos,
            JsonValue::parse(reply).at("error").as_string().find("nonsense"));

  // After all that abuse, a real run still works and still matches batch.
  const RunConfig cfg = serve_grid();
  EXPECT_EQ(batch_json(cfg), client.run("good", cfg));

  EXPECT_EQ("bye",
            type_of(client.roundtrip(serve::simple_request_line("shutdown",
                                                                "z"))));
}

// --- metrics wire op --------------------------------------------------------

TEST(Serve, MetricsOpReturnsPrometheusTextWithRequestLatencies) {
  StreamServer stream;
  serve::Client client = stream.client();

  // Populate the request metrics through the daemon itself: one run, one
  // status ping, one malformed line (which must also be counted).
  const RunConfig cfg = serve_grid();
  client.run("m-run", cfg);
  client.roundtrip(serve::simple_request_line("status", "m-ping"));
  ASSERT_TRUE(client.send("not json"));
  std::string discard;
  ASSERT_EQ(serve::LineReader::Status::kLine, client.next(discard));

  const std::string reply =
      client.roundtrip(serve::simple_request_line("metrics", "mx"));
  const JsonValue parsed = JsonValue::parse(reply);
  EXPECT_EQ("metrics", parsed.at("type").as_string());
  EXPECT_EQ("mx", parsed.at("id").as_string());
  const std::string text = parsed.at("text").as_string();

  // Prometheus text exposition: request counters by op and outcome (the
  // registry is process-wide, so values are cumulative across tests —
  // presence plus the histogram count checks below are the stable
  // assertions)…
  EXPECT_NE(std::string::npos,
            text.find("# TYPE ndpsim_requests_total counter"));
  EXPECT_NE(std::string::npos,
            text.find("ndpsim_requests_total{op=\"run\",outcome=\"ok\"}"));
  EXPECT_NE(
      std::string::npos,
      text.find("ndpsim_requests_total{op=\"invalid\",outcome=\"error\"}"));
  // …the request-latency histogram with labeled buckets…
  EXPECT_NE(std::string::npos,
            text.find("# TYPE ndpsim_request_latency_seconds histogram"));
  EXPECT_NE(std::string::npos,
            text.find("ndpsim_request_latency_seconds_bucket{op=\"run\","
                      "le=\"+Inf\"}"));
  EXPECT_NE(std::string::npos,
            text.find("ndpsim_request_latency_seconds_count{op=\"status\"}"));
  // …and the connection/session instrumentation around it.
  EXPECT_NE(std::string::npos, text.find("ndpsim_active_connections"));
  EXPECT_NE(std::string::npos, text.find("ndpsim_session_runs_total"));
  EXPECT_NE(std::string::npos, text.find("ndpsim_bytes_written_total"));

  // The histogram handles the daemon populated are reachable in-process;
  // both ops must have nonzero observation counts by now.
  EXPECT_GT(obs::Metrics::instance()
                .histogram("ndpsim_request_latency_seconds", "", "op=\"run\"")
                .count(),
            0u);
  EXPECT_GT(
      obs::Metrics::instance()
          .histogram("ndpsim_request_latency_seconds", "", "op=\"status\"")
          .count(),
      0u);

  EXPECT_EQ("bye",
            type_of(client.roundtrip(serve::simple_request_line("shutdown",
                                                                "z"))));
}

TEST(Serve, IdleTimeoutClosesTheConnection) {
  serve::ServeOptions opts;
  opts.idle_timeout_ms = 50;
  StreamServer stream(opts);
  serve::Client client = stream.client();

  // Send nothing; the daemon gives up on us with an error envelope and
  // closes its end.
  std::string reply;
  ASSERT_EQ(serve::LineReader::Status::kLine, client.next(reply, 5000));
  EXPECT_EQ("error", type_of(reply));
  EXPECT_EQ(serve::LineReader::Status::kEof, client.next(reply, 5000));
}

// --- concurrency + graceful shutdown ----------------------------------------

TEST(Serve, ConcurrentClientsShareOneWarmSession) {
  serve::ServeOptions opts;
  opts.jobs = 2;
  serve::Server server(opts);
  const std::uint16_t port = server.start();
  ASSERT_GT(port, 0u);

  const RunConfig cfg = serve_grid();
  const std::string batch = batch_json(cfg);

  std::vector<std::string> envelopes(2);
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&, i] {
      serve::Client c = serve::Client::connect("127.0.0.1", port);
      envelopes[i] = c.run("c" + std::to_string(i), cfg);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(batch, envelopes[0]);
  EXPECT_EQ(batch, envelopes[1]);
  // 16 cells total but only 4 distinct images / 8 distinct materials: the
  // shared Session must have served hits across the two connections.
  EXPECT_GT(server.session().stats().image_hits, 0u);

  serve::Client closer = serve::Client::connect("127.0.0.1", port);
  EXPECT_EQ("bye",
            type_of(closer.roundtrip(serve::simple_request_line("shutdown",
                                                                "zz"))));
  server.wait();
}

TEST(Serve, ShutdownDrainsInFlightRuns) {
  serve::ServeOptions opts;
  opts.jobs = 1;
  serve::Server server(opts);
  const std::uint16_t port = server.start();

  const RunConfig cfg = serve_grid();
  const std::string batch = batch_json(cfg);

  // Client A submits and reads nothing yet; client B orders a shutdown
  // while A's run is (very likely) still in flight. The drain contract:
  // A's run completes and streams everything, whenever the shutdown lands.
  serve::Client a = serve::Client::connect("127.0.0.1", port);
  ASSERT_TRUE(a.send(serve::run_request_line("inflight", cfg)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  serve::Client b = serve::Client::connect("127.0.0.1", port);
  EXPECT_EQ("bye",
            type_of(b.roundtrip(serve::simple_request_line("shutdown",
                                                           "drain"))));

  // A still gets its full stream: 8 cell envelopes, then the byte-exact
  // terminal document.
  std::string line;
  std::size_t cells = 0;
  std::string done_envelope;
  while (a.next(line, 30000) == serve::LineReader::Status::kLine) {
    const std::string type = type_of(line);
    if (type == "cell") ++cells;
    if (type == "done") {
      done_envelope = std::string(raw_member(line, "envelope"));
      break;
    }
    ASSERT_NE("error", type);
    ASSERT_NE("cancelled", type);
  }
  EXPECT_EQ(8u, cells);
  EXPECT_EQ(batch, done_envelope);
  server.wait();
}

TEST(Serve, CancelStopsARunWithATerminalEnvelope) {
  serve::ServeOptions opts;
  opts.jobs = 1;
  serve::Server server(opts);
  const std::uint16_t port = server.start();

  RunConfig cfg = serve_grid();
  cfg.instructions = 40000;  // long enough that the cancel usually lands

  serve::Client a = serve::Client::connect("127.0.0.1", port);
  ASSERT_TRUE(a.send(serve::run_request_line("victim", cfg)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  serve::Client b = serve::Client::connect("127.0.0.1", port);
  const std::string ack =
      b.roundtrip(serve::cancel_request_line("killer", "victim"));
  // "ok" when the cancel caught the run; "error" if the run already ended
  // (scheduling-dependent) — both leave the daemon healthy.
  EXPECT_TRUE(type_of(ack) == "ok" || type_of(ack) == "error");

  // Either way the victim's stream ends in exactly one terminal envelope.
  std::string line, terminal;
  while (a.next(line, 30000) == serve::LineReader::Status::kLine) {
    const std::string type = type_of(line);
    if (type == "cancelled" || type == "done") {
      terminal = type;
      break;
    }
    ASSERT_EQ("cell", type);
  }
  EXPECT_TRUE(terminal == "cancelled" || terminal == "done") << terminal;
  if (terminal == "cancelled") {
    const JsonValue v = JsonValue::parse(line);
    EXPECT_LT(v.at("completed").as_u64(), v.at("total").as_u64());
  }

  EXPECT_EQ("bye",
            type_of(b.roundtrip(serve::simple_request_line("shutdown",
                                                           "z"))));
  server.wait();
}

// --- sharded sweeps ---------------------------------------------------------

/// One golden grid, budget-reduced the way the golden suite does it so the
/// full three-shard A/B stays fast.
RunConfig golden_grid(const char* file) {
  RunConfig cfg = RunConfig::load(std::string(NDP_SOURCE_DIR) + "/" + file);
  cfg.instructions = 2000;
  cfg.warmup = 150;
  cfg.scale = 0.015625;
  return cfg;
}

void expect_shard_merge_identity(const RunConfig& cfg) {
  SweepOptions opts;
  opts.jobs = 2;
  const std::string unsharded = to_json(run_sweep(cfg, opts));

  std::vector<std::string> envelopes;
  for (unsigned i = 0; i < 3; ++i) {
    SweepOptions shard_opts = opts;
    shard_opts.shard_index = i;
    shard_opts.shard_count = 3;
    envelopes.push_back(to_json(run_sweep(cfg, shard_opts)));
    // The slice serializes provenance instead of an aggregate.
    EXPECT_NE(std::string::npos, envelopes.back().find("\"shard\":"));
    EXPECT_EQ(std::string::npos, envelopes.back().find("\"aggregate\":"));
  }
  // Any input order merges to the same bytes as the single-process run.
  std::swap(envelopes[0], envelopes[2]);
  EXPECT_EQ(unsharded, merge_sharded_envelopes(envelopes));
}

TEST(ShardMerge, CiSmokeThreeWayMergeIsByteIdentical) {
  expect_shard_merge_identity(golden_grid("experiments/ci_smoke.json"));
}

TEST(ShardMerge, AblationEchWaysThreeWayMergeIsByteIdentical) {
  expect_shard_merge_identity(
      golden_grid("experiments/ablation_ech_ways.json"));
}

TEST(ShardMerge, RejectsIncompleteAndMismatchedShardSets) {
  const RunConfig cfg = serve_grid();
  SweepOptions opts;
  std::vector<std::string> shards;
  for (unsigned i = 0; i < 2; ++i) {
    SweepOptions so = opts;
    so.shard_index = i;
    so.shard_count = 2;
    shards.push_back(to_json(run_sweep(cfg, so)));
  }

  // A complete, correct set merges.
  EXPECT_NO_THROW(merge_sharded_envelopes(shards));

  // Missing shard: only 1 of 2.
  EXPECT_THROW(merge_sharded_envelopes({shards[0]}), std::invalid_argument);
  // Duplicated shard.
  EXPECT_THROW(merge_sharded_envelopes({shards[0], shards[0]}),
               std::invalid_argument);
  // Unsharded envelope (no "shard" block) is not mergeable input.
  EXPECT_THROW(merge_sharded_envelopes({to_json(run_sweep(cfg, opts))}),
               std::invalid_argument);

  // A shard of a *different* grid: detected, not silently spliced.
  RunConfig other = cfg;
  other.name = "serve_tiny_other";
  SweepOptions so = opts;
  so.shard_index = 1;
  so.shard_count = 2;
  EXPECT_THROW(
      merge_sharded_envelopes({shards[0], to_json(run_sweep(other, so))}),
      std::invalid_argument);
}

}  // namespace
}  // namespace ndp
