// Tests for the paper's contribution: the flattened L2/L1 page table, the
// mechanism definitions, the MMU front-end (incl. walk coalescing and the
// stepwise MmuOp) and the system assembly.
#include <gtest/gtest.h>

#include "core/flat_page_table.h"
#include "core/mechanism.h"
#include "core/mmu.h"
#include "core/system.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg(std::uint64_t mb = 64) {
  PhysMemConfig cfg;
  cfg.bytes = mb << 20;
  cfg.noise_fraction = 0.0;
  cfg.seed = 7;
  return cfg;
}

// -------------------------------------------------------- FlatPageTable ---

TEST(FlatPageTable, MapLookupUnmapRemap) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  pt.map(0x12345, 77);
  EXPECT_EQ(*pt.lookup(0x12345), 77u);
  EXPECT_TRUE(pt.remap(0x12345, 78));
  EXPECT_EQ(*pt.lookup(0x12345), 78u);
  EXPECT_TRUE(pt.unmap(0x12345));
  EXPECT_FALSE(pt.lookup(0x12345).has_value());
}

TEST(FlatPageTable, WalkIsThreeSteps) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  pt.map(0xABCDE, 9);
  const WalkPath p = pt.walk(0xABCDE);
  ASSERT_TRUE(p.mapped);
  ASSERT_EQ(p.steps.size(), 3u) << "paper SV-B: 4 -> 3 sequential accesses";
  EXPECT_EQ(p.steps[0].level, 4u);
  EXPECT_EQ(p.steps[1].level, 3u);
  EXPECT_EQ(p.steps[2].level, WalkStep::kFlatLevel);
  EXPECT_EQ(p.pfn, 9u);
}

TEST(FlatPageTable, FlatNodeIsContiguousTwoMegabytes) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  // Two vpns in the same 1 GB region share one flattened node; their PTE
  // addresses differ by exactly their flat-index distance.
  pt.map(0x10000, 1);
  pt.map(0x10007, 2);
  const WalkPath a = pt.walk(0x10000);
  const WalkPath b = pt.walk(0x10007);
  EXPECT_EQ(pt.flat_node_count(), 1u);
  EXPECT_EQ(b.steps[2].pte_addr - a.steps[2].pte_addr, 7u * kPteSize);
  // The node spans a physically contiguous order-9 block.
  const Pfn base = pfn_of(a.steps[2].pte_addr);
  EXPECT_TRUE(pm.is_page_table_frame(base));
  EXPECT_TRUE(pm.is_page_table_frame(base + 511 - (base % 512)));
}

TEST(FlatPageTable, EighteenBitIndexCrossesL1Boundaries) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  // vpns 0x1FF and 0x200 straddle a classic PL1-node boundary but live in
  // the same flattened node.
  pt.map(0x1FF, 1);
  pt.map(0x200, 2);
  EXPECT_EQ(pt.flat_node_count(), 1u);
  const WalkPath a = pt.walk(0x1FF);
  const WalkPath b = pt.walk(0x200);
  EXPECT_EQ(b.steps[2].pte_addr - a.steps[2].pte_addr, kPteSize);
}

TEST(FlatPageTable, MapChargesTwoMegabyteNodeAllocation) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  const MapResult r = pt.map(5, 1);
  EXPECT_EQ(r.nodes_allocated, 2u);  // L3 node + flattened node
  EXPECT_EQ(r.bytes_allocated, kPageSize + FlatPageTable::kFlatEntries * kPteSize);
  const MapResult r2 = pt.map(6, 2);
  EXPECT_EQ(r2.nodes_allocated, 0u);
}

TEST(FlatPageTable, OccupancyMergesLastTwoLevels) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  for (Vpn v = 0; v < 1000; ++v) pt.map(v, v);
  const auto occ = pt.occupancy();
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(occ[2].level, "PL2/PL1");
  EXPECT_EQ(occ[2].valid, 1000u);
  EXPECT_EQ(occ[2].capacity, FlatPageTable::kFlatEntries);
}

TEST(FlatPageTable, RejectsHugeMappings) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  EXPECT_DEATH(pt.map(0x200, 1, kHugePageShift), "4 KB");
}

// ------------------------------------------------------------ Mechanism ---

TEST(Mechanism, NamesAndProperties) {
  EXPECT_EQ(to_string(Mechanism::kNdpage), "NDPage");
  EXPECT_TRUE(uses_huge_pages(Mechanism::kHugePage));
  EXPECT_FALSE(uses_huge_pages(Mechanism::kNdpage));
  EXPECT_FALSE(models_translation(Mechanism::kIdeal));
  EXPECT_TRUE(models_translation(Mechanism::kRadix));
}

TEST(Mechanism, WalkerConfigsMatchPaper) {
  const WalkerConfig radix = make_walker_config(Mechanism::kRadix);
  EXPECT_EQ(radix.pwc_levels.size(), 4u);
  EXPECT_FALSE(radix.bypass_caches_for_metadata);

  const WalkerConfig ndpage = make_walker_config(Mechanism::kNdpage);
  EXPECT_EQ(ndpage.pwc_levels, (std::vector<unsigned>{4, 3}))
      << "paper SV-C: PWCs retained at L4/L3 only";
  EXPECT_TRUE(ndpage.bypass_caches_for_metadata) << "paper SV-A";

  const WalkerConfig ech = make_walker_config(Mechanism::kEch);
  EXPECT_TRUE(ech.pwc_levels.empty());
}

TEST(Mechanism, FactoryBuildsMatchingTables) {
  PhysicalMemory pm(pm_cfg(128));
  for (Mechanism m : kAllMechanisms) {
    auto pt = make_page_table(m, pm);
    ASSERT_NE(pt, nullptr);
    pt->map(123, 456);
    EXPECT_EQ(*pt->lookup(123), 456u) << to_string(m);
  }
}

// ------------------------------------------------------------------ Mmu ---

struct MmuRig {
  PhysicalMemory pm{pm_cfg(128)};
  MemorySystem mem{MemorySystemConfig::ndp(1)};
  AddressSpace space;
  Mmu mmu;

  explicit MmuRig(Mechanism m = Mechanism::kRadix)
      : space(pm, make_page_table(m, pm), uses_huge_pages(m)),
        mmu(make_cfg(m), space, mem, 0) {}

  static MmuConfig make_cfg(Mechanism m) {
    MmuConfig cfg;
    cfg.walker = make_walker_config(m);
    cfg.ideal = !models_translation(m);
    return cfg;
  }
};

TEST(Mmu, IdealTranslatesInstantly) {
  MmuRig rig(Mechanism::kIdeal);
  const TranslateResult r = rig.mmu.translate(1234, 0x5000);
  EXPECT_EQ(r.finish, 1234u);
  EXPECT_TRUE(r.l1_tlb_hit);
  ASSERT_TRUE(rig.space.translate(0x5000).has_value());
  EXPECT_EQ(r.pa, *rig.space.translate(0x5000));
}

TEST(Mmu, ColdTranslationWalksAndFaults) {
  MmuRig rig;
  const TranslateResult r = rig.mmu.translate(0, 0x7000);
  EXPECT_TRUE(r.walked);
  EXPECT_TRUE(r.faulted);
  EXPECT_GT(r.fault_cycles, 0u);
  EXPECT_GT(r.walk_cycles, 0u);
  // Second access: L1 TLB hit, one cycle.
  const TranslateResult r2 = rig.mmu.translate(10000000, 0x7000);
  EXPECT_TRUE(r2.l1_tlb_hit);
  EXPECT_EQ(r2.finish, 10000000u + 1);
  EXPECT_EQ(r2.pa, r.pa);
}

TEST(Mmu, L2TlbCatchesL1Evictions) {
  MmuRig rig;
  // Prefault pages then touch enough distinct pages to spill L1 (64 entries)
  // but not L2 (1536).
  for (Vpn v = 0; v < 200; ++v) rig.space.touch(v << kPageShift, 0);
  Cycle t = 0;
  for (Vpn v = 0; v < 200; ++v) rig.mmu.translate(t += 100000, v << kPageShift);
  const auto walks_before = rig.mmu.counters().walks;
  // Revisit page 0: L1 evicted it long ago, L2 still holds it.
  const TranslateResult r = rig.mmu.translate(t += 100000, 0);
  EXPECT_TRUE(r.l2_tlb_hit);
  EXPECT_EQ(rig.mmu.counters().walks, walks_before);
}

TEST(MmuOp, StepwiseMatchesSynchronousResult) {
  MmuRig rig;
  rig.space.touch(0x9000, 0);
  // Synchronous reference on a twin rig (separate state).
  MmuRig ref;
  ref.space.touch(0x9000, 0);
  const TranslateResult sync = ref.mmu.translate(500, 0x9000);

  MmuOp op;
  Cycle t = op.begin(rig.mmu, 500, 0x9000, AccessType::kRead);
  while (!op.done()) t = op.step(t);
  EXPECT_EQ(op.issue_time(), 500u);
  EXPECT_EQ(op.translation_done(), sync.finish);
  EXPECT_EQ(op.finish_time(), t);
  EXPECT_GT(op.finish_time(), op.translation_done());
}

TEST(MmuOp, CoalescesDuplicateWalks) {
  MmuRig rig;
  rig.space.touch(0xA000, 0);
  MmuOp a, b;
  const Cycle ta = a.begin(rig.mmu, 100, 0xA000, AccessType::kRead);
  // Second op to the same page while the first walk is in flight.
  const Cycle tb = b.begin(rig.mmu, 101, 0xA000, AccessType::kWrite);
  EXPECT_EQ(rig.mmu.counters().walks, 1u);
  EXPECT_EQ(rig.mmu.counters().coalesced_walks, 1u);
  // Drive both to completion (interleave by event time).
  MmuOp* ops[2] = {&a, &b};
  Cycle times[2] = {ta, tb};
  while (!a.done() || !b.done()) {
    const int i = (!a.done() && (b.done() || times[0] <= times[1])) ? 0 : 1;
    times[i] = ops[i]->step(times[i]);
  }
  EXPECT_EQ(rig.mmu.counters().walks, 1u) << "the second op must piggyback";
  EXPECT_GT(b.finish_time(), 0u);
}

TEST(MmuOp, FaultRetryLeavesPageMapped) {
  MmuRig rig;  // nothing prefaulted
  MmuOp op;
  Cycle t = op.begin(rig.mmu, 0, 0xB000, AccessType::kRead);
  while (!op.done()) t = op.step(t);
  EXPECT_TRUE(op.faulted());
  EXPECT_GT(op.fault_cycles(), 0u);
  EXPECT_TRUE(rig.space.translate(0xB000).has_value());
}

// --------------------------------------------------------------- System ---

TEST(System, NdpAndCpuAssembly) {
  SystemConfig nc = SystemConfig::ndp(2, Mechanism::kNdpage);
  nc.phys_bytes = 256ull << 20;
  System ndp(nc);
  EXPECT_EQ(ndp.num_cores(), 2u);
  EXPECT_EQ(ndp.mem().config().dram.name, "HBM2");
  EXPECT_EQ(ndp.mem().l2(0), nullptr);
  EXPECT_TRUE(ndp.mmu(0).walker().config().bypass_caches_for_metadata);

  SystemConfig cc = SystemConfig::cpu(2, Mechanism::kRadix);
  cc.phys_bytes = 256ull << 20;
  System cpu(cc);
  EXPECT_NE(cpu.mem().l2(0), nullptr);
  EXPECT_NE(cpu.mem().l3(), nullptr);
  EXPECT_EQ(cpu.mem().config().dram.name, "DDR4-2400");
}

TEST(System, ShootdownReachesAllCoreTlbs) {
  SystemConfig sc = SystemConfig::ndp(2, Mechanism::kRadix);
  sc.phys_bytes = 256ull << 20;
  System sys(sc);
  sys.space().touch(0xC000, 0);
  sys.mmu(0).translate(0, 0xC000);
  sys.mmu(1).translate(0, 0xC000);
  // Both cores now hold the translation; a reclaim-style teardown must
  // invalidate both (exercised via the hook the System installed).
  EXPECT_TRUE(sys.mmu(0).l1_dtlb().peek(0xC000).has_value());
  // Trigger the hook directly through the address space path used by
  // reclaim: unmapping is internal, so emulate by relocation shootdown.
  // (Integration-level reclaim is covered in translate_test.)
  sys.space().set_shootdown_hook(nullptr);  // restore default-free teardown
}

TEST(System, CollectStatsHasComponentKeys) {
  SystemConfig sc = SystemConfig::ndp(1, Mechanism::kRadix);
  sc.phys_bytes = 256ull << 20;
  System sys(sc);
  sys.space().touch(0xD000, 0);
  sys.mmu(0).translate(0, 0xD000);
  const StatSet s = sys.collect_stats();
  EXPECT_GT(s.get("mmu.walks"), 0u);
  EXPECT_GT(s.get("walker.walks"), 0u);
  EXPECT_GT(s.get("tlb.l1d.miss"), 0u);
  sys.reset_stats();
  EXPECT_EQ(sys.collect_stats().get("mmu.walks"), 0u);
}

}  // namespace
}  // namespace ndp
