// Tests for the memory-system composition (caches + NoC + DRAM), including
// the NDPage bypass attribute — the hardware half of the paper's §V-A.
#include <gtest/gtest.h>

#include "cache/hierarchy.h"

namespace ndp {
namespace {

TEST(MemorySystemConfig, TableOneShapes) {
  const MemorySystemConfig ndp = MemorySystemConfig::ndp(4);
  EXPECT_FALSE(ndp.l2.has_value());
  EXPECT_FALSE(ndp.l3.has_value());
  EXPECT_EQ(ndp.dram.name, "HBM2");
  EXPECT_EQ(ndp.l1.size_bytes, 32u * 1024);

  const MemorySystemConfig cpu = MemorySystemConfig::cpu(4);
  ASSERT_TRUE(cpu.l2.has_value());
  ASSERT_TRUE(cpu.l3.has_value());
  EXPECT_EQ(cpu.l2->size_bytes, 512u * 1024);
  EXPECT_EQ(cpu.l3->size_bytes, 2u * 1024 * 1024);  // per core
  EXPECT_EQ(cpu.dram.name, "DDR4-2400");
}

TEST(MemorySystem, L1HitIsL1Latency) {
  MemorySystem ms(MemorySystemConfig::ndp(1));
  const PhysAddr pa = 0x10000;
  ms.access(0, 0, pa, AccessType::kRead, AccessClass::kData);  // fill
  const MemAccessResult r =
      ms.access(1000, 0, pa, AccessType::kRead, AccessClass::kData);
  EXPECT_EQ(r.served_by, ServedBy::kL1);
  EXPECT_EQ(r.finish, 1000 + ms.l1(0).config().latency);
}

TEST(MemorySystem, NdpMissGoesStraightToDram) {
  MemorySystem ms(MemorySystemConfig::ndp(1));
  const MemAccessResult r =
      ms.access(0, 0, 0x20000, AccessType::kRead, AccessClass::kData);
  EXPECT_EQ(r.served_by, ServedBy::kDram);
  EXPECT_EQ(ms.counters().served_dram, 1u);
}

TEST(MemorySystem, CpuFillsAllLevels) {
  MemorySystem ms(MemorySystemConfig::cpu(1));
  const PhysAddr pa = 0x30000;
  ms.access(0, 0, pa, AccessType::kRead, AccessClass::kData);  // miss to DRAM
  // Now resident in L1, L2 and L3.
  EXPECT_TRUE(ms.l1(0).probe(line_of(pa)));
  EXPECT_TRUE(ms.l2(0)->probe(line_of(pa)));
  EXPECT_TRUE(ms.l3()->probe(line_of(pa)));
  // Evict from L1 only; next access is an L2 hit.
  ms.l1(0).invalidate(line_of(pa));
  const MemAccessResult r =
      ms.access(5000, 0, pa, AccessType::kRead, AccessClass::kData);
  EXPECT_EQ(r.served_by, ServedBy::kL2);
}

TEST(MemorySystem, BypassSkipsAndNeverAllocates) {
  MemorySystem ms(MemorySystemConfig::ndp(1));
  const PhysAddr pa = 0x40000;
  const MemAccessResult r = ms.access(0, 0, pa, AccessType::kRead,
                                      AccessClass::kMetadata, /*bypass=*/true);
  EXPECT_EQ(r.served_by, ServedBy::kDram);
  EXPECT_FALSE(ms.l1(0).probe(line_of(pa))) << "bypassed request must not fill L1";
  EXPECT_EQ(ms.counters().bypassed, 1u);
  // Even a resident line is not consulted when bypassing.
  ms.access(100, 0, pa, AccessType::kRead, AccessClass::kData);  // fill L1
  const MemAccessResult r2 = ms.access(20000, 0, pa, AccessType::kRead,
                                       AccessClass::kMetadata, /*bypass=*/true);
  EXPECT_EQ(r2.served_by, ServedBy::kDram);
}

TEST(MemorySystem, MetadataFillsPolluteWithoutBypass) {
  MemorySystem ms(MemorySystemConfig::ndp(1));
  // Fill the whole L1 with data lines, then stream metadata through it.
  const std::uint64_t lines = ms.l1(0).config().size_bytes / kCacheLineSize;
  for (std::uint64_t l = 0; l < lines; ++l)
    ms.access(l * 10, 0, l << kCacheLineShift, AccessType::kRead,
              AccessClass::kData);
  const std::uint64_t before = ms.l1(0).counters().pollution_victims;
  for (std::uint64_t l = 0; l < 64; ++l)
    ms.access(100000 + l * 10, 0, (0x100000ull + l) << kCacheLineShift,
              AccessType::kRead, AccessClass::kMetadata, /*bypass=*/false);
  EXPECT_GT(ms.l1(0).counters().pollution_victims, before);
}

TEST(MemorySystem, DirtyEvictionsGenerateDramWrites) {
  MemorySystem ms(MemorySystemConfig::ndp(1));
  // Write a set's worth of lines, then stream reads mapping to the same set
  // to force dirty evictions.
  const unsigned sets = ms.l1(0).num_sets();
  const unsigned ways = ms.l1(0).config().ways;
  for (unsigned w = 0; w <= ways; ++w)
    ms.access(w * 100, 0,
              static_cast<PhysAddr>(w) * sets * kCacheLineSize,
              AccessType::kWrite, AccessClass::kData);
  EXPECT_GT(ms.counters().writebacks, 0u);
  EXPECT_GT(ms.dram().counters().writes, 0u);
}

TEST(MemorySystem, SharedL3ScalesWithCores) {
  MemorySystem ms(MemorySystemConfig::cpu(4));
  EXPECT_EQ(ms.l3()->config().size_bytes, 4u * 2 * 1024 * 1024);
}

TEST(MemorySystem, CollectAndResetStats) {
  MemorySystem ms(MemorySystemConfig::cpu(2));
  ms.access(0, 0, 0x1000, AccessType::kRead, AccessClass::kData);
  ms.access(10, 1, 0x2000, AccessType::kRead, AccessClass::kMetadata);
  StatSet s = ms.collect_stats();
  EXPECT_EQ(s.get("mem.access"), 2u);
  EXPECT_EQ(s.get("mem.access.meta"), 1u);
  EXPECT_GT(s.get("dram.access"), 0u);
  ms.reset_stats();
  s = ms.collect_stats();
  EXPECT_EQ(s.get("mem.access"), 0u);
  EXPECT_EQ(s.get("dram.access"), 0u);
}

}  // namespace
}  // namespace ndp
