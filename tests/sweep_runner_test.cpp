// Sweep-runner contract: parallel execution returns results in spec order
// with output byte-identical to a serial run, progress reporting fires once
// per cell, errors propagate, and the shared aggregation path (summary /
// speedup / geomean / metric means) computes what the figures plot. Also
// the subsystem's end-to-end acceptance: a workload registered here runs by
// name from a JSON config through the parallel runner.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "sim/run_config.h"
#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

namespace ndp {
namespace {

/// Small grid that still exercises every axis: 2 mechanisms x 2 workloads
/// x 2 core counts at a tiny scale/budget.
RunConfig tiny_grid() {
  RunConfig cfg = RunConfig::from_json(R"({
    "name": "tiny",
    "mechanisms": ["radix", "ndpage"],
    "workloads": ["RND", "PR"],
    "cores": [1, 2],
    "instructions": 3000,
    "warmup": 200,
    "scale": 0.015625,
    "baseline": "radix"
  })");
  return cfg;
}

TEST(SweepRunner, ParallelOutputIsByteIdenticalToSerial) {
  const RunConfig cfg = tiny_grid();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 4;
  const SweepResults a = run_sweep(cfg, serial);
  const SweepResults b = run_sweep(cfg, parallel);
  ASSERT_EQ(a.cells.size(), 8u);
  ASSERT_EQ(b.cells.size(), 8u);
  // The full serialized documents — spec, metrics, every stat counter, and
  // the aggregate block — match byte for byte.
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

// Promotes the CI-only serial-vs-parallel byte-identity check to ctest, on
// a grid of *parameterized* mechanism variants: the full JSON and CSV
// documents must not depend on the job count, and every cell must record
// its resolved parameters.
TEST(SweepRunner, ParameterizedGridByteIdenticalAcrossJobCounts) {
  const RunConfig cfg = RunConfig::from_json(R"json({
    "name": "param_grid",
    "mechanisms": ["radix",
                   {"name": "ech", "params": {"ways": [2, 4]}},
                   "ndpage(pwc_l3=16)",
                   "hybrid(flat_bits=14)"],
    "workloads": ["RND"],
    "cores": [1, 2],
    "instructions": 2000,
    "warmup": 150,
    "scale": 0.015625,
    "baseline": "radix"
  })json");
  ASSERT_EQ(cfg.mechanisms,
            (std::vector<std::string>{"Radix", "ECH(ways=2)", "ECH(ways=4)",
                                      "NDPage(pwc_l3=16)",
                                      "Hybrid(flat_bits=14)"}));

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResults reference = run_sweep(cfg, serial);
  ASSERT_EQ(reference.cells.size(), 10u);
  const std::string ref_json = to_json(reference);
  const std::string ref_csv = to_csv(reference);

  // Per-cell metadata records the resolved parameter values.
  EXPECT_NE(ref_json.find("\"mechanism\":\"ECH(ways=4)\""), std::string::npos);
  EXPECT_NE(ref_json.find("\"mechanism_params\":{\"ways\":4,\"probes\":0}"),
            std::string::npos);
  EXPECT_NE(ref_json.find("\"mechanism_params\":{\"flat_bits\":14"),
            std::string::npos);
  EXPECT_NE(ref_csv.find("NDPage(pwc_l3=16)"), std::string::npos);
  // ... and the variants aggregate against the baseline like any mechanism.
  const auto gms = geomean_speedups(reference, "Radix", SystemKind::kNdp, 2);
  ASSERT_EQ(gms.size(), 4u);
  EXPECT_EQ(gms[0].first, "ECH(ways=2)");

  for (unsigned jobs : {2u, 8u}) {
    SweepOptions opts;
    opts.jobs = jobs;
    const SweepResults parallel = run_sweep(cfg, opts);
    EXPECT_EQ(to_json(parallel), ref_json) << "jobs=" << jobs;
    EXPECT_EQ(to_csv(parallel), ref_csv) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, ResultsArriveInSpecOrder) {
  const RunConfig cfg = tiny_grid();
  const std::vector<RunSpec> specs = cfg.expand();
  SweepOptions opts;
  opts.jobs = 3;
  const SweepResults results = run_sweep(specs, opts);
  ASSERT_EQ(results.cells.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results.cells[i].spec.mechanism_label(),
              specs[i].mechanism_label());
    EXPECT_EQ(results.cells[i].spec.workload_label(),
              specs[i].workload_label());
    EXPECT_EQ(results.cells[i].spec.cores, specs[i].cores);
    EXPECT_GT(results.cells[i].result.total_cycles, 0u);
  }
}

TEST(SweepRunner, ProgressFiresOncePerCell) {
  const RunConfig cfg = tiny_grid();
  std::atomic<std::size_t> calls{0};
  std::set<std::size_t> seen_done;
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = [&](std::size_t done, std::size_t total,
                      const RunSpec& spec) {
    ++calls;
    seen_done.insert(done);  // callback runs under the runner's lock
    EXPECT_EQ(total, 8u);
    EXPECT_GE(spec.cores, 1u);
  };
  run_sweep(cfg, opts);
  EXPECT_EQ(calls.load(), 8u);
  // Every completion count 1..8 was reported exactly once.
  EXPECT_EQ(seen_done.size(), 8u);
  EXPECT_EQ(*seen_done.begin(), 1u);
  EXPECT_EQ(*seen_done.rbegin(), 8u);
}

TEST(SweepRunner, CellErrorsPropagate) {
  RunSpec bad;
  bad.mechanism_name = "not-a-mechanism";  // bypasses the builder's check
  bad.instructions_per_core = 100;
  EXPECT_THROW(run_sweep({bad}, SweepOptions{}), std::out_of_range);
}

TEST(SweepRunner, AggregationMatchesDirectComputation) {
  const RunConfig cfg = tiny_grid();
  const SweepResults results = run_sweep(cfg, SweepOptions{});

  // summary: one row per cell.
  EXPECT_EQ(summary_table(results).num_rows(), results.cells.size());

  // Baseline speedups: radix vs ndpage cell pairs, straight from cycles.
  CellFilter radix1, ndpage1;
  radix1.mechanism = "Radix";
  ndpage1.mechanism = "NDPage";
  radix1.workload = ndpage1.workload = std::string("RND");
  radix1.cores = ndpage1.cores = 1u;
  const auto radix_cycles =
      collect_metric(results, Metric::kCycles, radix1);
  const auto ndpage_cycles =
      collect_metric(results, Metric::kCycles, ndpage1);
  ASSERT_EQ(radix_cycles.size(), 1u);
  ASSERT_EQ(ndpage_cycles.size(), 1u);

  const auto gms =
      geomean_speedups(results, "Radix", SystemKind::kNdp, 1);
  ASSERT_EQ(gms.size(), 1u);  // only NDPage (baseline excluded)
  EXPECT_EQ(gms[0].first, "NDPage");
  EXPECT_GT(gms[0].second, 0.0);

  // speedup_table: (2 workloads + GEOMEAN) per (system, cores) group.
  EXPECT_EQ(speedup_table(results, "Radix").num_rows(), 6u);
  // A baseline absent from the sweep is an error, not a silent zero.
  EXPECT_THROW(speedup_table(results, "ECH"), std::invalid_argument);

  // Filters select exactly the matching cells.
  CellFilter all_radix;
  all_radix.mechanism = "radix";  // case-insensitive
  EXPECT_EQ(collect_metric(results, Metric::kCycles, all_radix).size(), 4u);
  EXPECT_GT(mean_metric(results, Metric::kPtwLatency, all_radix), 0.0);
  CellFilter none;
  none.system = SystemKind::kCpu;
  EXPECT_EQ(collect_metric(results, Metric::kCycles, none).size(), 0u);
  EXPECT_EQ(mean_metric(results, Metric::kCycles, none), 0.0);
}

/// Zig-zag scan registered at runtime — the config-file acceptance fixture.
class ZigZagWorkload final : public TraceSource {
 public:
  explicit ZigZagWorkload(const WorkloadParams& params)
      : cores_(params.num_cores), pos_(params.num_cores, 0) {}

  std::string name() const override { return "ZigZag"; }
  std::string suite() const override { return "custom"; }
  std::uint64_t paper_dataset_bytes() const override { return kBytes; }
  std::uint64_t dataset_bytes() const override { return kBytes; }
  std::vector<VmRegion> regions() const override {
    return {VmRegion{"zigzag", dataset_base(), kBytes, true}};
  }
  MemRef next(unsigned core) override {
    std::uint64_t& p = pos_[core];
    p += 4096 + core * 64;
    const VirtAddr va = dataset_base() + (p % kBytes);
    return MemRef{3, va, (p / kBytes) % 2 ? AccessType::kWrite
                                          : AccessType::kRead};
  }

 private:
  static constexpr std::uint64_t kBytes = 16ull << 20;
  unsigned cores_;
  std::vector<std::uint64_t> pos_;
};

// End-to-end acceptance for the subsystem: register a workload outside
// src/workloads/, then select it *by name from a JSON config* and run the
// grid through the parallel runner.
TEST(SweepRunner, ConfigRunsRegisteredCustomWorkloadByName) {
  WorkloadDescriptor d;
  d.name = "ZigZag";
  d.aliases = {"zz"};
  d.suite = "custom";
  d.summary = "sweep_runner_test zig-zag scan";
  d.make = [](const WorkloadParams& p) {
    return std::make_unique<ZigZagWorkload>(p);
  };
  ASSERT_TRUE(register_workload(std::move(d)));

  const RunConfig cfg = RunConfig::from_json(R"({
    "name": "custom_wl_grid",
    "mechanisms": ["radix", "ndpage"],
    "workloads": ["zz", "gups"],
    "cores": [2],
    "instructions": 3000,
    "warmup": 200,
    "scale": 0.015625,
    "baseline": "radix"
  })");
  // The alias resolved to the canonical registered name at parse time.
  EXPECT_EQ(cfg.workloads, (std::vector<std::string>{"ZigZag", "RND"}));

  SweepOptions opts;
  opts.jobs = 2;
  const SweepResults results = run_sweep(cfg, opts);
  ASSERT_EQ(results.cells.size(), 4u);
  EXPECT_EQ(results.cells[0].result.meta.workload, "ZigZag");
  EXPECT_GT(results.cells[0].result.total_cycles, 0u);
  // The custom workload flows through aggregation like any built-in.
  const auto gms = geomean_speedups(results, "Radix", SystemKind::kNdp, 2);
  ASSERT_EQ(gms.size(), 1u);
  EXPECT_EQ(gms[0].first, "NDPage");
  // ... and lands in the JSON document under its registered name.
  EXPECT_NE(to_json(results).find("\"ZigZag\""), std::string::npos);
}

}  // namespace
}  // namespace ndp
