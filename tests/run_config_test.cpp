// Config front-end contract: the JsonValue parser (values, escapes,
// pinpointed errors), RunConfig parsing with registry-validated names,
// to_json/from_json round-trips, grid expansion order, and the
// malformed-config diagnostics a CLI user actually sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/json.h"
#include "sim/run_config.h"

namespace ndp {
namespace {

// --- JsonValue --------------------------------------------------------------

TEST(JsonValue, ParsesScalarsArraysObjects) {
  const JsonValue v = JsonValue::parse(
      R"({"s": "a\"b\nc", "n": -2.5e2, "i": 42, "t": true, "f": false,
          "null": null, "arr": [1, [2]], "obj": {"k": "v"}})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\nc");
  EXPECT_DOUBLE_EQ(v.at("n").as_double(), -250.0);
  EXPECT_EQ(v.at("i").as_u64(), 42u);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("null").is_null());
  ASSERT_EQ(v.at("arr").array().size(), 2u);
  EXPECT_EQ(v.at("arr").array()[1].array()[0].as_u64(), 2u);
  EXPECT_EQ(v.at("obj").at("k").as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(JsonValue, DumpParsesBack) {
  const char* doc = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const JsonValue v = JsonValue::parse(doc);
  EXPECT_EQ(v.dump(), doc);
  // dump() of a parse is a fixed point.
  EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());
}

TEST(JsonValue, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "Aé");  // raw UTF-8 ok
  // Surrogate-pair escapes are rejected, not mangled.
  EXPECT_THROW(JsonValue::parse(R"("\uD83D\uDE00")"), JsonError);
  EXPECT_THROW(JsonValue::parse(R"("\uZZZZ")"), JsonError);
}

TEST(JsonValue, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\": }\n");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    // The bad token is on line 3.
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos) << e.what();
  }
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1}{"), JsonError);  // trailing
  EXPECT_THROW(JsonValue::parse("{\"a\":1,\"a\":2}"), JsonError);  // dup key
  EXPECT_THROW(JsonValue::parse("nul"), JsonError);
  EXPECT_THROW(JsonValue::parse("01"), JsonError);  // trailing garbage
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::parse("1."), JsonError);
  // Depth bomb: deeply nested arrays are refused, not a stack overflow.
  EXPECT_THROW(JsonValue::parse(std::string(500, '[')), JsonError);
}

TEST(JsonValue, U64RejectsNonIntegers) {
  EXPECT_THROW(JsonValue::parse("2.5").as_u64(), JsonError);
  EXPECT_THROW(JsonValue::parse("-1").as_u64(), JsonError);
  EXPECT_EQ(JsonValue::parse("150000").as_u64(), 150000u);
}

// --- RunConfig --------------------------------------------------------------

TEST(RunConfig, ParsesFullDocumentWithCanonicalNames) {
  const RunConfig cfg = RunConfig::from_json(R"({
    "name": "test_grid",
    "description": "a grid",
    "systems": ["ndp", "cpu"],
    "mechanisms": ["radix", "flat"],
    "workloads": ["gups", "PR"],
    "cores": [1, 4],
    "instructions": 9000,
    "warmup": 600,
    "scale": 0.5,
    "seed": 7,
    "overrides": { "bypass": true, "pwc_levels": [4, 3], "dram": "hbm2" },
    "baseline": "radix",
    "output": { "json": "out.json", "csv": "out.csv" }
  })");
  EXPECT_EQ(cfg.name, "test_grid");
  ASSERT_EQ(cfg.systems.size(), 2u);
  EXPECT_EQ(cfg.systems[0], SystemKind::kNdp);
  // Aliases resolve to canonical registry spellings at parse time.
  EXPECT_EQ(cfg.mechanisms, (std::vector<std::string>{"Radix", "NDPage"}));
  EXPECT_EQ(cfg.workloads, (std::vector<std::string>{"RND", "PR"}));
  EXPECT_EQ(cfg.cores, (std::vector<unsigned>{1, 4}));
  EXPECT_EQ(cfg.instructions, 9000u);
  EXPECT_EQ(cfg.warmup, 600u);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
  EXPECT_EQ(cfg.seed, 7u);
  ASSERT_TRUE(cfg.overrides.bypass.has_value());
  EXPECT_TRUE(*cfg.overrides.bypass);
  ASSERT_TRUE(cfg.overrides.pwc_levels.has_value());
  EXPECT_EQ(*cfg.overrides.pwc_levels, (std::vector<unsigned>{4, 3}));
  ASSERT_TRUE(cfg.overrides.dram.has_value());
  EXPECT_EQ(cfg.overrides.dram->name, "HBM2");
  EXPECT_EQ(cfg.baseline, "Radix");
  EXPECT_EQ(cfg.json_output, "out.json");
  EXPECT_EQ(cfg.csv_output, "out.csv");
}

TEST(RunConfig, SingularFormsAndAllWorkloads) {
  const RunConfig cfg = RunConfig::from_json(R"({
    "system": "cpu", "mechanism": "ech", "workloads": "all", "cores": 2
  })");
  EXPECT_EQ(cfg.systems, (std::vector<SystemKind>{SystemKind::kCpu}));
  EXPECT_EQ(cfg.mechanisms, (std::vector<std::string>{"ECH"}));
  EXPECT_EQ(cfg.workloads.size(), 11u);  // the Table II built-ins
  EXPECT_EQ(cfg.workloads.front(), "BC");
  EXPECT_EQ(cfg.workloads.back(), "GEN");
  EXPECT_EQ(cfg.cores, (std::vector<unsigned>{2}));
}

TEST(RunConfig, DefaultsWhenKeysAbsent) {
  const RunConfig cfg = RunConfig::from_json("{}");
  EXPECT_EQ(cfg.systems, (std::vector<SystemKind>{SystemKind::kNdp}));
  EXPECT_EQ(cfg.mechanisms, (std::vector<std::string>{"NDPage"}));
  EXPECT_EQ(cfg.workloads, (std::vector<std::string>{"RND"}));
  EXPECT_EQ(cfg.cores, (std::vector<unsigned>{4}));
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_FALSE(cfg.overrides.any());
}

TEST(RunConfig, RoundTripsThroughToJson) {
  const char* doc = R"({
    "name": "rt", "systems": ["ndp", "cpu"],
    "mechanisms": ["radix", "ndpage"], "workloads": ["RND", "PR"],
    "cores": [1, 2, 8], "instructions": 4000, "scale": 0.25, "seed": 3,
    "overrides": { "bypass": false, "dram": "ddr4" }, "baseline": "radix",
    "output": { "csv": "x.csv" }
  })";
  const RunConfig a = RunConfig::from_json(doc);
  const RunConfig b = RunConfig::from_json(a.to_json());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(b.name, "rt");
  EXPECT_EQ(b.systems.size(), 2u);
  EXPECT_EQ(b.mechanisms, a.mechanisms);
  EXPECT_EQ(b.workloads, a.workloads);
  EXPECT_EQ(b.cores, a.cores);
  EXPECT_EQ(b.instructions, 4000u);
  EXPECT_DOUBLE_EQ(b.scale, 0.25);
  ASSERT_TRUE(b.overrides.bypass.has_value());
  EXPECT_FALSE(*b.overrides.bypass);
  ASSERT_TRUE(b.overrides.dram.has_value());
  EXPECT_EQ(b.overrides.dram->name, "DDR4-2400");
  EXPECT_EQ(b.baseline, "Radix");
  EXPECT_EQ(b.csv_output, "x.csv");
}

TEST(RunConfig, ShareImagesOptOutParsesAndRoundTrips) {
  EXPECT_TRUE(RunConfig::from_json("{}").share_images) << "sharing is opt-out";
  const RunConfig off =
      RunConfig::from_json(R"({"share_images": false})");
  EXPECT_FALSE(off.share_images);
  EXPECT_FALSE(RunConfig::from_json(off.to_json()).share_images);
  EXPECT_THROW(RunConfig::from_json(R"({"share_images": "yes"})"),
               std::invalid_argument);
}

TEST(RunConfig, ExpandIsSystemMajorThenMechanismMajor) {
  const RunConfig cfg = RunConfig::from_json(R"({
    "systems": ["ndp", "cpu"], "mechanisms": ["radix", "ndpage"],
    "workloads": ["RND"], "cores": [1, 4], "seed": 9
  })");
  const std::vector<RunSpec> specs = cfg.expand();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].system, SystemKind::kNdp);
  EXPECT_EQ(specs[0].mechanism_label(), "Radix");
  EXPECT_EQ(specs[0].cores, 1u);
  EXPECT_EQ(specs[1].cores, 4u);
  EXPECT_EQ(specs[2].mechanism_label(), "NDPage");
  EXPECT_EQ(specs[4].system, SystemKind::kCpu);
  for (const RunSpec& s : specs) {
    EXPECT_EQ(s.workload_label(), "RND");
    EXPECT_EQ(s.seed, 9u);
  }
}

TEST(RunConfig, MalformedConfigsNameTheProblem) {
  auto error_of = [](const char* doc) -> std::string {
    try {
      RunConfig::from_json(doc);
      return "";
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
  };
  // Malformed JSON carries the parse position.
  EXPECT_NE(error_of("{").find("parse error"), std::string::npos);
  // Unknown keys (typo protection).
  EXPECT_NE(error_of(R"({"mechanims": ["radix"]})").find("mechanims"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"overrides": {"bypas": true}})").find("bypas"),
            std::string::npos);
  // Unknown names list the registered alternatives.
  const std::string mech_err = error_of(R"({"mechanisms": ["bogus"]})");
  EXPECT_NE(mech_err.find("bogus"), std::string::npos);
  EXPECT_NE(mech_err.find("NDPage"), std::string::npos);
  const std::string wl_err = error_of(R"({"workloads": ["bogus"]})");
  EXPECT_NE(wl_err.find("bogus"), std::string::npos);
  EXPECT_NE(wl_err.find("RND"), std::string::npos);
  // Type and range errors.
  EXPECT_NE(error_of(R"({"cores": "four"})").find("cores"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"cores": [0]})").find(">= 1"), std::string::npos);
  EXPECT_NE(error_of(R"({"cores": []})").find("cores"), std::string::npos);
  EXPECT_NE(error_of(R"({"scale": 1.5})").find("scale"), std::string::npos);
  EXPECT_NE(error_of(R"({"instructions": -5})").find("instructions"),
            std::string::npos);
  // Both singular and plural axis keys.
  EXPECT_NE(
      error_of(R"({"system": "ndp", "systems": ["cpu"]})").find("not both"),
      std::string::npos);
  // Baseline must be part of the sweep.
  EXPECT_NE(error_of(R"({"mechanisms": ["ndpage"], "baseline": "radix"})")
                .find("baseline"),
            std::string::npos);
  // Bad top level.
  EXPECT_NE(error_of("[1,2]").find("object"), std::string::npos);
}

TEST(RunConfig, LoadReadsFilesAndPrefixesErrorsWithPath) {
  const std::string good = testing::TempDir() + "/run_config_good.json";
  {
    std::ofstream out(good);
    out << R"({"name": "from_file", "workloads": ["gups"], "cores": 1})";
  }
  const RunConfig cfg = RunConfig::load(good);
  EXPECT_EQ(cfg.name, "from_file");
  EXPECT_EQ(cfg.workloads, (std::vector<std::string>{"RND"}));
  std::remove(good.c_str());

  EXPECT_THROW(RunConfig::load("/nonexistent/nope.json"),
               std::invalid_argument);
  const std::string bad = testing::TempDir() + "/run_config_bad.json";
  {
    std::ofstream out(bad);
    out << R"({"cores": })";
  }
  try {
    RunConfig::load(bad);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos) << e.what();
  }
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace ndp
