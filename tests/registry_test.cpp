// Mechanism-registry contract: registration/lookup round-trip, alias and
// case-insensitive resolution, unknown-name diagnostics, agreement between
// the legacy enum arrays and the registry, and — the point of the open
// API — a mechanism registered here, without touching core/mechanism.{h,cpp},
// running end-to-end through the experiment layer.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/mechanism.h"
#include "core/mechanism_registry.h"
#include "sim/experiment.h"
#include "translate/radix_page_table.h"

namespace ndp {
namespace {

MechanismDescriptor test_descriptor(std::string name) {
  MechanismDescriptor d;
  d.name = std::move(name);
  d.summary = "registry_test fixture mechanism";
  d.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
  };
  return d;
}

TEST(MechanismRegistry, RegistrationLookupRoundTrip) {
  MechanismDescriptor d = test_descriptor("RoundTrip");
  d.aliases = {"rt-alias"};
  d.walker.pwc_levels = {4};
  d.walker.bypass_caches_for_metadata = true;
  d.huge_pages = false;
  d.models_translation = true;
  ASSERT_TRUE(register_mechanism(std::move(d)));

  const MechanismDescriptor* found =
      MechanismRegistry::instance().find("RoundTrip");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "RoundTrip");
  EXPECT_EQ(found->walker.pwc_levels, (std::vector<unsigned>{4}));
  EXPECT_TRUE(found->walker.bypass_caches_for_metadata);
  EXPECT_FALSE(found->builtin);

  // The factory produces a working page table.
  PhysMemConfig pmc;
  pmc.bytes = 64ull << 20;
  PhysicalMemory pm(pmc);
  EXPECT_NE(found->make_page_table(pm, found->default_params()), nullptr);
}

TEST(MechanismRegistry, AliasAndCaseInsensitiveResolution) {
  MechanismDescriptor d = test_descriptor("AliasHost");
  d.aliases = {"alias-one", "alias-two"};
  ASSERT_TRUE(register_mechanism(std::move(d)));

  auto& reg = MechanismRegistry::instance();
  EXPECT_EQ(reg.find("alias-one"), reg.find("AliasHost"));
  EXPECT_EQ(reg.find("ALIAS-TWO"), reg.find("AliasHost"));
  EXPECT_EQ(reg.find("aliashost"), reg.find("AliasHost"));

  // Built-in aliases resolve too.
  ASSERT_NE(reg.find("flat"), nullptr);
  EXPECT_EQ(reg.find("flat")->name, "NDPage");
  EXPECT_EQ(reg.find("THP")->name, "HugePage");
}

TEST(MechanismRegistry, RejectsCollisionsAndInvalidDescriptors) {
  ASSERT_TRUE(register_mechanism(test_descriptor("Collider")));
  // Name collision, also via different case.
  EXPECT_FALSE(register_mechanism(test_descriptor("Collider")));
  EXPECT_FALSE(register_mechanism(test_descriptor("collider")));
  // Alias colliding with an existing name.
  MechanismDescriptor alias_clash = test_descriptor("CollTwo");
  alias_clash.aliases = {"ndpage"};
  EXPECT_FALSE(register_mechanism(std::move(alias_clash)));
  // Missing name / missing factory.
  EXPECT_FALSE(register_mechanism(test_descriptor("")));
  MechanismDescriptor no_factory;
  no_factory.name = "NoFactory";
  EXPECT_FALSE(register_mechanism(std::move(no_factory)));
  EXPECT_FALSE(MechanismRegistry::instance().contains("NoFactory"));
}

TEST(MechanismRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    MechanismRegistry::instance().at("not-a-mechanism");
    FAIL() << "at() should throw on unknown names";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not-a-mechanism"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NDPage"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Radix"), std::string::npos) << msg;
  }
}

TEST(MechanismRegistry, EnumArraysMatchRegistryContents) {
  auto& reg = MechanismRegistry::instance();
  // Every enum mechanism is registered as a built-in under its to_string name.
  for (Mechanism m : kExtendedMechanisms) {
    const MechanismDescriptor* d = reg.find(to_string(m));
    ASSERT_NE(d, nullptr) << to_string(m);
    EXPECT_TRUE(d->builtin) << to_string(m);
    EXPECT_EQ(&descriptor_of(m), d);
    // And resolves back to the same enum value.
    ASSERT_TRUE(mechanism_from_string(to_string(m)).has_value());
    EXPECT_EQ(*mechanism_from_string(to_string(m)), m);
  }
  // ... and the built-ins are exactly the extended enum set, in order.
  const std::vector<std::string> builtins = reg.builtin_names();
  ASSERT_EQ(builtins.size(), std::size(kExtendedMechanisms));
  for (std::size_t i = 0; i < builtins.size(); ++i)
    EXPECT_EQ(builtins[i], to_string(kExtendedMechanisms[i]));
  // kAllMechanisms is the paper's five: the extended set minus the
  // related-work comparators (DIPTA, Hybrid).
  ASSERT_EQ(std::size(kAllMechanisms) + 2, std::size(kExtendedMechanisms));
  for (std::size_t i = 0; i < std::size(kAllMechanisms); ++i)
    EXPECT_EQ(kAllMechanisms[i], kExtendedMechanisms[i]);
}

TEST(MechanismRegistry, EnumShimsMatchDescriptors) {
  for (Mechanism m : kExtendedMechanisms) {
    const MechanismDescriptor& d = descriptor_of(m);
    EXPECT_EQ(uses_huge_pages(m), d.huge_pages);
    EXPECT_EQ(models_translation(m), d.models_translation);
    const WalkerConfig w = make_walker_config(m);
    EXPECT_EQ(w.pwc_levels, d.walker.pwc_levels);
    EXPECT_EQ(w.bypass_caches_for_metadata,
              d.walker.bypass_caches_for_metadata);
  }
}

// The acceptance criterion of the open API: a brand-new mechanism registered
// from a test runs end-to-end through string selection — no enum value, no
// core-header edit. "CacheableFlat" = NDPage's flattened table but without
// the metadata bypass, a design point between Radix and NDPage.
TEST(MechanismRegistry, RegisteredMechanismRunsEndToEnd) {
  MechanismDescriptor d = test_descriptor("CacheableFlat");
  d.aliases = {"cflat"};
  d.walker.pwc_levels = {4, 3};
  d.walker.bypass_caches_for_metadata = false;
  ASSERT_TRUE(register_mechanism(std::move(d)));
  // Not a built-in: no enum value maps to it.
  EXPECT_FALSE(mechanism_from_string("CacheableFlat").has_value());

  const RunSpec spec = RunSpecBuilder()
                           .system("ndp")
                           .cores(2)
                           .mechanism("cflat")
                           .workload("gups")
                           .instructions(5'000)
                           .warmup(300)
                           .scale(1.0 / 64.0)
                           .build();
  EXPECT_EQ(spec.mechanism_label(), "CacheableFlat");
  const RunResult r = run_experiment(spec);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_EQ(r.cores.size(), 2u);
  EXPECT_EQ(r.meta.mechanism, "CacheableFlat");
  EXPECT_GT(r.stats.get("walker.walks"), 0u);
  // Cacheable metadata: nothing bypasses, unlike NDPage.
  EXPECT_EQ(r.stats.get("mem.bypassed"), 0u);
}

}  // namespace
}  // namespace ndp
