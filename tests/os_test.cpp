// Tests for the OS substrate: buddy allocator and physical-memory manager
// (noise injection, compaction, huge allocation, table blocks).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "os/buddy.h"
#include "os/phys_mem.h"

namespace ndp {
namespace {

constexpr std::uint64_t kFrames = 16 * 1024;  // 64 MB pool

TEST(Buddy, StartsFullyFree) {
  BuddyAllocator b(kFrames);
  EXPECT_EQ(b.free_frames(), kFrames);
  EXPECT_EQ(b.largest_available_order(), int(BuddyAllocator::kMaxOrder));
  EXPECT_DOUBLE_EQ(b.fragmentation(), 1.0 - 1024.0 / kFrames);
}

TEST(Buddy, AllocAlignedAndSized) {
  BuddyAllocator b(kFrames);
  for (unsigned order = 0; order <= BuddyAllocator::kMaxOrder; ++order) {
    auto f = b.alloc(order);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f % (1ull << order), 0u) << "block must be size-aligned";
    b.free(*f, order);
  }
  EXPECT_EQ(b.free_frames(), kFrames);
}

TEST(Buddy, SplitAndCoalesce) {
  BuddyAllocator b(kFrames);
  auto a0 = b.alloc(0);
  ASSERT_TRUE(a0);
  EXPECT_EQ(b.free_frames(), kFrames - 1);
  // The max-order block containing a0 is split; freeing restores it.
  b.free(*a0, 0);
  EXPECT_EQ(b.largest_available_order(), int(BuddyAllocator::kMaxOrder));
}

TEST(Buddy, ExhaustionReturnsNullopt) {
  BuddyAllocator b(1ull << BuddyAllocator::kMaxOrder);  // one max block
  auto big = b.alloc(BuddyAllocator::kMaxOrder);
  ASSERT_TRUE(big);
  EXPECT_FALSE(b.alloc(0).has_value());
  b.free(*big, BuddyAllocator::kMaxOrder);
  EXPECT_TRUE(b.alloc(0).has_value());
}

TEST(Buddy, AllocSpecificSplitsAroundFrame) {
  BuddyAllocator b(kFrames);
  EXPECT_TRUE(b.alloc_specific(1234));
  EXPECT_FALSE(b.is_free(1234));
  EXPECT_FALSE(b.alloc_specific(1234)) << "already taken";
  EXPECT_EQ(b.free_frames(), kFrames - 1);
  // Everything around it still allocatable.
  auto n = b.alloc(0);
  ASSERT_TRUE(n);
  EXPECT_NE(*n, 1234u);
  b.free(1234, 0);
  b.free(*n, 0);
  EXPECT_EQ(b.free_frames(), kFrames);
  EXPECT_EQ(b.largest_available_order(), int(BuddyAllocator::kMaxOrder));
}

TEST(Buddy, FragmentationBlocksLargeOrders) {
  BuddyAllocator b(1ull << BuddyAllocator::kMaxOrder);
  // Take one frame in the middle: no max-order block remains.
  ASSERT_TRUE(b.alloc_specific(512));
  EXPECT_FALSE(b.alloc(BuddyAllocator::kMaxOrder).has_value());
  EXPECT_GT(b.fragmentation(), 0.0);
}

TEST(Buddy, RandomStressPreservesInvariants) {
  // Property test: random allocs/frees never overlap and always restore the
  // pool when everything is released.
  BuddyAllocator b(kFrames);
  Rng rng(77);
  std::vector<std::pair<Pfn, unsigned>> held;
  std::set<Pfn> owned;
  for (int it = 0; it < 3000; ++it) {
    if (held.empty() || rng.chance(0.55)) {
      const unsigned order = static_cast<unsigned>(rng.below(6));
      auto f = b.alloc(order);
      if (!f) continue;
      for (std::uint64_t i = 0; i < (1ull << order); ++i) {
        ASSERT_TRUE(owned.insert(*f + i).second) << "overlapping allocation";
      }
      held.push_back({*f, order});
    } else {
      const std::size_t k = rng.below(held.size());
      auto [base, order] = held[k];
      held.erase(held.begin() + static_cast<long>(k));
      for (std::uint64_t i = 0; i < (1ull << order); ++i) owned.erase(base + i);
      b.free(base, order);
    }
    ASSERT_EQ(b.free_frames(), kFrames - owned.size());
  }
  for (auto [base, order] : held) b.free(base, order);
  EXPECT_EQ(b.free_frames(), kFrames);
  EXPECT_EQ(b.largest_available_order(), int(BuddyAllocator::kMaxOrder));
}

PhysMemConfig small_pm(double noise = 0.03) {
  PhysMemConfig cfg;
  cfg.bytes = kFrames * kPageSize;
  cfg.noise_fraction = noise;
  cfg.seed = 99;
  return cfg;
}

TEST(PhysMem, NoiseInjectionFragmentsPool) {
  PhysicalMemory pm(small_pm(0.05));
  const auto expected = static_cast<std::uint64_t>(0.05 * kFrames);
  EXPECT_EQ(pm.stats().get("noise_frames"), expected);
  EXPECT_EQ(pm.free_frames(), kFrames - expected);
  // With 5% scattered noise, pristine 2 MB blocks are essentially gone.
  EXPECT_LT(pm.buddy().largest_available_order(), 10);
}

TEST(PhysMem, FrameUseTracking) {
  PhysicalMemory pm(small_pm(0.0));
  const Pfn d = pm.alloc_frame(FrameUse::kData);
  const Pfn t = pm.alloc_frame(FrameUse::kPageTable);
  EXPECT_EQ(pm.use_of(d), FrameUse::kData);
  EXPECT_TRUE(pm.is_page_table_frame(t));
  EXPECT_FALSE(pm.is_page_table_frame(d));
  pm.free_frame(d);
  EXPECT_EQ(pm.use_of(d), FrameUse::kFree);
}

TEST(PhysMem, HugeAllocWithoutNoiseIsDirect) {
  PhysicalMemory pm(small_pm(0.0));
  const auto r = pm.alloc_huge();
  EXPECT_FALSE(r.fell_back);
  EXPECT_FALSE(r.used_compaction);
  EXPECT_EQ(r.base % 512, 0u);
  EXPECT_EQ(r.cost, pm.costs().fault_2m_base());
  pm.free_huge(r.base);
}

TEST(PhysMem, HugeAllocCompactsThroughNoise) {
  PhysicalMemory pm(small_pm(0.05));
  // Direct order-9 blocks may or may not survive the noise injection.
  const auto r = pm.alloc_huge();
  ASSERT_FALSE(r.fell_back);
  if (r.used_compaction) {
    EXPECT_GT(r.frames_moved, 0u);
    EXPECT_GT(r.cost, pm.costs().fault_2m_base());
  }
  // The block is real: all 512 frames owned.
  for (std::uint64_t i = 0; i < 512; ++i)
    EXPECT_EQ(pm.use_of(r.base + i), FrameUse::kHugePart);
  pm.free_huge(r.base);
}

TEST(PhysMem, CompactionRelocatesDataWithHook) {
  PhysicalMemory pm(small_pm(0.0));
  // Fill the pool with data, then free a scattered third of it: every 2 MB
  // window still holds data, so a huge allocation must compact and the
  // relocation hook must fire for each moved data frame.
  std::vector<Pfn> data;
  while (pm.free_frames() > 0) data.push_back(pm.alloc_frame(FrameUse::kData));
  std::set<Pfn> freed;
  for (std::size_t i = 0; i < data.size(); i += 3) {
    pm.free_frame(data[i]);
    freed.insert(data[i]);
  }
  ASSERT_FALSE(pm.buddy().can_alloc(9)) << "setup must fragment";

  std::uint64_t relocations = 0;
  pm.set_relocate_hook([&](Pfn oldf, Pfn newf) {
    ++relocations;
    EXPECT_NE(oldf, newf);
    EXPECT_EQ(pm.use_of(newf), FrameUse::kData);
  });
  const auto r = pm.alloc_huge();
  pm.set_relocate_hook(nullptr);
  ASSERT_FALSE(r.fell_back);
  EXPECT_TRUE(r.used_compaction);
  EXPECT_EQ(relocations, r.frames_moved);
  EXPECT_GT(relocations, 0u);
  EXPECT_GT(r.cost, pm.costs().fault_2m_base());
}

TEST(PhysMem, TableBlockAllocatesContiguousAndTagged) {
  PhysicalMemory pm(small_pm(0.04));
  const Pfn base = pm.alloc_table_block(9);  // needs compaction under noise
  for (std::uint64_t i = 0; i < 512; ++i)
    EXPECT_TRUE(pm.is_page_table_frame(base + i));
  pm.free_table_block(base, 9);
  EXPECT_FALSE(pm.is_page_table_frame(base));
}

TEST(PhysMem, HugeFallbackWhenMemoryExhausted) {
  PhysicalMemory pm(small_pm(0.0));
  // Drain almost everything.
  std::vector<Pfn> frames;
  while (pm.free_frames() > 256) frames.push_back(pm.alloc_frame(FrameUse::kData));
  const auto r = pm.alloc_huge();
  EXPECT_TRUE(r.fell_back);
  for (Pfn f : frames) pm.free_frame(f);
}

TEST(OsCosts, FaultCostOrdering) {
  const OsCosts c;
  EXPECT_GT(c.fault_2m_base(), 30 * c.fault_4k())
      << "2 MB faults must be far heavier than 4 KB faults";
}

}  // namespace
}  // namespace ndp
