// Unit tests for the common substrate: RNG, Zipf, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace ndp {
namespace {

TEST(Types, PageArithmetic) {
  EXPECT_EQ(vpn_of(0x12345678), 0x12345ull);
  EXPECT_EQ(page_offset(0x12345678), 0x678ull);
  EXPECT_EQ(frame_base(0x12345), 0x12345000ull);
  EXPECT_EQ(pfn_of(0x12345FFF), 0x12345ull);
  EXPECT_EQ(line_of(0x1000), 0x40ull);
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kHugePageSize, 2u * 1024 * 1024);
}

TEST(Types, RadixIndexSplitsVpn) {
  // vpn bits [35:27][26:18][17:9][8:0] map to levels 4..1.
  const Vpn vpn = (0x1ABull << 27) | (0x0CDull << 18) | (0x0EFull << 9) | 0x123;
  EXPECT_EQ(radix_index(vpn, 4), 0x1ABu);
  EXPECT_EQ(radix_index(vpn, 3), 0x0CDu);
  EXPECT_EQ(radix_index(vpn, 2), 0x0EFu);
  EXPECT_EQ(radix_index(vpn, 1), 0x123u);
}

TEST(Types, FlatIndexIs18Bits) {
  const Vpn vpn = (7ull << 18) | 0x2FFFF;
  EXPECT_EQ(flat_index(vpn), 0x2FFFFu);
  EXPECT_EQ(flat_index(0x40000), 0u);  // bit 18 not part of the index
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Splitmix, DeterministicAndDispersed) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions on consecutive inputs
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, SamplesInRangeAndSkewed) {
  const double s = GetParam();
  const std::uint64_t n = 10000;
  Zipf z(n, s);
  Rng rng(42);
  std::uint64_t top_decile = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = z(rng);
    ASSERT_LT(v, n);
    if (v < n / 10) ++top_decile;
  }
  // Any Zipf with s > 0 concentrates more than 10% of mass in the first
  // decile of ranks.
  EXPECT_GT(top_decile, 20000 / 10);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfParamTest,
                         ::testing::Values(0.3, 0.55, 0.8, 0.99, 1.0, 1.2));

TEST(Zipf, RankZeroIsHottest) {
  Zipf z(1000, 0.9);
  Rng rng(1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z(rng)];
  EXPECT_GT(counts[0], counts[500]);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Zipf z(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(Average, TracksMeanMinMax) {
  Average a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  a.add(10);
  a.add(20);
  a.add(0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(Average, MergeIsExact) {
  Average a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 60; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Average, MergeWithEmptySides) {
  Average a, empty;
  a.add(5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Average e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 1u);
  EXPECT_DOUBLE_EQ(e2.mean(), 5.0);
}

TEST(Histogram, BucketsPowersOfTwo) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1000);
  EXPECT_EQ(h.summary().count(), 4u);
  EXPECT_DOUBLE_EQ(h.summary().max(), 1000.0);
  std::uint64_t total = 0;
  for (auto c : h.buckets()) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<std::uint64_t>(i));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
  EXPECT_GE(h.percentile(0.99), 512u);
}

TEST(StatSet, CountersAndRates) {
  StatSet s;
  s.inc("hit", 3);
  s.inc("miss");
  EXPECT_EQ(s.get("hit"), 3u);
  EXPECT_EQ(s.get("absent"), 0u);
  EXPECT_DOUBLE_EQ(s.rate("miss", "hit"), 0.25);
  EXPECT_DOUBLE_EQ(s.rate("a", "b"), 0.0);
}

TEST(StatSet, MergeSumsAndCombines) {
  StatSet a, b;
  a.inc("x", 1);
  b.inc("x", 2);
  b.inc("y", 5);
  a.add_sample("lat", 10);
  b.add_sample("lat", 30);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 3u);
  EXPECT_EQ(a.get("y"), 5u);
  EXPECT_DOUBLE_EQ(a.average("lat")->mean(), 20.0);
}

TEST(StatSet, HandlesSurviveClearAndStayInvisibleUntilTouched) {
  StatSet s;
  StatSet::Counter* c = s.counter("fault");
  StatSet::Sample* lat = s.sample("lat");
  // Resolving a handle materializes nothing: the key set is still what the
  // lazily-created string API would have produced.
  EXPECT_EQ(s.counters().count("fault"), 0u);
  EXPECT_EQ(s.averages().count("lat"), 0u);
  EXPECT_EQ(s.average("lat"), nullptr);

  c->add(3);
  lat->add(7.0);
  EXPECT_EQ(s.get("fault"), 3u);
  EXPECT_EQ(s.counters().at("fault"), 3u);
  EXPECT_DOUBLE_EQ(s.average("lat")->mean(), 7.0);

  // clear() zeroes in place: the same handle keeps working afterwards and
  // the cell drops back out of the reported key set until touched again.
  s.clear();
  EXPECT_EQ(s.get("fault"), 0u);
  EXPECT_EQ(s.counters().count("fault"), 0u);
  EXPECT_EQ(s.average("lat"), nullptr);
  c->add();
  EXPECT_EQ(s.get("fault"), 1u);
  EXPECT_EQ(s.counters().at("fault"), 1u);
}

TEST(StatSet, LiveZeroCounterStaysVisible) {
  // inc(name, 0) materializes the key with value 0 (reclaim stats rely on
  // this); merge() must propagate it too.
  StatSet s;
  s.inc("freed", 0);
  EXPECT_EQ(s.counters().count("freed"), 1u);
  StatSet t;
  t.merge(s);
  EXPECT_EQ(t.counters().count("freed"), 1u);
  EXPECT_EQ(t.counters().at("freed"), 0u);
}

TEST(Table, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::pct(0.345)});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("34.5%"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("alpha,1.50"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace ndp
