// Property-based tests: randomized sequences checked against reference
// models / invariants, parameterized over configurations.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "common/rng.h"
#include "core/flat_page_table.h"
#include "dram/dram.h"
#include "os/phys_mem.h"
#include "translate/ech_page_table.h"
#include "translate/radix_page_table.h"
#include "translate/tlb.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg(std::uint64_t mb = 128) {
  PhysMemConfig cfg;
  cfg.bytes = mb << 20;
  cfg.noise_fraction = 0.0;
  cfg.seed = 13;
  return cfg;
}

// Every page-table design must behave as the same map<vpn, pfn> under random
// map/remap/unmap/lookup sequences.
enum class TableKind { kRadix4, kFlat, kEch };

class PageTablePropertyTest : public ::testing::TestWithParam<TableKind> {
 protected:
  std::unique_ptr<PageTable> make(PhysicalMemory& pm) {
    switch (GetParam()) {
      case TableKind::kRadix4: return std::make_unique<RadixPageTable>(pm, 1);
      case TableKind::kFlat: return std::make_unique<FlatPageTable>(pm);
      case TableKind::kEch: return std::make_unique<EchPageTable>(pm);
    }
    return nullptr;
  }
};

TEST_P(PageTablePropertyTest, MatchesReferenceMapUnderRandomOps) {
  PhysicalMemory pm(pm_cfg());
  auto pt = make(pm);
  std::unordered_map<Vpn, Pfn> ref;
  Rng rng(1234);
  // Cluster vpns so radix nodes get reused (more interesting paths).
  auto random_vpn = [&] {
    return (rng.below(8) << 18) | rng.below(4096);
  };
  for (int it = 0; it < 30000; ++it) {
    const Vpn vpn = random_vpn();
    switch (rng.below(4)) {
      case 0: {  // map
        const Pfn pfn = 1 + rng.below(1u << 20);
        pt->map(vpn, pfn);
        ref[vpn] = pfn;
        break;
      }
      case 1: {  // unmap
        const bool had = ref.erase(vpn) > 0;
        EXPECT_EQ(pt->unmap(vpn), had);
        break;
      }
      case 2: {  // remap
        const Pfn pfn = 1 + rng.below(1u << 20);
        const bool had = ref.count(vpn) > 0;
        EXPECT_EQ(pt->remap(vpn, pfn), had);
        if (had) ref[vpn] = pfn;
        break;
      }
      default: {  // lookup
        const auto got = pt->lookup(vpn);
        const auto it2 = ref.find(vpn);
        if (it2 == ref.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it2->second);
        }
      }
    }
  }
  // Final sweep: every reference entry resolves, walk agrees with lookup.
  for (const auto& [vpn, pfn] : ref) {
    ASSERT_EQ(*pt->lookup(vpn), pfn);
    const WalkPath p = pt->walk(vpn);
    ASSERT_TRUE(p.mapped);
    EXPECT_EQ(p.pfn, pfn);
  }
}

TEST_P(PageTablePropertyTest, WalkAddressesAreUniquePerLookup) {
  PhysicalMemory pm(pm_cfg());
  auto pt = make(pm);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) pt->map(rng.below(1 << 20), i + 1);
  for (int i = 0; i < 500; ++i) {
    const WalkPath p = pt->walk(rng.below(1 << 20));
    std::map<PhysAddr, int> seen;
    for (const WalkStep& s : p.steps) ++seen[s.pte_addr];
    for (const auto& [addr, n] : seen) {
      (void)addr;
      EXPECT_EQ(n, 1) << "a walk never reads the same PTE twice";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tables, PageTablePropertyTest,
                         ::testing::Values(TableKind::kRadix4, TableKind::kFlat,
                                           TableKind::kEch),
                         [](const ::testing::TestParamInfo<TableKind>& info) {
                           switch (info.param) {
                             case TableKind::kRadix4: return "Radix4";
                             case TableKind::kFlat: return "Flat";
                             case TableKind::kEch: return "ECH";
                           }
                           return "?";
                         });

// TLB against a reference model (ignoring capacity: the reference only
// checks that hits return correct frames, never wrong translations).
TEST(TlbProperty, NeverReturnsWrongFrame) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 64, .ways = 4, .latency = 1});
  std::unordered_map<Vpn, Pfn> ref;
  Rng rng(99);
  for (int it = 0; it < 50000; ++it) {
    const Vpn vpn = rng.below(4096);
    const VirtAddr va = (vpn << kPageShift) | rng.below(kPageSize);
    if (rng.chance(0.5)) {
      const Pfn pfn = rng.below(1 << 22);
      tlb.insert(va, pfn, kPageShift);
      ref[vpn] = pfn;
    } else {
      const auto e = tlb.lookup(va);
      if (e.has_value()) {
        ASSERT_TRUE(ref.count(vpn)) << "TLB invented a translation";
        EXPECT_EQ(e->pfn, ref[vpn]) << "stale TLB entry served";
      }
    }
  }
}

// DRAM timing invariants under random traffic.
class DramPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DramPropertyTest, FinishAlwaysAfterMinimumLatency) {
  const DramTiming t = std::string(GetParam()) == "hbm2"
                           ? DramTiming::hbm2()
                           : DramTiming::ddr4_2400();
  Dram d(t);
  Rng rng(3);
  Cycle now = 0;
  for (int i = 0; i < 30000; ++i) {
    now += rng.below(20);
    const PhysAddr pa = rng.below(1ull << 33) & ~(kCacheLineSize - 1);
    const DramResult r = d.access(
        now, pa, rng.chance(0.3) ? AccessType::kWrite : AccessType::kRead,
        rng.chance(0.5) ? AccessClass::kMetadata : AccessClass::kData);
    // Lower bound: CAS + burst + static path (row hit, no queue).
    ASSERT_GE(r.finish - now, t.t_cl + t.t_burst + t.t_static);
    // Upper bound sanity: queue delay is bounded by the backlog the closed
    // loop can build — for this single stream, a handful of tRCs.
    ASSERT_LE(r.queue_delay, 64 * t.t_rc);
  }
  EXPECT_EQ(d.counters().access, 30000u);
  EXPECT_EQ(d.counters().row_hit + d.counters().row_miss, 30000u);
}

INSTANTIATE_TEST_SUITE_P(Timings, DramPropertyTest,
                         ::testing::Values("hbm2", "ddr4"));

// Buddy + physical memory: huge blocks never overlap data, table tagging is
// exact, and everything is released.
TEST(PhysMemProperty, RandomMixedAllocationStress) {
  PhysicalMemory pm(pm_cfg(96));
  Rng rng(21);
  std::vector<Pfn> frames;
  std::vector<Pfn> huges;
  std::vector<std::pair<Pfn, unsigned>> blocks;
  const std::uint64_t initial_free = pm.free_frames();
  for (int it = 0; it < 4000; ++it) {
    const auto dice = rng.below(100);
    if (dice < 50) {
      frames.push_back(pm.alloc_frame(rng.chance(0.3) ? FrameUse::kPageTable
                                                      : FrameUse::kData));
    } else if (dice < 65 && pm.free_frames() > 2048) {
      const auto r = pm.alloc_huge();
      if (!r.fell_back) huges.push_back(r.base);
    } else if (dice < 72 && pm.free_frames() > 2048) {
      blocks.push_back({pm.alloc_table_block(6), 6});
    } else if (dice < 86 && !frames.empty()) {
      const auto k = rng.below(frames.size());
      pm.free_frame(frames[k]);
      frames.erase(frames.begin() + static_cast<long>(k));
    } else if (dice < 93 && !huges.empty()) {
      pm.free_huge(huges.back());
      huges.pop_back();
    } else if (!blocks.empty()) {
      pm.free_table_block(blocks.back().first, blocks.back().second);
      blocks.pop_back();
    }
  }
  for (Pfn f : frames) pm.free_frame(f);
  for (Pfn h : huges) pm.free_huge(h);
  for (auto [b, o] : blocks) pm.free_table_block(b, o);
  EXPECT_EQ(pm.free_frames(), initial_free);
}

// Zipf + permutation: the workload-side scattering must preserve skew.
TEST(WorkloadProperty, PermutedZipfKeepsHotSetSmall) {
  Zipf z(1u << 20, 0.8);
  Rng rng(4);
  std::unordered_map<std::uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t rank = z(rng);
    const std::uint64_t id = splitmix64(rank * 0x9E3779B97F4A7C15ull) % (1u << 20);
    ++counts[id];
  }
  // Hot ids exist (skew preserved through the permutation)...
  int max_count = 0;
  for (const auto& [id, c] : counts) {
    (void)id;
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, n / 2000);
  // ...but are scattered across the id space, not clustered at low ids.
  std::uint64_t low_half_mass = 0;
  for (const auto& [id, c] : counts)
    if (id < (1u << 19)) low_half_mass += static_cast<std::uint64_t>(c);
  EXPECT_NEAR(static_cast<double>(low_half_mass) / n, 0.5, 0.05);
}

}  // namespace
}  // namespace ndp
