// Post-run engine invariants, across the built-in mechanism x workload
// matrix.
//
// These are the accounting identities aggressive hot-path surgery must not
// bend: per-core instruction/cycle bookkeeping, the wall-time definition,
// and the merged-StatSet-equals-sum-of-component-snapshots contract the
// reporting layer is built on. The golden suite pins exact numbers; this
// suite pins the *algebra*, so it also holds for new mechanisms and
// workloads the goldens have never seen.
#include <gtest/gtest.h>

#include "core/mechanism_registry.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "workloads/workload_registry.h"

namespace ndp {
namespace {

RunSpec small_spec(const std::string& mech, const std::string& workload,
                   unsigned cores) {
  return RunSpecBuilder()
      .system(SystemKind::kNdp)
      .cores(cores)
      .mechanism(mech)
      .workload(workload)
      .instructions(5000)
      .scale(0.02)
      .build();
}

void check_core_accounting(const RunResult& r) {
  Cycle max_cycles = 0;
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const CoreStats& cs = r.cores[c];
    SCOPED_TRACE("core " + std::to_string(c));
    // The engine diagnoses all-warmup/zero-work cores instead of returning
    // them, so every reported core did real counted work.
    EXPECT_GT(cs.instructions, 0u);
    EXPECT_GT(cs.memrefs, 0u);
    EXPECT_LT(cs.start, cs.end);
    EXPECT_GT(cs.cycles(), 0u);
    // Exact identity: every counted instruction is either a memory
    // reference or part of a gap preceding one.
    EXPECT_EQ(cs.instructions, cs.memrefs + cs.gap_cycles);
    max_cycles = std::max(max_cycles, cs.cycles());
  }
  // The run's wall time is the slowest core's counted window.
  EXPECT_EQ(r.total_cycles, max_cycles);
  EXPECT_GE(r.translation_fraction, 0.0);
  EXPECT_LE(r.translation_fraction, 1.0);
  EXPECT_GE(r.l1_tlb_miss_rate, 0.0);
  EXPECT_LE(r.l1_tlb_miss_rate, 1.0);
  EXPECT_GE(r.pte_access_share, 0.0);
  EXPECT_LE(r.pte_access_share, 1.0);
  // Engine op counters are live: every event was popped after a push.
  EXPECT_GT(r.host.events, 0u);
  EXPECT_EQ(r.host.events, r.host.heap_pushes);
  EXPECT_GT(r.host.heap_peak, 0u);
}

TEST(EngineInvariants, AccountingHoldsAcrossMechanismMatrix) {
  for (const MechanismDescriptor& d :
       MechanismRegistry::instance().descriptors()) {
    for (const char* wl : {"gups", "pr"}) {
      SCOPED_TRACE(d.name + std::string(" / ") + wl);
      const RunResult r = run_experiment(small_spec(d.name, wl, 2));
      check_core_accounting(r);
    }
  }
}

// With one memory op in flight per core, counted op spans are disjoint and
// contiguous, so the per-core cycle decomposition brackets the wall time:
//   translation + data <= cycles() <= translation + data + gap.
// (Under MLP the spans overlap and the sum legitimately exceeds the wall
// time, which is why this identity is pinned at mlp=1 only.)
TEST(EngineInvariants, Mlp1CycleDecompositionBracketsWallTime) {
  SystemConfig sc = SystemConfig::ndp(2, Mechanism::kRadix);
  sc.mlp = 1;
  System sys(sc);
  WorkloadParams wp;
  wp.num_cores = 2;
  wp.scale = 0.02;
  auto trace = WorkloadRegistry::instance().at("gups").make(wp);
  EngineConfig ec;
  ec.instructions_per_core = 5000;
  ec.warmup_refs_per_core = 300;
  Engine engine(sys, *trace, ec);
  const RunResult r = engine.run();
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const CoreStats& cs = r.cores[c];
    SCOPED_TRACE("core " + std::to_string(c));
    const Cycle busy = cs.translation_cycles + cs.data_cycles;
    EXPECT_LE(busy, cs.cycles());
    EXPECT_LE(cs.cycles(), busy + cs.gap_cycles);
  }
}

// The merged StatSet the engine reports must equal the sum of the component
// snapshots — prefixing and merging may rename, never drop or double-count.
TEST(EngineInvariants, MergedStatsEqualComponentSums) {
  SystemConfig sc = SystemConfig::ndp(2, Mechanism::kRadix);
  System sys(sc);
  WorkloadParams wp;
  wp.num_cores = 2;
  wp.scale = 0.02;
  auto trace = WorkloadRegistry::instance().at("gups").make(wp);
  EngineConfig ec;
  ec.instructions_per_core = 5000;
  ec.warmup_refs_per_core = 300;
  Engine engine(sys, *trace, ec);
  const RunResult r = engine.run();

  std::uint64_t mmu_walks = 0, mmu_l1_hits = 0, tlb_l1_hits = 0,
                tlb_l2_misses = 0, walker_walks = 0, walker_accesses = 0,
                l1_data_hits = 0;
  std::uint64_t walk_lat_count = 0;
  double walk_lat_sum = 0.0;
  for (unsigned c = 0; c < sys.num_cores(); ++c) {
    const Mmu& m = sys.mmu(c);
    mmu_walks += m.counters().walks;
    mmu_l1_hits += m.counters().l1_hits;
    tlb_l1_hits += m.l1_dtlb().counters().hits;
    tlb_l2_misses += m.l2_tlb().counters().misses;
    walker_walks += m.walker().counters().walks;
    walker_accesses += m.walker().counters().mem_accesses;
    walk_lat_count += m.walker().counters().latency.count();
    walk_lat_sum += m.walker().counters().latency.sum();
    l1_data_hits += sys.mem().l1(c).counters().hits(AccessClass::kData);
  }
  EXPECT_EQ(r.stats.get("mmu.walks"), mmu_walks);
  EXPECT_EQ(r.stats.get("mmu.l1_hit"), mmu_l1_hits);
  EXPECT_EQ(r.stats.get("tlb.l1d.hit"), tlb_l1_hits);
  EXPECT_EQ(r.stats.get("tlb.l2.miss"), tlb_l2_misses);
  EXPECT_EQ(r.stats.get("walker.walks"), walker_walks);
  EXPECT_EQ(r.stats.get("walker.mem_accesses"), walker_accesses);
  EXPECT_EQ(r.stats.get("l1.hit.data"), l1_data_hits);
  EXPECT_EQ(r.stats.get("mem.access"), sys.mem().counters().access);
  EXPECT_EQ(r.stats.get("dram.access"), sys.mem().dram().counters().access);

  const Average* lat = r.stats.average("walker.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), walk_lat_count);
  EXPECT_DOUBLE_EQ(lat->sum(), walk_lat_sum);

  // Collecting again is idempotent: same merged key set, same values.
  const StatSet again = sys.collect_stats();
  EXPECT_EQ(again.counters(), r.stats.counters());
}

// A deterministic, gap-free page-striding stream. With mlp=1 and zero gaps
// the engine strictly alternates issue/complete, so a run with warmup K and
// budget N-K consumes exactly the same N references as a run with warmup 0
// and budget N — only the counted window differs.
class PageStrideTrace : public TraceSource {
 public:
  explicit PageStrideTrace(unsigned cores) : pos_(cores, 0) {}
  std::string name() const override { return "page_stride"; }
  std::string suite() const override { return "test"; }
  std::uint64_t paper_dataset_bytes() const override { return kBytes; }
  std::uint64_t dataset_bytes() const override { return kBytes; }
  std::vector<VmRegion> regions() const override {
    return {VmRegion{"stride", kBase, kBytes, true}};
  }
  MemRef next(unsigned core) override {
    const std::uint64_t i = pos_[core]++;
    const VirtAddr va = kBase + (i * 4096 + core * 64) % kBytes;
    return MemRef{0, va, AccessType::kRead};
  }

 private:
  static constexpr VirtAddr kBase = 0x10000000;
  static constexpr std::uint64_t kBytes = 4ull << 20;
  std::vector<std::uint64_t> pos_;
};

RunResult run_stride(std::uint64_t budget, std::uint64_t warmup) {
  SystemConfig sc = SystemConfig::ndp(1, Mechanism::kRadix);
  sc.mlp = 1;
  System sys(sc);
  PageStrideTrace trace(1);
  EngineConfig ec;
  ec.instructions_per_core = budget;
  ec.warmup_refs_per_core = warmup;
  Engine engine(sys, trace, ec);
  return engine.run();
}

// Warmup and measured accesses share one access function: the warmup window
// is the *same* issue/step/complete path with stat recording gated off, not
// a separate untimed loop. Pinned observably: splitting an N-reference run
// into warmup K + counted N-K leaves the absolute completion time of the
// final reference unchanged (same event trajectory), and every system-level
// flow counter splits exactly into prefix + suffix. If warmup ever grew its
// own "fast" path, the timelines and the conservation sums would diverge.
TEST(EngineInvariants, WarmupSharesTheMeasuredAccessPath) {
  constexpr std::uint64_t kN = 2000, kK = 700;
  const RunResult full = run_stride(kN, 0);        // refs 1..N, all counted
  const RunResult split = run_stride(kN - kK, kK); // refs 1..N, count K+1..N
  const RunResult prefix = run_stride(kK, 0);      // refs 1..K, all counted

  ASSERT_EQ(full.cores.size(), 1u);
  ASSERT_EQ(split.cores.size(), 1u);
  // Identical timeline: the last reference finishes at the same absolute
  // cycle whether the first K references were warmup or counted.
  EXPECT_EQ(split.cores[0].end, full.cores[0].end);
  EXPECT_EQ(split.cores[0].instructions, kN - kK);
  EXPECT_EQ(split.cores[0].memrefs, full.cores[0].memrefs - kK);

  // Flow conservation across the warmup reset: counters over refs 1..N
  // equal counters over 1..K plus counters over K+1..N.
  for (const char* key :
       {"mem.access", "dram.access", "tlb.l1d.hit", "tlb.l1d.miss",
        "tlb.l2.hit", "tlb.l2.miss", "mmu.walks", "walker.mem_accesses"}) {
    SCOPED_TRACE(key);
    EXPECT_EQ(full.stats.get(key),
              prefix.stats.get(key) + split.stats.get(key));
  }
}

// Zero-instruction runs are a diagnosed configuration error, not a silent
// 0-cycle result poisoning geomean speedup tables downstream.
TEST(EngineInvariants, ZeroInstructionBudgetIsDiagnosed) {
  SystemConfig sc = SystemConfig::ndp(1, Mechanism::kRadix);
  System sys(sc);
  WorkloadParams wp;
  wp.num_cores = 1;
  wp.scale = 0.02;
  auto trace = WorkloadRegistry::instance().at("gups").make(wp);
  EngineConfig ec;
  ec.instructions_per_core = 0;
  EXPECT_THROW(Engine(sys, *trace, ec), std::invalid_argument);
}

}  // namespace
}  // namespace ndp
