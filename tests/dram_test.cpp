// Unit tests for the DRAM bank/channel timing model.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dram/dram.h"

namespace ndp {
namespace {

DramTiming tiny_timing() {
  DramTiming t = DramTiming::hbm2();
  return t;
}

TEST(DramTiming, PresetsAreSane) {
  const DramTiming ddr = DramTiming::ddr4_2400();
  const DramTiming hbm = DramTiming::hbm2();
  EXPECT_GT(ddr.t_static, hbm.t_static) << "off-chip path must cost more";
  EXPECT_GT(ddr.t_burst, hbm.t_burst) << "HBM bus is wider";
  EXPECT_GT(ddr.row_bytes, hbm.row_bytes);
  EXPECT_GT(hbm.t_rc, hbm.t_rcd);
}

TEST(Dram, FirstAccessLatencyIsRowMissWithoutPrecharge) {
  Dram d(tiny_timing());
  const DramResult r = d.access(100, 0x10000, AccessType::kRead, AccessClass::kData);
  const DramTiming& t = d.timing();
  // Idle bank: activate + CAS, no precharge.
  EXPECT_EQ(r.finish, 100 + t.t_rcd + t.t_cl + t.t_burst + t.t_static);
  EXPECT_FALSE(r.row_hit);
  EXPECT_EQ(r.queue_delay, 0u);
}

// Find an address in the same (channel, bank) as `pa` but a different row
// (the mapping is XOR-hashed, so search rather than compute).
PhysAddr same_bank_other_row(const Dram& d, PhysAddr pa) {
  for (PhysAddr cand = pa + kCacheLineSize;; cand += kCacheLineSize) {
    if (d.channel_of(cand) == d.channel_of(pa) &&
        d.bank_of(cand) == d.bank_of(pa) && d.row_of(cand) != d.row_of(pa))
      return cand;
  }
}

TEST(Dram, RowHitIsFasterThanConflict) {
  Dram d(tiny_timing());
  const PhysAddr pa = 0x40000;
  const DramResult first = d.access(0, pa, AccessType::kRead, AccessClass::kData);
  // Same line again, long after the bank freed up: row hit.
  const Cycle later = first.finish + 10000;
  const DramResult hit = d.access(later, pa, AccessType::kRead, AccessClass::kData);
  EXPECT_TRUE(hit.row_hit);
  // A different row in the same bank: precharge + activate.
  const PhysAddr conflict_pa = same_bank_other_row(d, pa);
  const DramResult miss =
      d.access(hit.finish + 10000, conflict_pa, AccessType::kRead, AccessClass::kData);
  EXPECT_FALSE(miss.row_hit);
  EXPECT_GT(miss.finish - (hit.finish + 10000), hit.finish - later);
}

TEST(Dram, BankOccupiedForRowCycleTime) {
  Dram d(tiny_timing());
  const PhysAddr pa = 0x40000;
  const PhysAddr pa2 = same_bank_other_row(d, pa);
  d.access(0, pa, AccessType::kRead, AccessClass::kData);
  // Immediately after: the second activate must wait for tRC.
  const DramResult r2 = d.access(1, pa2, AccessType::kRead, AccessClass::kData);
  EXPECT_GE(r2.queue_delay, d.timing().t_rc - 1);
}

TEST(Dram, ParallelAccessesToDifferentBanksDontSerialize) {
  Dram d(tiny_timing());
  // Find two addresses on different channels.
  PhysAddr a = 0, b = kCacheLineSize;
  while (d.channel_of(b) == d.channel_of(a)) b += kCacheLineSize;
  const DramResult ra = d.access(0, a, AccessType::kRead, AccessClass::kData);
  const DramResult rb = d.access(0, b, AccessType::kRead, AccessClass::kData);
  EXPECT_EQ(ra.queue_delay, 0u);
  EXPECT_EQ(rb.queue_delay, 0u);
}

TEST(Dram, ChannelServiceSlotSerializesSameChannel) {
  Dram d(tiny_timing());
  // Two different banks on the same channel, back to back.
  PhysAddr a = 0;
  PhysAddr b = kCacheLineSize;
  while (d.channel_of(b) != d.channel_of(a) || d.bank_of(b) == d.bank_of(a))
    b += kCacheLineSize;
  d.access(0, a, AccessType::kRead, AccessClass::kData);
  const DramResult rb = d.access(0, b, AccessType::kRead, AccessClass::kData);
  EXPECT_GE(rb.queue_delay, d.timing().t_service);
}

TEST(Dram, AddressMappingCoversAllBanksEvenly) {
  Dram d(tiny_timing());
  std::map<std::pair<unsigned, unsigned>, int> hits;
  Rng rng(5);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const PhysAddr pa = rng.below(1ull << 32) & ~(kCacheLineSize - 1);
    ++hits[{d.channel_of(pa), d.bank_of(pa)}];
  }
  const int banks = static_cast<int>(d.timing().channels * d.timing().banks_per_channel);
  EXPECT_EQ(static_cast<int>(hits.size()), banks);
  for (const auto& [k, c] : hits) {
    (void)k;
    EXPECT_GT(c, n / banks / 3);
    EXPECT_LT(c, n / banks * 3);
  }
}

TEST(Dram, PowerOfTwoStridesDontAliasOneBank) {
  // The regression that motivated XOR bank hashing: binary-search midpoints
  // (power-of-2-ish strides) must spread over banks.
  Dram d(tiny_timing());
  std::map<std::pair<unsigned, unsigned>, int> hits;
  const int n = 1024;
  for (int i = 0; i < n; ++i) {
    const PhysAddr pa = static_cast<PhysAddr>(i) * (1ull << 16);  // 64 KB stride
    ++hits[{d.channel_of(pa), d.bank_of(pa)}];
  }
  const int banks = static_cast<int>(d.timing().channels * d.timing().banks_per_channel);
  EXPECT_GT(static_cast<int>(hits.size()), banks / 2);
  for (const auto& [k, c] : hits) {
    (void)k;
    EXPECT_LT(c, n / 4) << "stride pattern collapsed onto one bank";
  }
}

TEST(Dram, MonotoneArrivalsGiveMonotoneFinishPerBank) {
  Dram d(tiny_timing());
  const PhysAddr pa = 0x123400;
  Cycle prev = 0;
  for (int i = 0; i < 50; ++i) {
    const DramResult r =
        d.access(static_cast<Cycle>(i) * 3, pa, AccessType::kRead, AccessClass::kData);
    EXPECT_GE(r.finish, prev);
    prev = r.finish;
  }
}

TEST(Dram, CountersTrackAccessMix) {
  Dram d(tiny_timing());
  d.access(0, 0x1000, AccessType::kRead, AccessClass::kData);
  d.access(10, 0x2000, AccessType::kWrite, AccessClass::kMetadata);
  d.access(20, 0x3000, AccessType::kRead, AccessClass::kMetadata);
  EXPECT_EQ(d.counters().access, 3u);
  EXPECT_EQ(d.counters().reads, 2u);
  EXPECT_EQ(d.counters().writes, 1u);
  EXPECT_EQ(d.counters().metadata, 2u);
  EXPECT_EQ(d.counters().data, 1u);
  const StatSet s = d.snapshot();
  EXPECT_EQ(s.get("access"), 3u);
  d.reset_counters();
  EXPECT_EQ(d.counters().access, 0u);
}

TEST(Dram, RandomCapacityMatchesGeometry) {
  const Dram d(tiny_timing());
  const DramTiming& t = d.timing();
  EXPECT_DOUBLE_EQ(d.random_capacity_per_cycle(),
                   double(t.channels * t.banks_per_channel) / double(t.t_rc));
}

}  // namespace
}  // namespace ndp
