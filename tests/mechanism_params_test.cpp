// Mechanism-parameterization contract: `name(key=value,...)` spec strings
// resolve case-insensitively against each mechanism's typed schema, bad
// specs fail with schema-listing/did-you-mean diagnostics, canonical
// spellings are stable, parameters flow through RunSpec/RunConfig (string
// and structured forms) into per-cell result metadata, and the built-ins'
// knobs actually change the modelled hardware.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/mechanism.h"
#include "core/mechanism_registry.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"
#include "translate/radix_page_table.h"

namespace ndp {
namespace {

MechanismRegistry& reg() { return MechanismRegistry::instance(); }

TEST(MechanismParams, BareNameResolvesToDefaults) {
  const MechanismSpec s = reg().resolve("ech");
  ASSERT_NE(s.descriptor, nullptr);
  EXPECT_EQ(s.descriptor->name, "ECH");
  EXPECT_EQ(s.canonical, "ECH");
  EXPECT_EQ(s.params.get_uint("ways"), 3u);
  EXPECT_EQ(s.params.get_uint("probes"), 0u);
}

TEST(MechanismParams, SpecStringsParseCaseInsensitivelyWithWhitespace) {
  const MechanismSpec s = reg().resolve("  Ech ( WAYS = 4 , Probes=2 )  ");
  EXPECT_EQ(s.canonical, "ECH(ways=4,probes=2)");
  EXPECT_EQ(s.params.get_uint("ways"), 4u);
  EXPECT_EQ(s.params.get_uint("probes"), 2u);
  // Aliases resolve with parameters too.
  EXPECT_EQ(reg().resolve("elastic-cuckoo(ways=8)").canonical, "ECH(ways=8)");
}

TEST(MechanismParams, CanonicalSpellingDropsDefaultsAndOrdersBySchema) {
  // Explicit defaults canonicalize to the bare name...
  EXPECT_EQ(reg().resolve("ech(ways=3,probes=0)").canonical, "ECH");
  EXPECT_EQ(reg().resolve("ech()").canonical, "ECH");
  // ... and parameter order in the string never changes the spelling.
  EXPECT_EQ(reg().resolve("ech(probes=2,ways=4)").canonical,
            "ECH(ways=4,probes=2)");
  // resolve() is idempotent on its own canonical output.
  const std::string canonical = reg().resolve("ech(probes=2,ways=4)").canonical;
  EXPECT_EQ(reg().resolve(canonical).canonical, canonical);
}

TEST(MechanismParams, UnknownParameterGetsDidYouMeanAndSchema) {
  try {
    reg().resolve("ech(way=4)");
    FAIL() << "unknown parameter should throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown parameter 'way'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'ways'?"), std::string::npos) << msg;
    // The full schema is listed so the user can fix the spec in one round.
    EXPECT_NE(msg.find("ways:uint=3 [2..8]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("probes:uint=0 [0..8]"), std::string::npos) << msg;
  }
}

TEST(MechanismParams, ValueDiagnosticsNameTypeRangeAndStep) {
  // Out of range.
  try {
    reg().resolve("ech(ways=42)");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range [2..8]"),
              std::string::npos)
        << e.what();
  }
  // Not an integer.
  EXPECT_THROW(reg().resolve("ech(ways=three)"), std::invalid_argument);
  EXPECT_THROW(reg().resolve("ech(ways=-1)"), std::invalid_argument);
  // PWC entry counts must divide by the 4-way associativity.
  try {
    reg().resolve("radix(pwc_l2=6)");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("multiple of 4"), std::string::npos)
        << e.what();
  }
  // Malformed syntax and duplicates.
  EXPECT_THROW(reg().resolve("ech(ways=4"), std::invalid_argument);
  EXPECT_THROW(reg().resolve("ech(ways)"), std::invalid_argument);
  EXPECT_THROW(reg().resolve("ech(ways=4,ways=5)"), std::invalid_argument);
  // Parameters on an unparameterized mechanism say so.
  try {
    reg().resolve("ideal(x=1)");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("takes no parameters"),
              std::string::npos)
        << e.what();
  }
  // Unknown mechanism names suggest the closest registered one.
  try {
    reg().resolve("ndpge(pwc_l4=64)");
    FAIL();
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'NDPage'?"),
              std::string::npos)
        << e.what();
  }
}

TEST(MechanismParams, RunSpecBuilderValidatesAndCanonicalizes) {
  const RunSpec spec = RunSpecBuilder().mechanism("ECH ( ways=4 )").build();
  EXPECT_EQ(spec.mechanism_name, "ECH(ways=4)");
  EXPECT_EQ(spec.mechanism_label(), "ECH(ways=4)");
  // The enum shadow tracks the builtin family.
  EXPECT_EQ(spec.mechanism, Mechanism::kEch);
  EXPECT_THROW(RunSpecBuilder().mechanism("ech(way=4)"),
               std::invalid_argument);
  EXPECT_THROW(RunSpecBuilder().mechanism("nope(ways=4)"),
               std::invalid_argument);
}

TEST(MechanismParams, RegisteredMechanismCanPublishItsOwnSchema) {
  MechanismDescriptor d;
  d.name = "TunableRadix";
  d.summary = "params_test fixture";
  d.params = {ParamSpec::uint_spec("leaf", 1, 1, 2, "preferred leaf level"),
              ParamSpec::bool_spec("turbo", false, "ignored flag"),
              ParamSpec::double_spec("frac", 0.5, 0.0, 1.0, "ignored knob")};
  d.make_page_table = [](PhysicalMemory& pm, const MechanismParams& p) {
    return std::make_unique<RadixPageTable>(
        pm, static_cast<unsigned>(p.get_uint("leaf")));
  };
  ASSERT_TRUE(register_mechanism(std::move(d)));

  const MechanismSpec s =
      reg().resolve("tunableradix(leaf=2,turbo=ON,frac=0.25)");
  EXPECT_EQ(s.canonical, "TunableRadix(leaf=2,turbo=true,frac=0.25)");
  EXPECT_TRUE(s.params.get_bool("turbo"));
  EXPECT_DOUBLE_EQ(s.params.get_double("frac"), 0.25);
  // Bad bool text is rejected.
  EXPECT_THROW(reg().resolve("tunableradix(turbo=maybe)"),
               std::invalid_argument);

  // A schema whose default violates its own range is refused outright.
  MechanismDescriptor bad;
  bad.name = "BadSchema";
  bad.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<RadixPageTable>(pm, 1);
  };
  bad.params = {ParamSpec::uint_spec("k", 0, 1, 4, "default out of range")};
  EXPECT_FALSE(register_mechanism(std::move(bad)));
}

TEST(MechanismParams, ParametersChangeTheModelledHardware) {
  RunSpec base = RunSpecBuilder()
                     .system("ndp")
                     .cores(1)
                     .workload("gups")
                     .instructions(4'000)
                     .warmup(200)
                     .scale(1.0 / 64.0)
                     .build();
  // ECH accesses-per-walk equals the configured way count.
  for (unsigned ways : {2u, 4u}) {
    RunSpec s = RunSpecBuilder(base)
                    .mechanism("ech(ways=" + std::to_string(ways) + ")")
                    .build();
    const RunResult r = run_experiment(s);
    ASSERT_GT(r.stats.get("walker.walks"), 0u);
    EXPECT_NEAR(r.stats.average("walker.accesses_per_walk")->mean(),
                static_cast<double>(ways), 0.1)
        << "ways=" << ways;
  }
  // Serializing the probes makes walks slower than the all-parallel probe.
  const RunResult wide =
      run_experiment(RunSpecBuilder(base).mechanism("ech(ways=4)").build());
  const RunResult narrow = run_experiment(
      RunSpecBuilder(base).mechanism("ech(ways=4,probes=1)").build());
  EXPECT_GT(narrow.avg_ptw_latency, wide.avg_ptw_latency);
}

TEST(MechanismParams, ConfigAcceptsStringAndStructuredForms) {
  const RunConfig cfg = RunConfig::from_json(R"json({
    "name": "param_forms",
    "mechanisms": ["radix",
                   "ech(ways=4)",
                   {"name": "ech", "params": {"ways": [2, 8], "probes": 2}},
                   {"name": "hybrid", "params": {"flat_bits": 16}}],
    "workloads": ["RND"],
    "cores": [1],
    "baseline": "radix"
  })json");
  EXPECT_EQ(cfg.mechanisms,
            (std::vector<std::string>{"Radix", "ECH(ways=4)",
                                      "ECH(ways=2,probes=2)",
                                      "ECH(ways=8,probes=2)",
                                      "Hybrid(flat_bits=16)"}));
  // Round-trips through to_json (canonical strings parse back).
  const RunConfig again = RunConfig::from_json(cfg.to_json());
  EXPECT_EQ(again.mechanisms, cfg.mechanisms);

  // Structured-form diagnostics carry the run-config prefix.
  try {
    RunConfig::from_json(R"({"mechanisms": [{"name": "ech",
                             "params": {"way": 4}}]})");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("run config:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'ways'?"), std::string::npos) << msg;
  }
  EXPECT_THROW(RunConfig::from_json(
                   R"({"mechanisms": [{"params": {"ways": 4}}]})"),
               std::invalid_argument);
  EXPECT_THROW(RunConfig::from_json(
                   R"({"mechanisms": [{"name": "ech", "wat": 1}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      RunConfig::from_json(R"json({"mechanisms": ["ech(ways=99)"]})json"),
      std::invalid_argument);
  // Neither values nor keys can smuggle extra parameters into the rebuilt
  // spec string.
  EXPECT_THROW(RunConfig::from_json(R"json({"mechanisms":
                   [{"name": "ech", "params": {"ways": "4,probes=2"}}]})json"),
               std::invalid_argument);
  EXPECT_THROW(RunConfig::from_json(R"json({"mechanisms":
                   [{"name": "ech", "params": {"ways=2,probes": 1}}]})json"),
               std::invalid_argument);
}

TEST(MechanismParams, ResultMetadataRecordsResolvedParameters) {
  const RunSpec spec = RunSpecBuilder()
                           .system("ndp")
                           .cores(1)
                           .mechanism("ech(ways=4)")
                           .workload("gups")
                           .instructions(2'000)
                           .warmup(100)
                           .scale(1.0 / 64.0)
                           .build();
  const RunResult r = run_experiment(spec);
  EXPECT_EQ(r.meta.mechanism, "ECH(ways=4)");
  // Every schema knob is recorded, defaults included, in schema order.
  ASSERT_EQ(r.meta.mechanism_params.size(), 2u);
  EXPECT_EQ(r.meta.mechanism_params[0],
            (std::pair<std::string, std::string>{"ways", "4"}));
  EXPECT_EQ(r.meta.mechanism_params[1],
            (std::pair<std::string, std::string>{"probes", "0"}));

  const std::string json = to_json(r, &spec);
  EXPECT_NE(json.find("\"mechanism\":\"ECH(ways=4)\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"mechanism_params\":{\"ways\":4,\"probes\":0}"),
            std::string::npos)
      << json;
  // Unparameterized mechanisms keep their document shape (no params key).
  RunSpec plain = spec;
  plain.mechanism_name = "Ideal";
  const RunResult r2 = run_experiment(plain);
  EXPECT_EQ(to_json(r2, &plain).find("mechanism_params"), std::string::npos);
}

}  // namespace
}  // namespace ndp
