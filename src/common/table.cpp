#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ndp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ndp
