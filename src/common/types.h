// Core address/time vocabulary shared by every module.
//
// The simulator is trace driven: virtual addresses come from workload
// generators, physical addresses from the OS substrate, and time is an
// integral cycle count at the core clock (2.6 GHz in Table I of the paper).
#pragma once

#include <cstdint>
#include <limits>

namespace ndp {

/// Virtual address (full 64-bit, canonical x86-64 user-space range).
using VirtAddr = std::uint64_t;
/// Physical address.
using PhysAddr = std::uint64_t;
/// Virtual page number (VirtAddr >> 12 for 4 KB pages).
using Vpn = std::uint64_t;
/// Physical frame number (PhysAddr >> 12).
using Pfn = std::uint64_t;
/// Simulation time in core clock cycles.
using Cycle = std::uint64_t;

inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

inline constexpr unsigned kPageShift = 12;                   ///< 4 KB base page
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;
inline constexpr unsigned kHugePageShift = 21;               ///< 2 MB huge page
inline constexpr std::uint64_t kHugePageSize = 1ull << kHugePageShift;
inline constexpr unsigned kCacheLineShift = 6;               ///< 64 B lines
inline constexpr std::uint64_t kCacheLineSize = 1ull << kCacheLineShift;
inline constexpr unsigned kPteSize = 8;                      ///< 64-bit PTEs
inline constexpr unsigned kPtesPerNode = 512;                ///< 2^9 per 4 KB node

inline constexpr Vpn vpn_of(VirtAddr va) { return va >> kPageShift; }
inline constexpr VirtAddr page_offset(VirtAddr va) { return va & (kPageSize - 1); }
inline constexpr PhysAddr frame_base(Pfn pfn) { return pfn << kPageShift; }
inline constexpr Pfn pfn_of(PhysAddr pa) { return pa >> kPageShift; }
inline constexpr std::uint64_t line_of(PhysAddr pa) { return pa >> kCacheLineShift; }

/// x86-64 4-level radix indices. Level 4 is the root (PML4), level 1 holds
/// leaf PTEs. Each index is 9 bits of the virtual address.
inline constexpr unsigned radix_index(Vpn vpn, unsigned level) {
  return static_cast<unsigned>((vpn >> (9u * (level - 1u))) & 0x1FFu);
}

/// NDPage's flattened L2/L1 node is indexed by 18 VA bits (paper §V-B).
inline constexpr unsigned flat_index(Vpn vpn) {
  return static_cast<unsigned>(vpn & 0x3FFFFu);
}

/// Tag identifying what a memory request is for. The cache hierarchy keeps
/// per-class statistics, and the bypass policy applies only to kMetadata.
enum class AccessClass : std::uint8_t {
  kData,      ///< normal program data
  kMetadata,  ///< page-table entries (the paper's "metadata")
};

/// Read/write intent of a memory request.
enum class AccessType : std::uint8_t { kRead, kWrite };

}  // namespace ndp
