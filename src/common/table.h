// Console table / CSV emitter used by the benchmark harness to print the
// rows and series of every figure and table in the paper's evaluation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ndp {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so bench output is diff-able across runs.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  ///< 0.345 -> "34.5%"

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ndp
