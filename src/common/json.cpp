#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ndp {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  maybe_comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  maybe_comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  maybe_comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  maybe_comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
  return *this;
}

// --- JsonValue --------------------------------------------------------------

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  throw JsonError(std::string("expected ") + want + ", got " +
                  type_name(got));
}

/// Recursive-descent parser. Depth-limited so hostile input can't blow the
/// stack; errors carry the 1-based line:column of the offending byte.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(std::to_string(line) + ":" + std::to_string(col) + ": " +
                    msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected '\"' to start an object key");
      std::string key = parse_string();
      for (const JsonValue::Member& m : members)
        if (m.first == key) fail("duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: --pos_; fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos_; fail("invalid hex digit in \\u escape"); }
    }
    // BMP code points only (config files are ASCII in practice); encode as
    // UTF-8. Surrogate pairs are rejected rather than silently mangled.
    if (cp >= 0xD800 && cp <= 0xDFFF)
      fail("surrogate pairs are not supported in \\u escapes");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > before;
    };
    const std::size_t first_digit = pos_;
    if (!digits()) fail("invalid number");
    if (text_[first_digit] == '0' && pos_ > first_digit + 1)
      fail("invalid number: leading zero");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number: digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("invalid number: digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (number_ < 0 || number_ != std::floor(number_) ||
      number_ > 9007199254740992.0)  // 2^53: exact integer range of double
    throw JsonError("expected a non-negative integer");
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw JsonError("missing key \"" + std::string(key) + "\"");
}

std::string JsonValue::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: {
      JsonWriter w;
      w.value(number_);
      return w.str();
    }
    case Type::kString: return '"' + JsonWriter::escape(string_) + '"';
    case Type::kArray: {
      std::string out = "[";
      for (const JsonValue& v : array_) {
        if (out.size() > 1) out += ',';
        out += v.dump();
      }
      return out + ']';
    }
    case Type::kObject: {
      std::string out = "{";
      for (const Member& m : members_) {
        if (out.size() > 1) out += ',';
        out += '"' + JsonWriter::escape(m.first) + "\":" + m.second.dump();
      }
      return out + '}';
    }
  }
  return "null";
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

// --- raw (byte-exact) extraction --------------------------------------------

namespace {

[[noreturn]] void raw_error(const std::string& msg) {
  throw JsonError("raw JSON scan: " + msg);
}

std::size_t skip_ws_raw(std::string_view s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r'))
    ++i;
  return i;
}

/// `i` at an opening quote; returns the index just past the closing quote.
std::size_t skip_string_raw(std::string_view s, std::size_t i) {
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;  // the escaped character, whatever it is
      continue;
    }
    if (s[i] == '"') return i + 1;
  }
  raw_error("unterminated string");
}

/// `i` at the first byte of a value; returns the index just past it. Only
/// structure is tracked (strings, escapes, bracket nesting) — scalars are
/// taken as the run of bytes up to the next delimiter.
std::size_t skip_value_raw(std::string_view s, std::size_t i) {
  if (i >= s.size()) raw_error("value expected, got end of text");
  if (s[i] == '"') return skip_string_raw(s, i);
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    for (; i < s.size(); ++i) {
      if (s[i] == '"') {
        i = skip_string_raw(s, i) - 1;
      } else if (s[i] == '{' || s[i] == '[') {
        ++depth;
      } else if (s[i] == '}' || s[i] == ']') {
        if (--depth == 0) return i + 1;
      }
    }
    raw_error("unbalanced brackets");
  }
  // Scalar (number/true/false/null): up to the enclosing delimiter.
  const std::size_t end = s.find_first_of(",}] \t\n\r", i);
  if (end == i) raw_error("value expected");
  return end == std::string_view::npos ? s.size() : end;
}

std::string_view trimmed_slice(std::string_view s, std::size_t begin,
                               std::size_t end) {
  return s.substr(begin, end - begin);
}

}  // namespace

std::string_view raw_member(std::string_view object_text,
                            std::string_view key) {
  std::size_t i = skip_ws_raw(object_text, 0);
  if (i >= object_text.size() || object_text[i] != '{')
    raw_error("expected an object");
  i = skip_ws_raw(object_text, i + 1);
  if (i < object_text.size() && object_text[i] == '}')
    raw_error("no member \"" + std::string(key) + "\"");
  while (i < object_text.size()) {
    if (object_text[i] != '"') raw_error("expected a member key");
    const std::size_t key_end = skip_string_raw(object_text, i);
    // Byte comparison of the quoted contents: the envelope keys this is
    // used for ("name", "results", "shard", ...) never need escapes.
    const std::string_view k =
        object_text.substr(i + 1, key_end - i - 2);
    i = skip_ws_raw(object_text, key_end);
    if (i >= object_text.size() || object_text[i] != ':')
      raw_error("expected ':' after member key");
    i = skip_ws_raw(object_text, i + 1);
    const std::size_t value_end = skip_value_raw(object_text, i);
    if (k == key) return trimmed_slice(object_text, i, value_end);
    i = skip_ws_raw(object_text, value_end);
    if (i < object_text.size() && object_text[i] == ',') {
      i = skip_ws_raw(object_text, i + 1);
      continue;
    }
    break;
  }
  raw_error("no member \"" + std::string(key) + "\"");
}

std::vector<std::string_view> raw_elements(std::string_view array_text) {
  std::vector<std::string_view> out;
  std::size_t i = skip_ws_raw(array_text, 0);
  if (i >= array_text.size() || array_text[i] != '[')
    raw_error("expected an array");
  i = skip_ws_raw(array_text, i + 1);
  if (i < array_text.size() && array_text[i] == ']') return out;
  while (i < array_text.size()) {
    const std::size_t end = skip_value_raw(array_text, i);
    out.push_back(trimmed_slice(array_text, i, end));
    i = skip_ws_raw(array_text, end);
    if (i < array_text.size() && array_text[i] == ',') {
      i = skip_ws_raw(array_text, i + 1);
      continue;
    }
    if (i < array_text.size() && array_text[i] == ']') return out;
    raw_error("expected ',' or ']' in array");
  }
  raw_error("unterminated array");
}

}  // namespace ndp
