#include "common/json.h"

#include <cstdio>

namespace ndp {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  maybe_comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  maybe_comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  maybe_comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  maybe_comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace ndp
