// Minimal JSON support — enough to emit run results / stat sets and to read
// experiment config files without an external dependency.
//
// Writing is streaming (JsonWriter): scopes are explicit (begin/end), keys
// are escaped, and number formatting round-trips doubles.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("cycles").value(std::uint64_t{42});
//   w.key("cores").begin_array().value(1.0).value(2.0).end_array();
//   w.end_object();
//   std::string out = w.str();
//
// Reading is a small recursive-descent parser into JsonValue trees:
//
//   JsonValue v = JsonValue::parse(R"({"cores": [1, 4, 8]})");
//   for (const JsonValue& c : v.at("cores").array()) use(c.as_u64());
//
// Malformed input throws JsonError with a line:column position, so config
// front-ends get a usable diagnostic for free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ndp {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void maybe_comma();

  std::string out_;
  /// Per open scope: does the next element need a ',' separator?
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

/// Parse or access error, with "line:col: message" formatting for parse
/// failures so config files get pinpointed diagnostics.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& msg) : std::runtime_error(msg) {}
};

/// An immutable parsed JSON document node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Members are kept in document order (configs read back the way they
  /// were written; duplicate keys are a parse error).
  using Member = std::pair<std::string, JsonValue>;

  /// Parse one complete JSON document (trailing garbage is an error).
  /// Throws JsonError with a line:column position on malformed input.
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; throw JsonError naming the expected type.
  bool as_bool() const;
  double as_double() const;
  /// Integral numbers only: throws on fractional/negative/out-of-range.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& array() const;
  const std::vector<Member>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Like find(), but throws JsonError naming the missing key.
  const JsonValue& at(std::string_view key) const;

  /// Re-serialize (canonical form: document member order, no whitespace).
  std::string dump() const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

// --- raw (byte-exact) extraction --------------------------------------------
//
// Parsing a document into JsonValue and re-serializing loses byte fidelity
// for large integers (numbers are stored as doubles). The shard merge tool
// and the serve client must reproduce result envelopes *byte-identically*,
// so they splice member/element text straight out of the source document
// instead. These helpers scan JSON structure (strings, escapes, nesting)
// without interpreting values.

/// Raw text of the value of top-level member `key` of `object_text`
/// (whitespace-trimmed). Views into `object_text`. Throws JsonError when
/// the text is not an object or the key is absent at the top level.
std::string_view raw_member(std::string_view object_text,
                            std::string_view key);

/// Raw texts of the top-level elements of `array_text`, in order
/// (whitespace-trimmed). Views into `array_text`. Throws JsonError when the
/// text is not an array.
std::vector<std::string_view> raw_elements(std::string_view array_text);

}  // namespace ndp
