// Minimal streaming JSON writer — enough to emit run results and stat sets
// without an external dependency. Scopes are explicit (begin/end), keys are
// escaped, and number formatting round-trips doubles.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("cycles").value(std::uint64_t{42});
//   w.key("cores").begin_array().value(1.0).value(2.0).end_array();
//   w.end_object();
//   std::string out = w.str();
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ndp {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void maybe_comma();

  std::string out_;
  /// Per open scope: does the next element need a ',' separator?
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

}  // namespace ndp
