// Lightweight statistics primitives used by every simulated component.
//
// A StatSet is a named registry of counters/averages owned by a component;
// the experiment runner snapshots them after a run. Counters are plain
// uint64 — the simulator is single-threaded by design (the multi-core model
// interleaves core *clocks*, not host threads).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/blob.h"

namespace ndp {

/// Running mean + extremes without storing samples.
class Average {
 public:
  void add(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
  }
  /// Exact merge of two sample sets (count/sum/min/max are all associative).
  void merge(const Average& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    count_ += o.count_;
    sum_ += o.sum_;
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = Average{}; }

  /// Rebuild from serialized parts — the getters' inverse, for snapshot
  /// restore (StatSet::load_state). count == 0 yields an empty Average.
  static Average from_parts(std::uint64_t count, double sum, double mn,
                            double mx) {
    Average a;
    if (count == 0) return a;
    a.count_ = count;
    a.sum_ = sum;
    a.min_ = mn;
    a.max_ = mx;
    return a;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency distributions.
class Histogram {
 public:
  explicit Histogram(unsigned num_buckets = 24) : buckets_(num_buckets, 0) {}

  void add(std::uint64_t v) {
    avg_.add(static_cast<double>(v));
    unsigned b = 0;
    while (b + 1 < buckets_.size() && (1ull << (b + 1)) <= v) ++b;
    ++buckets_[b];
  }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  const Average& summary() const { return avg_; }
  /// Approximate percentile: upper bound of the bucket holding quantile p.
  std::uint64_t percentile(double p) const;

 private:
  std::vector<std::uint64_t> buckets_;
  Average avg_;
};

/// Named counter registry. Components expose one so tests and benches can
/// read e.g. stats.get("tlb.l1d.miss") without bespoke accessors everywhere.
///
/// Hot paths resolve a Counter*/Sample* handle once (at construction) and
/// bump it directly — no per-access string hashing or map lookups. Handles
/// stay valid for the StatSet's lifetime: clear() zeroes cells in place
/// instead of destroying them, and a cell only shows up in counters()/
/// averages()/serialization once it has been touched since the last clear(),
/// so the externally visible key set is exactly what the lazily-materialized
/// string-keyed API produced.
class StatSet {
 public:
  /// One named counter cell. Obtain via counter(); add() is the hot path.
  class Counter {
   public:
    void add(std::uint64_t by = 1) {
      value_ += by;
      live_ = true;
    }
    std::uint64_t value() const { return value_; }
    /// Touched since the last clear()? Dead cells are invisible externally.
    bool live() const { return live_; }

   private:
    friend class StatSet;
    std::uint64_t value_ = 0;
    bool live_ = false;
  };

  /// One named Average cell. Obtain via sample(); add() is the hot path.
  class Sample {
   public:
    void add(double v) {
      avg_.add(v);
      live_ = true;
    }
    void merge(const Average& a) {
      avg_.merge(a);
      live_ = true;
    }
    const Average& average() const { return avg_; }
    bool live() const { return live_; }

   private:
    friend class StatSet;
    Average avg_;
    bool live_ = false;
  };

  /// Resolve a counter handle. The pointer stays valid (and keeps its name)
  /// across clear() for the StatSet's lifetime. Resolving a handle does not
  /// make the counter visible — only touching it does.
  Counter* counter(const std::string& name) { return &counters_[name]; }
  /// Resolve an Average handle; same lifetime contract as counter().
  Sample* sample(const std::string& name) { return &averages_[name]; }

  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name].add(by);
  }
  void add_sample(const std::string& name, double v) { averages_[name].add(v); }
  /// Merge a whole Average (exact) under `name` — used when re-keying
  /// component stats with a prefix.
  void merge_average(const std::string& name, const Average& a) {
    averages_[name].merge(a);
  }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value_;
  }
  const Average* average(const std::string& name) const {
    auto it = averages_.find(name);
    return it == averages_.end() || !it->second.live_ ? nullptr
                                                      : &it->second.avg_;
  }
  double mean(const std::string& name) const {
    const Average* a = average(name);
    return a ? a->mean() : 0.0;
  }
  /// Ratio helper: num/(num+den) with 0 on empty denominator.
  double rate(const std::string& num, const std::string& den) const;

  /// Live counters, materialized (reporting path — resolved-but-untouched
  /// handle cells are excluded, exactly like the pre-handle key set).
  std::map<std::string, std::uint64_t> counters() const;
  /// Live averages, materialized.
  std::map<std::string, Average> averages() const;
  /// Zero every cell in place; resolved handles stay valid and the cells
  /// drop out of counters()/averages() until touched again.
  void clear();
  /// Merge another StatSet into this one (counter sums, exact sample merges).
  void merge(const StatSet& other);

  /// Serialize the live cells — value *and* liveness, so a restored set
  /// reports exactly the key set the original did (sim/image_store.h
  /// post-prefault snapshots; byte-identical serialization depends on it).
  void save_state(BlobWriter& out) const;
  /// clear() and re-apply a saved snapshot. Resolved handles stay valid
  /// (cells are written in place). Returns false on truncated input.
  bool load_state(BlobReader& in);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Sample> averages_;
};

}  // namespace ndp
