#include "common/stats.h"

namespace ndp {

std::uint64_t Histogram::percentile(double p) const {
  std::uint64_t total = 0;
  for (auto c : buckets_) total += c;
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return 1ull << (b + 1);
  }
  return 1ull << buckets_.size();
}

double StatSet::rate(const std::string& num, const std::string& den) const {
  const double n = static_cast<double>(get(num));
  const double d = static_cast<double>(get(den));
  return (n + d) > 0.0 ? n / (n + d) : 0.0;
}

std::map<std::string, std::uint64_t> StatSet::counters() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_)
    if (c.live_) out.emplace(name, c.value_);
  return out;
}

std::map<std::string, Average> StatSet::averages() const {
  std::map<std::string, Average> out;
  for (const auto& [name, s] : averages_)
    if (s.live_) out.emplace(name, s.avg_);
  return out;
}

void StatSet::clear() {
  for (auto& kv : counters_) kv.second = Counter{};
  for (auto& kv : averages_) kv.second = Sample{};
}

void StatSet::save_state(BlobWriter& out) const {
  const auto live_counters = counters();
  out.u64(live_counters.size());
  for (const auto& [name, v] : live_counters) {
    out.str(name);
    out.u64(v);
  }
  const auto live_averages = averages();
  out.u64(live_averages.size());
  for (const auto& [name, a] : live_averages) {
    out.str(name);
    out.u64(a.count());
    out.f64(a.sum());
    out.f64(a.min());
    out.f64(a.max());
  }
}

bool StatSet::load_state(BlobReader& in) {
  clear();
  const std::uint64_t nc = in.u64();
  for (std::uint64_t i = 0; i < nc && in.ok(); ++i) {
    const std::string name = in.str();
    const std::uint64_t v = in.u64();
    if (!in.ok()) return false;
    Counter& c = counters_[name];
    c.value_ = v;
    c.live_ = true;
  }
  const std::uint64_t na = in.u64();
  for (std::uint64_t i = 0; i < na && in.ok(); ++i) {
    const std::string name = in.str();
    const std::uint64_t count = in.u64();
    const double sum = in.f64();
    const double mn = in.f64();
    const double mx = in.f64();
    if (!in.ok()) return false;
    Sample& s = averages_[name];
    s.avg_ = Average::from_parts(count, sum, mn, mx);
    s.live_ = true;
  }
  return in.ok();
}

void StatSet::merge(const StatSet& other) {
  // A live-but-zero cell still materializes a key in the target, matching
  // the string-keyed `counters_[name] += v` behaviour this replaced.
  for (const auto& [name, c] : other.counters_)
    if (c.live_) counters_[name].add(c.value_);
  for (const auto& [name, s] : other.averages_)
    if (s.live_) averages_[name].merge(s.avg_);
}

}  // namespace ndp
