#include "common/stats.h"

namespace ndp {

std::uint64_t Histogram::percentile(double p) const {
  std::uint64_t total = 0;
  for (auto c : buckets_) total += c;
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return 1ull << (b + 1);
  }
  return 1ull << buckets_.size();
}

double StatSet::rate(const std::string& num, const std::string& den) const {
  const double n = static_cast<double>(get(num));
  const double d = static_cast<double>(get(den));
  return (n + d) > 0.0 ? n / (n + d) : 0.0;
}

void StatSet::merge(const StatSet& other) {
  for (const auto& [name, v] : other.counters()) counters_[name] += v;
  for (const auto& [name, avg] : other.averages()) averages_[name].merge(avg);
}

}  // namespace ndp
