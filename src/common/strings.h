// Small string helpers shared by the name-resolution paths (mechanism
// registry, workload lookup, system-kind parsing).
#pragma once

#include <cctype>
#include <string_view>

namespace ndp {

/// Case-insensitive equality (ASCII).
inline bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

}  // namespace ndp
