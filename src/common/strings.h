// Small string helpers shared by the name-resolution paths (mechanism
// registry, workload lookup, system-kind parsing, parameter specs).
#pragma once

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace ndp {

/// Case-insensitive equality (ASCII).
inline bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

/// Strip ASCII whitespace from both ends.
inline std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Case-insensitive Levenshtein distance (ASCII), for did-you-mean
/// suggestions in name/parameter diagnostics.
inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const bool same = std::tolower(static_cast<unsigned char>(a[i - 1])) ==
                        std::tolower(static_cast<unsigned char>(b[j - 1]));
      row[j] = std::min({up + 1, row[j - 1] + 1, diag + (same ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

/// Closest candidate to `name` within an edit distance budget proportional
/// to the name's length ("" when nothing is close enough).
inline std::string closest_match(std::string_view name,
                                 const std::vector<std::string>& candidates) {
  const std::size_t budget = name.size() <= 4 ? 1 : name.size() / 2;
  std::size_t best = budget + 1;
  std::string out;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best) {
      best = d;
      out = c;
    }
  }
  return out;
}

}  // namespace ndp
