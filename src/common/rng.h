// Deterministic random-number utilities.
//
// All stochastic behaviour in the simulator (workload address streams,
// fragmentation injection) flows through these generators so that every
// experiment is reproducible from a seed. No global state.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ndp {

/// SplitMix64: used to seed Xoshiro and as a stateless hash.
inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x + 0x1234ABCDull);
      word = x;
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bias is < 2^-64 * bound, irrelevant for simulation workloads.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Raw xoshiro state words, for image serialization (sim/image_store.h):
  /// a restored generator continues the stream bit-for-bit.
  void save_state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void load_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Zipf sampler over [0, n) with exponent s, using the rejection-inversion
/// method (Hörmann & Derflinger). O(1) per sample, no O(n) table, which
/// matters because graph workloads draw billions of skewed vertex ids.
class Zipf {
 public:
  Zipf(std::uint64_t n, double s) : n_(n), s_(s) {
    assert(n >= 1);
    h_x1_ = h(1.5) - std::exp(-s_ * std::log(1.0));
    h_n_ = h(static_cast<double>(n_) + 0.5);
    dist_ = h_x1_ - h_n_;
  }

  std::uint64_t operator()(Rng& rng) const {
    if (n_ == 1) return 0;
    while (true) {
      const double u = h_n_ + rng.uniform() * dist_;
      const double x = h_inv(u);
      auto k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      if (std::abs(static_cast<double>(k) - x) <= 0.5 ||
          u >= h(static_cast<double>(k) + 0.5) - std::exp(-s_ * std::log(static_cast<double>(k)))) {
        return k - 1;  // return 0-based rank, rank 0 hottest
      }
    }
  }

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const {
    // integral of x^-s  (handles s == 1 via log)
    if (std::abs(1.0 - s_) < 1e-9) return std::log(x);
    return std::exp((1.0 - s_) * std::log(x)) / (1.0 - s_);
  }
  double h_inv(double u) const {
    if (std::abs(1.0 - s_) < 1e-9) return std::exp(u);
    return std::exp(std::log((1.0 - s_) * u) / (1.0 - s_));
  }

  std::uint64_t n_;
  double s_;
  double h_x1_, h_n_, dist_;
};

}  // namespace ndp
