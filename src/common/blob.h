// Little-endian word-stream codec for snapshot serialization.
//
// The on-disk image store (sim/image_store.h) persists post-boot and
// post-prefault system state. Components serialize themselves into a
// BlobWriter — a flat vector of 64-bit words, bulk-copyable and
// mmap-friendly — and restore from a BlobReader, which is bounds-checked
// with a sticky failure flag so a truncated or corrupted blob degrades
// into `!ok()` instead of undefined reads. Nothing here owns a format:
// framing, versioning, and checksums live in the store; this is only the
// primitive encode/decode layer shared by every component codec.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ndp {

/// Append-only encoder: accumulates 64-bit words in host order. The store
/// writes the words verbatim; on-disk endianness is little-endian because
/// every supported target is (a big-endian reader would reject the magic).
class BlobWriter {
 public:
  void u64(std::uint64_t v) { words_.push_back(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    words_.push_back(bits);
  }
  /// Length-prefixed byte string, zero-padded to a word boundary.
  void str(const std::string& s) { bytes(s.data(), s.size()); }
  /// Length-prefixed raw bytes, zero-padded to a word boundary.
  void bytes(const void* data, std::size_t n) {
    u64(n);
    const std::size_t nwords = (n + 7) / 8;
    const std::size_t at = words_.size();
    words_.resize(at + nwords, 0);
    std::memcpy(words_.data() + at, data, n);
  }
  /// Length-prefixed u64 array (bulk copy, no per-element overhead).
  void u64s(const std::uint64_t* data, std::size_t n) {
    u64(n);
    words_.insert(words_.end(), data, data + n);
  }
  void u64s(const std::vector<std::uint64_t>& v) { u64s(v.data(), v.size()); }
  /// Raw word append, no length prefix (the store's section assembly).
  void append(const std::vector<std::uint64_t>& v) {
    words_.insert(words_.end(), v.begin(), v.end());
  }

  std::size_t size() const { return words_.size(); }
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t> take() { return std::move(words_); }

 private:
  std::vector<std::uint64_t> words_;
};

/// Bounds-checked decoder over a word span. Any read past the end (or any
/// length prefix that does not fit) sets a sticky failure flag and yields
/// zeros/empties; callers validate with ok() once at the end instead of
/// checking every field.
class BlobReader {
 public:
  BlobReader(const std::uint64_t* words, std::size_t n)
      : words_(words), size_(n) {}
  explicit BlobReader(const std::vector<std::uint64_t>& v)
      : BlobReader(v.data(), v.size()) {}

  std::uint64_t u64() {
    if (pos_ >= size_) {
      fail_ = true;
      return 0;
    }
    return words_[pos_++];
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    const std::uint64_t nwords = (n + 7) / 8;
    if (fail_ || nwords > size_ - pos_) {
      fail_ = true;
      return {};
    }
    std::string s(n, '\0');
    std::memcpy(s.data(), words_ + pos_, n);
    pos_ += nwords;
    return s;
  }
  /// Length-prefixed raw bytes into `out` (resized to the stored length).
  /// `max_bytes` guards against a hostile length prefix allocating the moon.
  bool bytes(void* out, std::size_t expect_n) {
    const std::uint64_t n = u64();
    const std::uint64_t nwords = (n + 7) / 8;
    if (fail_ || n != expect_n || nwords > size_ - pos_) {
      fail_ = true;
      return false;
    }
    std::memcpy(out, words_ + pos_, n);
    pos_ += nwords;
    return true;
  }
  std::vector<std::uint64_t> u64s() {
    const std::uint64_t n = u64();
    if (fail_ || n > size_ - pos_) {
      fail_ = true;
      return {};
    }
    std::vector<std::uint64_t> v(words_ + pos_, words_ + pos_ + n);
    pos_ += n;
    return v;
  }

  bool ok() const { return !fail_; }
  /// Everything consumed and nothing over-read — the strict success check.
  bool done() const { return !fail_ && pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint64_t* words_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace ndp
