// Bank/channel DRAM timing model.
//
// This is the memory substrate under both simulated systems (Table I of the
// paper): DDR4-2400 behind the CPU's cache hierarchy, and an HBM2 stack under
// the NDP logic layer. The model tracks, per bank, the open row and the
// busy-until time (row-cycle time tRC gates back-to-back activates — this is
// the throughput limiter for the paper's highly random PTE traffic), and per
// channel a command/data service slot (controller arbitration + bus
// occupancy). Queue delay is therefore emergent from concurrent traffic, not
// scripted: multi-core runs see longer PTW latency exactly as the paper's
// Fig. 4/6 report.
//
// All timings are expressed in *core* cycles at 2.6 GHz so the rest of the
// simulator needs no clock-domain conversion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ndp {

/// Device + controller timing parameters (core cycles @ 2.6 GHz).
struct DramTiming {
  std::string name;
  unsigned channels = 2;
  unsigned banks_per_channel = 16;
  Cycle t_cl = 43;       ///< CAS latency
  Cycle t_rcd = 43;      ///< RAS-to-CAS
  Cycle t_rp = 43;       ///< precharge
  Cycle t_rc = 120;      ///< row cycle: min gap between activates to a bank
  Cycle t_burst = 17;    ///< 64 B data burst occupancy on the channel bus
  Cycle t_service = 10;  ///< controller slot: min gap between requests/channel
  Cycle t_static = 40;   ///< fixed path: controller pipeline + PHY + link
  std::uint64_t row_bytes = 8192;  ///< row-buffer reach per bank

  /// DDR4-2400, dual channel: the CPU system's main memory.
  static DramTiming ddr4_2400();
  /// One HBM2 stack as seen from the NDP logic layer: wider/faster interface,
  /// much shorter static path (no off-chip hop), smaller rows.
  static DramTiming hbm2();
};

/// Outcome of one line access.
struct DramResult {
  Cycle finish = 0;       ///< absolute completion time
  Cycle queue_delay = 0;  ///< waiting on channel slot + bank availability
  bool row_hit = false;
};

/// A multi-channel, multi-bank DRAM device with an open-page policy.
///
/// access() is the whole interface: given a start time and a physical
/// address, it updates bank/channel state and returns the completion time.
/// Callers issue requests in approximately non-decreasing time order (the
/// multi-core engine guarantees this), so per-bank state stays causal.
class Dram {
 public:
  explicit Dram(DramTiming timing);

  struct Counters {
    std::uint64_t access = 0, reads = 0, writes = 0;
    std::uint64_t data = 0, metadata = 0;
    std::uint64_t row_hit = 0, row_miss = 0;
    Average queue_delay;
    Average latency;
    Average slot_wait;  ///< waiting on the channel service slot
    Average bank_wait;  ///< waiting on the bank (tRC occupancy)
  };

  DramResult access(Cycle now, PhysAddr pa, AccessType type, AccessClass cls);

  const DramTiming& timing() const { return timing_; }
  const Counters& counters() const { return counters_; }
  /// Named statistics snapshot; counters are PODs on the hot path.
  StatSet snapshot() const;
  void reset_counters() { counters_ = Counters{}; }

  // The channel/bank/row index math runs on every DRAM access; the counts
  // are configuration members, so without the precomputed shifts below each
  // `/` and `%` would be a real 64-bit divide in the hot loop. Both presets
  // use power-of-two channel/bank/row geometry, where the divides fold to
  // shifts and masks (identical results); other geometries take the divide.
  unsigned channel_of(PhysAddr pa) const {
    // Line interleaving across channels spreads sequential traffic;
    // XOR-folding higher address bits (permutation-based interleaving, as in
    // real memory controllers) breaks the bank/channel aliasing that
    // power-of-2 strided access patterns would otherwise cause.
    const std::uint64_t l = line_of(pa);
    const std::uint64_t x = l ^ (l >> 11);
    return static_cast<unsigned>(
        channels_pow2_ ? x & (timing_.channels - 1) : x % timing_.channels);
  }
  unsigned bank_of(PhysAddr pa) const {
    const std::uint64_t l = line_of(pa);
    const std::uint64_t per =
        channels_pow2_ ? l >> channel_shift_ : l / timing_.channels;
    const std::uint64_t x = per ^ (l >> 9) ^ (l >> 15);
    return static_cast<unsigned>(banks_pow2_
                                     ? x & (timing_.banks_per_channel - 1)
                                     : x % timing_.banks_per_channel);
  }
  std::uint64_t row_of(PhysAddr pa) const {
    const std::uint64_t l = line_of(pa);
    if (channels_pow2_ && banks_pow2_ && rows_pow2_)
      return l >> (channel_shift_ + bank_shift_ + row_shift_);
    const std::uint64_t lines_per_row = timing_.row_bytes / kCacheLineSize;
    return (l / timing_.channels / timing_.banks_per_channel) / lines_per_row;
  }

  /// Peak random-access service rate in requests/cycle (banks / tRC summed
  /// over channels). Used by tests and capacity-planning asserts.
  double random_capacity_per_cycle() const;

 private:
  struct Bank {
    Cycle busy_until = 0;
    std::uint64_t open_row = 0;
    bool row_open = false;
  };
  struct Channel {
    Cycle next_slot = 0;
    std::vector<Bank> banks;
  };

  DramTiming timing_;
  std::vector<Channel> channels_;
  Counters counters_;
  // Power-of-two geometry shortcuts, set at construction (see channel_of).
  bool channels_pow2_ = false, banks_pow2_ = false, rows_pow2_ = false;
  unsigned channel_shift_ = 0, bank_shift_ = 0, row_shift_ = 0;
};

}  // namespace ndp
