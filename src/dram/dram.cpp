#include "dram/dram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ndp {

DramTiming DramTiming::ddr4_2400() {
  DramTiming t;
  t.name = "DDR4-2400";
  t.channels = 2;
  t.banks_per_channel = 32;  // 16 banks x 2 ranks per channel
  // DDR4-2400 CL17: ~16.7 ns => 43 core cycles at 2.6 GHz for the common
  // 16-16-16 bin. tRC ~46 ns => 120 cycles.
  t.t_cl = 43;
  t.t_rcd = 43;
  t.t_rp = 43;
  t.t_rc = 120;
  t.t_burst = 9;    // 64 B = 8 beats on a 64-bit bus at 2400 MT/s = ~3.3 ns
  t.t_service = 9;  // data-bus occupancy bounds channel throughput
  t.t_static = 40;  // off-chip link + controller pipeline
  t.row_bytes = 8192;
  return t;
}

DramTiming DramTiming::hbm2() {
  DramTiming t;
  t.name = "HBM2";
  t.channels = 2;
  t.banks_per_channel = 16;
  // HBM2 core timings are DDR4-like; the win is the on-stack path (short
  // static latency) and the wide bus (short bursts).
  t.t_cl = 36;
  t.t_rcd = 36;
  t.t_rp = 36;
  t.t_rc = 117;
  t.t_burst = 5;    // 64 B over a 128-bit channel at 2 Gb/s/pin = ~2 ns
  t.t_service = 6;  // vault controller slot
  t.t_static = 36;  // vault-controller pipeline + TSV (no off-chip hop)
  t.row_bytes = 2048;
  return t;
}

namespace {
bool is_pow2(std::uint64_t x) { return x > 0 && (x & (x - 1)) == 0; }
unsigned log2u(std::uint64_t x) {
  return static_cast<unsigned>(__builtin_ctzll(x));
}
}  // namespace

Dram::Dram(DramTiming timing) : timing_(std::move(timing)) {
  assert(timing_.channels > 0 && timing_.banks_per_channel > 0);
  channels_.resize(timing_.channels);
  for (auto& ch : channels_) ch.banks.resize(timing_.banks_per_channel);
  const std::uint64_t lines_per_row = timing_.row_bytes / kCacheLineSize;
  channels_pow2_ = is_pow2(timing_.channels);
  banks_pow2_ = is_pow2(timing_.banks_per_channel);
  rows_pow2_ = lines_per_row > 0 && is_pow2(lines_per_row);
  if (channels_pow2_) channel_shift_ = log2u(timing_.channels);
  if (banks_pow2_) bank_shift_ = log2u(timing_.banks_per_channel);
  if (rows_pow2_) row_shift_ = log2u(lines_per_row);
}

double Dram::random_capacity_per_cycle() const {
  return static_cast<double>(timing_.channels * timing_.banks_per_channel) /
         static_cast<double>(timing_.t_rc);
}

DramResult Dram::access(Cycle now, PhysAddr pa, AccessType type,
                        AccessClass cls) {
  Channel& ch = channels_[channel_of(pa)];
  Bank& bank = ch.banks[bank_of(pa)];
  const std::uint64_t row = row_of(pa);

  // Wait for a controller slot on this channel, then for the bank.
  const Cycle slot_start = std::max(now, ch.next_slot);
  ch.next_slot = slot_start + timing_.t_service;
  const Cycle bank_start = std::max(slot_start, bank.busy_until);

  Cycle access_lat;
  bool row_hit = false;
  if (bank.row_open && bank.open_row == row) {
    row_hit = true;
    access_lat = timing_.t_cl;
    bank.busy_until = bank_start + timing_.t_burst;
  } else {
    // Open-page policy: a mismatch pays precharge + activate + CAS; an idle
    // bank skips the precharge.
    access_lat = (bank.row_open ? timing_.t_rp : 0) + timing_.t_rcd + timing_.t_cl;
    bank.open_row = row;
    bank.row_open = true;
    // The bank cannot accept another activate until tRC after this one.
    bank.busy_until = bank_start + std::max<Cycle>(timing_.t_rc, access_lat);
  }

  const Cycle finish = bank_start + access_lat + timing_.t_burst + timing_.t_static;
  const Cycle queue_delay = bank_start - now;

  ++counters_.access;
  ++(type == AccessType::kWrite ? counters_.writes : counters_.reads);
  ++(cls == AccessClass::kMetadata ? counters_.metadata : counters_.data);
  ++(row_hit ? counters_.row_hit : counters_.row_miss);
  counters_.queue_delay.add(static_cast<double>(queue_delay));
  counters_.latency.add(static_cast<double>(finish - now));
  counters_.slot_wait.add(static_cast<double>(slot_start - now));
  counters_.bank_wait.add(static_cast<double>(bank_start - slot_start));

  return DramResult{finish, queue_delay, row_hit};
}

StatSet Dram::snapshot() const {
  StatSet s;
  s.inc("access", counters_.access);
  s.inc("read", counters_.reads);
  s.inc("write", counters_.writes);
  s.inc("data", counters_.data);
  s.inc("metadata", counters_.metadata);
  s.inc("row_hit", counters_.row_hit);
  s.inc("row_miss", counters_.row_miss);
  s.merge_average("queue_delay", counters_.queue_delay);
  s.merge_average("latency", counters_.latency);
  s.merge_average("slot_wait", counters_.slot_wait);
  s.merge_average("bank_wait", counters_.bank_wait);
  return s;
}

}  // namespace ndp
