// Translation lookaside buffers (Table I: 64-entry L1 DTLB, 128-entry L1
// ITLB, 1536-entry unified L2 TLB).
//
// The structure is page-size aware: 4 KB and 2 MB translations index
// different sets (va >> 12 vs va >> 21), matching split-TLB hardware while
// sharing one capacity pool — that is how the Huge Page baseline's reach
// advantage materializes.
//
// Storage is structure-of-arrays: each sub-TLB keeps parallel tag / pfn /
// lru vectors instead of an array of per-way line objects, so a probe is a
// contiguous scan of a set's tags (one cache line for up to 8 ways, a
// compare loop the compiler unrolls and vectorizes) and the pfn/lru
// columns are only touched on a hit. The hot entry points (lookup / peek /
// insert) are defined inline here — they sit on the per-access path of the
// simulation engine, where the call itself used to cost as much as the
// scan. Empty ways carry the reserved tag kInvalidTag, which removes the
// per-way valid flag from the scan entirely (a real tag is va >> 12 of a
// canonical address and can never be all-ones).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ndp {

struct TlbConfig {
  std::string name = "L1D";
  unsigned entries = 64;       ///< 4 KB-translation entries
  unsigned ways = 4;
  Cycle latency = 1;
  /// Capacity of the separate 2 MB-translation sub-TLB. Real L1 DTLBs keep
  /// a small dedicated array (32 entries here); L2 TLBs in the class of
  /// parts Table I describes do not cache 2 MB translations at all (0).
  unsigned huge_entries = 32;
  unsigned huge_ways = 4;
};

struct TlbEntry {
  Pfn pfn = 0;              ///< frame of the page (base frame for 2 MB)
  unsigned page_shift = kPageShift;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig cfg);

  /// Probe for the translation covering va (checks 4 KB then 2 MB tags).
  std::optional<TlbEntry> lookup(VirtAddr va) {
    ++tick_;
    if (unsigned w = probe(small_, va, kPageShift); w != kNoWay) {
      const std::size_t i = small_.base_of(va, kPageShift) + w;
      small_.lru[i] = tick_;
      ++counters_.hits;
      return TlbEntry{small_.pfns[i], kPageShift};
    }
    if (unsigned w = probe(huge_, va, kHugePageShift); w != kNoWay) {
      const std::size_t i = huge_.base_of(va, kHugePageShift) + w;
      huge_.lru[i] = tick_;
      ++counters_.hits;
      return TlbEntry{huge_.pfns[i], kHugePageShift};
    }
    ++counters_.misses;
    return std::nullopt;
  }

  /// Stat-free probe (no hit/miss accounting, no LRU update) — used by
  /// walk-coalescing polls, which are not architectural TLB lookups.
  std::optional<TlbEntry> peek(VirtAddr va) const {
    if (unsigned w = probe(small_, va, kPageShift); w != kNoWay)
      return TlbEntry{small_.pfns[small_.base_of(va, kPageShift) + w],
                      kPageShift};
    if (unsigned w = probe(huge_, va, kHugePageShift); w != kNoWay)
      return TlbEntry{huge_.pfns[huge_.base_of(va, kHugePageShift) + w],
                      kHugePageShift};
    return std::nullopt;
  }

  /// Install a translation; evicts LRU within the set.
  void insert(VirtAddr va, Pfn pfn, unsigned page_shift) {
    assert(page_shift == kPageShift || page_shift == kHugePageShift);
    ++tick_;
    SubTlb& a = page_shift == kPageShift ? small_ : huge_;
    if (a.tags.empty()) return;  // this TLB does not cache this page size
    const Vpn tag = va >> page_shift;
    const std::size_t base = a.base_of(va, page_shift);
    if (unsigned w = scan_set(&a.tags[base], a.ways, tag); w != kNoWay) {
      a.pfns[base + w] = pfn;  // refresh
      a.lru[base + w] = tick_;
      return;
    }
    // Victim: first empty way, else the strict-minimum (oldest) LRU stamp.
    unsigned victim = 0;
    for (unsigned w = 0; w < a.ways; ++w) {
      if (a.tags[base + w] == kInvalidTag) {
        victim = w;
        break;
      }
      if (a.lru[base + w] < a.lru[base + victim]) victim = w;
    }
    if (a.tags[base + victim] != kInvalidTag) ++counters_.evictions;
    a.tags[base + victim] = tag;
    a.pfns[base + victim] = pfn;
    a.lru[base + victim] = tick_;
  }

  /// Drop every entry covering the page of va (shootdown support).
  void invalidate(VirtAddr va);
  void flush();

  struct Counters {
    std::uint64_t hits = 0, misses = 0, evictions = 0, flushes = 0;
  };

  const TlbConfig& config() const { return cfg_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  StatSet snapshot() const;
  double miss_rate() const {
    const double t = static_cast<double>(counters_.hits + counters_.misses);
    return t > 0 ? static_cast<double>(counters_.misses) / t : 0.0;
  }

 private:
  /// Reserved tag marking an empty way: unreachable because a tag is
  /// va >> page_shift and virtual addresses stay far below 2^64.
  static constexpr Vpn kInvalidTag = ~Vpn{0};
  static constexpr unsigned kNoWay = ~0u;

  /// One page-size sub-TLB in structure-of-arrays layout.
  struct SubTlb {
    std::vector<Vpn> tags;  ///< per-set contiguous; kInvalidTag = empty way
    std::vector<Pfn> pfns;
    std::vector<std::uint64_t> lru;
    unsigned sets = 1;
    unsigned ways = 1;

    std::size_t base_of(VirtAddr va, unsigned page_shift) const {
      return static_cast<std::size_t>((va >> page_shift) % sets) * ways;
    }
  };

  /// Contiguous tag scan of one set; returns the hit way or kNoWay. Each
  /// way's compare is independent (insert keeps tags unique within a set),
  /// so the loop carries no data dependence and vectorizes.
  static unsigned scan_set(const Vpn* tags, unsigned ways, Vpn tag) {
    unsigned hit = kNoWay;
    for (unsigned w = 0; w < ways; ++w)
      if (tags[w] == tag) hit = w;
    return hit;
  }

  static unsigned probe(const SubTlb& a, VirtAddr va, unsigned page_shift) {
    if (a.tags.empty()) return kNoWay;
    return scan_set(&a.tags[a.base_of(va, page_shift)], a.ways,
                    va >> page_shift);
  }

  TlbConfig cfg_;
  SubTlb small_;  ///< 4 KB entries
  SubTlb huge_;   ///< 2 MB entries (may be empty)
  std::uint64_t tick_ = 0;
  Counters counters_;
};

}  // namespace ndp
