// Translation lookaside buffers (Table I: 64-entry L1 DTLB, 128-entry L1
// ITLB, 1536-entry unified L2 TLB).
//
// The structure is page-size aware: 4 KB and 2 MB translations index
// different sets (va >> 12 vs va >> 21), matching split-TLB hardware while
// sharing one capacity pool — that is how the Huge Page baseline's reach
// advantage materializes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ndp {

struct TlbConfig {
  std::string name = "L1D";
  unsigned entries = 64;       ///< 4 KB-translation entries
  unsigned ways = 4;
  Cycle latency = 1;
  /// Capacity of the separate 2 MB-translation sub-TLB. Real L1 DTLBs keep
  /// a small dedicated array (32 entries here); L2 TLBs in the class of
  /// parts Table I describes do not cache 2 MB translations at all (0).
  unsigned huge_entries = 32;
  unsigned huge_ways = 4;
};

struct TlbEntry {
  Pfn pfn = 0;              ///< frame of the page (base frame for 2 MB)
  unsigned page_shift = kPageShift;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig cfg);

  /// Probe for the translation covering va (checks 4 KB then 2 MB tags).
  std::optional<TlbEntry> lookup(VirtAddr va);
  /// Stat-free probe (no hit/miss accounting, no LRU update) — used by
  /// walk-coalescing polls, which are not architectural TLB lookups.
  std::optional<TlbEntry> peek(VirtAddr va);
  /// Install a translation; evicts LRU within the set.
  void insert(VirtAddr va, Pfn pfn, unsigned page_shift);
  /// Drop every entry covering the page of va (shootdown support).
  void invalidate(VirtAddr va);
  void flush();

  struct Counters {
    std::uint64_t hits = 0, misses = 0, evictions = 0, flushes = 0;
  };

  const TlbConfig& config() const { return cfg_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  StatSet snapshot() const;
  double miss_rate() const {
    const double t = static_cast<double>(counters_.hits + counters_.misses);
    return t > 0 ? static_cast<double>(counters_.misses) / t : 0.0;
  }

 private:
  struct Line {
    Vpn tag = 0;  ///< va >> page_shift
    Pfn pfn = 0;
    unsigned page_shift = kPageShift;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  unsigned set_of(VirtAddr va, unsigned page_shift) const {
    const unsigned sets = page_shift == kPageShift ? num_sets_ : num_huge_sets_;
    return static_cast<unsigned>((va >> page_shift) % sets);
  }
  Line* find(VirtAddr va, unsigned page_shift);
  std::vector<Line>& array_for(unsigned page_shift) {
    return page_shift == kPageShift ? lines_ : huge_lines_;
  }
  unsigned ways_for(unsigned page_shift) const {
    return page_shift == kPageShift ? cfg_.ways : cfg_.huge_ways;
  }

  TlbConfig cfg_;
  unsigned num_sets_;
  unsigned num_huge_sets_;
  std::vector<Line> lines_;       ///< 4 KB entries
  std::vector<Line> huge_lines_;  ///< 2 MB entries (may be empty)
  std::uint64_t tick_ = 0;
  Counters counters_;
};

}  // namespace ndp
