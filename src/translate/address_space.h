// Process address space: VM regions, demand paging, pre-faulting, and the
// OS fault-cost model — the software half of translation.
//
// Workload generators declare their data structures as VM regions. Regions
// marked `prefault` are populated before timing starts (the paper measures
// steady state after the 8-33 GB datasets are resident); the rest fault on
// first touch during the run, which is where the Huge Page baseline pays
// its allocation/compaction bill.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "os/phys_mem.h"
#include "translate/page_table.h"

namespace ndp {

struct VmRegion {
  std::string name;
  VirtAddr base = 0;
  std::uint64_t bytes = 0;
  bool prefault = true;

  VirtAddr end() const { return base + bytes; }
  bool contains(VirtAddr va) const { return va >= base && va < end(); }
};

class AddressSpace {
 public:
  /// `use_huge_pages`: map at 2 MB granularity (the Huge Page baseline);
  /// requires a page table whose preferred leaf supports it.
  AddressSpace(PhysicalMemory& pm, std::unique_ptr<PageTable> pt,
               bool use_huge_pages = false);
  ~AddressSpace();

  void add_region(VmRegion region);
  const std::vector<VmRegion>& regions() const { return regions_; }

  /// Map every prefault region (no timing; setup phase).
  void prefault_all();

  struct TouchResult {
    bool faulted = false;
    Cycle cost = 0;  ///< OS cycles charged to the faulting access
  };
  /// Demand paging: ensure the page of va is mapped. Runs watermark-based
  /// reclaim first when free physical memory is low (kswapd-style), which
  /// is where the Huge Page baseline's bloat turns into thrashing.
  ///
  /// Faults serialize on the address-space lock (mmap-lock semantics): a
  /// fault arriving at `now` while an earlier fault is still being serviced
  /// waits for it. This is the mechanism behind huge-page latency spikes
  /// under concurrency — 2 MB zero+compaction holds the lock ~50x longer
  /// than a 4 KB fault, so fault-heavy multi-core runs queue behind it.
  TouchResult touch(VirtAddr va, Cycle now = 0);
  /// Map without charging costs or taking the lock (the Ideal mechanism).
  void touch_untimed(VirtAddr va);

  /// Invoked for every vpn whose translation is torn down by reclaim, so
  /// the owner can shoot down TLBs. Set by the System assembly.
  void set_shootdown_hook(std::function<void(Vpn)> fn) {
    shootdown_ = std::move(fn);
  }

  /// Functional translation (no timing); nullopt if unmapped.
  std::optional<PhysAddr> translate(VirtAddr va) const;

  PageTable& page_table() { return *pt_; }
  const PageTable& page_table() const { return *pt_; }
  PhysicalMemory& phys() { return pm_; }
  bool huge_pages() const { return huge_; }
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  std::uint64_t mapped_pages() const { return mapped_4k_ + mapped_2m_ * 512; }
  std::uint64_t mapped_bytes() const { return mapped_pages() * kPageSize; }

  /// Serialize the space's complete post-prefault state — regions, frame
  /// ownership, reclaim FIFO order, lock horizon, and statistics. The page
  /// table serializes separately (PageTable::save_state).
  void save_state(BlobWriter& out) const;
  /// Restore state written by save_state. The backing PhysicalMemory must
  /// already be restored to the matching snapshot (ownership is adopted,
  /// never re-allocated), and this re-registers the relocate hook that
  /// PhysicalMemory::restore() cleared. Returns false on malformed input,
  /// leaving the non-statistics members untouched.
  bool load_state(BlobReader& in);

 private:
  Cycle fault_in_4k(Vpn vpn);
  Cycle fault_in_2m(Vpn vpn_aligned);
  /// Evict FIFO victims until free memory recovers; returns cycles charged.
  Cycle maybe_reclaim(std::uint64_t frames_needed);
  void on_relocate(Pfn old_pfn, Pfn new_pfn);

  PhysicalMemory& pm_;
  std::unique_ptr<PageTable> pt_;
  bool huge_;
  std::vector<VmRegion> regions_;
  /// Reverse map for compaction: data frame -> vpn (4 KB mappings only;
  /// 2 MB blocks and page-table frames are never relocated).
  std::unordered_map<Pfn, Vpn> frame_owner_;
  /// 2 MB blocks owned by this space: base vpn -> base pfn.
  std::unordered_map<Vpn, Pfn> huge_blocks_;
  /// Reclaim FIFOs (allocation order). Entries may be stale (already
  /// reclaimed or relocated); validated on pop.
  std::deque<Vpn> fifo_4k_;
  std::deque<Vpn> fifo_2m_;
  std::function<void(Vpn)> shootdown_;
  Cycle fault_lock_until_ = 0;  ///< mmap-lock busy horizon
  std::uint64_t mapped_4k_ = 0;
  std::uint64_t mapped_2m_ = 0;
  StatSet stats_;
  // Counter handles resolved once at construction — the fault path (and
  // prefault, which runs it per resident page) never does a string-keyed
  // lookup. Names match the previous inc() keys exactly.
  StatSet::Counter* c_prefault_done_;
  StatSet::Counter* c_fault_4k_;
  StatSet::Counter* c_fault_2m_;
  StatSet::Counter* c_fault_2m_compacted_;
  StatSet::Counter* c_fault_2m_fallback_;
  StatSet::Counter* c_demand_faults_;
  StatSet::Counter* c_fault_cycles_;
  StatSet::Counter* c_fault_lock_wait_;
  StatSet::Counter* c_set_conflict_evictions_;
  StatSet::Counter* c_reclaim_events_;
  StatSet::Counter* c_reclaimed_frames_;
  StatSet::Counter* c_reclaim_cycles_;
  StatSet::Counter* c_relocated_frames_;
};

}  // namespace ndp
