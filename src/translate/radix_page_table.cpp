#include "translate/radix_page_table.h"

#include <algorithm>
#include <cassert>

namespace ndp {

RadixPageTable::RadixPageTable(PhysicalMemory& pm, unsigned preferred_leaf_level)
    : pm_(pm), leaf_level_(preferred_leaf_level) {
  assert(leaf_level_ == 1 || leaf_level_ == 2);
  root_ = alloc_node(4);
}

RadixPageTable::~RadixPageTable() {
  // Frames go back to the OS pool so repeated experiments in one process
  // don't leak physical memory.
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    bool freed = false;
    for (auto f : free_nodes_)
      if (f == id) { freed = true; break; }
    if (!freed) pm_.free_frame(nodes_[id].frame);
  }
}

std::uint32_t RadixPageTable::alloc_node(unsigned level) {
  std::uint32_t id;
  if (!free_nodes_.empty()) {
    id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].frame = pm_.alloc_frame(FrameUse::kPageTable);
  nodes_[id].level = level;
  return id;
}

void RadixPageTable::free_node(std::uint32_t id) {
  pm_.free_frame(nodes_[id].frame);
  free_nodes_.push_back(id);
}

std::uint32_t RadixPageTable::descend(Vpn vpn, unsigned level, bool create,
                                      MapResult* out) {
  std::uint32_t cur = root_;
  for (unsigned l = 4; l > level; --l) {
    const unsigned idx = radix_index(vpn, l);
    std::uint64_t& e = nodes_[cur].ent[idx];
    if (!(e & kPresent)) {
      if (!create) return UINT32_MAX;
      const std::uint32_t child = alloc_node(l - 1);
      // alloc_node may reallocate nodes_, so re-take the entry reference.
      nodes_[cur].ent[idx] = encode(child, /*leaf=*/false);
      ++nodes_[cur].valid;
      if (out) {
        ++out->nodes_allocated;
        out->bytes_allocated += kPageSize;
      }
      cur = child;
      continue;
    }
    assert(!(e & kLeaf) && "descending through a leaf entry");
    cur = static_cast<std::uint32_t>(payload(e));
  }
  return cur;
}

MapResult RadixPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  MapResult r;
  if (page_shift == kHugePageShift) {
    assert(leaf_level_ == 2 && "2 MB mappings need huge-page mode");
    assert((vpn & 0x1FFull) == 0 && "huge mapping must be 2 MB aligned");
    const std::uint32_t node = descend(vpn, 2, true, &r);
    std::uint64_t& e = nodes_[node].ent[radix_index(vpn, 2)];
    if (e & kPresent) r.replaced = true; else ++nodes_[node].valid;
    e = encode(pfn, /*leaf=*/true);
    return r;
  }

  assert(page_shift == kPageShift);
  // 4 KB mapping: needs an L1 node. In huge-page mode this is a splinter
  // under an L2 interior entry.
  const std::uint32_t l2 = descend(vpn, 2, true, &r);
  const unsigned i2 = radix_index(vpn, 2);
  std::uint64_t e2 = nodes_[l2].ent[i2];
  assert(!(e2 & kLeaf) && "4 KB map under an existing 2 MB leaf");
  std::uint32_t l1;
  if (!(e2 & kPresent)) {
    l1 = alloc_node(1);
    nodes_[l2].ent[i2] = encode(l1, /*leaf=*/false);
    ++nodes_[l2].valid;
    ++r.nodes_allocated;
    r.bytes_allocated += kPageSize;
  } else {
    l1 = static_cast<std::uint32_t>(payload(e2));
  }
  std::uint64_t& e1 = nodes_[l1].ent[radix_index(vpn, 1)];
  if (e1 & kPresent) r.replaced = true; else ++nodes_[l1].valid;
  e1 = encode(pfn, /*leaf=*/true);
  return r;
}

bool RadixPageTable::unmap(Vpn vpn) {
  std::uint32_t cur = root_;
  for (unsigned l = 4; l >= 1; --l) {
    const unsigned idx = radix_index(vpn, l);
    std::uint64_t& e = nodes_[cur].ent[idx];
    if (!(e & kPresent)) return false;
    if (e & kLeaf) {
      e = 0;
      --nodes_[cur].valid;
      return true;
    }
    if (l == 1) {
      e = 0;
      --nodes_[cur].valid;
      return true;
    }
    cur = static_cast<std::uint32_t>(payload(e));
  }
  return false;
}

std::optional<Pfn> RadixPageTable::lookup(Vpn vpn) const {
  std::uint32_t cur = root_;
  for (unsigned l = 4; l >= 1; --l) {
    const std::uint64_t e = nodes_[cur].ent[radix_index(vpn, l)];
    if (!(e & kPresent)) return std::nullopt;
    if (e & kLeaf) {
      const Pfn base = payload(e);
      if (l == 2) return base + (vpn & 0x1FFull);  // offset inside 2 MB page
      return base;
    }
    if (l == 1) return payload(e);
    cur = static_cast<std::uint32_t>(payload(e));
  }
  return std::nullopt;
}

bool RadixPageTable::remap(Vpn vpn, Pfn new_pfn) {
  std::uint32_t cur = root_;
  for (unsigned l = 4; l >= 1; --l) {
    std::uint64_t& e = nodes_[cur].ent[radix_index(vpn, l)];
    if (!(e & kPresent)) return false;
    if ((e & kLeaf) || l == 1) {
      assert(l == 1 && "compaction never moves 2 MB blocks");
      e = encode(new_pfn, /*leaf=*/true);
      return true;
    }
    cur = static_cast<std::uint32_t>(payload(e));
  }
  return false;
}

void RadixPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  path.reset();
  std::uint32_t cur = root_;
  unsigned group = 0;
  for (unsigned l = 4; l >= 1; --l) {
    const unsigned idx = radix_index(vpn, l);
    const std::uint64_t e = nodes_[cur].ent[idx];
    path.steps.push_back(WalkStep{entry_addr(nodes_[cur], idx), l, group++});
    if (!(e & kPresent)) return;  // faults here; steps show the visit
    if (l == 1) {
      path.mapped = true;
      path.page_shift = kPageShift;
      path.pfn = payload(e);
      return;
    }
    if (e & kLeaf) {
      path.mapped = true;
      path.page_shift = kHugePageShift;
      path.pfn = payload(e) + (vpn & 0x1FFull);
      return;
    }
    cur = static_cast<std::uint32_t>(payload(e));
  }
  return;
}

std::vector<LevelOccupancy> RadixPageTable::occupancy() const {
  std::array<LevelOccupancy, 4> per{};
  per[0].level = "PL1";
  per[1].level = "PL2";
  per[2].level = "PL3";
  per[3].level = "PL4";
  std::vector<bool> is_free(nodes_.size(), false);
  for (auto f : free_nodes_) is_free[f] = true;
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    if (is_free[id]) continue;
    const Node& n = nodes_[id];
    LevelOccupancy& o = per[n.level - 1];
    ++o.nodes;
    o.valid += n.valid;
    o.capacity += kPtesPerNode;
  }
  return {per[3], per[2], per[1], per[0]};
}

std::string RadixPageTable::name() const {
  return leaf_level_ == 1 ? "Radix4" : "HugePageRadix";
}

std::uint64_t RadixPageTable::table_bytes() const {
  return node_count() * kPageSize;
}

bool RadixPageTable::save_state(BlobWriter& out) const {
  out.str("Radix");
  out.u64(leaf_level_);
  out.u64(root_);
  out.u64(nodes_.size());
  for (const Node& n : nodes_) {
    out.u64(n.frame);
    out.u64(n.level);
    out.u64(n.valid);
    out.u64s(n.ent.data(), n.ent.size());
  }
  out.u64s(std::vector<std::uint64_t>(free_nodes_.begin(), free_nodes_.end()));
  return true;
}

bool RadixPageTable::load_state(BlobReader& in) {
  if (in.str() != "Radix" || in.u64() != leaf_level_) return false;
  const auto root = static_cast<std::uint32_t>(in.u64());
  const std::uint64_t count = in.u64();
  // Each node occupies > kPtesPerNode words, so `count <= remaining` is a
  // safe allocation guard against a corrupt length prefix.
  if (!in.ok() || count > in.remaining()) return false;
  std::vector<Node> nodes;
  nodes.reserve(count);
  for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
    Node n;
    n.frame = in.u64();
    n.level = static_cast<unsigned>(in.u64());
    n.valid = static_cast<std::uint32_t>(in.u64());
    const std::vector<std::uint64_t> ent = in.u64s();
    if (ent.size() != n.ent.size()) return false;
    std::copy(ent.begin(), ent.end(), n.ent.begin());
    nodes.push_back(std::move(n));
  }
  const std::vector<std::uint64_t> free_ids = in.u64s();
  if (!in.ok() || root >= count) return false;
  for (std::uint64_t id : free_ids)
    if (id >= count) return false;
  nodes_ = std::move(nodes);
  free_nodes_.assign(free_ids.begin(), free_ids.end());
  root_ = root;
  return true;
}

}  // namespace ndp
