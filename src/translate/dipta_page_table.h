// DIPTA-style restricted-associativity translation (Picorel et al.,
// "Near-Memory Address Translation", PACT'17) — the second related-work
// system the paper discusses (SVIII).
//
// Idea: restrict where a virtual page may live physically to a small
// associative set determined by its VA. Translation then only needs to
// resolve *which way* of the set holds the page — metadata small enough to
// sit next to the data — so a walk is a single memory access to the set's
// way-tag array. The cost is page-conflict pressure: when more hot pages
// map to a set than it has ways, the OS must evict/migrate pages
// (set-conflict faults), the degradation the paper cites.
//
// Implementation: physical memory is carved into a direct region of
// `ways`-page sets. map() places a page in its set (evicting the LRU way
// if full — an OS-visible conflict), lookup/walk resolve through the
// per-set tag array whose storage is a real physical table-block, so the
// timing model sees genuine metadata accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "os/phys_mem.h"
#include "translate/page_table.h"

namespace ndp {

struct DiptaConfig {
  unsigned ways = 4;           ///< pages per set (placement associativity)
  std::uint64_t coverage_frames = 0;  ///< 0 = size from physical memory
};

class DiptaPageTable : public PageTable {
 public:
  DiptaPageTable(PhysicalMemory& pm, DiptaConfig cfg = {});
  ~DiptaPageTable() override;

  MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) override;
  bool unmap(Vpn vpn) override;
  std::optional<Pfn> lookup(Vpn vpn) const override;
  bool remap(Vpn vpn, Pfn new_pfn) override;
  void walk_into(Vpn vpn, WalkPath& out) const override;
  std::vector<LevelOccupancy> occupancy() const override;
  std::string name() const override { return "DIPTA"; }
  std::uint64_t table_bytes() const override;
  bool save_state(BlobWriter& out) const override;
  bool load_state(BlobReader& in) override;

  /// Pages displaced because their set was full — the page-conflict
  /// pathology the paper's related-work section points at.
  std::uint64_t conflict_evictions() const { return conflict_evictions_; }
  std::uint64_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    Vpn vpn = 0;
    Pfn pfn = 0;  ///< actual frame backing the page (OS-allocated)
    bool valid = false;
    std::uint64_t lru = 0;
  };

  std::uint64_t set_of(Vpn vpn) const { return splitmix64(vpn) % num_sets_; }
  PhysAddr tag_addr(std::uint64_t set) const;

  PhysicalMemory& pm_;
  DiptaConfig cfg_;
  std::uint64_t num_sets_;
  std::vector<Way> ways_;  ///< num_sets_ x cfg_.ways
  std::vector<Pfn> tag_blocks_;  ///< physical storage of the way tags
  std::uint64_t tick_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t conflict_evictions_ = 0;
};

}  // namespace ndp
