// Page-table abstraction shared by every translation mechanism.
//
// A PageTable is both a *functional* map (vpn -> pfn, used to place data in
// physical memory) and a *structural* description of the memory accesses a
// hardware page-table walk must perform (used by the timing model). Keeping
// the two views in one object guarantees the timing model walks exactly the
// structure the OS populated — PTE physical addresses are real frame
// addresses, so they land in real DRAM banks and real cache sets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/blob.h"
#include "common/types.h"

namespace ndp {

/// One PTE memory access of a walk, root first.
struct WalkStep {
  PhysAddr pte_addr = 0;  ///< physical address of the entry to read
  /// Structural level id: 4..1 for radix levels, kFlatLevel for NDPage's
  /// merged L2/L1 node, kHashLevel for ECH ways.
  unsigned level = 0;
  /// Steps sharing a group id may be issued in parallel (ECH's d ways);
  /// groups execute in ascending order.
  unsigned group = 0;

  static constexpr unsigned kFlatLevel = 21;    ///< NDPage flattened L2/L1
  static constexpr unsigned kHybridLevel = 22;  ///< Hybrid's flat-window probe
  static constexpr unsigned kHashLevel = 99;    ///< ECH hashed buckets

  /// Radix interior/leaf levels (4..1) — the only levels PWCs cache, and
  /// therefore the only steps a PWC hit may skip. Mechanism-specific level
  /// ids (kFlatLevel, kHybridLevel, kHashLevel) must stay outside 1..4.
  static constexpr unsigned kMaxRadixLevel = 4;
  static constexpr bool is_radix_level(unsigned l) {
    return l >= 1 && l <= kMaxRadixLevel;
  }
};

/// Full walk description for one virtual page.
struct WalkPath {
  std::vector<WalkStep> steps;
  Pfn pfn = 0;
  bool mapped = false;
  unsigned page_shift = kPageShift;  ///< 12, or 21 for a huge-page leaf

  /// Make the path reusable in place: clears fields but keeps the steps
  /// vector's capacity, so a recycled WalkPath walks without allocating.
  void reset() {
    steps.clear();
    pfn = 0;
    mapped = false;
    page_shift = kPageShift;
  }
};

/// Per-level occupancy snapshot (the quantity of the paper's Fig. 8).
struct LevelOccupancy {
  std::string level;             ///< "PL4", "PL3", "PL2", "PL1", "PL2/PL1"
  std::uint64_t nodes = 0;       ///< allocated table nodes at this level
  std::uint64_t valid = 0;       ///< valid entries across those nodes
  std::uint64_t capacity = 0;    ///< nodes x entries-per-node
  double rate() const {
    return capacity ? static_cast<double>(valid) / static_cast<double>(capacity)
                    : 0.0;
  }
};

/// Outcome of a map() call, for OS cost accounting.
struct MapResult {
  unsigned nodes_allocated = 0;  ///< new table nodes the OS had to allocate
  std::uint64_t bytes_allocated = 0;  ///< table bytes those nodes cover
  bool replaced = false;         ///< an existing translation was overwritten
  /// A *different* translation this map displaced (restricted-associativity
  /// designs like DIPTA evict set conflicts). The owner must release the
  /// evicted page's frame and shoot down its TLB entries.
  std::optional<std::pair<Vpn, Pfn>> evicted;
};

class PageTable {
 public:
  virtual ~PageTable() = default;

  /// Install vpn -> pfn. `page_shift` selects the leaf size (12 or 21);
  /// a 21 mapping covers 512 consecutive vpns with one leaf entry.
  virtual MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) = 0;
  /// Remove a translation (used by tests and by huge-page splintering).
  virtual bool unmap(Vpn vpn) = 0;
  /// Functional lookup (no timing).
  virtual std::optional<Pfn> lookup(Vpn vpn) const = 0;
  /// Re-point an existing translation at a new frame (compaction support).
  virtual bool remap(Vpn vpn, Pfn new_pfn) = 0;

  /// The memory accesses a hardware walker performs for `vpn`, assuming no
  /// page-walk-cache hits. For an unmapped vpn, steps cover the levels
  /// actually visited before the walk faults.
  WalkPath walk(Vpn vpn) const {
    WalkPath p;
    walk_into(vpn, p);
    return p;
  }
  /// walk() into a caller-owned path: `out` is reset() and refilled, reusing
  /// its steps capacity. This is the engine's per-TLB-miss path — a recycled
  /// WalkPath makes a walk allocation-free after the first few ops.
  virtual void walk_into(Vpn vpn, WalkPath& out) const = 0;
  /// walk_into() with caller-provided scratch for mechanisms whose walk
  /// composes a second path internally (Hybrid's radix fallback after a
  /// flat-window tag miss). The default ignores `scratch`. The Walker calls
  /// this overload with a per-core recycled scratch path, so a mechanism
  /// never needs hidden mutable walk state to stay allocation-free in the
  /// measured loop.
  virtual void walk_into(Vpn vpn, WalkPath& out, WalkPath& scratch) const {
    (void)scratch;
    walk_into(vpn, out);
  }

  virtual std::vector<LevelOccupancy> occupancy() const = 0;
  virtual std::string name() const = 0;
  /// Bytes of physical memory consumed by table nodes.
  virtual std::uint64_t table_bytes() const = 0;

  /// Serialize the table's complete functional state for a post-prefault
  /// snapshot (sim/image_store.h). The first words must identify the
  /// concrete structure and its shape so load_state can reject a blob from
  /// a different mechanism or configuration. Returns false when the table
  /// does not support snapshotting (the default — custom registry
  /// mechanisms opt in by overriding both hooks); the Session then simply
  /// skips prepared-image caching for that design point.
  virtual bool save_state(BlobWriter& out) const {
    (void)out;
    return false;
  }
  /// Restore state written by save_state() into an identically-configured
  /// table whose PhysicalMemory has already been restored to the matching
  /// post-snapshot image — every frame the blob references is already
  /// allocated and tagged there, so the load overwrites host-side members
  /// wholesale and never allocates or frees frames. Returns false (leaving
  /// the table untouched) on a tag/shape mismatch or truncated input.
  virtual bool load_state(BlobReader& in) {
    (void)in;
    return false;
  }
};

}  // namespace ndp
