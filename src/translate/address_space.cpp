#include "translate/address_space.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ndp {

namespace {
// kswapd-style watermarks as fractions of the pool: reclaim kicks in below
// low_watermark() free frames and recovers up to high_watermark().
// (16 GB pool: low = 64 MB, high = 192 MB.)
std::uint64_t low_watermark(const PhysicalMemory& pm) {
  return pm.num_frames() / 256;
}
std::uint64_t high_watermark(const PhysicalMemory& pm) {
  return pm.num_frames() / 256 * 3;
}
}  // namespace

AddressSpace::AddressSpace(PhysicalMemory& pm, std::unique_ptr<PageTable> pt,
                           bool use_huge_pages)
    : pm_(pm), pt_(std::move(pt)), huge_(use_huge_pages),
      c_prefault_done_(stats_.counter("prefault_done")),
      c_fault_4k_(stats_.counter("fault_4k")),
      c_fault_2m_(stats_.counter("fault_2m")),
      c_fault_2m_compacted_(stats_.counter("fault_2m_compacted")),
      c_fault_2m_fallback_(stats_.counter("fault_2m_fallback")),
      c_demand_faults_(stats_.counter("demand_faults")),
      c_fault_cycles_(stats_.counter("fault_cycles")),
      c_fault_lock_wait_(stats_.counter("fault_lock_wait")),
      c_set_conflict_evictions_(stats_.counter("set_conflict_evictions")),
      c_reclaim_events_(stats_.counter("reclaim_events")),
      c_reclaimed_frames_(stats_.counter("reclaimed_frames")),
      c_reclaim_cycles_(stats_.counter("reclaim_cycles")),
      c_relocated_frames_(stats_.counter("relocated_frames")) {
  pm_.set_relocate_hook(
      [this](Pfn oldf, Pfn newf) { on_relocate(oldf, newf); });
}

AddressSpace::~AddressSpace() {
  pm_.set_relocate_hook(nullptr);
  // Return data frames; the page table returns its own frames in its dtor.
  for (const auto& [pfn, vpn] : frame_owner_) {
    (void)vpn;
    pm_.free_frame(pfn);
  }
  for (const auto& [vpn, base] : huge_blocks_) {
    (void)vpn;
    pm_.free_huge(base);
  }
}

void AddressSpace::add_region(VmRegion region) {
  assert(region.bytes > 0);
  assert(page_offset(region.base) == 0 && "regions must be page aligned");
  regions_.push_back(std::move(region));
}

void AddressSpace::prefault_all() {
  for (const VmRegion& r : regions_) {
    if (!r.prefault) continue;
    if (huge_) {
      // Round the region outward to 2 MB boundaries; THP-style policy maps
      // the whole extent with huge pages where possible.
      const Vpn first = vpn_of(r.base) & ~0x1FFull;
      const Vpn last = vpn_of(r.end() - 1) | 0x1FFull;
      for (Vpn v = first; v <= last; v += 512) {
        if (!pt_->lookup(v)) fault_in_2m(v);
      }
    } else {
      for (Vpn v = vpn_of(r.base); v <= vpn_of(r.end() - 1); ++v) {
        if (!pt_->lookup(v)) fault_in_4k(v);
      }
    }
  }
  c_prefault_done_->add();
}

Cycle AddressSpace::maybe_reclaim(std::uint64_t frames_needed) {
  if (pm_.free_frames() >= low_watermark(pm_) + frames_needed) return 0;
  Cycle cost = pm_.costs().shootdown;  // one IPI round per reclaim batch
  std::uint64_t freed = 0;
  const std::uint64_t goal = high_watermark(pm_) + frames_needed;
  auto unmap_4k = [&](Vpn vpn) -> bool {
    const auto pfn = pt_->lookup(vpn);
    if (!pfn) return false;
    // Only 4 KB mappings sit in fifo_4k_; huge blocks live in fifo_2m_.
    if (!pt_->unmap(vpn)) return false;
    frame_owner_.erase(*pfn);
    pm_.free_frame(*pfn);
    --mapped_4k_;
    ++freed;
    cost += pm_.costs().reclaim_per_frame;
    if (shootdown_) shootdown_(vpn);
    return true;
  };
  while (pm_.free_frames() < goal && (!fifo_4k_.empty() || !fifo_2m_.empty())) {
    // Alternate: prefer reclaiming huge blocks first when present — they
    // recover 512 frames per unmap and are the bloat we are fighting.
    if (!fifo_2m_.empty()) {
      const Vpn base = fifo_2m_.front();
      fifo_2m_.pop_front();
      auto it = huge_blocks_.find(base);
      if (it == huge_blocks_.end()) continue;  // stale entry
      pt_->unmap(base);
      pm_.free_huge(it->second);
      huge_blocks_.erase(it);
      --mapped_2m_;
      freed += 512;
      // Sequential writeback of 2 MB is far cheaper per frame than random
      // 4 KB swaps; charge a quarter of the per-frame rate.
      cost += 512 * (pm_.costs().reclaim_per_frame / 4);
      if (shootdown_) shootdown_(base);
      continue;
    }
    const Vpn vpn = fifo_4k_.front();
    fifo_4k_.pop_front();
    unmap_4k(vpn);
  }
  c_reclaim_events_->add();
  c_reclaimed_frames_->add(freed);
  c_reclaim_cycles_->add(cost);
  return cost;
}

Cycle AddressSpace::fault_in_4k(Vpn vpn) {
  const Pfn pfn = pm_.alloc_frame(FrameUse::kData);
  const MapResult mr = pt_->map(vpn, pfn, kPageShift);
  frame_owner_[pfn] = vpn;
  fifo_4k_.push_back(vpn);
  ++mapped_4k_;
  c_fault_4k_->add();
  Cycle extra = 0;
  if (mr.evicted) {
    // Restricted-associativity set conflict: the displaced page is gone —
    // release its frame, forget it, and shoot down stale TLB entries. The
    // page re-faults on its next touch (DIPTA's page-conflict penalty).
    const auto [evpn, epfn] = *mr.evicted;
    frame_owner_.erase(epfn);
    pm_.free_frame(epfn);
    --mapped_4k_;
    if (shootdown_) shootdown_(evpn);
    c_set_conflict_evictions_->add();
    extra += pm_.costs().reclaim_per_frame + pm_.costs().shootdown;
  }
  // Node allocations are zeroed 4 KB frames: charge like small faults.
  return extra + pm_.costs().fault_4k() +
         (mr.bytes_allocated / 1024) * pm_.costs().zero_per_kb;
}

Cycle AddressSpace::fault_in_2m(Vpn vpn_aligned) {
  assert((vpn_aligned & 0x1FFull) == 0);
  const PhysicalMemory::HugeResult hr = pm_.alloc_huge();
  if (!hr.fell_back) {
    const MapResult mr = pt_->map(vpn_aligned, hr.base, kHugePageShift);
    huge_blocks_[vpn_aligned] = hr.base;
    fifo_2m_.push_back(vpn_aligned);
    ++mapped_2m_;
    c_fault_2m_->add();
    if (hr.used_compaction) c_fault_2m_compacted_->add();
    return hr.cost + (mr.bytes_allocated / 1024) * pm_.costs().zero_per_kb;
  }
  // THP failure: splinter to a single 4 KB page for the touched vpn's slot.
  // The failed huge attempt still cost the allocation/compaction scan.
  c_fault_2m_fallback_->add();
  return pm_.costs().huge_fault_extra + fault_in_4k(vpn_aligned);
}

AddressSpace::TouchResult AddressSpace::touch(VirtAddr va, Cycle now) {
  const Vpn vpn = vpn_of(va);
  if (pt_->lookup(vpn)) return TouchResult{};
  TouchResult r;
  r.faulted = true;
  // mmap-lock: wait out any fault still being serviced.
  const Cycle lock_wait = now < fault_lock_until_ ? fault_lock_until_ - now : 0;
  Cycle work = maybe_reclaim(huge_ ? 512 : 1);
  if (huge_) {
    const Vpn aligned = vpn & ~0x1FFull;
    work += fault_in_2m(aligned);
    // Splintered fallback maps only `aligned`; make sure the touched page
    // itself is resident.
    if (!pt_->lookup(vpn)) work += fault_in_4k(vpn);
  } else {
    work += fault_in_4k(vpn);
  }
  fault_lock_until_ = std::max(fault_lock_until_, now) + work;
  r.cost = lock_wait + work;
  c_demand_faults_->add();
  c_fault_cycles_->add(r.cost);
  c_fault_lock_wait_->add(lock_wait);
  return r;
}

void AddressSpace::touch_untimed(VirtAddr va) {
  const Vpn vpn = vpn_of(va);
  if (pt_->lookup(vpn)) return;
  if (huge_) {
    const Vpn aligned = vpn & ~0x1FFull;
    fault_in_2m(aligned);
    if (!pt_->lookup(vpn)) fault_in_4k(vpn);
  } else {
    fault_in_4k(vpn);
  }
}

std::optional<PhysAddr> AddressSpace::translate(VirtAddr va) const {
  const auto pfn = pt_->lookup(vpn_of(va));
  if (!pfn) return std::nullopt;
  return frame_base(*pfn) + page_offset(va);
}

void AddressSpace::on_relocate(Pfn old_pfn, Pfn new_pfn) {
  auto it = frame_owner_.find(old_pfn);
  assert(it != frame_owner_.end() &&
         "compaction moved a data frame this space does not own");
  const Vpn vpn = it->second;
  const bool ok = pt_->remap(vpn, new_pfn);
  assert(ok && "reverse map points at an unmapped vpn");
  (void)ok;
  frame_owner_.erase(it);
  frame_owner_[new_pfn] = vpn;
  // The frame moved under the translation: TLBs must not serve the old pa.
  if (shootdown_) shootdown_(vpn);
  c_relocated_frames_->add();
}

void AddressSpace::save_state(BlobWriter& out) const {
  out.str("AddressSpace");
  out.u64(huge_ ? 1 : 0);
  out.u64(regions_.size());
  for (const VmRegion& r : regions_) {
    out.str(r.name);
    out.u64(r.base);
    out.u64(r.bytes);
    out.u64(r.prefault ? 1 : 0);
  }
  // Hash maps serialize sorted by key so identical state always produces
  // identical bytes (the store's byte-identity contract).
  std::vector<std::pair<Pfn, Vpn>> owners(frame_owner_.begin(),
                                          frame_owner_.end());
  std::sort(owners.begin(), owners.end());
  std::vector<std::uint64_t> opfns(owners.size()), ovpns(owners.size());
  for (std::size_t i = 0; i < owners.size(); ++i) {
    opfns[i] = owners[i].first;
    ovpns[i] = owners[i].second;
  }
  out.u64s(opfns);
  out.u64s(ovpns);
  std::vector<std::pair<Vpn, Pfn>> huge(huge_blocks_.begin(),
                                        huge_blocks_.end());
  std::sort(huge.begin(), huge.end());
  std::vector<std::uint64_t> hvpns(huge.size()), hpfns(huge.size());
  for (std::size_t i = 0; i < huge.size(); ++i) {
    hvpns[i] = huge[i].first;
    hpfns[i] = huge[i].second;
  }
  out.u64s(hvpns);
  out.u64s(hpfns);
  out.u64s(std::vector<std::uint64_t>(fifo_4k_.begin(), fifo_4k_.end()));
  out.u64s(std::vector<std::uint64_t>(fifo_2m_.begin(), fifo_2m_.end()));
  out.u64(fault_lock_until_);
  out.u64(mapped_4k_);
  out.u64(mapped_2m_);
  stats_.save_state(out);
}

bool AddressSpace::load_state(BlobReader& in) {
  if (in.str() != "AddressSpace" || in.u64() != (huge_ ? 1u : 0u))
    return false;
  const std::uint64_t n_regions = in.u64();
  if (!in.ok() || n_regions > in.remaining()) return false;
  std::vector<VmRegion> regions;
  regions.reserve(n_regions);
  for (std::uint64_t i = 0; i < n_regions && in.ok(); ++i) {
    VmRegion r;
    r.name = in.str();
    r.base = in.u64();
    r.bytes = in.u64();
    r.prefault = in.u64() != 0;
    regions.push_back(std::move(r));
  }
  const std::vector<std::uint64_t> opfns = in.u64s();
  const std::vector<std::uint64_t> ovpns = in.u64s();
  const std::vector<std::uint64_t> hvpns = in.u64s();
  const std::vector<std::uint64_t> hpfns = in.u64s();
  const std::vector<std::uint64_t> f4 = in.u64s();
  const std::vector<std::uint64_t> f2 = in.u64s();
  const Cycle lock_until = in.u64();
  const std::uint64_t m4 = in.u64();
  const std::uint64_t m2 = in.u64();
  if (!in.ok() || opfns.size() != ovpns.size() || hvpns.size() != hpfns.size())
    return false;
  if (!stats_.load_state(in)) return false;
  regions_ = std::move(regions);
  frame_owner_.clear();
  frame_owner_.reserve(opfns.size());
  for (std::size_t i = 0; i < opfns.size(); ++i)
    frame_owner_.emplace(opfns[i], ovpns[i]);
  huge_blocks_.clear();
  huge_blocks_.reserve(hvpns.size());
  for (std::size_t i = 0; i < hvpns.size(); ++i)
    huge_blocks_.emplace(hvpns[i], hpfns[i]);
  fifo_4k_.assign(f4.begin(), f4.end());
  fifo_2m_.assign(f2.begin(), f2.end());
  fault_lock_until_ = lock_until;
  mapped_4k_ = m4;
  mapped_2m_ = m2;
  // PhysicalMemory::restore() cleared the relocate hook; this space owns
  // the restored frames again, so compaction callbacks must reach it.
  pm_.set_relocate_hook(
      [this](Pfn oldf, Pfn newf) { on_relocate(oldf, newf); });
  return true;
}

}  // namespace ndp
