// Page-walk caches (paper §V-C; Barr et al., "Translation caching").
//
// PWC for level k caches *entries of level-k tables*, keyed by the virtual
// address prefix that indexes levels 4..k. A hit at level k lets the walker
// skip the memory accesses for levels 4..k and resume at level k-1.
//
// The paper's NDPage keeps PWCs for L4 and L3 only; the Radix baseline has
// one per level (L4..L1) — the configuration lives with the mechanism
// (core/mechanism.*), this file is the structure.
//
// Storage is structure-of-arrays, like the TLBs (translate/tlb.h): a probe
// is a contiguous scan of a set's tag column with kInvalidTag marking empty
// ways, and the PwcSet keeps its per-level caches in a flat level-sorted
// vector — deepest_hit() and the per-step fill() are linear passes over at
// most four elements instead of red-black-tree walks. lookup()/insert() sit
// on every TLB-miss (once per level, 1-2 levels per mechanism) and are
// defined inline here.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "translate/page_table.h"

namespace ndp {

struct PwcConfig {
  unsigned entries = 32;
  unsigned ways = 4;
  Cycle latency = 2;  ///< all levels probe in parallel; charged once per walk
};

/// One level's PWC.
class Pwc {
 public:
  Pwc(unsigned level, PwcConfig cfg);

  /// Prefix for this level: the VA bits that index levels 4..level.
  std::uint64_t prefix_of(Vpn vpn) const {
    return vpn >> (9u * (level_ - 1u));
  }

  bool lookup(Vpn vpn) {
    ++tick_;
    const std::uint64_t tag = prefix_of(vpn);
    const std::size_t base =
        static_cast<std::size_t>(tag % num_sets_) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        lru_[base + w] = tick_;
        ++counters_.hits;
        return true;
      }
    }
    ++counters_.misses;
    return false;
  }

  void insert(Vpn vpn) {
    ++tick_;
    const std::uint64_t tag = prefix_of(vpn);
    const std::size_t base =
        static_cast<std::size_t>(tag % num_sets_) * ways_;
    // Refresh / first-empty-way / strict-min LRU, in one pass with the same
    // victim choice the per-way line scan made: an empty way always wins
    // over any valid way, ties keep the earliest way.
    unsigned victim = 0;
    bool victim_empty = false;
    for (unsigned w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {  // already present: refresh
        lru_[base + w] = tick_;
        return;
      }
      if (victim_empty) continue;
      if (tags_[base + w] == kInvalidTag) {
        victim = w;
        victim_empty = true;
      } else if (lru_[base + w] < lru_[base + victim]) {
        victim = w;
      }
    }
    tags_[base + victim] = tag;
    lru_[base + victim] = tick_;
  }

  struct Counters {
    std::uint64_t hits = 0, misses = 0;
  };

  unsigned level() const { return level_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  StatSet snapshot() const;
  double hit_rate() const {
    const double t = static_cast<double>(counters_.hits + counters_.misses);
    return t > 0 ? static_cast<double>(counters_.hits) / t : 0.0;
  }

 private:
  /// Empty-way marker: a tag is vpn >> 9(level-1) for a canonical virtual
  /// address, always far below 2^64.
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  unsigned level_;
  PwcConfig cfg_;
  unsigned num_sets_;
  unsigned ways_;
  std::vector<std::uint64_t> tags_;  ///< per-set contiguous columns
  std::vector<std::uint64_t> lru_;
  std::uint64_t tick_ = 0;
  Counters counters_;
};

/// The per-walker collection: one Pwc per configured level.
class PwcSet {
 public:
  /// `levels`: which radix levels get a PWC (e.g. {4,3,2,1} or {4,3}).
  /// `entries_per_level` overrides `cfg.entries` for the listed levels
  /// (per-level PWC sizing; levels not listed keep the shared default).
  PwcSet(const std::vector<unsigned>& levels, PwcConfig cfg,
         const std::map<unsigned, unsigned>& entries_per_level = {});

  /// Deepest (smallest) level with a hit for vpn, or 0 if none. Probes every
  /// level (hardware probes in parallel), so per-level stats stay honest.
  unsigned deepest_hit(Vpn vpn) {
    unsigned deepest = 0;
    // caches_ is sorted by ascending level: the first hit is the deepest.
    for (Pwc& pwc : caches_) {
      if (pwc.lookup(vpn) && deepest == 0) deepest = pwc.level();
    }
    return deepest;
  }
  /// Record the traversed levels of a completed walk.
  void fill(Vpn vpn, const std::vector<unsigned>& walked_levels);
  /// Refill from a walk path directly (the walker's hot path — no
  /// intermediate level list is materialized).
  void fill(Vpn vpn, const WalkPath& path) {
    for (const WalkStep& s : path.steps) {
      for (Pwc& pwc : caches_) {
        if (pwc.level() == s.level) {
          pwc.insert(vpn);
          break;
        }
      }
    }
  }

  bool has_level(unsigned level) const;
  Pwc* level(unsigned l);
  const Pwc* level(unsigned l) const;
  Cycle latency() const { return caches_.empty() ? 0 : cfg_.latency; }
  std::vector<unsigned> levels() const;

 private:
  PwcConfig cfg_;
  std::vector<Pwc> caches_;  ///< sorted by ascending level, unique levels
};

}  // namespace ndp
