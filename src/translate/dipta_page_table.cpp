#include "translate/dipta_page_table.h"

#include <cassert>

namespace ndp {

namespace {
// One 8 B tag word per set (way tags packed): the whole tag array for a
// 16 GB machine is 8 MB, stored in real order-9 table blocks.
constexpr std::uint64_t kTagBytesPerSet = 8;
constexpr std::uint64_t kBlockBytes = 2ull << 20;
constexpr unsigned kBlockOrder = 9;
}  // namespace

DiptaPageTable::DiptaPageTable(PhysicalMemory& pm, DiptaConfig cfg)
    : pm_(pm), cfg_(cfg) {
  assert(cfg_.ways >= 1 && cfg_.ways <= 16);
  const std::uint64_t frames =
      cfg_.coverage_frames ? cfg_.coverage_frames : pm.num_frames();
  num_sets_ = frames / cfg_.ways;
  assert(num_sets_ > 0);
  ways_.resize(num_sets_ * cfg_.ways);
  const std::uint64_t tag_bytes = num_sets_ * kTagBytesPerSet;
  const std::uint64_t blocks = (tag_bytes + kBlockBytes - 1) / kBlockBytes;
  for (std::uint64_t b = 0; b < blocks; ++b)
    tag_blocks_.push_back(pm_.alloc_table_block(kBlockOrder));
}

DiptaPageTable::~DiptaPageTable() {
  for (Pfn base : tag_blocks_) pm_.free_table_block(base, kBlockOrder);
}

PhysAddr DiptaPageTable::tag_addr(std::uint64_t set) const {
  const std::uint64_t byte = set * kTagBytesPerSet;
  return frame_base(tag_blocks_[byte / kBlockBytes]) + (byte % kBlockBytes);
}

MapResult DiptaPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift && "DIPTA places 4 KB pages");
  (void)page_shift;
  MapResult r;
  const std::uint64_t set = set_of(vpn);
  Way* base = &ways_[set * cfg_.ways];
  ++tick_;
  // Refresh if present.
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].vpn == vpn) {
      base[w].pfn = pfn;
      base[w].lru = tick_;
      r.replaced = true;
      return r;
    }
  }
  // Free way, else evict the set's LRU page (an OS-level conflict: the
  // displaced translation is simply lost, like an eviction to swap).
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) {
    ++conflict_evictions_;
    --live_;
    r.evicted = {victim->vpn, victim->pfn};
  }
  *victim = Way{vpn, pfn, true, tick_};
  ++live_;
  return r;
}

bool DiptaPageTable::unmap(Vpn vpn) {
  Way* base = &ways_[set_of(vpn) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].vpn == vpn) {
      base[w].valid = false;
      --live_;
      return true;
    }
  }
  return false;
}

std::optional<Pfn> DiptaPageTable::lookup(Vpn vpn) const {
  const Way* base = &ways_[set_of(vpn) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].vpn == vpn) return base[w].pfn;
  return std::nullopt;
}

bool DiptaPageTable::remap(Vpn vpn, Pfn new_pfn) {
  Way* base = &ways_[set_of(vpn) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].vpn == vpn) {
      base[w].pfn = new_pfn;
      return true;
    }
  }
  return false;
}

void DiptaPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  // One access to the set's way-tag word resolves the translation.
  path.reset();
  path.steps.push_back(WalkStep{tag_addr(set_of(vpn)), WalkStep::kHashLevel, 0});
  if (auto pfn = lookup(vpn)) {
    path.mapped = true;
    path.pfn = *pfn;
    path.page_shift = kPageShift;
  }
}

std::vector<LevelOccupancy> DiptaPageTable::occupancy() const {
  LevelOccupancy o;
  o.level = "DIPTA";
  o.nodes = num_sets_;
  o.valid = live_;
  o.capacity = num_sets_ * cfg_.ways;
  return {o};
}

std::uint64_t DiptaPageTable::table_bytes() const {
  return tag_blocks_.size() * kBlockBytes;
}

bool DiptaPageTable::save_state(BlobWriter& out) const {
  out.str("DIPTA");
  out.u64(cfg_.ways);
  out.u64(num_sets_);
  const std::uint64_t n = ways_.size();
  std::vector<std::uint64_t> vpns(n), pfns(n), lrus(n);
  std::vector<std::uint64_t> valid((n + 63) / 64, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    vpns[i] = ways_[i].vpn;
    pfns[i] = ways_[i].pfn;
    lrus[i] = ways_[i].lru;
    if (ways_[i].valid) valid[i >> 6] |= 1ull << (i & 63);
  }
  out.u64s(vpns);
  out.u64s(pfns);
  out.u64s(lrus);
  out.u64s(valid);
  out.u64s(tag_blocks_);
  out.u64(tick_);
  out.u64(live_);
  out.u64(conflict_evictions_);
  return true;
}

bool DiptaPageTable::load_state(BlobReader& in) {
  if (in.str() != "DIPTA" || in.u64() != cfg_.ways || in.u64() != num_sets_)
    return false;
  const std::vector<std::uint64_t> vpns = in.u64s();
  const std::vector<std::uint64_t> pfns = in.u64s();
  const std::vector<std::uint64_t> lrus = in.u64s();
  const std::vector<std::uint64_t> valid = in.u64s();
  const std::vector<std::uint64_t> tags = in.u64s();
  const std::uint64_t tick = in.u64();
  const std::uint64_t live = in.u64();
  const std::uint64_t conflicts = in.u64();
  const std::uint64_t n = ways_.size();
  if (!in.ok() || vpns.size() != n || pfns.size() != n || lrus.size() != n ||
      valid.size() != (n + 63) / 64 || tags.size() != tag_blocks_.size())
    return false;
  for (std::uint64_t i = 0; i < n; ++i)
    ways_[i] = Way{vpns[i], pfns[i], ((valid[i >> 6] >> (i & 63)) & 1ull) != 0,
                   lrus[i]};
  tag_blocks_ = tags;
  tick_ = tick;
  live_ = live;
  conflict_evictions_ = conflicts;
  return true;
}

}  // namespace ndp
