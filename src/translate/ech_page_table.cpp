#include "translate/ech_page_table.h"

#include <cassert>

namespace ndp {

namespace {
// Way storage comes in order-9 (2 MB) blocks: the largest size the OS can
// guarantee via compaction on a fragmented pool.
constexpr std::uint64_t kChunkFrames = 1ull << 9;
constexpr std::uint64_t kChunkBytes = kChunkFrames * kPageSize;

constexpr std::uint64_t kWaySeed[8] = {
    0x9E3779B97F4A7C15ull, 0xC2B2AE3D27D4EB4Full, 0x165667B19E3779F9ull,
    0x27D4EB2F165667C5ull, 0x85EBCA77C2B2AE63ull, 0x2545F4914F6CDD1Dull,
    0xFF51AFD7ED558CCDull, 0xC4CEB9FE1A85EC53ull};
}  // namespace

EchPageTable::EchPageTable(PhysicalMemory& pm, EchConfig cfg)
    : pm_(pm), cfg_(cfg), entries_per_way_(cfg.initial_entries_per_way),
      rng_(0xEC8C00C00ull) {
  assert(cfg_.ways >= 2 && cfg_.ways <= 8);
  // Round entries per way up to a power of two for mask hashing.
  std::uint64_t n = 1;
  while (n < entries_per_way_) n <<= 1;
  entries_per_way_ = n;
  ways_ = allocate_ways(entries_per_way_);
  block_bytes_ = block_bytes_for(entries_per_way_);
  block_shift_ = 0;
  while ((1ull << block_shift_) < block_bytes_) ++block_shift_;
}

EchPageTable::~EchPageTable() { release_ways(ways_, entries_per_way_); }

std::uint64_t EchPageTable::block_bytes_for(std::uint64_t epw) {
  const std::uint64_t way_bytes = epw * kPteSize;
  return std::min<std::uint64_t>(std::max<std::uint64_t>(way_bytes, kPageSize),
                                 kChunkBytes);
}

unsigned EchPageTable::block_order_for(std::uint64_t epw) {
  unsigned order = 0;
  while ((kPageSize << order) < block_bytes_for(epw)) ++order;
  return order;
}

std::vector<EchPageTable::Way> EchPageTable::allocate_ways(std::uint64_t epw) {
  std::vector<Way> ways(cfg_.ways);
  const std::uint64_t way_bytes = std::max<std::uint64_t>(epw * kPteSize, kPageSize);
  const std::uint64_t bb = block_bytes_for(epw);
  const std::uint64_t blocks = (way_bytes + bb - 1) / bb;
  for (auto& way : ways) {
    way.vpns.assign(epw, 0);
    way.pfns.assign(epw, 0);
    way.valid.assign((epw + 63) / 64, 0);
    for (std::uint64_t b = 0; b < blocks; ++b)
      way.blocks.push_back(pm_.alloc_table_block(block_order_for(epw)));
  }
  return ways;
}

void EchPageTable::release_ways(std::vector<Way>& ways, std::uint64_t epw) {
  for (auto& way : ways) {
    for (Pfn base : way.blocks) pm_.free_table_block(base, block_order_for(epw));
    way.blocks.clear();
  }
}

std::uint64_t EchPageTable::hash(unsigned way, Vpn vpn) const {
  return splitmix64(vpn ^ kWaySeed[way]) & (entries_per_way_ - 1);
}

void EchPageTable::hash_all(Vpn vpn, std::uint64_t* idx) const {
  const std::uint64_t mask = entries_per_way_ - 1;
  for (unsigned w = 0; w < cfg_.ways; ++w)
    idx[w] = splitmix64(vpn ^ kWaySeed[w]) & mask;
}

PhysAddr EchPageTable::slot_addr(unsigned way, std::uint64_t idx) const {
  const Way& w = ways_[way];
  const std::uint64_t byte = idx * kPteSize;
  return frame_base(w.blocks[byte >> block_shift_]) +
         (byte & (block_bytes_ - 1));
}

bool EchPageTable::insert(Vpn vpn, Pfn pfn, unsigned depth_budget) {
  // Overwrite if present in any way.
  std::uint64_t idx[8];
  hash_all(vpn, idx);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[w];
    if (way.is_valid(idx[w]) && way.vpns[idx[w]] == vpn) {
      way.pfns[idx[w]] = pfn;
      return true;
    }
  }
  Vpn cur_vpn = vpn;
  Pfn cur_pfn = pfn;
  unsigned way = static_cast<unsigned>(rng_.below(cfg_.ways));
  for (unsigned d = 0; d < depth_budget; ++d) {
    // Prefer any empty candidate bucket first.
    hash_all(cur_vpn, idx);
    for (unsigned w = 0; w < cfg_.ways; ++w) {
      Way& wy = ways_[w];
      if (!wy.is_valid(idx[w])) {
        wy.vpns[idx[w]] = cur_vpn;
        wy.pfns[idx[w]] = cur_pfn;
        wy.set_valid(idx[w]);
        ++live_;
        return true;
      }
    }
    // Displace the occupant of a pseudo-random way and re-home it.
    Way& vw = ways_[way];
    std::swap(cur_vpn, vw.vpns[idx[way]]);
    std::swap(cur_pfn, vw.pfns[idx[way]]);
    way = (way + 1 + static_cast<unsigned>(rng_.below(cfg_.ways - 1))) % cfg_.ways;
  }
  // Put the homeless entry back is unnecessary: the displaced chain keeps
  // all *other* entries stored; only (cur_vpn, cur_pfn) is pending. The
  // caller resizes and re-inserts it.
  pending_ = Slot{cur_vpn, cur_pfn, true};
  return false;
}

void EchPageTable::resize() {
  ++resizes_;
  // Allocate the doubled geometry while the current table is still live:
  // block allocation can trigger compaction, whose relocation callbacks
  // consult this table via remap().
  const std::uint64_t new_epw = entries_per_way_ << 1;
  std::vector<Way> new_ways = allocate_ways(new_epw);

  std::vector<Slot> live;
  live.reserve(live_ + 1);
  for (const Way& way : ways_)
    for (std::uint64_t i = 0; i < entries_per_way_; ++i)
      if (way.is_valid(i)) live.push_back(Slot{way.vpns[i], way.pfns[i], true});
  if (pending_.valid) {
    live.push_back(pending_);
    pending_.valid = false;
  }

  std::vector<Way> old_ways = std::move(ways_);
  const std::uint64_t old_epw = entries_per_way_;
  ways_ = std::move(new_ways);
  entries_per_way_ = new_epw;
  block_bytes_ = block_bytes_for(new_epw);
  block_shift_ = 0;
  while ((1ull << block_shift_) < block_bytes_) ++block_shift_;
  live_ = 0;
  for (const Slot& s : live) {
    const bool ok = insert(s.vpn, s.pfn, cfg_.max_displacements);
    assert(ok && "resize rehash failed — table badly undersized");
    (void)ok;
  }
  release_ways(old_ways, old_epw);
}

MapResult EchPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift &&
         "this ECH instantiation stores 4 KB translations");
  (void)page_shift;
  MapResult r;
  if (load_factor() > cfg_.max_load_factor) {
    resize();
    r.nodes_allocated += 1;  // resize charged as one big event
    r.bytes_allocated += table_bytes();
  }
  while (!insert(vpn, pfn, cfg_.max_displacements)) {
    resize();
    r.nodes_allocated += 1;
    r.bytes_allocated += table_bytes();
  }
  return r;
}

bool EchPageTable::unmap(Vpn vpn) {
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[w];
    const std::uint64_t i = hash(w, vpn);
    if (way.is_valid(i) && way.vpns[i] == vpn) {
      way.clear_valid(i);
      --live_;
      return true;
    }
  }
  return false;
}

std::optional<Pfn> EchPageTable::lookup(Vpn vpn) const {
  std::uint64_t idx[8];
  hash_all(vpn, idx);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Way& way = ways_[w];
    if (way.is_valid(idx[w]) && way.vpns[idx[w]] == vpn)
      return way.pfns[idx[w]];
  }
  return std::nullopt;
}

bool EchPageTable::remap(Vpn vpn, Pfn new_pfn) {
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[w];
    const std::uint64_t i = hash(w, vpn);
    if (way.is_valid(i) && way.vpns[i] == vpn) {
      way.pfns[i] = new_pfn;
      return true;
    }
  }
  return false;
}

void EchPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  path.reset();
  // Probes issue `probe_width` at a time; groups serialize. The default
  // (probe_width 0 / >= ways) keeps every way in one parallel group.
  const unsigned width = cfg_.probe_width && cfg_.probe_width < cfg_.ways
                             ? cfg_.probe_width
                             : cfg_.ways;
  // One hash pass serves both the step layout and the functional lookup —
  // the old code rehashed every way twice per walk.
  std::uint64_t idx[8];
  hash_all(vpn, idx);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    path.steps.push_back(
        WalkStep{slot_addr(w, idx[w]), WalkStep::kHashLevel, w / width});
  }
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Way& way = ways_[w];
    if (way.is_valid(idx[w]) && way.vpns[idx[w]] == vpn) {
      path.mapped = true;
      path.pfn = way.pfns[idx[w]];
      path.page_shift = kPageShift;
      break;
    }
  }
}

std::vector<LevelOccupancy> EchPageTable::occupancy() const {
  LevelOccupancy o;
  o.level = "ECH";
  o.nodes = cfg_.ways;
  o.valid = live_;
  o.capacity = static_cast<std::uint64_t>(cfg_.ways) * entries_per_way_;
  return {o};
}

std::uint64_t EchPageTable::table_bytes() const {
  return static_cast<std::uint64_t>(cfg_.ways) * entries_per_way_ * kPteSize;
}

double EchPageTable::load_factor() const {
  return static_cast<double>(live_) /
         static_cast<double>(static_cast<std::uint64_t>(cfg_.ways) *
                             entries_per_way_);
}

bool EchPageTable::save_state(BlobWriter& out) const {
  out.str("ECH");
  out.u64(cfg_.ways);
  out.u64(entries_per_way_);
  for (const Way& way : ways_) {
    // Column encoding, unchanged since the AoS layout (which transposed on
    // save): vpn and pfn words, valid packed 64/word. The SoA members *are*
    // the columns, so this is three bulk copies.
    out.u64s(way.vpns);
    out.u64s(way.pfns);
    out.u64s(way.valid);
    out.u64s(way.blocks);
  }
  out.u64(pending_.vpn);
  out.u64(pending_.pfn);
  out.u64(pending_.valid ? 1 : 0);
  out.u64(live_);
  out.u64(resizes_);
  std::uint64_t rs[4];
  rng_.save_state(rs);
  out.u64s(rs, 4);
  return true;
}

bool EchPageTable::load_state(BlobReader& in) {
  if (in.str() != "ECH" || in.u64() != cfg_.ways) return false;
  const std::uint64_t epw = in.u64();
  if (!in.ok() || epw == 0 || (epw & (epw - 1)) != 0) return false;
  std::vector<Way> ways(cfg_.ways);
  for (Way& way : ways) {
    way.vpns = in.u64s();
    way.pfns = in.u64s();
    way.valid = in.u64s();
    way.blocks = in.u64s();
    if (!in.ok() || way.vpns.size() != epw || way.pfns.size() != epw ||
        way.valid.size() != (epw + 63) / 64 || way.blocks.empty())
      return false;
  }
  Slot pending;
  pending.vpn = in.u64();
  pending.pfn = in.u64();
  pending.valid = in.u64() != 0;
  const std::uint64_t live = in.u64();
  const std::uint64_t resizes = in.u64();
  const std::vector<std::uint64_t> rs = in.u64s();
  if (!in.ok() || rs.size() != 4) return false;
  // The snapshot's blocks replace the constructor's initial allocation
  // wholesale: the restored PhysicalMemory pool already accounts for both
  // (initial blocks freed by the snapshot-time resize, resized blocks live).
  ways_ = std::move(ways);
  entries_per_way_ = epw;
  block_bytes_ = block_bytes_for(epw);
  block_shift_ = 0;
  while ((1ull << block_shift_) < block_bytes_) ++block_shift_;
  pending_ = pending;
  live_ = live;
  resizes_ = resizes;
  rng_.load_state(rs.data());
  return true;
}

}  // namespace ndp
