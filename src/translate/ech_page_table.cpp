#include "translate/ech_page_table.h"

#include <cassert>

namespace ndp {

namespace {
// Way storage comes in order-9 (2 MB) blocks: the largest size the OS can
// guarantee via compaction on a fragmented pool.
constexpr std::uint64_t kChunkFrames = 1ull << 9;
constexpr std::uint64_t kChunkBytes = kChunkFrames * kPageSize;

constexpr std::uint64_t kWaySeed[8] = {
    0x9E3779B97F4A7C15ull, 0xC2B2AE3D27D4EB4Full, 0x165667B19E3779F9ull,
    0x27D4EB2F165667C5ull, 0x85EBCA77C2B2AE63ull, 0x2545F4914F6CDD1Dull,
    0xFF51AFD7ED558CCDull, 0xC4CEB9FE1A85EC53ull};
}  // namespace

EchPageTable::EchPageTable(PhysicalMemory& pm, EchConfig cfg)
    : pm_(pm), cfg_(cfg), entries_per_way_(cfg.initial_entries_per_way),
      rng_(0xEC8C00C00ull) {
  assert(cfg_.ways >= 2 && cfg_.ways <= 8);
  // Round entries per way up to a power of two for mask hashing.
  std::uint64_t n = 1;
  while (n < entries_per_way_) n <<= 1;
  entries_per_way_ = n;
  ways_ = allocate_ways(entries_per_way_);
}

EchPageTable::~EchPageTable() { release_ways(ways_, entries_per_way_); }

std::uint64_t EchPageTable::block_bytes_for(std::uint64_t epw) {
  const std::uint64_t way_bytes = epw * kPteSize;
  return std::min<std::uint64_t>(std::max<std::uint64_t>(way_bytes, kPageSize),
                                 kChunkBytes);
}

unsigned EchPageTable::block_order_for(std::uint64_t epw) {
  unsigned order = 0;
  while ((kPageSize << order) < block_bytes_for(epw)) ++order;
  return order;
}

std::vector<EchPageTable::Way> EchPageTable::allocate_ways(std::uint64_t epw) {
  std::vector<Way> ways(cfg_.ways);
  const std::uint64_t way_bytes = std::max<std::uint64_t>(epw * kPteSize, kPageSize);
  const std::uint64_t bb = block_bytes_for(epw);
  const std::uint64_t blocks = (way_bytes + bb - 1) / bb;
  for (auto& way : ways) {
    way.slots.assign(epw, Slot{});
    for (std::uint64_t b = 0; b < blocks; ++b)
      way.blocks.push_back(pm_.alloc_table_block(block_order_for(epw)));
  }
  return ways;
}

void EchPageTable::release_ways(std::vector<Way>& ways, std::uint64_t epw) {
  for (auto& way : ways) {
    for (Pfn base : way.blocks) pm_.free_table_block(base, block_order_for(epw));
    way.blocks.clear();
  }
}

std::uint64_t EchPageTable::hash(unsigned way, Vpn vpn) const {
  return splitmix64(vpn ^ kWaySeed[way]) & (entries_per_way_ - 1);
}

PhysAddr EchPageTable::slot_addr(unsigned way, std::uint64_t idx) const {
  const Way& w = ways_[way];
  const std::uint64_t byte = idx * kPteSize;
  const std::uint64_t bb = block_bytes_for(entries_per_way_);
  return frame_base(w.blocks[byte / bb]) + (byte % bb);
}

bool EchPageTable::insert(Vpn vpn, Pfn pfn, unsigned depth_budget) {
  // Overwrite if present in any way.
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Slot& s = ways_[w].slots[hash(w, vpn)];
    if (s.valid && s.vpn == vpn) {
      s.pfn = pfn;
      return true;
    }
  }
  Vpn cur_vpn = vpn;
  Pfn cur_pfn = pfn;
  unsigned way = static_cast<unsigned>(rng_.below(cfg_.ways));
  for (unsigned d = 0; d < depth_budget; ++d) {
    // Prefer any empty candidate bucket first.
    for (unsigned w = 0; w < cfg_.ways; ++w) {
      Slot& s = ways_[w].slots[hash(w, cur_vpn)];
      if (!s.valid) {
        s = Slot{cur_vpn, cur_pfn, true};
        ++live_;
        return true;
      }
    }
    // Displace the occupant of a pseudo-random way and re-home it.
    Slot& victim = ways_[way].slots[hash(way, cur_vpn)];
    std::swap(cur_vpn, victim.vpn);
    std::swap(cur_pfn, victim.pfn);
    way = (way + 1 + static_cast<unsigned>(rng_.below(cfg_.ways - 1))) % cfg_.ways;
  }
  // Put the homeless entry back is unnecessary: the displaced chain keeps
  // all *other* entries stored; only (cur_vpn, cur_pfn) is pending. The
  // caller resizes and re-inserts it.
  pending_ = Slot{cur_vpn, cur_pfn, true};
  return false;
}

void EchPageTable::resize() {
  ++resizes_;
  // Allocate the doubled geometry while the current table is still live:
  // block allocation can trigger compaction, whose relocation callbacks
  // consult this table via remap().
  const std::uint64_t new_epw = entries_per_way_ << 1;
  std::vector<Way> new_ways = allocate_ways(new_epw);

  std::vector<Slot> live;
  live.reserve(live_ + 1);
  for (auto& way : ways_)
    for (Slot& s : way.slots)
      if (s.valid) live.push_back(s);
  if (pending_.valid) {
    live.push_back(pending_);
    pending_.valid = false;
  }

  std::vector<Way> old_ways = std::move(ways_);
  const std::uint64_t old_epw = entries_per_way_;
  ways_ = std::move(new_ways);
  entries_per_way_ = new_epw;
  live_ = 0;
  for (const Slot& s : live) {
    const bool ok = insert(s.vpn, s.pfn, cfg_.max_displacements);
    assert(ok && "resize rehash failed — table badly undersized");
    (void)ok;
  }
  release_ways(old_ways, old_epw);
}

MapResult EchPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift &&
         "this ECH instantiation stores 4 KB translations");
  (void)page_shift;
  MapResult r;
  if (load_factor() > cfg_.max_load_factor) {
    resize();
    r.nodes_allocated += 1;  // resize charged as one big event
    r.bytes_allocated += table_bytes();
  }
  while (!insert(vpn, pfn, cfg_.max_displacements)) {
    resize();
    r.nodes_allocated += 1;
    r.bytes_allocated += table_bytes();
  }
  return r;
}

bool EchPageTable::unmap(Vpn vpn) {
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Slot& s = ways_[w].slots[hash(w, vpn)];
    if (s.valid && s.vpn == vpn) {
      s.valid = false;
      --live_;
      return true;
    }
  }
  return false;
}

std::optional<Pfn> EchPageTable::lookup(Vpn vpn) const {
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Slot& s = ways_[w].slots[hash(w, vpn)];
    if (s.valid && s.vpn == vpn) return s.pfn;
  }
  return std::nullopt;
}

bool EchPageTable::remap(Vpn vpn, Pfn new_pfn) {
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Slot& s = ways_[w].slots[hash(w, vpn)];
    if (s.valid && s.vpn == vpn) {
      s.pfn = new_pfn;
      return true;
    }
  }
  return false;
}

void EchPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  path.reset();
  // Probes issue `probe_width` at a time; groups serialize. The default
  // (probe_width 0 / >= ways) keeps every way in one parallel group.
  const unsigned width = cfg_.probe_width && cfg_.probe_width < cfg_.ways
                             ? cfg_.probe_width
                             : cfg_.ways;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    path.steps.push_back(
        WalkStep{slot_addr(w, hash(w, vpn)), WalkStep::kHashLevel, w / width});
  }
  if (auto pfn = lookup(vpn)) {
    path.mapped = true;
    path.pfn = *pfn;
    path.page_shift = kPageShift;
  }
}

std::vector<LevelOccupancy> EchPageTable::occupancy() const {
  LevelOccupancy o;
  o.level = "ECH";
  o.nodes = cfg_.ways;
  o.valid = live_;
  o.capacity = static_cast<std::uint64_t>(cfg_.ways) * entries_per_way_;
  return {o};
}

std::uint64_t EchPageTable::table_bytes() const {
  return static_cast<std::uint64_t>(cfg_.ways) * entries_per_way_ * kPteSize;
}

double EchPageTable::load_factor() const {
  return static_cast<double>(live_) /
         static_cast<double>(static_cast<std::uint64_t>(cfg_.ways) *
                             entries_per_way_);
}

bool EchPageTable::save_state(BlobWriter& out) const {
  out.str("ECH");
  out.u64(cfg_.ways);
  out.u64(entries_per_way_);
  for (const Way& way : ways_) {
    // Column encoding: vpn and pfn words bulk-copy; valid packs 64/word.
    std::vector<std::uint64_t> vpns(way.slots.size()), pfns(way.slots.size());
    std::vector<std::uint64_t> valid((way.slots.size() + 63) / 64, 0);
    for (std::uint64_t i = 0; i < way.slots.size(); ++i) {
      vpns[i] = way.slots[i].vpn;
      pfns[i] = way.slots[i].pfn;
      if (way.slots[i].valid) valid[i >> 6] |= 1ull << (i & 63);
    }
    out.u64s(vpns);
    out.u64s(pfns);
    out.u64s(valid);
    out.u64s(way.blocks);
  }
  out.u64(pending_.vpn);
  out.u64(pending_.pfn);
  out.u64(pending_.valid ? 1 : 0);
  out.u64(live_);
  out.u64(resizes_);
  std::uint64_t rs[4];
  rng_.save_state(rs);
  out.u64s(rs, 4);
  return true;
}

bool EchPageTable::load_state(BlobReader& in) {
  if (in.str() != "ECH" || in.u64() != cfg_.ways) return false;
  const std::uint64_t epw = in.u64();
  if (!in.ok() || epw == 0 || (epw & (epw - 1)) != 0) return false;
  std::vector<Way> ways(cfg_.ways);
  for (Way& way : ways) {
    const std::vector<std::uint64_t> vpns = in.u64s();
    const std::vector<std::uint64_t> pfns = in.u64s();
    const std::vector<std::uint64_t> valid = in.u64s();
    way.blocks = in.u64s();
    if (!in.ok() || vpns.size() != epw || pfns.size() != epw ||
        valid.size() != (epw + 63) / 64 || way.blocks.empty())
      return false;
    way.slots.resize(epw);
    for (std::uint64_t i = 0; i < epw; ++i)
      way.slots[i] =
          Slot{vpns[i], pfns[i], ((valid[i >> 6] >> (i & 63)) & 1ull) != 0};
  }
  Slot pending;
  pending.vpn = in.u64();
  pending.pfn = in.u64();
  pending.valid = in.u64() != 0;
  const std::uint64_t live = in.u64();
  const std::uint64_t resizes = in.u64();
  const std::vector<std::uint64_t> rs = in.u64s();
  if (!in.ok() || rs.size() != 4) return false;
  // The snapshot's blocks replace the constructor's initial allocation
  // wholesale: the restored PhysicalMemory pool already accounts for both
  // (initial blocks freed by the snapshot-time resize, resized blocks live).
  ways_ = std::move(ways);
  entries_per_way_ = epw;
  pending_ = pending;
  live_ = live;
  resizes_ = resizes;
  rng_.load_state(rs.data());
  return true;
}

}  // namespace ndp
