#include "translate/walker.h"

#include <algorithm>
#include <cassert>

namespace ndp {

Walker::Walker(PageTable& pt, MemorySystem& mem, WalkerConfig cfg)
    : pt_(pt), mem_(mem), cfg_(std::move(cfg)),
      pwcs_(cfg_.pwc_levels, cfg_.pwc, cfg_.pwc_entries) {}

void Walker::plan_into(Vpn vpn, WalkPlan& p) {
  pt_.walk_into(vpn, p.path, scratch_);
  p.first_step = 0;
  p.start_latency = 0;
  if (cfg_.pwc_levels.empty()) return;

  p.start_latency = pwcs_.latency();
  if (const unsigned deepest = pwcs_.deepest_hit(vpn)) {
    // Skip every step up to and including the level the PWC resolved.
    for (std::size_t i = 0; i < p.path.steps.size(); ++i) {
      if (p.path.steps[i].level == deepest) {
        p.first_step = i + 1;
        break;
      }
    }
  }
}

void Walker::finish(Vpn vpn, const WalkPlan& plan, Cycle start, Cycle end,
                    unsigned mem_accesses) {
  if (!cfg_.pwc_levels.empty()) pwcs_.fill(vpn, plan.path);
  ++counters_.walks;
  counters_.mem_accesses += mem_accesses;
  counters_.latency.add(static_cast<double>(end - start));
  counters_.accesses_per_walk.add(static_cast<double>(mem_accesses));
  if (!plan.path.mapped) ++counters_.faulting_walks;
}

StatSet Walker::snapshot() const {
  StatSet s;
  s.inc("walks", counters_.walks);
  s.inc("mem_accesses", counters_.mem_accesses);
  s.inc("faulting_walks", counters_.faulting_walks);
  s.merge_average("latency", counters_.latency);
  s.merge_average("accesses_per_walk", counters_.accesses_per_walk);
  return s;
}

WalkTiming Walker::walk(Cycle now, unsigned core, VirtAddr va) {
  const Vpn vpn = vpn_of(va);
  const WalkPlan p = plan(vpn);

  WalkTiming out;
  out.mapped = p.path.mapped;
  out.pfn = p.path.pfn;
  out.page_shift = p.path.page_shift;
  for (std::size_t i = 0; i < p.first_step; ++i)
    if (!p.executes(i)) ++out.pwc_skips;

  Cycle t = now + p.start_latency;
  // Issue the surviving steps; steps sharing a group go out concurrently.
  std::size_t i = 0;
  while (i < p.path.steps.size()) {
    const unsigned group = p.path.steps[i].group;
    Cycle group_finish = t;
    for (; i < p.path.steps.size() && p.path.steps[i].group == group; ++i) {
      if (!p.executes(i)) continue;
      const MemAccessResult r =
          mem_.access(t, core, p.path.steps[i].pte_addr, AccessType::kRead,
                      AccessClass::kMetadata,
                      cfg_.bypass_caches_for_metadata);
      group_finish = std::max(group_finish, r.finish);
      ++out.mem_accesses;
    }
    t = group_finish;
  }

  out.finish = t;
  finish(vpn, p, now, t, out.mem_accesses);
  return out;
}

}  // namespace ndp
