// POM-style hybrid page table: a single-level, direct-mapped flat window
// backed by a classic 4-level radix table for the overflow.
//
// The "part of memory" line of work (POM / flat near-memory tables) keeps a
// one-level table in a dedicated memory region: a translation is one probe
// at `base + index(vpn) * 8`. A direct-mapped window cannot hold every
// translation, so conflicting VPNs fall back to the radix table — the
// hardware probes the flat slot first (one PTE read, tag-checked against
// the full VPN) and performs an ordinary radix walk only on a tag miss.
// WalkPath reflects exactly that: step 0 is the flat probe; fallback walks
// append the radix levels, which the walker's L4/L3 PWCs then absorb.
//
// Placement policy is first-come-first-served: the first VPN to claim a
// flat slot keeps it; later conflicting VPNs live in the radix table. This
// keeps the structure deterministic (no timing-dependent migration), which
// the conformance suite relies on.
//
// Flat-window storage is allocated from PhysicalMemory in max-order buddy
// chunks and tagged kPageTable, so probe addresses are real physical
// addresses landing in real DRAM banks and cache sets.
#pragma once

#include <cstdint>
#include <vector>

#include "os/phys_mem.h"
#include "translate/page_table.h"
#include "translate/radix_page_table.h"

namespace ndp {

struct HybridConfig {
  /// log2 of the flat window's slot count: 2^flat_bits direct-mapped
  /// entries of 8 bytes (20 -> 1 M slots, 8 MB of table).
  unsigned flat_bits = 20;
};

class HybridPageTable : public PageTable {
 public:
  explicit HybridPageTable(PhysicalMemory& pm, HybridConfig cfg = {});
  ~HybridPageTable() override;

  MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) override;
  bool unmap(Vpn vpn) override;
  std::optional<Pfn> lookup(Vpn vpn) const override;
  bool remap(Vpn vpn, Pfn new_pfn) override;
  /// Compat path for direct callers (tests, PageTable::walk): builds its
  /// own fallback scratch, so it may allocate. The engine's Walker uses the
  /// scratch overload below, which is allocation-free in steady state.
  void walk_into(Vpn vpn, WalkPath& out) const override;
  void walk_into(Vpn vpn, WalkPath& out, WalkPath& scratch) const override;
  std::vector<LevelOccupancy> occupancy() const override;
  std::string name() const override { return "Hybrid"; }
  std::uint64_t table_bytes() const override;
  bool save_state(BlobWriter& out) const override;
  bool load_state(BlobReader& in) override;

  std::uint64_t flat_slots() const { return vpns_.size(); }
  std::uint64_t flat_live() const { return flat_live_; }
  /// Translations that conflicted out of the window into the radix table.
  std::uint64_t fallback_live() const;

 private:
  std::uint64_t index_of(Vpn vpn) const { return vpn & (vpns_.size() - 1); }
  PhysAddr slot_addr(std::uint64_t idx) const;
  bool slot_valid(std::uint64_t i) const {
    return ((valid_[i >> 6] >> (i & 63)) & 1ull) != 0;
  }

  PhysicalMemory& pm_;
  HybridConfig cfg_;
  /// Direct-mapped window in structure-of-arrays layout: vpn / pfn columns
  /// plus a packed validity bitmap. A probe reads one vpn word and one
  /// bitmap word (the pfn column only on a tag hit), and the columns match
  /// the save_state blob format word-for-word, so snapshots bulk-copy.
  /// Invalid slots keep their stale vpn/pfn words — the blob pins that.
  std::vector<std::uint64_t> vpns_;
  std::vector<std::uint64_t> pfns_;
  std::vector<std::uint64_t> valid_;  ///< bit i: slot i holds a live entry
  std::vector<Pfn> blocks_;  ///< base PFN of each physical backing block
  unsigned block_order_ = 0;
  std::uint64_t flat_live_ = 0;
  RadixPageTable fallback_;
};

}  // namespace ndp
