#include "translate/hybrid_page_table.h"

#include <cassert>

namespace ndp {

namespace {
// Backing storage comes in order-9 (2 MB) chunks at most: the largest size
// the OS can guarantee via compaction on a fragmented pool.
constexpr unsigned kMaxBlockOrder = 9;
}  // namespace

HybridPageTable::HybridPageTable(PhysicalMemory& pm, HybridConfig cfg)
    : pm_(pm), cfg_(cfg), fallback_(pm, /*preferred_leaf_level=*/1) {
  assert(cfg_.flat_bits >= 12 && cfg_.flat_bits <= 26);
  slots_.assign(1ull << cfg_.flat_bits, Slot{});

  const std::uint64_t window_bytes = slots_.size() * kPteSize;
  block_order_ = 0;
  while ((kPageSize << block_order_) < window_bytes &&
         block_order_ < kMaxBlockOrder)
    ++block_order_;
  const std::uint64_t block_bytes = kPageSize << block_order_;
  const std::uint64_t blocks = (window_bytes + block_bytes - 1) / block_bytes;
  for (std::uint64_t b = 0; b < blocks; ++b)
    blocks_.push_back(pm_.alloc_table_block(block_order_));
}

HybridPageTable::~HybridPageTable() {
  for (Pfn base : blocks_) pm_.free_table_block(base, block_order_);
}

PhysAddr HybridPageTable::slot_addr(std::uint64_t idx) const {
  const std::uint64_t byte = idx * kPteSize;
  const std::uint64_t block_bytes = kPageSize << block_order_;
  return frame_base(blocks_[byte / block_bytes]) + (byte % block_bytes);
}

MapResult HybridPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift &&
         "the hybrid flat window stores 4 KB translations");
  (void)page_shift;
  MapResult r;
  Slot& s = slots_[index_of(vpn)];
  if (s.valid && s.vpn == vpn) {
    s.pfn = pfn;
    r.replaced = true;
    return r;
  }
  if (!s.valid) {
    // The slot is free — but the VPN may already live in the fallback from
    // an earlier conflict; keep it there so each VPN has exactly one home.
    if (fallback_.lookup(vpn)) return fallback_.map(vpn, pfn, kPageShift);
    s = Slot{vpn, pfn, true};
    ++flat_live_;
    return r;
  }
  // Conflict: the window slot belongs to another VPN (first-come-first-
  // served); this translation overflows into the radix table.
  return fallback_.map(vpn, pfn, kPageShift);
}

bool HybridPageTable::unmap(Vpn vpn) {
  Slot& s = slots_[index_of(vpn)];
  if (s.valid && s.vpn == vpn) {
    s.valid = false;
    --flat_live_;
    return true;
  }
  return fallback_.unmap(vpn);
}

std::optional<Pfn> HybridPageTable::lookup(Vpn vpn) const {
  const Slot& s = slots_[index_of(vpn)];
  if (s.valid && s.vpn == vpn) return s.pfn;
  return fallback_.lookup(vpn);
}

bool HybridPageTable::remap(Vpn vpn, Pfn new_pfn) {
  Slot& s = slots_[index_of(vpn)];
  if (s.valid && s.vpn == vpn) {
    s.pfn = new_pfn;
    return true;
  }
  return fallback_.remap(vpn, new_pfn);
}

void HybridPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  // Step 0: probe the flat slot. Tag hit -> done in one access.
  path.reset();
  path.steps.push_back(
      WalkStep{slot_addr(index_of(vpn)), WalkStep::kHybridLevel, 0});
  const Slot& s = slots_[index_of(vpn)];
  if (s.valid && s.vpn == vpn) {
    path.mapped = true;
    path.pfn = s.pfn;
    path.page_shift = kPageShift;
    return;
  }
  // Tag miss: ordinary radix walk, serialized after the probe, reusing the
  // scratch path so the fallback walk allocates nothing in steady state.
  fallback_.walk_into(vpn, scratch_);
  for (WalkStep step : scratch_.steps) {
    step.group += 1;
    path.steps.push_back(step);
  }
  path.mapped = scratch_.mapped;
  path.pfn = scratch_.pfn;
  path.page_shift = scratch_.page_shift;
}

std::vector<LevelOccupancy> HybridPageTable::occupancy() const {
  LevelOccupancy flat;
  flat.level = "FLAT";
  flat.nodes = blocks_.size();
  flat.valid = flat_live_;
  flat.capacity = slots_.size();
  std::vector<LevelOccupancy> out{flat};
  for (const LevelOccupancy& l : fallback_.occupancy()) out.push_back(l);
  return out;
}

std::uint64_t HybridPageTable::table_bytes() const {
  return slots_.size() * kPteSize + fallback_.table_bytes();
}

std::uint64_t HybridPageTable::fallback_live() const {
  std::uint64_t live = 0;
  for (const LevelOccupancy& l : fallback_.occupancy())
    if (l.level == "PL1") live = l.valid;
  return live;
}

bool HybridPageTable::save_state(BlobWriter& out) const {
  out.str("Hybrid");
  out.u64(cfg_.flat_bits);
  out.u64(block_order_);
  const std::uint64_t n = slots_.size();
  std::vector<std::uint64_t> vpns(n), pfns(n);
  std::vector<std::uint64_t> valid((n + 63) / 64, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    vpns[i] = slots_[i].vpn;
    pfns[i] = slots_[i].pfn;
    if (slots_[i].valid) valid[i >> 6] |= 1ull << (i & 63);
  }
  out.u64s(vpns);
  out.u64s(pfns);
  out.u64s(valid);
  out.u64s(blocks_);
  out.u64(flat_live_);
  return fallback_.save_state(out);
}

bool HybridPageTable::load_state(BlobReader& in) {
  if (in.str() != "Hybrid" || in.u64() != cfg_.flat_bits ||
      in.u64() != block_order_)
    return false;
  const std::vector<std::uint64_t> vpns = in.u64s();
  const std::vector<std::uint64_t> pfns = in.u64s();
  const std::vector<std::uint64_t> valid = in.u64s();
  const std::vector<std::uint64_t> blocks = in.u64s();
  const std::uint64_t flat_live = in.u64();
  const std::uint64_t n = slots_.size();
  if (!in.ok() || vpns.size() != n || pfns.size() != n ||
      valid.size() != (n + 63) / 64 || blocks.size() != blocks_.size())
    return false;
  // Restore the radix fallback first: it validates-then-commits itself, so
  // a failure here leaves both halves untouched.
  if (!fallback_.load_state(in)) return false;
  for (std::uint64_t i = 0; i < n; ++i)
    slots_[i] =
        Slot{vpns[i], pfns[i], ((valid[i >> 6] >> (i & 63)) & 1ull) != 0};
  blocks_ = blocks;
  flat_live_ = flat_live;
  return true;
}

}  // namespace ndp
