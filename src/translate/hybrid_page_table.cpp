#include "translate/hybrid_page_table.h"

#include <cassert>

namespace ndp {

namespace {
// Backing storage comes in order-9 (2 MB) chunks at most: the largest size
// the OS can guarantee via compaction on a fragmented pool.
constexpr unsigned kMaxBlockOrder = 9;
}  // namespace

HybridPageTable::HybridPageTable(PhysicalMemory& pm, HybridConfig cfg)
    : pm_(pm), cfg_(cfg), fallback_(pm, /*preferred_leaf_level=*/1) {
  assert(cfg_.flat_bits >= 12 && cfg_.flat_bits <= 26);
  const std::uint64_t n = 1ull << cfg_.flat_bits;
  vpns_.assign(n, 0);
  pfns_.assign(n, 0);
  valid_.assign((n + 63) / 64, 0);

  const std::uint64_t window_bytes = n * kPteSize;
  block_order_ = 0;
  while ((kPageSize << block_order_) < window_bytes &&
         block_order_ < kMaxBlockOrder)
    ++block_order_;
  const std::uint64_t block_bytes = kPageSize << block_order_;
  const std::uint64_t blocks = (window_bytes + block_bytes - 1) / block_bytes;
  for (std::uint64_t b = 0; b < blocks; ++b)
    blocks_.push_back(pm_.alloc_table_block(block_order_));
}

HybridPageTable::~HybridPageTable() {
  for (Pfn base : blocks_) pm_.free_table_block(base, block_order_);
}

PhysAddr HybridPageTable::slot_addr(std::uint64_t idx) const {
  const std::uint64_t byte = idx * kPteSize;
  const std::uint64_t block_bytes = kPageSize << block_order_;
  return frame_base(blocks_[byte / block_bytes]) + (byte % block_bytes);
}

MapResult HybridPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift &&
         "the hybrid flat window stores 4 KB translations");
  (void)page_shift;
  MapResult r;
  const std::uint64_t i = index_of(vpn);
  if (slot_valid(i) && vpns_[i] == vpn) {
    pfns_[i] = pfn;
    r.replaced = true;
    return r;
  }
  if (!slot_valid(i)) {
    // The slot is free — but the VPN may already live in the fallback from
    // an earlier conflict; keep it there so each VPN has exactly one home.
    if (fallback_.lookup(vpn)) return fallback_.map(vpn, pfn, kPageShift);
    vpns_[i] = vpn;
    pfns_[i] = pfn;
    valid_[i >> 6] |= 1ull << (i & 63);
    ++flat_live_;
    return r;
  }
  // Conflict: the window slot belongs to another VPN (first-come-first-
  // served); this translation overflows into the radix table.
  return fallback_.map(vpn, pfn, kPageShift);
}

bool HybridPageTable::unmap(Vpn vpn) {
  const std::uint64_t i = index_of(vpn);
  if (slot_valid(i) && vpns_[i] == vpn) {
    valid_[i >> 6] &= ~(1ull << (i & 63));
    --flat_live_;
    return true;
  }
  return fallback_.unmap(vpn);
}

std::optional<Pfn> HybridPageTable::lookup(Vpn vpn) const {
  const std::uint64_t i = index_of(vpn);
  if (slot_valid(i) && vpns_[i] == vpn) return pfns_[i];
  return fallback_.lookup(vpn);
}

bool HybridPageTable::remap(Vpn vpn, Pfn new_pfn) {
  const std::uint64_t i = index_of(vpn);
  if (slot_valid(i) && vpns_[i] == vpn) {
    pfns_[i] = new_pfn;
    return true;
  }
  return fallback_.remap(vpn, new_pfn);
}

void HybridPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  WalkPath scratch;
  walk_into(vpn, path, scratch);
}

void HybridPageTable::walk_into(Vpn vpn, WalkPath& path,
                                WalkPath& scratch) const {
  // Step 0: probe the flat slot. Tag hit -> done in one access.
  path.reset();
  const std::uint64_t i = index_of(vpn);
  path.steps.push_back(WalkStep{slot_addr(i), WalkStep::kHybridLevel, 0});
  if (slot_valid(i) && vpns_[i] == vpn) {
    path.mapped = true;
    path.pfn = pfns_[i];
    path.page_shift = kPageShift;
    return;
  }
  // Tag miss: ordinary radix walk, serialized after the probe, built into
  // the caller's scratch path so a steady-state fallback walk reuses its
  // capacity instead of allocating.
  fallback_.walk_into(vpn, scratch);
  for (WalkStep step : scratch.steps) {
    step.group += 1;
    path.steps.push_back(step);
  }
  path.mapped = scratch.mapped;
  path.pfn = scratch.pfn;
  path.page_shift = scratch.page_shift;
}

std::vector<LevelOccupancy> HybridPageTable::occupancy() const {
  LevelOccupancy flat;
  flat.level = "FLAT";
  flat.nodes = blocks_.size();
  flat.valid = flat_live_;
  flat.capacity = vpns_.size();
  std::vector<LevelOccupancy> out{flat};
  for (const LevelOccupancy& l : fallback_.occupancy()) out.push_back(l);
  return out;
}

std::uint64_t HybridPageTable::table_bytes() const {
  return vpns_.size() * kPteSize + fallback_.table_bytes();
}

std::uint64_t HybridPageTable::fallback_live() const {
  std::uint64_t live = 0;
  for (const LevelOccupancy& l : fallback_.occupancy())
    if (l.level == "PL1") live = l.valid;
  return live;
}

bool HybridPageTable::save_state(BlobWriter& out) const {
  out.str("Hybrid");
  out.u64(cfg_.flat_bits);
  out.u64(block_order_);
  // Column encoding, unchanged since the AoS layout (which transposed on
  // save): the SoA members *are* the columns, so this bulk-copies.
  out.u64s(vpns_);
  out.u64s(pfns_);
  out.u64s(valid_);
  out.u64s(blocks_);
  out.u64(flat_live_);
  return fallback_.save_state(out);
}

bool HybridPageTable::load_state(BlobReader& in) {
  if (in.str() != "Hybrid" || in.u64() != cfg_.flat_bits ||
      in.u64() != block_order_)
    return false;
  std::vector<std::uint64_t> vpns = in.u64s();
  std::vector<std::uint64_t> pfns = in.u64s();
  std::vector<std::uint64_t> valid = in.u64s();
  std::vector<std::uint64_t> blocks = in.u64s();
  const std::uint64_t flat_live = in.u64();
  const std::uint64_t n = vpns_.size();
  if (!in.ok() || vpns.size() != n || pfns.size() != n ||
      valid.size() != (n + 63) / 64 || blocks.size() != blocks_.size())
    return false;
  // Restore the radix fallback first: it validates-then-commits itself, so
  // a failure here leaves both halves untouched.
  if (!fallback_.load_state(in)) return false;
  vpns_ = std::move(vpns);
  pfns_ = std::move(pfns);
  valid_ = std::move(valid);
  blocks_ = std::move(blocks);
  flat_live_ = flat_live;
  return true;
}

}  // namespace ndp
