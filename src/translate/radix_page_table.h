// x86-64 radix page table (the paper's Radix baseline) and its huge-page
// variant (the Huge Page baseline).
//
// Nodes are real 4 KB frames obtained from PhysicalMemory and tagged
// FrameUse::kPageTable, so every PTE has a genuine physical address. Entries
// are encoded like hardware PTEs: present bit, PS (leaf) bit, and a payload
// (child node id for interior entries, PFN for leaves).
//
// leaf_level == 1 gives the classic 4-level table with 4 KB pages;
// leaf_level == 2 gives the Huge Page configuration (2 MB leaves at PL2)
// while still allowing 4 KB "splinter" mappings beneath an L1 node when the
// OS could not assemble a contiguous 2 MB block.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "os/phys_mem.h"
#include "translate/page_table.h"

namespace ndp {

class RadixPageTable : public PageTable {
 public:
  /// `preferred_leaf_level`: 1 => 4 KB pages only; 2 => huge-page mode.
  RadixPageTable(PhysicalMemory& pm, unsigned preferred_leaf_level = 1);
  ~RadixPageTable() override;

  MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) override;
  bool unmap(Vpn vpn) override;
  std::optional<Pfn> lookup(Vpn vpn) const override;
  bool remap(Vpn vpn, Pfn new_pfn) override;
  void walk_into(Vpn vpn, WalkPath& out) const override;
  std::vector<LevelOccupancy> occupancy() const override;
  std::string name() const override;
  std::uint64_t table_bytes() const override;
  bool save_state(BlobWriter& out) const override;
  bool load_state(BlobReader& in) override;

  unsigned preferred_leaf_level() const { return leaf_level_; }
  std::uint64_t node_count() const { return nodes_.size() - free_nodes_.size(); }

 private:
  // Hardware-style entry encoding in one u64.
  static constexpr std::uint64_t kPresent = 1ull << 0;
  static constexpr std::uint64_t kLeaf = 1ull << 7;  // PS bit position
  static constexpr std::uint64_t payload(std::uint64_t e) { return e >> 12; }
  static constexpr std::uint64_t encode(std::uint64_t pay, bool leaf) {
    return (pay << 12) | (leaf ? kLeaf : 0) | kPresent;
  }

  struct Node {
    Pfn frame = 0;
    unsigned level = 0;
    std::uint32_t valid = 0;  ///< live entry count (occupancy accounting)
    std::array<std::uint64_t, kPtesPerNode> ent{};
  };

  std::uint32_t alloc_node(unsigned level);
  void free_node(std::uint32_t id);
  PhysAddr entry_addr(const Node& n, unsigned idx) const {
    return frame_base(n.frame) + static_cast<PhysAddr>(idx) * kPteSize;
  }
  /// Descend to the node at `level` for vpn, creating missing interior
  /// nodes when `create` (counts allocations into `out`).
  std::uint32_t descend(Vpn vpn, unsigned level, bool create, MapResult* out);

  PhysicalMemory& pm_;
  unsigned leaf_level_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::uint32_t root_;
};

}  // namespace ndp
