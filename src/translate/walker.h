// Hardware page-table walker: turns a PageTable's WalkPath into timed
// memory accesses (paper Fig. 3's PTW, plus NDPage's §V-D workflow).
//
// The walker
//   * probes the configured PWC levels in parallel (one latency charge),
//   * skips every step at or above the deepest PWC hit,
//   * issues the remaining PTE reads through the memory hierarchy — with
//     AccessClass::kMetadata always, and with cache bypass when the
//     mechanism asks for it (NDPage §V-A),
//   * issues steps sharing a group id concurrently (ECH's parallel ways),
//   * refills the PWCs with the levels it traversed.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cache/hierarchy.h"
#include "common/stats.h"
#include "common/types.h"
#include "translate/page_table.h"
#include "translate/pwc.h"

namespace ndp {

struct WalkerConfig {
  /// NDPage's metadata-bypass mechanism: PTE requests skip the caches.
  bool bypass_caches_for_metadata = false;
  /// Which radix levels get a PWC ({4,3,2,1} Radix, {4,3} NDPage/Huge,
  /// empty for ECH/Ideal).
  std::vector<unsigned> pwc_levels{4, 3, 2, 1};
  PwcConfig pwc;
  /// Per-level entry-count overrides (level -> entries); levels not listed
  /// use `pwc.entries`. This is how the `pwc_lN` mechanism parameters size
  /// individual PWCs.
  std::map<unsigned, unsigned> pwc_entries;
};

struct WalkTiming {
  Cycle finish = 0;
  bool mapped = false;
  Pfn pfn = 0;
  unsigned page_shift = kPageShift;
  unsigned mem_accesses = 0;  ///< PTE reads actually issued
  unsigned pwc_skips = 0;     ///< steps avoided by the deepest PWC hit
};

class Walker {
 public:
  Walker(PageTable& pt, MemorySystem& mem, WalkerConfig cfg);

  /// Perform a timed walk for va issued by `core` at `now`. Functionally
  /// read-only: faults are the MMU front-end's job (it maps and re-walks).
  /// Convenience wrapper over plan()/finish() that issues all PTE accesses
  /// back-to-back; the event-driven engine uses the stepwise API instead so
  /// shared-resource state is touched in global time order.
  WalkTiming walk(Cycle now, unsigned core, VirtAddr va);

  /// Stepwise API — phase 1: probe PWCs and lay out the PTE accesses.
  struct WalkPlan {
    WalkPath path;              ///< full structural path
    std::size_t first_step = 0; ///< first step past the PWC-resolved level
    Cycle start_latency = 0;    ///< PWC probe latency to charge up front
    /// Does step i issue a memory access? PWCs cache radix interior
    /// entries, so a hit skips only the *radix-level* steps up to the
    /// resolved level — a mechanism's non-radix preamble (e.g. Hybrid's
    /// flat-window probe) is issued regardless.
    bool executes(std::size_t i) const {
      return i >= first_step || !WalkStep::is_radix_level(path.steps[i].level);
    }
  };
  WalkPlan plan(Vpn vpn) {
    WalkPlan p;
    plan_into(vpn, p);
    return p;
  }
  /// plan() into a caller-owned plan: `out` is reset and refilled reusing
  /// its path's steps capacity, so a recycled plan (the engine keeps one per
  /// op slot) makes planning a walk allocation-free.
  void plan_into(Vpn vpn, WalkPlan& out);
  /// Stepwise API — phase 2 (after the caller executed the steps): refill
  /// PWCs and record statistics.
  void finish(Vpn vpn, const WalkPlan& plan, Cycle start, Cycle end,
              unsigned mem_accesses);

  struct Counters {
    std::uint64_t walks = 0, mem_accesses = 0, faulting_walks = 0;
    Average latency;
    Average accesses_per_walk;
  };

  PwcSet& pwcs() { return pwcs_; }
  const PwcSet& pwcs() const { return pwcs_; }
  const WalkerConfig& config() const { return cfg_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  StatSet snapshot() const;

 private:
  PageTable& pt_;
  MemorySystem& mem_;
  WalkerConfig cfg_;
  PwcSet pwcs_;
  Counters counters_;
  /// Per-core walk scratch (each core owns one Walker): handed to the page
  /// table's walk_into(vpn, out, scratch) overload so mechanisms that build
  /// a secondary path (Hybrid's radix fallback) reuse its capacity instead
  /// of keeping hidden mutable state or allocating per walk.
  WalkPath scratch_;
};

}  // namespace ndp
