#include "translate/pwc.h"

#include <algorithm>
#include <cassert>

namespace ndp {

Pwc::Pwc(unsigned level, PwcConfig cfg) : level_(level), cfg_(cfg) {
  assert(cfg_.entries % cfg_.ways == 0);
  num_sets_ = cfg_.entries / cfg_.ways;
  ways_ = cfg_.ways;
  tags_.assign(cfg_.entries, kInvalidTag);
  lru_.assign(cfg_.entries, 0);
}

StatSet Pwc::snapshot() const {
  StatSet s;
  s.inc("hit", counters_.hits);
  s.inc("miss", counters_.misses);
  return s;
}

PwcSet::PwcSet(const std::vector<unsigned>& levels, PwcConfig cfg,
               const std::map<unsigned, unsigned>& entries_per_level)
    : cfg_(cfg) {
  // Ascending unique levels, matching the iteration order the previous
  // std::map storage gave deepest_hit().
  std::vector<unsigned> sorted = levels;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  caches_.reserve(sorted.size());
  for (unsigned l : sorted) {
    PwcConfig level_cfg = cfg;
    const auto it = entries_per_level.find(l);
    if (it != entries_per_level.end()) level_cfg.entries = it->second;
    caches_.emplace_back(l, level_cfg);
  }
}

void PwcSet::fill(Vpn vpn, const std::vector<unsigned>& walked_levels) {
  for (unsigned l : walked_levels) {
    for (Pwc& pwc : caches_) {
      if (pwc.level() == l) {
        pwc.insert(vpn);
        break;
      }
    }
  }
}

bool PwcSet::has_level(unsigned level) const {
  for (const Pwc& pwc : caches_)
    if (pwc.level() == level) return true;
  return false;
}

Pwc* PwcSet::level(unsigned l) {
  for (Pwc& pwc : caches_)
    if (pwc.level() == l) return &pwc;
  return nullptr;
}

const Pwc* PwcSet::level(unsigned l) const {
  for (const Pwc& pwc : caches_)
    if (pwc.level() == l) return &pwc;
  return nullptr;
}

std::vector<unsigned> PwcSet::levels() const {
  std::vector<unsigned> out;
  out.reserve(caches_.size());
  for (const Pwc& pwc : caches_) out.push_back(pwc.level());
  return out;
}

}  // namespace ndp
