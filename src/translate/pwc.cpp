#include "translate/pwc.h"

#include <cassert>

namespace ndp {

Pwc::Pwc(unsigned level, PwcConfig cfg) : level_(level), cfg_(cfg) {
  assert(cfg_.entries % cfg_.ways == 0);
  num_sets_ = cfg_.entries / cfg_.ways;
  lines_.resize(cfg_.entries);
}

bool Pwc::lookup(Vpn vpn) {
  ++tick_;
  const std::uint64_t tag = prefix_of(vpn);
  const unsigned set = static_cast<unsigned>(tag % num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      ++counters_.hits;
      return true;
    }
  }
  ++counters_.misses;
  return false;
}

StatSet Pwc::snapshot() const {
  StatSet s;
  s.inc("hit", counters_.hits);
  s.inc("miss", counters_.misses);
  return s;
}

void Pwc::insert(Vpn vpn) {
  ++tick_;
  const std::uint64_t tag = prefix_of(vpn);
  const unsigned set = static_cast<unsigned>(tag % num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  Line* victim = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {  // already present: refresh
      base[w].lru = tick_;
      return;
    }
    if (!base[w].valid) {
      victim = &base[w];
    } else if (victim->valid && base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  *victim = Line{tag, true, tick_};
}

PwcSet::PwcSet(const std::vector<unsigned>& levels, PwcConfig cfg,
               const std::map<unsigned, unsigned>& entries_per_level)
    : cfg_(cfg) {
  for (unsigned l : levels) {
    PwcConfig level_cfg = cfg;
    const auto it = entries_per_level.find(l);
    if (it != entries_per_level.end()) level_cfg.entries = it->second;
    caches_.emplace(l, Pwc(l, level_cfg));
  }
}

unsigned PwcSet::deepest_hit(Vpn vpn) {
  unsigned deepest = 0;
  // std::map iterates levels ascending: the first hit is the deepest.
  for (auto& [l, pwc] : caches_) {
    if (pwc.lookup(vpn) && deepest == 0) deepest = l;
  }
  return deepest;
}

void PwcSet::fill(Vpn vpn, const std::vector<unsigned>& walked_levels) {
  for (unsigned l : walked_levels) {
    auto it = caches_.find(l);
    if (it != caches_.end()) it->second.insert(vpn);
  }
}

void PwcSet::fill(Vpn vpn, const WalkPath& path) {
  for (const WalkStep& s : path.steps) {
    auto it = caches_.find(s.level);
    if (it != caches_.end()) it->second.insert(vpn);
  }
}

bool PwcSet::has_level(unsigned level) const { return caches_.count(level) > 0; }

Pwc* PwcSet::level(unsigned l) {
  auto it = caches_.find(l);
  return it == caches_.end() ? nullptr : &it->second;
}

const Pwc* PwcSet::level(unsigned l) const {
  auto it = caches_.find(l);
  return it == caches_.end() ? nullptr : &it->second;
}

std::vector<unsigned> PwcSet::levels() const {
  std::vector<unsigned> out;
  for (const auto& [l, pwc] : caches_) out.push_back(l);
  return out;
}

}  // namespace ndp
