#include "translate/tlb.h"

#include <cassert>

namespace ndp {

Tlb::Tlb(TlbConfig cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.entries % cfg_.ways == 0);
  num_sets_ = cfg_.entries / cfg_.ways;
  lines_.resize(cfg_.entries);
  if (cfg_.huge_entries > 0) {
    assert(cfg_.huge_entries % cfg_.huge_ways == 0);
    num_huge_sets_ = cfg_.huge_entries / cfg_.huge_ways;
    huge_lines_.resize(cfg_.huge_entries);
  } else {
    num_huge_sets_ = 1;  // unused
  }
}

Tlb::Line* Tlb::find(VirtAddr va, unsigned page_shift) {
  std::vector<Line>& arr = array_for(page_shift);
  if (arr.empty()) return nullptr;
  const unsigned ways = ways_for(page_shift);
  const unsigned set = set_of(va, page_shift);
  const Vpn tag = va >> page_shift;
  Line* base = &arr[static_cast<std::size_t>(set) * ways];
  for (unsigned w = 0; w < ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.page_shift == page_shift && l.tag == tag) return &l;
  }
  return nullptr;
}

std::optional<TlbEntry> Tlb::lookup(VirtAddr va) {
  ++tick_;
  for (unsigned shift : {kPageShift, kHugePageShift}) {
    if (Line* l = find(va, shift)) {
      l->lru = tick_;
      ++counters_.hits;
      return TlbEntry{l->pfn, l->page_shift};
    }
  }
  ++counters_.misses;
  return std::nullopt;
}

std::optional<TlbEntry> Tlb::peek(VirtAddr va) {
  for (unsigned shift : {kPageShift, kHugePageShift}) {
    if (Line* l = find(va, shift)) return TlbEntry{l->pfn, l->page_shift};
  }
  return std::nullopt;
}

void Tlb::insert(VirtAddr va, Pfn pfn, unsigned page_shift) {
  ++tick_;
  std::vector<Line>& arr = array_for(page_shift);
  if (arr.empty()) return;  // this TLB does not cache this page size
  if (Line* l = find(va, page_shift)) {  // refresh
    l->pfn = pfn;
    l->lru = tick_;
    return;
  }
  const unsigned ways = ways_for(page_shift);
  const unsigned set = set_of(va, page_shift);
  Line* base = &arr[static_cast<std::size_t>(set) * ways];
  Line* victim = base;
  for (unsigned w = 0; w < ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) ++counters_.evictions;
  *victim = Line{va >> page_shift, pfn, page_shift, true, tick_};
}

void Tlb::invalidate(VirtAddr va) {
  for (unsigned shift : {kPageShift, kHugePageShift}) {
    if (Line* l = find(va, shift)) l->valid = false;
  }
}

void Tlb::flush() {
  for (Line& l : lines_) l.valid = false;
  for (Line& l : huge_lines_) l.valid = false;
  ++counters_.flushes;
}

StatSet Tlb::snapshot() const {
  StatSet s;
  s.inc("hit", counters_.hits);
  s.inc("miss", counters_.misses);
  s.inc("evict", counters_.evictions);
  s.inc("flush", counters_.flushes);
  return s;
}

}  // namespace ndp
