#include "translate/tlb.h"

#include <algorithm>
#include <cassert>

namespace ndp {

Tlb::Tlb(TlbConfig cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.entries % cfg_.ways == 0);
  small_.sets = cfg_.entries / cfg_.ways;
  small_.ways = cfg_.ways;
  small_.tags.assign(cfg_.entries, kInvalidTag);
  small_.pfns.assign(cfg_.entries, 0);
  small_.lru.assign(cfg_.entries, 0);
  if (cfg_.huge_entries > 0) {
    assert(cfg_.huge_entries % cfg_.huge_ways == 0);
    huge_.sets = cfg_.huge_entries / cfg_.huge_ways;
    huge_.ways = cfg_.huge_ways;
    huge_.tags.assign(cfg_.huge_entries, kInvalidTag);
    huge_.pfns.assign(cfg_.huge_entries, 0);
    huge_.lru.assign(cfg_.huge_entries, 0);
  }
}

void Tlb::invalidate(VirtAddr va) {
  if (unsigned w = probe(small_, va, kPageShift); w != kNoWay)
    small_.tags[small_.base_of(va, kPageShift) + w] = kInvalidTag;
  if (unsigned w = probe(huge_, va, kHugePageShift); w != kNoWay)
    huge_.tags[huge_.base_of(va, kHugePageShift) + w] = kInvalidTag;
}

void Tlb::flush() {
  std::fill(small_.tags.begin(), small_.tags.end(), kInvalidTag);
  std::fill(huge_.tags.begin(), huge_.tags.end(), kInvalidTag);
  ++counters_.flushes;
}

StatSet Tlb::snapshot() const {
  StatSet s;
  s.inc("hit", counters_.hits);
  s.inc("miss", counters_.misses);
  s.inc("evict", counters_.evictions);
  s.inc("flush", counters_.flushes);
  return s;
}

}  // namespace ndp
