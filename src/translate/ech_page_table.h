// Elastic Cuckoo Hash page table (Skarlatos et al., ASPLOS'20) — the
// paper's strongest baseline ("ECH").
//
// Translations live in a d-way cuckoo hash table in physical memory. A walk
// probes one bucket per way; all d probes are independent, so the hardware
// issues them in parallel — that is ECH's latency advantage over the radix
// walk and is expressed here as d WalkSteps sharing group 0.
//
// Insertion uses BFS-free classic cuckoo displacement with a bounded loop;
// when the loop exceeds its bound the table resizes (double capacity and
// rehash). The original proposal resizes gradually ("elastically"); we
// perform a stop-the-world rehash and charge its cost to the OS — the
// difference is invisible to steady-state walk timing, which is what the
// paper measures (see DESIGN.md substitutions).
//
// Way storage is allocated from PhysicalMemory in max-order buddy chunks and
// tagged kPageTable, so bucket PTE addresses are real physical addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "os/phys_mem.h"
#include "translate/page_table.h"

namespace ndp {

struct EchConfig {
  unsigned ways = 3;
  /// How many bucket probes the walker hardware issues in parallel: probes
  /// go out in groups of `probe_width`, groups serialize. 0 (or >= ways)
  /// means all ways probe concurrently — the classic ECH configuration.
  unsigned probe_width = 0;
  std::uint64_t initial_entries_per_way = 1ull << 15;  ///< 32 K (grows)
  double max_load_factor = 0.6;  ///< resize above this occupancy
  unsigned max_displacements = 32;
};

class EchPageTable : public PageTable {
 public:
  EchPageTable(PhysicalMemory& pm, EchConfig cfg = {});
  ~EchPageTable() override;

  MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) override;
  bool unmap(Vpn vpn) override;
  std::optional<Pfn> lookup(Vpn vpn) const override;
  bool remap(Vpn vpn, Pfn new_pfn) override;
  void walk_into(Vpn vpn, WalkPath& out) const override;
  std::vector<LevelOccupancy> occupancy() const override;
  std::string name() const override { return "ECH"; }
  std::uint64_t table_bytes() const override;
  bool save_state(BlobWriter& out) const override;
  /// ECH resizes during prefault: the blob's entries-per-way may be larger
  /// than this table's initial geometry. load adopts the snapshot geometry;
  /// the restored PhysicalMemory pool already owns the resized blocks.
  bool load_state(BlobReader& in) override;

  std::uint64_t entries_per_way() const { return entries_per_way_; }
  std::uint64_t size() const { return live_; }
  std::uint64_t resizes() const { return resizes_; }
  double load_factor() const;

 private:
  struct Slot {
    Vpn vpn = 0;
    Pfn pfn = 0;
    bool valid = false;
  };
  /// Way storage is structure-of-arrays: vpn / pfn columns plus a packed
  /// validity bitmap. A probe touches only the word it indexes in each
  /// column (no Slot padding), the columns are exactly what save_state
  /// serializes (a snapshot is three bulk copies per way), and invalid
  /// slots keep their stale vpn/pfn words — the blob format pins that.
  struct Way {
    std::vector<std::uint64_t> vpns;
    std::vector<std::uint64_t> pfns;
    std::vector<std::uint64_t> valid;  ///< bit i: slot i holds a live entry
    std::vector<Pfn> blocks;           ///< base PFN of each physical block

    bool is_valid(std::uint64_t i) const {
      return ((valid[i >> 6] >> (i & 63)) & 1ull) != 0;
    }
    void set_valid(std::uint64_t i) { valid[i >> 6] |= 1ull << (i & 63); }
    void clear_valid(std::uint64_t i) { valid[i >> 6] &= ~(1ull << (i & 63)); }
  };

  std::uint64_t hash(unsigned way, Vpn vpn) const;
  /// Compute every way's bucket index for vpn in one pass (the lanes are
  /// independent, so the compiler can vectorize the splitmix64 mixes).
  void hash_all(Vpn vpn, std::uint64_t* idx) const;
  PhysAddr slot_addr(unsigned way, std::uint64_t idx) const;
  /// Bytes of one physical block backing a way of `epw` entries (power of
  /// two, <= 2 MB).
  static std::uint64_t block_bytes_for(std::uint64_t epw);
  static unsigned block_order_for(std::uint64_t epw);
  /// Build way storage for `epw` entries per way (does not touch members —
  /// block allocation may trigger compaction, which must still see a
  /// consistent table via remap()).
  std::vector<Way> allocate_ways(std::uint64_t epw);
  void release_ways(std::vector<Way>& ways, std::uint64_t epw);
  void resize();
  bool insert(Vpn vpn, Pfn pfn, unsigned depth_budget);

  PhysicalMemory& pm_;
  EchConfig cfg_;
  std::uint64_t entries_per_way_;
  /// Cached geometry of the current physical backing blocks (power-of-two
  /// bytes), so slot_addr splits an offset with shift/mask, not division.
  std::uint64_t block_bytes_ = 0;
  unsigned block_shift_ = 0;
  std::vector<Way> ways_;
  Slot pending_{};  ///< entry displaced out by a failed insert, re-homed on resize
  std::uint64_t live_ = 0;
  std::uint64_t resizes_ = 0;
  Rng rng_;  ///< way choice on displacement
};

}  // namespace ndp
