// Opt-in trace export in Chrome trace-event JSON (the "traceEvents"
// format) — open the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see where a run's host wall time actually went:
// per-cell spans on each sweep worker thread, the host phases
// (build/install/prefault/warmup/run/collect) nested inside them, and
// per-request serve spans.
//
// The sink is a process-wide singleton, disabled by default. When
// disabled, instrumentation costs one relaxed atomic load per potential
// span — nothing is recorded, nothing allocates, and the golden suite's
// byte-identity holds trivially. `ndpsim --trace-out=FILE` enables it for
// the process lifetime and writes the file at exit (serve mode: after the
// drain).
//
//   obs::ScopedTraceSpan span("cell", "sweep");  // records only if enabled
//   ... work ...
//   // destructor emits a complete ("ph":"X") event
//
// Timestamps are microseconds since trace start (steady clock), tids are
// small dense ints assigned per host thread in first-seen order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ndp::obs {

/// One recorded event (always "ph":"X" complete events — begin/end pairs
/// are collapsed by the RAII span, so a crash mid-span loses only that
/// span, never unbalances the stream).
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start, µs since trace start
  std::uint64_t dur_us = 0;  ///< duration, µs
  std::uint32_t tid = 0;     ///< dense per-thread id
  /// Pre-rendered JSON object text for "args" ("" = omitted).
  std::string args_json;
};

class TraceSink {
 public:
  using Clock = std::chrono::steady_clock;

  static TraceSink& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Start recording (idempotent; a second begin() clears prior events).
  void begin();
  /// Record one complete event. No-op while disabled.
  void add_complete(std::string_view name, std::string_view category,
                    Clock::time_point start, Clock::time_point end,
                    std::string_view args_json = {});

  /// The {"traceEvents":[...]} document for everything recorded so far.
  std::string json() const;
  /// json() to `path`, then disable and clear. False (with `error` set)
  /// when the file cannot be written.
  bool end_to_file(const std::string& path, std::string* error = nullptr);
  /// Disable and drop everything recorded (tests).
  void discard();

  std::size_t event_count() const;

 private:
  TraceSink() = default;
  std::uint32_t tid_of_this_thread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::vector<std::uint64_t> thread_keys_;  ///< hashed ids, index = dense tid
};

/// RAII complete-event span. Checks enabled() once at construction; the
/// destructor records through the sink only when it was enabled then.
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(std::string_view name, std::string_view category,
                  std::string_view args_json = {})
      : active_(TraceSink::instance().enabled()) {
    if (!active_) return;
    name_ = std::string(name);
    category_ = std::string(category);
    args_ = std::string(args_json);
    start_ = TraceSink::Clock::now();
  }
  ~ScopedTraceSpan() {
    if (!active_) return;
    TraceSink::instance().add_complete(name_, category_, start_,
                                       TraceSink::Clock::now(), args_);
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  bool active_;
  std::string name_, category_, args_;
  TraceSink::Clock::time_point start_;
};

}  // namespace ndp::obs
