// Process-wide metrics registry: counters, gauges, and fixed-bucket
// latency histograms, exposed in Prometheus text-exposition format.
//
// Hot-path updates are single relaxed atomic RMWs — no locks, no
// allocation — so instrumented paths (serve request handling, sweep cell
// completion, Session cache hits) pay a few nanoseconds whether anything
// ever scrapes. Registration (finding/creating a metric by family + label
// set) takes a mutex and allocates; instrumented code therefore resolves
// its metric handles once and keeps them:
//
//   static obs::Counter& hits = obs::Metrics::instance().counter(
//       "ndpsim_session_image_hits_total",
//       "Session image-cache hits (substrate restored)");
//   hits.inc();
//
// Scraping surfaces:
//   * the serve daemon's `metrics` wire op (serve/protocol.h) returns
//     prometheus_text() — point a Prometheus scraper at a tiny sidecar
//     that issues the request, or curl it ad hoc;
//   * `ndpsim --metrics-dump=PATH` writes the same text after a batch run.
//
// Families render in registration order; labeled children render in label
// order — scrape output is deterministic for a deterministic workload.
// Nothing here touches simulated results: metrics live beside the run,
// never in its output documents.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ndp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_for_test() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_for_test() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: cumulative `le` buckets on
/// render, non-cumulative atomics underneath). observe() is two relaxed
/// RMWs plus a branch scan over ~16 bounds.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds of the finite buckets, in
  /// strictly increasing order; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Upper bounds of the finite buckets (the +Inf bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket that crosses the target rank; values beyond the last finite
  /// bound clamp to it. 0.0 when empty. Good to bucket resolution — what a
  /// latency trend needs, not a calibrated percentile.
  double quantile(double q) const;

  /// Zero every count and the sum, in place — handles stay valid.
  void reset_for_test();

  /// Default request-latency bounds: 100 µs .. 10 s, roughly log-spaced.
  static std::vector<double> latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The process-wide registry. Metric identity is (family name, label set):
/// one family holds every labeled child and renders one # HELP/# TYPE
/// header. Labels are passed pre-rendered ('op="run",outcome="ok"') —
/// callers build them once, next to the handle they keep.
class Metrics {
 public:
  static Metrics& instance();

  /// Find-or-create. Throws std::invalid_argument when `name` already
  /// exists as a different metric type.
  Counter& counter(std::string_view name, std::string_view help,
                   std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               std::string_view labels = {});
  /// `bounds` applies on first creation of the family; later calls for the
  /// same family reuse its bounds (empty = Histogram::latency_bounds()).
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::string_view labels = {},
                       std::vector<double> bounds = {});

  /// Prometheus text exposition of every registered metric.
  std::string prometheus_text() const;

  /// Zero every value (registrations stay — instrumented code keeps its
  /// handles). Tests only; never called by tools.
  void reset_values_for_test();

 private:
  Metrics() = default;

  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    std::string name;
    std::string help;
    Type type;
    std::vector<double> bounds;  ///< histograms only
    /// label-set → metric, kept sorted by label string for render order.
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
        histograms;
  };

  Family& family(std::string_view name, std::string_view help, Type type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  ///< registration order
};

}  // namespace ndp::obs
