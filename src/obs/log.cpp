#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include <sys/time.h>
#include <unistd.h>

#include "common/json.h"
#include "common/strings.h"

namespace ndp::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::atomic<int> g_fd{2};
std::atomic<bool> g_env_applied{false};

/// Serializes emission only — formatting happens outside, per caller.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

/// RFC3339 UTC with milliseconds: "2026-08-07T12:34:56.789Z".
void append_timestamp(std::string& out) {
  timeval tv{};
  ::gettimeofday(&tv, nullptr);
  std::tm tm{};
  const std::time_t secs = tv.tv_sec;
  ::gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec,
                static_cast<long>(tv.tv_usec / 1000));
  out += buf;
}

/// Text-format values: bare when they scan as one token, quoted (with JSON
/// escapes, which cover '"' and control bytes) otherwise.
bool needs_quotes(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v)
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x20)
      return true;
  return false;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

const char* to_string(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(std::string_view text, LogLevel& out) {
  for (LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                     LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    if (iequals(text, to_string(l))) {
      out = l;
      return true;
    }
  }
  return false;
}

LogLevel log_level() {
  if (!g_env_applied.load(std::memory_order_acquire)) init_log_from_env();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel l) {
  g_env_applied.store(true, std::memory_order_release);
  g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

LogFormat log_format() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat f) {
  g_format.store(static_cast<int>(f), std::memory_order_relaxed);
}

void set_log_fd(int fd) { g_fd.store(fd, std::memory_order_relaxed); }

void init_log_from_env() {
  // Threshold reads race only against other env applications of the same
  // value — last store wins and every outcome is the env's.
  const char* env = std::getenv("NDPSIM_LOG");
  if (env && *env) {
    std::string_view text(env);
    std::string_view level_part = text;
    const std::size_t comma = text.find(',');
    if (comma != std::string_view::npos) {
      level_part = text.substr(0, comma);
      const std::string_view fmt = text.substr(comma + 1);
      if (iequals(fmt, "json")) set_log_format(LogFormat::kJson);
      else if (iequals(fmt, "text")) set_log_format(LogFormat::kText);
    }
    LogLevel l;
    if (parse_log_level(level_part, l))
      g_level.store(static_cast<int>(l), std::memory_order_relaxed);
  }
  g_env_applied.store(true, std::memory_order_release);
}

LogLine::LogLine(LogLevel level, std::string_view event)
    : enabled_(log_enabled(level)), format_(log_format()) {
  if (!enabled_) return;
  line_.reserve(128);
  if (format_ == LogFormat::kJson) {
    line_ += "{\"ts\":\"";
    append_timestamp(line_);
    line_ += "\",\"level\":\"";
    line_ += to_string(level);
    line_ += "\",\"event\":\"";
    line_ += JsonWriter::escape(event);
    line_ += '"';
  } else {
    append_timestamp(line_);
    line_ += ' ';
    const char* name = to_string(level);
    for (const char* p = name; *p; ++p)
      line_ += static_cast<char>(*p - ('a' <= *p && *p <= 'z' ? 32 : 0));
    line_ += ' ';
    line_.append(event.data(), event.size());
  }
}

LogLine::~LogLine() {
  if (!enabled_) return;
  if (format_ == LogFormat::kJson) line_ += '}';
  line_ += '\n';
  const int fd = g_fd.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sink_mutex());
  // One write for the whole line: concurrent loggers may reorder lines but
  // can never interleave within one. Partial writes (tiny lines, regular
  // fds/pipes) are completed; errors are swallowed — logging must never
  // take the process down.
  std::size_t off = 0;
  while (off < line_.size()) {
    const ssize_t n = ::write(fd, line_.data() + off, line_.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
}

LogLine& LogLine::kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  if (format_ == LogFormat::kJson) {
    line_ += ",\"";
    line_ += JsonWriter::escape(key);
    line_ += "\":\"";
    line_ += JsonWriter::escape(value);
    line_ += '"';
  } else {
    line_ += ' ';
    line_.append(key.data(), key.size());
    line_ += '=';
    if (needs_quotes(value)) {
      line_ += '"';
      line_ += JsonWriter::escape(value);
      line_ += '"';
    } else {
      line_.append(value.data(), value.size());
    }
  }
  return *this;
}

LogLine& LogLine::kv(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  if (format_ == LogFormat::kJson) {
    line_ += ",\"";
    line_ += JsonWriter::escape(key);
    line_ += "\":";
    line_ += std::to_string(value);
  } else {
    line_ += ' ';
    line_.append(key.data(), key.size());
    line_ += '=';
    line_ += std::to_string(value);
  }
  return *this;
}

LogLine& LogLine::kv(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  if (format_ == LogFormat::kJson) {
    line_ += ",\"";
    line_ += JsonWriter::escape(key);
    line_ += "\":";
    line_ += std::to_string(value);
  } else {
    line_ += ' ';
    line_.append(key.data(), key.size());
    line_ += '=';
    line_ += std::to_string(value);
  }
  return *this;
}

LogLine& LogLine::kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  if (format_ == LogFormat::kJson) {
    line_ += ",\"";
    line_ += JsonWriter::escape(key);
    line_ += "\":";
    append_double(line_, value);
  } else {
    line_ += ' ';
    line_.append(key.data(), key.size());
    line_ += '=';
    append_double(line_, value);
  }
  return *this;
}

LogLine& LogLine::kv(std::string_view key, bool value) {
  if (!enabled_) return *this;
  if (format_ == LogFormat::kJson) {
    line_ += ",\"";
    line_ += JsonWriter::escape(key);
    line_ += "\":";
    line_ += value ? "true" : "false";
  } else {
    line_ += ' ';
    line_.append(key.data(), key.size());
    line_ += '=';
    line_ += value ? "true" : "false";
  }
  return *this;
}

}  // namespace ndp::obs
