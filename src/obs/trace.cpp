#include "obs/trace.h"

#include <fstream>
#include <functional>
#include <thread>

#include "common/json.h"

namespace ndp::obs {

TraceSink& TraceSink::instance() {
  static TraceSink* sink = new TraceSink();  // leaked: outlives static users
  return *sink;
}

void TraceSink::begin() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_keys_.clear();
  epoch_ = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

std::uint32_t TraceSink::tid_of_this_thread() {
  const std::uint64_t key =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (std::size_t i = 0; i < thread_keys_.size(); ++i)
    if (thread_keys_[i] == key) return static_cast<std::uint32_t>(i);
  thread_keys_.push_back(key);
  return static_cast<std::uint32_t>(thread_keys_.size() - 1);
}

void TraceSink::add_complete(std::string_view name, std::string_view category,
                             Clock::time_point start, Clock::time_point end,
                             std::string_view args_json) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.args_json = std::string(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  const auto us = [this](Clock::time_point t) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
            .count());
  };
  e.ts_us = us(start);
  const std::uint64_t end_us = us(end);
  e.dur_us = end_us > e.ts_us ? end_us - e.ts_us : 0;
  e.tid = tid_of_this_thread();
  events_.push_back(std::move(e));
}

std::string TraceSink::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i) out += ',';
    out += "{\"name\":\"" + JsonWriter::escape(e.name) + "\",\"cat\":\"" +
           JsonWriter::escape(e.category) + "\",\"ph\":\"X\",\"pid\":1,";
    out += "\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + std::to_string(e.ts_us);
    out += ",\"dur\":" + std::to_string(e.dur_us);
    if (!e.args_json.empty()) out += ",\"args\":" + e.args_json;
    out += '}';
  }
  out += "]}";
  return out;
}

bool TraceSink::end_to_file(const std::string& path, std::string* error) {
  const std::string doc = json();
  discard();
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot write '" + path + "'";
    return false;
  }
  out << doc << '\n';
  if (!out.good()) {
    if (error) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

void TraceSink::discard() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  events_.clear();
  thread_keys_.clear();
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace ndp::obs
