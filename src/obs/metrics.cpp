#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ndp::obs {

namespace {

/// Prometheus renders integers bare and doubles with enough digits to
/// round-trip; %.17g is exact, then trailing noise is trimmed via %g's
/// shortest-form behaviour at lower precision when lossless.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop for the double sum — contended observes retry, which is fine
  // for request-rate (not per-event) instrumentation.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed))
    ;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset_for_test() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Bucket edges, with the two unbounded ends clamped to the nearest
  // finite bound (bucket 0 has no finite floor; the +Inf bucket no finite
  // ceiling).
  auto lower_edge = [this](std::size_t i) {
    return i == 0 ? 0.0 : bounds_[i - 1];
  };
  auto upper_edge = [this](std::size_t i) {
    return i < bounds_.size() ? bounds_[i]
                              : (bounds_.empty() ? 0.0 : bounds_.back());
  };
  std::size_t first = 0, last = 0;
  bool seen = false;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    if (bucket_count(i) == 0) continue;
    if (!seen) first = i;
    last = i;
    seen = true;
  }
  // The edge quantiles are resolved structurally, never through the
  // floating-point rank below: q=0 is the lower edge of the first occupied
  // bucket (the tightest minimum bound a histogram can state) and q=1 the
  // upper edge of the last — rounding in q*n can therefore never report a
  // quantile outside the occupied range.
  if (q == 0.0) return lower_edge(first);
  if (q == 1.0) return upper_edge(last);
  const double rank = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bounds_.size()) return upper_edge(i);
      const double hi = bounds_[i];
      const double lo = lower_edge(i);
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * (into < 0.0 ? 0.0 : into > 1.0 ? 1.0 : into);
    }
    cumulative += in_bucket;
  }
  // Rounded off the end of the scan: still never past the last occupied
  // bucket.
  return upper_edge(last);
}

std::vector<double> Histogram::latency_bounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics();  // leaked: outlives every static user
  return *m;
}

Metrics::Family& Metrics::family(std::string_view name, std::string_view help,
                                 Type type) {
  for (const auto& f : families_) {
    if (f->name == name) {
      if (f->type != type)
        throw std::invalid_argument("metric '" + std::string(name) +
                                    "' already registered as another type");
      return *f;
    }
  }
  auto f = std::make_unique<Family>();
  f->name = std::string(name);
  f->help = std::string(help);
  f->type = type;
  families_.push_back(std::move(f));
  return *families_.back();
}

namespace {
template <typename V, typename Make>
V& child(std::vector<std::pair<std::string, std::unique_ptr<V>>>& children,
         std::string_view labels, const Make& make) {
  const auto pos = std::lower_bound(
      children.begin(), children.end(), labels,
      [](const auto& a, std::string_view b) { return a.first < b; });
  if (pos != children.end() && pos->first == labels) return *pos->second;
  return *children.emplace(pos, std::string(labels), make())->second;
}
}  // namespace

Counter& Metrics::counter(std::string_view name, std::string_view help,
                          std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return child(family(name, help, Type::kCounter).counters, labels,
               [] { return std::make_unique<Counter>(); });
}

Gauge& Metrics::gauge(std::string_view name, std::string_view help,
                      std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return child(family(name, help, Type::kGauge).gauges, labels,
               [] { return std::make_unique<Gauge>(); });
}

Histogram& Metrics::histogram(std::string_view name, std::string_view help,
                              std::string_view labels,
                              std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, Type::kHistogram);
  if (f.histograms.empty())
    f.bounds = bounds.empty() ? Histogram::latency_bounds()
                              : std::move(bounds);
  return child(f.histograms, labels,
               [&f] { return std::make_unique<Histogram>(f.bounds); });
}

std::string Metrics::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto name_with = [](const std::string& name, std::string_view suffix,
                      const std::string& labels,
                      std::string_view extra = {}) {
    std::string s = name;
    s += suffix;
    if (!labels.empty() || !extra.empty()) {
      s += '{';
      s += labels;
      if (!labels.empty() && !extra.empty()) s += ',';
      s += extra;
      s += '}';
    }
    return s;
  };
  for (const auto& f : families_) {
    out += "# HELP " + f->name + ' ' + f->help + '\n';
    out += "# TYPE " + f->name + ' ';
    switch (f->type) {
      case Type::kCounter: out += "counter"; break;
      case Type::kGauge: out += "gauge"; break;
      case Type::kHistogram: out += "histogram"; break;
    }
    out += '\n';
    switch (f->type) {
      case Type::kCounter:
        for (const auto& [labels, c] : f->counters)
          out += name_with(f->name, "", labels) + ' ' +
                 std::to_string(c->value()) + '\n';
        break;
      case Type::kGauge:
        for (const auto& [labels, g] : f->gauges)
          out += name_with(f->name, "", labels) + ' ' +
                 std::to_string(g->value()) + '\n';
        break;
      case Type::kHistogram:
        for (const auto& [labels, h] : f->histograms) {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h->bounds().size(); ++i) {
            cumulative += h->bucket_count(i);
            out += name_with(f->name, "_bucket", labels,
                             "le=\"" + format_double(h->bounds()[i]) +
                                 "\"") +
                   ' ' + std::to_string(cumulative) + '\n';
          }
          cumulative += h->bucket_count(h->bounds().size());
          out += name_with(f->name, "_bucket", labels, "le=\"+Inf\"") + ' ' +
                 std::to_string(cumulative) + '\n';
          out += name_with(f->name, "_sum", labels) + ' ' +
                 format_double(h->sum()) + '\n';
          out += name_with(f->name, "_count", labels) + ' ' +
                 std::to_string(h->count()) + '\n';
        }
        break;
    }
  }
  return out;
}

void Metrics::reset_values_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : families_) {
    for (auto& [labels, c] : f->counters) c->reset_for_test();
    for (auto& [labels, g] : f->gauges) g->reset_for_test();
    for (auto& [labels, h] : f->histograms) h->reset_for_test();
  }
}

}  // namespace ndp::obs
