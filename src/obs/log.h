// Structured, leveled logging for every ndp tool and subsystem.
//
// One log call produces exactly one line, assembled in a private buffer and
// emitted with a single write under one mutex — concurrent sweep workers
// and serve connection threads can never interleave mid-line, which is the
// whole reason this exists instead of scattered fprintf(stderr, ...).
//
//   obs::log(obs::LogLevel::kInfo, "serve.accept")
//       .kv("conn", conn_id)
//       .kv("fd", fd);
//
// renders (text format, the default):
//
//   2026-08-07T12:34:56.789Z INFO serve.accept conn=3 fd=7
//
// or, with the JSON-lines format selected (log shippers):
//
//   {"ts":"2026-08-07T12:34:56.789Z","level":"info","event":"serve.accept","conn":3,"fd":7}
//
// Control surface: `--log-level` on the CLIs, or the NDPSIM_LOG environment
// variable ("debug", "warn", optionally with a format: "debug,json"). The
// default is info. Disabled levels cost two relaxed atomic loads and no
// formatting — logging below the threshold is free enough for per-request
// paths (never put a log call in the simulation hot loop; that is what
// obs/metrics.h counters are for).
//
// Output goes to stderr by default; tests retarget it with set_log_fd().
// Results on stdout / JSON artifacts are never written through the logger,
// so default tool output stays byte-identical with logging enabled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ndp::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,  ///< threshold only — no log call takes kOff
};

enum class LogFormat : int {
  kText,  ///< "TS LEVEL event k=v ..." (human-first)
  kJson,  ///< one JSON object per line (shipper-first)
};

const char* to_string(LogLevel l);

/// Parse "trace|debug|info|warn|error|off" (case-insensitive). False (and
/// `out` untouched) on anything else.
bool parse_log_level(std::string_view text, LogLevel& out);

/// Current threshold: calls below it are dropped before formatting.
LogLevel log_level();
void set_log_level(LogLevel l);

LogFormat log_format();
void set_log_format(LogFormat f);

/// Retarget the sink (default: fd 2). The fd is borrowed, never closed.
void set_log_fd(int fd);

/// Apply the NDPSIM_LOG environment variable ("LEVEL" or "LEVEL,json" /
/// "LEVEL,text"); unset or unparsable input leaves the defaults. Called
/// lazily before the first emitted line, so library users get env control
/// without an init call; CLIs call it eagerly and then apply their flags
/// on top (flags win).
void init_log_from_env();

/// True when a call at `l` would emit — guard any expensive field
/// computation with this.
inline bool log_enabled(LogLevel l) { return l >= log_level(); }

/// One structured log line; emits on destruction (end of the full
/// expression), or never if the level is below the threshold.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& kv(std::string_view key, std::string_view value);
  LogLine& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogLine& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  LogLine& kv(std::string_view key, std::uint64_t value);
  LogLine& kv(std::string_view key, std::int64_t value);
  LogLine& kv(std::string_view key, unsigned value) {
    return kv(key, static_cast<std::uint64_t>(value));
  }
  LogLine& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  LogLine& kv(std::string_view key, double value);
  LogLine& kv(std::string_view key, bool value);

 private:
  bool enabled_;
  LogFormat format_;
  std::string line_;
};

/// Entry point: `log(level, "subsystem.event").kv(...)...`.
inline LogLine log(LogLevel level, std::string_view event) {
  return LogLine(level, event);
}

}  // namespace ndp::obs
