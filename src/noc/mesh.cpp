#include "noc/mesh.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ndp {

Mesh::Mesh(MeshConfig cfg) : Mesh(cfg, precompute(cfg)) {}

Mesh::Mesh(MeshConfig cfg, const MeshTable& table)
    : cfg_(cfg), side_(table.side), fly_cycles_(table.fly_cycles) {
  assert(table.matches(cfg_) &&
         "mesh table was precomputed for different tile counts/hop latency");
  assert(fly_cycles_.size() == static_cast<std::size_t>(cfg_.num_cores) *
                                   cfg_.num_mem_endpoints);
  ingress_next_.assign(cfg_.num_mem_endpoints, 0);
}

MeshTable Mesh::precompute(const MeshConfig& cfg) {
  MeshTable t;
  t.num_cores = cfg.num_cores;
  t.num_mem_endpoints = cfg.num_mem_endpoints;
  t.hop_latency = cfg.hop_latency;
  const unsigned tiles = cfg.num_cores + cfg.num_mem_endpoints;
  t.side = 1;
  while (t.side * t.side < tiles) ++t.side;
  const auto pos = [&](unsigned tile) {
    return Pos{static_cast<int>(tile % t.side),
               static_cast<int>(tile / t.side)};
  };
  t.fly_cycles.reserve(static_cast<std::size_t>(cfg.num_cores) *
                       cfg.num_mem_endpoints);
  for (unsigned c = 0; c < cfg.num_cores; ++c)
    for (unsigned e = 0; e < cfg.num_mem_endpoints; ++e)
      t.fly_cycles.push_back(
          static_cast<Cycle>(manhattan(pos(c), pos(cfg.num_cores + e))) *
          cfg.hop_latency);
  return t;
}

Mesh::Pos Mesh::core_pos(unsigned core) const {
  assert(core < cfg_.num_cores);
  return Pos{static_cast<int>(core % side_), static_cast<int>(core / side_)};
}

Mesh::Pos Mesh::mem_pos(unsigned endpoint) const {
  assert(endpoint < cfg_.num_mem_endpoints);
  const unsigned tile = cfg_.num_cores + endpoint;
  return Pos{static_cast<int>(tile % side_), static_cast<int>(tile / side_)};
}

unsigned Mesh::manhattan(Pos a, Pos b) {
  return static_cast<unsigned>(std::abs(a.x - b.x) + std::abs(a.y - b.y));
}

unsigned Mesh::hops(unsigned core, unsigned endpoint) const {
  return manhattan(core_pos(core), mem_pos(endpoint));
}

Cycle Mesh::to_memory(Cycle now, unsigned core, unsigned endpoint) {
  const Cycle fly = fly_cycles(core, endpoint);
  Cycle arrive = now + fly;
  Cycle& slot = ingress_next_[endpoint];
  arrive = std::max(arrive, slot);
  slot = arrive + cfg_.ingress_slot;
  ++packets_;
  request_latency_.add(static_cast<double>(arrive - now));
  return arrive;
}

StatSet Mesh::snapshot() const {
  StatSet s;
  s.inc("packet", packets_);
  s.merge_average("request_latency", request_latency_);
  return s;
}

Cycle Mesh::from_memory(Cycle now, unsigned endpoint, unsigned core) const {
  return now + fly_cycles(core, endpoint);
}

}  // namespace ndp
