#include "noc/mesh.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ndp {

Mesh::Mesh(MeshConfig cfg) : cfg_(cfg) {
  const unsigned tiles = cfg_.num_cores + cfg_.num_mem_endpoints;
  side_ = 1;
  while (side_ * side_ < tiles) ++side_;
  ingress_next_.assign(cfg_.num_mem_endpoints, 0);
  fly_cycles_.reserve(static_cast<std::size_t>(cfg_.num_cores) *
                      cfg_.num_mem_endpoints);
  for (unsigned c = 0; c < cfg_.num_cores; ++c)
    for (unsigned e = 0; e < cfg_.num_mem_endpoints; ++e)
      fly_cycles_.push_back(static_cast<Cycle>(hops(c, e)) * cfg_.hop_latency);
}

Mesh::Pos Mesh::core_pos(unsigned core) const {
  assert(core < cfg_.num_cores);
  return Pos{static_cast<int>(core % side_), static_cast<int>(core / side_)};
}

Mesh::Pos Mesh::mem_pos(unsigned endpoint) const {
  assert(endpoint < cfg_.num_mem_endpoints);
  const unsigned tile = cfg_.num_cores + endpoint;
  return Pos{static_cast<int>(tile % side_), static_cast<int>(tile / side_)};
}

unsigned Mesh::manhattan(Pos a, Pos b) {
  return static_cast<unsigned>(std::abs(a.x - b.x) + std::abs(a.y - b.y));
}

unsigned Mesh::hops(unsigned core, unsigned endpoint) const {
  return manhattan(core_pos(core), mem_pos(endpoint));
}

Cycle Mesh::to_memory(Cycle now, unsigned core, unsigned endpoint) {
  const Cycle fly = fly_cycles(core, endpoint);
  Cycle arrive = now + fly;
  Cycle& slot = ingress_next_[endpoint];
  arrive = std::max(arrive, slot);
  slot = arrive + cfg_.ingress_slot;
  ++packets_;
  request_latency_.add(static_cast<double>(arrive - now));
  return arrive;
}

StatSet Mesh::snapshot() const {
  StatSet s;
  s.inc("packet", packets_);
  s.merge_average("request_latency", request_latency_);
  return s;
}

Cycle Mesh::from_memory(Cycle now, unsigned endpoint, unsigned core) const {
  return now + fly_cycles(core, endpoint);
}

}  // namespace ndp
