// 2-D mesh interconnect latency model (Table I: mesh, 4-cycle hop latency,
// 512-bit links).
//
// Tiles are laid out on the smallest square grid that fits all endpoints.
// Core tiles come first, then memory endpoints (HBM vault controllers in the
// NDP system, the memory controllers in the CPU system). Latency is hop
// count x hop latency plus a per-ingress serialization slot — a 64 B packet
// is a single flit on a 512-bit link, so serialization is one cycle, but the
// slot still creates back-pressure when many cores target one vault.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ndp {

struct MeshConfig {
  unsigned num_cores = 1;
  unsigned num_mem_endpoints = 4;  ///< vault/memory-controller tiles
  Cycle hop_latency = 4;
  Cycle ingress_slot = 1;  ///< per-endpoint serialization per packet
};

/// Precomputed, shareable routing state for one MeshConfig: the grid side
/// plus hops x hop_latency per (core, endpoint). A Mesh computes one at
/// construction; a Session shares one across every System of a sweep via
/// the SystemImage (core/system.h), so repeated builds skip the grid walk.
struct MeshTable {
  unsigned num_cores = 0;
  unsigned num_mem_endpoints = 0;
  Cycle hop_latency = 0;  ///< fly_cycles were baked with this latency
  unsigned side = 0;
  std::vector<Cycle> fly_cycles;  ///< (core, endpoint) row-major

  bool matches(const MeshConfig& cfg) const {
    return num_cores == cfg.num_cores &&
           num_mem_endpoints == cfg.num_mem_endpoints &&
           hop_latency == cfg.hop_latency;
  }

  /// Host bytes of the table (Session resident-size accounting).
  std::uint64_t resident_bytes() const {
    return fly_cycles.size() * sizeof(Cycle);
  }
};

class Mesh {
 public:
  explicit Mesh(MeshConfig cfg);
  /// Adopt precomputed tables (must match cfg's tile counts and hop
  /// latency; asserted).
  Mesh(MeshConfig cfg, const MeshTable& table);

  /// Compute the shareable tables for `cfg` — exactly what Mesh(cfg) would
  /// build for itself.
  static MeshTable precompute(const MeshConfig& cfg);

  /// One-way traversal core -> memory endpoint; returns arrival time and
  /// reserves the endpoint's ingress slot.
  Cycle to_memory(Cycle now, unsigned core, unsigned endpoint);
  /// Response path memory endpoint -> core (no ingress reservation: response
  /// networks are modeled contention-free, matching typical NoC studies).
  Cycle from_memory(Cycle now, unsigned endpoint, unsigned core) const;

  unsigned hops(unsigned core, unsigned endpoint) const;
  unsigned grid_side() const { return side_; }
  StatSet snapshot() const;
  void reset_counters() { packets_ = 0; request_latency_.reset(); }

 private:
  struct Pos {
    int x, y;
  };
  Pos core_pos(unsigned core) const;
  Pos mem_pos(unsigned endpoint) const;
  static unsigned manhattan(Pos a, Pos b);

  Cycle fly_cycles(unsigned core, unsigned endpoint) const {
    return fly_cycles_[static_cast<std::size_t>(core) *
                           cfg_.num_mem_endpoints +
                       endpoint];
  }

  MeshConfig cfg_;
  unsigned side_;
  std::vector<Cycle> ingress_next_;  ///< per memory endpoint
  /// hops x hop_latency per (core, endpoint), precomputed at construction —
  /// the per-packet path computes no grid coordinates.
  std::vector<Cycle> fly_cycles_;
  std::uint64_t packets_ = 0;
  Average request_latency_;
};

}  // namespace ndp
