#include "fleet/result_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "sim/image_store.h"

namespace ndp::fleet {

namespace {

/// Fleet cache metrics (obs/metrics.h). Fixed handles, resolved once.
struct CacheMetrics {
  obs::Counter& hits = obs::Metrics::instance().counter(
      "ndpsim_fleet_cache_hits_total", "Fleet result-cache hits");
  obs::Counter& misses = obs::Metrics::instance().counter(
      "ndpsim_fleet_cache_misses_total", "Fleet result-cache misses");
  obs::Counter& evictions = obs::Metrics::instance().counter(
      "ndpsim_fleet_cache_evictions_total",
      "Fleet result-cache LRU evictions");
  obs::Gauge& entries = obs::Metrics::instance().gauge(
      "ndpsim_fleet_cache_entries", "Fleet result-cache resident entries");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<ResultCache::Entry> ResultCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    CacheMetrics::get().misses.inc();
    return std::nullopt;
  }
  ++hits_;
  CacheMetrics::get().hits.inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

void ResultCache::store(const std::string& key, std::size_t cells,
                        std::string envelope) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = Entry{cells, std::move(envelope)};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, Entry{cells, std::move(envelope)}});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    CacheMetrics::get().evictions.inc();
  }
  CacheMetrics::get().entries.set(static_cast<double>(lru_.size()));
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, evictions_, lru_.size()};
}

std::string ResultCache::key_of(const RunConfig& config) {
  // Clear every field that can't change the result document's bytes (the
  // golden suite pins share_images/image_store invariance; output paths
  // and the description never reach the document).
  RunConfig normalized = config;
  normalized.description.clear();
  normalized.share_images = true;
  normalized.image_store.clear();
  normalized.json_output.clear();
  normalized.csv_output.clear();
  // Version-salt the key so a future normalization change can't collide
  // with entries an older coordinator produced.
  return ImageStore::digest("fleet-result|v1|" + normalized.to_json());
}

}  // namespace ndp::fleet
