#include "fleet/worker.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/framing.h"

namespace ndp::fleet {

namespace {

obs::Counter& retries_counter() {
  static obs::Counter& c = obs::Metrics::instance().counter(
      "ndpsim_fleet_retries_total",
      "Fleet worker connect retries (failures that were retried)");
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

WorkerLink::WorkerLink(WorkerOptions opts)
    : opts_(std::move(opts)),
      label_(opts_.label.empty()
                 ? opts_.host + ":" + std::to_string(opts_.port)
                 : opts_.label) {}

WorkerLink::~WorkerLink() {
  close();
  if (reader_.joinable()) reader_.join();
}

bool WorkerLink::up() const {
  std::lock_guard<std::mutex> lock(mu_);
  return up_;
}

void WorkerLink::set_up_gauge(bool up) {
  obs::Metrics::instance()
      .gauge("ndpsim_fleet_worker_up",
             "1 when the fleet worker's link is connected, else 0",
             "worker=\"" + label_ + "\"")
      .set(up ? 1.0 : 0.0);
}

bool WorkerLink::connect_once(std::string* error) {
  std::pair<int, int> fds;
  try {
    if (opts_.connect_fn) {
      fds = opts_.connect_fn();
    } else {
      const int fd =
          serve::connect_tcp(opts_.host, opts_.port, opts_.connect_timeout_ms);
      fds = {fd, fd};
    }
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_fd_ = fds.first;
    out_fd_ = fds.second;
    up_ = true;
  }
  reader_ = std::thread([this, fd = fds.first] { reader_loop(fd); });
  set_up_gauge(true);
  obs::log(obs::LogLevel::kInfo, "fleet.worker.connect").kv("worker", label_);
  return true;
}

bool WorkerLink::ensure_connected() {
  std::lock_guard<std::mutex> connect_lock(connect_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (up_) return true;
  }
  // A previous connection's reader has fully wound down once up_ is false;
  // reap it so the thread handle is free for the next one.
  if (reader_.joinable()) reader_.join();
  int backoff = std::max(opts_.backoff_ms, 1);
  for (unsigned attempt = 0;; ++attempt) {
    std::string error;
    if (connect_once(&error)) return true;
    if (attempt >= opts_.connect_retries) {
      obs::log(obs::LogLevel::kWarn, "fleet.worker.unreachable")
          .kv("worker", label_)
          .kv("attempts", attempt + 1)
          .kv("error", error);
      set_up_gauge(false);
      return false;
    }
    retries_counter().inc();
    obs::log(obs::LogLevel::kWarn, "fleet.worker.connect_retry")
        .kv("worker", label_)
        .kv("attempt", attempt + 1)
        .kv("backoff_ms", backoff)
        .kv("error", error);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2, std::max(opts_.backoff_max_ms, 1));
  }
}

void WorkerLink::close() {
  std::lock_guard<std::mutex> connect_lock(connect_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Shutdown (not close) wakes the reader's poll with EOF; the reader
    // owns the fds and closes them on its way out.
    if (in_fd_ >= 0) ::shutdown(in_fd_, SHUT_RDWR);
    if (out_fd_ >= 0 && out_fd_ != in_fd_) ::shutdown(out_fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
}

void WorkerLink::fail_all(const std::string& why) {
  std::map<std::string, std::shared_ptr<Pending>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!up_ && pending_.empty()) return;
    up_ = false;
    pending.swap(pending_);
    for (auto& [id, p] : pending) {
      p->fail = why;
      p->done = true;
    }
    cv_.notify_all();
  }
  set_up_gauge(false);
  if (!pending.empty())
    obs::log(obs::LogLevel::kWarn, "fleet.worker.failed_requests")
        .kv("worker", label_)
        .kv("reason", why)
        .kv("requests", pending.size());
}

void WorkerLink::reader_loop(int fd) {
  serve::LineReader reader(fd);
  std::string line;
  const char* reason = "worker closed the connection";
  for (;;) {
    const serve::LineReader::Status st = reader.next(line);
    if (st == serve::LineReader::Status::kEof) break;
    if (st != serve::LineReader::Status::kLine) {
      reason = "worker connection read error";
      break;
    }
    std::string id;
    std::string type;
    try {
      const JsonValue frame = JsonValue::parse(line);
      if (const JsonValue* v = frame.find("id"))
        if (v->is_string()) id = v->as_string();
      type = frame.at("type").as_string();
    } catch (const std::exception& e) {
      obs::log(obs::LogLevel::kWarn, "fleet.worker.bad_frame")
          .kv("worker", label_)
          .kv("error", e.what());
      reason = "worker sent an unparseable frame";
      break;
    }
    std::shared_ptr<Pending> p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        if (type == "cell") {
          p = it->second;  // callback runs outside the lock
        } else {
          it->second->terminal = line;
          it->second->done = true;
          pending_.erase(it);
          cv_.notify_all();
          continue;
        }
      }
    }
    if (p) {
      if (p->on_cell) p->on_cell(line);
    } else {
      // Connection-level frames (an idle-timeout error with an empty id,
      // say) and replies to exchanges that already timed out land here.
      obs::log(obs::LogLevel::kDebug, "fleet.worker.orphan_frame")
          .kv("worker", label_)
          .kv("req", id)
          .kv("frame_type", type);
    }
  }
  fail_all(reason);
  int a, b;
  {
    std::lock_guard<std::mutex> lock(mu_);
    a = in_fd_;
    b = out_fd_;
    in_fd_ = -1;
    out_fd_ = -1;
  }
  if (a >= 0) ::close(a);
  if (b >= 0 && b != a) ::close(b);
  obs::log(obs::LogLevel::kInfo, "fleet.worker.disconnect")
      .kv("worker", label_)
      .kv("reason", reason);
}

std::string WorkerLink::exchange(
    const std::string& id, const std::string& request_line,
    const std::function<void(const std::string&)>& on_cell, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  auto p = std::make_shared<Pending>();
  p->on_cell = on_cell;
  int out_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!up_)
      throw std::runtime_error("worker " + label_ + " is down");
    if (!pending_.emplace(id, p).second)
      throw std::runtime_error("worker " + label_ +
                               ": request id \"" + id +
                               "\" already in flight");
    out_fd = out_fd_;
  }
  bool sent;
  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    sent = serve::write_line(out_fd, request_line);
  }
  if (!sent) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(id);
    }
    close();
    throw std::runtime_error("worker " + label_ + ": write failed");
  }

  const int deadline = timeout_ms >= 0 ? timeout_ms : opts_.request_timeout_ms;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (deadline >= 0) {
      if (!cv_.wait_for(lock, std::chrono::milliseconds(deadline),
                        [&] { return p->done; })) {
        pending_.erase(id);
        lock.unlock();
        // The worker may still stream frames for this id; there is no way
        // to resync the stream around an abandoned request, so the link
        // goes down and the worker gets a fresh connection later.
        close();
        throw std::runtime_error("worker " + label_ + ": request \"" + id +
                                 "\" timed out after " +
                                 std::to_string(deadline) + " ms");
      }
    } else {
      cv_.wait(lock, [&] { return p->done; });
    }
  }
  if (!p->fail.empty())
    throw std::runtime_error("worker " + label_ + ": " + p->fail);
  obs::Metrics::instance()
      .histogram("ndpsim_fleet_worker_latency_seconds",
                 "Fleet request round-trip seconds, by worker",
                 "worker=\"" + label_ + "\"")
      .observe(seconds_since(start));
  return p->terminal;
}

bool WorkerLink::probe(std::string* reply, int timeout_ms) {
  const std::string id =
      "probe-" + std::to_string(probe_seq_.fetch_add(1) + 1);
  try {
    const std::string line = exchange(
        id, serve::simple_request_line("status", id), {}, timeout_ms);
    const JsonValue frame = JsonValue::parse(line);
    if (frame.at("type").as_string() != "status") {
      obs::log(obs::LogLevel::kWarn, "fleet.worker.probe_unexpected")
          .kv("worker", label_)
          .kv("frame_type", frame.at("type").as_string());
      close();
      return false;
    }
    if (reply) *reply = line;
    set_up_gauge(true);
    return true;
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kWarn, "fleet.worker.probe_failed")
        .kv("worker", label_)
        .kv("error", e.what());
    return false;
  }
}

}  // namespace ndp::fleet
