#include "fleet/coordinator.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "sim/sweep_runner.h"

namespace ndp::fleet {

namespace {

/// Fleet-level metrics (obs/metrics.h). Fixed handles, resolved once;
/// worker-labelled children are found per call (dispatch is not hot).
struct FleetMetrics {
  obs::Counter& failovers = obs::Metrics::instance().counter(
      "ndpsim_fleet_failovers_total",
      "Shards re-dispatched after a worker failure");

  obs::Counter& dispatches(const std::string& worker) {
    return obs::Metrics::instance().counter(
        "ndpsim_fleet_dispatches_total", "Shard dispatches, by worker",
        "worker=\"" + worker + "\"");
  }

  obs::Counter& runs(const char* outcome) {
    return obs::Metrics::instance().counter(
        "ndpsim_fleet_runs_total", "Fleet runs, by outcome",
        std::string("outcome=\"") + outcome + "\"");
  }

  static FleetMetrics& get() {
    static FleetMetrics m;
    return m;
  }
};

[[noreturn]] void config_error(const std::string& msg) {
  throw std::invalid_argument("fleet config: " + msg);
}

int int_of(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) config_error("\"" + key + "\" must be a number");
  const double d = v.as_double();
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    config_error("\"" + key + "\" must be an integer");
  return i;
}

}  // namespace

WorkerOptions parse_worker_endpoint(std::string_view endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == endpoint.size())
    throw std::invalid_argument("worker endpoint \"" + std::string(endpoint) +
                                "\" is not HOST:PORT");
  WorkerOptions w;
  w.host = std::string(endpoint.substr(0, colon));
  const std::string port_text(endpoint.substr(colon + 1));
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_text, &used);
    if (used != port_text.size()) throw std::invalid_argument(port_text);
  } catch (const std::exception&) {
    throw std::invalid_argument("worker endpoint \"" + std::string(endpoint) +
                                "\": bad port \"" + port_text + '"');
  }
  if (port == 0 || port > 65535)
    throw std::invalid_argument("worker endpoint \"" + std::string(endpoint) +
                                "\": port out of range");
  w.port = static_cast<std::uint16_t>(port);
  return w;
}

FleetOptions FleetOptions::from_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object()) config_error("must be a JSON object");
  FleetOptions opts;
  std::vector<std::string> endpoints;
  int connect_timeout_ms = 2000;
  unsigned connect_retries = 2;
  int backoff_ms = 100;
  int backoff_max_ms = 2000;
  for (const auto& [key, value] : doc.members()) {
    if (key == "port") {
      const std::uint64_t p = value.as_u64();
      if (p > 65535) config_error("\"port\" out of range");
      opts.port = static_cast<std::uint16_t>(p);
    } else if (key == "workers") {
      if (!value.is_array()) config_error("\"workers\" must be an array");
      for (const JsonValue& w : value.array()) {
        if (!w.is_string())
          config_error("\"workers\" entries must be \"HOST:PORT\" strings");
        endpoints.push_back(w.as_string());
      }
    } else if (key == "jobs") {
      const std::uint64_t n = value.as_u64();
      if (n > 1024) config_error("\"jobs\" out of range");
      opts.jobs = static_cast<unsigned>(n);
    } else if (key == "max_connections") {
      opts.max_connections = static_cast<unsigned>(value.as_u64());
    } else if (key == "idle_timeout_ms") {
      opts.idle_timeout_ms = int_of(value, key);
    } else if (key == "probe_interval_ms") {
      opts.probe_interval_ms = int_of(value, key);
    } else if (key == "request_timeout_ms") {
      opts.request_timeout_ms = int_of(value, key);
    } else if (key == "connect_timeout_ms") {
      connect_timeout_ms = int_of(value, key);
    } else if (key == "connect_retries") {
      connect_retries = static_cast<unsigned>(value.as_u64());
    } else if (key == "backoff_ms") {
      backoff_ms = int_of(value, key);
    } else if (key == "backoff_max_ms") {
      backoff_max_ms = int_of(value, key);
    } else if (key == "cache") {
      if (!value.is_bool()) config_error("\"cache\" must be a bool");
      opts.cache = value.as_bool();
    } else if (key == "cache_capacity") {
      opts.cache_capacity = static_cast<std::size_t>(value.as_u64());
    } else {
      config_error("unknown key \"" + key + '"');
    }
  }
  if (endpoints.empty()) config_error("\"workers\" must name at least one");
  for (const std::string& e : endpoints) {
    WorkerOptions w = parse_worker_endpoint(e);
    w.connect_timeout_ms = connect_timeout_ms;
    w.connect_retries = connect_retries;
    w.backoff_ms = backoff_ms;
    w.backoff_max_ms = backoff_max_ms;
    opts.workers.push_back(std::move(w));
  }
  return opts;
}

FleetOptions FleetOptions::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument(path + ": cannot open");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

Coordinator::Coordinator(FleetOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache ? opts_.cache_capacity : 0),
      start_time_(std::chrono::steady_clock::now()) {
  for (const WorkerOptions& w : opts_.workers)
    workers_.push_back(std::make_unique<WorkerLink>(w));
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("fleet: pipe failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
}

Coordinator::~Coordinator() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

std::uint16_t Coordinator::start() {
  listen_fd_ = serve::listen_tcp(opts_.port);
  const std::uint16_t port = serve::local_port(listen_fd_);
  obs::log(obs::LogLevel::kInfo, "fleet.listen")
      .kv("port", port)
      .kv("workers", workers_.size());
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (opts_.probe_interval_ms > 0)
    probe_thread_ = std::thread([this] { probe_loop(); });
  return port;
}

void Coordinator::request_shutdown() {
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
}

void Coordinator::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (probe_thread_.joinable()) probe_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

std::size_t Coordinator::live_workers() {
  std::size_t live = 0;
  for (auto& w : workers_)
    if (w->ensure_connected()) ++live;
  return live;
}

void Coordinator::probe_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      probe_cv_.wait_for(lock,
                         std::chrono::milliseconds(opts_.probe_interval_ms),
                         [this] { return probe_stop_; });
      if (probe_stop_) return;
    }
    for (auto& w : workers_) {
      if (w->up())
        w->probe();
      else
        w->ensure_connected();
    }
  }
}

void Coordinator::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      obs::log(obs::LogLevel::kInfo, "fleet.drain").kv("reason", "shutdown");
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      obs::log(obs::LogLevel::kWarn, "fleet.accept.error").kv("errno", errno);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || connections_ >= opts_.max_connections) {
        const char* why = draining_ ? "coordinator is shutting down"
                                    : "connection limit reached";
        obs::log(obs::LogLevel::kWarn, "fleet.refuse")
            .kv("reason", why)
            .kv("connections", connections_);
        serve::write_line(conn, serve::error_envelope("", why));
        ::close(conn);
        continue;
      }
      ++connections_;
      const std::uint64_t conn_id =
          next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      obs::log(obs::LogLevel::kInfo, "fleet.accept")
          .kv("conn", conn_id)
          .kv("connections", connections_);
      conn_threads_.emplace_back([this, conn, conn_id] {
        handle_connection(conn, conn, /*own_fds=*/true, conn_id);
      });
    }
  }
}

void Coordinator::serve_stream(int in_fd, int out_fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
  }
  const std::uint64_t conn_id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  obs::log(obs::LogLevel::kInfo, "fleet.stream").kv("conn", conn_id);
  handle_connection(in_fd, out_fd, /*own_fds=*/false, conn_id);
  ::shutdown(out_fd, SHUT_WR);
}

void Coordinator::handle_connection(int in_fd, int out_fd, bool own_fds,
                                    std::uint64_t conn_id) {
  serve::LineReader reader(in_fd);
  std::string line;
  bool open = true;
  const char* close_reason = "eof";
  while (open) {
    const serve::LineReader::Status st =
        reader.next(line, opts_.idle_timeout_ms, wake_rd_);
    switch (st) {
      case serve::LineReader::Status::kLine:
        open = dispatch(line, out_fd, conn_id);
        if (!open) close_reason = "bye";
        break;
      case serve::LineReader::Status::kTimeout:
        serve::write_line(out_fd,
                          serve::error_envelope("", "idle timeout, closing"));
        open = false;
        close_reason = "idle_timeout";
        break;
      case serve::LineReader::Status::kWake:
        open = false;
        close_reason = "drain";
        break;
      case serve::LineReader::Status::kEof:
        open = false;
        close_reason = "eof";
        break;
      case serve::LineReader::Status::kError:
        open = false;
        close_reason = "read_error";
        break;
    }
  }
  if (own_fds) ::close(in_fd);
  obs::log(obs::LogLevel::kInfo, "fleet.close")
      .kv("conn", conn_id)
      .kv("reason", close_reason);
  std::lock_guard<std::mutex> lock(mu_);
  --connections_;
}

bool Coordinator::dispatch(const std::string& line, int out_fd,
                           std::uint64_t conn_id) {
  serve::Request req;
  try {
    req = serve::parse_request(line);
  } catch (const std::exception& e) {
    const std::string id = serve::request_id_of(line);
    obs::log(obs::LogLevel::kWarn, "fleet.request.malformed")
        .kv("conn", conn_id)
        .kv("req", id)
        .kv("error", e.what());
    serve::write_line(out_fd, serve::error_envelope(id, e.what()));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_accepted_;
    if (draining_ && req.op != serve::Request::Op::kShutdown &&
        req.op != serve::Request::Op::kStatus) {
      serve::write_line(
          out_fd,
          serve::error_envelope(req.id, "coordinator is shutting down"));
      return true;
    }
  }

  switch (req.op) {
    case serve::Request::Op::kRun: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++active_runs_;
      }
      const char* outcome = "ok";
      try {
        const RunOutcome out = run_grid(
            req.config, req.use_cache, req.jobs,
            [&](std::size_t index, std::size_t total,
                std::string_view raw_result) {
              serve::write_line(out_fd, serve::cell_envelope_raw(
                                            req.id, index, total, raw_result));
            });
        serve::write_line(out_fd, serve::done_envelope_raw(
                                      req.id, out.cells, out.envelope));
        outcome = out.cache_hit ? "cache_hit" : "ok";
      } catch (const std::exception& e) {
        obs::log(obs::LogLevel::kWarn, "fleet.run.error")
            .kv("conn", conn_id)
            .kv("req", req.id)
            .kv("error", e.what());
        serve::write_line(out_fd, serve::error_envelope(req.id, e.what()));
        outcome = "error";
      }
      FleetMetrics::get().runs(outcome).inc();
      std::lock_guard<std::mutex> lock(mu_);
      --active_runs_;
      ++runs_completed_;
      drain_cv_.notify_all();
      break;
    }
    case serve::Request::Op::kStatus:
      serve::write_line(out_fd, status_envelope_json(req.id));
      break;
    case serve::Request::Op::kMetrics:
      serve::write_line(out_fd,
                        serve::metrics_envelope(
                            req.id, obs::Metrics::instance().prometheus_text()));
      break;
    case serve::Request::Op::kStats:
    case serve::Request::Op::kCancel:
      // Worker-local ops: there is no one Session behind a fleet, and runs
      // are not addressable mid-flight across workers. Explicit error
      // beats silent acceptance.
      serve::write_line(
          out_fd,
          serve::error_envelope(
              req.id, "op not supported by the fleet coordinator"));
      break;
    case serve::Request::Op::kShutdown: {
      obs::log(obs::LogLevel::kInfo, "fleet.shutdown")
          .kv("conn", conn_id)
          .kv("req", req.id);
      request_shutdown();
      std::unique_lock<std::mutex> lock(mu_);
      draining_ = true;
      drain_cv_.wait(lock, [this] { return active_runs_ == 0; });
      lock.unlock();
      serve::write_line(out_fd, serve::bye_envelope(req.id));
      return false;
    }
  }
  return true;
}

std::string Coordinator::status_envelope_json(std::string_view id) const {
  std::string out = "{\"type\":\"status\",\"id\":\"";
  out += JsonWriter::escape(id);
  out += "\",\"role\":\"coordinator\"";
  out += ",\"protocol_version\":" + std::to_string(serve::kProtocolVersion);
  out += ",\"uptime_ms\":" +
         std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start_time_)
                            .count());
  {
    std::lock_guard<std::mutex> lock(mu_);
    out += ",\"connections\":" + std::to_string(connections_);
    out += ",\"active_runs\":" + std::to_string(active_runs_);
    out += ",\"requests_accepted\":" + std::to_string(requests_accepted_);
    out += ",\"runs_completed\":" + std::to_string(runs_completed_);
    out += ",\"draining\":";
    out += draining_ ? "true" : "false";
  }
  const ResultCache::Stats cs = cache_.stats();
  out += ",\"cache\":{\"entries\":" + std::to_string(cs.entries);
  out += ",\"hits\":" + std::to_string(cs.hits);
  out += ",\"misses\":" + std::to_string(cs.misses);
  out += ",\"evictions\":" + std::to_string(cs.evictions);
  out += '}';
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i) out += ',';
    out += "{\"worker\":\"" + JsonWriter::escape(workers_[i]->label());
    out += "\",\"up\":";
    out += workers_[i]->up() ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

Coordinator::RunOutcome Coordinator::run_grid(
    const RunConfig& config, bool use_cache, unsigned jobs,
    const std::function<void(std::size_t, std::size_t, std::string_view)>&
        on_cell) {
  const std::size_t total = config.expand().size();
  const bool cache_on = opts_.cache && use_cache;
  std::string key;
  if (cache_on) {
    key = ResultCache::key_of(config);
    if (auto hit = cache_.lookup(key)) {
      obs::log(obs::LogLevel::kInfo, "fleet.cache.hit")
          .kv("key", key)
          .kv("cells", hit->cells);
      return RunOutcome{hit->cells, std::move(hit->envelope), true};
    }
  }

  // The live worker set at dispatch time fixes N — this run's shard
  // geometry. Failover re-dispatches the same k/N to a survivor, so the
  // merged document's bytes never depend on who executed what.
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < workers_.size(); ++i)
    if (workers_[i]->ensure_connected()) live.push_back(i);
  if (live.empty()) throw std::runtime_error("fleet: no worker reachable");
  const unsigned n = static_cast<unsigned>(
      std::min<std::size_t>(live.size(), std::max<std::size_t>(total, 1)));

  const std::uint64_t seq = run_seq_.fetch_add(1, std::memory_order_relaxed);
  const unsigned worker_jobs = jobs ? jobs : opts_.jobs;
  obs::log(obs::LogLevel::kInfo, "fleet.run.start")
      .kv("run", seq)
      .kv("cells", total)
      .kv("shards", n)
      .kv("workers", live.size());

  std::vector<std::string> shard_envelopes(n);
  std::vector<std::string> shard_errors(n);
  std::mutex forward_mu;
  std::vector<bool> streamed(total, false);

  // Worker cell frames carry shard-local indices (position in the shard's
  // result set, which keeps global spec order); global = k + local·N under
  // round-robin slicing. The bitmap deduplicates re-streams after a
  // failover, so the client sees each global index exactly once.
  auto forward_cell = [&](unsigned k, const std::string& line) {
    try {
      const JsonValue frame = JsonValue::parse(line);
      const std::size_t local = frame.at("index").as_u64();
      const std::size_t global = k + local * n;
      const std::string_view raw = raw_member(line, "result");
      std::lock_guard<std::mutex> lock(forward_mu);
      if (global < total && !streamed[global]) {
        streamed[global] = true;
        if (on_cell) on_cell(global, total, raw);
      }
    } catch (const std::exception& e) {
      obs::log(obs::LogLevel::kWarn, "fleet.cell.bad")
          .kv("shard", k)
          .kv("error", e.what());
    }
  };

  auto run_shard = [&](unsigned k) {
    obs::ScopedTraceSpan span("fleet:shard" + std::to_string(k), "fleet");
    std::size_t wi = live[k % live.size()];
    const unsigned max_attempts =
        static_cast<unsigned>(workers_.size()) * 2 + 1;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
      WorkerLink& worker = *workers_[wi];
      const std::string id = "f" + std::to_string(seq) + "-s" +
                             std::to_string(k) + "a" + std::to_string(attempt);
      FleetMetrics::get().dispatches(worker.label()).inc();
      obs::log(obs::LogLevel::kInfo, "fleet.dispatch")
          .kv("worker", worker.label())
          .kv("req", id)
          .kv("shard", std::to_string(k) + "/" + std::to_string(n));
      try {
        const std::string terminal = worker.exchange(
            id,
            serve::run_request_line(id, config, worker_jobs, k, n),
            [&](const std::string& cell) { forward_cell(k, cell); },
            opts_.request_timeout_ms);
        const JsonValue frame = JsonValue::parse(terminal);
        const std::string& type = frame.at("type").as_string();
        if (type == "done") {
          shard_envelopes[k] = std::string(raw_member(terminal, "envelope"));
          return;
        }
        if (type == "error") {
          // Deterministic failure (the config itself is bad, say): every
          // worker would say the same, so it goes straight to the client.
          shard_errors[k] = frame.at("error").as_string();
          return;
        }
        // "cancelled" (a worker-local watchdog) and anything unexpected:
        // retryable on another worker.
        throw std::runtime_error("worker " + worker.label() +
                                 " returned \"" + type + '"');
      } catch (const std::exception& e) {
        FleetMetrics::get().failovers.inc();
        obs::log(obs::LogLevel::kWarn, "fleet.failover")
            .kv("req", id)
            .kv("shard", k)
            .kv("worker", worker.label())
            .kv("error", e.what());
        // Move to the next connectable worker (wrapping; the failed one is
        // usually down, but with a single worker left it may reconnect and
        // retry — graceful degradation down to one).
        bool found = false;
        for (std::size_t step = 1; step <= workers_.size(); ++step) {
          const std::size_t cand = (wi + step) % workers_.size();
          if (workers_[cand]->ensure_connected()) {
            wi = cand;
            found = true;
            break;
          }
        }
        if (!found) {
          shard_errors[k] = "shard " + std::to_string(k) + "/" +
                            std::to_string(n) + ": no worker reachable (" +
                            e.what() + ")";
          return;
        }
      }
    }
    if (shard_errors[k].empty())
      shard_errors[k] = "shard " + std::to_string(k) + "/" +
                        std::to_string(n) + ": every re-dispatch failed";
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned k = 0; k < n; ++k)
    threads.emplace_back([&run_shard, k] { run_shard(k); });
  for (std::thread& t : threads) t.join();

  for (unsigned k = 0; k < n; ++k)
    if (!shard_errors[k].empty())
      throw std::runtime_error("fleet: " + shard_errors[k]);

  // One shard = the worker ran the whole grid; its envelope IS the batch
  // document. Otherwise recombine — merge rejections (an envelope that
  // doesn't belong to this grid) surface as std::invalid_argument.
  std::string merged = n == 1 ? std::move(shard_envelopes[0])
                              : merge_sharded_envelopes(shard_envelopes);
  obs::log(obs::LogLevel::kInfo, "fleet.run.done")
      .kv("run", seq)
      .kv("cells", total)
      .kv("shards", n)
      .kv("bytes", merged.size());
  if (cache_on) cache_.store(key, total, merged);
  return RunOutcome{total, std::move(merged), false};
}

}  // namespace ndp::fleet
