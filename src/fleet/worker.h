// One coordinator→worker connection: a multiplexed JSON-lines link to a
// `ndpsim --serve` daemon (serve/protocol.h), plus the health machinery a
// fleet needs around it — bounded-backoff reconnects, per-request
// deadlines, and `status`-op probes.
//
// The link holds exactly one socket per worker (the daemon multiplexes
// requests within a connection) and runs one reader thread that
// demultiplexes incoming envelopes by their "id": streamed "cell" frames
// go to the issuing exchange()'s callback, terminal frames (done / error /
// cancelled / status / ...) complete it. Several exchanges can therefore
// be in flight at once — a failover re-dispatch lands on a worker that is
// still running its own shard.
//
// Failure model: any read error, EOF, or per-request timeout poisons the
// whole link (a half-consumed envelope stream can't be resynced), fails
// every in-flight exchange with a link-level error, and marks the worker
// down. ensure_connected() brings it back with bounded exponential
// backoff; the coordinator decides what to do with the failed shards
// (fleet/coordinator.h — failover).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace ndp::fleet {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Metrics/log label for this worker; "" = "host:port".
  std::string label;
  int connect_timeout_ms = 2000;  ///< per connect attempt (-1 = OS default)
  unsigned connect_retries = 2;   ///< further attempts after a failure
  int backoff_ms = 100;           ///< first retry delay, doubling per retry
  int backoff_max_ms = 2000;      ///< backoff ceiling
  /// Per-exchange deadline (-1 = none). A timed-out exchange closes the
  /// link — mid-stream there is no way back to frame alignment.
  int request_timeout_ms = -1;
  /// Test hook: produce a connected (in_fd, out_fd) pair instead of
  /// dialing TCP (socketpair ends backed by an in-process daemon). Throw
  /// to simulate a connect failure.
  std::function<std::pair<int, int>()> connect_fn;
};

class WorkerLink {
 public:
  explicit WorkerLink(WorkerOptions opts);
  ~WorkerLink();

  WorkerLink(const WorkerLink&) = delete;
  WorkerLink& operator=(const WorkerLink&) = delete;

  const std::string& label() const { return label_; }
  bool up() const;

  /// Connect if down, retrying opts.connect_retries times with bounded
  /// exponential backoff (each retry counts into ndpsim_fleet_retries_total).
  /// False when every attempt failed — the worker stays down.
  bool ensure_connected();

  /// Tear the connection down (fails in-flight exchanges). Idempotent.
  void close();

  /// Send `request_line` (whose "id" member must equal `id`) and block
  /// until that id's terminal envelope arrives; returns the terminal line.
  /// Streamed "cell" frames are handed to `on_cell` from the reader thread
  /// as raw lines. `timeout_ms` overrides opts.request_timeout_ms when
  /// >= 0. Throws std::runtime_error on a down link, write failure, link
  /// death mid-exchange, or deadline (the last two close the link).
  std::string exchange(
      const std::string& id, const std::string& request_line,
      const std::function<void(const std::string& cell_line)>& on_cell = {},
      int timeout_ms = -1);

  /// One `status` round-trip (bounded by `timeout_ms`): true and the raw
  /// status envelope in `reply` when the worker answered; false marks the
  /// probe failed (the link is closed/down). Updates the per-worker up
  /// gauge and latency histogram.
  bool probe(std::string* reply = nullptr, int timeout_ms = 2000);

 private:
  struct Pending {
    std::function<void(const std::string&)> on_cell;
    std::string terminal;  ///< the terminal envelope line, once done
    std::string fail;      ///< non-empty: link-level failure message
    bool done = false;
  };

  bool connect_once(std::string* error);
  void reader_loop(int fd);
  /// Fail every in-flight exchange and mark the link down (reader-thread
  /// and close() path). Caller must not hold mu_.
  void fail_all(const std::string& why);
  void set_up_gauge(bool up);

  WorkerOptions opts_;
  std::string label_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled when any exchange completes
  bool up_ = false;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::map<std::string, std::shared_ptr<Pending>> pending_;  ///< by id
  std::thread reader_;
  std::mutex connect_mu_;  ///< serializes connect/close transitions
  std::mutex write_mu_;    ///< serializes request lines onto the socket
  std::atomic<std::uint64_t> probe_seq_{0};
};

}  // namespace ndp::fleet
