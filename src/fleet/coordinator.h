// Fleet mode: a coordinator daemon that scales the serve layer across N
// worker daemons while preserving the byte-identity contract every tier
// already pins (served == batch == merged shards).
//
// Topology:
//
//   client ──run──▶ coordinator ──shard 0/N──▶ worker daemon A
//                       │       ──shard 1/N──▶ worker daemon B
//                       │       ──shard 2/N──▶ worker daemon C
//                       ◀─cells/done── (merged via merge_sharded_envelopes)
//
// The coordinator speaks the same wire protocol as a worker
// (serve/protocol.h) on both sides. A client `run` is sliced round-robin
// into `--shard k/N` requests — N fixed at dispatch time as the number of
// live workers (capped by the cell count) — and each shard rides one
// multiplexed WorkerLink (fleet/worker.h). Streamed worker cells are
// re-framed with their *global* index (global = k + local·N) and
// forwarded; the N shard documents are recombined with
// merge_sharded_envelopes() into the exact single-process batch document,
// which the terminal "done" frame embeds raw.
//
// Failure semantics: a worker that dies mid-run fails its link; the shard
// is re-dispatched to a survivor as the SAME k/N of the ORIGINAL N, so
// the merged bytes are unchanged — degradation is graceful down to one
// worker re-running every shard. Cells a dead worker already streamed are
// deduplicated (a bitmap of forwarded global indices), so the client
// never sees an index twice. Deterministic failures (a worker "error"
// envelope — bad config and the like) are NOT failed over; they come
// straight back as the client's error envelope, as does a merge
// rejection.
//
// Repeated identical grids hit the coordinator's result cache
// (fleet/result_cache.h) — keyed by a digest of the normalized RunConfig —
// and are answered from memory without touching a worker; "cache":false
// on the request bypasses both lookup and store.
//
// Observability: every dispatch/retry/failover/cache event counts into
// ndpsim_fleet_* metrics (worker-labelled where meaningful), coordinator
// logs carry worker + request ids, and each shard runs under a trace
// span.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fleet/result_cache.h"
#include "fleet/worker.h"
#include "serve/protocol.h"
#include "sim/run_config.h"

namespace ndp::fleet {

/// Parse "host:port" (the `--worker` flag's element form) into a
/// WorkerOptions with default health settings. Throws std::invalid_argument
/// on a missing/garbled port.
WorkerOptions parse_worker_endpoint(std::string_view endpoint);

struct FleetOptions {
  std::uint16_t port = 0;  ///< client-facing TCP port (0 = kernel-assigned)
  std::vector<WorkerOptions> workers;
  unsigned max_connections = 16;
  int idle_timeout_ms = -1;   ///< client connections (-1 = never)
  /// Background health-probe cadence over the worker set (<= 0 = no
  /// probe thread; workers are still health-checked at dispatch).
  int probe_interval_ms = 0;
  int request_timeout_ms = -1;  ///< per shard exchange (-1 = none)
  unsigned jobs = 0;            ///< forwarded to workers (0 = worker default)
  bool cache = true;            ///< result cache master switch
  std::size_t cache_capacity = 64;  ///< cached result documents (LRU)

  /// Parse a fleet config document:
  ///
  ///   {
  ///     "port": 7080,
  ///     "workers": ["127.0.0.1:7071", "127.0.0.1:7072"],
  ///     "jobs": 2,
  ///     "probe_interval_ms": 2000,
  ///     "request_timeout_ms": 0,        // -1/0 = none
  ///     "connect_timeout_ms": 2000,     // per worker connect attempt
  ///     "connect_retries": 2,
  ///     "backoff_ms": 100,
  ///     "backoff_max_ms": 2000,
  ///     "idle_timeout_ms": -1,
  ///     "max_connections": 16,
  ///     "cache": true,
  ///     "cache_capacity": 64
  ///   }
  ///
  /// All keys optional except "workers"; unknown keys are errors (same
  /// strictness as experiment configs). Throws std::invalid_argument.
  static FleetOptions from_json(std::string_view text);

  /// Load from a file; errors are prefixed with the path.
  static FleetOptions load(const std::string& path);
};

class Coordinator {
 public:
  explicit Coordinator(FleetOptions opts);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind + listen for clients and start the accept loop (and, when
  /// configured, the background probe thread). Returns the bound port.
  std::uint16_t start();

  /// Serve one client connection on an fd pair (stdio, socketpair tests);
  /// blocks until it ends. Composes with start().
  void serve_stream(int in_fd, int out_fd);

  /// Graceful drain: stop accepting, let in-flight runs finish.
  /// Async-signal-safe.
  void request_shutdown();

  /// Block until the accept loop and every connection thread finished.
  void wait();

  struct RunOutcome {
    std::size_t cells = 0;
    std::string envelope;    ///< the merged batch document, verbatim
    bool cache_hit = false;
  };

  /// Run one grid across the fleet (the engine under the `run` op, also
  /// driven directly by tools/perf_report). `on_cell(global_index,
  /// total_cells, raw_result_json)` fires per forwarded cell, deduplicated
  /// across failover re-streams; cache hits skip cells entirely. Throws
  /// std::runtime_error when no worker is reachable or a shard exhausted
  /// every worker, and std::invalid_argument on a merge rejection.
  RunOutcome run_grid(
      const RunConfig& config, bool use_cache = true, unsigned jobs = 0,
      const std::function<void(std::size_t index, std::size_t total,
                               std::string_view raw_result)>& on_cell = {});

  /// Workers currently connectable (runs the reconnect path on each down
  /// link) — what `--fleet` prints at startup.
  std::size_t live_workers();

  ResultCache& cache() { return cache_; }

 private:
  void accept_loop();
  void handle_connection(int in_fd, int out_fd, bool own_fds,
                         std::uint64_t conn_id);
  bool dispatch(const std::string& line, int out_fd, std::uint64_t conn_id);
  void probe_loop();
  /// The coordinator's `status` reply: role, protocol/uptime, run
  /// counters, cache stats, per-worker health.
  std::string status_envelope_json(std::string_view id) const;

  FleetOptions opts_;
  std::vector<std::unique_ptr<WorkerLink>> workers_;
  ResultCache cache_;
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe, same discipline as serve/server.h
  int wake_wr_ = -1;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  bool draining_ = false;
  unsigned connections_ = 0;
  unsigned active_runs_ = 0;
  std::uint64_t requests_accepted_ = 0;
  std::uint64_t runs_completed_ = 0;
  std::atomic<std::uint64_t> next_conn_id_{0};
  std::atomic<std::uint64_t> run_seq_{0};

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;

  std::thread accept_thread_;
  std::thread probe_thread_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace ndp::fleet
