// Coordinator-side result cache: merged batch documents keyed by a digest
// of the canonical RunConfig, so a repeated identical grid is a cache hit
// (the stored bytes go straight back out through done_envelope_raw), not a
// fleet-wide re-simulation.
//
// Keying reuses the image store's dual-FNV-128 digest
// (sim/image_store.h) over a *normalized* config serialization: fields
// that provably don't change the result document's bytes — output paths,
// image sharing/store knobs, the free-text description — are cleared
// before digesting, so "same experiment, different output file" still
// hits. Everything that does shape the document (name, grid, instruction
// budget, seed, overrides, baseline) feeds the key.
//
// The cache is bounded LRU; hits/misses/evictions surface both through
// stats() (the coordinator's status envelope) and the global
// ndpsim_fleet_cache_* counters (obs/metrics.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/run_config.h"

namespace ndp::fleet {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 64);

  struct Entry {
    std::size_t cells = 0;    ///< cell count of the grid (the "done" count)
    std::string envelope;     ///< the merged batch document, verbatim
  };

  /// Hit moves the entry to the LRU front. std::nullopt on miss.
  std::optional<Entry> lookup(const std::string& key);

  /// Insert (or refresh) `key`; evicts the least-recently-used entry when
  /// the capacity is exceeded. Capacity 0 disables storing entirely.
  void store(const std::string& key, std::size_t cells, std::string envelope);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  /// The digest key of a config: dual-FNV-128 over the normalized
  /// serialization (see file comment). Two configs with equal keys produce
  /// byte-identical batch documents.
  static std::string key_of(const RunConfig& config);

 private:
  struct Node {
    std::string key;
    Entry entry;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ndp::fleet
