// Buddy allocator over the physical frame space.
//
// This is the OS-substrate piece behind the paper's Huge Page baseline
// discussion (§VII-B): 2 MB allocations need an order-9 buddy block, and
// once memory is fragmented those stop being available — the allocator
// reports it honestly instead of applying a fudge factor.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"

namespace ndp {

class BuddyAllocator {
 public:
  static constexpr unsigned kMaxOrder = 10;  ///< up to 4 MB blocks

  /// num_frames must be a multiple of 2^kMaxOrder (the pool is built from
  /// max-order blocks).
  explicit BuddyAllocator(std::uint64_t num_frames);

  /// Allocate a 2^order-frame block aligned to its size. Returns the base
  /// PFN, or nullopt if no such block exists (fragmentation or exhaustion).
  std::optional<Pfn> alloc(unsigned order);
  /// Return a previously allocated block; buddies coalesce eagerly.
  void free(Pfn base, unsigned order);
  /// Allocate exactly `frame` (order 0), splitting whatever free block
  /// contains it. Returns false if the frame is not free. Used for
  /// boot-time fragmentation injection and for compaction window reserve.
  bool alloc_specific(Pfn frame);

  bool is_free(Pfn frame) const { return free_bit_[frame]; }
  /// Is a block of this order currently available (without compaction)?
  bool can_alloc(unsigned order) const {
    for (unsigned o = order; o <= kMaxOrder; ++o)
      if (!free_lists_[o].empty()) return true;
    return false;
  }
  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t free_frames() const { return free_frames_; }
  /// Largest order for which a block is currently available.
  int largest_available_order() const;
  /// Free frames inside the aligned 2^order window containing `base`.
  std::uint64_t free_in_window(Pfn window_base, unsigned order) const;

  /// External fragmentation in [0,1]: 1 - (largest free block / free frames).
  double fragmentation() const;

 private:
  void insert_free(Pfn base, unsigned order);
  void remove_free(Pfn base, unsigned order);

  std::uint64_t num_frames_;
  std::uint64_t free_frames_;
  std::vector<std::set<Pfn>> free_lists_;  ///< per order, sorted for determinism
  std::vector<bool> free_bit_;             ///< per frame
  std::vector<std::uint8_t> block_order_;  ///< order of the free block starting here
};

}  // namespace ndp
