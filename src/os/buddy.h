// Buddy allocator over the physical frame space.
//
// This is the OS-substrate piece behind the paper's Huge Page baseline
// discussion (§VII-B): 2 MB allocations need an order-9 buddy block, and
// once memory is fragmented those stop being available — the allocator
// reports it honestly instead of applying a fudge factor.
//
// Free blocks are tracked per order in hierarchical bitmaps rather than
// ordered sets: every operation the simulator's hot paths perform —
// alloc_specific() during boot-noise injection and compaction reserves,
// alloc(0) during prefault — is a handful of word reads instead of
// red-black-tree searches and node allocations. Lowest-address-first
// allocation order (the determinism contract) is preserved exactly:
// find_first() returns the same block *begin() did.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/blob.h"
#include "common/types.h"

namespace ndp {

/// Fixed-size bitset with a two-level word summary: set/clear/test are O(1)
/// and find_first() (lowest set bit) costs at most a few word scans even
/// over millions of bits.
class BitIndex {
 public:
  explicit BitIndex(std::uint64_t nbits)
      : l0_((nbits + 63) / 64, 0),
        l1_((l0_.size() + 63) / 64, 0),
        l2_((l1_.size() + 63) / 64, 0) {}

  bool test(std::uint64_t i) const {
    return (l0_[i >> 6] >> (i & 63)) & 1ull;
  }
  void set(std::uint64_t i) {
    std::uint64_t& w = l0_[i >> 6];
    const std::uint64_t bit = 1ull << (i & 63);
    if (w & bit) return;
    w |= bit;
    ++count_;
    l1_[i >> 12] |= 1ull << ((i >> 6) & 63);
    l2_[i >> 18] |= 1ull << ((i >> 12) & 63);
  }
  void clear(std::uint64_t i) {
    std::uint64_t& w = l0_[i >> 6];
    const std::uint64_t bit = 1ull << (i & 63);
    if (!(w & bit)) return;
    w &= ~bit;
    --count_;
    if (w) return;
    std::uint64_t& s1 = l1_[i >> 12];
    s1 &= ~(1ull << ((i >> 6) & 63));
    if (s1) return;
    l2_[i >> 18] &= ~(1ull << ((i >> 12) & 63));
  }
  bool any() const { return count_ != 0; }
  std::uint64_t count() const { return count_; }
  /// The raw level-0 bit words — the only state serialization needs
  /// (summaries and the population count are derived; see load_words()).
  const std::vector<std::uint64_t>& words() const { return l0_; }
  /// Adopt serialized level-0 words and rebuild summaries + count.
  /// Returns false when the word count does not match this bitset's size.
  bool load_words(const std::vector<std::uint64_t>& w);
  /// Host bytes of the bitmap storage (Session resident-size accounting).
  std::uint64_t resident_bytes() const {
    return (l0_.size() + l1_.size() + l2_.size()) * sizeof(std::uint64_t);
  }
  /// Lowest set bit; the bitset must be non-empty.
  std::uint64_t find_first() const {
    std::uint64_t k = 0;
    while (l2_[k] == 0) ++k;
    const std::uint64_t j = (k << 6) + lowest_bit(l2_[k]);
    const std::uint64_t w = (j << 6) + lowest_bit(l1_[j]);
    return (w << 6) + lowest_bit(l0_[w]);
  }

 private:
  static unsigned lowest_bit(std::uint64_t w) {
    return static_cast<unsigned>(__builtin_ctzll(w));
  }

  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> l0_;  ///< the bits
  std::vector<std::uint64_t> l1_;  ///< bit j: l0_[j] has a set bit
  std::vector<std::uint64_t> l2_;  ///< bit k: l1_[k] has a set bit
};

class BuddyAllocator {
 public:
  static constexpr unsigned kMaxOrder = 10;  ///< up to 4 MB blocks

  /// num_frames must be a multiple of 2^kMaxOrder (the pool is built from
  /// max-order blocks).
  explicit BuddyAllocator(std::uint64_t num_frames);

  /// Allocate a 2^order-frame block aligned to its size. Returns the base
  /// PFN, or nullopt if no such block exists (fragmentation or exhaustion).
  std::optional<Pfn> alloc(unsigned order);
  /// Return a previously allocated block; buddies coalesce eagerly.
  void free(Pfn base, unsigned order);
  /// Allocate exactly `frame` (order 0), splitting whatever free block
  /// contains it. Returns false if the frame is not free. Used for
  /// boot-time fragmentation injection and for compaction window reserve.
  bool alloc_specific(Pfn frame);

  /// Value restore used by PhysicalMemory::snapshot()/restore(): the
  /// allocator is plain state (bitmaps + counters), so a copy of the object
  /// IS the snapshot. Asserts the pool geometry matches; copies into the
  /// existing storage (no reallocation when geometries agree).
  void restore(const BuddyAllocator& snapshot);

  bool is_free(Pfn frame) const { return free_bit_[frame]; }
  /// Is a block of this order currently available (without compaction)?
  bool can_alloc(unsigned order) const {
    for (unsigned o = order; o <= kMaxOrder; ++o)
      if (free_[o].any()) return true;
    return false;
  }
  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t free_frames() const { return free_frames_; }
  /// Largest order for which a block is currently available.
  int largest_available_order() const;
  /// Free frames inside the aligned 2^order window containing `base`.
  std::uint64_t free_in_window(Pfn window_base, unsigned order) const;

  /// External fragmentation in [0,1]: 1 - (largest free block / free frames).
  double fragmentation() const;

  /// Host bytes of the allocator's state (Session resident-size accounting).
  std::uint64_t resident_bytes() const {
    std::uint64_t bytes = free_bit_.size() / 8;
    for (const BitIndex& order : free_) bytes += order.resident_bytes();
    return bytes;
  }

  /// Serialize the complete allocator state (sim/image_store.h). The
  /// geometry (num_frames) is included and verified by load_state.
  void save_state(BlobWriter& out) const;
  /// Restore state written by save_state into an allocator of the same
  /// geometry. Returns false (state unchanged) on mismatch or truncation.
  bool load_state(BlobReader& in);

 private:
  void insert_free(Pfn base, unsigned order) { free_[order].set(base >> order); }
  void remove_free(Pfn base, unsigned order) {
    free_[order].clear(base >> order);
  }
  bool is_free_block(Pfn base, unsigned order) const {
    return free_[order].test(base >> order);
  }

  std::uint64_t num_frames_;
  std::uint64_t free_frames_;
  std::vector<BitIndex> free_;   ///< per order: bit i = free block at i << o
  std::vector<bool> free_bit_;   ///< per frame
};

}  // namespace ndp
