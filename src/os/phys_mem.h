// Physical memory manager: the OS half of the simulated system.
//
// Wraps the buddy allocator with
//   * frame-use bookkeeping (data / page-table / OS noise / huge),
//   * boot-time fragmentation injection ("noise": long-running-system pages
//     scattered through the pool, as in the Ingens discussion the paper
//     cites for Huge Page behaviour),
//   * 2 MB huge-frame allocation with real compaction (relocating movable
//     frames, with a relocation hook so the owner can fix its page tables),
//   * page-table frame tagging, which is how NDPage's OS marks metadata
//     regions for the L1-bypass mechanism (paper §V-A),
//   * a cycle-cost model for faults/zeroing/compaction used by the
//     simulator's fault path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "os/buddy.h"

namespace ndp {

enum class FrameUse : std::uint8_t {
  kFree,
  kData,       ///< application pages (movable by compaction)
  kPageTable,  ///< page-table nodes — metadata, never moved
  kNoise,      ///< boot-time system pages (movable, no remap needed)
  kHugePart,   ///< part of an assembled 2 MB block
};

/// Cycle costs charged by the OS model (core cycles @ 2.6 GHz).
struct OsCosts {
  Cycle minor_fault = 1500;       ///< kernel entry + fault path + map
  Cycle zero_per_kb = 32;         ///< 4 KB => 128 cy, 2 MB => 65536 cy
  Cycle compact_per_frame = 600;  ///< copy 4 KB + remap during compaction
  Cycle huge_fault_extra = 2500;  ///< THP alloc path overhead
  Cycle reclaim_per_frame = 1200; ///< writeback/swap-out one 4 KB frame
  Cycle shootdown = 2000;         ///< TLB-shootdown IPI round per batch

  Cycle fault_4k() const { return minor_fault + 4 * zero_per_kb; }
  Cycle fault_2m_base() const {
    return minor_fault + huge_fault_extra + 2048 * zero_per_kb;
  }
};

struct PhysMemConfig {
  std::uint64_t bytes = 16ull << 30;  ///< Table I: 16 GB
  double noise_fraction = 0.03;       ///< of frames, scattered at boot
  std::uint64_t seed = 0x05EEDull;
  OsCosts costs;
};

/// Immutable snapshot of a PhysicalMemory's complete allocation state —
/// buddy bitmaps, per-frame use tags, compaction window occupancy, and the
/// RNG — taken right after boot-noise injection. Restoring it is a few
/// large copies instead of re-running the ~10^5 scattered alloc_specific()
/// calls of noise injection, which is what lets a Session share one
/// prepared substrate across every cell of a sweep (see sim/session.h).
struct PhysMemImage {
  PhysMemConfig cfg;
  BuddyAllocator buddy;  ///< a value copy IS the buddy snapshot
  std::vector<FrameUse> use;
  std::vector<std::uint16_t> win_movable, win_unmovable;
  Rng rng;
  std::uint64_t noise_frames = 0;  ///< frames placed by noise injection

  /// Host bytes this snapshot keeps resident (Session cache accounting).
  std::uint64_t resident_bytes() const {
    return buddy.resident_bytes() + use.size() * sizeof(FrameUse) +
           (win_movable.size() + win_unmovable.size()) *
               sizeof(std::uint16_t);
  }
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(const PhysMemConfig& cfg);
  /// Adopt a prepared substrate: identical observable state to constructing
  /// from `image.cfg` (same buddy layout, frame tags, RNG position, and the
  /// post-boot stats), without re-running noise injection.
  explicit PhysicalMemory(const PhysMemImage& image);

  /// Capture the current allocation state (cheap value copies).
  PhysMemImage snapshot() const;
  /// Return to `image`'s state. Statistics reset to the post-boot values a
  /// fresh construction would report; the relocate hook is cleared (its
  /// owner, the AddressSpace, is rebuilt by System::reset_to()). Asserts
  /// the pool geometry matches.
  void restore(const PhysMemImage& image);

  /// Allocate one 4 KB frame. Asserts on true OOM (experiments are sized to
  /// fit); returns the PFN.
  Pfn alloc_frame(FrameUse use);
  void free_frame(Pfn pfn);

  /// Contiguous 2^order-frame block for page-table structures (NDPage's
  /// 2 MB flattened nodes, ECH way storage). Asserts on failure: table
  /// blocks are allocated early, before data fragments the pool.
  Pfn alloc_table_block(unsigned order);
  void free_table_block(Pfn base, unsigned order);

  struct HugeResult {
    Pfn base = 0;                    ///< valid iff !fell_back
    bool used_compaction = false;
    bool fell_back = false;          ///< no 2 MB block even after compaction
    std::uint64_t frames_moved = 0;  ///< relocations performed
    Cycle cost = 0;                  ///< full OS cycle cost of this request
  };
  /// Allocate a 2 MB-aligned block of 512 frames for a huge page, compacting
  /// movable frames if fragmentation requires it.
  HugeResult alloc_huge();
  void free_huge(Pfn base);

  /// Owner's callback invoked when compaction moves a kData frame, so page
  /// tables can be repointed: fn(old_pfn, new_pfn).
  void set_relocate_hook(std::function<void(Pfn, Pfn)> fn) {
    relocate_hook_ = std::move(fn);
  }

  FrameUse use_of(Pfn pfn) const { return use_[pfn]; }
  /// True iff the frame holds page-table metadata — the address check behind
  /// the bypass mechanism's "is this a PTE region?" question.
  bool is_page_table_frame(Pfn pfn) const {
    return pfn < use_.size() && use_[pfn] == FrameUse::kPageTable;
  }

  std::uint64_t num_frames() const { return buddy_.num_frames(); }
  std::uint64_t free_frames() const { return buddy_.free_frames(); }
  const BuddyAllocator& buddy() const { return buddy_; }
  const OsCosts& costs() const { return cfg_.costs; }
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }

 private:
  /// Shared construction path: `image` non-null adopts its state wholesale
  /// instead of injecting boot noise.
  PhysicalMemory(const PhysMemConfig& cfg, const PhysMemImage* image);

  struct CompactResult {
    Pfn base;
    std::uint64_t moved;
  };
  std::optional<CompactResult> compact_for_huge();
  void set_use(Pfn pfn, FrameUse use);
  std::uint64_t window_of(Pfn pfn) const { return pfn >> 9; }

  PhysMemConfig cfg_;
  BuddyAllocator buddy_;
  std::vector<FrameUse> use_;
  // Per-2MB-window occupancy, maintained incrementally so compaction's
  // window search is O(#windows), not O(#frames).
  std::vector<std::uint16_t> win_movable_;    ///< kData + kNoise frames
  std::vector<std::uint16_t> win_unmovable_;  ///< kPageTable + kHugePart
  std::function<void(Pfn, Pfn)> relocate_hook_;
  Rng rng_;
  StatSet stats_;
  // Counter handles resolved once at construction: frame alloc/free runs on
  // every fault and for every prefaulted page — no string-keyed lookups
  // there. Names match the previous inc() keys exactly.
  StatSet::Counter* c_noise_frames_;
  StatSet::Counter* c_frame_alloc_;
  StatSet::Counter* c_frame_free_;
  StatSet::Counter* c_pt_frames_;
  StatSet::Counter* c_table_block_alloc_;
  StatSet::Counter* c_table_block_free_;
  StatSet::Counter* c_compaction_;
  StatSet::Counter* c_compaction_moves_;
  StatSet::Counter* c_compaction_abort_;
  StatSet::Counter* c_huge_alloc_;
  StatSet::Counter* c_huge_alloc_compacted_;
  StatSet::Counter* c_huge_fallback_;
  StatSet::Counter* c_huge_free_;
  StatSet::Sample* s_compaction_moved_;
};

}  // namespace ndp
