#include "os/phys_mem.h"

#include <cassert>

namespace ndp {

namespace {
constexpr unsigned kHugeOrder = 9;  // 512 frames = 2 MB

bool movable(FrameUse u) { return u == FrameUse::kData || u == FrameUse::kNoise; }
bool unmovable(FrameUse u) {
  return u == FrameUse::kPageTable || u == FrameUse::kHugePart;
}
}  // namespace

PhysicalMemory::PhysicalMemory(const PhysMemConfig& cfg)
    : cfg_(cfg), buddy_(cfg.bytes / kPageSize),
      use_(cfg.bytes / kPageSize, FrameUse::kFree),
      win_movable_((cfg.bytes / kPageSize) >> 9, 0),
      win_unmovable_((cfg.bytes / kPageSize) >> 9, 0),
      rng_(cfg.seed) {
  // Boot-time fragmentation injection: scatter "system" pages uniformly.
  // A long-running machine never presents a pristine buddy pool; this is the
  // environment in which THP-style 2 MB allocation struggles.
  const auto target =
      static_cast<std::uint64_t>(cfg_.noise_fraction *
                                 static_cast<double>(buddy_.num_frames()));
  std::uint64_t placed = 0;
  while (placed < target) {
    const Pfn f = rng_.below(buddy_.num_frames());
    if (buddy_.alloc_specific(f)) {
      set_use(f, FrameUse::kNoise);
      ++placed;
    }
  }
  stats_.inc("noise_frames", placed);
}

void PhysicalMemory::set_use(Pfn pfn, FrameUse next) {
  const FrameUse prev = use_[pfn];
  if (prev == next) return;
  const std::uint64_t w = window_of(pfn);
  if (movable(prev)) --win_movable_[w];
  if (unmovable(prev)) --win_unmovable_[w];
  if (movable(next)) ++win_movable_[w];
  if (unmovable(next)) ++win_unmovable_[w];
  use_[pfn] = next;
}

Pfn PhysicalMemory::alloc_frame(FrameUse use) {
  assert(use != FrameUse::kFree);
  auto f = buddy_.alloc(0);
  assert(f.has_value() && "physical memory exhausted — size the experiment down");
  set_use(*f, use);
  stats_.inc("frame_alloc");
  if (use == FrameUse::kPageTable) stats_.inc("pt_frames");
  return *f;
}

Pfn PhysicalMemory::alloc_table_block(unsigned order) {
  auto got = buddy_.alloc(order);
  if (!got && order <= kHugeOrder) {
    // A fragmented pool (boot noise) rarely has pristine high-order blocks;
    // page-table structures (NDPage flattened nodes, ECH ways, hybrid flat
    // windows) are worth compacting for, exactly like huge-page data
    // blocks. Compaction assembles a 2 MB window; a smaller request takes
    // its aligned head and carves the surplus back into the buddy pool.
    if (auto c = compact_for_huge()) {
      for (std::uint64_t i = 0; i < (1ull << order); ++i)
        set_use(c->base + i, FrameUse::kPageTable);
      for (unsigned o = order; o < kHugeOrder; ++o) {
        const Pfn chunk = c->base + (1ull << o);
        for (std::uint64_t i = 0; i < (1ull << o); ++i)
          set_use(chunk + i, FrameUse::kFree);
        buddy_.free(chunk, o);
      }
      stats_.inc("table_block_alloc");
      stats_.inc("pt_frames", 1ull << order);
      return c->base;
    }
  }
  assert(got.has_value() &&
         "no contiguous block for a page-table structure — allocate tables "
         "before data");
  for (std::uint64_t i = 0; i < (1ull << order); ++i)
    set_use(*got + i, FrameUse::kPageTable);
  stats_.inc("table_block_alloc");
  stats_.inc("pt_frames", 1ull << order);
  return *got;
}

void PhysicalMemory::free_table_block(Pfn base, unsigned order) {
  for (std::uint64_t i = 0; i < (1ull << order); ++i) {
    assert(use_[base + i] == FrameUse::kPageTable);
    set_use(base + i, FrameUse::kFree);
  }
  buddy_.free(base, order);
  stats_.inc("table_block_free");
}

void PhysicalMemory::free_frame(Pfn pfn) {
  assert(use_[pfn] != FrameUse::kFree);
  set_use(pfn, FrameUse::kFree);
  buddy_.free(pfn, 0);
  stats_.inc("frame_free");
}

std::optional<PhysicalMemory::CompactResult> PhysicalMemory::compact_for_huge() {
  const std::uint64_t win = 1ull << kHugeOrder;
  if (buddy_.free_frames() < win) return std::nullopt;

  // Pick the movable window with the fewest occupants (fewest relocations).
  const std::uint64_t num_windows = buddy_.num_frames() >> kHugeOrder;
  std::uint64_t best_w = num_windows;
  std::uint64_t best_moves = win + 1;
  for (std::uint64_t w = 0; w < num_windows; ++w) {
    if (win_unmovable_[w] != 0) continue;
    const std::uint64_t moves = win_movable_[w];
    if (moves < best_moves) {
      best_moves = moves;
      best_w = w;
      if (moves == 0) break;
    }
  }
  if (best_w == num_windows) return std::nullopt;

  // Reserve the window's free frames first so relocation targets land
  // outside it, then move the occupants out.
  const Pfn base = best_w << kHugeOrder;
  for (std::uint64_t i = 0; i < win; ++i)
    if (use_[base + i] == FrameUse::kFree) {
      const bool ok = buddy_.alloc_specific(base + i);
      assert(ok);
      set_use(base + i, FrameUse::kHugePart);
    }
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < win; ++i) {
    const Pfn f = base + i;
    const FrameUse u = use_[f];
    if (u == FrameUse::kHugePart) continue;
    auto dst = buddy_.alloc(0);
    if (!dst) {
      // Free memory ran out mid-compaction. The partially assembled window
      // stays as kHugePart frames (a later attempt reuses it); report
      // failure so the caller falls back to 4 KB pages.
      stats_.inc("compaction_abort");
      return std::nullopt;
    }
    set_use(*dst, u);
    if (u == FrameUse::kData && relocate_hook_) relocate_hook_(f, *dst);
    set_use(f, FrameUse::kHugePart);
    ++moved;
  }
  stats_.inc("compaction");
  stats_.inc("compaction_moves", moved);
  stats_.add_sample("compaction_moved", static_cast<double>(moved));
  return CompactResult{base, moved};
}

PhysicalMemory::HugeResult PhysicalMemory::alloc_huge() {
  HugeResult r;
  r.cost = cfg_.costs.fault_2m_base();
  if (auto got = buddy_.alloc(kHugeOrder)) {
    for (std::uint64_t i = 0; i < (1ull << kHugeOrder); ++i)
      set_use(*got + i, FrameUse::kHugePart);
    r.base = *got;
    stats_.inc("huge_alloc");
    return r;
  }
  // Buddy pool has no contiguous 2 MB: try compaction.
  if (auto got = compact_for_huge()) {
    r.base = got->base;
    r.used_compaction = true;
    r.frames_moved = got->moved;
    r.cost += got->moved * cfg_.costs.compact_per_frame;
    stats_.inc("huge_alloc_compacted");
    return r;
  }
  r.fell_back = true;
  stats_.inc("huge_fallback");
  return r;
}

void PhysicalMemory::free_huge(Pfn base) {
  const std::uint64_t win = 1ull << kHugeOrder;
  assert(base % win == 0);
  for (std::uint64_t i = 0; i < win; ++i) {
    assert(use_[base + i] == FrameUse::kHugePart);
    set_use(base + i, FrameUse::kFree);
    buddy_.free(base + i, 0);
  }
  stats_.inc("huge_free");
}

}  // namespace ndp
