#include "os/phys_mem.h"

#include <cassert>

namespace ndp {

namespace {
constexpr unsigned kHugeOrder = 9;  // 512 frames = 2 MB

bool movable(FrameUse u) { return u == FrameUse::kData || u == FrameUse::kNoise; }
bool unmovable(FrameUse u) {
  return u == FrameUse::kPageTable || u == FrameUse::kHugePart;
}
}  // namespace

PhysicalMemory::PhysicalMemory(const PhysMemConfig& cfg)
    : PhysicalMemory(cfg, nullptr) {}

PhysicalMemory::PhysicalMemory(const PhysMemImage& image)
    : PhysicalMemory(image.cfg, &image) {}

PhysicalMemory::PhysicalMemory(const PhysMemConfig& cfg,
                               const PhysMemImage* image)
    : cfg_(cfg),
      buddy_(image ? image->buddy : BuddyAllocator(cfg.bytes / kPageSize)),
      use_(image ? image->use
                 : std::vector<FrameUse>(cfg.bytes / kPageSize,
                                         FrameUse::kFree)),
      win_movable_(image ? image->win_movable
                         : std::vector<std::uint16_t>(
                               (cfg.bytes / kPageSize) >> 9, 0)),
      win_unmovable_(image ? image->win_unmovable
                           : std::vector<std::uint16_t>(
                                 (cfg.bytes / kPageSize) >> 9, 0)),
      rng_(image ? image->rng : Rng(cfg.seed)),
      c_noise_frames_(stats_.counter("noise_frames")),
      c_frame_alloc_(stats_.counter("frame_alloc")),
      c_frame_free_(stats_.counter("frame_free")),
      c_pt_frames_(stats_.counter("pt_frames")),
      c_table_block_alloc_(stats_.counter("table_block_alloc")),
      c_table_block_free_(stats_.counter("table_block_free")),
      c_compaction_(stats_.counter("compaction")),
      c_compaction_moves_(stats_.counter("compaction_moves")),
      c_compaction_abort_(stats_.counter("compaction_abort")),
      c_huge_alloc_(stats_.counter("huge_alloc")),
      c_huge_alloc_compacted_(stats_.counter("huge_alloc_compacted")),
      c_huge_fallback_(stats_.counter("huge_fallback")),
      c_huge_free_(stats_.counter("huge_free")),
      s_compaction_moved_(stats_.sample("compaction_moved")) {
  if (image) {
    // Adopted substrate: the state vectors were copied above; only the
    // post-boot statistic a fresh construction would have remains.
    c_noise_frames_->add(image->noise_frames);
    return;
  }
  // Boot-time fragmentation injection: scatter "system" pages uniformly.
  // A long-running machine never presents a pristine buddy pool; this is the
  // environment in which THP-style 2 MB allocation struggles.
  const auto target =
      static_cast<std::uint64_t>(cfg_.noise_fraction *
                                 static_cast<double>(buddy_.num_frames()));
  std::uint64_t placed = 0;
  while (placed < target) {
    const Pfn f = rng_.below(buddy_.num_frames());
    if (buddy_.alloc_specific(f)) {
      set_use(f, FrameUse::kNoise);
      ++placed;
    }
  }
  c_noise_frames_->add(placed);
}

PhysMemImage PhysicalMemory::snapshot() const {
  return PhysMemImage{cfg_,         buddy_, use_, win_movable_,
                      win_unmovable_, rng_, stats_.get("noise_frames")};
}

void PhysicalMemory::restore(const PhysMemImage& image) {
  assert(image.use.size() == use_.size() &&
         "restore needs the geometry the image was snapshotted from");
  buddy_.restore(image.buddy);
  use_ = image.use;
  win_movable_ = image.win_movable;
  win_unmovable_ = image.win_unmovable;
  rng_ = image.rng;
  relocate_hook_ = nullptr;
  stats_.clear();
  c_noise_frames_->add(image.noise_frames);
}

void PhysicalMemory::set_use(Pfn pfn, FrameUse next) {
  const FrameUse prev = use_[pfn];
  if (prev == next) return;
  const std::uint64_t w = window_of(pfn);
  if (movable(prev)) --win_movable_[w];
  if (unmovable(prev)) --win_unmovable_[w];
  if (movable(next)) ++win_movable_[w];
  if (unmovable(next)) ++win_unmovable_[w];
  use_[pfn] = next;
}

Pfn PhysicalMemory::alloc_frame(FrameUse use) {
  assert(use != FrameUse::kFree);
  auto f = buddy_.alloc(0);
  assert(f.has_value() && "physical memory exhausted — size the experiment down");
  set_use(*f, use);
  c_frame_alloc_->add();
  if (use == FrameUse::kPageTable) c_pt_frames_->add();
  return *f;
}

Pfn PhysicalMemory::alloc_table_block(unsigned order) {
  auto got = buddy_.alloc(order);
  if (!got && order <= kHugeOrder) {
    // A fragmented pool (boot noise) rarely has pristine high-order blocks;
    // page-table structures (NDPage flattened nodes, ECH ways, hybrid flat
    // windows) are worth compacting for, exactly like huge-page data
    // blocks. Compaction assembles a 2 MB window; a smaller request takes
    // its aligned head and carves the surplus back into the buddy pool.
    if (auto c = compact_for_huge()) {
      for (std::uint64_t i = 0; i < (1ull << order); ++i)
        set_use(c->base + i, FrameUse::kPageTable);
      for (unsigned o = order; o < kHugeOrder; ++o) {
        const Pfn chunk = c->base + (1ull << o);
        for (std::uint64_t i = 0; i < (1ull << o); ++i)
          set_use(chunk + i, FrameUse::kFree);
        buddy_.free(chunk, o);
      }
      c_table_block_alloc_->add();
      c_pt_frames_->add(1ull << order);
      return c->base;
    }
  }
  assert(got.has_value() &&
         "no contiguous block for a page-table structure — allocate tables "
         "before data");
  for (std::uint64_t i = 0; i < (1ull << order); ++i)
    set_use(*got + i, FrameUse::kPageTable);
  c_table_block_alloc_->add();
  c_pt_frames_->add(1ull << order);
  return *got;
}

void PhysicalMemory::free_table_block(Pfn base, unsigned order) {
  for (std::uint64_t i = 0; i < (1ull << order); ++i) {
    assert(use_[base + i] == FrameUse::kPageTable);
    set_use(base + i, FrameUse::kFree);
  }
  buddy_.free(base, order);
  c_table_block_free_->add();
}

void PhysicalMemory::free_frame(Pfn pfn) {
  assert(use_[pfn] != FrameUse::kFree);
  set_use(pfn, FrameUse::kFree);
  buddy_.free(pfn, 0);
  c_frame_free_->add();
}

std::optional<PhysicalMemory::CompactResult> PhysicalMemory::compact_for_huge() {
  const std::uint64_t win = 1ull << kHugeOrder;
  if (buddy_.free_frames() < win) return std::nullopt;

  // Pick the movable window with the fewest occupants (fewest relocations).
  const std::uint64_t num_windows = buddy_.num_frames() >> kHugeOrder;
  std::uint64_t best_w = num_windows;
  std::uint64_t best_moves = win + 1;
  for (std::uint64_t w = 0; w < num_windows; ++w) {
    if (win_unmovable_[w] != 0) continue;
    const std::uint64_t moves = win_movable_[w];
    if (moves < best_moves) {
      best_moves = moves;
      best_w = w;
      if (moves == 0) break;
    }
  }
  if (best_w == num_windows) return std::nullopt;

  // Reserve the window's free frames first so relocation targets land
  // outside it, then move the occupants out.
  const Pfn base = best_w << kHugeOrder;
  for (std::uint64_t i = 0; i < win; ++i)
    if (use_[base + i] == FrameUse::kFree) {
      const bool ok = buddy_.alloc_specific(base + i);
      assert(ok);
      set_use(base + i, FrameUse::kHugePart);
    }
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < win; ++i) {
    const Pfn f = base + i;
    const FrameUse u = use_[f];
    if (u == FrameUse::kHugePart) continue;
    auto dst = buddy_.alloc(0);
    if (!dst) {
      // Free memory ran out mid-compaction. The partially assembled window
      // stays as kHugePart frames (a later attempt reuses it); report
      // failure so the caller falls back to 4 KB pages.
      c_compaction_abort_->add();
      return std::nullopt;
    }
    set_use(*dst, u);
    if (u == FrameUse::kData && relocate_hook_) relocate_hook_(f, *dst);
    set_use(f, FrameUse::kHugePart);
    ++moved;
  }
  c_compaction_->add();
  c_compaction_moves_->add(moved);
  s_compaction_moved_->add(static_cast<double>(moved));
  return CompactResult{base, moved};
}

PhysicalMemory::HugeResult PhysicalMemory::alloc_huge() {
  HugeResult r;
  r.cost = cfg_.costs.fault_2m_base();
  if (auto got = buddy_.alloc(kHugeOrder)) {
    for (std::uint64_t i = 0; i < (1ull << kHugeOrder); ++i)
      set_use(*got + i, FrameUse::kHugePart);
    r.base = *got;
    c_huge_alloc_->add();
    return r;
  }
  // Buddy pool has no contiguous 2 MB: try compaction.
  if (auto got = compact_for_huge()) {
    r.base = got->base;
    r.used_compaction = true;
    r.frames_moved = got->moved;
    r.cost += got->moved * cfg_.costs.compact_per_frame;
    c_huge_alloc_compacted_->add();
    return r;
  }
  r.fell_back = true;
  c_huge_fallback_->add();
  return r;
}

void PhysicalMemory::free_huge(Pfn base) {
  const std::uint64_t win = 1ull << kHugeOrder;
  assert(base % win == 0);
  for (std::uint64_t i = 0; i < win; ++i) {
    assert(use_[base + i] == FrameUse::kHugePart);
    set_use(base + i, FrameUse::kFree);
    buddy_.free(base + i, 0);
  }
  c_huge_free_->add();
}

}  // namespace ndp
