#include "os/buddy.h"

#include <algorithm>
#include <cassert>

namespace ndp {

BuddyAllocator::BuddyAllocator(std::uint64_t num_frames)
    : num_frames_(num_frames),
      free_frames_(num_frames),
      free_bit_(num_frames, true) {
  const std::uint64_t max_block = 1ull << kMaxOrder;
  assert(num_frames_ > 0 && num_frames_ % max_block == 0);
  free_.reserve(kMaxOrder + 1);
  for (unsigned o = 0; o <= kMaxOrder; ++o)
    free_.emplace_back(num_frames_ >> o);
  for (Pfn base = 0; base < num_frames_; base += max_block)
    insert_free(base, kMaxOrder);
}

bool BitIndex::load_words(const std::vector<std::uint64_t>& w) {
  if (w.size() != l0_.size()) return false;
  l0_ = w;
  std::fill(l1_.begin(), l1_.end(), 0);
  std::fill(l2_.begin(), l2_.end(), 0);
  count_ = 0;
  for (std::uint64_t j = 0; j < l0_.size(); ++j) {
    if (l0_[j] == 0) continue;
    count_ += static_cast<std::uint64_t>(__builtin_popcountll(l0_[j]));
    l1_[j >> 6] |= 1ull << (j & 63);
    l2_[j >> 12] |= 1ull << ((j >> 6) & 63);
  }
  return true;
}

void BuddyAllocator::save_state(BlobWriter& out) const {
  out.u64(num_frames_);
  out.u64(free_frames_);
  for (const BitIndex& order : free_) out.u64s(order.words());
  // free_bit_ packed 64 per word (std::vector<bool> has no contiguous
  // storage to bulk-copy from).
  std::vector<std::uint64_t> packed((num_frames_ + 63) / 64, 0);
  for (std::uint64_t f = 0; f < num_frames_; ++f)
    if (free_bit_[f]) packed[f >> 6] |= 1ull << (f & 63);
  out.u64s(packed);
}

bool BuddyAllocator::load_state(BlobReader& in) {
  if (in.u64() != num_frames_) return false;
  const std::uint64_t free_frames = in.u64();
  std::vector<std::vector<std::uint64_t>> orders(free_.size());
  for (auto& order : orders) order = in.u64s();
  const std::vector<std::uint64_t> packed = in.u64s();
  if (!in.ok() || packed.size() != (num_frames_ + 63) / 64) return false;
  for (unsigned o = 0; o < free_.size(); ++o)
    if (orders[o].size() != free_[o].words().size()) return false;
  for (unsigned o = 0; o < free_.size(); ++o) free_[o].load_words(orders[o]);
  for (std::uint64_t f = 0; f < num_frames_; ++f)
    free_bit_[f] = (packed[f >> 6] >> (f & 63)) & 1ull;
  free_frames_ = free_frames;
  return true;
}

void BuddyAllocator::restore(const BuddyAllocator& snapshot) {
  assert(num_frames_ == snapshot.num_frames_ &&
         "restore needs the same pool geometry the snapshot was taken from");
  free_frames_ = snapshot.free_frames_;
  free_ = snapshot.free_;
  free_bit_ = snapshot.free_bit_;
}

std::optional<Pfn> BuddyAllocator::alloc(unsigned order) {
  assert(order <= kMaxOrder);
  unsigned o = order;
  while (o <= kMaxOrder && !free_[o].any()) ++o;
  if (o > kMaxOrder) return std::nullopt;

  // Take the lowest-address block for determinism, split down to `order`.
  Pfn base = free_[o].find_first() << o;
  remove_free(base, o);
  while (o > order) {
    --o;
    insert_free(base + (1ull << o), o);
  }
  const std::uint64_t size = 1ull << order;
  for (std::uint64_t i = 0; i < size; ++i) free_bit_[base + i] = false;
  free_frames_ -= size;
  return base;
}

void BuddyAllocator::free(Pfn base, unsigned order) {
  assert(order <= kMaxOrder);
  const std::uint64_t size = 1ull << order;
  assert(base % size == 0 && base + size <= num_frames_);
  for (std::uint64_t i = 0; i < size; ++i) {
    assert(!free_bit_[base + i] && "double free");
    free_bit_[base + i] = true;
  }
  free_frames_ += size;

  // Coalesce with the buddy while it is wholly free at the same order.
  unsigned o = order;
  while (o < kMaxOrder) {
    const Pfn buddy = base ^ (1ull << o);
    if (buddy >= num_frames_ || !free_bit_[buddy] ||
        !is_free_block(buddy, o)) {
      break;
    }
    remove_free(buddy, o);
    base = std::min(base, buddy);
    ++o;
  }
  insert_free(base, o);
}

bool BuddyAllocator::alloc_specific(Pfn frame) {
  if (frame >= num_frames_ || !free_bit_[frame]) return false;
  // Find the free block containing this frame.
  for (unsigned o = 0; o <= kMaxOrder; ++o) {
    const Pfn base = frame & ~((1ull << o) - 1);
    if (!is_free_block(base, o)) continue;
    remove_free(base, o);
    // Split down, always keeping the half that contains `frame`.
    Pfn keep = base;
    for (unsigned cur = o; cur > 0; --cur) {
      const unsigned child = cur - 1;
      const Pfn lo = keep;
      const Pfn hi = keep + (1ull << child);
      if (frame >= hi) {
        insert_free(lo, child);
        keep = hi;
      } else {
        insert_free(hi, child);
        keep = lo;
      }
    }
    assert(keep == frame);
    free_bit_[frame] = false;
    --free_frames_;
    return true;
  }
  assert(false && "free_bit set but no containing free block");
  return false;
}

int BuddyAllocator::largest_available_order() const {
  for (int o = static_cast<int>(kMaxOrder); o >= 0; --o)
    if (free_[static_cast<unsigned>(o)].any()) return o;
  return -1;
}

std::uint64_t BuddyAllocator::free_in_window(Pfn window_base,
                                             unsigned order) const {
  const std::uint64_t size = 1ull << order;
  assert(window_base % size == 0);
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < size && window_base + i < num_frames_; ++i)
    if (free_bit_[window_base + i]) ++n;
  return n;
}

double BuddyAllocator::fragmentation() const {
  if (free_frames_ == 0) return 0.0;
  const int o = largest_available_order();
  const double largest = o < 0 ? 0.0 : static_cast<double>(1ull << o);
  return 1.0 - largest / static_cast<double>(free_frames_);
}

}  // namespace ndp
