#include "workloads/workload_registry.h"

#include <stdexcept>

#include "common/strings.h"

namespace ndp {
namespace {

bool answers_to(const WorkloadDescriptor& d, std::string_view name) {
  if (iequals(d.name, name)) return true;
  for (const std::string& alias : d.aliases)
    if (iequals(alias, name)) return true;
  return false;
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  detail::register_builtin_workloads(*this);
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

bool WorkloadRegistry::add(WorkloadDescriptor desc) {
  if (desc.name.empty() || !desc.make) return false;
  if (contains(desc.name)) return false;
  for (const std::string& alias : desc.aliases)
    if (contains(alias)) return false;
  descriptors_.push_back(std::move(desc));
  return true;
}

const WorkloadDescriptor* WorkloadRegistry::find(std::string_view name) const {
  for (const WorkloadDescriptor& d : descriptors_)
    if (answers_to(d, name)) return &d;
  return nullptr;
}

const WorkloadDescriptor& WorkloadRegistry::at(std::string_view name) const {
  if (const WorkloadDescriptor* d = find(name)) return *d;
  std::string msg = "unknown workload '";
  msg.append(name);
  msg += "'; registered workloads:";
  for (const WorkloadDescriptor& d : descriptors_) {
    msg += ' ';
    msg += d.name;
  }
  throw std::out_of_range(msg);
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(descriptors_.size());
  for (const WorkloadDescriptor& d : descriptors_) out.push_back(d.name);
  return out;
}

std::vector<std::string> WorkloadRegistry::builtin_names() const {
  std::vector<std::string> out;
  for (const WorkloadDescriptor& d : descriptors_)
    if (d.builtin) out.push_back(d.name);
  return out;
}

bool register_workload(WorkloadDescriptor desc) {
  return WorkloadRegistry::instance().add(std::move(desc));
}

const WorkloadDescriptor& descriptor_of(WorkloadKind kind) {
  return WorkloadRegistry::instance().at(to_string(kind));
}

const WorkloadDescriptor& resolve_workload(WorkloadKind fallback,
                                           std::string_view name) {
  if (!name.empty()) return WorkloadRegistry::instance().at(name);
  return descriptor_of(fallback);
}

}  // namespace ndp
