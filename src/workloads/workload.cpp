#include "workloads/workload.h"

#include <cassert>

#include "common/strings.h"
#include "workloads/dlrm.h"
#include "workloads/genomics.h"
#include "workloads/graph.h"
#include "workloads/gups.h"
#include "workloads/workload_registry.h"
#include "workloads/xsbench.h"

namespace ndp {

TraceMaterial TraceMaterial::of(const TraceSource& trace) {
  return TraceMaterial{trace.regions(), trace.warm_pages()};
}

const std::vector<WorkloadInfo>& all_workload_info() {
  static const std::vector<WorkloadInfo> kInfo = {
      {WorkloadKind::kBC, "BC", "GraphBIG", 8ull << 30},
      {WorkloadKind::kBFS, "BFS", "GraphBIG", 8ull << 30},
      {WorkloadKind::kCC, "CC", "GraphBIG", 8ull << 30},
      {WorkloadKind::kGC, "GC", "GraphBIG", 8ull << 30},
      {WorkloadKind::kPR, "PR", "GraphBIG", 8ull << 30},
      {WorkloadKind::kTC, "TC", "GraphBIG", 8ull << 30},
      {WorkloadKind::kSP, "SP", "GraphBIG", 8ull << 30},
      {WorkloadKind::kXS, "XS", "XSBench", 9ull << 30},
      {WorkloadKind::kRND, "RND", "GUPS", 10ull << 30},
      {WorkloadKind::kDLRM, "DLRM", "DLRM", 10ull << 30},
      {WorkloadKind::kGEN, "GEN", "GenomicsBench", 33ull << 30},
  };
  return kInfo;
}

const WorkloadInfo& info_of(WorkloadKind kind) {
  for (const WorkloadInfo& i : all_workload_info())
    if (i.kind == kind) return i;
  assert(false);
  return all_workload_info().front();
}

std::string to_string(WorkloadKind kind) { return info_of(kind).name; }

std::optional<WorkloadKind> workload_from_string(std::string_view name) {
  // Enum resolution stays registry-independent: only the eleven built-ins
  // have enum values; registered custom workloads resolve through
  // WorkloadRegistry::find() instead.
  for (const WorkloadInfo& i : all_workload_info())
    if (iequals(i.name, name)) return i.kind;
  // Suite names resolve when unambiguous ("GUPS" -> RND, but "GraphBIG"
  // names seven workloads and stays unresolvable).
  std::optional<WorkloadKind> match;
  for (const WorkloadInfo& i : all_workload_info())
    if (iequals(i.suite, name)) {
      if (match) return std::nullopt;
      match = i.kind;
    }
  return match;
}

std::unique_ptr<TraceSource> make_workload(WorkloadKind kind,
                                           const WorkloadParams& params) {
  return descriptor_of(kind).make(params);
}

namespace detail {

namespace {

const char* builtin_summary(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kBC: return "betweenness centrality over a CSR graph";
    case WorkloadKind::kBFS: return "breadth-first search with a frontier";
    case WorkloadKind::kCC: return "connected components (label propagation)";
    case WorkloadKind::kGC: return "greedy graph coloring";
    case WorkloadKind::kPR: return "PageRank power iteration";
    case WorkloadKind::kTC: return "triangle counting (two property arrays)";
    case WorkloadKind::kSP: return "single-source shortest path";
    case WorkloadKind::kXS: return "Monte Carlo cross-section lookups";
    case WorkloadKind::kRND: return "GUPS random 8 B read-modify-write";
    case WorkloadKind::kDLRM: return "sparse-length-sum embedding lookups";
    case WorkloadKind::kGEN: return "k-mer counting over a hash table";
  }
  return "";
}

std::unique_ptr<TraceSource> make_builtin(WorkloadKind kind,
                                          const WorkloadParams& params) {
  switch (kind) {
    case WorkloadKind::kBC:
    case WorkloadKind::kBFS:
    case WorkloadKind::kCC:
    case WorkloadKind::kGC:
    case WorkloadKind::kPR:
    case WorkloadKind::kTC:
    case WorkloadKind::kSP:
      return std::make_unique<GraphWorkload>(graph_spec(kind), params);
    case WorkloadKind::kXS:
      return std::make_unique<XsBenchWorkload>(params);
    case WorkloadKind::kRND:
      return std::make_unique<GupsWorkload>(params);
    case WorkloadKind::kDLRM:
      return std::make_unique<DlrmWorkload>(params);
    case WorkloadKind::kGEN:
      return std::make_unique<GenomicsWorkload>(params);
  }
  assert(false);
  return nullptr;
}

}  // namespace

void register_builtin_workloads(WorkloadRegistry& registry) {
  for (const WorkloadInfo& i : all_workload_info()) {
    WorkloadDescriptor d;
    d.name = i.name;
    d.suite = i.suite;
    d.summary = builtin_summary(i.kind);
    d.paper_bytes = i.paper_bytes;
    // A suite naming exactly one workload doubles as an alias ("GUPS" ->
    // RND); ambiguous suites ("GraphBIG") and suites equal to the name
    // ("DLRM") register nothing.
    if (!iequals(i.suite, i.name)) {
      bool unambiguous = true;
      for (const WorkloadInfo& other : all_workload_info())
        if (other.kind != i.kind && iequals(other.suite, i.suite))
          unambiguous = false;
      if (unambiguous) d.aliases.push_back(i.suite);
    }
    const WorkloadKind kind = i.kind;
    d.make = [kind](const WorkloadParams& params) {
      return make_builtin(kind, params);
    };
    d.builtin = true;
    registry.add(std::move(d));
  }
}

}  // namespace detail

}  // namespace ndp
