// GUPS / HPCC RandomAccess (RND): the pure pointer-chase stressor.
//
// Read-modify-write of random 8 B words in one huge table — near-zero
// locality, the worst case for TLBs and the cleanest probe of raw
// translation overhead (the paper's RND bars are its largest speedups).
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace ndp {

class GupsWorkload final : public TraceSource {
 public:
  explicit GupsWorkload(const WorkloadParams& params);

  std::string name() const override { return "RND"; }
  std::string suite() const override { return "GUPS"; }
  std::uint64_t paper_dataset_bytes() const override { return 10ull << 30; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override;
  MemRef next(unsigned core) override;

 private:
  struct CoreState {
    Rng rng{1};
    VirtAddr pending_write = 0;  ///< RMW: write follows its read
  };

  WorkloadParams params_;
  std::uint64_t dataset_bytes_;
  std::uint64_t table_words_;
  std::vector<CoreState> cores_;
};

}  // namespace ndp
