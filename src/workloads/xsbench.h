// XSBench (XS): Monte Carlo neutron-transport cross-section lookups.
//
// Each macroscopic cross-section lookup binary-searches the unionized
// energy grid (log2 N probes; the first probes reuse a handful of hot
// pages, the deep probes land on effectively random pages) and then gathers
// rows from the nuclide index grid — the access pattern XSBench's authors
// designed the proxy app around, and the reason it stresses TLBs.
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace ndp {

class XsBenchWorkload final : public TraceSource {
 public:
  explicit XsBenchWorkload(const WorkloadParams& params);

  std::string name() const override { return "XS"; }
  std::string suite() const override { return "XSBench"; }
  std::uint64_t paper_dataset_bytes() const override { return 9ull << 30; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override;
  MemRef next(unsigned core) override;

  std::uint64_t grid_points() const { return grid_points_; }

 private:
  struct CoreState {
    Rng rng{1};
    // Binary-search progress for the in-flight lookup.
    std::uint64_t lo = 0, hi = 0, key = 0;
    unsigned phase = 0;      ///< 0 = searching, 1..n = gather reads
    unsigned gather_left = 0;
  };

  static constexpr unsigned kNuclideReads = 6;  ///< index-row gathers/lookup
  static constexpr std::uint64_t kIndexRowBytes = 64;

  WorkloadParams params_;
  std::uint64_t dataset_bytes_;
  std::uint64_t grid_points_;
  std::vector<CoreState> cores_;
  std::vector<VmRegion> layout_;
};

}  // namespace ndp
