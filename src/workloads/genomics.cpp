#include "workloads/genomics.h"

#include <cassert>

namespace ndp {

GenomicsWorkload::GenomicsWorkload(const WorkloadParams& params)
    : params_(params),
      // GEN's paper dataset (33 GB) is scaled more aggressively than the
      // rest so the stream plus the hash span fits 16 GB; the stream is
      // sequential, so its absolute length does not change miss behaviour.
      dataset_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(paper_dataset_bytes()) * params.scale / 4.0)),
      stream_bytes_(dataset_bytes_),
      bucket_dist_(kHotBuckets, 1.1), cores_(params.num_cores) {
  assert(stream_bytes_ > (64ull << 20));
  for (unsigned c = 0; c < params_.num_cores; ++c) {
    cores_[c].rng = Rng(splitmix64(params_.seed + 0x6E4 * (c + 1)));
    // Threads scan disjoint slices of the shared read stream.
    cores_[c].stream_pos = (stream_bytes_ / params_.num_cores) * c;
    cores_[c].stream_pos &= ~(kCacheLineSize - 1);
  }
}

std::vector<VmRegion> GenomicsWorkload::regions() const {
  const VirtAddr base = dataset_base();
  auto align = [](std::uint64_t b) {
    return (b + kPageSize - 1) & ~(kPageSize - 1);
  };
  std::vector<VmRegion> rs;
  rs.push_back(VmRegion{"reads", base, align(stream_bytes_), true});
  // The k-mer hash table: large virtual span, sparse demand-paged touches.
  rs.push_back(VmRegion{"kmer_table", base + align(stream_bytes_) + kPageSize,
                        kHashSpanBytes, false});
  return rs;
}

VirtAddr GenomicsWorkload::bucket_va(std::uint64_t bucket) const {
  const VirtAddr table_base =
      dataset_base() + ((stream_bytes_ + kPageSize - 1) & ~(kPageSize - 1)) +
      kPageSize;
  // Bucket id -> permuted page inside the sparse span, plus a slot.
  const std::uint64_t page =
      splitmix64(bucket * 0x9E3779B97F4A7C15ull) % (kHashSpanBytes / kPageSize);
  const std::uint64_t slot = splitmix64(bucket ^ 0xABCD) % (kPageSize / 8);
  return table_base + page * kPageSize + slot * 8;
}

std::vector<VirtAddr> GenomicsWorkload::warm_pages() const {
  std::vector<VirtAddr> pages;
  pages.reserve(kWarmBuckets);
  for (std::uint64_t b = 0; b < kWarmBuckets; ++b)
    pages.push_back(bucket_va(b));
  return pages;
}

MemRef GenomicsWorkload::next(unsigned core) {
  CoreState& st = cores_[core];
  const VirtAddr reads_base = dataset_base();

  if (st.write_pending) {
    st.write_pending = false;
    return MemRef{1, st.probe_va, AccessType::kWrite};  // count increment
  }
  if (st.probes_left > 0) {
    --st.probes_left;
    st.probe_va = bucket_va(bucket_dist_(st.rng));
    st.write_pending = true;
    return MemRef{3, st.probe_va, AccessType::kRead};
  }
  // Stream the next 64 B chunk of reads and start its probe burst.
  const MemRef r{2, reads_base + st.stream_pos, AccessType::kRead};
  st.stream_pos = (st.stream_pos + kCacheLineSize) % stream_bytes_;
  st.probes_left = kProbesPerChunk;
  return r;
}

}  // namespace ndp
