// GraphBIG kernels over a synthetic power-law CSR graph.
//
// All seven kernels (BC, BFS, CC, GC, PR, TC, SP) walk the same shared
// structure — offsets[] (sequential), edges[] (streamed bursts), per-vertex
// 64 B property structs (skewed-random, the TLB killer) — and differ in the
// reference mix: how many property arrays they touch per edge, their write
// ratio, whether they maintain a frontier, and their compute density (gap
// sizes). Those knobs are what distinguish the kernels' translation
// behaviour in the paper's per-workload bars.
//
// Cores are threads of one application: they share the graph and partition
// the vertex range (staggered starting points, private RNG streams).
//
// Degrees follow a truncated Pareto (mean ~16, heavy tail); neighbor ids
// follow a Zipf distribution over all vertices, both computed on the fly
// from hashes, so no edge list is materialized in host memory.
#pragma once

#include <deque>
#include <vector>

#include "workloads/workload.h"

namespace ndp {

struct GraphKernelSpec {
  WorkloadKind kind = WorkloadKind::kPR;
  double write_neighbor_prob = 0.0;  ///< P(write to the neighbor property)
  bool write_vertex = false;         ///< write own property after the scan
  bool use_frontier = false;         ///< append to a demand-paged frontier
  unsigned property_arrays = 1;      ///< arrays touched per neighbor (1..3)
  std::uint32_t gap_vertex = 6;      ///< instrs before the offsets read
  std::uint32_t gap_edge = 2;        ///< instrs per edge-burst line
  std::uint32_t gap_neighbor = 3;    ///< instrs per neighbor access
  double zipf_s = 0.8;               ///< neighbor popularity skew
};

GraphKernelSpec graph_spec(WorkloadKind kind);

class GraphWorkload final : public TraceSource {
 public:
  GraphWorkload(const GraphKernelSpec& spec, const WorkloadParams& params);

  std::string name() const override;
  std::string suite() const override { return "GraphBIG"; }
  std::uint64_t paper_dataset_bytes() const override { return 8ull << 30; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override;
  MemRef next(unsigned core) override;

  std::uint64_t vertices() const { return num_vertices_; }

 private:
  struct CoreState {
    Rng rng{1};
    std::deque<MemRef> pending;
    std::uint64_t v = 0;          ///< current vertex
    std::uint64_t epos = 0;       ///< position in the edge stream
    std::uint64_t frontier_pos = 0;
  };

  std::uint64_t degree_of(std::uint64_t v) const;
  void emit_vertex(unsigned core);

  GraphKernelSpec spec_;
  WorkloadParams params_;
  std::uint64_t dataset_bytes_;
  std::uint64_t num_vertices_;
  std::uint64_t num_edges_;  ///< edge-slot capacity of the edges array
  Zipf neighbor_dist_;
  std::vector<CoreState> cores_;
  std::vector<VmRegion> layout_;  ///< shared region cache
};

}  // namespace ndp
