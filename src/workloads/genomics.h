// GenomicsBench k-mer counting (GEN): streaming reads + hash-table updates.
//
// A sequential scan of the read stream produces k-mers whose counts live in
// a hash table spread *sparsely* over a large virtual region and touched on
// demand. This is the workload where huge-page bloat bites: every touched
// 4 KB bucket page drags a whole 2 MB mapping in under the Huge Page
// baseline, multiplying resident memory — the Ingens-style pathology the
// paper cites for its 8-core Huge Page slowdown.
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace ndp {

class GenomicsWorkload final : public TraceSource {
 public:
  explicit GenomicsWorkload(const WorkloadParams& params);

  std::string name() const override { return "GEN"; }
  std::string suite() const override { return "GenomicsBench"; }
  std::uint64_t paper_dataset_bytes() const override { return 33ull << 30; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override;
  std::vector<VirtAddr> warm_pages() const override;
  MemRef next(unsigned core) override;

 private:
  struct CoreState {
    Rng rng{1};
    std::uint64_t stream_pos = 0;
    unsigned probes_left = 0;
    VirtAddr probe_va = 0;
    bool write_pending = false;
  };

  static constexpr unsigned kProbesPerChunk = 3;
  /// Virtual span of the hash table (sparsely touched).
  static constexpr std::uint64_t kHashSpanBytes = 3ull << 30;
  /// Distinct buckets referenced (Zipf over these).
  static constexpr std::uint64_t kHotBuckets = 1ull << 18;
  /// Buckets whose pages exist before the measured window (the table was
  /// built while processing earlier reads); colder tail buckets still fault
  /// in new pages at runtime — the dynamically growing part.
  static constexpr std::uint64_t kWarmBuckets = kHotBuckets - 4096;

  VirtAddr bucket_va(std::uint64_t bucket) const;

  WorkloadParams params_;
  std::uint64_t dataset_bytes_;
  std::uint64_t stream_bytes_;
  Zipf bucket_dist_;
  std::vector<CoreState> cores_;
};

}  // namespace ndp
