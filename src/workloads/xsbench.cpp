#include "workloads/xsbench.h"

#include <cassert>

namespace ndp {

XsBenchWorkload::XsBenchWorkload(const WorkloadParams& params)
    : params_(params),
      dataset_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(paper_dataset_bytes()) * params.scale)),
      cores_(params.num_cores) {
  // Dataset = egrid (8 B/point) + index grid (64 B/point), shared by all
  // particles (threads).
  grid_points_ = dataset_bytes_ / (8 + kIndexRowBytes);
  assert(grid_points_ > 4096);
  for (unsigned c = 0; c < params_.num_cores; ++c)
    cores_[c].rng = Rng(splitmix64(params_.seed + 0xA5A5 * (c + 1)));
  layout_ = regions();
}

std::vector<VmRegion> XsBenchWorkload::regions() const {
  const VirtAddr base = dataset_base();
  auto align = [](std::uint64_t b) {
    return (b + kPageSize - 1) & ~(kPageSize - 1);
  };
  const std::uint64_t egrid_bytes = align(grid_points_ * 8);
  const std::uint64_t index_bytes = align(grid_points_ * kIndexRowBytes);
  std::vector<VmRegion> rs;
  rs.push_back(VmRegion{"egrid", base, egrid_bytes, true});
  rs.push_back(
      VmRegion{"index", base + egrid_bytes + kPageSize, index_bytes, true});
  // Per-thread tally buffers: preallocated by XSBench, so prefaulted.
  for (unsigned c = 0; c < params_.num_cores; ++c)
    rs.push_back(VmRegion{"tally." + std::to_string(c), private_base(c),
                          64ull << 20, true});
  return rs;
}

MemRef XsBenchWorkload::next(unsigned core) {
  CoreState& st = cores_[core];
  const std::vector<VmRegion>& rs = layout_;
  const VmRegion& egrid = rs[0];
  const VmRegion& index = rs[1];

  if (st.phase == 0) {
    if (st.hi <= st.lo) {
      // Start a new lookup: fresh random energy key.
      st.key = st.rng.below(grid_points_);
      st.lo = 0;
      st.hi = grid_points_;
    }
    const std::uint64_t mid = (st.lo + st.hi) / 2;
    MemRef r{4, egrid.base + mid * 8, AccessType::kRead};
    if (mid <= st.key) st.lo = mid + 1; else st.hi = mid;
    if (st.hi <= st.lo) {
      st.phase = 1;
      st.gather_left = kNuclideReads;
    }
    return r;
  }

  // Gather phase: read index rows near the found grid point, then a tally
  // write ends the lookup.
  if (st.gather_left > 0) {
    --st.gather_left;
    const std::uint64_t point =
        (st.key + st.gather_left * 7919) % grid_points_;  // scattered rows
    return MemRef{5, index.base + point * kIndexRowBytes, AccessType::kRead};
  }
  st.phase = 0;
  st.lo = st.hi = 0;
  const std::uint64_t slot = st.rng.below((64ull << 20) / 8);
  return MemRef{3, private_base(core) + slot * 8, AccessType::kWrite};
}

}  // namespace ndp
