// Trace record/replay: capture any TraceSource's reference stream to a
// compact binary file and replay it later.
//
// Why this exists: the built-in generators are deterministic, but replay
// decouples experiments from generator code (compare simulator versions on
// bit-identical inputs), and FileTraceSource is the adapter for traces
// captured *outside* this repo (e.g. converted Pin/DynamoRIO traces of the
// paper's real benchmarks).
//
// File layout (little-endian):
//   header:  magic "NDPTRACE", u32 version, u32 cores, u64 refs_per_core,
//            u32 region_count
//   regions: {u64 base, u64 bytes, u8 prefault, u16 name_len, name bytes}*
//   records: cores interleaved round-robin: {u64 va, u32 gap, u8 type}*
#pragma once

#include <memory>
#include <string>

#include "workloads/workload.h"

namespace ndp {

/// Pull `refs_per_core` references per core from `source` and write them,
/// with the region table, to `path`. Returns false on I/O failure.
bool record_trace(TraceSource& source, unsigned cores,
                  std::uint64_t refs_per_core, const std::string& path);

/// A TraceSource replaying a recorded file. The stream loops when a core
/// exhausts its recorded references (so any instruction budget works).
class FileTraceSource final : public TraceSource {
 public:
  /// Throws std::runtime_error on malformed files.
  explicit FileTraceSource(const std::string& path);

  std::string name() const override { return name_; }
  std::string suite() const override { return "replay"; }
  std::uint64_t paper_dataset_bytes() const override { return dataset_bytes_; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override { return regions_; }
  MemRef next(unsigned core) override;

  unsigned recorded_cores() const { return static_cast<unsigned>(per_core_.size()); }
  std::uint64_t refs_per_core() const { return refs_per_core_; }

 private:
  std::string name_;
  std::uint64_t dataset_bytes_ = 0;
  std::uint64_t refs_per_core_ = 0;
  std::vector<VmRegion> regions_;
  std::vector<std::vector<MemRef>> per_core_;
  std::vector<std::size_t> cursor_;
};

}  // namespace ndp
