#include "workloads/dlrm.h"

#include <cassert>

namespace ndp {

DlrmWorkload::DlrmWorkload(const WorkloadParams& params)
    : params_(params),
      dataset_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(paper_dataset_bytes()) * params.scale)),
      rows_((dataset_bytes_ - kMlpBytes) / kRowBytes),
      row_dist_(rows_, 0.85),  // long-tail embedding row popularity
      cores_(params.num_cores) {
  assert(dataset_bytes_ > 2 * kMlpBytes);
  for (unsigned c = 0; c < params_.num_cores; ++c) {
    cores_[c].rng = Rng(splitmix64(params_.seed + 0xD12A * (c + 1)));
    // Stagger MLP cursors so threads stream different lines.
    cores_[c].mlp_pos = (kMlpBytes / params_.num_cores) * c;
  }
  layout_ = regions();
}

std::vector<VmRegion> DlrmWorkload::regions() const {
  const VirtAddr base = dataset_base();
  auto align = [](std::uint64_t b) {
    return (b + kPageSize - 1) & ~(kPageSize - 1);
  };
  const std::uint64_t emb_bytes = align(rows_ * kRowBytes);
  std::vector<VmRegion> rs;
  rs.push_back(VmRegion{"embeddings", base, emb_bytes, true});
  rs.push_back(VmRegion{"mlp", base + emb_bytes + kPageSize, kMlpBytes, true});
  // Per-thread output batches: preallocated and reused, so prefaulted.
  for (unsigned c = 0; c < params_.num_cores; ++c)
    rs.push_back(VmRegion{"output." + std::to_string(c), private_base(c),
                          64ull << 20, true});
  return rs;
}

MemRef DlrmWorkload::next(unsigned core) {
  CoreState& st = cores_[core];
  const std::vector<VmRegion>& rs = layout_;
  const VmRegion& emb = rs[0];
  const VmRegion& mlp = rs[1];

  if (st.lookups_left == 0 && st.mlp_left == 0 && st.out_left == 0) {
    st.lookups_left = kLookupsPerSample;
    st.mlp_left = kMlpReadsPerSample;
    st.out_left = kOutWritesPerSample;
  }

  if (st.lookups_left > 0) {
    --st.lookups_left;
    // Popularity rank -> scattered row id (embedding rows are not sorted by
    // access frequency).
    const std::uint64_t rank = row_dist_(st.rng);
    const std::uint64_t row = splitmix64(rank * 0xD1B54A32D192ED03ull) % rows_;
    return MemRef{3, emb.base + row * kRowBytes, AccessType::kRead};
  }
  if (st.mlp_left > 0) {
    --st.mlp_left;
    st.mlp_pos = (st.mlp_pos + kCacheLineSize) % kMlpBytes;
    return MemRef{2, mlp.base + st.mlp_pos, AccessType::kRead};
  }
  --st.out_left;
  st.out_pos = (st.out_pos + kCacheLineSize) % (64ull << 20);
  return MemRef{2, private_base(core) + st.out_pos, AccessType::kWrite};
}

}  // namespace ndp
