// Open workload registry: trace generators as named, self-describing
// plug-ins instead of a closed enum — the workload-side twin of
// core/mechanism_registry.h.
//
// A WorkloadDescriptor bundles what the experiment layer needs to run a
// workload: a TraceSource factory plus catalogue metadata (suite, paper
// dataset size, one-line summary). Descriptors live in the process-wide
// WorkloadRegistry and are resolved by case-insensitive name or alias, so
// experiments, configs, and the `ndpsim` CLI select workloads by string
// ("RND", "gups", ...) and new trace generators register from any
// translation unit — no workload-header edits, no recompiling call sites:
//
//   WorkloadDescriptor d;
//   d.name = "PtrChase";
//   d.suite = "custom";
//   d.make = [](const WorkloadParams& p) { return ...; };
//   register_workload(std::move(d));
//   ...
//   RunSpecBuilder().workload("ptrchase")...  // or ndpsim --workload=ptrchase
//
// The eleven built-ins (Table II) are registered by the registry itself on
// first use; the legacy `WorkloadKind` enum API in workloads/workload.h is a
// thin shim over their descriptors.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/workload.h"

namespace ndp {

struct WorkloadDescriptor {
  /// Canonical display name (e.g. "RND"). Lookup is case-insensitive.
  std::string name;
  /// Alternative lookup names (e.g. {"gups"} for RND). Suite names that map
  /// to exactly one workload are registered here for the built-ins.
  std::vector<std::string> aliases;
  /// Benchmark suite the workload comes from (e.g. "GraphBIG").
  std::string suite;
  /// One-line description, shown by `ndpsim --list-workloads`.
  std::string summary;
  /// Paper's Table II dataset size (0 for workloads outside the paper).
  std::uint64_t paper_bytes = 0;
  /// Build the trace generator. Must be callable concurrently from several
  /// threads (the sweep runner constructs cells in parallel): return a fresh
  /// TraceSource per call, no shared mutable state.
  std::function<std::unique_ptr<TraceSource>(const WorkloadParams&)> make;
  /// Set for the eleven built-ins; user registrations leave it false.
  bool builtin = false;
};

class WorkloadRegistry {
 public:
  /// The process-wide registry; built-ins are registered on first call.
  static WorkloadRegistry& instance();

  /// Register a workload. Returns false (and registers nothing) if the name
  /// or any alias collides with an existing entry, or if `desc` has no name
  /// or no factory.
  bool add(WorkloadDescriptor desc);

  /// Case-insensitive lookup by name or alias; nullptr if unknown.
  const WorkloadDescriptor* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Like find(), but throws std::out_of_range with a message listing the
  /// registered names when `name` is unknown.
  const WorkloadDescriptor& at(std::string_view name) const;

  /// Canonical names in registration order (built-ins first).
  std::vector<std::string> names() const;
  /// Canonical names of the built-in workloads only.
  std::vector<std::string> builtin_names() const;

  const std::deque<WorkloadDescriptor>& descriptors() const {
    return descriptors_;
  }

 private:
  WorkloadRegistry();

  /// Deque, not vector: find()/at() hand out pointers into this container,
  /// and registration must never invalidate them.
  std::deque<WorkloadDescriptor> descriptors_;
};

/// Convenience wrapper over WorkloadRegistry::instance().add().
bool register_workload(WorkloadDescriptor desc);

/// The registry descriptor backing a built-in enum value.
const WorkloadDescriptor& descriptor_of(WorkloadKind kind);

/// Resolve the (enum, name) selector pair used by RunSpec: the string wins
/// when non-empty, otherwise the enum. Throws std::out_of_range (listing
/// registered names) on an unknown name.
const WorkloadDescriptor& resolve_workload(WorkloadKind fallback,
                                           std::string_view name);

namespace detail {
/// Defined in workload.cpp next to the enum shims; called once by
/// WorkloadRegistry's constructor so built-ins can never be dead-stripped
/// or observed half-initialised, whatever the link order.
void register_builtin_workloads(WorkloadRegistry& registry);
}  // namespace detail

}  // namespace ndp
