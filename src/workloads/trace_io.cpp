#include "workloads/trace_io.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ndp {

namespace {
constexpr char kMagic[8] = {'N', 'D', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}
template <typename T>
bool read_pod(std::FILE* f, T& v) {
  return std::fread(&v, sizeof(T), 1, f) == 1;
}
}  // namespace

bool record_trace(TraceSource& source, unsigned cores,
                  std::uint64_t refs_per_core, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && write_pod(f, kVersion);
  ok = ok && write_pod(f, cores);
  ok = ok && write_pod(f, refs_per_core);
  const auto regions = source.regions();
  ok = ok && write_pod(f, static_cast<std::uint32_t>(regions.size()));
  for (const VmRegion& r : regions) {
    ok = ok && write_pod(f, r.base) && write_pod(f, r.bytes);
    ok = ok && write_pod(f, static_cast<std::uint8_t>(r.prefault));
    const auto len = static_cast<std::uint16_t>(r.name.size());
    ok = ok && write_pod(f, len);
    ok = ok && (len == 0 || std::fwrite(r.name.data(), 1, len, f) == len);
  }
  for (std::uint64_t i = 0; ok && i < refs_per_core; ++i) {
    for (unsigned c = 0; ok && c < cores; ++c) {
      const MemRef r = source.next(c);
      ok = write_pod(f, r.va) && write_pod(f, r.gap) &&
           write_pod(f, static_cast<std::uint8_t>(r.type));
    }
  }
  std::fclose(f);
  return ok;
}

FileTraceSource::FileTraceSource(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("trace file not found: " + path);
  auto fail = [&](const char* why) {
    std::fclose(f);
    throw std::runtime_error(std::string("bad trace file: ") + why);
  };
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    fail("magic");
  std::uint32_t version = 0, cores = 0, region_count = 0;
  if (!read_pod(f, version) || version != kVersion) fail("version");
  if (!read_pod(f, cores) || cores == 0 || cores > 1024) fail("core count");
  if (!read_pod(f, refs_per_core_) || refs_per_core_ == 0) fail("ref count");
  if (!read_pod(f, region_count) || region_count > 4096) fail("region count");
  for (std::uint32_t i = 0; i < region_count; ++i) {
    VmRegion r;
    std::uint8_t prefault = 0;
    std::uint16_t len = 0;
    if (!read_pod(f, r.base) || !read_pod(f, r.bytes) ||
        !read_pod(f, prefault) || !read_pod(f, len))
      fail("region header");
    r.prefault = prefault != 0;
    r.name.resize(len);
    if (len > 0 && std::fread(r.name.data(), 1, len, f) != len) fail("region name");
    dataset_bytes_ += r.bytes;
    regions_.push_back(std::move(r));
  }
  per_core_.assign(cores, {});
  cursor_.assign(cores, 0);
  for (auto& v : per_core_) v.reserve(refs_per_core_);
  for (std::uint64_t i = 0; i < refs_per_core_; ++i) {
    for (std::uint32_t c = 0; c < cores; ++c) {
      MemRef r;
      std::uint8_t type = 0;
      if (!read_pod(f, r.va) || !read_pod(f, r.gap) || !read_pod(f, type))
        fail("truncated records");
      r.type = type ? AccessType::kWrite : AccessType::kRead;
      per_core_[c].push_back(r);
    }
  }
  std::fclose(f);
  name_ = "replay:" + path;
}

MemRef FileTraceSource::next(unsigned core) {
  auto& v = per_core_.at(core % per_core_.size());
  auto& cur = cursor_[core % cursor_.size()];
  const MemRef r = v[cur];
  cur = (cur + 1) % v.size();
  return r;
}

}  // namespace ndp
