// Workload substrate: the 11 data-intensive applications of the paper's
// Table II, as deterministic synthetic address-trace generators.
//
// The paper traces real binaries (GraphBIG, XSBench, GUPS, DLRM,
// GenomicsBench) on Victima. We reproduce each kernel's *memory behaviour*:
// the data structures it walks, the mix of sequential and skewed-random
// references, its memory-instruction density, and its footprint — the
// properties that determine TLB/PWC/cache/DRAM behaviour and therefore
// everything the evaluation measures. See DESIGN.md ("Substitutions").
//
// Multi-core runs shard the workload: core c works on its own slice of the
// address space, so total footprint scales with the core count exactly as
// the paper's "workload scale ... increase[s]" discussion assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "translate/address_space.h"

namespace ndp {

enum class WorkloadKind {
  kBC,    ///< GraphBIG betweenness centrality
  kBFS,   ///< GraphBIG breadth-first search
  kCC,    ///< GraphBIG connected components
  kGC,    ///< GraphBIG graph coloring
  kPR,    ///< GraphBIG PageRank
  kTC,    ///< GraphBIG triangle counting
  kSP,    ///< GraphBIG shortest path
  kXS,    ///< XSBench particle simulation
  kRND,   ///< GUPS random access
  kDLRM,  ///< DLRM sparse-length sum
  kGEN,   ///< GenomicsBench k-mer counting
};

inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kBC,  WorkloadKind::kBFS,  WorkloadKind::kCC,
    WorkloadKind::kGC,  WorkloadKind::kPR,   WorkloadKind::kTC,
    WorkloadKind::kSP,  WorkloadKind::kXS,   WorkloadKind::kRND,
    WorkloadKind::kDLRM, WorkloadKind::kGEN};

struct WorkloadParams {
  unsigned num_cores = 1;
  /// Fraction of the paper's Table II dataset size the shared dataset gets.
  /// The default (3/4) keeps the largest dataset plus OS structures inside
  /// the 16 GB physical pool while staying far above every caching
  /// structure's reach (TLBs, PWCs, and the L1's ability to hold hot PTE
  /// lines), so miss behaviour matches the full-size runs (see DESIGN.md).
  double scale = 0.75;
  std::uint64_t seed = 42;
};

/// One memory reference of the trace.
struct MemRef {
  std::uint32_t gap = 0;  ///< non-memory instructions preceding this ref
  VirtAddr va = 0;
  AccessType type = AccessType::kRead;
};

/// A deterministic, per-core infinite stream of memory references.
///
/// The workload is one multi-threaded application: all cores share the
/// declared dataset regions and partition the *work* (staggered positions,
/// independent random streams), matching the paper's setup. Sharing is what
/// keeps every core's visible footprint at full dataset scale — the regime
/// in which PTEs are uncacheable and TLBs are overwhelmed — while total
/// physical memory stays bounded as cores scale.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  virtual std::string name() const = 0;
  virtual std::string suite() const = 0;
  /// Paper's Table II dataset size for this workload.
  virtual std::uint64_t paper_dataset_bytes() const = 0;
  /// Bytes of the shared (scaled) dataset in this run.
  virtual std::uint64_t dataset_bytes() const = 0;
  /// Shared + per-thread regions (install into the AddressSpace).
  virtual std::vector<VmRegion> regions() const = 0;
  /// Pages to pre-touch after prefaulting (demand regions whose hot part is
  /// already populated in steady state, e.g. an existing hash table).
  virtual std::vector<VirtAddr> warm_pages() const { return {}; }
  virtual MemRef next(unsigned core) = 0;
};

/// The immutable setup products of a trace source — the region layout the
/// engine installs and the steady-state-warm pages it pre-touches. Both are
/// pure functions of the workload's parameters, so a Session computes them
/// once per (workload, cores, scale, seed) key and shares them across every
/// sweep cell with that key (sim/session.h); the per-core reference streams
/// stay per-cell, in the TraceSource itself.
struct TraceMaterial {
  std::vector<VmRegion> regions;
  std::vector<VirtAddr> warm_pages;

  /// Collect `trace`'s material — exactly what Engine::prepare() would ask
  /// the trace for.
  static TraceMaterial of(const TraceSource& trace);

  /// Host bytes this material keeps resident (Session cache accounting).
  std::uint64_t resident_bytes() const {
    return regions.size() * sizeof(VmRegion) +
           warm_pages.size() * sizeof(VirtAddr);
  }
};

struct WorkloadInfo {
  WorkloadKind kind;
  const char* name;
  const char* suite;
  std::uint64_t paper_bytes;
};

const std::vector<WorkloadInfo>& all_workload_info();
const WorkloadInfo& info_of(WorkloadKind kind);
std::string to_string(WorkloadKind kind);

/// Resolve a workload by name ("PR", "RND", ...) or — when the suite maps to
/// exactly one workload — by suite ("gups" -> kRND, "xsbench" -> kXS).
/// Case-insensitive; nullopt when unknown or ambiguous. Only the built-ins
/// have enum values — resolve registered custom workloads through
/// WorkloadRegistry::find() (workloads/workload_registry.h) instead.
std::optional<WorkloadKind> workload_from_string(std::string_view name);

/// Shim over the open WorkloadRegistry (workloads/workload_registry.h):
/// builds the built-in generator registered under to_string(kind).
std::unique_ptr<TraceSource> make_workload(WorkloadKind kind,
                                           const WorkloadParams& params);

/// VA base of the shared dataset.
inline constexpr VirtAddr dataset_base() { return 0x100000000000ull; }

/// VA base of core c's private (per-thread) buffers — tallies, frontiers,
/// output batches. 8 GB apart.
inline constexpr VirtAddr private_base(unsigned core) {
  return 0x300000000000ull + static_cast<VirtAddr>(core) * 0x200000000ull;
}

}  // namespace ndp
