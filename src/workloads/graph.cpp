#include "workloads/graph.h"

#include <cassert>
#include <cmath>

namespace ndp {

namespace {
// Shard layout (offsets from the shard base). Region sizes derive from the
// vertex count V: offsets 8V, edges 8*20V (capacity), up to three 64 B/vertex
// property arrays (GraphBIG keeps per-vertex property structs, not packed
// scalars — this is what makes the random neighbor accesses span hundreds of
// MB and overwhelm TLB/PWC reach), frontier 8V (demand paged).
constexpr std::uint64_t kEdgeSlotsPerVertex = 20;
constexpr std::uint64_t kMaxDegree = 2048;
constexpr std::uint64_t kPropBytes = 64;  ///< per-vertex property struct

std::uint64_t vertices_for_bytes(std::uint64_t bytes) {
  // bytes = 8V (offsets) + 160V (edges) + 3*64V (properties) + 64V (out)
  //         + 8V (frontier)
  return bytes / (8 * (1 + kEdgeSlotsPerVertex + 1) + 4 * kPropBytes);
}
}  // namespace

GraphKernelSpec graph_spec(WorkloadKind kind) {
  GraphKernelSpec s;
  s.kind = kind;
  switch (kind) {
    case WorkloadKind::kBC:
      // Betweenness centrality: forward BFS + dependency accumulation;
      // touches dist + sigma + delta, writes often, keeps a frontier.
      s.write_neighbor_prob = 0.5;
      s.property_arrays = 3;
      s.use_frontier = true;
      s.gap_vertex = 5;
      s.gap_neighbor = 3;
      s.zipf_s = 0.55;
      break;
    case WorkloadKind::kBFS:
      // Frontier-driven traversal: visited + dist, one write per discovery.
      s.write_neighbor_prob = 0.35;
      s.property_arrays = 2;
      s.use_frontier = true;
      s.gap_vertex = 4;
      s.gap_neighbor = 2;
      s.zipf_s = 0.55;
      break;
    case WorkloadKind::kCC:
      // Edge-centric label propagation: read+write component labels.
      s.write_neighbor_prob = 0.6;
      s.property_arrays = 1;
      s.gap_vertex = 3;
      s.gap_neighbor = 2;
      s.zipf_s = 0.5;
      break;
    case WorkloadKind::kGC:
      // Coloring: reads neighbor colors, writes own color.
      s.write_neighbor_prob = 0.05;
      s.write_vertex = true;
      s.property_arrays = 1;
      s.gap_vertex = 6;
      s.gap_neighbor = 3;
      s.zipf_s = 0.55;
      break;
    case WorkloadKind::kPR:
      // PageRank: pure gather of neighbor ranks, one write per vertex.
      s.write_neighbor_prob = 0.0;
      s.write_vertex = true;
      s.property_arrays = 1;
      s.gap_vertex = 5;
      s.gap_neighbor = 2;
      s.zipf_s = 0.6;
      break;
    case WorkloadKind::kTC:
      // Triangle counting: adjacency intersections — two property arrays
      // (hash-set probes), compute heavy; writes its per-vertex count.
      s.write_neighbor_prob = 0.0;
      s.write_vertex = true;
      s.property_arrays = 2;
      s.gap_vertex = 8;
      s.gap_edge = 3;
      s.gap_neighbor = 5;
      s.zipf_s = 0.7;
      break;
    case WorkloadKind::kSP:
      // Shortest path (delta-stepping flavor): dist reads/writes + frontier.
      s.write_neighbor_prob = 0.4;
      s.property_arrays = 2;
      s.use_frontier = true;
      s.gap_vertex = 4;
      s.gap_neighbor = 3;
      s.zipf_s = 0.55;
      break;
    default:
      assert(false && "not a graph kernel");
  }
  return s;
}

GraphWorkload::GraphWorkload(const GraphKernelSpec& spec,
                             const WorkloadParams& params)
    : spec_(spec), params_(params),
      dataset_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(paper_dataset_bytes()) * params.scale)),
      num_vertices_(vertices_for_bytes(dataset_bytes_)),
      num_edges_(num_vertices_ * kEdgeSlotsPerVertex),
      neighbor_dist_(num_vertices_, spec.zipf_s),
      cores_(params.num_cores), layout_(regions()) {
  assert(num_vertices_ > 1024);
  for (unsigned c = 0; c < params_.num_cores; ++c) {
    cores_[c].rng = Rng(splitmix64(params_.seed + 0x9E37 * (c + 1)));
    // Threads partition the vertex range: staggered starting points keep
    // them on different offsets/edges pages while sharing the structure.
    cores_[c].v = (num_vertices_ / params_.num_cores) * c;
    cores_[c].epos = (cores_[c].v * 16) % num_edges_;
  }
}

std::string GraphWorkload::name() const { return ndp::to_string(spec_.kind); }

std::vector<VmRegion> GraphWorkload::regions() const {
  const VirtAddr base = dataset_base();
  const std::uint64_t v8 = num_vertices_ * 8;
  std::vector<VmRegion> rs;
  VirtAddr at = base;
  auto push = [&](const std::string& n, std::uint64_t bytes, bool prefault) {
    const std::uint64_t aligned = (bytes + kPageSize - 1) & ~(kPageSize - 1);
    rs.push_back(VmRegion{n, at, aligned, prefault});
    at += aligned + kPageSize;  // one guard page between regions
  };
  push("offsets", v8 + 8, true);
  push("edges", num_edges_ * 8, true);
  for (unsigned p = 0; p < spec_.property_arrays; ++p)
    push("prop" + std::to_string(p), num_vertices_ * kPropBytes, true);
  if (spec_.write_vertex) push("out", num_vertices_ * kPropBytes, true);
  if (spec_.use_frontier) {
    // Per-thread frontiers grow dynamically at runtime: demand paged.
    for (unsigned c = 0; c < params_.num_cores; ++c)
      rs.push_back(VmRegion{"frontier." + std::to_string(c), private_base(c),
                            (v8 + kPageSize - 1) & ~(kPageSize - 1), false});
  }
  return rs;
}

std::uint64_t GraphWorkload::degree_of(std::uint64_t v) const {
  // Truncated Pareto via hashing: deg = 5 * u^-0.7, mean ~16.7.
  const double u =
      (static_cast<double>(splitmix64(v ^ params_.seed) >> 11) + 1.0) *
      0x1.0p-53;
  const double d = 5.0 * std::pow(u, -0.7);
  const auto deg = static_cast<std::uint64_t>(d);
  return std::min<std::uint64_t>(std::max<std::uint64_t>(deg, 1), kMaxDegree);
}

void GraphWorkload::emit_vertex(unsigned core) {
  CoreState& st = cores_[core];
  const std::vector<VmRegion>& rs = layout_;
  std::size_t ri = 0;
  const VmRegion& r_off = rs[ri++];
  const VmRegion& r_edges = rs[ri++];
  const VmRegion* props[3] = {};
  for (unsigned p = 0; p < spec_.property_arrays; ++p) props[p] = &rs[ri++];
  const VmRegion* r_out = spec_.write_vertex ? &rs[ri++] : nullptr;
  const VmRegion* r_frontier =
      spec_.use_frontier ? &rs[ri + core] : nullptr;

  const std::uint64_t v = st.v;
  st.v = (st.v + 1) % num_vertices_;

  // offsets[v] and offsets[v+1] share a line almost always: one reference.
  st.pending.push_back(
      MemRef{spec_.gap_vertex, r_off.base + v * 8, AccessType::kRead});

  const std::uint64_t deg = degree_of(v);
  const std::uint64_t lines = (deg + 7) / 8;  // 8 edge ids per 64 B line
  for (std::uint64_t l = 0; l < lines; ++l) {
    const std::uint64_t e = (st.epos + l * 8) % num_edges_;
    st.pending.push_back(
        MemRef{spec_.gap_edge, r_edges.base + e * 8, AccessType::kRead});
  }
  st.epos = (st.epos + deg) % num_edges_;

  for (std::uint64_t k = 0; k < deg; ++k) {
    // Zipf gives the popularity *rank*; real CSR vertex ids are not sorted
    // by popularity, so scatter ranks over the id space. Hot vertices stay
    // hot (TLB-relevant) but land on uniformly spread pages (PWC-relevant).
    const std::uint64_t rank = neighbor_dist_(st.rng);
    const std::uint64_t u = splitmix64(rank * 0x9E3779B97F4A7C15ull) % num_vertices_;
    const VmRegion* prop = props[k % spec_.property_arrays];
    const bool write = st.rng.chance(spec_.write_neighbor_prob);
    st.pending.push_back(
        MemRef{spec_.gap_neighbor, prop->base + u * kPropBytes,
               write ? AccessType::kWrite : AccessType::kRead});
  }

  if (r_out)
    st.pending.push_back(
        MemRef{2, r_out->base + v * kPropBytes, AccessType::kWrite});

  if (r_frontier && st.rng.chance(0.3)) {
    st.pending.push_back(MemRef{2, r_frontier->base + st.frontier_pos * 8,
                                AccessType::kWrite});
    st.frontier_pos = (st.frontier_pos + 1) % num_vertices_;
  }
}

MemRef GraphWorkload::next(unsigned core) {
  CoreState& st = cores_[core];
  while (st.pending.empty()) emit_vertex(core);
  const MemRef r = st.pending.front();
  st.pending.pop_front();
  return r;
}

}  // namespace ndp
