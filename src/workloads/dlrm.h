// DLRM sparse-length-sum (DLRM): recommendation-model embedding gathers.
//
// Per sample: a batch of embedding-row gathers with Zipf-distributed row
// popularity (hot rows cache well, the long tail does not), a dense MLP
// pass over a small hot weight region (cache-friendly sequential reuse),
// and sequential writes to a demand-paged interaction/output buffer.
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace ndp {

class DlrmWorkload final : public TraceSource {
 public:
  explicit DlrmWorkload(const WorkloadParams& params);

  std::string name() const override { return "DLRM"; }
  std::string suite() const override { return "DLRM"; }
  std::uint64_t paper_dataset_bytes() const override { return 10ull << 30; }
  std::uint64_t dataset_bytes() const override { return dataset_bytes_; }
  std::vector<VmRegion> regions() const override;
  MemRef next(unsigned core) override;

 private:
  struct CoreState {
    Rng rng{1};
    unsigned lookups_left = 0;
    unsigned mlp_left = 0;
    unsigned out_left = 0;
    std::uint64_t mlp_pos = 0;
    std::uint64_t out_pos = 0;
  };

  static constexpr unsigned kLookupsPerSample = 48;
  static constexpr unsigned kMlpReadsPerSample = 24;
  static constexpr unsigned kOutWritesPerSample = 8;
  static constexpr std::uint64_t kRowBytes = 128;
  static constexpr std::uint64_t kMlpBytes = 32ull << 20;

  WorkloadParams params_;
  std::uint64_t dataset_bytes_;
  std::uint64_t rows_;
  Zipf row_dist_;
  std::vector<CoreState> cores_;
  std::vector<VmRegion> layout_;
};

}  // namespace ndp
