#include "workloads/gups.h"

#include <cassert>

namespace ndp {

GupsWorkload::GupsWorkload(const WorkloadParams& params)
    : params_(params),
      dataset_bytes_(static_cast<std::uint64_t>(
          static_cast<double>(paper_dataset_bytes()) * params.scale)),
      table_words_(dataset_bytes_ / 8), cores_(params.num_cores) {
  assert(table_words_ > 0);
  for (unsigned c = 0; c < params_.num_cores; ++c)
    cores_[c].rng = Rng(splitmix64(params_.seed + 0x6B5 * (c + 1)));
}

std::vector<VmRegion> GupsWorkload::regions() const {
  return {VmRegion{"table", dataset_base(),
                   (dataset_bytes_ + kPageSize - 1) & ~(kPageSize - 1), true}};
}

MemRef GupsWorkload::next(unsigned core) {
  CoreState& st = cores_[core];
  if (st.pending_write) {
    // The update half of the RMW: xor + store, one instruction apart.
    const VirtAddr va = st.pending_write;
    st.pending_write = 0;
    return MemRef{1, va, AccessType::kWrite};
  }
  const VirtAddr va =
      dataset_base() + st.rng.below(table_words_) * 8;
  st.pending_write = va;
  return MemRef{2, va, AccessType::kRead};
}

}  // namespace ndp
