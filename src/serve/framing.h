// Wire framing for the serve subsystem: newline-delimited JSON over plain
// file descriptors, plus the few POSIX socket helpers the daemon and client
// need. One request or response envelope = one '\n'-terminated line; the
// JSON itself never contains a raw newline (the JsonWriter escapes them),
// so framing is a byte scan, not a parse.
//
// Everything here is transport only — no JSON interpretation (that is
// serve/protocol.h) and no scheduling (serve/server.h). The helpers work
// on any fd: a TCP socket, a socketpair end (tests), or stdin/stdout
// (`ndpsim --serve --stdio`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ndp::serve {

/// Buffered '\n'-delimited reader over one fd. read() happens only when
/// the buffer has no complete line, and waits via poll() so callers get
/// idle timeouts and shutdown wake-ups without extra threads.
class LineReader {
 public:
  enum class Status {
    kLine,     ///< a complete line was produced
    kEof,      ///< peer closed; no (complete) line remains
    kTimeout,  ///< timeout_ms elapsed with no complete line
    kWake,     ///< wake_fd became readable (shutdown notification)
    kError,    ///< read/poll failed
  };

  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line (without the '\n') into `line`. Waits up to `timeout_ms`
  /// (-1 = forever). When `wake_fd` >= 0 and becomes readable while
  /// waiting, returns kWake — the serve layer passes its shutdown pipe
  /// here so connections notice a drain without polling flags.
  Status next(std::string& line, int timeout_ms = -1, int wake_fd = -1);

  int fd() const { return fd_; }

 private:
  bool take_line(std::string& line);

  int fd_;
  std::string buf_;
  bool eof_ = false;
};

/// Write `payload` + '\n' fully (handles partial writes and EINTR).
/// False on error (e.g. EPIPE after the peer vanished) — the caller drops
/// the connection; SIGPIPE is suppressed per-call.
bool write_line(int fd, std::string_view payload);

/// Listening TCP socket on `port` (0 = kernel-assigned; read it back with
/// local_port). SO_REUSEADDR so a restarted daemon rebinds immediately.
/// Throws std::runtime_error with errno text on failure.
int listen_tcp(std::uint16_t port, int backlog = 16);

/// The locally bound port of a socket (resolves port-0 binds).
std::uint16_t local_port(int fd);

/// Connect to host:port ("127.0.0.1", "::1", or a hostname). With
/// `timeout_ms` >= 0 the connect itself is bounded (non-blocking connect +
/// poll; the returned fd is blocking again) — the fleet coordinator uses
/// this so one unreachable worker can't stall dispatch. -1 = OS default.
/// Throws std::runtime_error with errno/resolver text on failure.
int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms = -1);

}  // namespace ndp::serve
