// The serve wire protocol: JSON-lines requests in, framed envelopes out.
//
// One request per line:
//
//   {"op":"run","id":"r1","config":{...RunConfig...},"jobs":2}
//   {"op":"status","id":"s1"}
//   {"op":"stats","id":"x1"}
//   {"op":"metrics","id":"m1"}
//   {"op":"cancel","id":"c1","target":"r1"}
//   {"op":"shutdown","id":"z1"}
//
// The "config" value is a full inline RunConfig document (the same schema
// as experiments/*.json — see sim/run_config.h), so a client submits an
// experiment grid exactly as it would check one in. Responses are one
// envelope per line, every one tagged with the request's "type" and "id":
//
//   {"type":"cell","id":"r1","index":3,"total":8,"result":{...}}   (streamed)
//   {"type":"done","id":"r1","cells":8,"envelope":{...}}           (final)
//   {"type":"error","id":"r1","error":"..."}
//
// The "envelope" value of "done" is byte-identical to what a batch
// `ndpsim --config` run of the same grid writes — a client that splices it
// out (common/json.h raw_member) gets the exact single-process artifact.
//
// Request parsing is strict like the config parser: unknown ops, unknown
// keys, and type mismatches throw std::invalid_argument with a message
// that names the problem; the server turns that into an error envelope
// instead of dying (tests/serve_test.cpp pins the survival).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/run_config.h"
#include "sim/session.h"
#include "sim/sweep_runner.h"

namespace ndp::serve {

struct Request {
  enum class Op { kRun, kStatus, kStats, kMetrics, kCancel, kShutdown };

  Op op = Op::kStatus;
  std::string id;      ///< echoed on every response envelope ("" allowed)
  RunConfig config;    ///< kRun: the parsed, validated experiment
  unsigned jobs = 0;   ///< kRun: worker threads (0 = server default)
  std::string target;  ///< kCancel: id of the run to cancel
};

/// Parse + validate one request line. Throws std::invalid_argument (or
/// JsonError for malformed JSON, with line:col) naming the problem —
/// unknown op, missing/mistyped members, unknown keys, and every
/// RunConfig-level validation error (unknown mechanism names etc.).
Request parse_request(std::string_view line);

/// Best-effort id extraction for error envelopes: when a request fails to
/// parse, the reply should still echo "id" if one can be recovered ("" if
/// not — never throws).
std::string request_id_of(std::string_view line);

// --- response envelopes (each returns one unframed JSON line) ---------------

std::string error_envelope(std::string_view id, std::string_view message);

/// One completed cell, streamed in completion order. `index` is the cell's
/// position in the run's result set; `total` the run's cell count.
std::string cell_envelope(std::string_view id, std::size_t index,
                          std::size_t total, const SweepCell& cell);

/// Terminal success envelope: embeds to_json(results) verbatim under
/// "envelope" — byte-identical to the batch document.
std::string done_envelope(std::string_view id, const SweepResults& results);

/// Terminal envelope of a cancelled run (`completed` of `total` cells ran;
/// their cell envelopes were already streamed).
std::string cancelled_envelope(std::string_view id, std::size_t completed,
                               std::size_t total);

std::string stats_envelope(std::string_view id, const SessionStats& stats);

/// Reply to the `metrics` op: the process-wide Prometheus text exposition
/// (obs/metrics.h) carried as one JSON string member ("text"). A scraper
/// sidecar (or `ndpsim --client --op=metrics`) unescapes "text" and has
/// exactly what a /metrics HTTP endpoint would serve.
std::string metrics_envelope(std::string_view id, std::string_view text);

/// Generic success acknowledgement (e.g. a cancel that found its target).
std::string ok_envelope(std::string_view id);

/// Daemon-level counters for the status reply.
struct ServerStatus {
  unsigned connections = 0;          ///< currently open connections
  unsigned active_runs = 0;          ///< run requests in flight
  std::uint64_t requests_accepted = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t cells_completed = 0;
  bool draining = false;
};

std::string status_envelope(std::string_view id, const ServerStatus& status);

/// Acknowledges a shutdown after the drain completed; the last envelope a
/// connection receives.
std::string bye_envelope(std::string_view id);

}  // namespace ndp::serve
