// The serve wire protocol: JSON-lines requests in, framed envelopes out.
//
// One request per line:
//
//   {"op":"run","id":"r1","config":{...RunConfig...},"jobs":2}
//   {"op":"run","id":"r1","config":{...},"shard_index":1,"shard_count":3}
//   {"op":"run","id":"r1","config":{...},"cache":false}
//   {"op":"status","id":"s1"}
//   {"op":"stats","id":"x1"}
//   {"op":"metrics","id":"m1"}
//   {"op":"cancel","id":"c1","target":"r1"}
//   {"op":"shutdown","id":"z1"}
//
// The "config" value is a full inline RunConfig document (the same schema
// as experiments/*.json — see sim/run_config.h), so a client submits an
// experiment grid exactly as it would check one in. Optional run members:
// "shard_index"/"shard_count" execute only that round-robin slice of the
// grid (the wire form of `--shard i/N`; the fleet coordinator drives
// workers with these, and the done envelope then embeds a shard document
// that merge_sharded_envelopes recombines); "cache":false asks a fleet
// coordinator to bypass its result cache (workers accept and ignore it, so
// one request line drives either tier). Responses are one envelope per
// line, every one tagged with the request's "type" and "id":
//
//   {"type":"cell","id":"r1","index":3,"total":8,"result":{...}}   (streamed)
//   {"type":"done","id":"r1","cells":8,"envelope":{...}}           (final)
//   {"type":"error","id":"r1","error":"..."}
//
// The "envelope" value of "done" is byte-identical to what a batch
// `ndpsim --config` run of the same grid writes — a client that splices it
// out (common/json.h raw_member) gets the exact single-process artifact.
//
// A connection may hold several run requests in flight at once: the daemon
// executes each run on its own thread and keeps reading, so envelope
// streams of concurrent runs interleave on the wire (every frame carries
// its request's "id" — demultiplex by it) and quick ops like `status`
// answer while a long run streams. This is what lets the fleet coordinator
// hold exactly one connection per worker.
//
// The `status` reply carries "uptime_ms", "in_flight_requests", and
// "protocol_version" (kProtocolVersion below) so a coordinator — or a
// human with netcat — can health-check a daemon meaningfully.
//
// Request parsing is strict like the config parser: unknown ops, unknown
// keys, and type mismatches throw std::invalid_argument with a message
// that names the problem; the server turns that into an error envelope
// instead of dying (tests/serve_test.cpp pins the survival).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/run_config.h"
#include "sim/session.h"
#include "sim/sweep_runner.h"

namespace ndp::serve {

/// Version of the wire protocol this build speaks, reported in `status`
/// replies. Bumped when ops or envelope fields change shape (additive
/// fields — like the ones version 2 added — don't break version-1 clients,
/// which skip unknown frame members by construction).
constexpr unsigned kProtocolVersion = 2;

struct Request {
  enum class Op { kRun, kStatus, kStats, kMetrics, kCancel, kShutdown };

  Op op = Op::kStatus;
  std::string id;      ///< echoed on every response envelope ("" allowed)
  RunConfig config;    ///< kRun: the parsed, validated experiment
  unsigned jobs = 0;   ///< kRun: worker threads (0 = server default)
  /// kRun: execute only shard `shard_index` of the grid split
  /// `shard_count` ways (SweepOptions round-robin semantics). count 1 =
  /// the whole grid.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// kRun: false asks a fleet coordinator to bypass its result cache for
  /// this request (no lookup, no store). Workers ignore it.
  bool use_cache = true;
  std::string target;  ///< kCancel: id of the run to cancel
};

/// Parse + validate one request line. Throws std::invalid_argument (or
/// JsonError for malformed JSON, with line:col) naming the problem —
/// unknown op, missing/mistyped members, unknown keys, and every
/// RunConfig-level validation error (unknown mechanism names etc.).
Request parse_request(std::string_view line);

/// Best-effort id extraction for error envelopes: when a request fails to
/// parse, the reply should still echo "id" if one can be recovered ("" if
/// not — never throws).
std::string request_id_of(std::string_view line);

// --- response envelopes (each returns one unframed JSON line) ---------------

std::string error_envelope(std::string_view id, std::string_view message);

/// One completed cell, streamed in completion order. `index` is the cell's
/// position in the run's result set; `total` the run's cell count.
std::string cell_envelope(std::string_view id, std::size_t index,
                          std::size_t total, const SweepCell& cell);

/// Terminal success envelope: embeds to_json(results) verbatim under
/// "envelope" — byte-identical to the batch document.
std::string done_envelope(std::string_view id, const SweepResults& results);

/// done_envelope over an already-serialized result document (raw splice,
/// never re-encoded): the fleet coordinator forwards merged — or cached —
/// envelopes through this, so the bytes a worker or the merge produced are
/// the bytes the client receives.
std::string done_envelope_raw(std::string_view id, std::size_t cells,
                              std::string_view envelope_json);

/// Raw per-cell frame for relays that hold the cell's result document as
/// text (the coordinator re-frames worker cell streams with the global
/// index through this).
std::string cell_envelope_raw(std::string_view id, std::size_t index,
                              std::size_t total, std::string_view result_json);

/// Terminal envelope of a cancelled run (`completed` of `total` cells ran;
/// their cell envelopes were already streamed).
std::string cancelled_envelope(std::string_view id, std::size_t completed,
                               std::size_t total);

std::string stats_envelope(std::string_view id, const SessionStats& stats);

/// Reply to the `metrics` op: the process-wide Prometheus text exposition
/// (obs/metrics.h) carried as one JSON string member ("text"). A scraper
/// sidecar (or `ndpsim --client --op=metrics`) unescapes "text" and has
/// exactly what a /metrics HTTP endpoint would serve.
std::string metrics_envelope(std::string_view id, std::string_view text);

/// Generic success acknowledgement (e.g. a cancel that found its target).
std::string ok_envelope(std::string_view id);

/// Daemon-level counters for the status reply.
struct ServerStatus {
  unsigned connections = 0;          ///< currently open connections
  unsigned active_runs = 0;          ///< run requests in flight
  /// Requests of any op currently being processed (runs included) — the
  /// in-flight load figure a coordinator health-checks against.
  unsigned in_flight_requests = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t cells_completed = 0;
  std::uint64_t uptime_ms = 0;  ///< wall ms since the Server was constructed
  bool draining = false;
};

std::string status_envelope(std::string_view id, const ServerStatus& status);

/// Acknowledges a shutdown after the drain completed; the last envelope a
/// connection receives.
std::string bye_envelope(std::string_view id);

}  // namespace ndp::serve
