#include "serve/server.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/framing.h"
#include "sim/sweep_runner.h"

namespace ndp::serve {

namespace {

const char* op_name(Request::Op op) {
  switch (op) {
    case Request::Op::kRun: return "run";
    case Request::Op::kStatus: return "status";
    case Request::Op::kStats: return "stats";
    case Request::Op::kMetrics: return "metrics";
    case Request::Op::kCancel: return "cancel";
    case Request::Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Daemon connection metrics (obs/metrics.h). Fixed handles, resolved once.
struct ServeMetrics {
  obs::Gauge& active_connections = obs::Metrics::instance().gauge(
      "ndpsim_active_connections", "Currently open serve connections");
  obs::Counter& connections = obs::Metrics::instance().counter(
      "ndpsim_connections_total", "Connections served (TCP accepts + streams)");
  obs::Counter& refused = obs::Metrics::instance().counter(
      "ndpsim_connections_refused_total",
      "Connections refused (drain in progress or connection limit)");

  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
};

/// Per-op/outcome request accounting. Label children are found-or-created
/// under the registry mutex per call — request dispatch is not a hot path
/// (per-cell work is, and uses fixed handles in the sweep runner).
void record_request(const char* op, const char* outcome, double seconds) {
  std::string labels = "op=\"";
  labels += op;
  labels += "\",outcome=\"";
  labels += outcome;
  labels += '"';
  obs::Metrics::instance()
      .counter("ndpsim_requests_total",
               "Requests dispatched, by op and outcome", labels)
      .inc();
  std::string op_label = "op=\"";
  op_label += op;
  op_label += '"';
  obs::Metrics::instance()
      .histogram("ndpsim_request_latency_seconds",
                 "Wall seconds from request line to terminal envelope",
                 op_label)
      .observe(seconds);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Cells of the full `total`-cell grid that land in shard `index` of
/// `count` under round-robin slicing — the denominator for this request's
/// cell stream and cancelled envelope.
std::size_t shard_cell_count(std::size_t total, unsigned index,
                             unsigned count) {
  if (total <= index) return 0;
  return (total - index + count - 1) / count;
}

}  // namespace

Server::Server(ServeOptions opts)
    : opts_(opts),
      session_(opts.session),
      start_time_(std::chrono::steady_clock::now()) {
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("serve: pipe failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
}

Server::~Server() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

std::uint16_t Server::start() {
  listen_fd_ = listen_tcp(opts_.port);
  const std::uint16_t port = local_port(listen_fd_);
  obs::log(obs::LogLevel::kInfo, "serve.listen")
      .kv("port", port)
      .kv("max_connections", opts_.max_connections);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port;
}

void Server::request_shutdown() {
  // One byte, never drained: POLLIN stays asserted on wake_rd_ forever, so
  // the accept loop and every connection's LineReader all see it, now and
  // on every later poll. write() is async-signal-safe — SIGINT handlers
  // call this directly.
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads register themselves before wait() can observe them
  // only if the accept loop ran; snapshot under the lock and join outside.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

ServerStatus Server::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStatus s;
  s.connections = connections_;
  s.active_runs = active_runs_;
  s.in_flight_requests = in_flight_requests_.load(std::memory_order_relaxed);
  s.requests_accepted = requests_accepted_;
  s.runs_completed = runs_completed_;
  s.cells_completed = cells_completed_;
  s.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  s.draining = draining_;
  return s;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      obs::log(obs::LogLevel::kInfo, "serve.drain").kv("reason", "shutdown");
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      obs::log(obs::LogLevel::kWarn, "serve.accept.error")
          .kv("errno", errno);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || connections_ >= opts_.max_connections) {
        const char* why = draining_ ? "server is shutting down"
                                    : "connection limit reached";
        ServeMetrics::get().refused.inc();
        obs::log(obs::LogLevel::kWarn, "serve.refuse")
            .kv("reason", why)
            .kv("connections", connections_);
        write_line(conn, error_envelope("", why));
        ::close(conn);
        continue;
      }
      ++connections_;
      const std::uint64_t conn_id =
          next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      obs::log(obs::LogLevel::kInfo, "serve.accept")
          .kv("conn", conn_id)
          .kv("fd", conn)
          .kv("connections", connections_);
      conn_threads_.emplace_back([this, conn, conn_id] {
        handle_connection(conn, conn, /*own_fds=*/true, conn_id);
      });
    }
  }
}

void Server::serve_stream(int in_fd, int out_fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
  }
  const std::uint64_t conn_id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  obs::log(obs::LogLevel::kInfo, "serve.stream")
      .kv("conn", conn_id)
      .kv("in_fd", in_fd)
      .kv("out_fd", out_fd);
  handle_connection(in_fd, out_fd, /*own_fds=*/false, conn_id);
  // The fds belong to the caller, but a stream peer still deserves a clean
  // EOF: half-close sockets (socketpair tests); ENOTSOCK for stdio pipes
  // is fine — the caller exiting closes those.
  ::shutdown(out_fd, SHUT_WR);
}

void Server::handle_connection(int in_fd, int out_fd, bool own_fds,
                               std::uint64_t conn_id) {
  ServeMetrics::get().connections.inc();
  ServeMetrics::get().active_connections.add(1);
  ConnCtx ctx;
  ctx.out_fd = out_fd;
  ctx.conn_id = conn_id;
  LineReader reader(in_fd);
  std::string line;
  bool open = true;
  const char* close_reason = "eof";
  while (open) {
    const LineReader::Status st =
        reader.next(line, opts_.idle_timeout_ms, wake_rd_);
    switch (st) {
      case LineReader::Status::kLine:
        open = dispatch(line, ctx);
        if (!open) close_reason = "bye";
        break;
      case LineReader::Status::kTimeout: {
        // A run in flight on this connection means it isn't idle — the
        // client is waiting on envelopes, not the other way round.
        bool busy;
        {
          std::lock_guard<std::mutex> lock(ctx.mu);
          busy = ctx.inflight_runs > 0;
        }
        if (busy) break;
        obs::log(obs::LogLevel::kWarn, "serve.idle_timeout")
            .kv("conn", conn_id)
            .kv("timeout_ms", opts_.idle_timeout_ms);
        ctx.send(error_envelope("", "idle timeout, closing"));
        open = false;
        close_reason = "idle_timeout";
        break;
      }
      case LineReader::Status::kWake:
        // Drain in progress: stop reading. Runs already in flight on this
        // connection finish on their own threads and are awaited below.
        open = false;
        close_reason = "drain";
        break;
      case LineReader::Status::kEof:
        open = false;
        close_reason = "eof";
        break;
      case LineReader::Status::kError:
        obs::log(obs::LogLevel::kWarn, "serve.read.error")
            .kv("conn", conn_id)
            .kv("errno", errno);
        open = false;
        close_reason = "read_error";
        break;
    }
  }
  // Run threads hold ctx (and stream to out_fd): wait them out before the
  // fd can be closed or the stack frame unwound.
  {
    std::unique_lock<std::mutex> lock(ctx.mu);
    ctx.cv.wait(lock, [&ctx] { return ctx.inflight_runs == 0; });
  }
  if (own_fds) ::close(in_fd);  // in_fd == out_fd for TCP connections
  obs::log(obs::LogLevel::kInfo, "serve.close")
      .kv("conn", conn_id)
      .kv("reason", close_reason);
  ServeMetrics::get().active_connections.add(-1);
  std::lock_guard<std::mutex> lock(mu_);
  --connections_;
}

bool Server::dispatch(const std::string& line, ConnCtx& conn) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t conn_id = conn.conn_id;
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // The daemon's first duty: a bad request is that request's problem.
    // Reply with one error envelope (echoing the id when recoverable) and
    // keep serving — and leave a log event carrying the connection and
    // request ids, the daemon-side join key for the client's error line.
    const std::string id = request_id_of(line);
    obs::log(obs::LogLevel::kWarn, "serve.request.malformed")
        .kv("conn", conn_id)
        .kv("req", id)
        .kv("error", e.what());
    conn.send(error_envelope(id, e.what()));
    record_request("invalid", "error", seconds_since(start));
    return true;
  }
  const char* op = op_name(req.op);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_accepted_;
    if (draining_ && req.op != Request::Op::kShutdown &&
        req.op != Request::Op::kStatus) {
      obs::log(obs::LogLevel::kWarn, "serve.request.refused")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("op", op)
          .kv("reason", "draining");
      conn.send(error_envelope(req.id, "server is shutting down"));
      record_request(op, "refused", seconds_since(start));
      return true;
    }
  }
  obs::log(obs::LogLevel::kDebug, "serve.request")
      .kv("conn", conn_id)
      .kv("req", req.id)
      .kv("op", op);
  in_flight_requests_.fetch_add(1, std::memory_order_relaxed);

  if (req.op == Request::Op::kRun) {
    // Multiplex: the run executes on its own thread while this reader
    // keeps consuming lines, so several runs (and quick ops) interleave on
    // one connection. The thread detaches, but handle_connection waits for
    // inflight_runs == 0 before unwinding, which bounds its lifetime.
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      ++conn.inflight_runs;
    }
    std::thread([this, &conn, req = std::move(req), start, op] {
      obs::ScopedTraceSpan span(std::string("req:") + op, "request");
      run_request(req, conn, start);
      in_flight_requests_.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn.mu);
      --conn.inflight_runs;
      // Notify under the lock: the waiter owns conn's stack frame and may
      // destroy it the moment we release mu.
      conn.cv.notify_all();
    }).detach();
    return true;
  }

  obs::ScopedTraceSpan span(std::string("req:") + op, "request");
  const char* outcome = "ok";
  bool keep_open = true;
  switch (req.op) {
    case Request::Op::kRun:
      break;  // handled above
    case Request::Op::kStatus:
      conn.send(status_envelope(req.id, status()));
      break;
    case Request::Op::kStats:
      conn.send(stats_envelope(req.id, session_.stats()));
      break;
    case Request::Op::kMetrics:
      // Rendered before this request is itself recorded (below) — a scrape
      // reflects everything that finished before it, deterministically.
      conn.send(metrics_envelope(req.id,
                                 obs::Metrics::instance().prometheus_text()));
      break;
    case Request::Op::kCancel: {
      std::shared_ptr<ActiveRun> target;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = runs_.find(req.target);
        if (it != runs_.end()) target = it->second;
      }
      if (!target) {
        obs::log(obs::LogLevel::kWarn, "serve.cancel.miss")
            .kv("conn", conn_id)
            .kv("req", req.id)
            .kv("target", req.target);
        conn.send(error_envelope(req.id, "no active run with id \"" +
                                             req.target + '"'));
        outcome = "error";
        break;
      }
      target->cancel.store(true);
      obs::log(obs::LogLevel::kInfo, "serve.cancel")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("target", req.target);
      conn.send(ok_envelope(req.id));
      break;
    }
    case Request::Op::kShutdown: {
      obs::log(obs::LogLevel::kInfo, "serve.shutdown")
          .kv("conn", conn_id)
          .kv("req", req.id);
      request_shutdown();
      // Drain: every in-flight run finishes and streams its envelopes on
      // its own connection; only then acknowledge and let the caller stop
      // waiting. Runs multiplexed on *this* connection execute on their
      // own threads, so they drain like any other — no self-deadlock.
      std::unique_lock<std::mutex> lock(mu_);
      draining_ = true;
      drain_cv_.wait(lock, [this] { return active_runs_ == 0; });
      lock.unlock();
      obs::log(obs::LogLevel::kInfo, "serve.drained")
          .kv("conn", conn_id)
          .kv("req", req.id);
      conn.send(bye_envelope(req.id));
      keep_open = false;
      break;
    }
  }
  record_request(op, outcome, seconds_since(start));
  in_flight_requests_.fetch_sub(1, std::memory_order_relaxed);
  return keep_open;
}

void Server::run_request(const Request& req, ConnCtx& conn,
                         std::chrono::steady_clock::time_point start) {
  // Metrics are recorded before each terminal envelope goes out: the
  // envelope is the client's signal that the request finished, so a
  // metrics scrape it triggers must already include this run.
  const auto record = [&](const char* outcome) {
    record_request("run", outcome, seconds_since(start));
  };
  const std::uint64_t conn_id = conn.conn_id;
  auto active = std::make_shared<ActiveRun>();
  bool registered = false;
  if (!req.id.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!runs_.emplace(req.id, active).second) {
      obs::log(obs::LogLevel::kWarn, "serve.run.duplicate")
          .kv("conn", conn_id)
          .kv("req", req.id);
      record("error");
      conn.send(error_envelope(req.id, "a run with id \"" + req.id +
                                           "\" is already active"));
      return;
    }
    registered = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_runs_;
  }

  std::size_t total = 0;
  std::size_t completed = 0;
  bool write_failed = false;
  try {
    // The denominator this request streams against: its shard's cell
    // count, which is the whole grid when shard_count is 1.
    total = shard_cell_count(req.config.expand().size(), req.shard_index,
                             req.shard_count);
    obs::log(obs::LogLevel::kInfo, "serve.run.start")
        .kv("conn", conn_id)
        .kv("req", req.id)
        .kv("cells", total)
        .kv("shard_index", req.shard_index)
        .kv("shard_count", req.shard_count)
        .kv("jobs", req.jobs ? req.jobs : opts_.jobs);

    SweepOptions opts;
    opts.jobs = req.jobs ? req.jobs : opts_.jobs;
    opts.session = &session_;
    opts.cancel = &active->cancel;
    opts.shard_index = req.shard_index;
    opts.shard_count = req.shard_count;
    // Stream each cell the moment it completes (the callback is serialized
    // by run_sweep's lock, so lines never interleave). A dead client just
    // turns writes into no-ops; the run finishes for the Session's benefit.
    opts.cell_done = [&](std::size_t index, const SweepCell& cell) {
      ++completed;
      if (!conn.send(cell_envelope(req.id, index, total, cell)))
        write_failed = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++cells_completed_;
    };

    // Optional per-request watchdog: flips the run's cancel flag when the
    // deadline passes; the pool stops claiming cells and the client gets a
    // "cancelled" terminal envelope below.
    std::thread watchdog;
    std::mutex wmu;
    std::condition_variable wcv;
    bool run_done = false;
    if (opts_.request_timeout_ms > 0) {
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(wmu);
        if (!wcv.wait_for(lock,
                          std::chrono::milliseconds(opts_.request_timeout_ms),
                          [&] { return run_done; }))
          active->cancel.store(true);
      });
    }

    SweepResults results = run_sweep(req.config, opts);

    if (watchdog.joinable()) {
      {
        std::lock_guard<std::mutex> lock(wmu);
        run_done = true;
      }
      wcv.notify_all();
      watchdog.join();
    }

    if (completed < total) {
      obs::log(obs::LogLevel::kInfo, "serve.run.cancelled")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("completed", completed)
          .kv("total", total);
      record("cancelled");
      conn.send(cancelled_envelope(req.id, completed, total));
    } else if (!write_failed) {
      obs::log(obs::LogLevel::kInfo, "serve.run.done")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("cells", total);
      record("ok");
      conn.send(done_envelope(req.id, results));
    } else {
      obs::log(obs::LogLevel::kWarn, "serve.run.client_gone")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("cells", total);
      record("ok");
    }
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kWarn, "serve.run.error")
        .kv("conn", conn_id)
        .kv("req", req.id)
        .kv("error", e.what());
    record("error");
    conn.send(error_envelope(req.id, e.what()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (registered) runs_.erase(req.id);
  --active_runs_;
  ++runs_completed_;
  drain_cv_.notify_all();
}

}  // namespace ndp::serve
