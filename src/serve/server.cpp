#include "serve/server.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/framing.h"
#include "sim/sweep_runner.h"

namespace ndp::serve {

namespace {

const char* op_name(Request::Op op) {
  switch (op) {
    case Request::Op::kRun: return "run";
    case Request::Op::kStatus: return "status";
    case Request::Op::kStats: return "stats";
    case Request::Op::kMetrics: return "metrics";
    case Request::Op::kCancel: return "cancel";
    case Request::Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Daemon connection metrics (obs/metrics.h). Fixed handles, resolved once.
struct ServeMetrics {
  obs::Gauge& active_connections = obs::Metrics::instance().gauge(
      "ndpsim_active_connections", "Currently open serve connections");
  obs::Counter& connections = obs::Metrics::instance().counter(
      "ndpsim_connections_total", "Connections served (TCP accepts + streams)");
  obs::Counter& refused = obs::Metrics::instance().counter(
      "ndpsim_connections_refused_total",
      "Connections refused (drain in progress or connection limit)");

  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
};

/// Per-op/outcome request accounting. Label children are found-or-created
/// under the registry mutex per call — request dispatch is not a hot path
/// (per-cell work is, and uses fixed handles in the sweep runner).
void record_request(const char* op, const char* outcome, double seconds) {
  std::string labels = "op=\"";
  labels += op;
  labels += "\",outcome=\"";
  labels += outcome;
  labels += '"';
  obs::Metrics::instance()
      .counter("ndpsim_requests_total",
               "Requests dispatched, by op and outcome", labels)
      .inc();
  std::string op_label = "op=\"";
  op_label += op;
  op_label += '"';
  obs::Metrics::instance()
      .histogram("ndpsim_request_latency_seconds",
                 "Wall seconds from request line to terminal envelope",
                 op_label)
      .observe(seconds);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Server::Server(ServeOptions opts)
    : opts_(opts), session_(opts.session) {
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("serve: pipe failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
}

Server::~Server() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

std::uint16_t Server::start() {
  listen_fd_ = listen_tcp(opts_.port);
  const std::uint16_t port = local_port(listen_fd_);
  obs::log(obs::LogLevel::kInfo, "serve.listen")
      .kv("port", port)
      .kv("max_connections", opts_.max_connections);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port;
}

void Server::request_shutdown() {
  // One byte, never drained: POLLIN stays asserted on wake_rd_ forever, so
  // the accept loop and every connection's LineReader all see it, now and
  // on every later poll. write() is async-signal-safe — SIGINT handlers
  // call this directly.
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads register themselves before wait() can observe them
  // only if the accept loop ran; snapshot under the lock and join outside.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

ServerStatus Server::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStatus s;
  s.connections = connections_;
  s.active_runs = active_runs_;
  s.requests_accepted = requests_accepted_;
  s.runs_completed = runs_completed_;
  s.cells_completed = cells_completed_;
  s.draining = draining_;
  return s;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      obs::log(obs::LogLevel::kInfo, "serve.drain").kv("reason", "shutdown");
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      obs::log(obs::LogLevel::kWarn, "serve.accept.error")
          .kv("errno", errno);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || connections_ >= opts_.max_connections) {
        const char* why = draining_ ? "server is shutting down"
                                    : "connection limit reached";
        ServeMetrics::get().refused.inc();
        obs::log(obs::LogLevel::kWarn, "serve.refuse")
            .kv("reason", why)
            .kv("connections", connections_);
        write_line(conn, error_envelope("", why));
        ::close(conn);
        continue;
      }
      ++connections_;
      const std::uint64_t conn_id =
          next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      obs::log(obs::LogLevel::kInfo, "serve.accept")
          .kv("conn", conn_id)
          .kv("fd", conn)
          .kv("connections", connections_);
      conn_threads_.emplace_back([this, conn, conn_id] {
        handle_connection(conn, conn, /*own_fds=*/true, conn_id);
      });
    }
  }
}

void Server::serve_stream(int in_fd, int out_fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
  }
  const std::uint64_t conn_id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  obs::log(obs::LogLevel::kInfo, "serve.stream")
      .kv("conn", conn_id)
      .kv("in_fd", in_fd)
      .kv("out_fd", out_fd);
  handle_connection(in_fd, out_fd, /*own_fds=*/false, conn_id);
  // The fds belong to the caller, but a stream peer still deserves a clean
  // EOF: half-close sockets (socketpair tests); ENOTSOCK for stdio pipes
  // is fine — the caller exiting closes those.
  ::shutdown(out_fd, SHUT_WR);
}

void Server::handle_connection(int in_fd, int out_fd, bool own_fds,
                               std::uint64_t conn_id) {
  ServeMetrics::get().connections.inc();
  ServeMetrics::get().active_connections.add(1);
  LineReader reader(in_fd);
  std::string line;
  bool open = true;
  const char* close_reason = "eof";
  while (open) {
    const LineReader::Status st =
        reader.next(line, opts_.idle_timeout_ms, wake_rd_);
    switch (st) {
      case LineReader::Status::kLine:
        open = dispatch(line, out_fd, conn_id);
        if (!open) close_reason = "bye";
        break;
      case LineReader::Status::kTimeout:
        obs::log(obs::LogLevel::kWarn, "serve.idle_timeout")
            .kv("conn", conn_id)
            .kv("timeout_ms", opts_.idle_timeout_ms);
        write_line(out_fd, error_envelope("", "idle timeout, closing"));
        open = false;
        close_reason = "idle_timeout";
        break;
      case LineReader::Status::kWake:
        // Drain in progress: this connection had no request in flight (one
        // being processed would hold us inside dispatch), so just close.
        open = false;
        close_reason = "drain";
        break;
      case LineReader::Status::kEof:
        open = false;
        close_reason = "eof";
        break;
      case LineReader::Status::kError:
        obs::log(obs::LogLevel::kWarn, "serve.read.error")
            .kv("conn", conn_id)
            .kv("errno", errno);
        open = false;
        close_reason = "read_error";
        break;
    }
  }
  if (own_fds) ::close(in_fd);  // in_fd == out_fd for TCP connections
  obs::log(obs::LogLevel::kInfo, "serve.close")
      .kv("conn", conn_id)
      .kv("reason", close_reason);
  ServeMetrics::get().active_connections.add(-1);
  std::lock_guard<std::mutex> lock(mu_);
  --connections_;
}

bool Server::dispatch(const std::string& line, int out_fd,
                      std::uint64_t conn_id) {
  const auto start = std::chrono::steady_clock::now();
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // The daemon's first duty: a bad request is that request's problem.
    // Reply with one error envelope (echoing the id when recoverable) and
    // keep serving — and leave a log event carrying the connection and
    // request ids, the daemon-side join key for the client's error line.
    const std::string id = request_id_of(line);
    obs::log(obs::LogLevel::kWarn, "serve.request.malformed")
        .kv("conn", conn_id)
        .kv("req", id)
        .kv("error", e.what());
    write_line(out_fd, error_envelope(id, e.what()));
    record_request("invalid", "error", seconds_since(start));
    return true;
  }
  const char* op = op_name(req.op);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_accepted_;
    if (draining_ && req.op != Request::Op::kShutdown &&
        req.op != Request::Op::kStatus) {
      obs::log(obs::LogLevel::kWarn, "serve.request.refused")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("op", op)
          .kv("reason", "draining");
      write_line(out_fd, error_envelope(req.id, "server is shutting down"));
      record_request(op, "refused", seconds_since(start));
      return true;
    }
  }
  obs::log(obs::LogLevel::kDebug, "serve.request")
      .kv("conn", conn_id)
      .kv("req", req.id)
      .kv("op", op);
  obs::ScopedTraceSpan span(std::string("req:") + op, "request");

  const char* outcome = "ok";
  bool keep_open = true;
  switch (req.op) {
    case Request::Op::kRun:
      outcome = run_request(req, out_fd, conn_id);
      break;
    case Request::Op::kStatus:
      write_line(out_fd, status_envelope(req.id, status()));
      break;
    case Request::Op::kStats:
      write_line(out_fd, stats_envelope(req.id, session_.stats()));
      break;
    case Request::Op::kMetrics:
      // Rendered before this request is itself recorded (below) — a scrape
      // reflects everything that finished before it, deterministically.
      write_line(out_fd,
                 metrics_envelope(req.id,
                                  obs::Metrics::instance().prometheus_text()));
      break;
    case Request::Op::kCancel: {
      std::shared_ptr<ActiveRun> target;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = runs_.find(req.target);
        if (it != runs_.end()) target = it->second;
      }
      if (!target) {
        obs::log(obs::LogLevel::kWarn, "serve.cancel.miss")
            .kv("conn", conn_id)
            .kv("req", req.id)
            .kv("target", req.target);
        write_line(out_fd, error_envelope(
                               req.id, "no active run with id \"" +
                                           req.target + '"'));
        outcome = "error";
        break;
      }
      target->cancel.store(true);
      obs::log(obs::LogLevel::kInfo, "serve.cancel")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("target", req.target);
      write_line(out_fd, ok_envelope(req.id));
      break;
    }
    case Request::Op::kShutdown: {
      obs::log(obs::LogLevel::kInfo, "serve.shutdown")
          .kv("conn", conn_id)
          .kv("req", req.id);
      request_shutdown();
      // Drain: every in-flight run finishes and streams its envelopes on
      // its own connection; only then acknowledge and let the caller stop
      // waiting. (This connection processes requests serially, so it has
      // no run of its own in flight.)
      std::unique_lock<std::mutex> lock(mu_);
      draining_ = true;
      drain_cv_.wait(lock, [this] { return active_runs_ == 0; });
      lock.unlock();
      obs::log(obs::LogLevel::kInfo, "serve.drained")
          .kv("conn", conn_id)
          .kv("req", req.id);
      write_line(out_fd, bye_envelope(req.id));
      keep_open = false;
      break;
    }
  }
  record_request(op, outcome, seconds_since(start));
  return keep_open;
}

const char* Server::run_request(const Request& req, int out_fd,
                                std::uint64_t conn_id) {
  auto active = std::make_shared<ActiveRun>();
  bool registered = false;
  if (!req.id.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!runs_.emplace(req.id, active).second) {
      obs::log(obs::LogLevel::kWarn, "serve.run.duplicate")
          .kv("conn", conn_id)
          .kv("req", req.id);
      write_line(out_fd, error_envelope(
                             req.id, "a run with id \"" + req.id +
                                         "\" is already active"));
      return "error";
    }
    registered = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_runs_;
  }

  std::size_t total = 0;
  std::size_t completed = 0;
  bool write_failed = false;
  const char* outcome = "ok";
  try {
    total = req.config.expand().size();
    obs::log(obs::LogLevel::kInfo, "serve.run.start")
        .kv("conn", conn_id)
        .kv("req", req.id)
        .kv("cells", total)
        .kv("jobs", req.jobs ? req.jobs : opts_.jobs);

    SweepOptions opts;
    opts.jobs = req.jobs ? req.jobs : opts_.jobs;
    opts.session = &session_;
    opts.cancel = &active->cancel;
    // Stream each cell the moment it completes (the callback is serialized
    // by run_sweep's lock, so lines never interleave). A dead client just
    // turns writes into no-ops; the run finishes for the Session's benefit.
    opts.cell_done = [&](std::size_t index, const SweepCell& cell) {
      ++completed;
      if (!write_line(out_fd, cell_envelope(req.id, index, total, cell)))
        write_failed = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++cells_completed_;
    };

    // Optional per-request watchdog: flips the run's cancel flag when the
    // deadline passes; the pool stops claiming cells and the client gets a
    // "cancelled" terminal envelope below.
    std::thread watchdog;
    std::mutex wmu;
    std::condition_variable wcv;
    bool run_done = false;
    if (opts_.request_timeout_ms > 0) {
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(wmu);
        if (!wcv.wait_for(lock,
                          std::chrono::milliseconds(opts_.request_timeout_ms),
                          [&] { return run_done; }))
          active->cancel.store(true);
      });
    }

    SweepResults results = run_sweep(req.config, opts);

    if (watchdog.joinable()) {
      {
        std::lock_guard<std::mutex> lock(wmu);
        run_done = true;
      }
      wcv.notify_all();
      watchdog.join();
    }

    if (completed < total) {
      obs::log(obs::LogLevel::kInfo, "serve.run.cancelled")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("completed", completed)
          .kv("total", total);
      write_line(out_fd, cancelled_envelope(req.id, completed, total));
      outcome = "cancelled";
    } else if (!write_failed) {
      obs::log(obs::LogLevel::kInfo, "serve.run.done")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("cells", total);
      write_line(out_fd, done_envelope(req.id, results));
    } else {
      obs::log(obs::LogLevel::kWarn, "serve.run.client_gone")
          .kv("conn", conn_id)
          .kv("req", req.id)
          .kv("cells", total);
    }
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kWarn, "serve.run.error")
        .kv("conn", conn_id)
        .kv("req", req.id)
        .kv("error", e.what());
    write_line(out_fd, error_envelope(req.id, e.what()));
    outcome = "error";
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (registered) runs_.erase(req.id);
  --active_runs_;
  ++runs_completed_;
  drain_cv_.notify_all();
  return outcome;
}

}  // namespace ndp::serve
