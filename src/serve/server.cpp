#include "serve/server.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.h"
#include "sim/sweep_runner.h"

namespace ndp::serve {

Server::Server(ServeOptions opts)
    : opts_(opts), session_(opts.session) {
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("serve: pipe failed");
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
}

Server::~Server() {
  request_shutdown();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

std::uint16_t Server::start() {
  listen_fd_ = listen_tcp(opts_.port);
  const std::uint16_t port = local_port(listen_fd_);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port;
}

void Server::request_shutdown() {
  // One byte, never drained: POLLIN stays asserted on wake_rd_ forever, so
  // the accept loop and every connection's LineReader all see it, now and
  // on every later poll. write() is async-signal-safe — SIGINT handlers
  // call this directly.
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads register themselves before wait() can observe them
  // only if the accept loop ran; snapshot under the lock and join outside.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

ServerStatus Server::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStatus s;
  s.connections = connections_;
  s.active_runs = active_runs_;
  s.requests_accepted = requests_accepted_;
  s.runs_completed = runs_completed_;
  s.cells_completed = cells_completed_;
  s.draining = draining_;
  return s;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || connections_ >= opts_.max_connections) {
        const char* why = draining_ ? "server is shutting down"
                                    : "connection limit reached";
        write_line(conn, error_envelope("", why));
        ::close(conn);
        continue;
      }
      ++connections_;
      conn_threads_.emplace_back(
          [this, conn] { handle_connection(conn, conn, /*own_fds=*/true); });
    }
  }
}

void Server::serve_stream(int in_fd, int out_fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
  }
  handle_connection(in_fd, out_fd, /*own_fds=*/false);
  // The fds belong to the caller, but a stream peer still deserves a clean
  // EOF: half-close sockets (socketpair tests); ENOTSOCK for stdio pipes
  // is fine — the caller exiting closes those.
  ::shutdown(out_fd, SHUT_WR);
}

void Server::handle_connection(int in_fd, int out_fd, bool own_fds) {
  LineReader reader(in_fd);
  std::string line;
  bool open = true;
  while (open) {
    const LineReader::Status st =
        reader.next(line, opts_.idle_timeout_ms, wake_rd_);
    switch (st) {
      case LineReader::Status::kLine:
        open = dispatch(line, out_fd);
        break;
      case LineReader::Status::kTimeout:
        write_line(out_fd, error_envelope("", "idle timeout, closing"));
        open = false;
        break;
      case LineReader::Status::kWake:
        // Drain in progress: this connection had no request in flight (one
        // being processed would hold us inside dispatch), so just close.
        open = false;
        break;
      case LineReader::Status::kEof:
      case LineReader::Status::kError:
        open = false;
        break;
    }
  }
  if (own_fds) ::close(in_fd);  // in_fd == out_fd for TCP connections
  std::lock_guard<std::mutex> lock(mu_);
  --connections_;
}

bool Server::dispatch(const std::string& line, int out_fd) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // The daemon's first duty: a bad request is that request's problem.
    // Reply with one error envelope (echoing the id when recoverable) and
    // keep serving.
    write_line(out_fd, error_envelope(request_id_of(line), e.what()));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_accepted_;
    if (draining_ && req.op != Request::Op::kShutdown &&
        req.op != Request::Op::kStatus) {
      write_line(out_fd, error_envelope(req.id, "server is shutting down"));
      return true;
    }
  }

  switch (req.op) {
    case Request::Op::kRun:
      run_request(req, out_fd);
      return true;
    case Request::Op::kStatus:
      write_line(out_fd, status_envelope(req.id, status()));
      return true;
    case Request::Op::kStats:
      write_line(out_fd, stats_envelope(req.id, session_.stats()));
      return true;
    case Request::Op::kCancel: {
      std::shared_ptr<ActiveRun> target;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = runs_.find(req.target);
        if (it != runs_.end()) target = it->second;
      }
      if (!target) {
        write_line(out_fd, error_envelope(
                               req.id, "no active run with id \"" +
                                           req.target + '"'));
        return true;
      }
      target->cancel.store(true);
      write_line(out_fd, ok_envelope(req.id));
      return true;
    }
    case Request::Op::kShutdown: {
      request_shutdown();
      // Drain: every in-flight run finishes and streams its envelopes on
      // its own connection; only then acknowledge and let the caller stop
      // waiting. (This connection processes requests serially, so it has
      // no run of its own in flight.)
      std::unique_lock<std::mutex> lock(mu_);
      draining_ = true;
      drain_cv_.wait(lock, [this] { return active_runs_ == 0; });
      lock.unlock();
      write_line(out_fd, bye_envelope(req.id));
      return false;
    }
  }
  return true;
}

void Server::run_request(const Request& req, int out_fd) {
  auto active = std::make_shared<ActiveRun>();
  bool registered = false;
  if (!req.id.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!runs_.emplace(req.id, active).second) {
      write_line(out_fd, error_envelope(
                             req.id, "a run with id \"" + req.id +
                                         "\" is already active"));
      return;
    }
    registered = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_runs_;
  }

  std::size_t total = 0;
  std::size_t completed = 0;
  bool write_failed = false;
  try {
    total = req.config.expand().size();

    SweepOptions opts;
    opts.jobs = req.jobs ? req.jobs : opts_.jobs;
    opts.session = &session_;
    opts.cancel = &active->cancel;
    // Stream each cell the moment it completes (the callback is serialized
    // by run_sweep's lock, so lines never interleave). A dead client just
    // turns writes into no-ops; the run finishes for the Session's benefit.
    opts.cell_done = [&](std::size_t index, const SweepCell& cell) {
      ++completed;
      if (!write_line(out_fd, cell_envelope(req.id, index, total, cell)))
        write_failed = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++cells_completed_;
    };

    // Optional per-request watchdog: flips the run's cancel flag when the
    // deadline passes; the pool stops claiming cells and the client gets a
    // "cancelled" terminal envelope below.
    std::thread watchdog;
    std::mutex wmu;
    std::condition_variable wcv;
    bool run_done = false;
    if (opts_.request_timeout_ms > 0) {
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(wmu);
        if (!wcv.wait_for(lock,
                          std::chrono::milliseconds(opts_.request_timeout_ms),
                          [&] { return run_done; }))
          active->cancel.store(true);
      });
    }

    SweepResults results = run_sweep(req.config, opts);

    if (watchdog.joinable()) {
      {
        std::lock_guard<std::mutex> lock(wmu);
        run_done = true;
      }
      wcv.notify_all();
      watchdog.join();
    }

    if (completed < total)
      write_line(out_fd, cancelled_envelope(req.id, completed, total));
    else if (!write_failed)
      write_line(out_fd, done_envelope(req.id, results));
  } catch (const std::exception& e) {
    write_line(out_fd, error_envelope(req.id, e.what()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (registered) runs_.erase(req.id);
  --active_runs_;
  ++runs_completed_;
  drain_cv_.notify_all();
}

}  // namespace ndp::serve
