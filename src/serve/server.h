// The resident evaluation daemon behind `ndpsim --serve`.
//
// One Server owns one Session (sim/session.h): every run request, from any
// connection, schedules its cells on a run_sweep() worker pool over that
// shared Session, so system images and trace material built for the first
// request are warm for every later one — the interactive analogue of a
// long batch sweep. Result envelopes are byte-identical to what the same
// grid produces under batch `ndpsim --config` (tests/serve_test.cpp pins
// the equality), so "ran it against the daemon" and "ran it standalone"
// yield interchangeable artifacts.
//
// Transport is JSON lines over fds (serve/framing.h): a TCP listener
// (start()), or any in/out fd pair (serve_stream() — stdio for
// `--serve --stdio`, socketpair ends in tests). Connections get a reader
// thread each, and requests multiplex *within* a connection too: a `run`
// executes on its own thread while the reader keeps consuming lines, so
// several runs can be in flight on one socket with their envelope streams
// interleaved (each frame carries its request "id" — clients demultiplex
// by it), and quick ops like status/cancel answer mid-run. Writes to a
// connection are serialized by a per-connection mutex, so frames never
// tear. This is what lets the fleet coordinator (src/fleet/) hold exactly
// one connection per worker.
//
// Robustness contract: a request that fails — malformed JSON, unknown
// mechanism/workload names, bad types — produces one error envelope on
// that connection and nothing else; the daemon and its other connections
// are untouched. Shutdown (the `shutdown` request or request_shutdown(),
// which is async-signal-safe for SIGINT handlers) drains gracefully:
// in-flight runs finish and stream their envelopes, new requests and
// connections are refused, then everything winds down.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>
#include <condition_variable>

#include "serve/framing.h"
#include "serve/protocol.h"
#include "sim/session.h"

namespace ndp::serve {

struct ServeOptions {
  std::uint16_t port = 0;       ///< TCP port (0 = kernel-assigned)
  unsigned jobs = 0;            ///< default worker threads per run request
  unsigned max_connections = 16;
  /// Close a connection after this long with no request (-1 = never). The
  /// clock only runs while the connection is quiet — a run in flight on it
  /// suppresses the timeout.
  int idle_timeout_ms = -1;
  /// Cancel a run request after this long (-1 = never). The client gets
  /// the cells completed so far plus a "cancelled" terminal envelope.
  int request_timeout_ms = -1;
  SessionOptions session;  ///< cache budget of the shared Session
};

class Server {
 public:
  explicit Server(ServeOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on opts.port and start the accept loop in a background
  /// thread. Returns the bound port (resolves port 0). Throws
  /// std::runtime_error when the bind fails.
  std::uint16_t start();

  /// Serve exactly one connection on an fd pair, blocking until the peer
  /// closes, a shutdown request arrives, or the idle timeout fires. This
  /// is `--stdio` mode (0, 1) and the test harness (socketpair ends); it
  /// composes with start() — a stdio connection and TCP connections share
  /// the Session and drain together.
  void serve_stream(int in_fd, int out_fd);

  /// Begin the graceful drain: stop accepting connections and reading new
  /// requests; in-flight runs complete. Async-signal-safe (one write() to
  /// a pipe), so a SIGINT handler may call it directly.
  void request_shutdown();

  /// Block until the accept loop and every connection thread finished.
  void wait();

  Session& session() { return session_; }
  ServerStatus status() const;

 private:
  struct ActiveRun {
    std::atomic<bool> cancel{false};
  };

  /// Per-connection state shared between the reader thread and the run
  /// threads it spawns. Lives on the reader's stack: handle_connection
  /// waits for `inflight_runs` to hit zero before returning, which bounds
  /// every run thread's lifetime.
  struct ConnCtx {
    int out_fd = -1;
    std::uint64_t conn_id = 0;
    std::mutex write_mu;  ///< serializes frames (write_line handles partial
                          ///< writes, so interleaving must be excluded here)
    std::mutex mu;
    std::condition_variable cv;      ///< signaled when a run thread finishes
    unsigned inflight_runs = 0;      ///< runs of *this* connection in flight

    /// One framed envelope out, atomically w.r.t. concurrent runs.
    bool send(std::string_view payload) {
      std::lock_guard<std::mutex> lock(write_mu);
      return write_line(out_fd, payload);
    }
  };

  void accept_loop();
  /// `conn_id` tags every log line and error envelope of one connection —
  /// the join key between a client-side failure and the daemon's log.
  void handle_connection(int in_fd, int out_fd, bool own_fds,
                         std::uint64_t conn_id);
  /// One request line → envelopes on the connection. Run requests are
  /// handed to their own thread and this returns immediately; other ops
  /// complete inline. Returns false when the connection should end
  /// (shutdown acknowledged).
  bool dispatch(const std::string& line, ConnCtx& conn);
  /// Records the request's metrics (labelled "ok", "cancelled", or "error")
  /// before sending the terminal envelope, so a scrape issued after the
  /// client reads that envelope always reflects this run.
  void run_request(const Request& req, ConnCtx& conn,
                   std::chrono::steady_clock::time_point start);

  ServeOptions opts_;
  Session session_;
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe: written once on shutdown, never drained,
  int wake_wr_ = -1;  ///< so every poller (accept + readers) sees POLLIN

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;  ///< signaled when a run finishes
  bool draining_ = false;
  unsigned connections_ = 0;
  unsigned active_runs_ = 0;
  std::uint64_t requests_accepted_ = 0;
  std::uint64_t runs_completed_ = 0;
  std::uint64_t cells_completed_ = 0;
  std::map<std::string, std::shared_ptr<ActiveRun>> runs_;  ///< by request id
  std::atomic<std::uint64_t> next_conn_id_{0};
  std::atomic<unsigned> in_flight_requests_{0};

  std::thread accept_thread_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace ndp::serve
