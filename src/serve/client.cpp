#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include <unistd.h>

#include "common/json.h"
#include "obs/log.h"

namespace ndp::serve {

std::string run_request_line(std::string_view id, const RunConfig& config,
                             unsigned jobs, unsigned shard_index,
                             unsigned shard_count, bool use_cache) {
  std::string out = "{\"op\":\"run\",\"id\":\"";
  out += JsonWriter::escape(id);
  // to_json() round-trips every RunConfig field, so the daemon re-parses
  // exactly the experiment the caller loaded (file-relative defaults like
  // output paths included — the server ignores those).
  out += "\",\"config\":" + config.to_json();
  if (jobs) out += ",\"jobs\":" + std::to_string(jobs);
  if (shard_count > 1) {
    out += ",\"shard_index\":" + std::to_string(shard_index);
    out += ",\"shard_count\":" + std::to_string(shard_count);
  }
  if (!use_cache) out += ",\"cache\":false";
  out += '}';
  return out;
}

std::string simple_request_line(std::string_view op, std::string_view id) {
  std::string out = "{\"op\":\"";
  out += JsonWriter::escape(op);
  out += "\",\"id\":\"";
  out += JsonWriter::escape(id);
  out += "\"}";
  return out;
}

std::string cancel_request_line(std::string_view id, std::string_view target) {
  std::string out = "{\"op\":\"cancel\",\"id\":\"";
  out += JsonWriter::escape(id);
  out += "\",\"target\":\"";
  out += JsonWriter::escape(target);
  out += "\"}";
  return out;
}

Client Client::connect(const std::string& host, std::uint16_t port,
                       const ConnectRetry& retry) {
  int backoff = retry.backoff_ms > 0 ? retry.backoff_ms : 1;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      const int fd = connect_tcp(host, port, retry.timeout_ms);
      return Client(fd, fd, /*own_fds=*/true);
    } catch (const std::exception& e) {
      if (attempt >= retry.retries) throw;
      obs::log(obs::LogLevel::kWarn, "client.connect.retry")
          .kv("host", host)
          .kv("port", port)
          .kv("attempt", attempt + 1)
          .kv("backoff_ms", backoff)
          .kv("error", e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, std::max(retry.backoff_max_ms, 1));
    }
  }
}

Client::Client(int in_fd, int out_fd, bool own_fds)
    : in_fd_(in_fd), out_fd_(out_fd), own_fds_(own_fds), reader_(in_fd) {}

Client::Client(Client&& other) noexcept
    : in_fd_(std::exchange(other.in_fd_, -1)),
      out_fd_(std::exchange(other.out_fd_, -1)),
      own_fds_(other.own_fds_),
      reader_(in_fd_) {}

Client::~Client() {
  if (!own_fds_) return;
  if (in_fd_ >= 0) ::close(in_fd_);
  if (out_fd_ >= 0 && out_fd_ != in_fd_) ::close(out_fd_);
}

bool Client::send(std::string_view request_line) {
  return write_line(out_fd_, request_line);
}

LineReader::Status Client::next(std::string& envelope, int timeout_ms) {
  return reader_.next(envelope, timeout_ms);
}

std::string Client::roundtrip(std::string_view request_line) {
  if (!send(request_line))
    throw std::runtime_error("serve client: daemon is gone (write failed)");
  std::string envelope;
  if (next(envelope) != LineReader::Status::kLine)
    throw std::runtime_error("serve client: daemon hung up mid-request");
  return envelope;
}

std::string Client::run(
    std::string_view id, const RunConfig& config, unsigned jobs,
    const std::function<void(std::size_t, std::size_t)>& on_cell) {
  return run_line(run_request_line(id, config, jobs), on_cell);
}

std::string Client::run_line(
    std::string_view request_line,
    const std::function<void(std::size_t, std::size_t)>& on_cell) {
  if (!send(request_line))
    throw std::runtime_error("serve client: daemon is gone (write failed)");
  std::string line;
  std::size_t done = 0;
  for (;;) {
    if (next(line) != LineReader::Status::kLine)
      throw std::runtime_error("serve client: daemon hung up mid-run");
    // The frame type/total are plain parsed members; only the "envelope"
    // payload needs the raw splice for byte fidelity.
    const JsonValue frame = JsonValue::parse(line);
    const std::string& type = frame.at("type").as_string();
    if (type == "cell") {
      ++done;
      if (on_cell)
        on_cell(done, static_cast<std::size_t>(frame.at("total").as_u64()));
    } else if (type == "done") {
      return std::string(raw_member(line, "envelope"));
    } else if (type == "error") {
      throw std::runtime_error("serve: " + frame.at("error").as_string());
    } else if (type == "cancelled") {
      throw std::runtime_error(
          "serve: run cancelled after " +
          std::to_string(frame.at("completed").as_u64()) + " of " +
          std::to_string(frame.at("total").as_u64()) + " cells");
    }
    // Unknown frame types are skipped: forward compatibility with newer
    // daemons streaming extra diagnostics.
  }
}

}  // namespace ndp::serve
