// Client side of the serve protocol: used by `ndpsim --client`, the CI
// drive-through, and tests. Thin by design — it writes request lines,
// reads envelope lines, and for run requests reassembles the batch result
// document byte-identically (the "envelope" member of the terminal "done"
// frame is spliced out raw, never re-serialized).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "serve/framing.h"
#include "sim/run_config.h"

namespace ndp::serve {

// Request-line builders (the inverse of protocol.h's parse_request).
// Non-default shard members emit "shard_index"/"shard_count" (the wire form
// of `--shard i/N`); `use_cache` false emits "cache":false (a fleet
// coordinator's cache-bypass knob — plain daemons ignore it).
std::string run_request_line(std::string_view id, const RunConfig& config,
                             unsigned jobs = 0, unsigned shard_index = 0,
                             unsigned shard_count = 1, bool use_cache = true);
/// "status" | "stats" | "shutdown".
std::string simple_request_line(std::string_view op, std::string_view id);
std::string cancel_request_line(std::string_view id, std::string_view target);

/// Retry policy for Client::connect: `retries` further attempts after a
/// failed connect, sleeping `backoff_ms` before the first retry and
/// doubling up to `backoff_max_ms` (bounded exponential backoff).
/// `timeout_ms` >= 0 bounds each individual connect attempt.
struct ConnectRetry {
  unsigned retries = 0;
  int backoff_ms = 200;
  int backoff_max_ms = 5000;
  int timeout_ms = -1;
};

class Client {
 public:
  /// Connect to a daemon over TCP. Throws std::runtime_error on failure
  /// (after exhausting `retry.retries` additional attempts, each failure
  /// logged; the thrown error is the last attempt's).
  static Client connect(const std::string& host, std::uint16_t port,
                        const ConnectRetry& retry = {});

  /// Wrap an existing fd pair (socketpair end, stdio). Closes the fds on
  /// destruction only when `own_fds`.
  Client(int in_fd, int out_fd, bool own_fds);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line. False when the daemon is gone.
  bool send(std::string_view request_line);

  /// Next envelope line from the daemon (blocking; -1 = wait forever).
  LineReader::Status next(std::string& envelope, int timeout_ms = -1);

  /// send() + one reply envelope — the shape of every non-run request.
  /// Throws std::runtime_error when the daemon hangs up instead.
  std::string roundtrip(std::string_view request_line);

  /// Submit a run and consume its envelope stream: `on_cell(done, total)`
  /// fires per streamed cell (may be empty), and the returned string is
  /// the raw "envelope" value of the terminal "done" frame — byte-identical
  /// to the batch `ndpsim --config` document for the same grid. Throws
  /// std::runtime_error on an "error" or "cancelled" terminal frame, or a
  /// vanished daemon.
  std::string run(std::string_view id, const RunConfig& config,
                  unsigned jobs = 0,
                  const std::function<void(std::size_t done,
                                           std::size_t total)>& on_cell = {});

  /// run() over a caller-built request line (run_request_line with shard
  /// or cache members, say) — same envelope-stream handling and raw
  /// "done" splice.
  std::string run_line(std::string_view request_line,
                       const std::function<void(std::size_t done,
                                                std::size_t total)>& on_cell =
                           {});

 private:
  int in_fd_;
  int out_fd_;
  bool own_fds_;
  LineReader reader_;
};

}  // namespace ndp::serve
