#include "serve/protocol.h"

#include <stdexcept>

#include "common/json.h"
#include "sim/experiment.h"

namespace ndp::serve {

namespace {

[[noreturn]] void request_error(const std::string& msg) {
  throw std::invalid_argument("request: " + msg);
}

Request::Op op_of(const std::string& name) {
  if (name == "run") return Request::Op::kRun;
  if (name == "status") return Request::Op::kStatus;
  if (name == "stats") return Request::Op::kStats;
  if (name == "metrics") return Request::Op::kMetrics;
  if (name == "cancel") return Request::Op::kCancel;
  if (name == "shutdown") return Request::Op::kShutdown;
  request_error("unknown op \"" + name +
                "\" (known: run, status, stats, metrics, cancel, shutdown)");
}

bool key_allowed(Request::Op op, const std::string& key) {
  if (key == "op" || key == "id") return true;
  switch (op) {
    case Request::Op::kRun:
      return key == "config" || key == "jobs" || key == "shard_index" ||
             key == "shard_count" || key == "cache";
    case Request::Op::kCancel:
      return key == "target";
    default:
      return false;
  }
}

/// `"id":<escaped>` goes first on every envelope so transcripts scan
/// uniformly; JsonWriter handles the escaping.
std::string envelope_head(std::string_view type, std::string_view id) {
  std::string out = "{\"type\":\"";
  out += type;
  out += "\",\"id\":\"";
  out += JsonWriter::escape(id);
  out += '"';
  return out;
}

}  // namespace

Request parse_request(std::string_view line) {
  const JsonValue doc = JsonValue::parse(line);
  if (!doc.is_object()) request_error("must be a JSON object");
  const JsonValue* op_v = doc.find("op");
  if (!op_v) request_error("missing \"op\"");
  if (!op_v->is_string()) request_error("\"op\" must be a string");

  Request req;
  req.op = op_of(op_v->as_string());
  for (const auto& [key, value] : doc.members()) {
    if (!key_allowed(req.op, key))
      request_error("unknown key \"" + key + "\" for op \"" +
                    op_v->as_string() + '"');
    (void)value;
  }
  if (const JsonValue* id = doc.find("id")) {
    if (!id->is_string()) request_error("\"id\" must be a string");
    req.id = id->as_string();
  }

  switch (req.op) {
    case Request::Op::kRun: {
      const JsonValue* cfg = doc.find("config");
      if (!cfg) request_error("run requires a \"config\" object");
      if (!cfg->is_object()) request_error("\"config\" must be an object");
      // Re-dump the subtree and reuse the RunConfig parser verbatim: one
      // schema, one set of validation messages. Configs hold small integers
      // only, so the double round-trip is lossless.
      req.config = RunConfig::from_json(cfg->dump());
      if (const JsonValue* jobs = doc.find("jobs")) {
        const std::uint64_t n = jobs->as_u64();
        if (n > 1024) request_error("\"jobs\" out of range");
        req.jobs = static_cast<unsigned>(n);
      }
      if (const JsonValue* count = doc.find("shard_count")) {
        const std::uint64_t n = count->as_u64();
        if (n == 0 || n > 4096) request_error("\"shard_count\" out of range");
        req.shard_count = static_cast<unsigned>(n);
      }
      if (const JsonValue* index = doc.find("shard_index")) {
        const std::uint64_t i = index->as_u64();
        if (i >= req.shard_count)
          request_error("\"shard_index\" must be < \"shard_count\"");
        req.shard_index = static_cast<unsigned>(i);
      }
      if (const JsonValue* cache = doc.find("cache")) {
        if (!cache->is_bool()) request_error("\"cache\" must be a bool");
        req.use_cache = cache->as_bool();
      }
      break;
    }
    case Request::Op::kCancel: {
      const JsonValue* target = doc.find("target");
      if (!target) request_error("cancel requires a \"target\" run id");
      if (!target->is_string()) request_error("\"target\" must be a string");
      req.target = target->as_string();
      break;
    }
    default:
      break;
  }
  return req;
}

std::string request_id_of(std::string_view line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    if (const JsonValue* id = doc.find("id"))
      if (id->is_string()) return id->as_string();
  } catch (...) {
    // Malformed request — the error envelope goes out with an empty id.
  }
  return "";
}

std::string error_envelope(std::string_view id, std::string_view message) {
  std::string out = envelope_head("error", id);
  out += ",\"error\":\"";
  out += JsonWriter::escape(message);
  out += "\"}";
  return out;
}

std::string cell_envelope(std::string_view id, std::size_t index,
                          std::size_t total, const SweepCell& cell) {
  std::string out = envelope_head("cell", id);
  out += ",\"index\":" + std::to_string(index);
  out += ",\"total\":" + std::to_string(total);
  // Raw splice, not JsonWriter: the result document is already JSON and
  // must land byte-identical to its batch serialization.
  out += ",\"result\":" + to_json(cell.result, &cell.spec, false);
  out += '}';
  return out;
}

std::string done_envelope(std::string_view id, const SweepResults& results) {
  return done_envelope_raw(id, results.cells.size(), to_json(results));
}

std::string done_envelope_raw(std::string_view id, std::size_t cells,
                              std::string_view envelope_json) {
  std::string out = envelope_head("done", id);
  out += ",\"cells\":" + std::to_string(cells);
  out += ",\"envelope\":";
  out += envelope_json;
  out += '}';
  return out;
}

std::string cell_envelope_raw(std::string_view id, std::size_t index,
                              std::size_t total, std::string_view result_json) {
  std::string out = envelope_head("cell", id);
  out += ",\"index\":" + std::to_string(index);
  out += ",\"total\":" + std::to_string(total);
  out += ",\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string cancelled_envelope(std::string_view id, std::size_t completed,
                               std::size_t total) {
  std::string out = envelope_head("cancelled", id);
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"total\":" + std::to_string(total);
  out += '}';
  return out;
}

std::string stats_envelope(std::string_view id, const SessionStats& stats) {
  std::string out = envelope_head("stats", id);
  out += ",\"session\":";
  JsonWriter w;
  write_session_stats(w, stats);
  out += w.str();
  out += '}';
  return out;
}

std::string metrics_envelope(std::string_view id, std::string_view text) {
  std::string out = envelope_head("metrics", id);
  out += ",\"content_type\":\"text/plain; version=0.0.4\"";
  out += ",\"text\":\"";
  out += JsonWriter::escape(text);
  out += "\"}";
  return out;
}

std::string ok_envelope(std::string_view id) {
  return envelope_head("ok", id) + "}";
}

std::string status_envelope(std::string_view id, const ServerStatus& status) {
  std::string out = envelope_head("status", id);
  out += ",\"protocol_version\":" + std::to_string(kProtocolVersion);
  out += ",\"uptime_ms\":" + std::to_string(status.uptime_ms);
  out += ",\"connections\":" + std::to_string(status.connections);
  out += ",\"active_runs\":" + std::to_string(status.active_runs);
  out += ",\"in_flight_requests\":" +
         std::to_string(status.in_flight_requests);
  out += ",\"requests_accepted\":" + std::to_string(status.requests_accepted);
  out += ",\"runs_completed\":" + std::to_string(status.runs_completed);
  out += ",\"cells_completed\":" + std::to_string(status.cells_completed);
  out += ",\"draining\":";
  out += status.draining ? "true" : "false";
  out += '}';
  return out;
}

std::string bye_envelope(std::string_view id) {
  return envelope_head("bye", id) + "}";
}

}  // namespace ndp::serve
