#include "serve/framing.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "obs/metrics.h"

namespace ndp::serve {

namespace {

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Process-wide wire byte totals (obs/metrics.h) — every framed fd in the
/// process (daemon connections, client sockets) accumulates here.
obs::Counter& bytes_read_counter() {
  static obs::Counter& c = obs::Metrics::instance().counter(
      "ndpsim_bytes_read_total", "Bytes read from framed line streams");
  return c;
}

obs::Counter& bytes_written_counter() {
  static obs::Counter& c = obs::Metrics::instance().counter(
      "ndpsim_bytes_written_total", "Bytes written to framed line streams");
  return c;
}

}  // namespace

bool LineReader::take_line(std::string& line) {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  return true;
}

LineReader::Status LineReader::next(std::string& line, int timeout_ms,
                                    int wake_fd) {
  if (take_line(line)) return Status::kLine;
  if (eof_) return Status::kEof;
  char chunk[4096];
  for (;;) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const nfds_t nfds = wake_fd >= 0 ? 2 : 1;
    const int ready = ::poll(fds, nfds, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (ready == 0) return Status::kTimeout;
    // Shutdown wake-up wins over pending data: a draining server stops
    // reading new requests even if some are already queued on the wire.
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP)))
      return Status::kWake;
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      return Status::kEof;
    }
    bytes_read_counter().inc(static_cast<std::uint64_t>(n));
    buf_.append(chunk, static_cast<std::size_t>(n));
    if (take_line(line)) return Status::kLine;
  }
}

bool write_line(int fd, std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 1);
  framed.append(payload.data(), payload.size());
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
#ifdef MSG_NOSIGNAL
    // Sockets: suppress SIGPIPE per call so a vanished client is a clean
    // write error, not process death. Falls back to write() for pipes and
    // regular fds, where send() is invalid.
    ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
      n = ::write(fd, framed.data() + off, framed.size() - off);
#else
    ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_written_counter().inc(framed.size());
  return true;
}

int listen_tcp(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_error("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    sys_error("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    sys_error("listen");
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    sys_error("getsockname");
  return ntohs(addr.sin_port);
}

namespace {

/// One bounded connect attempt: non-blocking connect, poll for
/// writability, then read back SO_ERROR. Returns 0 on success, the
/// connect errno otherwise (ETIMEDOUT when the deadline passed first).
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                         int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int err = 0;
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) {
      err = errno;
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) {
        err = ETIMEDOUT;
      } else if (ready < 0) {
        err = errno;
      } else {
        socklen_t err_len = sizeof err;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0)
          err = errno;
      }
    }
  }
  // Restore blocking mode; all framed I/O here is blocking + poll.
  if (err == 0 && ::fcntl(fd, F_SETFL, flags) < 0) err = errno;
  return err;
}

}  // namespace

int connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("resolve " + host + ": " + gai_strerror(rc));
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (timeout_ms < 0) {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      saved_errno = errno;
    } else {
      const int err =
          connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
      if (err == 0) break;
      saved_errno = err;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = saved_errno;
    sys_error("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

}  // namespace ndp::serve
