// The evaluated address-translation mechanisms (paper §VI):
//   Radix     — 4-level x86-64 radix table, PWCs at every level.
//   ECH       — elastic cuckoo hash table, parallel probes, no PWCs.
//   HugePage  — 2 MB pages on a 3-level radix table, PWCs at L4/L3.
//   NDPage    — this paper: flattened L2/L1 table + metadata cache bypass,
//               PWCs retained at L4/L3 only (§V-C).
//   Ideal     — every translation hits a zero-latency TLB (the limit case).
//
// These (plus DIPTA and the POM-style Hybrid) are built-in entries of the
// open MechanismRegistry (core/mechanism_registry.h); everything below is a
// thin shim over their descriptors, kept so existing enum-based call sites
// compile unchanged. New mechanisms register with the registry and are
// selected by string — they need no enum value and no edits to this header.
//
// The built-ins publish typed parameter schemas (see --list-mechanisms):
//   ech(ways, probes)              — associativity and probe-group width
//   radix(pwc_l4..pwc_l1)          — per-level PWC entry counts
//   ndpage/hugepage(pwc_l4,pwc_l3) — per-level PWC entry counts
//   hybrid(flat_bits,pwc_l4,pwc_l3)— flat-window size + PWC sizing
// Selection strings carry parameters: "ech(ways=4)", "radix(pwc_l2=128)".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/mechanism_registry.h"
#include "os/phys_mem.h"
#include "translate/page_table.h"
#include "translate/walker.h"

namespace ndp {

enum class Mechanism {
  kRadix,
  kEch,
  kHugePage,
  kNdpage,
  kIdeal,
  /// Extension beyond the paper's five: DIPTA-style restricted-associativity
  /// translation (SVIII related work), for the related-work bench.
  kDipta,
  /// Extension: POM-style hybrid — direct-mapped flat window with a radix
  /// fallback for conflicting translations.
  kHybrid,
};

/// The five mechanisms of the paper's evaluation (SVI).
inline constexpr Mechanism kAllMechanisms[] = {
    Mechanism::kRadix, Mechanism::kEch, Mechanism::kHugePage,
    Mechanism::kNdpage, Mechanism::kIdeal};
/// The paper's five plus implemented related-work comparators.
inline constexpr Mechanism kExtendedMechanisms[] = {
    Mechanism::kRadix, Mechanism::kEch,   Mechanism::kHugePage,
    Mechanism::kNdpage, Mechanism::kIdeal, Mechanism::kDipta,
    Mechanism::kHybrid};

std::string to_string(Mechanism m);

/// The registry descriptor backing a built-in enum value.
const MechanismDescriptor& descriptor_of(Mechanism m);

/// Resolve the (enum, name) selector pair used by SystemConfig and RunSpec:
/// the string wins when non-empty, otherwise the enum. The string may carry
/// parameters ("ech(ways=4)"). Throws std::out_of_range (listing registered
/// names) on an unknown name and std::invalid_argument on bad parameters.
MechanismSpec resolve_mechanism_spec(Mechanism fallback, std::string_view name);

/// Descriptor-only variant of resolve_mechanism_spec() (parameters, if any,
/// are validated and discarded).
const MechanismDescriptor& resolve_mechanism(Mechanism fallback,
                                             std::string_view name);

/// Resolve a bare name/alias (case-insensitive) to a built-in enum value.
/// Registered mechanisms beyond the built-ins have no enum value — resolve
/// those through MechanismRegistry::find() instead.
std::optional<Mechanism> mechanism_from_string(std::string_view name);

/// Does this mechanism map memory with 2 MB pages?
bool uses_huge_pages(Mechanism m);
/// Does this mechanism model translation at all? (false for Ideal)
bool models_translation(Mechanism m);

/// Build the page-table structure for a mechanism at default parameters.
std::unique_ptr<PageTable> make_page_table(Mechanism m, PhysicalMemory& pm);

/// The walker configuration a mechanism prescribes at default parameters
/// (PWC levels + bypass).
WalkerConfig make_walker_config(Mechanism m);

}  // namespace ndp
