// Open mechanism registry: translation mechanisms as named, self-describing,
// *parameterized* plug-ins instead of a closed enum.
//
// A MechanismDescriptor bundles everything the System needs to instantiate a
// translation design: a page-table factory, the walker configuration (PWC
// levels + metadata bypass), the mapping flags (huge pages, whether
// translation is modelled at all) — and a typed parameter schema (name,
// type, default, range per knob). Descriptors live in the process-wide
// MechanismRegistry and are resolved by case-insensitive name or alias, so
// experiments select mechanisms by string ("ndpage", "ech", ...) and new
// designs register from any translation unit — no core header edits, no
// recompiling call sites:
//
//   MechanismDescriptor d;
//   d.name = "MyMech";
//   d.params = {ParamSpec::uint_spec("slots", 64, 8, 512, "table slots")};
//   d.make_page_table = [](PhysicalMemory& pm, const MechanismParams& p) {
//     return make_my_table(pm, p.get_uint("slots"));
//   };
//   d.walker.pwc_levels = {4, 3};
//   register_mechanism(std::move(d));
//   ...
//   RunSpecBuilder().mechanism("mymech(slots=128)")...
//   // or: ndpsim --mechanism='mymech(slots=128)'
//
// Parameter spec strings follow `name(key=value,...)` — names, keys and
// bool values case-insensitive, whitespace ignored. resolve() validates
// against the schema: unknown keys fail with a did-you-mean suggestion and
// the full schema listing; out-of-range or mistyped values name the
// expected type/range. The canonical spelling ("ECH(ways=4)") includes
// exactly the non-default parameters, so identical design points always
// serialize identically.
//
// The built-ins (radix, ech, hugepage, ndpage, ideal, dipta, hybrid) are
// registered by the registry itself on first use; the legacy `Mechanism`
// enum API in core/mechanism.h is a thin shim over their descriptors.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/mechanism_params.h"
#include "os/phys_mem.h"
#include "translate/page_table.h"
#include "translate/walker.h"

namespace ndp {

struct MechanismDescriptor {
  /// Canonical display name (e.g. "NDPage"). Lookup is case-insensitive.
  std::string name;
  /// Alternative lookup names (e.g. {"flat"} for NDPage).
  std::vector<std::string> aliases;
  /// One-line description, shown by `ndpsim --list-mechanisms`.
  std::string summary;
  /// Typed knob schema; empty = the mechanism takes no parameters.
  std::vector<ParamSpec> params;
  /// Build the page-table structure this mechanism walks. Receives the
  /// resolved parameter set (every schema knob present, defaults applied).
  std::function<std::unique_ptr<PageTable>(PhysicalMemory&,
                                           const MechanismParams&)>
      make_page_table;
  /// Walker configuration (PWC levels + metadata cache bypass) at default
  /// parameters.
  WalkerConfig walker;
  /// Optional: derive the walker configuration from resolved parameters
  /// (e.g. per-level PWC sizing). Unset = `walker` is used as-is.
  std::function<WalkerConfig(const MechanismParams&)> make_walker;
  /// Map memory with 2 MB pages?
  bool huge_pages = false;
  /// Model translation at all? (false = every access hits a free TLB.)
  bool models_translation = true;
  /// Set for the built-ins; user registrations leave it false.
  bool builtin = false;

  /// The schema's defaults as a resolved parameter set.
  MechanismParams default_params() const;
  /// Case-insensitive schema lookup; nullptr if no such knob.
  const ParamSpec* find_param(std::string_view name) const;
  /// "ways:uint=3 [2..8], probes:uint=0 [0..8]" ("" when unparameterized).
  std::string param_schema() const;
  /// `walker` with `make_walker` applied when present.
  WalkerConfig walker_config(const MechanismParams& p) const;
};

/// A fully resolved mechanism selection: descriptor + parameter point.
struct MechanismSpec {
  const MechanismDescriptor* descriptor = nullptr;
  /// Every schema parameter, defaults applied, schema order.
  MechanismParams params;
  /// Canonical spelling: descriptor name plus the non-default parameters in
  /// schema order — "Radix", "ECH(ways=4)", "Hybrid(flat_bits=16)".
  std::string canonical;
};

class MechanismRegistry {
 public:
  /// The process-wide registry; built-ins are registered on first call.
  static MechanismRegistry& instance();

  /// Register a mechanism. Returns false (and registers nothing) if the
  /// name or any alias collides with an existing entry, if `desc` has no
  /// name or no page-table factory, or if the parameter schema is invalid
  /// (duplicate knob names, default outside the declared range).
  bool add(MechanismDescriptor desc);

  /// Case-insensitive lookup by bare name or alias (no parameter syntax);
  /// nullptr if unknown.
  const MechanismDescriptor* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Like find(), but throws std::out_of_range with a message listing the
  /// registered names (and a did-you-mean suggestion) when unknown.
  const MechanismDescriptor& at(std::string_view name) const;

  /// Parse + validate a `name(key=value,...)` spec string against the named
  /// mechanism's schema. Throws std::out_of_range for an unknown mechanism
  /// name and std::invalid_argument for malformed syntax or bad parameters
  /// (unknown key -> did-you-mean + schema listing; bad value -> expected
  /// type/range). A bare name resolves to the schema defaults.
  MechanismSpec resolve(std::string_view spec) const;

  /// Canonical names in registration order (built-ins first).
  std::vector<std::string> names() const;
  /// Canonical names of the built-in mechanisms only.
  std::vector<std::string> builtin_names() const;

  const std::deque<MechanismDescriptor>& descriptors() const {
    return descriptors_;
  }

 private:
  MechanismRegistry();

  /// Deque, not vector: find()/at() hand out pointers into this container,
  /// and registration must never invalidate them.
  std::deque<MechanismDescriptor> descriptors_;
};

/// Convenience wrapper over MechanismRegistry::instance().add().
bool register_mechanism(MechanismDescriptor desc);

namespace detail {
/// Defined in mechanism.cpp next to the enum shims; called once by
/// MechanismRegistry's constructor so built-ins can never be dead-stripped
/// or observed half-initialised, whatever the link order.
void register_builtin_mechanisms(MechanismRegistry& registry);
}  // namespace detail

}  // namespace ndp
