// Open mechanism registry: translation mechanisms as named, self-describing
// plug-ins instead of a closed enum.
//
// A MechanismDescriptor bundles everything the System needs to instantiate a
// translation design: a page-table factory, the walker configuration (PWC
// levels + metadata bypass), and the mapping flags (huge pages, whether
// translation is modelled at all). Descriptors live in the process-wide
// MechanismRegistry and are resolved by case-insensitive name or alias, so
// experiments select mechanisms by string ("ndpage", "ech", ...) and new
// designs register from any translation unit — no core header edits, no
// recompiling call sites:
//
//   MechanismDescriptor d;
//   d.name = "MyMech";
//   d.make_page_table = [](PhysicalMemory& pm) { return ...; };
//   d.walker.pwc_levels = {4, 3};
//   register_mechanism(std::move(d));
//   ...
//   RunSpecBuilder().mechanism("mymech")...   // or ndpsim --mechanism=mymech
//
// The six built-ins (radix, ech, hugepage, ndpage, ideal, dipta) are
// registered by the registry itself on first use; the legacy `Mechanism`
// enum API in core/mechanism.h is a thin shim over their descriptors.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "os/phys_mem.h"
#include "translate/page_table.h"
#include "translate/walker.h"

namespace ndp {

struct MechanismDescriptor {
  /// Canonical display name (e.g. "NDPage"). Lookup is case-insensitive.
  std::string name;
  /// Alternative lookup names (e.g. {"flat"} for NDPage).
  std::vector<std::string> aliases;
  /// One-line description, shown by `ndpsim --list-mechanisms`.
  std::string summary;
  /// Build the page-table structure this mechanism walks.
  std::function<std::unique_ptr<PageTable>(PhysicalMemory&)> make_page_table;
  /// Walker configuration (PWC levels + metadata cache bypass).
  WalkerConfig walker;
  /// Map memory with 2 MB pages?
  bool huge_pages = false;
  /// Model translation at all? (false = every access hits a free TLB.)
  bool models_translation = true;
  /// Set for the six built-ins; user registrations leave it false.
  bool builtin = false;
};

class MechanismRegistry {
 public:
  /// The process-wide registry; built-ins are registered on first call.
  static MechanismRegistry& instance();

  /// Register a mechanism. Returns false (and registers nothing) if the
  /// name or any alias collides with an existing entry, or if `desc` has no
  /// name or no page-table factory.
  bool add(MechanismDescriptor desc);

  /// Case-insensitive lookup by name or alias; nullptr if unknown.
  const MechanismDescriptor* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Like find(), but throws std::out_of_range with a message listing the
  /// registered names when `name` is unknown.
  const MechanismDescriptor& at(std::string_view name) const;

  /// Canonical names in registration order (built-ins first).
  std::vector<std::string> names() const;
  /// Canonical names of the built-in mechanisms only.
  std::vector<std::string> builtin_names() const;

  const std::deque<MechanismDescriptor>& descriptors() const {
    return descriptors_;
  }

 private:
  MechanismRegistry();

  /// Deque, not vector: find()/at() hand out pointers into this container,
  /// and registration must never invalidate them.
  std::deque<MechanismDescriptor> descriptors_;
};

/// Convenience wrapper over MechanismRegistry::instance().add().
bool register_mechanism(MechanismDescriptor desc);

namespace detail {
/// Defined in mechanism.cpp next to the enum shims; called once by
/// MechanismRegistry's constructor so built-ins can never be dead-stripped
/// or observed half-initialised, whatever the link order.
void register_builtin_mechanisms(MechanismRegistry& registry);
}  // namespace detail

}  // namespace ndp
