#include "core/mechanism_params.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/strings.h"

namespace ndp {
namespace {

/// Deterministic shortest-ish double formatting (matches the JSON writer's
/// intent: round-trips, no locale dependence).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest precision that round-trips.
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

[[noreturn]] void value_error(const ParamSpec& spec, std::string_view text,
                              const std::string& why) {
  throw std::invalid_argument("parameter '" + spec.name + "': " + why +
                              " (got '" + std::string(text) + "'; expected " +
                              spec.describe() + ")");
}

}  // namespace

std::string to_string(ParamType t) {
  switch (t) {
    case ParamType::kUInt: return "uint";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
  }
  return "?";
}

ParamValue ParamValue::of_uint(std::uint64_t v) {
  ParamValue p;
  p.type_ = ParamType::kUInt;
  p.u_ = v;
  return p;
}

ParamValue ParamValue::of_double(double v) {
  ParamValue p;
  p.type_ = ParamType::kDouble;
  p.d_ = v;
  return p;
}

ParamValue ParamValue::of_bool(bool v) {
  ParamValue p;
  p.type_ = ParamType::kBool;
  p.b_ = v;
  return p;
}

std::uint64_t ParamValue::as_uint() const {
  if (type_ != ParamType::kUInt)
    throw std::logic_error("ParamValue: not a uint");
  return u_;
}

double ParamValue::as_double() const {
  if (type_ == ParamType::kDouble) return d_;
  if (type_ == ParamType::kUInt) return static_cast<double>(u_);
  throw std::logic_error("ParamValue: not numeric");
}

bool ParamValue::as_bool() const {
  if (type_ != ParamType::kBool)
    throw std::logic_error("ParamValue: not a bool");
  return b_;
}

std::string ParamValue::text() const {
  switch (type_) {
    case ParamType::kUInt: return std::to_string(u_);
    case ParamType::kDouble: return format_double(d_);
    case ParamType::kBool: return b_ ? "true" : "false";
  }
  return "?";
}

bool ParamValue::operator==(const ParamValue& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case ParamType::kUInt: return u_ == o.u_;
    case ParamType::kDouble: return d_ == o.d_;
    case ParamType::kBool: return b_ == o.b_;
  }
  return false;
}

ParamSpec ParamSpec::uint_spec(std::string name, std::uint64_t def,
                               std::uint64_t min, std::uint64_t max,
                               std::string summary,
                               std::uint64_t multiple_of) {
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kUInt;
  s.def = ParamValue::of_uint(def);
  s.min = ParamValue::of_uint(min);
  s.max = ParamValue::of_uint(max);
  s.multiple_of = multiple_of ? multiple_of : 1;
  s.summary = std::move(summary);
  return s;
}

ParamSpec ParamSpec::double_spec(std::string name, double def, double min,
                                 double max, std::string summary) {
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kDouble;
  s.def = ParamValue::of_double(def);
  s.min = ParamValue::of_double(min);
  s.max = ParamValue::of_double(max);
  s.summary = std::move(summary);
  return s;
}

ParamSpec ParamSpec::bool_spec(std::string name, bool def,
                               std::string summary) {
  ParamSpec s;
  s.name = std::move(name);
  s.type = ParamType::kBool;
  s.def = ParamValue::of_bool(def);
  s.summary = std::move(summary);
  return s;
}

std::string ParamSpec::describe() const {
  std::string out = name + ":" + to_string(type) + "=" + def.text();
  if (type != ParamType::kBool) {
    out += " [" + min.text() + ".." + max.text() + "]";
    if (multiple_of > 1) out += " step " + std::to_string(multiple_of);
  }
  return out;
}

ParamValue ParamSpec::parse(std::string_view raw) const {
  const std::string text(trim(raw));
  if (text.empty()) value_error(*this, raw, "empty value");
  ParamValue v;
  switch (type) {
    case ParamType::kUInt: {
      char* end = nullptr;
      const unsigned long long u = std::strtoull(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size() || text[0] == '-')
        value_error(*this, text, "not an unsigned integer");
      v = ParamValue::of_uint(u);
      break;
    }
    case ParamType::kDouble: {
      char* end = nullptr;
      const double d = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size())
        value_error(*this, text, "not a number");
      v = ParamValue::of_double(d);
      break;
    }
    case ParamType::kBool: {
      if (iequals(text, "true") || iequals(text, "on") || text == "1")
        v = ParamValue::of_bool(true);
      else if (iequals(text, "false") || iequals(text, "off") || text == "0")
        v = ParamValue::of_bool(false);
      else
        value_error(*this, text, "not a boolean (true/false/on/off/1/0)");
      break;
    }
  }
  validate(v);
  return v;
}

void ParamSpec::validate(const ParamValue& v) const {
  if (v.type() != type)
    value_error(*this, v.text(), "wrong type " + to_string(v.type()));
  if (type == ParamType::kBool) return;
  if (v.as_double() < min.as_double() || v.as_double() > max.as_double())
    value_error(*this, v.text(),
                "out of range [" + min.text() + ".." + max.text() + "]");
  if (type == ParamType::kUInt && multiple_of > 1 &&
      v.as_uint() % multiple_of != 0)
    value_error(*this, v.text(),
                "must be a multiple of " + std::to_string(multiple_of));
}

const ParamValue* MechanismParams::find(std::string_view name) const {
  for (const auto& [k, v] : entries_)
    if (iequals(k, name)) return &v;
  return nullptr;
}

std::uint64_t MechanismParams::get_uint(std::string_view name) const {
  const ParamValue* v = find(name);
  if (!v) throw std::logic_error("missing parameter '" + std::string(name) + "'");
  return v->as_uint();
}

double MechanismParams::get_double(std::string_view name) const {
  const ParamValue* v = find(name);
  if (!v) throw std::logic_error("missing parameter '" + std::string(name) + "'");
  return v->as_double();
}

bool MechanismParams::get_bool(std::string_view name) const {
  const ParamValue* v = find(name);
  if (!v) throw std::logic_error("missing parameter '" + std::string(name) + "'");
  return v->as_bool();
}

void MechanismParams::set(std::string name, ParamValue v) {
  for (auto& [k, existing] : entries_) {
    if (iequals(k, name)) {
      existing = v;
      return;
    }
  }
  entries_.emplace_back(std::move(name), v);
}

std::string MechanismParams::text() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ',';
    out += k + "=" + v.text();
  }
  return out;
}

}  // namespace ndp
