#include "core/mmu.h"

#include <cassert>

namespace ndp {

Mmu::Mmu(const MmuConfig& cfg, AddressSpace& space, MemorySystem& mem,
         unsigned core)
    : cfg_(cfg), space_(space), mem_(mem), core_(core), l1_dtlb_(cfg.l1_dtlb),
      l2_tlb_(cfg.l2_tlb),
      walker_(std::make_unique<Walker>(space.page_table(), mem, cfg.walker)) {}

namespace {
/// Physical address for va given a TLB-style (base_pfn, page_shift) entry.
PhysAddr pa_from_entry(VirtAddr va, Pfn base_pfn, unsigned page_shift) {
  const Vpn vpn = vpn_of(va);
  const Vpn entry_base_vpn = (va >> page_shift) << (page_shift - kPageShift);
  return frame_base(base_pfn + (vpn - entry_base_vpn)) + page_offset(va);
}
}  // namespace

Cycle MmuOp::begin(Mmu& mmu, Cycle now, VirtAddr va, AccessType type) {
  mmu_ = &mmu;
  va_ = va;
  type_ = type;
  issue_ = now;
  fault_cycles_ = 0;
  walked_ = false;
  retried_after_fault_ = false;
  walk_accesses_ = 0;
  step_idx_ = 0;

  if (mmu.cfg_.ideal) {
    auto pa = mmu.space_.translate(va);
    if (!pa) {
      mmu.space_.touch_untimed(va);  // free by design for the limit case
      pa = mmu.space_.translate(va);
    }
    pa_ = *pa;
    trans_done_ = now;
    ++mmu.counters_.ideal_translations;
    stage_ = Stage::kData;
    return now;
  }

  Cycle t = now + mmu.l1_dtlb_.config().latency;
  if (auto e = mmu.l1_dtlb_.lookup(va)) {
    pa_ = pa_from_entry(va, e->pfn, e->page_shift);
    trans_done_ = t;
    ++mmu.counters_.l1_hits;
    stage_ = Stage::kData;
    return t;
  }
  t += mmu.l2_tlb_.config().latency;
  if (auto e = mmu.l2_tlb_.lookup(va)) {
    pa_ = pa_from_entry(va, e->pfn, e->page_shift);
    mmu.l1_dtlb_.insert(va, e->pfn, e->page_shift);
    trans_done_ = t;
    ++mmu.counters_.l2_hits;
    stage_ = Stage::kData;
    return t;
  }

  // TLB miss. If this core is already walking the same page, coalesce onto
  // that walk (MSHR behaviour) instead of duplicating PTE accesses.
  walk_begin_ = t;
  if (mmu.walk_inflight(vpn_of(va))) {
    ++mmu.counters_.coalesced_walks;
    stage_ = Stage::kWaitWalk;
    return t + kWalkPollInterval;
  }
  return start_walk(t);
}

Cycle MmuOp::start_walk(Cycle now) {
  Mmu& mmu = *mmu_;
  // Plan the page-table walk (paper Fig. 11 steps 2-4).
  walked_ = true;
  ++mmu.counters_.walks;
  mmu.add_inflight_walk(vpn_of(va_));
  mmu.walker_->plan_into(vpn_of(va_), plan_);
  plan_start_ = now;
  step_idx_ = 0;
  stage_ = Stage::kWalk;
  return now + plan_.start_latency;
}

Cycle MmuOp::on_walk_complete(Cycle now) {
  Mmu& mmu = *mmu_;
  mmu.walker_->finish(vpn_of(va_), plan_, plan_start_, now, walk_accesses_);

  if (!plan_.path.mapped) {
    // Page fault: the OS maps the page, then the hardware walks again. A
    // concurrent op may have faulted the same page in already (touch() then
    // reports no fault and costs nothing) — the re-walk still happens.
    const AddressSpace::TouchResult tr = mmu.space_.touch(va_, now);
    if (tr.faulted) {
      fault_cycles_ += tr.cost;
      ++mmu.counters_.faults;
    }
    retried_after_fault_ = true;
    const Cycle t = now + tr.cost;
    mmu.walker_->plan_into(vpn_of(va_), plan_);
    assert(plan_.path.mapped && "touch() must leave the page mapped");
    plan_start_ = t;
    step_idx_ = 0;
    walk_accesses_ = 0;
    stage_ = Stage::kWalk;
    return t + plan_.start_latency;
  }

  // TLB refill: entries hold the base frame of the (possibly huge) page.
  const Vpn vpn = vpn_of(va_);
  const unsigned shift = plan_.path.page_shift;
  const Vpn entry_base_vpn = (va_ >> shift) << (shift - kPageShift);
  const Pfn base_pfn = plan_.path.pfn - (vpn - entry_base_vpn);
  mmu.l1_dtlb_.insert(va_, base_pfn, shift);
  mmu.l2_tlb_.insert(va_, base_pfn, shift);

  // Release the walk so coalesced waiters can resolve from the TLBs.
  mmu.release_inflight_walk(vpn);

  pa_ = frame_base(plan_.path.pfn) + page_offset(va_);
  trans_done_ = now;
  mmu.counters_.walk_latency.add(static_cast<double>(now - walk_begin_));
  stage_ = Stage::kData;
  return now;
}

Cycle MmuOp::step(Cycle now) {
  Mmu& mmu = *mmu_;
  switch (stage_) {
    case Stage::kWaitWalk: {
      // Poll for the coalesced walk's TLB refill.
      if (auto e = mmu.l1_dtlb_.peek(va_)) {
        pa_ = pa_from_entry(va_, e->pfn, e->page_shift);
        trans_done_ = now;
        stage_ = Stage::kData;
        return now;
      }
      if (auto e = mmu.l2_tlb_.peek(va_)) {
        mmu.l1_dtlb_.insert(va_, e->pfn, e->page_shift);
        pa_ = pa_from_entry(va_, e->pfn, e->page_shift);
        trans_done_ = now;
        stage_ = Stage::kData;
        return now;
      }
      if (mmu.walk_inflight(vpn_of(va_)))
        return now + kWalkPollInterval;  // still walking
      // The walk finished but the entry was already displaced (or torn
      // down): perform our own walk.
      return start_walk(now);
    }
    case Stage::kWalk: {
      const auto& steps = plan_.path.steps;
      // PWC-skipped steps issue nothing (non-radix preamble steps survive
      // the skip — see WalkPlan::executes).
      while (step_idx_ < steps.size() && !plan_.executes(step_idx_))
        ++step_idx_;
      if (step_idx_ >= steps.size()) return on_walk_complete(now);
      // Issue every surviving step of the current group concurrently.
      const unsigned group = steps[step_idx_].group;
      Cycle group_finish = now;
      for (; step_idx_ < steps.size() && steps[step_idx_].group == group;
           ++step_idx_) {
        if (!plan_.executes(step_idx_)) continue;
        const MemAccessResult r = mmu.mem_.access(
            now, mmu.core_, steps[step_idx_].pte_addr, AccessType::kRead,
            AccessClass::kMetadata,
            mmu.cfg_.walker.bypass_caches_for_metadata);
        group_finish = std::max(group_finish, r.finish);
        ++walk_accesses_;
      }
      if (step_idx_ >= steps.size()) return on_walk_complete(group_finish);
      return group_finish;
    }
    case Stage::kData: {
      const MemAccessResult r = mmu.mem_.access(
          now, mmu.core_, pa_, type_, AccessClass::kData, false);
      finish_ = r.finish;
      stage_ = Stage::kDone;
      return finish_;
    }
    case Stage::kIdle:
    case Stage::kDone:
      break;
  }
  assert(false && "step() on an idle/finished op");
  return now;
}

TranslateResult Mmu::translate(Cycle now, VirtAddr va) {
  TranslateResult r;

  if (cfg_.ideal) {
    // Paper §VI: "every address translation request hits the L1 TLB, and
    // the access latency ... is zero". Pages still materialize so data
    // placement matches the other mechanisms.
    auto pa = space_.translate(va);
    if (!pa) {
      space_.touch_untimed(va);  // free by design for the limit case
      pa = space_.translate(va);
    }
    r.pa = *pa;
    r.finish = now;
    r.l1_tlb_hit = true;
    ++counters_.ideal_translations;
    return r;
  }

  Cycle t = now + l1_dtlb_.config().latency;
  if (auto e = l1_dtlb_.lookup(va)) {
    r.l1_tlb_hit = true;
    const Vpn vpn = vpn_of(va);
    const Vpn entry_base_vpn = (va >> e->page_shift)
                               << (e->page_shift - kPageShift);
    r.pa = frame_base(e->pfn + (vpn - entry_base_vpn)) + page_offset(va);
    r.finish = t;
    ++counters_.l1_hits;
    return r;
  }

  t += l2_tlb_.config().latency;
  if (auto e = l2_tlb_.lookup(va)) {
    r.l2_tlb_hit = true;
    const Vpn vpn = vpn_of(va);
    const Vpn entry_base_vpn = (va >> e->page_shift)
                               << (e->page_shift - kPageShift);
    r.pa = frame_base(e->pfn + (vpn - entry_base_vpn)) + page_offset(va);
    l1_dtlb_.insert(va, e->pfn, e->page_shift);
    r.finish = t;
    ++counters_.l2_hits;
    return r;
  }

  // Page-table walk (paper Fig. 11 steps 2-4).
  r.walked = true;
  ++counters_.walks;
  WalkTiming w = walker_->walk(t, core_, va);
  Cycle walk_end = w.finish;
  if (!w.mapped) {
    // Page fault: OS maps the page, hardware walks again.
    const AddressSpace::TouchResult tr = space_.touch(va, walk_end);
    assert(tr.faulted);
    r.faulted = true;
    r.fault_cycles = tr.cost;
    ++counters_.faults;
    const WalkTiming w2 = walker_->walk(walk_end + tr.cost, core_, va);
    assert(w2.mapped && "touch() must leave the page mapped");
    w = w2;
    walk_end = w2.finish;
  }
  r.walk_cycles = walk_end - t;
  t = walk_end;

  // TLB refill. Entries hold the base frame of the (possibly huge) page.
  const Vpn vpn = vpn_of(va);
  const Vpn entry_base_vpn = (va >> w.page_shift)
                             << (w.page_shift - kPageShift);
  const Pfn base_pfn = w.pfn - (vpn - entry_base_vpn);
  l1_dtlb_.insert(va, base_pfn, w.page_shift);
  l2_tlb_.insert(va, base_pfn, w.page_shift);

  r.pa = frame_base(w.pfn) + page_offset(va);
  r.finish = t;
  counters_.walk_latency.add(static_cast<double>(r.walk_cycles));
  return r;
}

StatSet Mmu::snapshot() const {
  StatSet s;
  s.inc("ideal_translations", counters_.ideal_translations);
  s.inc("l1_hit", counters_.l1_hits);
  s.inc("l2_hit", counters_.l2_hits);
  s.inc("walks", counters_.walks);
  s.inc("coalesced_walks", counters_.coalesced_walks);
  s.inc("faults", counters_.faults);
  s.merge_average("walk_latency", counters_.walk_latency);
  return s;
}

}  // namespace ndp
