// Whole-system assembly: Table I of the paper as a constructor.
//
// A System owns the physical-memory substrate, the cache/NoC/DRAM memory
// system, one address space (the NDP kernels run as one multi-threaded
// process), and a per-core MMU configured for the chosen translation
// mechanism. The simulation engine (src/sim) drives it with workload
// traces.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hierarchy.h"
#include "core/mechanism.h"
#include "dram/dram.h"
#include "core/mmu.h"
#include "os/phys_mem.h"
#include "translate/address_space.h"

namespace ndp {

enum class SystemKind { kCpu, kNdp };

std::string to_string(SystemKind k);
/// Resolve "ndp"/"cpu" (case-insensitive); nullopt otherwise.
std::optional<SystemKind> system_kind_from_string(std::string_view name);

/// Ablation overrides, applied on top of the mechanism's own configuration.
/// Shared by SystemConfig and the experiment layer's RunSpec so a sweep
/// forwards them without field-by-field copying.
struct Overrides {
  /// Force the metadata cache bypass on/off regardless of mechanism.
  std::optional<bool> bypass;
  /// Replace the mechanism's PWC level set (e.g. {} to disable PWCs).
  std::optional<std::vector<unsigned>> pwc_levels;
  /// Replace the DRAM device model (e.g. channel-count sweeps).
  std::optional<DramTiming> dram;

  bool any() const { return bypass || pwc_levels || dram; }
  /// The mechanism's walker config with these overrides applied.
  WalkerConfig apply_to(WalkerConfig walker) const;
};

struct SystemConfig {
  SystemKind kind = SystemKind::kNdp;
  unsigned num_cores = 1;
  /// Built-in mechanism selector; ignored when `mechanism_name` is set.
  Mechanism mechanism = Mechanism::kRadix;
  /// Registry-resolved mechanism spec (takes precedence over the enum when
  /// non-empty). May carry parameters — "ech(ways=4)" — which resolve
  /// against the mechanism's schema; this is also how registered
  /// non-built-in mechanisms are selected.
  std::string mechanism_name;
  std::uint64_t phys_bytes = 16ull << 30;  ///< Table I: 16 GB
  double noise_fraction = 0.03;
  std::uint64_t seed = 0x5EED;
  /// Per-core memory-level parallelism: how many memory operations a core
  /// may have in flight. Table I uses the same x86-64 cores in both systems,
  /// so both default to 8 (a typical L1 MSHR budget).
  unsigned mlp = 0;  ///< 0 = default (8)

  Overrides overrides;

  /// The resolved (descriptor, parameters) pair this config selects.
  /// Throws std::out_of_range on an unknown `mechanism_name` and
  /// std::invalid_argument on bad parameters.
  MechanismSpec mechanism_spec() const;
  /// The registry descriptor this config selects.
  const MechanismDescriptor& descriptor() const;
  /// Canonical spelling of the selected mechanism, parameters included
  /// ("Radix", "ECH(ways=4)").
  std::string mechanism_label() const { return mechanism_spec().canonical; }

  static SystemConfig ndp(unsigned cores, Mechanism m);
  static SystemConfig cpu(unsigned cores, Mechanism m);
  static SystemConfig ndp(unsigned cores, std::string_view mechanism);
  static SystemConfig cpu(unsigned cores, std::string_view mechanism);
};

/// Immutable, shareable build products of one system configuration: the
/// post-boot-noise physical-memory substrate plus the precomputed mesh
/// routing tables. Everything here is *mechanism-independent* — cells of a
/// sweep that differ only in translation mechanism or workload construct
/// their Systems from one image (restore = a few large copies) instead of
/// re-running boot-noise injection, which is what a Session (sim/session.h)
/// caches keyed by (kind, cores, seed, overrides).
struct SystemImage {
  SystemConfig config;  ///< the config the image was prepared from
  PhysMemImage phys;    ///< substrate state right after noise injection
  MeshTable mesh;       ///< NoC routing tables for (kind, cores, dram)

  /// Can a System with config `cfg` be built from this image with
  /// behaviour identical to a from-scratch construction? True iff every
  /// image-relevant field matches (kind, cores, physical-memory geometry,
  /// seed, and the effective DRAM device); mechanism fields are free.
  bool compatible_with(const SystemConfig& cfg) const;

  /// Host bytes this image keeps resident — what one Session cache slot
  /// costs (SessionStats::resident_bytes sums these).
  std::uint64_t resident_bytes() const {
    return phys.resident_bytes() + mesh.resident_bytes();
  }
};

/// Post-prefault snapshot of a fully *prepared* System: the post-boot
/// substrate image it was built from plus the serialized page-table,
/// address-space, and OS-statistics state left behind by workload install
/// and prefault. Restoring one skips install and prefault entirely — the
/// expensive half of cell setup — and the on-disk image store
/// (sim/image_store.h) persists these across processes.
struct PreparedImage {
  std::shared_ptr<const SystemImage> base;  ///< post-boot substrate image
  PhysMemImage ready;  ///< pool state right after prefault
  std::vector<std::uint64_t> pt_state;     ///< PageTable::save_state words
  std::vector<std::uint64_t> space_state;  ///< AddressSpace::save_state words
  std::vector<std::uint64_t> stats_state;  ///< post-prefault OS statistics

  /// Host bytes one cache slot costs beyond the (shared) base image.
  std::uint64_t resident_bytes() const {
    return ready.resident_bytes() +
           (pt_state.size() + space_state.size() + stats_state.size()) *
               sizeof(std::uint64_t);
  }
};

class System {
 public:
  explicit System(const SystemConfig& cfg);
  /// Construct from a prepared image: observable behaviour is identical to
  /// System(cfg) — the golden suite pins this — but the physical-memory
  /// substrate is restored instead of rebuilt. Throws std::invalid_argument
  /// when the image is not compatible_with(cfg).
  System(const SystemConfig& cfg, const SystemImage& image);

  /// The shareable build products for `cfg` — what Session caches.
  static SystemImage prepare_image(const SystemConfig& cfg);

  /// Return this System to the image's pristine post-boot state: restore
  /// the physical-memory substrate, then rebuild the address space / page
  /// table / MMUs and reset the memory system, exactly as a fresh
  /// construction would leave them. Throws std::invalid_argument when the
  /// image is not compatible_with(config()).
  void reset_to(const SystemImage& image);

  /// Capture this System's state as a PreparedImage over `base` (the image
  /// this System was, or could have been, built from). Call right after
  /// Engine::prepare(). Returns null when the page table does not support
  /// snapshotting (a custom mechanism without save_state overrides); the
  /// System itself is never modified.
  std::shared_ptr<const PreparedImage> snapshot_prepared(
      std::shared_ptr<const SystemImage> base) const;
  /// Adopt a PreparedImage into a System freshly constructed from
  /// prep.base with an equivalent config: restores the physical pool
  /// wholesale, then overwrites page-table / address-space / statistics
  /// state, leaving the System observably at the post-prefault point.
  /// Returns false on a mismatched or malformed image — the System must
  /// then be discarded (its state may be partially overwritten).
  bool adopt_prepared(const PreparedImage& prep);

  const SystemConfig& config() const { return cfg_; }
  unsigned num_cores() const { return cfg_.num_cores; }
  unsigned mlp() const { return mlp_; }
  PhysicalMemory& phys() { return *phys_; }
  MemorySystem& mem() { return *mem_; }
  AddressSpace& space() { return *space_; }
  Mmu& mmu(unsigned core) { return *mmus_[core]; }
  const Mmu& mmu(unsigned core) const { return *mmus_[core]; }

  /// Snapshot of every component's statistics, prefixed per component.
  StatSet collect_stats() const;
  /// Clear every component's statistics (after warmup). Timing state —
  /// cache tags, TLB/PWC contents, DRAM bank clocks — is preserved.
  void reset_stats();

 private:
  System(const SystemConfig& cfg, const SystemImage* image);
  /// Build mem_/space_/mmus_ around the (already constructed or restored)
  /// physical memory; shared by construction and reset_to().
  void assemble(const SystemImage* image);

  SystemConfig cfg_;
  unsigned mlp_;
  std::unique_ptr<PhysicalMemory> phys_;
  std::unique_ptr<MemorySystem> mem_;
  std::unique_ptr<AddressSpace> space_;
  std::vector<std::unique_ptr<Mmu>> mmus_;
};

}  // namespace ndp
