// Per-core MMU front-end: the address-translation workflow of the paper's
// Fig. 3 (conventional) and Fig. 11 (NDPage).
//
//   L1 DTLB (1 cy) -> L2 TLB (12 cy) -> page-table walk (PWCs + PTE memory
//   accesses, bypassed for NDPage) -> [page fault: OS maps, walker retries]
//   -> TLB refill.
//
// The Ideal mechanism short-circuits everything: translations resolve
// functionally with zero latency and generate no metadata traffic, giving
// the performance ceiling the paper plots as "Ideal".
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/mechanism.h"
#include "translate/address_space.h"
#include "translate/tlb.h"
#include "translate/walker.h"

namespace ndp {

struct MmuConfig {
  TlbConfig l1_dtlb{.name = "L1DTLB", .entries = 64, .ways = 4, .latency = 1,
                    .huge_entries = 32, .huge_ways = 4};
  TlbConfig l1_itlb{.name = "L1ITLB", .entries = 128, .ways = 4, .latency = 1,
                    .huge_entries = 8, .huge_ways = 4};
  /// The unified L2 TLB caches 4 KB translations only (2 MB translations are
  /// served by the dedicated L1 array, as in the x86 generations Table I's
  /// sizes correspond to) — this is what keeps the Huge Page baseline's
  /// reach at realistic levels.
  TlbConfig l2_tlb{.name = "L2TLB", .entries = 1536, .ways = 12, .latency = 12,
                   .huge_entries = 0, .huge_ways = 1};
  WalkerConfig walker;
  bool ideal = false;
};

struct TranslateResult {
  Cycle finish = 0;
  PhysAddr pa = 0;
  bool l1_tlb_hit = false;
  bool l2_tlb_hit = false;
  bool walked = false;
  bool faulted = false;
  Cycle fault_cycles = 0;
  Cycle walk_cycles = 0;  ///< PTW portion only (the paper's "PTW latency")
};

class Mmu {
 public:
  Mmu(const MmuConfig& cfg, AddressSpace& space, MemorySystem& mem,
      unsigned core);

  /// Translate a data access. Timing per the workflow above.
  ///
  /// Synchronous convenience path (tests, micro-benchmarks): all PTE
  /// accesses issue back-to-back. The simulation engine uses MmuOp instead,
  /// which touches shared memory-system state in global event order.
  TranslateResult translate(Cycle now, VirtAddr va);

  Tlb& l1_dtlb() { return l1_dtlb_; }
  const Tlb& l1_dtlb() const { return l1_dtlb_; }
  Tlb& l2_tlb() { return l2_tlb_; }
  const Tlb& l2_tlb() const { return l2_tlb_; }
  struct Counters {
    std::uint64_t ideal_translations = 0;
    std::uint64_t l1_hits = 0, l2_hits = 0;
    std::uint64_t walks = 0, faults = 0;
    std::uint64_t coalesced_walks = 0;  ///< ops that piggybacked on a walk
    Average walk_latency;
  };

  Walker& walker() { return *walker_; }
  const Walker& walker() const { return *walker_; }
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }
  StatSet snapshot() const;

 private:
  friend class MmuOp;

  /// Is a walk for vpn in flight on this core?
  bool walk_inflight(Vpn vpn) const {
    for (const auto& w : inflight_walks_)
      if (w.first == vpn) return true;
    return false;
  }
  void add_inflight_walk(Vpn vpn) {
    for (auto& w : inflight_walks_) {
      if (w.first == vpn) {
        ++w.second;
        return;
      }
    }
    inflight_walks_.emplace_back(vpn, 1u);
  }
  void release_inflight_walk(Vpn vpn) {
    for (auto& w : inflight_walks_) {
      if (w.first != vpn) continue;
      if (--w.second == 0) {
        w = inflight_walks_.back();
        inflight_walks_.pop_back();
      }
      return;
    }
  }

  MmuConfig cfg_;
  AddressSpace& space_;
  MemorySystem& mem_;
  unsigned core_;
  Tlb l1_dtlb_;
  Tlb l2_tlb_;
  std::unique_ptr<Walker> walker_;
  /// Walks currently in flight on this core, keyed by vpn. A second op
  /// missing the TLBs for the same page coalesces onto the existing walk
  /// (MSHR-style) instead of duplicating its PTE accesses. At most mlp
  /// walks are ever in flight, so a flat vector with linear probes beats a
  /// hash map (no per-walk node allocation on the TLB-miss path).
  std::vector<std::pair<Vpn, unsigned>> inflight_walks_;
  Counters counters_;
};

/// One memory operation (translation + data access) advanced one event at a
/// time — the discrete-event engine's view of the Fig. 3/Fig. 11 workflow.
///
/// Contract: begin() at the op's issue time returns the first event time;
/// each step(now) performs exactly the memory accesses due at `now` and
/// returns the next event time; when done() the results are readable. This
/// keeps every shared-resource access (DRAM banks, channel slots, caches)
/// ordered by global simulation time across cores, which a synchronous
/// whole-op model cannot do.
class MmuOp {
 public:
  /// Starts the op. Returns the next event time.
  Cycle begin(Mmu& mmu, Cycle now, VirtAddr va, AccessType type);
  /// Advance at event time `now`; returns the next event time (call step()
  /// again then), or the completion time when the op finished.
  Cycle step(Cycle now);
  bool done() const { return stage_ == Stage::kDone; }

  Cycle issue_time() const { return issue_; }
  Cycle translation_done() const { return trans_done_; }
  Cycle finish_time() const { return finish_; }
  Cycle fault_cycles() const { return fault_cycles_; }
  bool walked() const { return walked_; }
  bool faulted() const { return fault_cycles_ > 0; }

 private:
  enum class Stage : std::uint8_t { kIdle, kWalk, kWaitWalk, kData, kDone };
  static constexpr Cycle kWalkPollInterval = 16;

  Cycle start_walk(Cycle now);
  Cycle on_walk_complete(Cycle now);
  Cycle start_data(Cycle now);

  Mmu* mmu_ = nullptr;
  VirtAddr va_ = 0;
  AccessType type_ = AccessType::kRead;
  Stage stage_ = Stage::kIdle;

  Walker::WalkPlan plan_;
  std::size_t step_idx_ = 0;       ///< next step within plan_.path.steps
  unsigned walk_accesses_ = 0;
  Cycle walk_begin_ = 0;           ///< after TLB lookups (paper's PTW start)
  Cycle plan_start_ = 0;           ///< start of the current plan's execution
  bool retried_after_fault_ = false;

  PhysAddr pa_ = 0;
  Cycle issue_ = 0;
  Cycle trans_done_ = 0;
  Cycle finish_ = 0;
  Cycle fault_cycles_ = 0;
  bool walked_ = false;
};

}  // namespace ndp
