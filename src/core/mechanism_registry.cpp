#include "core/mechanism_registry.h"

#include <stdexcept>

#include "common/strings.h"

namespace ndp {
namespace {

bool answers_to(const MechanismDescriptor& d, std::string_view name) {
  if (iequals(d.name, name)) return true;
  for (const std::string& alias : d.aliases)
    if (iequals(alias, name)) return true;
  return false;
}

/// All lookup names (canonical + aliases), for did-you-mean suggestions.
std::vector<std::string> all_lookup_names(
    const std::deque<MechanismDescriptor>& descriptors) {
  std::vector<std::string> out;
  for (const MechanismDescriptor& d : descriptors) {
    out.push_back(d.name);
    for (const std::string& a : d.aliases) out.push_back(a);
  }
  return out;
}

[[noreturn]] void spec_error(const MechanismDescriptor& d,
                             const std::string& why) {
  std::string msg = "mechanism '" + d.name + "': " + why;
  if (d.params.empty()) {
    msg += "; '" + d.name + "' takes no parameters";
  } else {
    msg += "; parameters: " + d.param_schema();
  }
  throw std::invalid_argument(msg);
}

}  // namespace

MechanismParams MechanismDescriptor::default_params() const {
  MechanismParams out;
  for (const ParamSpec& p : params) out.set(p.name, p.def);
  return out;
}

const ParamSpec* MechanismDescriptor::find_param(std::string_view name) const {
  for (const ParamSpec& p : params)
    if (iequals(p.name, name)) return &p;
  return nullptr;
}

std::string MechanismDescriptor::param_schema() const {
  std::string out;
  for (const ParamSpec& p : params) {
    if (!out.empty()) out += ", ";
    out += p.describe();
  }
  return out;
}

WalkerConfig MechanismDescriptor::walker_config(
    const MechanismParams& p) const {
  return make_walker ? make_walker(p) : walker;
}

MechanismRegistry::MechanismRegistry() {
  detail::register_builtin_mechanisms(*this);
}

MechanismRegistry& MechanismRegistry::instance() {
  static MechanismRegistry registry;
  return registry;
}

bool MechanismRegistry::add(MechanismDescriptor desc) {
  if (desc.name.empty() || !desc.make_page_table) return false;
  if (contains(desc.name)) return false;
  for (const std::string& alias : desc.aliases)
    if (contains(alias)) return false;
  // Schema sanity: unique knob names, defaults inside their own range.
  for (std::size_t i = 0; i < desc.params.size(); ++i) {
    for (std::size_t j = i + 1; j < desc.params.size(); ++j)
      if (iequals(desc.params[i].name, desc.params[j].name)) return false;
    try {
      desc.params[i].validate(desc.params[i].def);
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  descriptors_.push_back(std::move(desc));
  return true;
}

const MechanismDescriptor* MechanismRegistry::find(
    std::string_view name) const {
  for (const MechanismDescriptor& d : descriptors_)
    if (answers_to(d, name)) return &d;
  return nullptr;
}

const MechanismDescriptor& MechanismRegistry::at(std::string_view name) const {
  if (const MechanismDescriptor* d = find(name)) return *d;
  std::string msg = "unknown mechanism '";
  msg.append(name);
  msg += '\'';
  const std::string suggestion =
      closest_match(name, all_lookup_names(descriptors_));
  if (!suggestion.empty()) msg += "; did you mean '" + suggestion + "'?";
  msg += "; registered mechanisms:";
  for (const MechanismDescriptor& d : descriptors_) {
    msg += ' ';
    msg += d.name;
  }
  throw std::out_of_range(msg);
}

MechanismSpec MechanismRegistry::resolve(std::string_view text) const {
  const std::string_view spec = trim(text);
  const std::size_t paren = spec.find('(');

  MechanismSpec out;
  out.descriptor = &at(trim(spec.substr(0, paren)));
  const MechanismDescriptor& d = *out.descriptor;
  out.params = d.default_params();

  if (paren != std::string_view::npos) {
    if (spec.back() != ')')
      spec_error(d, "malformed spec '" + std::string(spec) +
                        "': expected 'name(key=value,...)'");
    std::string_view body = spec.substr(paren + 1);
    body.remove_suffix(1);  // the ')'

    std::vector<std::string> given;  // canonical names seen, for duplicates
    while (!trim(body).empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view item = trim(body.substr(0, comma));
      body = comma == std::string_view::npos ? std::string_view{}
                                             : body.substr(comma + 1);
      if (item.empty())
        spec_error(d, "empty parameter in '" + std::string(spec) + "'");
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos)
        spec_error(d, "expected key=value, got '" + std::string(item) + "'");
      const std::string_view key = trim(item.substr(0, eq));
      const std::string_view value = trim(item.substr(eq + 1));

      const ParamSpec* ps = d.find_param(key);
      if (!ps) {
        std::vector<std::string> known;
        for (const ParamSpec& p : d.params) known.push_back(p.name);
        std::string why = "unknown parameter '" + std::string(key) + "'";
        const std::string suggestion = closest_match(key, known);
        if (!suggestion.empty()) why += "; did you mean '" + suggestion + "'?";
        spec_error(d, why);
      }
      for (const std::string& seen : given)
        if (iequals(seen, ps->name))
          spec_error(d, "duplicate parameter '" + ps->name + "'");
      given.push_back(ps->name);
      out.params.set(ps->name, ps->parse(value));
    }
  }

  // Canonical spelling: name + the non-default parameters, schema order.
  std::string args;
  for (const ParamSpec& p : d.params) {
    const ParamValue* v = out.params.find(p.name);
    if (*v != p.def) {
      if (!args.empty()) args += ',';
      args += p.name + "=" + v->text();
    }
  }
  out.canonical = args.empty() ? d.name : d.name + "(" + args + ")";
  return out;
}

std::vector<std::string> MechanismRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(descriptors_.size());
  for (const MechanismDescriptor& d : descriptors_) out.push_back(d.name);
  return out;
}

std::vector<std::string> MechanismRegistry::builtin_names() const {
  std::vector<std::string> out;
  for (const MechanismDescriptor& d : descriptors_)
    if (d.builtin) out.push_back(d.name);
  return out;
}

bool register_mechanism(MechanismDescriptor desc) {
  return MechanismRegistry::instance().add(std::move(desc));
}

}  // namespace ndp
