#include "core/mechanism_registry.h"

#include <stdexcept>

#include "common/strings.h"

namespace ndp {
namespace {

bool answers_to(const MechanismDescriptor& d, std::string_view name) {
  if (iequals(d.name, name)) return true;
  for (const std::string& alias : d.aliases)
    if (iequals(alias, name)) return true;
  return false;
}

}  // namespace

MechanismRegistry::MechanismRegistry() {
  detail::register_builtin_mechanisms(*this);
}

MechanismRegistry& MechanismRegistry::instance() {
  static MechanismRegistry registry;
  return registry;
}

bool MechanismRegistry::add(MechanismDescriptor desc) {
  if (desc.name.empty() || !desc.make_page_table) return false;
  if (contains(desc.name)) return false;
  for (const std::string& alias : desc.aliases)
    if (contains(alias)) return false;
  descriptors_.push_back(std::move(desc));
  return true;
}

const MechanismDescriptor* MechanismRegistry::find(
    std::string_view name) const {
  for (const MechanismDescriptor& d : descriptors_)
    if (answers_to(d, name)) return &d;
  return nullptr;
}

const MechanismDescriptor& MechanismRegistry::at(std::string_view name) const {
  if (const MechanismDescriptor* d = find(name)) return *d;
  std::string msg = "unknown mechanism '";
  msg.append(name);
  msg += "'; registered mechanisms:";
  for (const MechanismDescriptor& d : descriptors_) {
    msg += ' ';
    msg += d.name;
  }
  throw std::out_of_range(msg);
}

std::vector<std::string> MechanismRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(descriptors_.size());
  for (const MechanismDescriptor& d : descriptors_) out.push_back(d.name);
  return out;
}

std::vector<std::string> MechanismRegistry::builtin_names() const {
  std::vector<std::string> out;
  for (const MechanismDescriptor& d : descriptors_)
    if (d.builtin) out.push_back(d.name);
  return out;
}

bool register_mechanism(MechanismDescriptor desc) {
  return MechanismRegistry::instance().add(std::move(desc));
}

}  // namespace ndp
