#include "core/mechanism.h"

#include <cassert>

#include "core/flat_page_table.h"
#include "translate/dipta_page_table.h"
#include "translate/ech_page_table.h"
#include "translate/hybrid_page_table.h"
#include "translate/radix_page_table.h"

namespace ndp {
namespace detail {
namespace {

/// Schema entry for one level's PWC entry count. 32 entries is the shared
/// PwcConfig default; counts must divide by the 4-way associativity.
ParamSpec pwc_size_spec(unsigned level) {
  return ParamSpec::uint_spec(
      "pwc_l" + std::to_string(level), 32, 4, 4096,
      "PWC entries at level " + std::to_string(level), /*multiple_of=*/4);
}

/// Attach per-level `pwc_lN` knobs for every PWC level of `d.walker` and a
/// make_walker that applies the resolved counts.
void add_pwc_sizing(MechanismDescriptor& d) {
  for (unsigned level : d.walker.pwc_levels)
    d.params.push_back(pwc_size_spec(level));
  const WalkerConfig base = d.walker;
  d.make_walker = [base](const MechanismParams& p) {
    WalkerConfig wc = base;
    for (unsigned level : wc.pwc_levels)
      wc.pwc_entries[level] = static_cast<unsigned>(
          p.get_uint("pwc_l" + std::to_string(level)));
    return wc;
  };
}

}  // namespace

void register_builtin_mechanisms(MechanismRegistry& registry) {
  // Paper §VI baseline. One PWC per level (§V-C observes L4/L3 nearly
  // always hit while L2/L1 average ~15%), each individually sizeable.
  MechanismDescriptor radix;
  radix.name = "Radix";
  radix.aliases = {"x86", "baseline"};
  radix.summary = "4-level x86-64 radix table, PWCs at every level";
  radix.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
  };
  radix.walker.pwc_levels = {4, 3, 2, 1};
  add_pwc_sizing(radix);
  radix.builtin = true;
  registry.add(std::move(radix));

  // Hashed table: no radix prefixes to cache; PTEs stay cacheable. `ways`
  // is the cuckoo associativity (Skarlatos et al. evaluate 2/3/4-way);
  // `probes` bounds how many buckets the walker probes concurrently
  // (0 = all ways in one parallel group, the classic configuration).
  MechanismDescriptor ech;
  ech.name = "ECH";
  ech.aliases = {"elastic-cuckoo"};
  ech.summary = "elastic cuckoo hash table, parallel probes, no PWCs";
  ech.params = {
      ParamSpec::uint_spec("ways", 3, 2, 8, "cuckoo hash ways (buckets per VPN)"),
      ParamSpec::uint_spec("probes", 0, 0, 8,
                           "parallel probes per group (0 = all ways)")};
  ech.make_page_table = [](PhysicalMemory& pm, const MechanismParams& p) {
    EchConfig cfg;
    cfg.ways = static_cast<unsigned>(p.get_uint("ways"));
    cfg.probe_width = static_cast<unsigned>(p.get_uint("probes"));
    return std::make_unique<EchPageTable>(pm, cfg);
  };
  ech.walker.pwc_levels = {};
  ech.builtin = true;
  registry.add(std::move(ech));

  // 3-level walk; the PD (L2) leaf is the translation itself and is covered
  // by the TLB, so PWCs sit at L4/L3.
  MechanismDescriptor huge;
  huge.name = "HugePage";
  huge.aliases = {"huge", "thp"};
  huge.summary = "2 MB pages on a 3-level radix table, PWCs at L4/L3";
  huge.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/2);
  };
  huge.walker.pwc_levels = {4, 3};
  add_pwc_sizing(huge);
  huge.huge_pages = true;
  huge.builtin = true;
  registry.add(std::move(huge));

  // Paper §V: keep the high-hit-rate L4/L3 PWCs (sizeable per level), no
  // PWC for the flattened level, and bypass the cache hierarchy for
  // metadata.
  MechanismDescriptor ndpage;
  ndpage.name = "NDPage";
  ndpage.aliases = {"flat"};
  ndpage.summary = "flattened L2/L1 table + metadata cache bypass (this paper)";
  ndpage.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<FlatPageTable>(pm);
  };
  ndpage.walker.pwc_levels = {4, 3};
  ndpage.walker.bypass_caches_for_metadata = true;
  add_pwc_sizing(ndpage);
  ndpage.builtin = true;
  registry.add(std::move(ndpage));

  // Ideal still needs a functional map to place data physically; the radix
  // structure is never timed because the walker is never invoked.
  MechanismDescriptor ideal;
  ideal.name = "Ideal";
  ideal.aliases = {"perfect-tlb"};
  ideal.summary = "every translation hits a zero-latency TLB (limit case)";
  ideal.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
  };
  ideal.walker.pwc_levels = {};
  ideal.models_translation = false;
  ideal.builtin = true;
  registry.add(std::move(ideal));

  // One near-data tag access per walk; no radix prefixes to cache.
  MechanismDescriptor dipta;
  dipta.name = "DIPTA";
  dipta.summary = "restricted-associativity near-data translation (related work)";
  dipta.make_page_table = [](PhysicalMemory& pm, const MechanismParams&) {
    return std::make_unique<DiptaPageTable>(pm);
  };
  dipta.walker.pwc_levels = {};
  dipta.builtin = true;
  registry.add(std::move(dipta));

  // POM-style hybrid: a direct-mapped one-level flat window probed first,
  // radix fallback (absorbed by L4/L3 PWCs) for conflicting VPNs.
  MechanismDescriptor hybrid;
  hybrid.name = "Hybrid";
  hybrid.aliases = {"pom", "flat-radix"};
  hybrid.summary = "1-level flat window + radix fallback (POM-style)";
  hybrid.params = {ParamSpec::uint_spec(
      "flat_bits", 20, 14, 24, "log2 of direct-mapped flat-window slots")};
  hybrid.make_page_table = [](PhysicalMemory& pm, const MechanismParams& p) {
    HybridConfig cfg;
    cfg.flat_bits = static_cast<unsigned>(p.get_uint("flat_bits"));
    return std::make_unique<HybridPageTable>(pm, cfg);
  };
  hybrid.walker.pwc_levels = {4, 3};
  add_pwc_sizing(hybrid);
  hybrid.builtin = true;
  registry.add(std::move(hybrid));
}

}  // namespace detail

std::string to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kRadix: return "Radix";
    case Mechanism::kEch: return "ECH";
    case Mechanism::kHugePage: return "HugePage";
    case Mechanism::kNdpage: return "NDPage";
    case Mechanism::kIdeal: return "Ideal";
    case Mechanism::kDipta: return "DIPTA";
    case Mechanism::kHybrid: return "Hybrid";
  }
  return "?";
}

const MechanismDescriptor& descriptor_of(Mechanism m) {
  return MechanismRegistry::instance().at(to_string(m));
}

MechanismSpec resolve_mechanism_spec(Mechanism fallback,
                                     std::string_view name) {
  return MechanismRegistry::instance().resolve(
      name.empty() ? std::string_view(to_string(fallback)) : name);
}

const MechanismDescriptor& resolve_mechanism(Mechanism fallback,
                                             std::string_view name) {
  return *resolve_mechanism_spec(fallback, name).descriptor;
}

std::optional<Mechanism> mechanism_from_string(std::string_view name) {
  const MechanismDescriptor* d = MechanismRegistry::instance().find(name);
  if (!d) return std::nullopt;
  for (Mechanism m : kExtendedMechanisms)
    if (to_string(m) == d->name) return m;
  return std::nullopt;  // registered, but not a built-in
}

bool uses_huge_pages(Mechanism m) { return descriptor_of(m).huge_pages; }

bool models_translation(Mechanism m) {
  return descriptor_of(m).models_translation;
}

std::unique_ptr<PageTable> make_page_table(Mechanism m, PhysicalMemory& pm) {
  const MechanismDescriptor& d = descriptor_of(m);
  return d.make_page_table(pm, d.default_params());
}

WalkerConfig make_walker_config(Mechanism m) {
  const MechanismDescriptor& d = descriptor_of(m);
  return d.walker_config(d.default_params());
}

}  // namespace ndp
