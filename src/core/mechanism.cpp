#include "core/mechanism.h"

#include <cassert>

#include "core/flat_page_table.h"
#include "translate/dipta_page_table.h"
#include "translate/ech_page_table.h"
#include "translate/radix_page_table.h"

namespace ndp {
namespace detail {

void register_builtin_mechanisms(MechanismRegistry& registry) {
  // Paper §VI baseline. One PWC per level (§V-C observes L4/L3 nearly
  // always hit while L2/L1 average ~15%).
  MechanismDescriptor radix;
  radix.name = "Radix";
  radix.aliases = {"x86", "baseline"};
  radix.summary = "4-level x86-64 radix table, PWCs at every level";
  radix.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
  };
  radix.walker.pwc_levels = {4, 3, 2, 1};
  radix.builtin = true;
  registry.add(std::move(radix));

  // Hashed table: no radix prefixes to cache; PTEs stay cacheable.
  MechanismDescriptor ech;
  ech.name = "ECH";
  ech.aliases = {"elastic-cuckoo"};
  ech.summary = "elastic cuckoo hash table, 3 parallel probes, no PWCs";
  ech.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<EchPageTable>(pm);
  };
  ech.walker.pwc_levels = {};
  ech.builtin = true;
  registry.add(std::move(ech));

  // 3-level walk; the PD (L2) leaf is the translation itself and is covered
  // by the TLB, so PWCs sit at L4/L3.
  MechanismDescriptor huge;
  huge.name = "HugePage";
  huge.aliases = {"huge", "thp"};
  huge.summary = "2 MB pages on a 3-level radix table, PWCs at L4/L3";
  huge.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/2);
  };
  huge.walker.pwc_levels = {4, 3};
  huge.huge_pages = true;
  huge.builtin = true;
  registry.add(std::move(huge));

  // Paper §V: keep the high-hit-rate L4/L3 PWCs, no PWC for the flattened
  // level, and bypass the cache hierarchy for metadata.
  MechanismDescriptor ndpage;
  ndpage.name = "NDPage";
  ndpage.aliases = {"flat"};
  ndpage.summary = "flattened L2/L1 table + metadata cache bypass (this paper)";
  ndpage.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<FlatPageTable>(pm);
  };
  ndpage.walker.pwc_levels = {4, 3};
  ndpage.walker.bypass_caches_for_metadata = true;
  ndpage.builtin = true;
  registry.add(std::move(ndpage));

  // Ideal still needs a functional map to place data physically; the radix
  // structure is never timed because the walker is never invoked.
  MechanismDescriptor ideal;
  ideal.name = "Ideal";
  ideal.aliases = {"perfect-tlb"};
  ideal.summary = "every translation hits a zero-latency TLB (limit case)";
  ideal.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
  };
  ideal.walker.pwc_levels = {};
  ideal.models_translation = false;
  ideal.builtin = true;
  registry.add(std::move(ideal));

  // One near-data tag access per walk; no radix prefixes to cache.
  MechanismDescriptor dipta;
  dipta.name = "DIPTA";
  dipta.summary = "restricted-associativity near-data translation (related work)";
  dipta.make_page_table = [](PhysicalMemory& pm) {
    return std::make_unique<DiptaPageTable>(pm);
  };
  dipta.walker.pwc_levels = {};
  dipta.builtin = true;
  registry.add(std::move(dipta));
}

}  // namespace detail

std::string to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kRadix: return "Radix";
    case Mechanism::kEch: return "ECH";
    case Mechanism::kHugePage: return "HugePage";
    case Mechanism::kNdpage: return "NDPage";
    case Mechanism::kIdeal: return "Ideal";
    case Mechanism::kDipta: return "DIPTA";
  }
  return "?";
}

const MechanismDescriptor& descriptor_of(Mechanism m) {
  return MechanismRegistry::instance().at(to_string(m));
}

const MechanismDescriptor& resolve_mechanism(Mechanism fallback,
                                             std::string_view name) {
  return name.empty() ? descriptor_of(fallback)
                      : MechanismRegistry::instance().at(name);
}

std::optional<Mechanism> mechanism_from_string(std::string_view name) {
  const MechanismDescriptor* d = MechanismRegistry::instance().find(name);
  if (!d) return std::nullopt;
  for (Mechanism m : kExtendedMechanisms)
    if (to_string(m) == d->name) return m;
  return std::nullopt;  // registered, but not a built-in
}

bool uses_huge_pages(Mechanism m) { return descriptor_of(m).huge_pages; }

bool models_translation(Mechanism m) {
  return descriptor_of(m).models_translation;
}

std::unique_ptr<PageTable> make_page_table(Mechanism m, PhysicalMemory& pm) {
  return descriptor_of(m).make_page_table(pm);
}

WalkerConfig make_walker_config(Mechanism m) { return descriptor_of(m).walker; }

}  // namespace ndp
