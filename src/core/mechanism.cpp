#include "core/mechanism.h"

#include <cassert>

#include "core/flat_page_table.h"
#include "translate/dipta_page_table.h"
#include "translate/ech_page_table.h"
#include "translate/radix_page_table.h"

namespace ndp {

std::string to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kRadix: return "Radix";
    case Mechanism::kEch: return "ECH";
    case Mechanism::kHugePage: return "HugePage";
    case Mechanism::kNdpage: return "NDPage";
    case Mechanism::kIdeal: return "Ideal";
    case Mechanism::kDipta: return "DIPTA";
  }
  return "?";
}

bool uses_huge_pages(Mechanism m) { return m == Mechanism::kHugePage; }

bool models_translation(Mechanism m) { return m != Mechanism::kIdeal; }

std::unique_ptr<PageTable> make_page_table(Mechanism m, PhysicalMemory& pm) {
  switch (m) {
    case Mechanism::kRadix:
      return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
    case Mechanism::kEch:
      return std::make_unique<EchPageTable>(pm);
    case Mechanism::kHugePage:
      return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/2);
    case Mechanism::kNdpage:
      return std::make_unique<FlatPageTable>(pm);
    case Mechanism::kIdeal:
      // Ideal still needs a functional map to place data physically; the
      // radix structure is never timed because the walker is never invoked.
      return std::make_unique<RadixPageTable>(pm, /*preferred_leaf_level=*/1);
    case Mechanism::kDipta:
      return std::make_unique<DiptaPageTable>(pm);
  }
  assert(false);
  return nullptr;
}

WalkerConfig make_walker_config(Mechanism m) {
  WalkerConfig cfg;
  switch (m) {
    case Mechanism::kRadix:
      // Conventional MMU: one PWC per level (paper §V-C observes L4/L3
      // nearly always hit while L2/L1 average ~15%).
      cfg.pwc_levels = {4, 3, 2, 1};
      cfg.bypass_caches_for_metadata = false;
      break;
    case Mechanism::kEch:
      // Hashed table: no radix prefixes to cache; PTEs stay cacheable.
      cfg.pwc_levels = {};
      cfg.bypass_caches_for_metadata = false;
      break;
    case Mechanism::kHugePage:
      // 3-level walk; the PD (L2) leaf is the translation itself and is
      // covered by the TLB, so PWCs sit at L4/L3.
      cfg.pwc_levels = {4, 3};
      cfg.bypass_caches_for_metadata = false;
      break;
    case Mechanism::kNdpage:
      // Paper §V: keep the high-hit-rate L4/L3 PWCs, no PWC for the
      // flattened level, and bypass the cache hierarchy for metadata.
      cfg.pwc_levels = {4, 3};
      cfg.bypass_caches_for_metadata = true;
      break;
    case Mechanism::kIdeal:
      cfg.pwc_levels = {};
      cfg.bypass_caches_for_metadata = false;
      break;
    case Mechanism::kDipta:
      // One near-data tag access per walk; no radix prefixes to cache.
      cfg.pwc_levels = {};
      cfg.bypass_caches_for_metadata = false;
      break;
  }
  return cfg;
}

}  // namespace ndp
