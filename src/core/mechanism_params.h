// Typed mechanism parameters: the schema a translation mechanism publishes
// (name, type, default, range per knob) and the resolved parameter sets its
// factories receive.
//
// A MechanismDescriptor declares its knobs as ParamSpecs ("ways:uint=3
// [2..8]"); the registry parses `name(key=value,...)` spec strings against
// that schema — case-insensitively, with did-you-mean diagnostics — and
// hands the factories a fully resolved MechanismParams (every schema
// parameter present, defaults applied). See core/mechanism_registry.h for
// the resolution entry point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ndp {

enum class ParamType { kUInt, kDouble, kBool };

std::string to_string(ParamType t);

/// One typed parameter value. Accessors are strict: asking for the wrong
/// type throws std::logic_error (a factory/schema mismatch is a programming
/// error, not bad user input).
class ParamValue {
 public:
  ParamValue() = default;
  static ParamValue of_uint(std::uint64_t v);
  static ParamValue of_double(double v);
  static ParamValue of_bool(bool v);

  ParamType type() const { return type_; }
  std::uint64_t as_uint() const;
  double as_double() const;
  bool as_bool() const;

  /// Canonical text form ("4", "0.5", "true") — used in canonical spec
  /// strings and result metadata, so it must be deterministic.
  std::string text() const;

  bool operator==(const ParamValue& o) const;
  bool operator!=(const ParamValue& o) const { return !(*this == o); }

 private:
  ParamType type_ = ParamType::kUInt;
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  bool b_ = false;
};

/// Schema entry for one knob: name, type, default, inclusive range.
struct ParamSpec {
  std::string name;  ///< canonical spelling; lookup is case-insensitive
  ParamType type = ParamType::kUInt;
  ParamValue def;
  /// Inclusive bounds; meaningful for numeric types only.
  ParamValue min, max;
  /// kUInt only: accepted values must be divisible by this (e.g. PWC entry
  /// counts must be a multiple of the associativity).
  std::uint64_t multiple_of = 1;
  std::string summary;

  static ParamSpec uint_spec(std::string name, std::uint64_t def,
                             std::uint64_t min, std::uint64_t max,
                             std::string summary, std::uint64_t multiple_of = 1);
  static ParamSpec double_spec(std::string name, double def, double min,
                               double max, std::string summary);
  static ParamSpec bool_spec(std::string name, bool def, std::string summary);

  /// "ways:uint=3 [2..8]" — the form shown by `ndpsim --list-mechanisms`
  /// and embedded in unknown-parameter diagnostics.
  std::string describe() const;

  /// Parse + range-check a value of this spec's type. Throws
  /// std::invalid_argument naming the parameter, the expected type/range,
  /// and the offending text.
  ParamValue parse(std::string_view text) const;
  /// Range-check an already-typed value (same diagnostics as parse()).
  void validate(const ParamValue& v) const;
};

/// A resolved parameter set: one entry per schema parameter, in schema
/// order, defaults applied. Factories read knobs through the typed getters.
class MechanismParams {
 public:
  const ParamValue* find(std::string_view name) const;
  std::uint64_t get_uint(std::string_view name) const;
  double get_double(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  void set(std::string name, ParamValue v);

  bool empty() const { return entries_.empty(); }
  const std::vector<std::pair<std::string, ParamValue>>& entries() const {
    return entries_;
  }

  /// "ways=3,probes=0" — full resolved list in schema order.
  std::string text() const;

 private:
  std::vector<std::pair<std::string, ParamValue>> entries_;
};

}  // namespace ndp
