// NDPage's flattened L2/L1 page table (paper §V-B).
//
// The last two radix levels merge into a single node of
// 2^9 x 2^9 = 262,144 entries indexed by 18 virtual-address bits, stored in
// one physically contiguous 2 MB region (a buddy order-9 block). A walk is
// three sequential PTE reads — L4, L3, flattened L2/L1 — instead of four,
// and the L4/L3 reads are almost always absorbed by their PWCs, leaving a
// single (bypassed) memory access per walk.
//
// The "flattened" marker bit the paper adds to control registers and PTEs
// is represented structurally: L3 entries point at FlatNode objects, and
// WalkPath steps carry WalkStep::kFlatLevel so the walker selects 18 index
// bits — exactly the hardware behaviour the bit enables.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "os/phys_mem.h"
#include "translate/page_table.h"

namespace ndp {

class FlatPageTable : public PageTable {
 public:
  static constexpr unsigned kFlatBits = 18;
  static constexpr std::uint64_t kFlatEntries = 1ull << kFlatBits;  // 262,144
  static constexpr unsigned kFlatBlockOrder = 9;  ///< 2 MB contiguous node

  explicit FlatPageTable(PhysicalMemory& pm);
  ~FlatPageTable() override;

  MapResult map(Vpn vpn, Pfn pfn, unsigned page_shift = kPageShift) override;
  bool unmap(Vpn vpn) override;
  std::optional<Pfn> lookup(Vpn vpn) const override;
  bool remap(Vpn vpn, Pfn new_pfn) override;
  void walk_into(Vpn vpn, WalkPath& out) const override;
  std::vector<LevelOccupancy> occupancy() const override;
  std::string name() const override { return "NDPageFlat"; }
  std::uint64_t table_bytes() const override;
  bool save_state(BlobWriter& out) const override;
  bool load_state(BlobReader& in) override;

  std::uint64_t flat_node_count() const { return flat_nodes_.size(); }

 private:
  struct RadixNode {
    Pfn frame = 0;
    std::uint32_t valid = 0;
    std::array<std::uint32_t, kPtesPerNode> child{};  ///< id+1; 0 = empty
  };
  struct FlatNode {
    Pfn base_frame = 0;  ///< order-9 block base
    std::uint64_t valid = 0;
    std::vector<std::uint64_t> ent;  ///< (pfn<<1)|present
    FlatNode() : ent(kFlatEntries, 0) {}
  };

  /// Index of the L3 node slot and flat node for a vpn.
  static unsigned l4_index(Vpn vpn) { return radix_index(vpn, 4); }
  static unsigned l3_index(Vpn vpn) { return radix_index(vpn, 3); }

  FlatNode* find_flat(Vpn vpn) const;
  FlatNode& get_or_create_flat(Vpn vpn, MapResult* out);

  PhysicalMemory& pm_;
  RadixNode root_;                       ///< the single L4 node
  std::vector<std::unique_ptr<RadixNode>> l3_nodes_;
  std::vector<std::unique_ptr<FlatNode>> flat_nodes_;
};

}  // namespace ndp
