#include "core/system.h"

#include <cassert>

namespace ndp {

std::string to_string(SystemKind k) {
  return k == SystemKind::kCpu ? "CPU" : "NDP";
}

SystemConfig SystemConfig::ndp(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kNdp;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

SystemConfig SystemConfig::cpu(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kCpu;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

System::System(const SystemConfig& cfg) : cfg_(cfg) {
  assert(cfg_.num_cores >= 1);
  mlp_ = cfg_.mlp ? cfg_.mlp : 8u;

  PhysMemConfig pmc;
  pmc.bytes = cfg_.phys_bytes;
  pmc.noise_fraction = cfg_.noise_fraction;
  pmc.seed = cfg_.seed;
  phys_ = std::make_unique<PhysicalMemory>(pmc);

  MemorySystemConfig msc = cfg_.kind == SystemKind::kNdp
                               ? MemorySystemConfig::ndp(cfg_.num_cores)
                               : MemorySystemConfig::cpu(cfg_.num_cores);
  if (cfg_.dram_override) msc.dram = *cfg_.dram_override;
  mem_ = std::make_unique<MemorySystem>(msc);

  space_ = std::make_unique<AddressSpace>(
      *phys_, make_page_table(cfg_.mechanism, *phys_),
      uses_huge_pages(cfg_.mechanism));

  MmuConfig mmuc;
  mmuc.walker = make_walker_config(cfg_.mechanism);
  if (cfg_.bypass_override)
    mmuc.walker.bypass_caches_for_metadata = *cfg_.bypass_override;
  if (cfg_.pwc_levels_override)
    mmuc.walker.pwc_levels = *cfg_.pwc_levels_override;
  mmuc.ideal = !models_translation(cfg_.mechanism);
  for (unsigned c = 0; c < cfg_.num_cores; ++c)
    mmus_.push_back(std::make_unique<Mmu>(mmuc, *space_, *mem_, c));

  // Reclaim/compaction tear-downs must not leave stale TLB entries.
  space_->set_shootdown_hook([this](Vpn vpn) {
    const VirtAddr va = vpn << kPageShift;
    for (auto& mmu : mmus_) {
      mmu->l1_dtlb().invalidate(va);
      mmu->l2_tlb().invalidate(va);
    }
  });
}

void System::reset_stats() {
  mem_->reset_stats();
  phys_->stats().clear();
  space_->stats().clear();
  for (auto& mmu : mmus_) {
    mmu->reset_counters();
    mmu->l1_dtlb().reset_counters();
    mmu->l2_tlb().reset_counters();
    mmu->walker().reset_counters();
    for (unsigned level : mmu->walker().pwcs().levels())
      mmu->walker().pwcs().level(level)->reset_counters();
  }
}

StatSet System::collect_stats() const {
  StatSet out = mem_->collect_stats();
  auto add_all = [&out](const StatSet& s, const std::string& prefix) {
    for (const auto& [k, v] : s.counters()) out.inc(prefix + "." + k, v);
    for (const auto& [k, a] : s.averages()) out.merge_average(prefix + "." + k, a);
  };
  add_all(phys_->stats(), "os");
  add_all(space_->stats(), "as");
  for (unsigned c = 0; c < cfg_.num_cores; ++c) {
    const Mmu& m = *mmus_[c];
    add_all(m.snapshot(), "mmu");
    add_all(m.l1_dtlb().snapshot(), "tlb.l1d");
    add_all(m.l2_tlb().snapshot(), "tlb.l2");
    add_all(m.walker().snapshot(), "walker");
    for (unsigned level : m.walker().pwcs().levels()) {
      const Pwc* p = m.walker().pwcs().level(level);
      add_all(p->snapshot(), "pwc.l" + std::to_string(level));
    }
  }
  return out;
}

}  // namespace ndp
