#include "core/system.h"

#include <cassert>

#include "common/strings.h"

namespace ndp {

std::string to_string(SystemKind k) {
  return k == SystemKind::kCpu ? "CPU" : "NDP";
}

std::optional<SystemKind> system_kind_from_string(std::string_view name) {
  if (iequals(name, "ndp")) return SystemKind::kNdp;
  if (iequals(name, "cpu")) return SystemKind::kCpu;
  return std::nullopt;
}

WalkerConfig Overrides::apply_to(WalkerConfig walker) const {
  if (bypass) walker.bypass_caches_for_metadata = *bypass;
  if (pwc_levels) walker.pwc_levels = *pwc_levels;
  return walker;
}

MechanismSpec SystemConfig::mechanism_spec() const {
  return resolve_mechanism_spec(mechanism, mechanism_name);
}

const MechanismDescriptor& SystemConfig::descriptor() const {
  return *mechanism_spec().descriptor;
}

SystemConfig SystemConfig::ndp(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kNdp;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

SystemConfig SystemConfig::cpu(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kCpu;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

SystemConfig SystemConfig::ndp(unsigned cores, std::string_view mechanism) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kNdp;
  cfg.num_cores = cores;
  cfg.mechanism_name = mechanism;
  return cfg;
}

SystemConfig SystemConfig::cpu(unsigned cores, std::string_view mechanism) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kCpu;
  cfg.num_cores = cores;
  cfg.mechanism_name = mechanism;
  return cfg;
}

System::System(const SystemConfig& cfg) : cfg_(cfg) {
  assert(cfg_.num_cores >= 1);
  mlp_ = cfg_.mlp ? cfg_.mlp : 8u;

  // Resolves through the registry: throws on an unknown mechanism name or
  // a parameter spec violating the mechanism's schema.
  const MechanismSpec spec = cfg_.mechanism_spec();
  const MechanismDescriptor& mech = *spec.descriptor;

  PhysMemConfig pmc;
  pmc.bytes = cfg_.phys_bytes;
  pmc.noise_fraction = cfg_.noise_fraction;
  pmc.seed = cfg_.seed;
  phys_ = std::make_unique<PhysicalMemory>(pmc);

  MemorySystemConfig msc = cfg_.kind == SystemKind::kNdp
                               ? MemorySystemConfig::ndp(cfg_.num_cores)
                               : MemorySystemConfig::cpu(cfg_.num_cores);
  if (cfg_.overrides.dram) msc.dram = *cfg_.overrides.dram;
  mem_ = std::make_unique<MemorySystem>(msc);

  space_ = std::make_unique<AddressSpace>(
      *phys_, mech.make_page_table(*phys_, spec.params), mech.huge_pages);

  MmuConfig mmuc;
  mmuc.walker = cfg_.overrides.apply_to(mech.walker_config(spec.params));
  mmuc.ideal = !mech.models_translation;
  for (unsigned c = 0; c < cfg_.num_cores; ++c)
    mmus_.push_back(std::make_unique<Mmu>(mmuc, *space_, *mem_, c));

  // Reclaim/compaction tear-downs must not leave stale TLB entries.
  space_->set_shootdown_hook([this](Vpn vpn) {
    const VirtAddr va = vpn << kPageShift;
    for (auto& mmu : mmus_) {
      mmu->l1_dtlb().invalidate(va);
      mmu->l2_tlb().invalidate(va);
    }
  });
}

void System::reset_stats() {
  mem_->reset_stats();
  phys_->stats().clear();
  space_->stats().clear();
  for (auto& mmu : mmus_) {
    mmu->reset_counters();
    mmu->l1_dtlb().reset_counters();
    mmu->l2_tlb().reset_counters();
    mmu->walker().reset_counters();
    for (unsigned level : mmu->walker().pwcs().levels())
      mmu->walker().pwcs().level(level)->reset_counters();
  }
}

StatSet System::collect_stats() const {
  StatSet out = mem_->collect_stats();
  auto add_all = [&out](const StatSet& s, const std::string& prefix) {
    for (const auto& [k, v] : s.counters()) out.inc(prefix + "." + k, v);
    for (const auto& [k, a] : s.averages()) out.merge_average(prefix + "." + k, a);
  };
  add_all(phys_->stats(), "os");
  add_all(space_->stats(), "as");
  for (unsigned c = 0; c < cfg_.num_cores; ++c) {
    const Mmu& m = *mmus_[c];
    add_all(m.snapshot(), "mmu");
    add_all(m.l1_dtlb().snapshot(), "tlb.l1d");
    add_all(m.l2_tlb().snapshot(), "tlb.l2");
    add_all(m.walker().snapshot(), "walker");
    for (unsigned level : m.walker().pwcs().levels()) {
      const Pwc* p = m.walker().pwcs().level(level);
      add_all(p->snapshot(), "pwc.l" + std::to_string(level));
    }
  }
  return out;
}

}  // namespace ndp
