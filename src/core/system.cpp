#include "core/system.h"

#include <cassert>
#include <stdexcept>

#include "common/strings.h"

namespace ndp {

std::string to_string(SystemKind k) {
  return k == SystemKind::kCpu ? "CPU" : "NDP";
}

std::optional<SystemKind> system_kind_from_string(std::string_view name) {
  if (iequals(name, "ndp")) return SystemKind::kNdp;
  if (iequals(name, "cpu")) return SystemKind::kCpu;
  return std::nullopt;
}

WalkerConfig Overrides::apply_to(WalkerConfig walker) const {
  if (bypass) walker.bypass_caches_for_metadata = *bypass;
  if (pwc_levels) walker.pwc_levels = *pwc_levels;
  return walker;
}

MechanismSpec SystemConfig::mechanism_spec() const {
  return resolve_mechanism_spec(mechanism, mechanism_name);
}

const MechanismDescriptor& SystemConfig::descriptor() const {
  return *mechanism_spec().descriptor;
}

SystemConfig SystemConfig::ndp(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kNdp;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

SystemConfig SystemConfig::cpu(unsigned cores, Mechanism m) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kCpu;
  cfg.num_cores = cores;
  cfg.mechanism = m;
  return cfg;
}

SystemConfig SystemConfig::ndp(unsigned cores, std::string_view mechanism) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kNdp;
  cfg.num_cores = cores;
  cfg.mechanism_name = mechanism;
  return cfg;
}

SystemConfig SystemConfig::cpu(unsigned cores, std::string_view mechanism) {
  SystemConfig cfg;
  cfg.kind = SystemKind::kCpu;
  cfg.num_cores = cores;
  cfg.mechanism_name = mechanism;
  return cfg;
}

namespace {

PhysMemConfig phys_config_of(const SystemConfig& cfg) {
  PhysMemConfig pmc;
  pmc.bytes = cfg.phys_bytes;
  pmc.noise_fraction = cfg.noise_fraction;
  pmc.seed = cfg.seed;
  return pmc;
}

MemorySystemConfig memory_config_of(const SystemConfig& cfg) {
  MemorySystemConfig msc = cfg.kind == SystemKind::kNdp
                               ? MemorySystemConfig::ndp(cfg.num_cores)
                               : MemorySystemConfig::cpu(cfg.num_cores);
  if (cfg.overrides.dram) msc.dram = *cfg.overrides.dram;
  return msc;
}

}  // namespace

bool SystemImage::compatible_with(const SystemConfig& cfg) const {
  return cfg.kind == config.kind && cfg.num_cores == config.num_cores &&
         cfg.phys_bytes == config.phys_bytes &&
         cfg.noise_fraction == config.noise_fraction &&
         cfg.seed == config.seed && mesh.matches(memory_config_of(cfg).mesh());
}

SystemImage System::prepare_image(const SystemConfig& cfg) {
  return SystemImage{cfg, PhysicalMemory(phys_config_of(cfg)).snapshot(),
                     Mesh::precompute(memory_config_of(cfg).mesh())};
}

System::System(const SystemConfig& cfg) : System(cfg, nullptr) {}

System::System(const SystemConfig& cfg, const SystemImage& image)
    : System(cfg, &image) {}

System::System(const SystemConfig& cfg, const SystemImage* image) : cfg_(cfg) {
  assert(cfg_.num_cores >= 1);
  mlp_ = cfg_.mlp ? cfg_.mlp : 8u;

  // Resolves through the registry: throws on an unknown mechanism name or
  // a parameter spec violating the mechanism's schema — before any
  // expensive substrate work.
  (void)cfg_.mechanism_spec();

  if (image) {
    if (!image->compatible_with(cfg_))
      throw std::invalid_argument(
          "System: image was prepared for a different (kind, cores, seed, "
          "overrides) key; build one with System::prepare_image(cfg)");
    phys_ = std::make_unique<PhysicalMemory>(image->phys);
  } else {
    phys_ = std::make_unique<PhysicalMemory>(phys_config_of(cfg_));
  }
  assemble(image);
}

void System::reset_to(const SystemImage& image) {
  if (!image.compatible_with(cfg_))
    throw std::invalid_argument(
        "System::reset_to: image was prepared for a different (kind, cores, "
        "seed, overrides) key");
  // Tear down the consumers of the substrate first: the old address space
  // frees its page-table frames into state that restore() overwrites next.
  mmus_.clear();
  space_.reset();
  phys_->restore(image.phys);
  assemble(&image);
}

void System::assemble(const SystemImage* image) {
  const MechanismSpec spec = cfg_.mechanism_spec();
  const MechanismDescriptor& mech = *spec.descriptor;

  mem_ = std::make_unique<MemorySystem>(memory_config_of(cfg_),
                                        image ? &image->mesh : nullptr);

  space_ = std::make_unique<AddressSpace>(
      *phys_, mech.make_page_table(*phys_, spec.params), mech.huge_pages);

  MmuConfig mmuc;
  mmuc.walker = cfg_.overrides.apply_to(mech.walker_config(spec.params));
  mmuc.ideal = !mech.models_translation;
  mmus_.clear();
  for (unsigned c = 0; c < cfg_.num_cores; ++c)
    mmus_.push_back(std::make_unique<Mmu>(mmuc, *space_, *mem_, c));

  // Reclaim/compaction tear-downs must not leave stale TLB entries.
  space_->set_shootdown_hook([this](Vpn vpn) {
    const VirtAddr va = vpn << kPageShift;
    for (auto& mmu : mmus_) {
      mmu->l1_dtlb().invalidate(va);
      mmu->l2_tlb().invalidate(va);
    }
  });
}

std::shared_ptr<const PreparedImage> System::snapshot_prepared(
    std::shared_ptr<const SystemImage> base) const {
  BlobWriter pt;
  if (!space_->page_table().save_state(pt)) return nullptr;
  BlobWriter sp;
  space_->save_state(sp);
  BlobWriter st;
  phys_->stats().save_state(st);
  return std::make_shared<const PreparedImage>(
      PreparedImage{std::move(base), phys_->snapshot(), pt.take(), sp.take(),
                    st.take()});
}

bool System::adopt_prepared(const PreparedImage& prep) {
  if (!prep.base || !prep.base->compatible_with(cfg_)) return false;
  // Pool first: page-table and space loads adopt frames the restored pool
  // already accounts for (they never allocate or free). The constructor's
  // own deterministic allocations are part of the snapshot's history, so
  // dropping them without freeing is consistent with the restored bitmaps.
  phys_->restore(prep.ready);
  BlobReader pt(prep.pt_state);
  if (!space_->page_table().load_state(pt)) return false;
  BlobReader sp(prep.space_state);
  if (!space_->load_state(sp)) return false;
  BlobReader st(prep.stats_state);
  return phys_->stats().load_state(st);
}

void System::reset_stats() {
  mem_->reset_stats();
  phys_->stats().clear();
  space_->stats().clear();
  for (auto& mmu : mmus_) {
    mmu->reset_counters();
    mmu->l1_dtlb().reset_counters();
    mmu->l2_tlb().reset_counters();
    mmu->walker().reset_counters();
    for (unsigned level : mmu->walker().pwcs().levels())
      mmu->walker().pwcs().level(level)->reset_counters();
  }
}

StatSet System::collect_stats() const {
  StatSet out = mem_->collect_stats();
  auto add_all = [&out](const StatSet& s, const std::string& prefix) {
    for (const auto& [k, v] : s.counters()) out.inc(prefix + "." + k, v);
    for (const auto& [k, a] : s.averages()) out.merge_average(prefix + "." + k, a);
  };
  add_all(phys_->stats(), "os");
  add_all(space_->stats(), "as");
  for (unsigned c = 0; c < cfg_.num_cores; ++c) {
    const Mmu& m = *mmus_[c];
    add_all(m.snapshot(), "mmu");
    add_all(m.l1_dtlb().snapshot(), "tlb.l1d");
    add_all(m.l2_tlb().snapshot(), "tlb.l2");
    add_all(m.walker().snapshot(), "walker");
    for (unsigned level : m.walker().pwcs().levels()) {
      const Pwc* p = m.walker().pwcs().level(level);
      add_all(p->snapshot(), "pwc.l" + std::to_string(level));
    }
  }
  return out;
}

}  // namespace ndp
