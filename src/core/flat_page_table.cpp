#include "core/flat_page_table.h"

#include <cassert>

namespace ndp {

FlatPageTable::FlatPageTable(PhysicalMemory& pm) : pm_(pm) {
  root_.frame = pm_.alloc_frame(FrameUse::kPageTable);
}

FlatPageTable::~FlatPageTable() {
  pm_.free_frame(root_.frame);
  for (const auto& n : l3_nodes_) pm_.free_frame(n->frame);
  for (const auto& f : flat_nodes_)
    pm_.free_table_block(f->base_frame, kFlatBlockOrder);
}

FlatPageTable::FlatNode* FlatPageTable::find_flat(Vpn vpn) const {
  const std::uint32_t l3_id = root_.child[l4_index(vpn)];
  if (l3_id == 0) return nullptr;
  const RadixNode& l3 = *l3_nodes_[l3_id - 1];
  const std::uint32_t flat_id = l3.child[l3_index(vpn)];
  if (flat_id == 0) return nullptr;
  return flat_nodes_[flat_id - 1].get();
}

FlatPageTable::FlatNode& FlatPageTable::get_or_create_flat(Vpn vpn,
                                                           MapResult* out) {
  std::uint32_t& l3_slot = root_.child[l4_index(vpn)];
  if (l3_slot == 0) {
    auto node = std::make_unique<RadixNode>();
    node->frame = pm_.alloc_frame(FrameUse::kPageTable);
    l3_nodes_.push_back(std::move(node));
    l3_slot = static_cast<std::uint32_t>(l3_nodes_.size());
    ++root_.valid;
    if (out) {
      ++out->nodes_allocated;
      out->bytes_allocated += kPageSize;
    }
  }
  RadixNode& l3 = *l3_nodes_[l3_slot - 1];
  std::uint32_t& flat_slot = l3.child[l3_index(vpn)];
  if (flat_slot == 0) {
    auto node = std::make_unique<FlatNode>();
    node->base_frame = pm_.alloc_table_block(kFlatBlockOrder);
    flat_nodes_.push_back(std::move(node));
    flat_slot = static_cast<std::uint32_t>(flat_nodes_.size());
    ++l3.valid;
    if (out) {
      ++out->nodes_allocated;
      // A flattened node is a 2 MB structure; zeroing it is the cost the
      // paper accepts for fewer walk accesses (\"overall impact minimal\").
      out->bytes_allocated += kFlatEntries * kPteSize;
    }
  }
  return *flat_nodes_[flat_slot - 1];
}

MapResult FlatPageTable::map(Vpn vpn, Pfn pfn, unsigned page_shift) {
  assert(page_shift == kPageShift &&
         "NDPage's flattened table maps 4 KB pages (paper §V-B: it keeps "
         "4 KB flexibility instead of huge pages)");
  (void)page_shift;
  MapResult r;
  FlatNode& node = get_or_create_flat(vpn, &r);
  std::uint64_t& e = node.ent[flat_index(vpn)];
  if (e & 1ull) r.replaced = true; else ++node.valid;
  e = (pfn << 1) | 1ull;
  return r;
}

bool FlatPageTable::unmap(Vpn vpn) {
  FlatNode* node = find_flat(vpn);
  if (!node) return false;
  std::uint64_t& e = node->ent[flat_index(vpn)];
  if (!(e & 1ull)) return false;
  e = 0;
  --node->valid;
  return true;
}

std::optional<Pfn> FlatPageTable::lookup(Vpn vpn) const {
  const FlatNode* node = find_flat(vpn);
  if (!node) return std::nullopt;
  const std::uint64_t e = node->ent[flat_index(vpn)];
  if (!(e & 1ull)) return std::nullopt;
  return e >> 1;
}

bool FlatPageTable::remap(Vpn vpn, Pfn new_pfn) {
  FlatNode* node = find_flat(vpn);
  if (!node) return false;
  std::uint64_t& e = node->ent[flat_index(vpn)];
  if (!(e & 1ull)) return false;
  e = (new_pfn << 1) | 1ull;
  return true;
}

void FlatPageTable::walk_into(Vpn vpn, WalkPath& path) const {
  path.reset();
  unsigned group = 0;
  // L4 entry.
  path.steps.push_back(WalkStep{
      frame_base(root_.frame) + static_cast<PhysAddr>(l4_index(vpn)) * kPteSize,
      4, group++});
  const std::uint32_t l3_id = root_.child[l4_index(vpn)];
  if (l3_id == 0) return;
  const RadixNode& l3 = *l3_nodes_[l3_id - 1];
  // L3 entry.
  path.steps.push_back(WalkStep{
      frame_base(l3.frame) + static_cast<PhysAddr>(l3_index(vpn)) * kPteSize,
      3, group++});
  const std::uint32_t flat_id = l3.child[l3_index(vpn)];
  if (flat_id == 0) return;
  const FlatNode& flat = *flat_nodes_[flat_id - 1];
  // Flattened L2/L1 entry: 18 index bits into the 2 MB node.
  path.steps.push_back(WalkStep{
      frame_base(flat.base_frame) +
          static_cast<PhysAddr>(flat_index(vpn)) * kPteSize,
      WalkStep::kFlatLevel, group++});
  const std::uint64_t e = flat.ent[flat_index(vpn)];
  if (e & 1ull) {
    path.mapped = true;
    path.pfn = e >> 1;
    path.page_shift = kPageShift;
  }
  return;
}

std::vector<LevelOccupancy> FlatPageTable::occupancy() const {
  LevelOccupancy l4{"PL4", 1, root_.valid, kPtesPerNode};
  LevelOccupancy l3{"PL3", 0, 0, 0};
  for (const auto& n : l3_nodes_) {
    ++l3.nodes;
    l3.valid += n->valid;
    l3.capacity += kPtesPerNode;
  }
  LevelOccupancy flat{"PL2/PL1", 0, 0, 0};
  for (const auto& f : flat_nodes_) {
    ++flat.nodes;
    flat.valid += f->valid;
    flat.capacity += kFlatEntries;
  }
  return {l4, l3, flat};
}

std::uint64_t FlatPageTable::table_bytes() const {
  return kPageSize * (1 + l3_nodes_.size()) +
         flat_nodes_.size() * (kFlatEntries * kPteSize);
}

bool FlatPageTable::save_state(BlobWriter& out) const {
  out.str("NDPageFlat");
  out.u64(root_.frame);
  out.u64(root_.valid);
  out.bytes(root_.child.data(), sizeof root_.child);
  out.u64(l3_nodes_.size());
  for (const auto& n : l3_nodes_) {
    out.u64(n->frame);
    out.u64(n->valid);
    out.bytes(n->child.data(), sizeof n->child);
  }
  out.u64(flat_nodes_.size());
  for (const auto& f : flat_nodes_) {
    out.u64(f->base_frame);
    out.u64(f->valid);
    out.u64s(f->ent);
  }
  return true;
}

bool FlatPageTable::load_state(BlobReader& in) {
  if (in.str() != "NDPageFlat") return false;
  RadixNode root;
  root.frame = in.u64();
  root.valid = static_cast<std::uint32_t>(in.u64());
  if (!in.bytes(root.child.data(), sizeof root.child)) return false;
  const std::uint64_t n_l3 = in.u64();
  if (!in.ok() || n_l3 > in.remaining()) return false;
  std::vector<std::unique_ptr<RadixNode>> l3;
  l3.reserve(n_l3);
  for (std::uint64_t i = 0; i < n_l3 && in.ok(); ++i) {
    auto n = std::make_unique<RadixNode>();
    n->frame = in.u64();
    n->valid = static_cast<std::uint32_t>(in.u64());
    if (!in.bytes(n->child.data(), sizeof n->child)) return false;
    l3.push_back(std::move(n));
  }
  const std::uint64_t n_flat = in.u64();
  if (!in.ok() || n_flat > in.remaining()) return false;
  std::vector<std::unique_ptr<FlatNode>> flat;
  flat.reserve(n_flat);
  for (std::uint64_t i = 0; i < n_flat && in.ok(); ++i) {
    auto f = std::make_unique<FlatNode>();
    f->base_frame = in.u64();
    f->valid = in.u64();
    f->ent = in.u64s();
    if (f->ent.size() != kFlatEntries) return false;
    flat.push_back(std::move(f));
  }
  if (!in.ok()) return false;
  root_ = root;
  l3_nodes_ = std::move(l3);
  flat_nodes_ = std::move(flat);
  return true;
}

}  // namespace ndp
