// Host-parallel sweep execution + the shared aggregation path.
//
// Cells of an evaluation grid are independent single-threaded simulations,
// so a sweep parallelizes embarrassingly across host threads. run_sweep()
// executes a RunSpec list on a small thread pool (`jobs`) and returns the
// results in *spec order* regardless of completion order — serialized
// output is byte-identical whether jobs is 1 or 16, which is what makes
// parallel runs trustworthy artifacts (and testable: see
// tests/sweep_runner_test.cpp).
//
// Aggregation turns a result set into the tables the paper's figures plot:
// per-workload speedups over a named baseline mechanism with geomean rows
// (Figs. 12-14), and metric means across workloads (Fig. 6). The bench
// binaries and `ndpsim --config` both print through these helpers — one
// aggregation path, not per-figure bespoke printing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "sim/run_config.h"
#include "sim/session.h"

namespace ndp {

struct SweepCell;

struct SweepOptions {
  /// Host threads executing cells. 0 = std::thread::hardware_concurrency().
  unsigned jobs = 1;
  /// Share prepared system images and trace material across cells: all
  /// cells run through one thread-safe Session (sim/session.h), so cells
  /// differing only in mechanism/workload restore one substrate instead of
  /// rebuilding it. Results are byte-identical either way (the golden suite
  /// pins this); off is the A/B opt-out (`ndpsim --fresh-systems`,
  /// config key "share_images": false).
  bool share_images = true;
  /// Run cells through this caller-owned Session instead — pools images
  /// across *sweeps* (e.g. several grids over one platform). Overrides
  /// share_images, except that a RunConfig pinning "share_images": false
  /// still forces fresh builds. The Session must outlive the call.
  Session* session = nullptr;
  /// Directory of the persistent on-disk image store (sim/image_store.h)
  /// for the internal Session: snapshots survive the process, so a warm
  /// re-run skips boot, install, and prefault. "" = disabled. Ignored when
  /// `session` is set (a caller-owned Session brings its own options) or
  /// when sharing is off. A RunConfig's "image_store" fills this when the
  /// caller didn't (`ndpsim --image-store` wins over the config).
  std::string image_store;
  /// Called after each cell completes (any order), under an internal lock —
  /// safe to print from. `done` counts completed cells.
  std::function<void(std::size_t done, std::size_t total, const RunSpec&)>
      progress;
  /// Called with each completed cell (its result is final), under the same
  /// internal lock as `progress` — calls never interleave. `index` is the
  /// cell's position in the result set. The serve layer streams per-cell
  /// envelopes from this.
  std::function<void(std::size_t index, const SweepCell& cell)> cell_done;
  /// Cooperative cancellation: when this flag becomes true, workers stop
  /// claiming new cells (in-flight cells run to completion). Unclaimed
  /// cells keep default-constructed results — a caller that observes the
  /// cancellation must not serialize the result set as a finished sweep.
  const std::atomic<bool>* cancel = nullptr;
  /// Distributed sweeps: run only shard `shard_index` of `shard_count`.
  /// Cell k of the expanded grid (spec order) belongs to shard k %
  /// shard_count — round-robin, so adjacent (similar-cost) cells spread
  /// across shards. The results carry a ShardInfo and serialize with a
  /// "shard" envelope block; tools/sweep_merge recombines N such envelopes
  /// into a byte-identical replica of the single-process document.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
};

/// One executed cell: the spec that named it plus its result.
struct SweepCell {
  RunSpec spec;
  RunResult result;
};

/// Provenance of a sharded run: which slice of the full grid this result
/// set holds. Serialized as the envelope's "shard" object (in place of
/// "aggregate", which needs the whole grid) and consumed by sweep_merge.
struct ShardInfo {
  unsigned index = 0;                ///< this shard (0-based)
  unsigned count = 1;                ///< total shards the grid was split into
  std::size_t total_cells = 0;       ///< cell count of the *full* grid
  std::vector<std::size_t> indices;  ///< global spec index of each cell
};

struct SweepResults {
  std::string name;      ///< config name ("" for ad-hoc flag sweeps)
  std::string baseline;  ///< canonical mechanism name ("" = no aggregation)
  std::vector<SweepCell> cells;  ///< in spec order (deterministic)
  /// Engaged when this run executed one shard of a larger grid.
  std::optional<ShardInfo> shard;
  /// The executing Session's cumulative cache stats, snapshotted when the
  /// sweep finished (a caller-owned Session includes its prior history).
  SessionStats session;
  /// Host wall time of the whole sweep (measured by run_sweep; includes
  /// thread-pool scheduling, so it is what a user actually waited).
  std::uint64_t host_wall_ns = 0;
  unsigned jobs_used = 1;  ///< resolved job count the sweep executed with
  /// Emit "host_profile" blocks (per cell and sweep summary) from to_json().
  /// Off by default: profiling output is opt-in so result documents stay
  /// byte-identical across runs, job counts, and host machines.
  bool include_host_profile = false;

  /// Sum of per-cell phase profiles / op counters (cells run concurrently,
  /// so phase ns can exceed host_wall_ns).
  HostProfile merged_host_profile() const;
  HostCounters merged_host_counters() const;
  std::uint64_t total_instructions() const;
};

/// Execute `specs` across `opts.jobs` threads. Results are in spec order.
/// A cell that throws (bad spec) rethrows after the pool drains.
SweepResults run_sweep(const std::vector<RunSpec>& specs,
                       const SweepOptions& opts = {});

/// Expand and execute a config (carries its name/baseline into the results).
SweepResults run_sweep(const RunConfig& config, const SweepOptions& opts = {});

// --- aggregation ------------------------------------------------------------

/// Headline metrics selectable for aggregation.
enum class Metric {
  kCycles,
  kIpc,
  kPtwLatency,
  kTranslationFraction,
  kL1TlbMissRate,
  kL2TlbMissRate,
  kPteAccessShare,
};

double metric_of(const RunResult& r, Metric m);
std::string to_string(Metric m);

/// Select cells by spec fields; unset fields match everything. Mechanism and
/// workload compare against canonical labels, case-insensitively.
struct CellFilter {
  std::optional<SystemKind> system;
  std::optional<std::string> mechanism;
  std::optional<std::string> workload;
  std::optional<unsigned> cores;

  bool matches(const SweepCell& cell) const;
};

/// Metric values of the matching cells, in spec order.
std::vector<double> collect_metric(const SweepResults& results, Metric m,
                                   const CellFilter& filter);

/// Arithmetic mean of the matching cells' metric (0.0 when none match).
double mean_metric(const SweepResults& results, Metric m,
                   const CellFilter& filter);

/// One row per executed cell: the standard headline columns.
Table summary_table(const SweepResults& results);

/// Per-workload speedups over `baseline` (same system/cores/workload cell),
/// one column per non-baseline mechanism, grouped by (system, cores) when
/// several are present, with a GEOMEAN row per group — the shape of the
/// paper's Figs. 12-14. Throws std::invalid_argument when a baseline cell
/// is missing.
Table speedup_table(const SweepResults& results, std::string_view baseline);

/// Geomean speedup over `baseline` per mechanism across every workload of
/// one (system, cores) group; pairs are (mechanism, geomean) in sweep order.
std::vector<std::pair<std::string, double>> geomean_speedups(
    const SweepResults& results, std::string_view baseline, SystemKind system,
    unsigned cores);

/// The per-cell facts the aggregation path consumes — executed SweepCells
/// and cells parsed back out of shard envelopes both project onto this, so
/// sweep_merge recomputes "aggregate" through the exact code (and double
/// arithmetic) the single-process writer used.
struct CellView {
  std::string system;    ///< "ndp" / "cpu"
  unsigned cores = 0;
  std::string mechanism; ///< canonical label, parameters included
  std::string workload;  ///< canonical registry name
  std::uint64_t total_cycles = 0;
  double avg_ptw_latency = 0.0;
};

/// Project the executed cells (spec order preserved).
std::vector<CellView> cell_views(const SweepResults& results);

/// The {"baseline","groups":[...]} aggregate object for these cells.
/// Throws std::invalid_argument when a baseline cell is missing.
std::string aggregate_json(const std::vector<CellView>& cells,
                           std::string_view baseline);

/// Recombine N shard envelopes (the `--shard i/N` JSON documents, any input
/// order) into a byte-identical replica of the single-process envelope:
/// results restored to global spec order, "aggregate" recomputed, "shard"
/// dropped. Throws std::invalid_argument when the envelopes disagree on the
/// grid (name, shard count, total cells, baseline), a shard is missing or
/// duplicated, or the indices don't cover the grid exactly.
std::string merge_sharded_envelopes(const std::vector<std::string>& envelopes);

/// Full results document: {"name", "jobs-invariant" results array, and —
/// when a baseline is set — an "aggregate" object with per-group speedups
/// and geomeans}. A sharded run serializes a "shard" provenance object in
/// place of "aggregate" (the slice can't see the baseline cells). This is
/// the payload `ndpsim --config --json` writes; it depends only on cell
/// order, never on thread scheduling.
std::string to_json(const SweepResults& results);

/// summary_table() as CSV (one plotting input for every figure).
std::string to_csv(const SweepResults& results);

}  // namespace ndp
