#include "sim/image_store.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include <unistd.h>

#include "common/blob.h"
#include "obs/log.h"

namespace ndp {

namespace {

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvBasis2 = 0x84222325CBF29CE4ull;  ///< digest half 2
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t magic_word() {
  std::uint64_t m = 0;
  std::memcpy(&m, "NDPIMG01", 8);
  return m;
}

unsigned kind_id_of(const char* kind) {
  if (std::strcmp(kind, "sys") == 0) return 1;
  if (std::strcmp(kind, "mat") == 0) return 2;
  assert(std::strcmp(kind, "prep") == 0);
  return 3;
}

// Section ids (see the header's format documentation).
constexpr std::uint64_t kSecPhysBoot = 1;
constexpr std::uint64_t kSecMesh = 2;
constexpr std::uint64_t kSecMaterial = 3;
constexpr std::uint64_t kSecPhysReady = 4;
constexpr std::uint64_t kSecPageTable = 5;
constexpr std::uint64_t kSecSpace = 6;
constexpr std::uint64_t kSecStats = 7;

struct Section {
  std::uint64_t id = 0;
  std::vector<std::uint64_t> words;
};

// ---- component codecs ------------------------------------------------------

void encode_phys(BlobWriter& out, const PhysMemImage& img) {
  out.u64(img.buddy.num_frames());
  img.buddy.save_state(out);
  out.bytes(img.use.data(), img.use.size());
  out.bytes(img.win_movable.data(),
            img.win_movable.size() * sizeof(std::uint16_t));
  out.bytes(img.win_unmovable.data(),
            img.win_unmovable.size() * sizeof(std::uint16_t));
  std::uint64_t rs[4];
  img.rng.save_state(rs);
  out.u64s(rs, 4);
  out.u64(img.noise_frames);
}

/// The blob never stores a PhysMemConfig — `pmc` comes from the requesting
/// SystemConfig, which the verified key string proved equivalent to the
/// writer's. The frame count is still cross-checked before the buddy
/// allocator is even constructed (its constructor asserts on geometry).
bool decode_phys(BlobReader& in, const PhysMemConfig& pmc, PhysMemImage* out) {
  const std::uint64_t nf = in.u64();
  if (!in.ok() || nf != pmc.bytes / kPageSize) return false;
  BuddyAllocator buddy(nf);
  if (!buddy.load_state(in)) return false;
  std::vector<FrameUse> use(nf);
  if (!in.bytes(use.data(), nf)) return false;
  std::vector<std::uint16_t> wm(nf >> 9), wu(nf >> 9);
  if (!in.bytes(wm.data(), wm.size() * sizeof(std::uint16_t))) return false;
  if (!in.bytes(wu.data(), wu.size() * sizeof(std::uint16_t))) return false;
  const std::vector<std::uint64_t> rs = in.u64s();
  const std::uint64_t noise = in.u64();
  if (!in.ok() || rs.size() != 4) return false;
  Rng rng;
  rng.load_state(rs.data());
  *out = PhysMemImage{pmc,           std::move(buddy), std::move(use),
                      std::move(wm), std::move(wu),    rng,
                      noise};
  return true;
}

void encode_mesh(BlobWriter& out, const MeshTable& m) {
  out.u64(m.num_cores);
  out.u64(m.num_mem_endpoints);
  out.u64(m.hop_latency);
  out.u64(m.side);
  out.u64s(m.fly_cycles);
}

bool decode_mesh(BlobReader& in, MeshTable* out) {
  MeshTable m;
  m.num_cores = static_cast<unsigned>(in.u64());
  m.num_mem_endpoints = static_cast<unsigned>(in.u64());
  m.hop_latency = in.u64();
  m.side = static_cast<unsigned>(in.u64());
  m.fly_cycles = in.u64s();
  if (!in.ok() ||
      m.fly_cycles.size() !=
          static_cast<std::uint64_t>(m.num_cores) * m.num_mem_endpoints)
    return false;
  *out = std::move(m);
  return true;
}

void encode_material(BlobWriter& out, const TraceMaterial& mat) {
  out.u64(mat.regions.size());
  for (const VmRegion& r : mat.regions) {
    out.str(r.name);
    out.u64(r.base);
    out.u64(r.bytes);
    out.u64(r.prefault ? 1 : 0);
  }
  out.u64s(mat.warm_pages);
}

bool decode_material(BlobReader& in, TraceMaterial* out) {
  const std::uint64_t n = in.u64();
  if (!in.ok() || n > in.remaining()) return false;
  TraceMaterial mat;
  mat.regions.reserve(n);
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    VmRegion r;
    r.name = in.str();
    r.base = in.u64();
    r.bytes = in.u64();
    r.prefault = in.u64() != 0;
    mat.regions.push_back(std::move(r));
  }
  mat.warm_pages = in.u64s();
  if (!in.ok()) return false;
  *out = std::move(mat);
  return true;
}

PhysMemConfig phys_config_from(const SystemConfig& cfg) {
  PhysMemConfig pmc;
  pmc.bytes = cfg.phys_bytes;
  pmc.noise_fraction = cfg.noise_fraction;
  pmc.seed = cfg.seed;
  return pmc;
}

// ---- framing ---------------------------------------------------------------

/// Assemble a full blob (header + key + section table + sections) and
/// publish it atomically: temp file in the same directory, then rename.
bool write_blob(const std::string& dir, const std::string& path,
                const char* kind, const std::string& key,
                std::vector<Section> sections) {
  BlobWriter payload;
  payload.u64(sections.size());
  for (const Section& s : sections) {
    payload.u64(s.id);
    payload.u64(s.words.size());
  }
  for (const Section& s : sections) payload.append(s.words);
  const std::vector<std::uint64_t> body = payload.take();

  BlobWriter full;
  full.u64(magic_word());
  full.u64((ImageStore::kFormatVersion << 8) | kind_id_of(kind));
  full.u64(body.size());
  full.u64(fnv1a(body.data(), body.size() * 8, kFnvBasis));
  full.str(key);
  full.append(body);
  const std::vector<std::uint64_t> words = full.take();

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; write decides

  // Unique temp name per writer: pid alone is not enough (sweep worker
  // threads share one), so add a process-wide ticket.
  static std::atomic<std::uint64_t> ticket{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(ticket.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    obs::log(obs::LogLevel::kWarn, "store.write_fail")
        .kv("path", path)
        .kv("reason", "open");
    return false;
  }
  const std::size_t wrote = std::fwrite(words.data(), 8, words.size(), f);
  const bool flushed = std::fclose(f) == 0 && wrote == words.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    obs::log(obs::LogLevel::kWarn, "store.write_fail")
        .kv("path", path)
        .kv("reason", "write");
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    obs::log(obs::LogLevel::kWarn, "store.write_fail")
        .kv("path", path)
        .kv("reason", "rename");
    return false;
  }
  return true;
}

struct SectionView {
  std::uint64_t id = 0;
  const std::uint64_t* data = nullptr;
  std::size_t len = 0;
};

struct ReadBlob {
  ImageStore::Load status = ImageStore::Load::kMiss;
  std::vector<std::uint64_t> words;  ///< backing storage for the views
  std::vector<SectionView> sections;

  /// The section with `id`, as a bounds-checked reader; a missing section
  /// yields an immediately-failed reader.
  BlobReader section(std::uint64_t id) const {
    for (const SectionView& s : sections)
      if (s.id == id) return BlobReader(s.data, s.len);
    return BlobReader(nullptr, 0);
  }
};

ImageStore::Load reject(const std::string& path, const char* reason) {
  obs::log(obs::LogLevel::kWarn, "store.reject")
      .kv("path", path)
      .kv("reason", reason);
  return ImageStore::Load::kReject;
}

/// Read + fully validate a blob file. Every failure mode is classified:
/// absent file (and absent-only races) -> kMiss; a key mismatch (digest
/// collision) -> kMiss; anything structurally wrong -> kReject, logged.
ReadBlob read_blob(const std::string& path, const char* kind,
                   const std::string& key) {
  ReadBlob out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return out;  // kMiss: nothing stored under this digest
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0 || size % 8 != 0) {
    std::fclose(f);
    out.status = reject(path, "size");
    return out;
  }
  out.words.resize(static_cast<std::size_t>(size) / 8);
  const std::size_t got = std::fread(out.words.data(), 8, out.words.size(), f);
  std::fclose(f);
  if (got != out.words.size()) {
    out.status = reject(path, "short_read");
    return out;
  }

  BlobReader in(out.words);
  if (in.u64() != magic_word()) {
    out.status = reject(path, "magic");
    return out;
  }
  const std::uint64_t vk = in.u64();
  if ((vk >> 8) != ImageStore::kFormatVersion ||
      (vk & 0xFF) != kind_id_of(kind)) {
    out.status = reject(path, "version");
    return out;
  }
  const std::uint64_t payload_words = in.u64();
  const std::uint64_t checksum = in.u64();
  const std::string stored_key = in.str();
  if (!in.ok() || in.remaining() != payload_words) {
    out.status = reject(path, "framing");
    return out;
  }
  if (stored_key != key) {
    // A digest collision between distinct keys: not our blob. A plain miss
    // by contract — the caller rebuilds and may overwrite the file.
    out.status = ImageStore::Load::kMiss;
    return out;
  }
  const std::uint64_t* payload = out.words.data() + (out.words.size() -
                                                     payload_words);
  if (fnv1a(payload, payload_words * 8, kFnvBasis) != checksum) {
    out.status = reject(path, "checksum");
    return out;
  }

  BlobReader body(payload, payload_words);
  const std::uint64_t n_sections = body.u64();
  if (!body.ok() || n_sections > body.remaining() / 2) {
    out.status = reject(path, "section_table");
    return out;
  }
  std::uint64_t total = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> table;
  table.reserve(n_sections);
  for (std::uint64_t i = 0; i < n_sections; ++i) {
    const std::uint64_t id = body.u64();
    const std::uint64_t len = body.u64();
    table.emplace_back(id, len);
    total += len;
  }
  if (!body.ok() || total != body.remaining()) {
    out.status = reject(path, "section_table");
    return out;
  }
  const std::uint64_t* cursor = payload + (payload_words - body.remaining());
  for (const auto& [id, len] : table) {
    out.sections.push_back(SectionView{id, cursor, len});
    cursor += len;
  }
  out.status = ImageStore::Load::kHit;
  return out;
}

}  // namespace

ImageStore::ImageStore(std::string dir) : dir_(std::move(dir)) {
  assert(!dir_.empty() && "an ImageStore needs a directory");
}

std::string ImageStore::digest(const std::string& key) {
  const std::string keyed = key + "|v" + std::to_string(kFormatVersion);
  const std::uint64_t h1 = fnv1a(keyed.data(), keyed.size(), kFnvBasis);
  const std::uint64_t h2 = fnv1a(keyed.data(), keyed.size(), kFnvBasis2);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return std::string(buf, 32);
}

std::string ImageStore::path_for(const char* kind,
                                 const std::string& key) const {
  return dir_ + "/" + kind + "-" + digest(key) + ".img";
}

ImageStore::Load ImageStore::load_system_image(
    const std::string& key, const SystemConfig& cfg,
    std::shared_ptr<const SystemImage>* out) const {
  const std::string path = path_for("sys", key);
  const ReadBlob blob = read_blob(path, "sys", key);
  if (blob.status != Load::kHit) return blob.status;
  PhysMemImage phys{PhysMemConfig{}, BuddyAllocator(1ull << 10), {}, {}, {},
                    Rng(), 0};
  MeshTable mesh;
  BlobReader phys_in = blob.section(kSecPhysBoot);
  BlobReader mesh_in = blob.section(kSecMesh);
  if (!decode_phys(phys_in, phys_config_from(cfg), &phys) ||
      !decode_mesh(mesh_in, &mesh))
    return reject(path, "decode");
  *out = std::make_shared<const SystemImage>(
      SystemImage{cfg, std::move(phys), std::move(mesh)});
  return Load::kHit;
}

bool ImageStore::store_system_image(const std::string& key,
                                    const SystemImage& image) const {
  std::vector<Section> sections(2);
  sections[0].id = kSecPhysBoot;
  sections[1].id = kSecMesh;
  BlobWriter phys;
  encode_phys(phys, image.phys);
  sections[0].words = phys.take();
  BlobWriter mesh;
  encode_mesh(mesh, image.mesh);
  sections[1].words = mesh.take();
  return write_blob(dir_, path_for("sys", key), "sys", key,
                    std::move(sections));
}

ImageStore::Load ImageStore::load_material(const std::string& key,
                                           TraceMaterial* out) const {
  const std::string path = path_for("mat", key);
  const ReadBlob blob = read_blob(path, "mat", key);
  if (blob.status != Load::kHit) return blob.status;
  BlobReader in = blob.section(kSecMaterial);
  if (!decode_material(in, out)) return reject(path, "decode");
  return Load::kHit;
}

bool ImageStore::store_material(const std::string& key,
                                const TraceMaterial& mat) const {
  std::vector<Section> sections(1);
  sections[0].id = kSecMaterial;
  BlobWriter w;
  encode_material(w, mat);
  sections[0].words = w.take();
  return write_blob(dir_, path_for("mat", key), "mat", key,
                    std::move(sections));
}

ImageStore::Load ImageStore::load_prepared(
    const std::string& key, const SystemConfig& cfg,
    std::shared_ptr<const PreparedImage>* out) const {
  const std::string path = path_for("prep", key);
  const ReadBlob blob = read_blob(path, "prep", key);
  if (blob.status != Load::kHit) return blob.status;

  auto base = std::make_shared<SystemImage>(
      SystemImage{cfg,
                  PhysMemImage{PhysMemConfig{}, BuddyAllocator(1ull << 10),
                               {}, {}, {}, Rng(), 0},
                  MeshTable{}});
  PhysMemImage ready{PhysMemConfig{}, BuddyAllocator(1ull << 10), {}, {}, {},
                     Rng(), 0};
  BlobReader boot_in = blob.section(kSecPhysBoot);
  BlobReader mesh_in = blob.section(kSecMesh);
  BlobReader ready_in = blob.section(kSecPhysReady);
  const PhysMemConfig pmc = phys_config_from(cfg);
  if (!decode_phys(boot_in, pmc, &base->phys) ||
      !decode_mesh(mesh_in, &base->mesh) ||
      !decode_phys(ready_in, pmc, &ready))
    return reject(path, "decode");

  auto copy_section = [&blob](std::uint64_t id, std::vector<std::uint64_t>* v) {
    for (const SectionView& s : blob.sections)
      if (s.id == id) {
        v->assign(s.data, s.data + s.len);
        return true;
      }
    return false;
  };
  auto prep = std::make_shared<PreparedImage>(
      PreparedImage{std::move(base), std::move(ready), {}, {}, {}});
  if (!copy_section(kSecPageTable, &prep->pt_state) ||
      !copy_section(kSecSpace, &prep->space_state) ||
      !copy_section(kSecStats, &prep->stats_state))
    return reject(path, "decode");
  *out = std::move(prep);
  return Load::kHit;
}

bool ImageStore::store_prepared(const std::string& key,
                                const PreparedImage& prep) const {
  assert(prep.base && "a PreparedImage always carries its base image");
  std::vector<Section> sections(6);
  sections[0].id = kSecPhysBoot;
  sections[1].id = kSecMesh;
  sections[2].id = kSecPhysReady;
  sections[3].id = kSecPageTable;
  sections[4].id = kSecSpace;
  sections[5].id = kSecStats;
  BlobWriter boot;
  encode_phys(boot, prep.base->phys);
  sections[0].words = boot.take();
  BlobWriter mesh;
  encode_mesh(mesh, prep.base->mesh);
  sections[1].words = mesh.take();
  BlobWriter ready;
  encode_phys(ready, prep.ready);
  sections[2].words = ready.take();
  sections[3].words = prep.pt_state;
  sections[4].words = prep.space_state;
  sections[5].words = prep.stats_state;
  return write_blob(dir_, path_for("prep", key), "prep", key,
                    std::move(sections));
}

}  // namespace ndp
