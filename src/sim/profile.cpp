#include "sim/profile.h"

namespace ndp {

const char* to_string(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::kBuild: return "build";
    case ProfilePhase::kBuildCached: return "build_cached";
    case ProfilePhase::kInstall: return "install";
    case ProfilePhase::kPrefault: return "prefault";
    case ProfilePhase::kWarmup: return "warmup";
    case ProfilePhase::kRun: return "run";
    case ProfilePhase::kCollect: return "collect";
    case ProfilePhase::kSnapshot: return "snapshot";
    case ProfilePhase::kCount_: break;
  }
  return "?";
}

std::uint64_t HostProfile::total_ns() const {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kNumProfilePhases; ++i) total += ns_[i];
  return total;
}

void HostProfile::merge(const HostProfile& o) {
  for (unsigned i = 0; i < kNumProfilePhases; ++i) ns_[i] += o.ns_[i];
}

}  // namespace ndp
