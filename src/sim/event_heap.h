// The engine's time-ordered event queue, extracted from engine.cpp so its
// ordering contract is unit-testable (tests/event_heap_test.cpp).
//
// A binary min-heap over a flat, pre-reserved vector. Uses
// std::push_heap/pop_heap with the same comparator the original
// std::priority_queue used, so pop order — *including the order of
// same-cycle ties* — is bit-for-bit identical to every engine build since
// the golden suite was recorded. That tie order is not FIFO, not LIFO, and
// not otherwise specified: it is whatever the libstdc++ sift algorithms
// produce for the exact interleaving of pushes and pops performed. The
// simulated results are sensitive to it (same-cycle events touch shared
// DRAM/cache state in pop order), so the golden grids pin it: any
// replacement heap must reproduce the exact heap-op sequence, not just
// "some" time-sorted order. This was verified experimentally — FIFO and
// LIFO tie totalization, and deferring same-cycle pushes behind a
// pre-drained batch, all change the golden envelopes.
//
// drain_same_cycle() batches every event tied at the earliest time into a
// caller scratch vector in exactly repeated top()/pop() order (it is
// implemented as repeated pops, so the equivalence holds by construction;
// the unit test pins it against an independent reference anyway). Callers
// that may push new events *at the drained cycle while processing the
// batch* must not use it: in the interleaved regime such a push lands in
// the live heap and participates in the remaining ties' sift order, which
// a pre-drained batch cannot reproduce. The engine's event loop is exactly
// that case (MmuOp stage transitions and issue scheduling push at `now`),
// so Engine::run() keeps the pop-per-event loop and drain_same_cycle
// serves push-free consumers (end-of-run teardown, analysis passes,
// tests).
//
// The backing store never reallocates (capacity is bounded by
// cores x (mlp + 1) outstanding events) and every push is counted for the
// perf smoke budget.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace ndp {

/// One scheduled engine event: a core's front-end issue slot or one of its
/// in-flight op slots becoming due at `time`.
struct EngineEvent {
  Cycle time = 0;
  unsigned core = 0;
  unsigned slot = 0;  ///< EventHeap::kIssueSlot = front-end issue, else op slot
  bool operator>(const EngineEvent& o) const { return time > o.time; }
};

class EventHeap {
 public:
  static constexpr unsigned kIssueSlot = UINT32_MAX;

  explicit EventHeap(std::size_t capacity) { heap_.reserve(capacity); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const EngineEvent& top() const { return heap_.front(); }

  void push(EngineEvent e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<EngineEvent>{});
    ++pushes_;
    if (heap_.size() > peak_) peak_ = heap_.size();
  }

  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<EngineEvent>{});
    heap_.pop_back();
  }

  /// Batched same-cycle dispatch: append every event tied at the earliest
  /// time to `out` (which is not cleared — reuse a per-run scratch vector to
  /// stay allocation-free) and return that time. The appended order is
  /// exactly the order repeated top()/pop() calls would have produced. Only
  /// valid on a non-empty heap; see the file comment for when a caller may
  /// safely process the batch.
  Cycle drain_same_cycle(std::vector<EngineEvent>& out) {
    const Cycle now = heap_.front().time;
    do {
      out.push_back(heap_.front());
      pop();
    } while (!heap_.empty() && heap_.front().time == now);
    return now;
  }

  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t peak() const { return peak_; }

 private:
  std::vector<EngineEvent> heap_;
  std::uint64_t pushes_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace ndp
