// Persistent on-disk image store: build products that survive the process.
//
// A Session (sim/session.h) already shares system images, trace material,
// and post-prefault PreparedImages across the cells of one process's sweep.
// The ImageStore extends that cache one level down: blobs live in a
// directory, keyed by a content digest of the *full* build inputs, so a
// warm restart of `ndpsim` (or of the serve daemon) skips boot-noise
// injection, workload install, and prefault entirely. Restored state is
// byte-identical to freshly built state — the golden suite pins results
// with the store cold, warm, and disabled.
//
// ## Keys and digests
//
// Every blob is addressed by a *key string* carrying the complete build
// input at full fidelity: the Session's image key (kind, cores, physical
// bytes, bit-exact noise fraction, seed, every override), plus — for
// prepared images — the canonical mechanism spelling and the material key
// (workload, cores, bit-exact scale, seed). The file name is
//
//     <kind>-<digest>.img          kind in {sys, mat, prep}
//
// where digest = two independent 64-bit FNV-1a hashes (different offset
// bases) of `key + "|v" + kFormatVersion`, rendered as 32 hex chars.
// Bumping kFormatVersion therefore changes every file name: old blobs are
// simply never probed again (and CI's cache key rotates with it). The full
// key string is stored in the blob and verified on read, so a digest
// collision degrades to a miss, never to state from the wrong design point.
//
// ## Blob layout (little-endian 64-bit words)
//
//     word 0   magic "NDPIMG01" (bytes, packed)
//     word 1   (kFormatVersion << 8) | kind_id     kind_id: 1 sys, 2 mat, 3 prep
//     word 2   payload word count
//     word 3   FNV-1a 64 checksum of the payload bytes
//     then     key: u64 byte length + key bytes zero-padded to words
//     then     payload
//
// The payload is a section table followed by the sections:
//
//     n_sections, (section_id, word_len) * n_sections, section words...
//
// Section ids: 1 post-boot PhysMemImage, 2 MeshTable, 3 TraceMaterial,
// 4 post-prefault PhysMemImage, 5 PageTable state, 6 AddressSpace state,
// 7 OS StatSet state. A `sys` blob holds {1,2}; `mat` holds {3}; `prep` is
// self-contained: {1,2,4,5,6,7}. Component encodings are the BlobWriter
// streams of the respective save_state() methods (common/blob.h); the
// SystemConfig is *not* serialized — the verified key string implies every
// compatibility-relevant field, and the loader rebuilds the config-derived
// parts from the requesting configuration.
//
// ## Concurrency and crash safety
//
// Writers assemble the whole blob in memory, write it to a unique temp file
// in the store directory, and publish with rename(2) — readers never see a
// partial blob. Builds are deterministic, so concurrent writers of one key
// produce identical bytes and the last rename wins harmlessly. A truncated,
// corrupted, version-mismatched, or foreign blob is rejected (logged at
// warn, counted by the Session as a store error) and the caller rebuilds
// from scratch — the store can never turn a bad file into a crash or a
// wrong result.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "workloads/workload.h"

namespace ndp {

class ImageStore {
 public:
  /// Bump on ANY change to the blob layout or a component encoding. Old
  /// files become unreachable (digest includes the version) — invalidation
  /// by construction, no migration code.
  static constexpr std::uint64_t kFormatVersion = 1;

  /// Outcome of a load: kHit adopted a blob; kMiss found nothing usable
  /// (absent, or a digest collision with a different key); kReject found a
  /// file that failed validation (truncated/corrupt/wrong version) — the
  /// caller counts it as an error and rebuilds.
  enum class Load { kHit, kMiss, kReject };

  /// `dir` is created on first store. An empty dir is allowed (the Session
  /// treats an ImageStore with an empty dir as disabled and never builds
  /// one; this class itself asserts on use).
  explicit ImageStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// 32-hex-char content digest of `key` under the current format version.
  static std::string digest(const std::string& key);

  /// File path a blob of `kind` ("sys"/"mat"/"prep") for `key` lives at.
  std::string path_for(const char* kind, const std::string& key) const;

  Load load_system_image(const std::string& key, const SystemConfig& cfg,
                         std::shared_ptr<const SystemImage>* out) const;
  bool store_system_image(const std::string& key,
                          const SystemImage& image) const;

  Load load_material(const std::string& key, TraceMaterial* out) const;
  bool store_material(const std::string& key, const TraceMaterial& mat) const;

  Load load_prepared(const std::string& key, const SystemConfig& cfg,
                     std::shared_ptr<const PreparedImage>* out) const;
  bool store_prepared(const std::string& key, const PreparedImage& prep) const;

 private:
  std::string dir_;
};

}  // namespace ndp
