// Config-driven experiments: a JSON run description that expands into the
// sweep()/RunSpec machinery, so every evaluation grid of the paper is a
// named, checked-in, reproducible artifact (see experiments/*.json) instead
// of a bespoke bench binary or a long ndpsim flag line.
//
// Format (all keys optional unless noted; unknown keys are errors so typos
// can't silently change an experiment):
//
//   {
//     "name": "fig06_core_scaling",
//     "description": "PTW latency and translation share vs core count",
//     "systems": ["ndp", "cpu"],          // or "system": "ndp"
//     "mechanisms": ["radix",             // or "mechanism": "radix"
//       "ech(ways=8)",                    // spec strings carry parameters
//       {"name": "ech",                   // structured form; array-valued
//        "params": {"ways": [2, 4]}}],    //   params expand cross-product
//     "workloads": "all",                 // "all" = every built-in; or list
//     "cores": [1, 4, 8],                 // or a single number
//     "instructions": 150000,             // per core; 0 = default
//     "warmup": 0,                        // refs/core; 0 = instructions/15
//     "scale": 0.75,                      // dataset scale fraction
//     "seed": 42,
//     "share_images": true,               // Session image reuse opt-out
//     "image_store": ".ndpsim-store",     // persistent on-disk image store
//     "overrides": {                      // ablations, all optional
//       "bypass": true,
//       "pwc_levels": [4, 3],             // or null to strip the PWCs
//       "dram": "hbm2"                    // "ddr4_2400" | "hbm2"
//     },
//     "baseline": "radix",                // aggregation: speedups vs this
//     "output": { "json": "results.json", "csv": "results.csv" }
//   }
//
// Mechanism/workload names resolve through the open registries, so a config
// can name user-registered designs and trace generators. Mechanism entries
// are parameter specs: either `"name(key=value,...)"` strings or structured
// `{"name": ..., "params": {...}}` objects whose array-valued parameters
// expand into a cross-product of design points (member order) — that is how
// a checked-in grid sweeps ECH associativity or PWC sizes without new C++.
// Parsing validates everything up front: errors are std::invalid_argument
// whose message names the bad key/value and, for names and parameters,
// lists the registered alternatives (with did-you-mean suggestions).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.h"

namespace ndp {

struct RunConfig {
  std::string name;
  std::string description;
  std::vector<SystemKind> systems = {SystemKind::kNdp};
  /// Canonical mechanism specs, parameters included ("ECH(ways=4)").
  std::vector<std::string> mechanisms = {"NDPage"};
  std::vector<std::string> workloads = {"RND"};  ///< canonical names
  std::vector<unsigned> cores = {4};
  std::uint64_t instructions = 0;  ///< 0 = default_instructions()
  std::uint64_t warmup = 0;        ///< 0 = instructions/15
  double scale = 0;                ///< 0 = WorkloadParams default
  std::uint64_t seed = 42;
  Overrides overrides;
  /// Share prepared system images across the grid's cells (Session reuse,
  /// sim/session.h). Results are byte-identical either way; "share_images":
  /// false is the per-experiment opt-out for A/B-validating the sharing.
  bool share_images = true;
  /// Directory of the persistent on-disk image store (sim/image_store.h):
  /// post-boot and post-prefault snapshots survive the process, so warm
  /// re-runs skip boot, install, and prefault. "" = disabled. The CLI's
  /// --image-store flag overrides this.
  std::string image_store;
  /// Mechanism name speedups are aggregated against ("" = no aggregation).
  std::string baseline;
  /// Default output paths, overridable from the CLI ("" = not requested,
  /// "-" = stdout).
  std::string json_output;
  std::string csv_output;

  /// Parse + validate a JSON document. Throws std::invalid_argument on
  /// malformed JSON (with line:column), unknown keys, bad types, or unknown
  /// mechanism/workload/system names (listing the valid ones).
  static RunConfig from_json(std::string_view text);

  /// Load from a file; errors are prefixed with the path.
  static RunConfig load(const std::string& path);

  /// Serialize back to JSON; from_json(to_json()) round-trips every field.
  std::string to_json() const;

  /// Expand the grid into RunSpecs: system-major, then the usual
  /// mechanism-major sweep() order within each system.
  std::vector<RunSpec> expand() const;
};

}  // namespace ndp
