#include "sim/run_config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"
#include "common/strings.h"
#include "core/mechanism_registry.h"
#include "workloads/workload_registry.h"

namespace ndp {
namespace {

[[noreturn]] void config_error(const std::string& msg) {
  throw std::invalid_argument("run config: " + msg);
}

/// Accept either a single value or an array under two alternative keys
/// (e.g. "mechanism"/"mechanisms"); both present is an error.
const JsonValue* axis_value(const JsonValue& root, const char* singular,
                            const char* plural) {
  const JsonValue* s = root.find(singular);
  const JsonValue* p = root.find(plural);
  if (s && p)
    config_error(std::string("give either \"") + singular + "\" or \"" +
                 plural + "\", not both");
  return s ? s : p;
}

std::vector<std::string> string_list(const JsonValue& v, const char* key) {
  std::vector<std::string> out;
  try {
    if (v.is_string()) {
      out.push_back(v.as_string());
    } else {
      for (const JsonValue& item : v.array()) out.push_back(item.as_string());
    }
  } catch (const JsonError&) {
    config_error(std::string("\"") + key +
                 "\" must be a string or an array of strings");
  }
  if (out.empty())
    config_error(std::string("\"") + key + "\" must name at least one value");
  return out;
}

std::uint64_t u64_field(const JsonValue& v, const char* key) {
  try {
    return v.as_u64();
  } catch (const JsonError&) {
    config_error(std::string("\"") + key +
                 "\" must be a non-negative integer");
  }
}

std::string string_field(const JsonValue& v, const std::string& key) {
  try {
    return v.as_string();
  } catch (const JsonError&) {
    config_error("\"" + key + "\" must be a string");
  }
}

Overrides parse_overrides(const JsonValue& v) {
  Overrides o;
  for (const auto& [key, value] : v.members()) {
    if (key == "bypass") {
      try {
        o.bypass = value.as_bool();
      } catch (const JsonError&) {
        config_error("\"overrides.bypass\" must be true or false");
      }
    } else if (key == "pwc_levels") {
      // null and [] both mean "strip the PWCs".
      std::vector<unsigned> levels;
      if (!value.is_null()) {
        try {
          for (const JsonValue& l : value.array())
            levels.push_back(static_cast<unsigned>(l.as_u64()));
        } catch (const JsonError&) {
          config_error(
              "\"overrides.pwc_levels\" must be null or an array of levels");
        }
      }
      o.pwc_levels = std::move(levels);
    } else if (key == "dram") {
      std::string name;
      try {
        name = value.as_string();
      } catch (const JsonError&) {
        config_error("\"overrides.dram\" must be a string");
      }
      if (iequals(name, "ddr4_2400") || iequals(name, "ddr4"))
        o.dram = DramTiming::ddr4_2400();
      else if (iequals(name, "hbm2") || iequals(name, "hbm"))
        o.dram = DramTiming::hbm2();
      else
        config_error("unknown \"overrides.dram\" '" + name +
                     "'; expected 'ddr4_2400' or 'hbm2'");
    } else {
      config_error("unknown key \"overrides." + key + "\"");
    }
  }
  return o;
}

/// Apply every top-level member except the mechanism/workload/system axes
/// (those are resolved afterwards, via axis_value, order-independently).
void apply_members(const JsonValue& root, RunConfig& cfg) {
  for (const auto& [key, value] : root.members()) {
    if (key == "name") {
      cfg.name = string_field(value, key);
    } else if (key == "description") {
      cfg.description = string_field(value, key);
    } else if (key == "system" || key == "systems") {
      // Handled below via axis_value (order-independent).
    } else if (key == "mechanism" || key == "mechanisms") {
    } else if (key == "workload" || key == "workloads") {
    } else if (key == "cores") {
      cfg.cores.clear();
      try {
        if (value.is_number()) {
          cfg.cores.push_back(static_cast<unsigned>(value.as_u64()));
        } else {
          for (const JsonValue& c : value.array())
            cfg.cores.push_back(static_cast<unsigned>(c.as_u64()));
        }
      } catch (const JsonError&) {
        config_error("\"cores\" must be a core count or an array of counts");
      }
      if (cfg.cores.empty()) config_error("\"cores\" must not be empty");
      for (unsigned c : cfg.cores)
        if (c == 0) config_error("\"cores\" values must be >= 1");
    } else if (key == "instructions") {
      cfg.instructions = u64_field(value, "instructions");
    } else if (key == "warmup") {
      cfg.warmup = u64_field(value, "warmup");
    } else if (key == "scale") {
      try {
        cfg.scale = value.as_double();
      } catch (const JsonError&) {
        config_error("\"scale\" must be a number");
      }
      if (cfg.scale < 0 || cfg.scale > 1)
        config_error("\"scale\" must be in (0, 1] (0 = workload default)");
    } else if (key == "seed") {
      cfg.seed = u64_field(value, "seed");
    } else if (key == "overrides") {
      if (!value.is_object()) config_error("\"overrides\" must be an object");
      cfg.overrides = parse_overrides(value);
    } else if (key == "baseline") {
      cfg.baseline = string_field(value, key);
    } else if (key == "output") {
      if (!value.is_object()) config_error("\"output\" must be an object");
      for (const auto& [okey, ovalue] : value.members()) {
        if (okey == "json")
          cfg.json_output = string_field(ovalue, "output.json");
        else if (okey == "csv")
          cfg.csv_output = string_field(ovalue, "output.csv");
        else
          config_error("unknown key \"output." + okey + "\"");
      }
    } else {
      config_error("unknown key \"" + key + "\"");
    }
  }
}

}  // namespace

RunConfig RunConfig::from_json(std::string_view text) {
  JsonValue root = JsonValue::make_null();
  try {
    root = JsonValue::parse(text);
  } catch (const JsonError& e) {
    config_error(std::string("JSON parse error at ") + e.what());
  }
  if (!root.is_object()) config_error("top level must be a JSON object");

  RunConfig cfg;
  try {
    apply_members(root, cfg);
  } catch (const JsonError& e) {
    // A type mismatch not caught by a field-specific handler above.
    config_error(e.what());
  }

  if (const JsonValue* v = axis_value(root, "system", "systems")) {
    cfg.systems.clear();
    for (const std::string& name : string_list(*v, "systems")) {
      const auto k = system_kind_from_string(name);
      if (!k)
        config_error("unknown system '" + name + "'; expected 'ndp' or 'cpu'");
      cfg.systems.push_back(*k);
    }
  }

  // Resolve names to canonical registry spellings up front, so expansion and
  // aggregation never see aliases and errors surface at parse time.
  try {
    if (const JsonValue* v = axis_value(root, "mechanism", "mechanisms")) {
      cfg.mechanisms.clear();
      for (const std::string& name : string_list(*v, "mechanisms"))
        cfg.mechanisms.push_back(MechanismRegistry::instance().at(name).name);
    }
    if (const JsonValue* v = axis_value(root, "workload", "workloads")) {
      const std::vector<std::string> names = string_list(*v, "workloads");
      if (names.size() == 1 && iequals(names[0], "all")) {
        cfg.workloads = WorkloadRegistry::instance().builtin_names();
      } else {
        cfg.workloads.clear();
        for (const std::string& name : names)
          cfg.workloads.push_back(WorkloadRegistry::instance().at(name).name);
      }
    }
    if (!cfg.baseline.empty())
      cfg.baseline = MechanismRegistry::instance().at(cfg.baseline).name;
  } catch (const std::out_of_range& e) {
    config_error(e.what());
  }

  if (!cfg.baseline.empty()) {
    bool found = false;
    for (const std::string& m : cfg.mechanisms)
      if (m == cfg.baseline) found = true;
    if (!found)
      config_error("\"baseline\" '" + cfg.baseline +
                   "' is not one of the swept mechanisms");
  }
  return cfg;
}

RunConfig RunConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot read config '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string RunConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(name);
  if (!description.empty()) w.key("description").value(description);
  w.key("systems").begin_array();
  for (SystemKind k : systems)
    w.value(k == SystemKind::kNdp ? "ndp" : "cpu");
  w.end_array();
  w.key("mechanisms").begin_array();
  for (const std::string& m : mechanisms) w.value(m);
  w.end_array();
  w.key("workloads").begin_array();
  for (const std::string& wl : workloads) w.value(wl);
  w.end_array();
  w.key("cores").begin_array();
  for (unsigned c : cores) w.value(c);
  w.end_array();
  if (instructions) w.key("instructions").value(instructions);
  if (warmup) w.key("warmup").value(warmup);
  if (scale > 0) w.key("scale").value(scale);
  w.key("seed").value(seed);
  if (overrides.any()) {
    w.key("overrides").begin_object();
    if (overrides.bypass) w.key("bypass").value(*overrides.bypass);
    if (overrides.pwc_levels) {
      w.key("pwc_levels").begin_array();
      for (unsigned l : *overrides.pwc_levels) w.value(l);
      w.end_array();
    }
    if (overrides.dram)
      w.key("dram").value(iequals(overrides.dram->name, "HBM2") ? "hbm2"
                                                                : "ddr4_2400");
    w.end_object();
  }
  if (!baseline.empty()) w.key("baseline").value(baseline);
  if (!json_output.empty() || !csv_output.empty()) {
    w.key("output").begin_object();
    if (!json_output.empty()) w.key("json").value(json_output);
    if (!csv_output.empty()) w.key("csv").value(csv_output);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::vector<RunSpec> RunConfig::expand() const {
  std::vector<RunSpec> out;
  for (SystemKind sys : systems) {
    RunSpec base = RunSpecBuilder()
                       .system(sys)
                       .instructions(instructions)
                       .warmup(warmup)
                       .scale(scale)
                       .seed(seed)
                       .overrides(overrides)
                       .build();
    std::vector<RunSpec> grid = sweep(base, mechanisms, workloads, cores);
    out.insert(out.end(), grid.begin(), grid.end());
  }
  return out;
}

}  // namespace ndp
