#include "sim/run_config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"
#include "common/strings.h"
#include "core/mechanism_registry.h"
#include "workloads/workload_registry.h"

namespace ndp {
namespace {

[[noreturn]] void config_error(const std::string& msg) {
  throw std::invalid_argument("run config: " + msg);
}

/// Accept either a single value or an array under two alternative keys
/// (e.g. "mechanism"/"mechanisms"); both present is an error.
const JsonValue* axis_value(const JsonValue& root, const char* singular,
                            const char* plural) {
  const JsonValue* s = root.find(singular);
  const JsonValue* p = root.find(plural);
  if (s && p)
    config_error(std::string("give either \"") + singular + "\" or \"" +
                 plural + "\", not both");
  return s ? s : p;
}

std::vector<std::string> string_list(const JsonValue& v, const char* key) {
  std::vector<std::string> out;
  try {
    if (v.is_string()) {
      out.push_back(v.as_string());
    } else {
      for (const JsonValue& item : v.array()) out.push_back(item.as_string());
    }
  } catch (const JsonError&) {
    config_error(std::string("\"") + key +
                 "\" must be a string or an array of strings");
  }
  if (out.empty())
    config_error(std::string("\"") + key + "\" must name at least one value");
  return out;
}

/// Text form of a JSON scalar used as a parameter value in the structured
/// mechanism form; funnelled through MechanismRegistry::resolve() so type
/// and range checking live in one place.
std::string param_value_text(const JsonValue& v, const std::string& where) {
  if (v.is_string()) {
    // The text is spliced into a `name(key=value,...)` spec string below;
    // spec metacharacters would smuggle in extra parameters instead of
    // failing validation for this one value.
    const std::string& s = v.as_string();
    if (s.find_first_of(",=()") != std::string::npos)
      config_error("\"" + where + "\" value '" + s +
                   "' must not contain ',', '=', '(' or ')'");
    return s;
  }
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_number()) {
    try {
      return std::to_string(v.as_u64());
    } catch (const JsonError&) {
      // Fractional/negative: the round-trip formatter keeps full precision
      // so the schema's double parser judges the exact configured value.
      return ParamValue::of_double(v.as_double()).text();
    }
  }
  config_error("\"" + where + "\" values must be numbers, booleans or strings");
}

/// Expand one structured mechanism entry {"name":..., "params": {k: v|[v]}}
/// into canonical spec strings — array-valued parameters cross-product in
/// member order.
void expand_structured_mechanism(const JsonValue& obj,
                                 std::vector<std::string>& out) {
  const JsonValue* name = obj.find("name");
  if (!name || !name->is_string())
    config_error("structured \"mechanisms\" entries need a string \"name\"");
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (key != "name" && key != "params")
      config_error("unknown key \"mechanisms[]." + key + "\"");
  }

  // Cross-product of the parameter axes, preserving member order.
  std::vector<std::string> combos{""};
  if (const JsonValue* params = obj.find("params")) {
    if (!params->is_object())
      config_error("\"mechanisms[].params\" must be an object");
    for (const auto& [key, value] : params->members()) {
      // Keys are spliced into the rebuilt spec string exactly like values;
      // metacharacters would smuggle extra parameters past validation.
      if (key.find_first_of(",=()") != std::string::npos)
        config_error("\"mechanisms[].params\" key '" + key +
                     "' must not contain ',', '=', '(' or ')'");
      const std::string where = "mechanisms[].params." + key;
      std::vector<std::string> texts;
      if (value.is_array()) {
        for (const JsonValue& item : value.array())
          texts.push_back(param_value_text(item, where));
        if (texts.empty())
          config_error("\"" + where + "\" must list at least one value");
      } else {
        texts.push_back(param_value_text(value, where));
      }
      std::vector<std::string> next;
      next.reserve(combos.size() * texts.size());
      for (const std::string& prefix : combos)
        for (const std::string& text : texts)
          next.push_back(prefix.empty() ? key + "=" + text
                                        : prefix + "," + key + "=" + text);
      combos = std::move(next);
    }
  }

  auto& registry = MechanismRegistry::instance();
  for (const std::string& combo : combos) {
    const std::string spec = combo.empty()
                                 ? name->as_string()
                                 : name->as_string() + "(" + combo + ")";
    out.push_back(registry.resolve(spec).canonical);
  }
}

/// The "mechanism"/"mechanisms" axis: a spec string, a structured object,
/// or an array mixing both. Resolves everything to canonical spellings.
std::vector<std::string> mechanism_list(const JsonValue& v) {
  std::vector<std::string> out;
  auto add_one = [&out](const JsonValue& item) {
    if (item.is_string())
      out.push_back(
          MechanismRegistry::instance().resolve(item.as_string()).canonical);
    else if (item.is_object())
      expand_structured_mechanism(item, out);
    else
      config_error(
          "\"mechanisms\" entries must be spec strings or "
          "{\"name\",\"params\"} objects");
  };
  if (v.is_array()) {
    for (const JsonValue& item : v.array()) add_one(item);
  } else {
    add_one(v);
  }
  if (out.empty())
    config_error("\"mechanisms\" must name at least one mechanism");
  return out;
}

std::uint64_t u64_field(const JsonValue& v, const char* key) {
  try {
    return v.as_u64();
  } catch (const JsonError&) {
    config_error(std::string("\"") + key +
                 "\" must be a non-negative integer");
  }
}

std::string string_field(const JsonValue& v, const std::string& key) {
  try {
    return v.as_string();
  } catch (const JsonError&) {
    config_error("\"" + key + "\" must be a string");
  }
}

Overrides parse_overrides(const JsonValue& v) {
  Overrides o;
  for (const auto& [key, value] : v.members()) {
    if (key == "bypass") {
      try {
        o.bypass = value.as_bool();
      } catch (const JsonError&) {
        config_error("\"overrides.bypass\" must be true or false");
      }
    } else if (key == "pwc_levels") {
      // null and [] both mean "strip the PWCs".
      std::vector<unsigned> levels;
      if (!value.is_null()) {
        try {
          for (const JsonValue& l : value.array())
            levels.push_back(static_cast<unsigned>(l.as_u64()));
        } catch (const JsonError&) {
          config_error(
              "\"overrides.pwc_levels\" must be null or an array of levels");
        }
      }
      o.pwc_levels = std::move(levels);
    } else if (key == "dram") {
      std::string name;
      try {
        name = value.as_string();
      } catch (const JsonError&) {
        config_error("\"overrides.dram\" must be a string");
      }
      if (iequals(name, "ddr4_2400") || iequals(name, "ddr4"))
        o.dram = DramTiming::ddr4_2400();
      else if (iequals(name, "hbm2") || iequals(name, "hbm"))
        o.dram = DramTiming::hbm2();
      else
        config_error("unknown \"overrides.dram\" '" + name +
                     "'; expected 'ddr4_2400' or 'hbm2'");
    } else {
      config_error("unknown key \"overrides." + key + "\"");
    }
  }
  return o;
}

/// Apply every top-level member except the mechanism/workload/system axes
/// (those are resolved afterwards, via axis_value, order-independently).
void apply_members(const JsonValue& root, RunConfig& cfg) {
  for (const auto& [key, value] : root.members()) {
    if (key == "name") {
      cfg.name = string_field(value, key);
    } else if (key == "description") {
      cfg.description = string_field(value, key);
    } else if (key == "system" || key == "systems") {
      // Handled below via axis_value (order-independent).
    } else if (key == "mechanism" || key == "mechanisms") {
    } else if (key == "workload" || key == "workloads") {
    } else if (key == "cores") {
      cfg.cores.clear();
      try {
        if (value.is_number()) {
          cfg.cores.push_back(static_cast<unsigned>(value.as_u64()));
        } else {
          for (const JsonValue& c : value.array())
            cfg.cores.push_back(static_cast<unsigned>(c.as_u64()));
        }
      } catch (const JsonError&) {
        config_error("\"cores\" must be a core count or an array of counts");
      }
      if (cfg.cores.empty()) config_error("\"cores\" must not be empty");
      for (unsigned c : cfg.cores)
        if (c == 0) config_error("\"cores\" values must be >= 1");
    } else if (key == "instructions") {
      cfg.instructions = u64_field(value, "instructions");
    } else if (key == "warmup") {
      cfg.warmup = u64_field(value, "warmup");
    } else if (key == "scale") {
      try {
        cfg.scale = value.as_double();
      } catch (const JsonError&) {
        config_error("\"scale\" must be a number");
      }
      if (cfg.scale < 0 || cfg.scale > 1)
        config_error("\"scale\" must be in (0, 1] (0 = workload default)");
    } else if (key == "seed") {
      cfg.seed = u64_field(value, "seed");
    } else if (key == "overrides") {
      if (!value.is_object()) config_error("\"overrides\" must be an object");
      cfg.overrides = parse_overrides(value);
    } else if (key == "share_images") {
      try {
        cfg.share_images = value.as_bool();
      } catch (const JsonError&) {
        config_error("\"share_images\" must be true or false");
      }
    } else if (key == "image_store") {
      cfg.image_store = string_field(value, key);
    } else if (key == "baseline") {
      cfg.baseline = string_field(value, key);
    } else if (key == "output") {
      if (!value.is_object()) config_error("\"output\" must be an object");
      for (const auto& [okey, ovalue] : value.members()) {
        if (okey == "json")
          cfg.json_output = string_field(ovalue, "output.json");
        else if (okey == "csv")
          cfg.csv_output = string_field(ovalue, "output.csv");
        else
          config_error("unknown key \"output." + okey + "\"");
      }
    } else {
      config_error("unknown key \"" + key + "\"");
    }
  }
}

}  // namespace

RunConfig RunConfig::from_json(std::string_view text) {
  JsonValue root = JsonValue::make_null();
  try {
    root = JsonValue::parse(text);
  } catch (const JsonError& e) {
    config_error(std::string("JSON parse error at ") + e.what());
  }
  if (!root.is_object()) config_error("top level must be a JSON object");

  RunConfig cfg;
  try {
    apply_members(root, cfg);
  } catch (const JsonError& e) {
    // A type mismatch not caught by a field-specific handler above.
    config_error(e.what());
  }

  if (const JsonValue* v = axis_value(root, "system", "systems")) {
    cfg.systems.clear();
    for (const std::string& name : string_list(*v, "systems")) {
      const auto k = system_kind_from_string(name);
      if (!k)
        config_error("unknown system '" + name + "'; expected 'ndp' or 'cpu'");
      cfg.systems.push_back(*k);
    }
  }

  // Resolve names to canonical registry spellings up front, so expansion and
  // aggregation never see aliases and errors surface at parse time.
  // Mechanism entries are full parameter specs (string or structured form);
  // resolution validates them against each mechanism's schema.
  try {
    if (const JsonValue* v = axis_value(root, "mechanism", "mechanisms"))
      cfg.mechanisms = mechanism_list(*v);
    if (const JsonValue* v = axis_value(root, "workload", "workloads")) {
      const std::vector<std::string> names = string_list(*v, "workloads");
      if (names.size() == 1 && iequals(names[0], "all")) {
        cfg.workloads = WorkloadRegistry::instance().builtin_names();
      } else {
        cfg.workloads.clear();
        for (const std::string& name : names)
          cfg.workloads.push_back(WorkloadRegistry::instance().at(name).name);
      }
    }
    if (!cfg.baseline.empty())
      cfg.baseline =
          MechanismRegistry::instance().resolve(cfg.baseline).canonical;
  } catch (const std::out_of_range& e) {
    config_error(e.what());
  } catch (const std::invalid_argument& e) {
    // Parameter-spec violations; re-wrap unless already prefixed (a nested
    // config_error passes through untouched).
    const std::string what = e.what();
    if (what.rfind("run config: ", 0) == 0) throw;
    config_error(what);
  }

  if (!cfg.baseline.empty()) {
    bool found = false;
    for (const std::string& m : cfg.mechanisms)
      if (m == cfg.baseline) found = true;
    if (!found)
      config_error("\"baseline\" '" + cfg.baseline +
                   "' is not one of the swept mechanisms");
  }
  return cfg;
}

RunConfig RunConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot read config '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string RunConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(name);
  if (!description.empty()) w.key("description").value(description);
  w.key("systems").begin_array();
  for (SystemKind k : systems)
    w.value(k == SystemKind::kNdp ? "ndp" : "cpu");
  w.end_array();
  w.key("mechanisms").begin_array();
  for (const std::string& m : mechanisms) w.value(m);
  w.end_array();
  w.key("workloads").begin_array();
  for (const std::string& wl : workloads) w.value(wl);
  w.end_array();
  w.key("cores").begin_array();
  for (unsigned c : cores) w.value(c);
  w.end_array();
  if (instructions) w.key("instructions").value(instructions);
  if (warmup) w.key("warmup").value(warmup);
  if (scale > 0) w.key("scale").value(scale);
  w.key("seed").value(seed);
  if (!share_images) w.key("share_images").value(false);
  if (!image_store.empty()) w.key("image_store").value(image_store);
  if (overrides.any()) {
    w.key("overrides").begin_object();
    if (overrides.bypass) w.key("bypass").value(*overrides.bypass);
    if (overrides.pwc_levels) {
      w.key("pwc_levels").begin_array();
      for (unsigned l : *overrides.pwc_levels) w.value(l);
      w.end_array();
    }
    if (overrides.dram)
      w.key("dram").value(iequals(overrides.dram->name, "HBM2") ? "hbm2"
                                                                : "ddr4_2400");
    w.end_object();
  }
  if (!baseline.empty()) w.key("baseline").value(baseline);
  if (!json_output.empty() || !csv_output.empty()) {
    w.key("output").begin_object();
    if (!json_output.empty()) w.key("json").value(json_output);
    if (!csv_output.empty()) w.key("csv").value(csv_output);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::vector<RunSpec> RunConfig::expand() const {
  std::vector<RunSpec> out;
  for (SystemKind sys : systems) {
    RunSpec base = RunSpecBuilder()
                       .system(sys)
                       .instructions(instructions)
                       .warmup(warmup)
                       .scale(scale)
                       .seed(seed)
                       .overrides(overrides)
                       .build();
    std::vector<RunSpec> grid = sweep(base, mechanisms, workloads, cores);
    out.insert(out.end(), grid.begin(), grid.end());
  }
  return out;
}

}  // namespace ndp
