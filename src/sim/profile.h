// Host-side self-profiling for simulation runs.
//
// A HostProfile accumulates wall-clock nanoseconds per run phase (system
// build, region install, prefault, warmup, measured run, stat collection).
// The engine stamps phases at their boundaries only — a handful of clock
// reads per run, never per event — so profiling is always on and costs
// nothing measurable. Reporting is strictly opt-in (`ndpsim --profile`,
// `to_json(..., include_host_profile)`): default serialized output stays
// byte-identical, which is what lets the golden suite pin results while the
// hot paths keep changing.
//
// tools/perf_report turns these numbers into BENCH_engine.json (cells/sec,
// host-ns per simulated instruction) so the perf trajectory of the simulator
// itself is recorded alongside its simulated results.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace ndp {

enum class ProfilePhase : unsigned {
  kBuild,       ///< System construction (phys mem, caches, MMUs, page table)
  kBuildCached, ///< Session image-cache work: building a shareable system
                ///< image on a miss, plus the (tiny) lookup cost on a hit
  kInstall,   ///< region declaration + trace-source setup
  kPrefault,  ///< resident-set population before timing starts
  kWarmup,    ///< event loop until every core finished warmup
  kRun,       ///< event loop after stats reset (the measured window)
  kCollect,   ///< stat snapshot/merge + result assembly
  kSnapshot,  ///< prepared-image capture + on-disk store writes
  kCount_,
};
constexpr unsigned kNumProfilePhases =
    static_cast<unsigned>(ProfilePhase::kCount_);

const char* to_string(ProfilePhase p);

/// Per-phase wall-clock accumulator for one run (host ns).
class HostProfile {
 public:
  using Clock = std::chrono::steady_clock;

  void add(ProfilePhase p, std::uint64_t ns) {
    ns_[static_cast<unsigned>(p)] += ns;
  }
  std::uint64_t ns(ProfilePhase p) const {
    return ns_[static_cast<unsigned>(p)];
  }
  std::uint64_t total_ns() const;
  /// Sum another run's phases into this one (sweep-level aggregation).
  void merge(const HostProfile& o);

  static std::uint64_t since_ns(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }

 private:
  std::uint64_t ns_[kNumProfilePhases] = {};
};

/// RAII phase timer: charges the enclosed scope's wall time to one phase.
/// When trace export is on (obs/trace.h, `ndpsim --trace-out`), the same
/// scope is also recorded as a "phase" span — the finer-than-phase view of
/// a cell in Perfetto costs one relaxed atomic load here when tracing is
/// off (HostProfile::Clock and TraceSink::Clock are both steady_clock, so
/// one pair of clock reads serves both).
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(HostProfile& profile, ProfilePhase phase)
      : profile_(profile), phase_(phase), start_(HostProfile::Clock::now()) {}
  ~ScopedPhaseTimer() {
    const auto end = HostProfile::Clock::now();
    profile_.add(phase_, static_cast<std::uint64_t>(
                             std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(end - start_)
                                 .count()));
    if (obs::TraceSink::instance().enabled())
      obs::TraceSink::instance().add_complete(to_string(phase_), "phase",
                                              start_, end);
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  HostProfile& profile_;
  ProfilePhase phase_;
  HostProfile::Clock::time_point start_;
};

/// Manual-stamp companion to ScopedPhaseTimer for code that times phases
/// with explicit clock reads (the engine's chained phase boundaries):
/// charges [start, now) to `p`, mirrors the interval as a trace span when
/// export is on, and returns `now` so call sites chain into the next phase.
inline HostProfile::Clock::time_point stamp_phase(
    HostProfile& profile, ProfilePhase p,
    HostProfile::Clock::time_point start) {
  const auto end = HostProfile::Clock::now();
  profile.add(p, static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         end - start)
                         .count()));
  if (obs::TraceSink::instance().enabled())
    obs::TraceSink::instance().add_complete(to_string(p), "phase", start, end);
  return end;
}

/// Host-side operation counters for one run — the deterministic complement
/// to the wall-clock phases. CI's perf smoke test budgets these per
/// simulated instruction (they never flake on a slow runner, unlike time).
struct HostCounters {
  std::uint64_t events = 0;       ///< events popped off the engine's queue
  std::uint64_t heap_pushes = 0;  ///< events pushed (heap sift-ups)
  std::uint64_t heap_peak = 0;    ///< high-water mark of the event queue
  // Session image-cache effectiveness (sim/session.h): how many runs built
  // a fresh system image vs restored a shared one. A run outside a Session
  // (or with sharing disabled) reports 0/0.
  std::uint64_t image_builds = 0;  ///< image-cache misses (substrate built)
  std::uint64_t image_hits = 0;    ///< image-cache hits (substrate restored)

  void merge(const HostCounters& o) {
    events += o.events;
    heap_pushes += o.heap_pushes;
    heap_peak = heap_peak > o.heap_peak ? heap_peak : o.heap_peak;
    image_builds += o.image_builds;
    image_hits += o.image_hits;
  }
};

}  // namespace ndp
