// Session: the long-lived half of the run lifecycle.
//
// A RunSpec describes one cell of an evaluation grid, but most of the work
// of executing it — building the 16 GB physical-memory substrate, injecting
// boot noise, precomputing NoC routing tables, deriving a workload's region
// layout — depends only on a small key, not on the mechanism or workload
// under test. A Session owns those immutable, shareable build products:
//
//   * system images   (core/system.h SystemImage), keyed by
//                     (SystemKind, cores, seed, overrides): the post-boot
//                     buddy/frame state plus mesh tables. session.run()
//                     *restores* the matching image (a few large copies)
//                     instead of reconstructing it.
//   * trace material  (workloads/workload.h TraceMaterial), keyed by
//                     (workload, cores, scale, seed): region layout + warm
//                     pages, shared across cells running that workload.
//
// Restored state is bit-identical to freshly built state, so results are
// byte-identical whether a spec runs through a pooled Session, a one-shot
// one, or the pre-Session run_experiment() path — the golden suite pins
// this, and run_sweep() relies on it to keep output independent of --jobs.
//
// run() is thread-safe: the caches sit behind one mutex for lookups and
// inserts only — builds happen outside the lock, so distinct keys build in
// parallel and concurrent misses on one key at worst duplicate a
// deterministic ~10 ms build (insert-if-absent keeps the first copy). The
// simulation itself runs unlocked per cell.
//
//   Session session;
//   for (const RunSpec& spec : sweep(base, {"radix", "ndpage"}, {"gups"}))
//     results.push_back(session.run(spec));   // one substrate build, total
//
// run_experiment() in sim/experiment.h is the one-shot shim: a fresh
// Session with sharing disabled, i.e. the historical build-everything path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/system.h"
#include "sim/experiment.h"

namespace ndp {

struct SessionOptions {
  /// Share prepared system images and trace material across runs. Off =
  /// every run builds everything from scratch (the historical
  /// run_experiment() behaviour) — the opt-out for A/B-validating the
  /// sharing machinery itself.
  bool share_images = true;
  /// Image-cache capacity (a 16 GB-substrate image is ~6 MB of host
  /// memory). Least-recently-used images are evicted beyond this.
  /// 0 = unbounded.
  std::size_t max_images = 8;
  /// Trace-material cache capacity (entries are small: a region list plus
  /// warm-page addresses). 0 = unbounded.
  std::size_t max_materials = 64;
};

/// Cache effectiveness counters, cumulative over the Session's lifetime.
/// Per-run hit/miss flags also land in RunResult::host (image_builds /
/// image_hits), which is how `ndpsim --profile` reports them per sweep.
/// The whole snapshot is cheap (one mutex acquisition, a struct copy) —
/// it is what `ndpsim --profile` prints, what the sweep-level host_profile
/// JSON embeds, and what the serve daemon's `stats` request returns.
struct SessionStats {
  std::uint64_t runs = 0;
  std::uint64_t image_builds = 0;     ///< cache misses: substrate prepared
  std::uint64_t image_hits = 0;       ///< cache hits: substrate restored
  std::uint64_t image_evictions = 0;  ///< LRU evictions past max_images
  std::uint64_t material_builds = 0;
  std::uint64_t material_hits = 0;
  /// Estimated host bytes held by the two caches right now (images +
  /// trace material; entries checked out by in-flight runs but already
  /// evicted are not counted — they die with the run).
  std::uint64_t resident_bytes = 0;
};

class JsonWriter;
/// Serialize a stats snapshot as one flat JSON object (the "session"
/// member of sweep-level host_profile blocks and of the serve daemon's
/// stats envelope).
void write_session_stats(JsonWriter& w, const SessionStats& s);

class Session {
 public:
  Session() = default;
  explicit Session(SessionOptions opts) : opts_(opts) {}

  /// Execute one cell. Identical results to run_experiment(spec), cheaper
  /// when this Session has already run a spec with the same image key.
  /// Thread-safe; any number of run() calls may be in flight.
  RunResult run(const RunSpec& spec);

  /// The cached image for `cfg`'s key, building (and caching) it on a
  /// miss. `built_out`, when given, reports whether this call built it.
  /// Exposed for tests and for callers pooling Systems via
  /// System::reset_to(). Thread-safe.
  std::shared_ptr<const SystemImage> image_for(const SystemConfig& cfg,
                                               bool* built_out = nullptr);

  /// The cache key `cfg`'s image is shared under — equal keys share, and
  /// everything that could change the substrate or routing tables (kind,
  /// cores, physical-memory geometry, seed, the overrides) is in the key
  /// at full fidelity — except the DRAM override, keyed by name+channels
  /// (the only DramTiming field the image depends on) — so design points
  /// with different build products can never alias.
  static std::string image_key(const SystemConfig& cfg);

  const SessionOptions& options() const { return opts_; }
  SessionStats stats() const;

 private:
  std::shared_ptr<const TraceMaterial> material_for(const std::string& key,
                                                    const TraceSource& trace);

  /// Generic string-keyed LRU used by both caches (values are shared_ptr,
  /// so an evicted entry stays alive for any run still using it). Tracks
  /// the resident-byte total of what it currently holds.
  template <typename V>
  struct LruCache {
    struct Entry {
      std::string key;
      std::shared_ptr<const V> value;
    };
    std::list<Entry> lru;  ///< front = most recently used
    std::map<std::string, typename std::list<Entry>::iterator> index;
    std::uint64_t bytes = 0;  ///< sum of resident_bytes() over entries

    std::shared_ptr<const V> find(const std::string& key) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      lru.splice(lru.begin(), lru, it->second);  // refresh recency
      return it->second->value;
    }
    /// Inserts and returns the evicted count (0 or 1).
    std::size_t insert(const std::string& key, std::shared_ptr<const V> value,
                       std::size_t capacity) {
      bytes += value->resident_bytes();
      lru.push_front(Entry{key, std::move(value)});
      index[key] = lru.begin();
      if (capacity == 0 || lru.size() <= capacity) return 0;
      const Entry& victim = lru.back();
      const std::uint64_t victim_bytes = victim.value->resident_bytes();
      bytes = bytes > victim_bytes ? bytes - victim_bytes : 0;
      index.erase(victim.key);
      lru.pop_back();
      return 1;
    }
  };

  SessionOptions opts_;
  mutable std::mutex mu_;  ///< guards both caches + stats_
  LruCache<SystemImage> images_;
  LruCache<TraceMaterial> materials_;
  SessionStats stats_;
};

}  // namespace ndp
