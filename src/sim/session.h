// Session: the long-lived half of the run lifecycle.
//
// A RunSpec describes one cell of an evaluation grid, but most of the work
// of executing it — building the 16 GB physical-memory substrate, injecting
// boot noise, precomputing NoC routing tables, deriving a workload's region
// layout — depends only on a small key, not on the mechanism or workload
// under test. A Session owns those immutable, shareable build products:
//
//   * system images   (core/system.h SystemImage), keyed by
//                     (SystemKind, cores, seed, overrides): the post-boot
//                     buddy/frame state plus mesh tables. session.run()
//                     *restores* the matching image (a few large copies)
//                     instead of reconstructing it.
//   * trace material  (workloads/workload.h TraceMaterial), keyed by
//                     (workload, cores, scale, seed): region layout + warm
//                     pages, shared across cells running that workload.
//   * prepared images (core/system.h PreparedImage), keyed by
//                     (image key, mechanism, material key): post-prefault
//                     snapshots — a hit skips workload install and prefault
//                     entirely, the expensive half of cell setup.
//
// With SessionOptions::image_store set, all three also persist to an
// on-disk store (sim/image_store.h): misses probe the directory, fresh
// builds write back, and a warm process restart starts from disk instead
// of from scratch. The store changes no result byte and no in-memory
// build/hit total — only where a miss gets its data.
//
// Restored state is bit-identical to freshly built state, so results are
// byte-identical whether a spec runs through a pooled Session, a one-shot
// one, or the pre-Session run_experiment() path — the golden suite pins
// this, and run_sweep() relies on it to keep output independent of --jobs.
//
// run() is thread-safe: the caches sit behind one mutex for lookups and
// inserts only — builds happen outside the lock, so distinct keys build in
// parallel and concurrent misses on one key at worst duplicate a
// deterministic ~10 ms build (insert-if-absent keeps the first copy). The
// simulation itself runs unlocked per cell.
//
//   Session session;
//   for (const RunSpec& spec : sweep(base, {"radix", "ndpage"}, {"gups"}))
//     results.push_back(session.run(spec));   // one substrate build, total
//
// run_experiment() in sim/experiment.h is the one-shot shim: a fresh
// Session with sharing disabled, i.e. the historical build-everything path.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "core/system.h"
#include "sim/experiment.h"
#include "sim/image_store.h"

namespace ndp {

struct SessionOptions {
  /// Share prepared system images and trace material across runs. Off =
  /// every run builds everything from scratch (the historical
  /// run_experiment() behaviour) — the opt-out for A/B-validating the
  /// sharing machinery itself.
  bool share_images = true;
  /// Image-cache capacity (a 16 GB-substrate image is ~6 MB of host
  /// memory). Least-recently-used images are evicted beyond this.
  /// 0 = unbounded.
  std::size_t max_images = 8;
  /// Trace-material cache capacity (entries are small: a region list plus
  /// warm-page addresses). 0 = unbounded.
  std::size_t max_materials = 64;
  /// Prepared-image cache capacity. A PreparedImage is a post-prefault
  /// snapshot (core/system.h) keyed by (image key, mechanism, material
  /// key); a hit skips workload install and prefault entirely. Entries are
  /// about the size of a system image. 0 = unbounded.
  std::size_t max_prepared = 4;
  /// Directory of the persistent on-disk image store (sim/image_store.h).
  /// Non-empty: cache misses probe the directory before building, and
  /// fresh builds are written back — a warm restart of the process skips
  /// boot, install, and prefault. Empty: no disk I/O whatsoever. Ignored
  /// (no store is opened) when share_images is false.
  std::string image_store;
};

/// Cache effectiveness counters, cumulative over the Session's lifetime.
/// Per-run hit/miss flags also land in RunResult::host (image_builds /
/// image_hits), which is how `ndpsim --profile` reports them per sweep.
/// The whole snapshot is cheap (one mutex acquisition, a struct copy) —
/// it is what `ndpsim --profile` prints, what the sweep-level host_profile
/// JSON embeds, and what the serve daemon's `stats` request returns.
struct SessionStats {
  std::uint64_t runs = 0;
  std::uint64_t image_builds = 0;     ///< cache misses: substrate prepared
  std::uint64_t image_hits = 0;       ///< cache hits: substrate restored
  std::uint64_t image_evictions = 0;  ///< LRU evictions past max_images
  std::uint64_t material_builds = 0;
  std::uint64_t material_hits = 0;
  std::uint64_t material_evictions = 0;  ///< LRU evictions past max_materials
  // Prepared-image (post-prefault snapshot) cache. A build is any run that
  // *captured* a snapshot — whether it came from the disk store or from
  // running install+prefault — so with a store configured the totals are
  // identical cold and warm, like image_builds. Without a store, capture
  // is elided until a key misses twice (nobody could ever adopt a
  // snapshot that is neither persisted nor re-requested), so a one-shot
  // sweep of unique cells reports zero prepared activity.
  std::uint64_t prepared_builds = 0;
  std::uint64_t prepared_hits = 0;
  std::uint64_t prepared_evictions = 0;
  // On-disk image store (sim/image_store.h). Counted per probe/write across
  // all three blob kinds; store_errors counts rejected blobs (corrupt,
  // truncated, wrong version — rebuilt from scratch) and failed writes.
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t store_writes = 0;
  std::uint64_t store_errors = 0;
  /// Estimated host bytes held by the caches right now (images + trace
  /// material + prepared images; entries checked out by in-flight runs but
  /// already evicted are not counted — they die with the run).
  std::uint64_t resident_bytes = 0;
};

class JsonWriter;
/// Serialize a stats snapshot as one flat JSON object (the "session"
/// member of sweep-level host_profile blocks and of the serve daemon's
/// stats envelope).
void write_session_stats(JsonWriter& w, const SessionStats& s);

class Session {
 public:
  Session() = default;
  explicit Session(SessionOptions opts) : opts_(std::move(opts)) {
    if (opts_.share_images && !opts_.image_store.empty())
      store_ = std::make_unique<ImageStore>(opts_.image_store);
  }

  /// Execute one cell. Identical results to run_experiment(spec), cheaper
  /// when this Session has already run a spec with the same image key.
  /// Thread-safe; any number of run() calls may be in flight.
  RunResult run(const RunSpec& spec);

  /// The cached image for `cfg`'s key, building (and caching) it on a
  /// miss. `built_out`, when given, reports whether this call built it.
  /// Exposed for tests and for callers pooling Systems via
  /// System::reset_to(). Thread-safe.
  std::shared_ptr<const SystemImage> image_for(const SystemConfig& cfg,
                                               bool* built_out = nullptr);

  /// The cache key `cfg`'s image is shared under — equal keys share, and
  /// everything that could change the substrate or routing tables (kind,
  /// cores, physical-memory geometry, seed, the overrides) is in the key
  /// at full fidelity — except the DRAM override, keyed by name+channels
  /// (the only DramTiming field the image depends on) — so design points
  /// with different build products can never alias.
  static std::string image_key(const SystemConfig& cfg);

  const SessionOptions& options() const { return opts_; }
  SessionStats stats() const;

 private:
  /// White-box access for tests/session_test.cpp (LruCache invariants).
  friend struct SessionTestPeer;

  std::shared_ptr<const TraceMaterial> material_for(const std::string& key,
                                                    const TraceSource& trace);
  /// Refresh the process-wide resident-bytes gauge. Call with mu_ held.
  void update_resident_gauge();

  /// Generic string-keyed LRU used by both caches (values are shared_ptr,
  /// so an evicted entry stays alive for any run still using it). Tracks
  /// the resident-byte total of what it currently holds.
  template <typename V>
  struct LruCache {
    struct Entry {
      std::string key;
      std::shared_ptr<const V> value;
    };
    std::list<Entry> lru;  ///< front = most recently used
    std::map<std::string, typename std::list<Entry>::iterator> index;
    std::uint64_t bytes = 0;  ///< sum of resident_bytes() over entries

    std::shared_ptr<const V> find(const std::string& key) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      lru.splice(lru.begin(), lru, it->second);  // refresh recency
      return it->second->value;
    }
    /// Inserts and returns the evicted count (0 or 1). Inserting a key that
    /// is already present replaces the held value in place (recency
    /// refreshed, byte total adjusted) — it must NOT push a second list
    /// node, which would orphan the old one from the index (never evicted,
    /// never counted out of `bytes`) and double-count the entry's size.
    std::size_t insert(const std::string& key, std::shared_ptr<const V> value,
                       std::size_t capacity) {
      auto it = index.find(key);
      if (it != index.end()) {
        const std::uint64_t old_bytes = it->second->value->resident_bytes();
        bytes = bytes > old_bytes ? bytes - old_bytes : 0;
        bytes += value->resident_bytes();
        it->second->value = std::move(value);
        lru.splice(lru.begin(), lru, it->second);
        assert(index.size() == lru.size());
        return 0;
      }
      bytes += value->resident_bytes();
      lru.push_front(Entry{key, std::move(value)});
      index[key] = lru.begin();
      assert(index.size() == lru.size());
      if (capacity == 0 || lru.size() <= capacity) return 0;
      const Entry& victim = lru.back();
      const std::uint64_t victim_bytes = victim.value->resident_bytes();
      bytes = bytes > victim_bytes ? bytes - victim_bytes : 0;
      index.erase(victim.key);
      lru.pop_back();
      assert(index.size() == lru.size());
      return 1;
    }
  };

  SessionOptions opts_;
  mutable std::mutex mu_;  ///< guards the caches + stats_
  LruCache<SystemImage> images_;
  LruCache<TraceMaterial> materials_;
  LruCache<PreparedImage> prepared_;
  /// Prepared keys that have missed the memory cache at least once.
  /// Capturing a snapshot costs a large copy, so without a store to
  /// persist it a run only pays that on a key's *second* miss — proof the
  /// grid revisits the design point. Grows with distinct design points
  /// (small strings), never with runs.
  std::set<std::string> prepared_missed_;
  /// Engaged iff share_images and a store directory was configured. The
  /// store itself is stateless (every call opens files), so it needs no
  /// locking; only the counters folded back into stats_ take mu_.
  std::unique_ptr<ImageStore> store_;
  SessionStats stats_;
};

}  // namespace ndp
