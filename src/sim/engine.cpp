#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "core/mmu.h"
#include "sim/event_heap.h"

namespace ndp {

std::uint64_t RunResult::total_instructions() const {
  std::uint64_t n = 0;
  for (const CoreStats& c : cores) n += c.instructions;
  return n;
}

Engine::Engine(System& system, TraceSource& trace, EngineConfig cfg)
    : sys_(system), trace_(trace), cfg_(cfg) {
  if (cfg_.instructions_per_core == 0)
    throw std::invalid_argument(
        "EngineConfig.instructions_per_core must be > 0: a zero budget "
        "retires nothing and would report 0 cycles");
}

namespace {

// The event queue itself lives in sim/event_heap.h (unit-tested there);
// kIssueSlot tags a front-end issue event vs an op-slot event.
using Event = EngineEvent;
constexpr unsigned kIssueSlot = EventHeap::kIssueSlot;

struct Slot {
  MmuOp op;
  std::uint32_t gap = 0;  ///< the op's preceding non-memory instructions
  bool busy = false;
};

struct CoreCtx {
  Cycle front = 0;  ///< front-end clock
  MemRef pending{};
  bool issue_scheduled = false;
  bool fetch_done = false;  ///< instruction budget reached; stop issuing
  unsigned inflight = 0;
  std::uint64_t instrs_issued = 0;
  std::vector<Slot> slots;
  CoreStats stats;
  std::uint64_t warmup_left = 0;
  bool counting = false;
};

}  // namespace

void Engine::prepare() {
  if (prepared_) return;
  prepared_ = true;
  auto t_phase = HostProfile::Clock::now();
  // Declare the shared dataset regions, then populate the resident set.
  // Session-shared material skips re-deriving the layout per cell.
  if (cfg_.material) {
    for (const VmRegion& r : cfg_.material->regions) sys_.space().add_region(r);
  } else {
    for (const VmRegion& r : trace_.regions()) sys_.space().add_region(r);
  }
  t_phase = stamp_phase(setup_profile_, ProfilePhase::kInstall, t_phase);
  sys_.space().prefault_all();
  // Pre-touch the workload's steady-state-warm demand pages (e.g. the hot
  // part of a hash table built before the measured window).
  if (cfg_.material) {
    for (VirtAddr va : cfg_.material->warm_pages) sys_.space().touch_untimed(va);
  } else {
    for (VirtAddr va : trace_.warm_pages()) sys_.space().touch_untimed(va);
  }
  stamp_phase(setup_profile_, ProfilePhase::kPrefault, t_phase);
}

RunResult Engine::run() {
  const unsigned ncores = sys_.num_cores();
  const unsigned mlp = sys_.mlp();

  prepare();
  RunResult out;
  out.host_profile.merge(setup_profile_);
  auto t_phase = HostProfile::Clock::now();
  auto end_phase = [&](ProfilePhase p) {
    t_phase = stamp_phase(out.host_profile, p, t_phase);
  };

  std::vector<CoreCtx> ctx(ncores);
  // Outstanding events per core: one per busy op slot plus one issue event.
  EventHeap pq(static_cast<std::size_t>(ncores) * (mlp + 1));
  unsigned cores_warm = 0;
  bool stats_reset_done = false;
  std::uint64_t events = 0;

  auto schedule_issue = [&](unsigned c, Cycle now) {
    CoreCtx& cc = ctx[c];
    if (cc.issue_scheduled || cc.fetch_done || cc.inflight >= mlp) return;
    const Cycle t = std::max(cc.front + cc.pending.gap, now);
    pq.push(Event{t, c, kIssueSlot});
    cc.issue_scheduled = true;
  };

  for (unsigned c = 0; c < ncores; ++c) {
    CoreCtx& cc = ctx[c];
    cc.slots.resize(mlp);
    cc.warmup_left = cfg_.warmup_refs_per_core;
    cc.counting = (cfg_.warmup_refs_per_core == 0);
    if (cc.counting) ++cores_warm;
    cc.pending = trace_.next(c);
    schedule_issue(c, 0);
  }
  if (cores_warm == ncores) stats_reset_done = true;
  if (stats_reset_done) end_phase(ProfilePhase::kWarmup);  // no warmup window

  // Pop-per-event on purpose: this loop pushes same-cycle events while
  // processing (stage transitions return `now`; completions re-issue at
  // `now`), and the golden-pinned tie order requires those pushes to land
  // in the live heap among the remaining ties. EventHeap::drain_same_cycle
  // documents why a pre-drained batch cannot reproduce that order.
  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();
    ++events;
    CoreCtx& cc = ctx[ev.core];

    if (ev.slot == kIssueSlot) {
      // Front-end: start the pending memory op in a free slot.
      cc.issue_scheduled = false;
      assert(cc.inflight < mlp);
      unsigned s = 0;
      while (cc.slots[s].busy) ++s;
      Slot& slot = cc.slots[s];
      slot.busy = true;
      slot.gap = cc.pending.gap;
      ++cc.inflight;
      const Cycle next = slot.op.begin(sys_.mmu(ev.core), ev.time,
                                       cc.pending.va, cc.pending.type);
      pq.push(Event{next, ev.core, s});
      cc.front = ev.time + 1;

      // Fetch the next reference unless the post-warmup budget is spent
      // (instrs_issued resets when warmup ends).
      cc.instrs_issued += cc.pending.gap + 1;
      if (cc.counting && cc.instrs_issued >= cfg_.instructions_per_core) {
        cc.fetch_done = true;
      } else {
        cc.pending = trace_.next(ev.core);
        schedule_issue(ev.core, ev.time);
      }
      continue;
    }

    // Op event: either advance one step, or (if the op already reached its
    // final state) this is the completion event at finish_time().
    Slot& slot = cc.slots[ev.slot];
    if (!slot.op.done()) {
      const Cycle next = slot.op.step(ev.time);
      // When step() drove the op to done, `next` is the completion time of
      // the in-flight data access: the slot stays occupied until then.
      pq.push(Event{next, ev.core, ev.slot});
      continue;
    }

    // Op completed (ev.time == finish_time()).
    slot.busy = false;
    --cc.inflight;
    const MmuOp& op = slot.op;
    if (cc.counting) {
      cc.stats.instructions += slot.gap + 1;
      cc.stats.memrefs += 1;
      cc.stats.gap_cycles += slot.gap;
      cc.stats.translation_cycles += op.translation_done() - op.issue_time();
      cc.stats.data_cycles += op.finish_time() - op.translation_done();
      cc.stats.fault_cycles += op.fault_cycles();
      if (cc.stats.start == 0) cc.stats.start = op.issue_time();
      cc.stats.end = std::max(cc.stats.end, op.finish_time());
    } else if (--cc.warmup_left == 0) {
      cc.counting = true;
      cc.instrs_issued = 0;  // budget counts post-warmup instructions
      ++cores_warm;
      if (!stats_reset_done && cores_warm == ncores) {
        sys_.reset_stats();
        stats_reset_done = true;
        end_phase(ProfilePhase::kWarmup);
      }
    }
    schedule_issue(ev.core, ev.time);
  }
  end_phase(ProfilePhase::kRun);

  out.cores.reserve(ncores);
  std::uint64_t sum_trans = 0, sum_data = 0, sum_gap = 0, sum_refs = 0;
  for (unsigned c = 0; c < ncores; ++c) {
    const CoreStats& cs = ctx[c].stats;
    if (cs.instructions == 0 || cs.end <= cs.start) {
      // An all-warmup / zero-work core would serialize as 0 cycles and
      // silently poison every speedup table built on this result.
      throw std::runtime_error(
          "engine: core " + std::to_string(c) +
          " retired no post-warmup instructions (budget=" +
          std::to_string(cfg_.instructions_per_core) +
          ", warmup=" + std::to_string(cfg_.warmup_refs_per_core) +
          "); raise instructions_per_core or lower warmup_refs_per_core");
    }
    out.cores.push_back(cs);
    out.total_cycles = std::max(out.total_cycles, cs.cycles());
    sum_trans += cs.translation_cycles;
    sum_data += cs.data_cycles;
    sum_gap += cs.gap_cycles;
    sum_refs += cs.memrefs;
  }
  out.stats = sys_.collect_stats();
  out.host.events = events;
  out.host.heap_pushes = pq.pushes();
  out.host.heap_peak = pq.peak();

  if (const Average* a = out.stats.average("walker.latency"))
    out.avg_ptw_latency = a->mean();
  const double busy =
      static_cast<double>(sum_trans + sum_data + sum_gap + sum_refs);
  out.translation_fraction =
      busy > 0 ? static_cast<double>(sum_trans) / busy : 0.0;
  out.l1_tlb_miss_rate =
      out.stats.rate("tlb.l1d.miss", "tlb.l1d.hit");
  out.l2_tlb_miss_rate = out.stats.rate("tlb.l2.miss", "tlb.l2.hit");
  const double mem_total = static_cast<double>(out.stats.get("mem.access"));
  out.pte_access_share =
      mem_total > 0
          ? static_cast<double>(out.stats.get("mem.access.meta")) / mem_total
          : 0.0;
  out.ipc = out.total_cycles
                ? static_cast<double>(out.total_instructions()) /
                      static_cast<double>(out.total_cycles) / ncores
                : 0.0;
  end_phase(ProfilePhase::kCollect);
  return out;
}

}  // namespace ndp
