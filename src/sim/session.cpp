#include "sim/session.h"

#include <cstring>
#include <utility>

#include "common/json.h"
#include "obs/metrics.h"
#include "workloads/workload_registry.h"

namespace ndp {

namespace {

/// Process-wide cache-effectiveness metrics (obs/metrics.h), summed over
/// every Session in the process — the scrapeable complement of the
/// per-Session SessionStats snapshot. Handles resolve once.
struct SessionMetrics {
  obs::Counter& runs = obs::Metrics::instance().counter(
      "ndpsim_session_runs_total", "Cells executed through a Session");
  obs::Counter& image_hits = obs::Metrics::instance().counter(
      "ndpsim_session_image_hits_total",
      "System-image cache hits (substrate restored)");
  obs::Counter& image_builds = obs::Metrics::instance().counter(
      "ndpsim_session_image_builds_total",
      "System-image cache misses (substrate built)");
  obs::Counter& image_evictions = obs::Metrics::instance().counter(
      "ndpsim_session_image_evictions_total",
      "System images evicted past the LRU capacity");
  obs::Counter& material_hits = obs::Metrics::instance().counter(
      "ndpsim_session_material_hits_total", "Trace-material cache hits");
  obs::Counter& material_builds = obs::Metrics::instance().counter(
      "ndpsim_session_material_builds_total", "Trace-material cache misses");
  obs::Gauge& resident_bytes = obs::Metrics::instance().gauge(
      "ndpsim_session_resident_bytes",
      "Host bytes held by Session caches (last Session to update wins)");

  static SessionMetrics& get() {
    static SessionMetrics m;
    return m;
  }
};
/// Bit-exact text of a double. Cache keys must distinguish *any* two
/// values that could yield different build products; decimal formatting
/// (std::to_string's fixed 6 digits) would alias close-but-distinct
/// scales/fractions and hand one of them the other's cached state.
std::string exact(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return std::to_string(bits);
}
}  // namespace

std::string Session::image_key(const SystemConfig& cfg) {
  std::string key = to_string(cfg.kind);
  key += '/' + std::to_string(cfg.num_cores);
  key += '/' + std::to_string(cfg.phys_bytes);
  key += '/' + exact(cfg.noise_fraction);
  key += '/' + std::to_string(cfg.seed);
  // Every override is in the key — bypass/PWC overrides do not touch the
  // substrate, but never sharing across ablation axes is the conservative
  // contract the tests pin (distinct design points must not alias).
  key += "/b:";
  if (cfg.overrides.bypass) key += *cfg.overrides.bypass ? '1' : '0';
  key += "/p:";
  if (cfg.overrides.pwc_levels) {
    // Mark engaged-ness itself: an engaged-but-empty override ("strip the
    // PWCs", JSON null/[]) is a distinct design point from no override.
    key += 'e';
    for (unsigned l : *cfg.overrides.pwc_levels)
      key += std::to_string(l) + ',';
  }
  key += "/d:";
  if (cfg.overrides.dram)
    // name + channels, the image-relevant fidelity: the image holds only
    // substrate + mesh tables, and of DramTiming only `channels` shapes
    // those (name alone would alias a custom timing reusing a preset's
    // name with different channels, which SystemImage::compatible_with
    // rejects with a throw instead of a rebuild). Two timings agreeing on
    // name+channels do share an image — by construction it is identical.
    key += cfg.overrides.dram->name + ':' +
           std::to_string(cfg.overrides.dram->channels);
  return key;
}

std::shared_ptr<const SystemImage> Session::image_for(const SystemConfig& cfg,
                                                      bool* built_out) {
  const std::string key = image_key(cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = images_.find(key)) {
      ++stats_.image_hits;
      SessionMetrics::get().image_hits.inc();
      if (built_out) *built_out = false;
      return hit;
    }
  }
  // Build outside the lock so distinct keys build in parallel across sweep
  // workers. Concurrent misses on *one* key may both build it — rare,
  // wasted work only: images are deterministic, so the copies are
  // identical, and insert-if-absent below keeps the first one (the loser
  // counts as a hit, so the build/hit totals stay deterministic too).
  auto image = std::make_shared<SystemImage>(System::prepare_image(cfg));
  std::lock_guard<std::mutex> lock(mu_);
  if (auto raced = images_.find(key)) {
    ++stats_.image_hits;
    SessionMetrics::get().image_hits.inc();
    if (built_out) *built_out = false;
    return raced;
  }
  ++stats_.image_builds;
  SessionMetrics::get().image_builds.inc();
  const std::size_t evicted = images_.insert(key, image, opts_.max_images);
  stats_.image_evictions += evicted;
  SessionMetrics::get().image_evictions.inc(evicted);
  SessionMetrics::get().resident_bytes.set(
      static_cast<std::int64_t>(images_.bytes + materials_.bytes));
  if (built_out) *built_out = true;
  return image;
}

std::shared_ptr<const TraceMaterial> Session::material_for(
    const std::string& key, const TraceSource& trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = materials_.find(key)) {
      ++stats_.material_hits;
      SessionMetrics::get().material_hits.inc();
      return hit;
    }
  }
  // Same insert-if-absent dance as image_for: material is deterministic,
  // so a raced duplicate collection is harmless and never serializes the
  // worker pool.
  auto material = std::make_shared<TraceMaterial>(TraceMaterial::of(trace));
  std::lock_guard<std::mutex> lock(mu_);
  if (auto raced = materials_.find(key)) {
    ++stats_.material_hits;
    SessionMetrics::get().material_hits.inc();
    return raced;
  }
  ++stats_.material_builds;
  SessionMetrics::get().material_builds.inc();
  materials_.insert(key, material, opts_.max_materials);
  SessionMetrics::get().resident_bytes.set(
      static_cast<std::int64_t>(images_.bytes + materials_.bytes));
  return material;
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats s = stats_;
  s.resident_bytes = images_.bytes + materials_.bytes;
  return s;
}

void write_session_stats(JsonWriter& w, const SessionStats& s) {
  w.begin_object();
  w.key("runs").value(s.runs);
  w.key("image_builds").value(s.image_builds);
  w.key("image_hits").value(s.image_hits);
  w.key("image_evictions").value(s.image_evictions);
  w.key("material_builds").value(s.material_builds);
  w.key("material_hits").value(s.material_hits);
  w.key("resident_bytes").value(s.resident_bytes);
  w.end_object();
}

RunResult Session::run(const RunSpec& spec) {
  HostProfile build_profile;
  SystemConfig sc = spec.system == SystemKind::kNdp
                        ? SystemConfig::ndp(spec.cores, spec.mechanism)
                        : SystemConfig::cpu(spec.cores, spec.mechanism);
  sc.mechanism_name = spec.mechanism_name;
  sc.seed = spec.seed;
  sc.overrides = spec.overrides;

  std::shared_ptr<const SystemImage> image;
  bool image_built = false;
  if (opts_.share_images) {
    ScopedPhaseTimer timer(build_profile, ProfilePhase::kBuildCached);
    image = image_for(sc, &image_built);
  }

  std::unique_ptr<System> system;
  std::unique_ptr<TraceSource> trace;
  std::shared_ptr<const TraceMaterial> material;  // outlives the engine
  EngineConfig ec;
  {
    ScopedPhaseTimer timer(build_profile, ProfilePhase::kBuild);
    system = image ? std::make_unique<System>(sc, *image)
                   : std::make_unique<System>(sc);

    WorkloadParams wp;
    wp.num_cores = spec.cores;
    if (spec.scale > 0) wp.scale = spec.scale;
    wp.seed = spec.seed;
    const WorkloadDescriptor& wd =
        resolve_workload(spec.workload, spec.workload_name);
    trace = wd.make(wp);
    if (opts_.share_images) {
      material = material_for(wd.name + '/' + std::to_string(wp.num_cores) +
                                  '/' + exact(wp.scale) + '/' +
                                  std::to_string(wp.seed),
                              *trace);
      ec.material = material.get();
    }

    ec.instructions_per_core = spec.instructions_per_core
                                   ? spec.instructions_per_core
                                   : default_instructions();
    ec.warmup_refs_per_core =
        spec.warmup_refs ? spec.warmup_refs : ec.instructions_per_core / 15;
  }

  Engine engine(*system, *trace, ec);
  RunResult result = engine.run();
  result.host_profile.merge(build_profile);
  result.host.image_builds = image_built ? 1 : 0;
  result.host.image_hits = image && !image_built ? 1 : 0;
  result.meta.system = to_string(spec.system);
  const MechanismSpec mech = sc.mechanism_spec();
  result.meta.mechanism = mech.canonical;
  // Record every resolved parameter (defaults included) so a result set is
  // self-describing about the exact design point it measured.
  for (const auto& [name, value] : mech.params.entries())
    result.meta.mechanism_params.emplace_back(name, value.text());
  // Canonical registry name, not trace->name(): the registered identity is
  // what configs and aggregation select by, and for the built-ins the two
  // agree anyway.
  result.meta.workload = spec.workload_label();
  result.meta.cores = spec.cores;
  result.meta.instructions_per_core = ec.instructions_per_core;
  result.meta.seed = spec.seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
  }
  SessionMetrics::get().runs.inc();
  return result;
}

}  // namespace ndp
