#include "sim/session.h"

#include <cstring>
#include <utility>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "workloads/workload_registry.h"

namespace ndp {

namespace {

/// Process-wide cache-effectiveness metrics (obs/metrics.h), summed over
/// every Session in the process — the scrapeable complement of the
/// per-Session SessionStats snapshot. Handles resolve once.
struct SessionMetrics {
  obs::Counter& runs = obs::Metrics::instance().counter(
      "ndpsim_session_runs_total", "Cells executed through a Session");
  obs::Counter& image_hits = obs::Metrics::instance().counter(
      "ndpsim_session_image_hits_total",
      "System-image cache hits (substrate restored)");
  obs::Counter& image_builds = obs::Metrics::instance().counter(
      "ndpsim_session_image_builds_total",
      "System-image cache misses (substrate built)");
  obs::Counter& image_evictions = obs::Metrics::instance().counter(
      "ndpsim_session_image_evictions_total",
      "System images evicted past the LRU capacity");
  obs::Counter& material_hits = obs::Metrics::instance().counter(
      "ndpsim_session_material_hits_total", "Trace-material cache hits");
  obs::Counter& material_builds = obs::Metrics::instance().counter(
      "ndpsim_session_material_builds_total", "Trace-material cache misses");
  obs::Counter& material_evictions = obs::Metrics::instance().counter(
      "ndpsim_session_material_evictions_total",
      "Trace material evicted past the LRU capacity");
  obs::Counter& prepared_hits = obs::Metrics::instance().counter(
      "ndpsim_session_prepared_hits_total",
      "Prepared-image cache hits (install+prefault skipped)");
  obs::Counter& prepared_builds = obs::Metrics::instance().counter(
      "ndpsim_session_prepared_builds_total",
      "Prepared-image cache misses (snapshot captured or loaded from disk)");
  obs::Counter& prepared_evictions = obs::Metrics::instance().counter(
      "ndpsim_session_prepared_evictions_total",
      "Prepared images evicted past the LRU capacity");
  obs::Counter& store_hits = obs::Metrics::instance().counter(
      "ndpsim_store_hits_total", "On-disk image-store blob loads");
  obs::Counter& store_misses = obs::Metrics::instance().counter(
      "ndpsim_store_misses_total", "On-disk image-store probes finding nothing");
  obs::Counter& store_writes = obs::Metrics::instance().counter(
      "ndpsim_store_writes_total", "On-disk image-store blobs written");
  obs::Counter& store_errors = obs::Metrics::instance().counter(
      "ndpsim_store_errors_total",
      "On-disk image-store rejected blobs and failed writes");
  obs::Gauge& resident_bytes = obs::Metrics::instance().gauge(
      "ndpsim_session_resident_bytes",
      "Host bytes held by Session caches (last Session to update wins)");

  static SessionMetrics& get() {
    static SessionMetrics m;
    return m;
  }
};
/// Bit-exact text of a double. Cache keys must distinguish *any* two
/// values that could yield different build products; decimal formatting
/// (std::to_string's fixed 6 digits) would alias close-but-distinct
/// scales/fractions and hand one of them the other's cached state.
std::string exact(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return std::to_string(bits);
}

/// Store-probe/write outcomes accumulated outside the Session mutex and
/// folded into SessionStats (and the process metrics) under it.
struct StoreDelta {
  std::uint64_t hits = 0, misses = 0, writes = 0, errors = 0;

  void probed(ImageStore::Load outcome) {
    switch (outcome) {
      case ImageStore::Load::kHit: ++hits; break;
      case ImageStore::Load::kMiss: ++misses; break;
      case ImageStore::Load::kReject: ++errors; break;
    }
  }
  void wrote(bool ok) { ++(ok ? writes : errors); }
  /// Fold into `s` — the caller holds the Session mutex.
  void fold(SessionStats& s) const {
    s.store_hits += hits;
    s.store_misses += misses;
    s.store_writes += writes;
    s.store_errors += errors;
    SessionMetrics& m = SessionMetrics::get();
    m.store_hits.inc(hits);
    m.store_misses.inc(misses);
    m.store_writes.inc(writes);
    m.store_errors.inc(errors);
  }
};
}  // namespace

std::string Session::image_key(const SystemConfig& cfg) {
  std::string key = to_string(cfg.kind);
  key += '/' + std::to_string(cfg.num_cores);
  key += '/' + std::to_string(cfg.phys_bytes);
  key += '/' + exact(cfg.noise_fraction);
  key += '/' + std::to_string(cfg.seed);
  // Every override is in the key — bypass/PWC overrides do not touch the
  // substrate, but never sharing across ablation axes is the conservative
  // contract the tests pin (distinct design points must not alias).
  key += "/b:";
  if (cfg.overrides.bypass) key += *cfg.overrides.bypass ? '1' : '0';
  key += "/p:";
  if (cfg.overrides.pwc_levels) {
    // Mark engaged-ness itself: an engaged-but-empty override ("strip the
    // PWCs", JSON null/[]) is a distinct design point from no override.
    key += 'e';
    for (unsigned l : *cfg.overrides.pwc_levels)
      key += std::to_string(l) + ',';
  }
  key += "/d:";
  if (cfg.overrides.dram)
    // name + channels, the image-relevant fidelity: the image holds only
    // substrate + mesh tables, and of DramTiming only `channels` shapes
    // those (name alone would alias a custom timing reusing a preset's
    // name with different channels, which SystemImage::compatible_with
    // rejects with a throw instead of a rebuild). Two timings agreeing on
    // name+channels do share an image — by construction it is identical.
    key += cfg.overrides.dram->name + ':' +
           std::to_string(cfg.overrides.dram->channels);
  return key;
}

std::shared_ptr<const SystemImage> Session::image_for(const SystemConfig& cfg,
                                                      bool* built_out) {
  const std::string key = image_key(cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = images_.find(key)) {
      ++stats_.image_hits;
      SessionMetrics::get().image_hits.inc();
      if (built_out) *built_out = false;
      return hit;
    }
  }
  // Build outside the lock so distinct keys build in parallel across sweep
  // workers. Concurrent misses on *one* key may both build it — rare,
  // wasted work only: images are deterministic, so the copies are
  // identical, and insert-if-absent below keeps the first one (the loser
  // counts as a hit, so the build/hit totals stay deterministic too).
  //
  // A memory miss probes the on-disk store before building. A disk load
  // still counts as an image *build* (the in-memory cache genuinely
  // missed, so the build/hit totals are identical with the store on or
  // off) plus a store_hit; only where the bytes came from changes.
  StoreDelta delta;
  std::shared_ptr<const SystemImage> image;
  if (store_) {
    const ImageStore::Load outcome = store_->load_system_image(key, cfg, &image);
    delta.probed(outcome);
  }
  if (!image) {
    image = std::make_shared<SystemImage>(System::prepare_image(cfg));
    if (store_) delta.wrote(store_->store_system_image(key, *image));
  }
  std::lock_guard<std::mutex> lock(mu_);
  delta.fold(stats_);
  if (auto raced = images_.find(key)) {
    ++stats_.image_hits;
    SessionMetrics::get().image_hits.inc();
    if (built_out) *built_out = false;
    return raced;
  }
  ++stats_.image_builds;
  SessionMetrics::get().image_builds.inc();
  const std::size_t evicted = images_.insert(key, image, opts_.max_images);
  stats_.image_evictions += evicted;
  SessionMetrics::get().image_evictions.inc(evicted);
  update_resident_gauge();
  if (built_out) *built_out = true;
  return image;
}

std::shared_ptr<const TraceMaterial> Session::material_for(
    const std::string& key, const TraceSource& trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = materials_.find(key)) {
      ++stats_.material_hits;
      SessionMetrics::get().material_hits.inc();
      return hit;
    }
  }
  // Same insert-if-absent dance as image_for: material is deterministic,
  // so a raced duplicate collection is harmless and never serializes the
  // worker pool. Disk probe and write-back follow image_for's counting
  // contract too.
  StoreDelta delta;
  std::shared_ptr<const TraceMaterial> material;
  if (store_) {
    auto loaded = std::make_shared<TraceMaterial>();
    const ImageStore::Load outcome = store_->load_material(key, loaded.get());
    delta.probed(outcome);
    if (outcome == ImageStore::Load::kHit) material = std::move(loaded);
  }
  if (!material) {
    material = std::make_shared<TraceMaterial>(TraceMaterial::of(trace));
    if (store_) delta.wrote(store_->store_material(key, *material));
  }
  std::lock_guard<std::mutex> lock(mu_);
  delta.fold(stats_);
  if (auto raced = materials_.find(key)) {
    ++stats_.material_hits;
    SessionMetrics::get().material_hits.inc();
    return raced;
  }
  ++stats_.material_builds;
  SessionMetrics::get().material_builds.inc();
  const std::size_t evicted =
      materials_.insert(key, material, opts_.max_materials);
  stats_.material_evictions += evicted;
  SessionMetrics::get().material_evictions.inc(evicted);
  update_resident_gauge();
  return material;
}

void Session::update_resident_gauge() {
  SessionMetrics::get().resident_bytes.set(static_cast<std::int64_t>(
      images_.bytes + materials_.bytes + prepared_.bytes));
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats s = stats_;
  s.resident_bytes = images_.bytes + materials_.bytes + prepared_.bytes;
  return s;
}

void write_session_stats(JsonWriter& w, const SessionStats& s) {
  w.begin_object();
  w.key("runs").value(s.runs);
  w.key("image_builds").value(s.image_builds);
  w.key("image_hits").value(s.image_hits);
  w.key("image_evictions").value(s.image_evictions);
  w.key("material_builds").value(s.material_builds);
  w.key("material_hits").value(s.material_hits);
  w.key("material_evictions").value(s.material_evictions);
  w.key("prepared_builds").value(s.prepared_builds);
  w.key("prepared_hits").value(s.prepared_hits);
  w.key("prepared_evictions").value(s.prepared_evictions);
  w.key("store_hits").value(s.store_hits);
  w.key("store_misses").value(s.store_misses);
  w.key("store_writes").value(s.store_writes);
  w.key("store_errors").value(s.store_errors);
  w.key("resident_bytes").value(s.resident_bytes);
  w.end_object();
}

RunResult Session::run(const RunSpec& spec) {
  HostProfile build_profile;
  SystemConfig sc = spec.system == SystemKind::kNdp
                        ? SystemConfig::ndp(spec.cores, spec.mechanism)
                        : SystemConfig::cpu(spec.cores, spec.mechanism);
  sc.mechanism_name = spec.mechanism_name;
  sc.seed = spec.seed;
  sc.overrides = spec.overrides;

  std::shared_ptr<const SystemImage> image;
  bool image_built = false;
  if (opts_.share_images) {
    ScopedPhaseTimer timer(build_profile, ProfilePhase::kBuildCached);
    image = image_for(sc, &image_built);
  }

  std::unique_ptr<System> system;
  std::unique_ptr<TraceSource> trace;
  std::shared_ptr<const TraceMaterial> material;  // outlives the engine
  EngineConfig ec;
  std::string prepared_key;
  {
    ScopedPhaseTimer timer(build_profile, ProfilePhase::kBuild);
    system = image ? std::make_unique<System>(sc, *image)
                   : std::make_unique<System>(sc);

    WorkloadParams wp;
    wp.num_cores = spec.cores;
    if (spec.scale > 0) wp.scale = spec.scale;
    wp.seed = spec.seed;
    const WorkloadDescriptor& wd =
        resolve_workload(spec.workload, spec.workload_name);
    trace = wd.make(wp);
    if (opts_.share_images) {
      const std::string material_key =
          wd.name + '/' + std::to_string(wp.num_cores) + '/' +
          exact(wp.scale) + '/' + std::to_string(wp.seed);
      material = material_for(material_key, *trace);
      ec.material = material.get();
      // The prepared (post-prefault) layer keys on everything that shapes
      // the state the snapshot captures: substrate + mechanism + material.
      if (image)
        prepared_key = image_key(sc) + "|mech:" + sc.mechanism_label() +
                       "|mat:" + material_key;
    }

    ec.instructions_per_core = spec.instructions_per_core
                                   ? spec.instructions_per_core
                                   : default_instructions();
    ec.warmup_refs_per_core =
        spec.warmup_refs ? spec.warmup_refs : ec.instructions_per_core / 15;
  }

  // Prepared-image layer: a run whose (image, mechanism, material) point
  // was already prepared adopts the post-prefault snapshot — memory cache
  // first, then the on-disk store — and skips install+prefault entirely.
  // Restored state is bit-identical to freshly prepared state (the golden
  // suite pins results with the cache cold, warm, and disabled).
  std::shared_ptr<const PreparedImage> prepared;
  bool restored = false;
  bool capture_worthwhile = store_ != nullptr;
  if (!prepared_key.empty()) {
    bool prepared_from_disk = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto hit = prepared_.find(prepared_key)) {
        prepared = std::move(hit);
        ++stats_.prepared_hits;
        SessionMetrics::get().prepared_hits.inc();
      } else if (!prepared_missed_.insert(prepared_key).second) {
        // Second miss of this key: the grid revisits the design point, so
        // the snapshot copy will pay for itself even without a store.
        capture_worthwhile = true;
      }
    }
    if (!prepared && store_) {
      StoreDelta delta;
      delta.probed(store_->load_prepared(prepared_key, sc, &prepared));
      prepared_from_disk = prepared != nullptr;
      std::lock_guard<std::mutex> lock(mu_);
      delta.fold(stats_);
    }
    if (prepared) {
      ScopedPhaseTimer timer(build_profile, ProfilePhase::kBuildCached);
      if (system->adopt_prepared(*prepared)) {
        restored = true;
        if (prepared_from_disk) {
          // Disk restores feed the memory cache too, and count as a
          // prepared *build*: the in-memory cache genuinely missed, so
          // build/hit totals stay identical with the store on or off.
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.prepared_builds;
          SessionMetrics::get().prepared_builds.inc();
          if (!prepared_.find(prepared_key)) {
            const std::size_t evicted =
                prepared_.insert(prepared_key, prepared, opts_.max_prepared);
            stats_.prepared_evictions += evicted;
            SessionMetrics::get().prepared_evictions.inc(evicted);
          }
          update_resident_gauge();
        }
      } else {
        // Mismatched or malformed snapshot: the System's state may be
        // partially overwritten, so discard it and rebuild cold. Never a
        // crash, never a wrong result — only a rebuild and a warning.
        obs::log(obs::LogLevel::kWarn, "session.prepared_reject")
            .kv("key", prepared_key);
        prepared.reset();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.store_errors;
          SessionMetrics::get().store_errors.inc();
        }
        ScopedPhaseTimer rebuild(build_profile, ProfilePhase::kBuild);
        system = image ? std::make_unique<System>(sc, *image)
                       : std::make_unique<System>(sc);
      }
    }
  }

  Engine engine(*system, *trace, ec);
  if (restored) {
    engine.mark_prepared();
  } else if (!prepared_key.empty() && capture_worthwhile) {
    // Cold cell of a sharing Session: prepare now, then capture the
    // post-prefault snapshot for later cells (and for the on-disk store).
    // Skipped when no store is configured and the key has not repeated —
    // a one-shot sweep of unique cells would pay the copy for nothing.
    engine.prepare();
    ScopedPhaseTimer timer(build_profile, ProfilePhase::kSnapshot);
    if (auto snap = system->snapshot_prepared(image)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.prepared_builds;
        SessionMetrics::get().prepared_builds.inc();
        if (!prepared_.find(prepared_key)) {
          const std::size_t evicted =
              prepared_.insert(prepared_key, snap, opts_.max_prepared);
          stats_.prepared_evictions += evicted;
          SessionMetrics::get().prepared_evictions.inc(evicted);
        }
        update_resident_gauge();
      }
      if (store_) {
        StoreDelta delta;
        delta.wrote(store_->store_prepared(prepared_key, *snap));
        std::lock_guard<std::mutex> lock(mu_);
        delta.fold(stats_);
      }
    }
  }
  RunResult result = engine.run();
  result.host_profile.merge(build_profile);
  result.host.image_builds = image_built ? 1 : 0;
  result.host.image_hits = image && !image_built ? 1 : 0;
  result.meta.system = to_string(spec.system);
  const MechanismSpec mech = sc.mechanism_spec();
  result.meta.mechanism = mech.canonical;
  // Record every resolved parameter (defaults included) so a result set is
  // self-describing about the exact design point it measured.
  for (const auto& [name, value] : mech.params.entries())
    result.meta.mechanism_params.emplace_back(name, value.text());
  // Canonical registry name, not trace->name(): the registered identity is
  // what configs and aggregation select by, and for the built-ins the two
  // agree anyway.
  result.meta.workload = spec.workload_label();
  result.meta.cores = spec.cores;
  result.meta.instructions_per_core = ec.instructions_per_core;
  result.meta.seed = spec.seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
  }
  SessionMetrics::get().runs.inc();
  return result;
}

}  // namespace ndp
